// Ablation: the online attack detector (Qureshi HPCA'11, the paper's
// reference [15]) against each attack class.
//
// The paper claims a rate-boosting detector defeats RAA/BPA-style
// concentration but that "increasing the rate of wear leveling instead
// accelerates RTA". This bench measures all three against RBSG with and
// without the detector — plus the static-rate sweep that isolates the
// paper's claim (RTA lifetime as a function of ψ).

#include "attack/bpa.hpp"
#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "attack/rta_rbsg.hpp"
#include "bench_util.hpp"
#include "wl/factory.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagScale);

  print_header("Ablation: online attack detector vs RAA / BPA / RTA",
               "§III: rate boosting helps vs RAA/BPA; RTA exploits remaps themselves");

  const u64 lines = opts.lines_or(1u << 12);
  const u64 endurance = 1u << 15;
  const u64 interval = 128;  // deliberately slow when calm (low overhead)
  const auto pcm_cfg = pcm::PcmConfig::scaled(lines, endurance);

  auto make_mc = [&](bool with_detector) {
    wl::SchemeSpec spec;
    spec.kind = wl::SchemeKind::kRbsg;
    spec.lines = lines;
    spec.regions = 8;
    spec.inner_interval = interval;
    auto mc = std::make_unique<ctl::MemoryController>(pcm_cfg, wl::make_scheme(spec));
    if (with_detector) {
      wl::AttackDetectorConfig dcfg;
      dcfg.window = 4096;
      dcfg.threshold = 8.0;
      dcfg.max_boost = 5;
      mc->enable_detector(dcfg);
    }
    return mc;
  };

  Table t({"attack", "no detector", "with detector", "detector effect"});
  for (int kind = 0; kind < 3; ++kind) {
    u64 life[2] = {0, 0};
    for (int d = 0; d < 2; ++d) {
      auto mc = make_mc(d == 1);
      std::unique_ptr<attack::Attacker> atk;
      if (kind == 0) {
        atk = std::make_unique<attack::RepeatedAddressAttack>(La{1234});
      } else if (kind == 1) {
        atk = std::make_unique<attack::BirthdayParadoxAttack>(7, 2 * (lines / 8 + 1) *
                                                                     interval);
      } else {
        attack::RtaRbsgParams p;
        p.lines = lines;
        p.regions = 8;
        p.interval = interval;
        p.endurance = endurance;
        atk = std::make_unique<attack::RtaRbsgAttacker>(p);
      }
      const auto res = attack::run_attack(*mc, *atk, u64{1} << 36);
      life[d] = res.succeeded ? res.lifetime.value() : 0;
    }
    const char* names[] = {"RAA", "BPA", "RTA"};
    const double gain =
        life[0] > 0 ? static_cast<double>(life[1]) / static_cast<double>(life[0]) : 0.0;
    t.add_row({names[kind], dur(static_cast<double>(life[0])),
               dur(static_cast<double>(life[1])),
               fmt_double(gain, 3) + "x lifetime"});
  }
  t.print(std::cout);

  // The isolated claim: RTA lifetime as a function of a *static* rate.
  std::cout << "\nstatic-rate sweep (RTA vs RBSG, no detector):\n";
  Table sweep({"psi", "RTA lifetime", "attack writes"});
  for (u64 psi : {16u, 32u, 64u, 128u}) {
    wl::SchemeSpec spec;
    spec.kind = wl::SchemeKind::kRbsg;
    spec.lines = lines;
    spec.regions = 8;
    spec.inner_interval = psi;
    ctl::MemoryController mc(pcm_cfg, wl::make_scheme(spec));
    attack::RtaRbsgParams p;
    p.lines = lines;
    p.regions = 8;
    p.interval = psi;
    p.endurance = endurance;
    attack::RtaRbsgAttacker rta(p);
    const auto res = attack::run_attack(mc, rta, u64{1} << 36);
    sweep.add_row({std::to_string(psi),
                   res.succeeded ? dur(static_cast<double>(res.lifetime.value())) : "survived",
                   std::to_string(res.writes)});
  }
  sweep.print(std::cout);

  std::cout << "\nreading: the detector multiplies RAA/BPA lifetimes but does NOT\n"
               "rescue RTA proportionally — and the static sweep shows a faster rate\n"
               "(small psi) shortens RTA's detection phase, consistent with the\n"
               "paper's warning that boosting the wear-leveling rate helps RTA.\n"
               "(A detector-aware RTA would also re-derive the boosted interval,\n"
               "making the defense weaker still.)\n";
  return 0;
}
