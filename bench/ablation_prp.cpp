// Ablation: how much lifetime does the paper's cubing round function cost?
//
// The paper's DFN uses F(L, K) = (L ⊕ K)³ mod 2^(B/2) — cheap in gates
// ((3/8)·B² per stage) but a T-function: bit i of the output depends only
// on bits ≤ i of the input, so avalanche saturates near 0.3 instead of
// the ideal 0.5 (measured by the mapping-quality tests). This bench swaps
// the outer permutation for an explicit uniform random permutation table
// (hardware-unrealistic, but the randomization upper bound) and measures
// the RAA lifetime gap — i.e., the gap between Fig. 14's ~67% ceiling and
// what an ideal randomizer would reach.

#include "analytic/lifetime_models.hpp"
#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "bench_util.hpp"
#include "common/bitops.hpp"
#include "wl/security_rbsg.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagSeeds | kFlagScale);

  print_header("Ablation: DFN round function (cubing Feistel vs ideal PRP)",
               "quantifies the Fig. 14 ceiling caused by the cubing T-function");

  const u64 lines = opts.lines_or(full_mode() ? (1u << 12) : (1u << 11));
  const u64 endurance = 65536;
  const auto pcm_cfg = pcm::PcmConfig::scaled(lines, endurance);
  const double ideal = analytic::ideal_lifetime_ns(pcm_cfg);
  const u64 seeds = opts.seeds_or(full_mode() ? 5 : 3);

  Table t({"outer PRP", "stages", "RAA fraction of ideal (avg)", "vs table PRP"});
  double table_frac = 0.0;

  auto run_config = [&](wl::OuterPrpKind kind, u32 stages) {
    double sum = 0.0;
    for (u64 seed = 0; seed < seeds; ++seed) {
      wl::SecurityRbsgConfig cfg;
      cfg.lines = lines;
      cfg.sub_regions = lines / 64;
      cfg.inner_interval = 8;
      cfg.outer_interval = 16;
      cfg.stages = stages;
      cfg.prp = kind;
      cfg.seed = 9 + seed;
      ctl::MemoryController mc(pcm_cfg, std::make_unique<wl::SecurityRbsg>(cfg));
      u64 sm = seed ^ 0x5AA0u;
      attack::RepeatedAddressAttack raa(La{splitmix64(sm) % lines});
      const auto res = attack::run_attack(mc, raa, u64{1} << 40);
      sum += res.succeeded ? static_cast<double>(res.lifetime.value()) : 0.0;
    }
    return sum / static_cast<double>(seeds) / ideal;
  };

  table_frac = run_config(wl::OuterPrpKind::kTablePrp, 1);
  t.add_row({"random table (ideal)", "-", fmt_double(table_frac, 3), "1.00"});
  for (u32 stages : {3u, 7u, 20u}) {
    const double frac = run_config(wl::OuterPrpKind::kCubingFeistel, stages);
    t.add_row({"cubing Feistel", std::to_string(stages), fmt_double(frac, 3),
               fmt_double(frac / table_frac, 3)});
  }
  t.print(std::cout);

  std::cout << "\nreading: the cubing Feistel never reaches the table-PRP fraction —\n"
               "the T-function's weak diffusion is the reason Security RBSG tops out\n"
               "around 2/3 of the ideal lifetime in the paper (and why hammering\n"
               "LA 0, a degenerate Feistel input, is measurably more effective than\n"
               "hammering a random address — see EXPERIMENTS.md).\n";
  return 0;
}
