#pragma once
// Shared helpers for the figure benches.
//
// Every figure bench prints three things side by side:
//   1. the paper's reported value (hard-coded from the text/figures),
//   2. the closed-form model evaluated at PAPER scale (1 GB, E = 1e8),
//   3. an exact to-failure simulation at a SCALED bank (see DESIGN.md §3)
// so the trend can be checked at both scales. Set SRBSG_FULL=1 for larger
// scaled banks (slower, tighter curves).

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep.hpp"

namespace srbsg::bench {

inline bool full_mode() {
  const char* v = std::getenv("SRBSG_FULL");
  return v != nullptr && v[0] == '1';
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==== " << title << " ====\n"
            << "paper reference: " << paper_ref << "\n"
            << (full_mode() ? "mode: FULL (SRBSG_FULL=1)\n" : "mode: quick\n")
            << "\n";
}

/// Days, hours or seconds with unit, from ns.
inline std::string dur(double ns) { return fmt_duration_ns(ns); }

}  // namespace srbsg::bench
