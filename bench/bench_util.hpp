#pragma once
// Shared helpers for the figure benches.
//
// Every figure bench prints three things side by side:
//   1. the paper's reported value (hard-coded from the text/figures),
//   2. the closed-form model evaluated at PAPER scale (1 GB, E = 1e8),
//   3. an exact to-failure simulation at a SCALED bank (see DESIGN.md §3)
// so the trend can be checked at both scales. Set SRBSG_FULL=1 for larger
// scaled banks (slower, tighter curves).
//
// All binaries share one flag parser (parse_bench_options):
//   --threads N     worker threads for the sweep pool (0 = hardware)
//   --seeds N       seeded replicas per configuration
//   --scale B       log2 of the scaled bank's line count
//   --json PATH     write machine-readable results to PATH
//   --trace-out PATH  write a JSONL event trace (telemetry_schema 2;
//                     --telemetry is a deprecated alias)
// Each bench declares which flags it honors; setting an unsupported flag
// prints a notice instead of silently doing nothing.

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/sweep.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::bench {

inline bool full_mode() {
  const char* v = std::getenv("SRBSG_FULL");
  return v != nullptr && v[0] == '1';
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==== " << title << " ====\n"
            << "paper reference: " << paper_ref << "\n"
            << (full_mode() ? "mode: FULL (SRBSG_FULL=1)\n" : "mode: quick\n")
            << "\n";
}

/// Days, hours or seconds with unit, from ns.
inline std::string dur(double ns) { return fmt_duration_ns(ns); }

/// Which of the standard flags a bench honors (bitmask for
/// parse_bench_options).
enum BenchFlag : unsigned {
  kFlagThreads = 1u << 0,
  kFlagSeeds = 1u << 1,
  kFlagScale = 1u << 2,
  kFlagJson = 1u << 3,
  kFlagTelemetry = 1u << 4,
  kFlagEngine = 1u << 5,
  kFlagAll =
      kFlagThreads | kFlagSeeds | kFlagScale | kFlagJson | kFlagTelemetry | kFlagEngine,
};

struct BenchOptions {
  std::size_t threads{0};  ///< 0 = hardware concurrency
  u64 seeds{0};            ///< 0 = bench default (quick/FULL dependent)
  u64 scale{0};            ///< 0 = bench default; else log2(scaled bank lines)
  std::string json;        ///< empty = no JSON output
  /// Empty = telemetry off; else the JSONL trace path (--trace-out, or
  /// its deprecated alias --telemetry).
  std::string telemetry;
  /// write_cycle engine tier for simulation runs (--engine
  /// reference|windowed|epoch). Benches that race tiers against each
  /// other (perf_epoch) ignore it.
  wl::EngineTier engine{wl::EngineTier::kWindowed};

  /// Bench-default plumbing: flag value when given, `fallback` otherwise.
  [[nodiscard]] u64 seeds_or(u64 fallback) const { return seeds > 0 ? seeds : fallback; }
  [[nodiscard]] u64 lines_or(u64 fallback) const {
    return scale > 0 ? (u64{1} << scale) : fallback;
  }
};

inline void print_bench_usage(std::string_view prog, unsigned supported) {
  std::cout << "usage: " << prog << " [flags]\n";
  if (supported & kFlagThreads) {
    std::cout << "  --threads N   sweep pool threads (0 = hardware)\n";
  }
  if (supported & kFlagSeeds) {
    std::cout << "  --seeds N     seeded replicas per configuration\n";
  }
  if (supported & kFlagScale) {
    std::cout << "  --scale B     log2 of the scaled bank line count\n";
  }
  if (supported & kFlagJson) std::cout << "  --json PATH   write machine-readable results\n";
  if (supported & kFlagTelemetry) {
    std::cout << "  --trace-out PATH  write a JSONL event trace (alias: --telemetry)\n";
  }
  if (supported & kFlagEngine) {
    std::cout << "  --engine T    write_cycle engine tier: reference|windowed|epoch\n";
  }
  std::cout << "  --help        this text\n"
            << "env: SRBSG_FULL=1 enlarges the default grids\n";
}

/// One parser for every bench binary. Exits 0 on --help, 2 on malformed
/// input; flags outside `supported` are accepted with a stderr notice so
/// scripted grids can pass a uniform flag set.
inline BenchOptions parse_bench_options(int argc, char** argv, unsigned supported = kFlagAll) {
  BenchOptions o;
  const std::string_view prog = argc > 0 ? argv[0] : "bench";
  auto need_value = [&](int& i, std::string_view flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << prog << ": missing value for " << flag << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  auto parse_u64 = [&](const char* text, std::string_view flag) -> u64 {
    char* end = nullptr;
    const u64 v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
      std::cerr << prog << ": bad value '" << text << "' for " << flag << "\n";
      std::exit(2);
    }
    return v;
  };
  auto note_unsupported = [&](std::string_view flag, bool is_supported) {
    if (!is_supported) std::cerr << prog << ": note: " << flag << " has no effect here\n";
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--threads") {
      o.threads = static_cast<std::size_t>(parse_u64(need_value(i, a), a));
      note_unsupported(a, (supported & kFlagThreads) != 0);
    } else if (a == "--seeds") {
      o.seeds = parse_u64(need_value(i, a), a);
      note_unsupported(a, (supported & kFlagSeeds) != 0);
    } else if (a == "--scale") {
      o.scale = parse_u64(need_value(i, a), a);
      if (o.scale > 30) {
        std::cerr << prog << ": --scale " << o.scale << " is a log2, not a line count\n";
        std::exit(2);
      }
      note_unsupported(a, (supported & kFlagScale) != 0);
    } else if (a == "--json") {
      o.json = need_value(i, a);
      note_unsupported(a, (supported & kFlagJson) != 0);
    } else if (a == "--trace-out" || a == "--telemetry") {
      o.telemetry = need_value(i, a);
      note_unsupported(a, (supported & kFlagTelemetry) != 0);
    } else if (a == "--engine") {
      const char* v = need_value(i, a);
      try {
        o.engine = wl::parse_engine_tier(v);
      } catch (const CheckFailure&) {
        std::cerr << prog << ": bad value '" << v << "' for --engine"
                  << " (want reference|windowed|epoch)\n";
        std::exit(2);
      }
      note_unsupported(a, (supported & kFlagEngine) != 0);
    } else if (a == "--help" || a == "-h") {
      print_bench_usage(prog, supported);
      std::exit(0);
    } else {
      std::cerr << prog << ": unknown flag '" << a << "'\n";
      print_bench_usage(prog, supported);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace srbsg::bench
