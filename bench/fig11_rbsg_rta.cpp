// Fig. 11 — lifetime of RBSG under RTA vs RAA, over regions {32,64,128}
// and remapping intervals {16,32,64,100}. Paper headline: with the
// recommended configuration (32 regions, ψ=100) RTA fails the bank in
// 478 s, 27435x faster than RAA.

#include "analytic/lifetime_models.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagThreads | kFlagScale);

  print_header("Fig. 11: RBSG under RTA and RAA",
               "RTA 478 s @ (R=32, psi=100); RAA 27435x slower");

  const auto paper = pcm::PcmConfig::paper_bank();
  const u64 scaled_lines = opts.lines_or(full_mode() ? (1u << 15) : (1u << 13));
  const u64 scaled_endurance = 51'200;  // >= 2 rotations for every config

  Table t({"R", "psi", "model RTA (paper scale)", "model RAA (paper scale)", "RTA/RAA",
           "sim RTA (scaled)", "sim RAA (scaled)"});

  // The grid runs as one sweep (RTA and RAA interleaved per shape) so the
  // pool keeps every core busy and the arena recycles one bank per worker.
  std::vector<sim::LifetimeConfig> configs;
  for (u64 regions : {32u, 64u, 128u}) {
    for (u64 interval : {16u, 32u, 64u, 100u}) {
      sim::LifetimeConfig c;
      c.pcm = pcm::PcmConfig::scaled(scaled_lines, scaled_endurance);
      c.scheme.kind = wl::SchemeKind::kRbsg;
      c.scheme.lines = scaled_lines;
      c.scheme.regions = regions;
      c.scheme.inner_interval = interval;
      c.scheme.seed = 5;
      c.attack = sim::AttackKind::kRta;
      c.write_budget = u64{1} << 36;
      configs.push_back(c);
      c.attack = sim::AttackKind::kRaa;
      configs.push_back(c);
    }
  }
  ThreadPool pool(opts.threads);
  const auto entries = sim::run_sweep(configs, pool);

  auto cell = [](const sim::SweepEntry& e) {
    return e.outcome.result.succeeded
               ? fmt_duration_ns(static_cast<double>(e.outcome.result.lifetime.value()))
               : std::string("budget");
  };
  std::size_t idx = 0;
  for (u64 regions : {32u, 64u, 128u}) {
    for (u64 interval : {16u, 32u, 64u, 100u}) {
      const analytic::RbsgShape shape{regions, interval};
      const double model_rta = analytic::rta_rbsg_ns(paper, shape).total_ns;
      const double model_raa = analytic::raa_rbsg_ns(paper, shape);
      const auto& rta = entries[idx++];
      const auto& raa = entries[idx++];
      t.add_row({std::to_string(regions), std::to_string(interval), dur(model_rta),
                 dur(model_raa), fmt_double(model_raa / model_rta, 4), cell(rta), cell(raa)});
    }
  }
  t.print(std::cout);

  const auto headline = analytic::rta_rbsg_ns(paper, analytic::RbsgShape{32, 100});
  std::cout << "\nheadline: model RTA at the recommended config = "
            << dur(headline.total_ns) << " (paper: 478 s); speedup over RAA = "
            << fmt_double(analytic::raa_rbsg_ns(paper, analytic::RbsgShape{32, 100}) /
                              headline.total_ns,
                          5)
            << "x (paper: 27435x)\n"
            << "note: our wear phase floods ALL-0 (125 ns writes), a strictly\n"
            << "stronger attacker than the paper's, hence the shorter lifetime.\n";
  return 0;
}
