// Fig. 12 — average lifetime of two-level Security Refresh under RTA over
// the Table-I grid (sub-regions {256,512,1024}, inner interval
// {16,32,64,128}, outer interval {16,32,64,128,256}); each configuration
// averaged over 5 random keys. Paper headline: 178.8 h at the suggested
// configuration (512, 64, 128).

#include "analytic/lifetime_models.hpp"
#include <algorithm>

#include "bench_util.hpp"
#include "common/bitops.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts =
      parse_bench_options(argc, argv, kFlagThreads | kFlagSeeds | kFlagScale);

  print_header("Fig. 12: two-level SR under RTA (avg of keys)",
               "178.8 h @ (512 sub-regions, psi_in=64, psi_out=128)");

  const auto paper = pcm::PcmConfig::paper_bank();

  // The scaled bank shrinks every sub-region by the same power of two,
  // so the grid's relative ordering (more sub-regions = smaller regions)
  // is preserved: M_scaled = M_paper >> shift.
  const u64 scaled_lines = opts.lines_or(full_mode() ? (1u << 14) : (1u << 13));
  const u64 scaled_endurance = 2048;
  const u64 seeds = opts.seeds_or(full_mode() ? 5 : 2);
  const u64 scale_shift = paper.address_bits() - log2_floor(scaled_lines);

  ThreadPool pool(opts.threads);
  sim::WorkerArena arena;  // recycle banks across the whole grid
  Table t({"sub-regions", "psi_in", "psi_out", "model RTA (paper scale)",
           "sim RTA avg (scaled)", "sim rounds"});

  for (u64 sub_regions : {256u, 512u, 1024u}) {
    for (u64 inner : {16u, 32u, 64u, 128u}) {
      for (u64 outer : {16u, 32u, 64u, 128u, 256u}) {
        const double model =
            analytic::rta_sr2_ns(paper, analytic::Sr2Shape{sub_regions, inner, outer})
                .total_ns;

        sim::LifetimeConfig c;
        c.pcm = pcm::PcmConfig::scaled(scaled_lines, scaled_endurance);
        c.scheme.kind = wl::SchemeKind::kSr2;
        c.scheme.lines = scaled_lines;
        const u64 paper_m = paper.line_count / sub_regions;
        c.scheme.regions = scaled_lines / std::max<u64>(4, paper_m >> scale_shift);
        c.scheme.inner_interval = inner;
        c.scheme.outer_interval = outer;
        c.attack = sim::AttackKind::kRta;
        c.write_budget = u64{1} << 36;
        const sim::AverageLifetime avg = sim::average_lifetime(c, seeds, pool, arena);
        std::string cell = avg.counted > 0 ? dur(avg.mean_ns) : std::string("budget");
        if (avg.counted > 0 && !avg.complete()) {
          // Partial convergence: the mean covers counted/seeds replicas.
          cell += " (" + std::to_string(avg.counted) + "/" + std::to_string(avg.seeds) + ")";
        }

        const auto breakdown =
            analytic::rta_sr2_ns(paper, analytic::Sr2Shape{sub_regions, inner, outer});
        t.add_row({std::to_string(sub_regions), std::to_string(inner),
                   std::to_string(outer), dur(model), cell,
                   fmt_double(breakdown.rounds, 4)});
      }
    }
  }
  t.print(std::cout);

  const double suggested =
      analytic::rta_sr2_ns(paper, analytic::Sr2Shape{512, 64, 128}).total_ns;
  std::cout << "\nheadline: model RTA at the suggested config = " << dur(suggested)
            << " (paper: 178.8 h; our attacker floods ALL-0 at 125 ns instead of\n"
               "normal-latency data, which shortens the wall clock by ~6x while\n"
               "every write-count trend matches — see EXPERIMENTS.md).\n";
  return 0;
}
