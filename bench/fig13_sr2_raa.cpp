// Fig. 13 — average lifetime of two-level Security Refresh under RAA over
// the Table-I grid. Paper headline: ~105 months (≈3200 days), 322x longer
// than under RTA, at ~2/3 of the ideal lifetime.
//
// Scaling note (DESIGN.md §3): lifetime fractions are governed by two
// regime ratios that must stay paper-like — visits per slot until failure
// E/((M+1)·ψ_in) and outer stays per slot E/(R·ψ_out). The scaled grid
// divides the line count, region size and both intervals by the same
// factor, which preserves the grid's relative ordering while keeping both
// ratios high.
//
// Dense-grid protocol (EXPERIMENTS.md): --seeds N averages N key seeds
// per configuration and --engine epoch runs the whole sweep under the
// epoch fast-forward tier (bit-identical to windowed — gated by
// perf_epoch), which is what makes 16-seed grids affordable.

#include <algorithm>
#include <vector>

#include "analytic/lifetime_models.hpp"
#include "bench_util.hpp"
#include "common/bitops.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(
      argc, argv, kFlagThreads | kFlagScale | kFlagSeeds | kFlagEngine);

  print_header("Fig. 13: two-level SR under RAA",
               "~105 months at the suggested config; ideal = 4854 days");

  const auto paper = pcm::PcmConfig::paper_bank();
  const double ideal = analytic::ideal_lifetime_ns(paper);

  const u64 scaled_lines = opts.lines_or(full_mode() ? (1u << 12) : (1u << 11));
  const u64 interval_shift = 3;  // ψ/8
  const u64 region_shift = 4;    // R/16
  const u64 scaled_endurance = full_mode() ? (1u << 17) : (1u << 16);
  const auto scaled = pcm::PcmConfig::scaled(scaled_lines, scaled_endurance);
  const double scaled_ideal = analytic::ideal_lifetime_ns(scaled);

  const u64 seeds = opts.seeds_or(1);
  Table t({"sub-regions", "psi_in", "psi_out", "sim RAA avg (scaled)",
           "fraction of ideal", "extrapolated (paper scale)"});

  const std::vector<u64> inners =
      full_mode() ? std::vector<u64>{16, 32, 64, 128} : std::vector<u64>{32, 64, 128};
  const std::vector<u64> outers = full_mode() ? std::vector<u64>{16, 32, 64, 128, 256}
                                              : std::vector<u64>{16, 64, 256};
  std::vector<sim::LifetimeConfig> configs;
  for (u64 sub_regions : {256u, 512u, 1024u}) {
    for (u64 inner : inners) {
      for (u64 outer : outers) {
        for (u64 s = 0; s < seeds; ++s) {
          sim::LifetimeConfig c;
          c.pcm = scaled;
          c.scheme.kind = wl::SchemeKind::kSr2;
          c.scheme.lines = scaled_lines;
          c.scheme.regions = sub_regions >> region_shift;
          c.scheme.inner_interval = std::max<u64>(2, inner >> interval_shift);
          c.scheme.outer_interval = std::max<u64>(2, outer >> interval_shift);
          c.scheme.seed = 5 + s;
          c.attack = sim::AttackKind::kRaa;
          c.write_budget = u64{1} << 40;
          c.engine = opts.engine;
          configs.push_back(c);
        }
      }
    }
  }
  ThreadPool pool(opts.threads);
  const auto entries = sim::run_sweep(configs, pool);

  std::size_t idx = 0;
  for (u64 sub_regions : {256u, 512u, 1024u}) {
    for (u64 inner : inners) {
      for (u64 outer : outers) {
        double sum = 0.0;
        u64 counted = 0;
        for (u64 s = 0; s < seeds; ++s) {
          const auto& out = entries[idx++].outcome;
          if (!out.result.succeeded) continue;
          sum += static_cast<double>(out.result.lifetime.value());
          ++counted;
        }
        const double measured = counted > 0 ? sum / static_cast<double>(counted) : 0.0;
        const double fraction = measured / scaled_ideal;
        std::string cell = measured > 0 ? dur(measured) : std::string("budget");
        if (counted > 0 && counted < seeds) {
          // Partial convergence: the mean covers counted/seeds replicas.
          cell += " (" + std::to_string(counted) + "/" + std::to_string(seeds) + ")";
        }
        t.add_row({std::to_string(sub_regions), std::to_string(inner),
                   std::to_string(outer), cell, fmt_double(fraction, 3),
                   measured > 0 ? dur(fraction * ideal) : "-"});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nheadline: paper reports ~105 months = " << dur(105.0 * 30.44 * 86400e9)
            << " = " << fmt_double(105.0 * 30.44 / 4854.0, 3)
            << " of ideal; compare with the 'fraction of ideal' column (small banks\n"
               "depress the absolute fraction — extreme-value statistics, see\n"
               "EXPERIMENTS.md — but the grid's relative ordering carries over).\n"
               "RTA vs RAA factor at the suggested config: paper 322x; our model "
            << fmt_double(analytic::raa_sr2_ns(paper, 0.66) /
                              analytic::rta_sr2_ns(paper, analytic::Sr2Shape{512, 64, 128})
                                  .total_ns,
                          4)
            << "x (ALL-0-flooding attacker, see EXPERIMENTS.md).\n";
  return 0;
}
