// Fig. 14 — average lifetime of Security RBSG as a function of the
// number of DFN stages (3..20), under RAA and BPA, compared with
// two-level SR under RAA and the ideal lifetime. Paper headline: 7 stages
// reach 67.2% (RAA) / 66.4% (BPA) of ideal; BPA is insensitive to the
// stage count; 3 stages only manage ~20% under RAA.

#include "analytic/lifetime_models.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts =
      parse_bench_options(argc, argv, kFlagThreads | kFlagSeeds | kFlagScale);

  print_header("Fig. 14: Security RBSG lifetime vs DFN stages",
               "7 stages: 67.2% ideal (RAA), 66.4% (BPA); 3 stages ~20% (RAA)");

  const u64 lines = opts.lines_or(full_mode() ? (1u << 12) : (1u << 11));
  // Regime: the fraction-of-ideal is governed by E / visit wear, where a
  // visit deposits (M+1)·ψ_in = 520 writes on one slot. The paper's ratio
  // is E/visit ≈ 190; E = 65536 gives ≈ 126 here, close enough for the
  // asymptotic fractions to be comparable (see EXPERIMENTS.md).
  const u64 endurance = 65536;
  const auto scaled = pcm::PcmConfig::scaled(lines, endurance);
  const double ideal = analytic::ideal_lifetime_ns(scaled);
  const double paper_ideal = analytic::ideal_lifetime_ns(pcm::PcmConfig::paper_bank());

  auto base = [&](u32 stages) {
    sim::LifetimeConfig c;
    c.pcm = scaled;
    c.scheme.kind = wl::SchemeKind::kSecurityRbsg;
    c.scheme.lines = lines;
    c.scheme.regions = lines / 64;  // suggested-shape sub-regions (M = 64)
    c.scheme.inner_interval = 8;    // keeps (M+1)·ψ_in << E at this scale
    c.scheme.outer_interval = 16;
    c.scheme.stages = stages;
    c.scheme.seed = 9;
    c.write_budget = u64{1} << 38;
    return c;
  };

  // Reference: two-level SR under RAA at the same shape.
  sim::LifetimeConfig sr2 = base(7);
  sr2.scheme.kind = wl::SchemeKind::kSr2;
  sr2.attack = sim::AttackKind::kRaa;
  const auto sr2_out = run_lifetime(sr2);
  const double sr2_frac =
      sr2_out.result.succeeded
          ? static_cast<double>(sr2_out.result.lifetime.value()) / ideal
          : 0.0;

  // Average over seeds: at small scale a single run's fraction is noisy
  // (the failure is an extreme-value event). Non-converged replicas count
  // as zero lifetime here so a too-small budget depresses the fraction
  // visibly instead of silently shrinking the sample.
  ThreadPool pool(opts.threads);
  sim::WorkerArena arena;
  const u64 seeds = opts.seeds_or(full_mode() ? 5 : 3);
  auto avg_fraction = [&](u32 stages, sim::AttackKind attack) {
    auto cfg = base(stages);
    cfg.attack = attack;
    const sim::AverageLifetime avg = sim::average_lifetime(cfg, seeds, pool, arena);
    const double counted_sum = avg.mean_ns * static_cast<double>(avg.counted);
    return counted_sum / static_cast<double>(avg.seeds) / ideal;
  };

  Table t({"stages", "RAA fraction of ideal", "BPA fraction of ideal",
           "RAA extrapolated (paper)", "security margin (>=1 secure)"});
  for (u32 stages : {3u, 5u, 7u, 10u, 14u, 20u}) {
    const double raa_frac = avg_fraction(stages, sim::AttackKind::kRaa);
    const double bpa_frac = avg_fraction(stages, sim::AttackKind::kBpa);
    const auto margin = analytic::dfn_security_margin(
        pcm::PcmConfig::paper_bank(), analytic::SecurityRbsgShape{512, 64, 128, stages});

    t.add_row({std::to_string(stages), fmt_double(raa_frac, 3), fmt_double(bpa_frac, 3),
               dur(raa_frac * paper_ideal), fmt_double(margin, 3)});
  }
  t.print(std::cout);

  std::cout << "\ntwo-level SR under RAA at the same shape: "
            << fmt_double(sr2_frac, 3) << " of ideal (paper: ~0.66)\n"
            << "paper picks 7 stages: enough margin (>=1) and ~2/3 of ideal under RAA.\n";
  return 0;
}
