// Fig. 15 — average lifetime of Security RBSG under RAA over the Table-I
// grid. Paper observations: lifetime grows with the inner interval and
// the number of sub-regions, and (unlike SR2) grows with the outer
// interval too, because the inner level is Start-Gap; the recommended
// configuration exceeds 108 months.
//
// Same scaling recipe as fig13: lines, region size and intervals divided
// by a common factor to preserve the regime ratios (see that file).

#include <algorithm>
#include <vector>

#include "analytic/lifetime_models.hpp"
#include "bench_util.hpp"
#include "common/bitops.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagThreads | kFlagScale);

  print_header("Fig. 15: Security RBSG under RAA",
               ">108 months at the recommended configuration");

  const auto paper = pcm::PcmConfig::paper_bank();
  const double paper_ideal = analytic::ideal_lifetime_ns(paper);

  const u64 scaled_lines = opts.lines_or(full_mode() ? (1u << 12) : (1u << 11));
  const u64 interval_shift = 3;  // ψ/8
  const u64 region_shift = 4;    // R/16
  const u64 scaled_endurance = full_mode() ? (1u << 17) : (1u << 16);
  const auto scaled = pcm::PcmConfig::scaled(scaled_lines, scaled_endurance);
  const double scaled_ideal = analytic::ideal_lifetime_ns(scaled);

  Table t({"sub-regions", "psi_in", "psi_out", "sim RAA (scaled)", "fraction of ideal",
           "extrapolated (paper scale)"});

  const std::vector<u64> inners =
      full_mode() ? std::vector<u64>{16, 32, 64, 128} : std::vector<u64>{32, 64, 128};
  const std::vector<u64> outers = full_mode() ? std::vector<u64>{16, 32, 64, 128, 256}
                                              : std::vector<u64>{16, 64, 256};
  std::vector<sim::LifetimeConfig> configs;
  for (u64 sub_regions : {256u, 512u, 1024u}) {
    for (u64 inner : inners) {
      for (u64 outer : outers) {
        sim::LifetimeConfig c;
        c.pcm = scaled;
        c.scheme.kind = wl::SchemeKind::kSecurityRbsg;
        c.scheme.lines = scaled_lines;
        c.scheme.regions = sub_regions >> region_shift;
        c.scheme.inner_interval = std::max<u64>(2, inner >> interval_shift);
        c.scheme.outer_interval = std::max<u64>(2, outer >> interval_shift);
        c.scheme.stages = 7;
        c.scheme.seed = 9;
        c.attack = sim::AttackKind::kRaa;
        c.write_budget = u64{1} << 40;
        configs.push_back(c);
      }
    }
  }
  ThreadPool pool(opts.threads);
  const auto entries = sim::run_sweep(configs, pool);

  std::size_t idx = 0;
  for (u64 sub_regions : {256u, 512u, 1024u}) {
    for (u64 inner : inners) {
      for (u64 outer : outers) {
        const auto& out = entries[idx++].outcome;
        const double measured =
            out.result.succeeded ? static_cast<double>(out.result.lifetime.value()) : 0.0;
        const double fraction = measured / scaled_ideal;
        t.add_row({std::to_string(sub_regions), std::to_string(inner),
                   std::to_string(outer), measured > 0 ? dur(measured) : "budget",
                   fmt_double(fraction, 3),
                   measured > 0 ? dur(fraction * paper_ideal) : "-"});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\npaper: >108 months = " << dur(108.0 * 30.44 * 86400e9)
            << " at (512, 64, 128); trends to check: lifetime rises with psi_in,\n"
               "with sub-regions, and with psi_out (the Start-Gap inner level makes\n"
               "RAA writes walk forward within an outer round).\n";
  return 0;
}
