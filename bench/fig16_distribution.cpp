// Fig. 16 — normalized accumulated write distribution across the memory
// space under RAA against Security RBSG, for growing write counts. Paper
// observation: the curve approaches the diagonal (perfectly even wear) as
// writes accumulate; at 1e13 writes it is "approximate to linear".

#include "bench_util.hpp"
#include "sim/write_distribution.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagScale);

  print_header("Fig. 16: RAA write distribution over the space",
               "curves for 1e10..1e13 writes approach the diagonal");

  const u64 lines = opts.lines_or(full_mode() ? (1u << 16) : (1u << 14));
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = lines;
  spec.regions = lines / 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;
  spec.seed = 9;
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);

  // Paper writes-per-line span 2.4e3..2.4e6; the scaled sweep covers the
  // same growth (x10 per curve) at a feasible volume.
  std::vector<u64> write_counts;
  for (u64 w = 100 * lines; w <= (full_mode() ? 100'000 : 10'000) * lines; w *= 10) {
    write_counts.push_back(w);
  }

  Table t({"writes", "writes/line", "max |curve - diagonal|", "gini", "max/mean wear"});
  std::vector<std::vector<double>> curves;
  double prev_dev = 1.0;
  bool monotone = true;
  for (u64 w : write_counts) {
    const auto res = sim::raa_write_distribution(cfg, spec, w, 20);
    curves.push_back(res.cumulative);
    if (res.linearity_deviation > prev_dev) monotone = false;
    prev_dev = res.linearity_deviation;
    t.add_row({std::to_string(w), std::to_string(w / lines),
               fmt_double(res.linearity_deviation, 4), fmt_double(res.metrics.gini, 4),
               fmt_double(res.metrics.max_over_mean, 4)});
  }
  t.print(std::cout);

  std::cout << "\nnormalized accumulated writes (rows = write counts, cols = address "
               "twentieths; diagonal = perfectly even):\n";
  for (std::size_t i = 0; i < curves.size(); ++i) {
    std::cout << "  " << write_counts[i] << ":";
    for (double v : curves[i]) std::cout << ' ' << fmt_double(v, 2);
    std::cout << '\n';
  }
  std::cout << "\ncurves flatten toward the diagonal as writes grow"
            << (monotone ? " (monotone, as in the paper)" : "") << ".\n";
  return 0;
}
