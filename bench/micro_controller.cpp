// Microbenchmarks for the simulator's write path: per-write cost of each
// wear-leveling scheme and the speedup of the bulk fast path (which makes
// to-failure runs feasible).

#include <benchmark/benchmark.h>

#include "controller/memory_controller.hpp"
#include "wl/factory.hpp"

namespace {

using namespace srbsg;

constexpr u64 kLines = 1u << 14;

wl::SchemeSpec spec_for(wl::SchemeKind kind) {
  wl::SchemeSpec s;
  s.kind = kind;
  s.lines = kLines;
  s.regions = 64;
  s.inner_interval = 64;
  s.outer_interval = 128;
  s.stages = 7;
  return s;
}

void BM_WritePath(benchmark::State& state) {
  const auto kind = static_cast<wl::SchemeKind>(state.range(0));
  ctl::MemoryController mc(pcm::PcmConfig::scaled(kLines, u64{1} << 60),
                           wl::make_scheme(spec_for(kind)));
  u64 la = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.write(La{la}, pcm::LineData::mixed(la)));
    la = (la + 1) & (kLines - 1);
  }
  state.SetLabel(std::string(wl::to_string(kind)));
}
BENCHMARK(BM_WritePath)
    ->Arg(static_cast<int>(wl::SchemeKind::kNone))
    ->Arg(static_cast<int>(wl::SchemeKind::kRbsg))
    ->Arg(static_cast<int>(wl::SchemeKind::kSr1))
    ->Arg(static_cast<int>(wl::SchemeKind::kSr2))
    ->Arg(static_cast<int>(wl::SchemeKind::kMultiWaySr))
    ->Arg(static_cast<int>(wl::SchemeKind::kSecurityRbsg));

void BM_BulkWriteFastPath(benchmark::State& state) {
  ctl::MemoryController mc(pcm::PcmConfig::scaled(kLines, u64{1} << 60),
                           wl::make_scheme(spec_for(wl::SchemeKind::kSecurityRbsg)));
  const u64 chunk = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.write_repeated(La{0}, pcm::LineData::all_zero(), chunk));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(chunk));
}
BENCHMARK(BM_BulkWriteFastPath)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Translate(benchmark::State& state) {
  const auto scheme = wl::make_scheme(spec_for(wl::SchemeKind::kSecurityRbsg));
  u64 la = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->translate(La{la}));
    la = (la + 1) & (kLines - 1);
  }
}
BENCHMARK(BM_Translate);

}  // namespace
