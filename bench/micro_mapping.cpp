// Microbenchmarks for the address randomizers: the DFN translation sits
// on the memory critical path (the paper charges 1 cycle per stage), so
// map/unmap throughput matters.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mapping/binary_matrix.hpp"
#include "mapping/feistel.hpp"
#include "mapping/xor_mapper.hpp"

namespace {

using namespace srbsg;

void BM_FeistelMap(benchmark::State& state) {
  Rng rng(1);
  const auto stages = static_cast<u32>(state.range(0));
  const auto keys = mapping::FeistelNetwork::random_keys(22, stages, rng);
  mapping::FeistelNetwork net(22, keys);
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.map(x));
    x = (x + 1) & (net.domain_size() - 1);
  }
}
BENCHMARK(BM_FeistelMap)->Arg(3)->Arg(7)->Arg(20);

void BM_FeistelUnmap(benchmark::State& state) {
  Rng rng(2);
  const auto keys = mapping::FeistelNetwork::random_keys(22, 7, rng);
  mapping::FeistelNetwork net(22, keys);
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.unmap(x));
    x = (x + 1) & (net.domain_size() - 1);
  }
}
BENCHMARK(BM_FeistelUnmap);

void BM_FeistelOddWidthCycleWalk(benchmark::State& state) {
  Rng rng(3);
  const auto keys = mapping::FeistelNetwork::random_keys(21, 7, rng);
  mapping::FeistelNetwork net(21, keys);
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.map(x));
    x = (x + 1) % net.domain_size();
  }
}
BENCHMARK(BM_FeistelOddWidthCycleWalk);

void BM_BinaryMatrixMap(benchmark::State& state) {
  Rng rng(4);
  mapping::BinaryMatrixMapper m(22, rng);
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.map(x));
    x = (x + 1) & (m.domain_size() - 1);
  }
}
BENCHMARK(BM_BinaryMatrixMap);

void BM_XorMap(benchmark::State& state) {
  mapping::XorMapper m(22, 0x2FAB3);
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.map(x));
    x = (x + 1) & (m.domain_size() - 1);
  }
}
BENCHMARK(BM_XorMap);

}  // namespace
