// §V.C.3 — hardware overhead of Security RBSG. Paper numbers for the
// recommended configuration on a 1 GB bank: ~2 KB of controller
// registers, 0.5 MB of isRemap SRAM, one spare line per sub-region plus
// one for the outer level, and (3/8)·S·B² gates for the cubing circuits.

#include "analytic/overhead.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  // Analytic only: every standard flag is accepted but has no effect.
  (void)parse_bench_options(argc, argv, 0);

  print_header("Hardware overhead (Security RBSG)",
               "~2 KB registers, 0.5 MB SRAM, (3/8)SB^2 gates @ (512,64,128,S=7)");

  const auto cfg = pcm::PcmConfig::paper_bank();

  Table t({"stages", "sub-regions", "registers (KB)", "isRemap SRAM (MB)", "spare lines",
           "spare capacity %", "cubing gates"});
  for (u32 stages : {3u, 6u, 7u, 12u, 20u}) {
    for (u64 regions : {256u, 512u, 1024u}) {
      const auto r = analytic::security_rbsg_overhead(
          cfg, analytic::OverheadShape{regions, 64, 128, stages});
      t.add_row({std::to_string(stages), std::to_string(regions),
                 fmt_double(static_cast<double>(r.register_bits) / 8.0 / 1024.0, 4),
                 fmt_double(static_cast<double>(r.isremap_sram_bits) / 8.0 / 1024.0 / 1024.0,
                            4),
                 std::to_string(r.spare_lines),
                 fmt_double(100.0 * r.spare_capacity_fraction, 3),
                 std::to_string(r.cubing_gates)});
    }
  }
  t.print(std::cout);

  const auto rec = analytic::security_rbsg_overhead(cfg, analytic::OverheadShape{});
  std::cout << "\nrecommended config: "
            << fmt_double(static_cast<double>(rec.register_bits) / 8.0 / 1024.0, 3)
            << " KB registers (paper: ~2 KB), "
            << fmt_double(static_cast<double>(rec.isremap_sram_bits) / 8.0 / 1024.0 / 1024.0,
                          3)
            << " MB SRAM (paper: 0.5 MB), " << rec.cubing_gates
            << " gates (paper: (3/8)*7*22^2 = 1270).\n";
  return 0;
}
