// BENCH harness for the epoch fast-forward engine (DESIGN.md §15): the
// windowed PR-4 tier against the epoch tier on the workloads the engine
// was built for, in three sections:
//
//   schemes   — per-scheme single-address hammer (the RAA inner loop)
//               through write_cycle, windowed vs epoch, FNV state-hash
//               identity (same value set as perf_write_path);
//   table1    — the full Fig. 13 Table-I grid (two-level SR under RAA,
//               sub-regions × ψ_in × ψ_out × seeds) swept to failure
//               under both tiers; this is the wall-clock headline;
//   fig14     — the Security RBSG stage sweep (RAA and BPA arms) swept
//               to failure under both tiers.
//
// The epoch tier runs FIRST (cold caches); the windowed tier runs second
// and still loses, which keeps the reported speedup conservative. Every
// outcome is compared across tiers; the process exits nonzero on any
// divergence, so CI can gate on bit-identity while treating timings as
// informational. A model cross-check additionally holds one epoch-tier
// RBSG lifetime to the discrete closed form in analytic/lifetime_models.
//
// Headline (ROADMAP item 2): table1 + fig14 at reference scale
// (SRBSG_FULL=1) complete ~8x faster composite under the epoch tier
// (table1 ~8.4x over 300 entries, fig14 ~2x) with zero observable
// difference; quick scale lands ~3x.  The original >=10x composite
// aspiration is unattainable under strict bit-identity — the DFN walk
// and per-swap wear are part of the compared outcome, which caps fig14
// near 2x (ceiling derivation in DESIGN.md §15) — so the gates are
// identity + the ratio-regression comparison in
// tools/check_bench_json.py, not an absolute multiplier.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "analytic/lifetime_models.hpp"
#include "bench_util.hpp"
#include "pcm/bank.hpp"
#include "telemetry/collector.hpp"
#include "wl/factory.hpp"

namespace {

using namespace srbsg;
using namespace srbsg::bench;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  return os.str();
}

// --- FNV state-hash identity (same value set as perf_write_path) --------

struct PathMetrics {
  u64 writes{0};
  u64 movements{0};
  u64 total_ns{0};
  u64 bank_writes{0};
  u64 wear_hash{0};
  u64 translate_hash{0};
  bool failed{false};
  u64 failed_line{0};
  u64 overshoot{0};

  bool operator==(const PathMetrics&) const = default;
};

u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

PathMetrics harvest(const wl::WearLeveler& s, const pcm::PcmBank& bank,
                    const wl::BulkOutcome& out) {
  PathMetrics m;
  m.writes = out.writes_applied;
  m.movements = out.movements;
  m.total_ns = out.total.value();
  m.bank_writes = bank.total_writes();
  u64 h = 0xcbf29ce484222325ULL;
  for (const u64 w : bank.wear_counts()) h = fnv1a(h, w);
  m.wear_hash = h;
  h = 0xcbf29ce484222325ULL;
  for (u64 la = 0; la < s.logical_lines(); ++la) {
    h = fnv1a(h, s.translate(La{la}).value());
  }
  m.translate_hash = h;
  m.failed = bank.has_failure();
  if (m.failed) {
    m.failed_line = bank.first_failed_line().value();
    m.overshoot = bank.failure_overshoot();
  }
  return m;
}

// --- section results ----------------------------------------------------

struct SchemeRow {
  std::string scheme;
  double windowed_ms{0.0};
  double epoch_ms{0.0};
  double speedup{0.0};
  bool identical{false};
};

struct GridRow {
  std::string name;
  std::size_t entries{0};
  double windowed_ms{0.0};
  double epoch_ms{0.0};
  double speedup{0.0};
  bool identical{false};
};

SchemeRow run_scheme(wl::SchemeKind kind, u64 lines, u64 count) {
  wl::SchemeSpec spec;
  spec.kind = kind;
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;
  spec.seed = 42;
  const auto cfg = pcm::PcmConfig::scaled(lines, 4 * count);  // steady state
  const auto data = pcm::LineData::mixed(0xAA);
  const La pattern[] = {La{lines / 2}};

  auto run_tier = [&](wl::EngineTier tier, double& ms, PathMetrics& m) {
    auto s = wl::make_scheme(spec);
    s->set_engine_tier(tier);
    pcm::PcmBank bank(cfg, s->physical_lines());
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = s->write_cycle(pattern, data, count, bank);
    ms = ms_since(t0);
    m = harvest(*s, bank, out);
  };

  SchemeRow r;
  r.scheme = std::string(wl::to_string(kind));
  PathMetrics epoch_m, windowed_m;
  run_tier(wl::EngineTier::kEpoch, r.epoch_ms, epoch_m);  // cold first
  run_tier(wl::EngineTier::kWindowed, r.windowed_ms, windowed_m);
  r.speedup = r.epoch_ms > 0.0 ? r.windowed_ms / r.epoch_ms : 0.0;
  r.identical = epoch_m == windowed_m;
  return r;
}

bool outcomes_identical(const sim::LifetimeOutcome& a, const sim::LifetimeOutcome& b) {
  return a.result.succeeded == b.result.succeeded && a.result.lifetime == b.result.lifetime &&
         a.result.writes == b.result.writes && a.result.elapsed == b.result.elapsed &&
         a.wear.mean == b.wear.mean &&
         a.wear.coefficient_of_variation == b.wear.coefficient_of_variation &&
         a.wear.gini == b.wear.gini && a.wear.max_over_mean == b.wear.max_over_mean &&
         a.wear.max == b.wear.max && a.wear.min == b.wear.min;
}

/// Sweeps `configs` under the epoch tier, then the windowed tier, and
/// compares every outcome.
GridRow run_grid(std::string name, std::vector<sim::LifetimeConfig> configs,
                 ThreadPool& pool) {
  GridRow r;
  r.name = std::move(name);
  r.entries = configs.size();

  for (auto& c : configs) c.engine = wl::EngineTier::kEpoch;
  sim::WorkerArena epoch_arena;
  const auto t0 = std::chrono::steady_clock::now();
  const auto epoch = sim::run_sweep(configs, pool, epoch_arena);
  r.epoch_ms = ms_since(t0);

  for (auto& c : configs) c.engine = wl::EngineTier::kWindowed;
  sim::WorkerArena windowed_arena;
  const auto t1 = std::chrono::steady_clock::now();
  const auto windowed = sim::run_sweep(configs, pool, windowed_arena);
  r.windowed_ms = ms_since(t1);

  r.speedup = r.epoch_ms > 0.0 ? r.windowed_ms / r.epoch_ms : 0.0;
  r.identical = epoch.size() == windowed.size();
  for (std::size_t i = 0; r.identical && i < epoch.size(); ++i) {
    r.identical = outcomes_identical(epoch[i].outcome, windowed[i].outcome);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts =
      parse_bench_options(argc, argv, kFlagThreads | kFlagSeeds | kFlagScale | kFlagJson);

  print_header("perf_epoch: epoch fast-forward vs windowed engine",
               "engineering bench, no paper figure; see DESIGN.md §15");

  // --- schemes: single-address hammer through write_cycle ---------------
  const u64 scheme_lines = opts.lines_or(full_mode() ? (u64{1} << 14) : (u64{1} << 12));
  const u64 scheme_writes = full_mode() ? (u64{1} << 24) : (u64{1} << 21);
  constexpr wl::SchemeKind kKinds[] = {
      wl::SchemeKind::kNone,         wl::SchemeKind::kStartGap, wl::SchemeKind::kRbsg,
      wl::SchemeKind::kSr1,          wl::SchemeKind::kSr2,      wl::SchemeKind::kMultiWaySr,
      wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kTable,
  };
  std::vector<SchemeRow> schemes;
  for (const wl::SchemeKind kind : kKinds) {
    schemes.push_back(run_scheme(kind, scheme_lines, scheme_writes));
  }

  // --- table1: the Fig. 13 two-level SR RAA grid, swept to failure ------
  // Same scaling recipe as fig13_sr2_raa (DESIGN.md §3), plus seeded
  // replicas — the dense-grid protocol the epoch engine makes affordable.
  const u64 grid_lines = opts.lines_or(full_mode() ? (u64{1} << 12) : (u64{1} << 11));
  const u64 grid_endurance = full_mode() ? (u64{1} << 17) : (u64{1} << 16);
  const u64 seeds = opts.seeds_or(full_mode() ? 5 : 1);
  const auto grid_pcm = pcm::PcmConfig::scaled(grid_lines, grid_endurance);
  const std::vector<u64> inners =
      full_mode() ? std::vector<u64>{16, 32, 64, 128} : std::vector<u64>{32, 64, 128};
  const std::vector<u64> outers = full_mode() ? std::vector<u64>{16, 32, 64, 128, 256}
                                              : std::vector<u64>{16, 64, 256};
  std::vector<sim::LifetimeConfig> table1;
  for (u64 sub_regions : {256u, 512u, 1024u}) {
    for (u64 inner : inners) {
      for (u64 outer : outers) {
        for (u64 seed = 1; seed <= seeds; ++seed) {
          sim::LifetimeConfig c;
          c.pcm = grid_pcm;
          c.scheme.kind = wl::SchemeKind::kSr2;
          c.scheme.lines = grid_lines;
          c.scheme.regions = sub_regions >> 4;  // R/16
          c.scheme.inner_interval = std::max<u64>(2, inner >> 3);  // ψ/8
          c.scheme.outer_interval = std::max<u64>(2, outer >> 3);
          c.scheme.seed = seed;
          c.seed = seed;
          c.attack = sim::AttackKind::kRaa;
          c.write_budget = u64{1} << 40;
          table1.push_back(c);
        }
      }
    }
  }

  // --- fig14: Security RBSG stage sweep, RAA and BPA arms ---------------
  const u64 fig14_lines = opts.lines_or(full_mode() ? (u64{1} << 12) : (u64{1} << 11));
  const u64 fig14_endurance = 65536;
  const auto fig14_pcm = pcm::PcmConfig::scaled(fig14_lines, fig14_endurance);
  std::vector<sim::LifetimeConfig> fig14;
  for (u32 stages : {3u, 5u, 7u, 10u, 14u, 20u}) {
    for (const sim::AttackKind attack : {sim::AttackKind::kRaa, sim::AttackKind::kBpa}) {
      for (u64 seed = 1; seed <= seeds; ++seed) {
        sim::LifetimeConfig c;
        c.pcm = fig14_pcm;
        c.scheme.kind = wl::SchemeKind::kSecurityRbsg;
        c.scheme.lines = fig14_lines;
        c.scheme.regions = fig14_lines / 64;  // suggested shape, M = 64
        c.scheme.inner_interval = 8;
        c.scheme.outer_interval = 16;
        c.scheme.stages = stages;
        c.scheme.seed = seed;
        c.seed = seed;
        c.attack = attack;
        c.write_budget = u64{1} << 38;
        fig14.push_back(c);
      }
    }
  }

  ThreadPool pool(opts.threads);
  std::cout << "schemes: " << scheme_lines << " lines, " << scheme_writes
            << " writes per hammer\n"
            << "table1 grid: " << table1.size() << " entries (" << grid_lines << " lines, "
            << "endurance " << grid_endurance << ", " << seeds << " seeds)\n"
            << "fig14 grid: " << fig14.size() << " entries (" << fig14_lines << " lines, "
            << "endurance " << fig14_endurance << ")\n"
            << "threads: " << pool.size() << "\n\n";

  const GridRow table1_row = run_grid("table1_sr2_raa", std::move(table1), pool);
  const GridRow fig14_row = run_grid("fig14_stages", std::move(fig14), pool);

  // --- model cross-check: epoch-tier RBSG RAA vs the discrete closed
  // form (raa_rbsg_exact_ns tracks the exact simulator within a few
  // percent at any scale).
  double model_rel_err = 0.0;
  {
    sim::LifetimeConfig c;
    c.pcm = pcm::PcmConfig::scaled(u64{1} << 12, u64{1} << 14);
    c.scheme.kind = wl::SchemeKind::kRbsg;
    c.scheme.lines = u64{1} << 12;
    c.scheme.regions = 16;
    c.scheme.inner_interval = 32;
    c.scheme.seed = 3;
    c.seed = 3;
    c.attack = sim::AttackKind::kRaa;
    c.write_budget = u64{1} << 40;
    c.engine = wl::EngineTier::kEpoch;
    const auto out = sim::run_lifetime(c);
    const double model = analytic::raa_rbsg_exact_ns(
        c.pcm, analytic::RbsgShape{c.scheme.regions, c.scheme.inner_interval});
    const double sim_ns = static_cast<double>(out.result.lifetime.value());
    model_rel_err = out.result.succeeded && model > 0.0
                        ? std::abs(sim_ns - model) / model
                        : 1.0;
  }
  const bool model_ok = model_rel_err < 0.10;

  Table st({"scheme", "windowed ms", "epoch ms", "speedup", "identical"});
  bool schemes_identical = true;
  for (const auto& r : schemes) {
    schemes_identical = schemes_identical && r.identical;
    st.add_row({r.scheme, json_number(r.windowed_ms), json_number(r.epoch_ms),
                fmt_double(r.speedup, 2) + "x", r.identical ? "yes" : "NO"});
  }
  st.print(std::cout);

  Table gt({"grid", "entries", "windowed ms", "epoch ms", "speedup", "identical"});
  for (const GridRow* r : {&table1_row, &fig14_row}) {
    gt.add_row({r->name, std::to_string(r->entries), json_number(r->windowed_ms),
                json_number(r->epoch_ms), fmt_double(r->speedup, 2) + "x",
                r->identical ? "yes" : "NO"});
  }
  std::cout << "\n";
  gt.print(std::cout);

  const double composite_windowed = table1_row.windowed_ms + fig14_row.windowed_ms;
  const double composite_epoch = table1_row.epoch_ms + fig14_row.epoch_ms;
  const double composite =
      composite_epoch > 0.0 ? composite_windowed / composite_epoch : 0.0;
  const bool identical = schemes_identical && table1_row.identical && fig14_row.identical;

  std::cout << "\ncomposite grid speedup (table1 + fig14): " << fmt_double(composite, 2)
            << "x  (fig14's identity-bound DFN walk caps the composite "
               "below 10x — DESIGN.md §15)\n"
            << "all sections bit-identical across tiers: " << (identical ? "yes" : "NO")
            << "\n"
            << "epoch RBSG lifetime vs closed form: " << fmt_double(model_rel_err * 100.0, 2)
            << "% relative error (" << (model_ok ? "ok" : "FAIL") << ", gate < 10%)\n";

  if (!opts.json.empty()) {
    std::ofstream os(opts.json);
    if (!os) {
      std::cerr << "perf_epoch: cannot open " << opts.json << " for writing\n";
      return 3;
    }
    os << "{\n"
       << "  \"schema_version\": 1,\n"
       << "  \"telemetry_schema\": " << telemetry::kTelemetrySchemaVersion << ",\n"
       << "  \"bench\": \"perf_epoch\",\n"
       << "  \"config\": {\n"
       << "    \"scheme_lines\": " << scheme_lines << ",\n"
       << "    \"scheme_writes\": " << scheme_writes << ",\n"
       << "    \"grid_lines\": " << grid_lines << ",\n"
       << "    \"grid_endurance\": " << grid_endurance << ",\n"
       << "    \"fig14_lines\": " << fig14_lines << ",\n"
       << "    \"fig14_endurance\": " << fig14_endurance << ",\n"
       << "    \"seeds\": " << seeds << "\n"
       << "  },\n"
       << "  \"schemes\": [\n";
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& r = schemes[i];
      os << "    {\n"
         << "      \"scheme\": \"" << r.scheme << "\",\n"
         << "      \"windowed_ms\": " << json_number(r.windowed_ms) << ",\n"
         << "      \"epoch_ms\": " << json_number(r.epoch_ms) << ",\n"
         << "      \"speedup\": " << json_number(r.speedup) << ",\n"
         << "      \"identical\": " << (r.identical ? "true" : "false") << "\n"
         << "    }" << (i + 1 < schemes.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"grids\": [\n";
    for (const GridRow* r : {&table1_row, &fig14_row}) {
      os << "    {\n"
         << "      \"name\": \"" << r->name << "\",\n"
         << "      \"entries\": " << r->entries << ",\n"
         << "      \"windowed_ms\": " << json_number(r->windowed_ms) << ",\n"
         << "      \"epoch_ms\": " << json_number(r->epoch_ms) << ",\n"
         << "      \"speedup\": " << json_number(r->speedup) << ",\n"
         << "      \"identical\": " << (r->identical ? "true" : "false") << "\n"
         << "    }" << (r == &table1_row ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"composite_speedup\": " << json_number(composite) << ",\n"
       << "  \"model_rel_err\": " << json_number(model_rel_err) << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << opts.json << "\n";
  }

  return identical && model_ok ? 0 : 1;
}
