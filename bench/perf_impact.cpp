// §V.C.4 — performance impact of Security RBSG on PARSEC-like and
// SPEC-CPU2006-like workloads (gem5 substitute; see DESIGN.md §3).
// Paper: average IPC degradation of 1.73% / 1.02% / 0.68% on PARSEC for
// inner intervals 32/64/128 (outer 128), < 0.5% on SPEC, and ~0 for
// bzip2/gcc whose accesses are sparse enough to hide remaps.

#include "bench_util.hpp"
#include "perf/ipc_experiment.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagScale);

  print_header("Perf impact: IPC degradation vs no wear leveling",
               "PARSEC avg 1.73/1.02/0.68 % @ psi_in 32/64/128; SPEC < 0.5 %");

  const u64 lines = opts.lines_or(1u << 14);
  const u64 instructions = full_mode() ? 8'000'000 : 2'000'000;
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  const perf::CoreParams core;  // 1 GHz, 32-entry queue (paper platform)
  const Ns translation{10};     // DFN stages + SRAM lookup (paper: 10 ns)

  Table summary({"suite", "psi_in", "mean degradation %", "max workload", "max %"});
  std::vector<perf::IpcComparison> parsec64;
  for (const u64 inner : {32u, 64u, 128u}) {
    wl::SchemeSpec spec;
    spec.kind = wl::SchemeKind::kSecurityRbsg;
    spec.lines = lines;
    spec.regions = lines / 64;
    spec.inner_interval = inner;
    spec.outer_interval = 128;
    spec.stages = 7;

    for (const auto& [suite_name, profiles] :
         {std::pair{std::string("parsec"), trace::parsec_profiles()},
          std::pair{std::string("spec2006"), trace::spec2006_profiles()}}) {
      const auto results =
          perf::run_ipc_suite(profiles, spec, cfg, core, translation, instructions, 5);
      if (suite_name == "parsec" && inner == 64) parsec64 = results;
      double worst = 0.0;
      std::string worst_name = "-";
      for (const auto& r : results) {
        if (r.degradation_pct > worst) {
          worst = r.degradation_pct;
          worst_name = r.workload;
        }
      }
      summary.add_row({suite_name, std::to_string(inner),
                       fmt_double(perf::mean_degradation(results), 3), worst_name,
                       fmt_double(worst, 3)});
    }
  }
  summary.print(std::cout);

  std::cout << "\nper-workload detail (PARSEC, psi_in=64):\n";
  Table detail({"workload", "IPC baseline", "IPC security-rbsg", "degradation %"});
  for (const auto& r : parsec64) {
    detail.add_row({r.workload, fmt_double(r.ipc_baseline, 4), fmt_double(r.ipc_scheme, 4),
                    fmt_double(r.degradation_pct, 3)});
  }
  detail.print(std::cout);

  // End-to-end sanity: the same comparison with the paper's cache
  // hierarchy in front (only L3 misses/writebacks reach PCM).
  {
    wl::SchemeSpec spec;
    spec.kind = wl::SchemeKind::kSecurityRbsg;
    spec.lines = lines;
    spec.regions = lines / 64;
    spec.inner_interval = 64;
    spec.outer_interval = 128;
    spec.stages = 7;
    const auto& canneal = trace::parsec_profiles()[2];
    const auto cpu = trace::make_profile_trace(canneal, lines, instructions, 5);
    const auto cmp =
        perf::compare_ipc_filtered(cpu, perf::HierarchyConfig{}, spec, cfg, core, translation);
    std::cout << "\nwith the L1/L2/L3-DRAM-cache hierarchy in front (" << cmp.workload
              << "): degradation " << fmt_double(cmp.degradation_pct, 3)
              << " % — caches absorb most of the remaining traffic.\n";
  }

  std::cout << "\ntrend to check: degradation shrinks as psi_in grows, PARSEC is\n"
               "costlier than SPEC, and sparse workloads (bzip2, gcc) sit near 0.\n";
  return 0;
}
