// Stall-latency histograms + remap-timing-channel capacity (DESIGN.md
// §16): the first consumer of the span/histogram telemetry added with
// telemetry_schema 2.
//
// The experiment replays the paper's §III observation — remap stalls are
// requester-visible — as an explicit binary covert channel. A victim
// encodes one bit per symbol by directing a burst of writes either into
// the probe's start-gap region (bit 1) or a different region (bit 0);
// the receiver then hammers a fixed probe line and records WHICH of its
// own writes the region's remap movement stalls (the classic RTA
// observable). Same-region victim traffic advances the shared region
// counter, so the first-stall index Y arrives ~victim_writes earlier
// when the bit is 1 — the movement *count* alone is useless (its
// expectation is probe_writes/ψ either way); the leak is in the phase.
// Phase channels are differential, so after any symbol that ended
// without an observed stall the receiver drains the region (writes until
// a movement lands on it): every symbol then starts at a known counter
// phase and Y encodes the bit absolutely, which is what a single-symbol
// plug-in mutual-information estimate over the empirical (bit, Y) joint
// can see. Capacity divides MI by the per-symbol write budget
// (victim + probe + drain allowance), reported as bits/write.
//
// The scheme ladder runs RBSG (static randomizer — region membership
// never changes, so the bias persists) against Security RBSG at 3/5/7
// DFN stages, whose outer re-keys decay the probe/victim region
// alignment: capacity must be nonzero for RBSG and strictly lower for
// Security RBSG at max stages, which is exactly the paper's security
// lever rendered as channel capacity.
//
// Every symbol is bracketed by a ChannelSymbol span (begin detail =
// (writes_per_symbol << 1) | bit, end detail = Y) so `srbsg-trace
// channel` can recover the same capacity estimate from the trace alone.
// Each (scheme, seed) run executes twice — without and with a Recorder —
// and the observed (writes, movements, now, Y-sequence) must match
// bit-for-bit; `identical` in the JSON and the process exit code gate
// on it. The JSON deliberately omits the thread count: BENCH_stall.json
// must be byte-identical across --threads.

#include <array>
#include <cmath>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "controller/memory_controller.hpp"
#include "telemetry/collector.hpp"
#include "wl/factory.hpp"

namespace {

using namespace srbsg;
using namespace srbsg::bench;

struct LadderEntry {
  const char* label;
  wl::SchemeKind kind;
  u32 stages;
};

// RBSG's `stages` parameterize its static randomizer; matching the max
// Security RBSG depth keeps the mapping quality comparable so the
// capacity gap is attributable to re-keying, not PRP strength.
constexpr std::array<LadderEntry, 4> kLadder{{
    {"rbsg", wl::SchemeKind::kRbsg, 7},
    {"srbsg-3", wl::SchemeKind::kSecurityRbsg, 3},
    {"srbsg-5", wl::SchemeKind::kSecurityRbsg, 5},
    {"srbsg-7", wl::SchemeKind::kSecurityRbsg, 7},
}};

struct ChannelConfig {
  u64 lines{0};
  u64 regions{16};
  u64 inner_interval{32};
  u64 outer_interval{64};
  u64 endurance{u64{1} << 16};
  u64 symbols{256};
  u64 victim_writes{16};
  u64 probe_writes{16};

  /// Per-symbol write budget: victim burst + probe window + the drain
  /// allowance (one full ψ_in) that re-synchronizes the counter phase.
  /// Used as the capacity denominator by bench and trace tool alike.
  [[nodiscard]] u64 writes_per_symbol() const {
    return victim_writes + probe_writes + inner_interval;
  }
};

/// Everything the channel run produces that must be bit-identical with
/// and without telemetry attached.
struct RunResult {
  std::vector<u8> bits;
  std::vector<u64> ys;
  u64 writes{0};
  u64 movements{0};
  u64 now_ns{0};
};

bool operator==(const RunResult& a, const RunResult& b) {
  return a.bits == b.bits && a.ys == b.ys && a.writes == b.writes &&
         a.movements == b.movements && a.now_ns == b.now_ns;
}

/// One seeded channel run. The bit sequence depends only on the seed, so
/// traced and untraced executions (and every scheme at the same seed)
/// see the same symbol stream.
RunResult run_channel(const ChannelConfig& cc, const wl::SchemeSpec& spec,
                      const pcm::PcmConfig& pcm_cfg, telemetry::Recorder* rec) {
  ctl::MemoryController mc(pcm_cfg, wl::make_scheme(spec));
  u16 tel_id = 0;
  if (rec != nullptr) {
    tel_id = rec->intern_scheme(mc.scheme().name());
    mc.set_telemetry(rec);
  }

  // Probe and victim lines, chosen against the mapping at t = 0: one
  // victim sharing the probe's physical region (stride m+1: m data slots
  // plus the gap) and one in a different region. Under Security RBSG the
  // alignment goes stale after the first re-key — that decay IS the
  // defense being measured.
  const u64 m = cc.lines / cc.regions;
  const auto region_of = [&](La la) { return mc.scheme().translate(la).value() / (m + 1); };
  const La probe{0};
  const u64 probe_region = region_of(probe);
  La victim_same{0};
  La victim_diff{0};
  bool have_same = false;
  bool have_diff = false;
  for (u64 la = 1; la < cc.lines && !(have_same && have_diff); ++la) {
    if (region_of(La{la}) == probe_region) {
      if (!have_same) victim_same = La{la}, have_same = true;
    } else if (!have_diff) {
      victim_diff = La{la}, have_diff = true;
    }
  }
  check(have_same && have_diff, "perf_stall: degenerate region layout");

  const auto data = pcm::LineData::mixed();
  const u64 wps = cc.writes_per_symbol();
  Rng rng(u64{0x57a11} + spec.seed);
  RunResult r;
  r.bits.reserve(cc.symbols);
  r.ys.reserve(cc.symbols);
  for (u64 s = 0; s < cc.symbols; ++s) {
    const u64 bit = rng.next() & 1;
    if (rec != nullptr) {
      rec->set_now(mc.now());
      rec->span_begin(telemetry::SpanKind::kChannelSymbol, tel_id, telemetry::kGlobalDomain,
                      0, (wps << 1) | bit);
    }
    const auto victim = mc.write_repeated(bit != 0 ? victim_same : victim_diff, data,
                                          cc.victim_writes);
    r.movements += victim.movements;
    // Y = index of the receiver's first stalled write (probe_writes when
    // none stalled): the region counter's phase, which the victim's
    // same-region burst shifts forward by victim_writes.
    u64 y = cc.probe_writes;
    for (u64 i = 0; i < cc.probe_writes; ++i) {
      const auto probe_out = mc.write(probe, data);
      r.movements += probe_out.movements;
      if (probe_out.movements > 0 && y == cc.probe_writes) y = i;
    }
    // Re-synchronize: a symbol that observed a stall left the counter at
    // a movement boundary; one that did not drains until the next
    // movement lands (bounded — remap noise can fake a boundary, which
    // is part of the defense's effect on the channel).
    if (y == cc.probe_writes) {
      for (u64 i = 0; i < 2 * cc.inner_interval; ++i) {
        const auto drain = mc.write(probe, data);
        r.movements += drain.movements;
        if (drain.movements > 0) break;
      }
    }
    if (rec != nullptr) {
      rec->set_now(mc.now());
      rec->span_end(telemetry::SpanKind::kChannelSymbol, tel_id, telemetry::kGlobalDomain,
                    0, y);
    }
    r.bits.push_back(static_cast<u8>(bit));
    r.ys.push_back(y);
  }
  r.writes = mc.total_writes();
  r.now_ns = mc.now().value();
  if (rec != nullptr) mc.set_telemetry(nullptr);
  return r;
}

/// Plug-in mutual information I(bit; Y) in bits over the empirical joint
/// of all (bit, Y) symbol pairs. Biased upward on small samples like any
/// plug-in estimate; the ladder compares schemes on equal sample sizes,
/// so the bias cancels in the ordering.
double mutual_information(const std::vector<u8>& bits, const std::vector<u64>& ys) {
  check_eq(bits.size(), ys.size(), "perf_stall: bit/Y length mismatch");
  const double n = static_cast<double>(bits.size());
  if (bits.empty()) return 0.0;
  std::map<u64, std::array<u64, 2>> joint;
  std::array<u64, 2> marg_bit{0, 0};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    joint[ys[i]][bits[i] & 1] += 1;
    marg_bit[bits[i] & 1] += 1;
  }
  double mi = 0.0;
  for (const auto& [y, by_bit] : joint) {
    const u64 marg_y = by_bit[0] + by_bit[1];
    for (int b = 0; b < 2; ++b) {
      if (by_bit[static_cast<std::size_t>(b)] == 0) continue;
      const double pxy = static_cast<double>(by_bit[static_cast<std::size_t>(b)]) / n;
      const double px = static_cast<double>(marg_bit[static_cast<std::size_t>(b)]) / n;
      const double py = static_cast<double>(marg_y) / n;
      mi += pxy * std::log2(pxy / (px * py));
    }
  }
  return mi > 0.0 ? mi : 0.0;
}

std::string json_number(double v) {
  std::ostringstream os;
  os << fmt_double(v, 6);
  return os.str();
}

void hist_json(std::ostream& os, const char* name, const telemetry::LogHistogram& h,
               const char* indent) {
  os << indent << "\"" << name << "\": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
     << ", \"min\": " << h.min() << ", \"max\": " << h.max()
     << ", \"p50\": " << h.quantile(0.50) << ", \"p99\": " << h.quantile(0.99)
     << ", \"p999\": " << h.quantile(0.999) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(
      argc, argv, kFlagThreads | kFlagSeeds | kFlagScale | kFlagJson | kFlagTelemetry);

  print_header("perf_stall: stall histograms + remap-timing-channel capacity",
               "§III timing channel as empirical capacity; see DESIGN.md §16");

  ChannelConfig cc;
  cc.lines = opts.lines_or(u64{1} << 10);
  cc.symbols = full_mode() ? 1024 : 256;
  const u64 seeds = opts.seeds_or(3);
  const auto pcm_cfg = pcm::PcmConfig::scaled(cc.lines, cc.endurance);

  telemetry::TelemetryConfig tcfg;
  tcfg.ring_capacity = std::size_t{1} << 16;
  tcfg.snapshot_interval = 0;  // wear snapshots are noise here
  telemetry::Collector collector(tcfg);

  // One task per (scheme, seed); results land in preallocated slots so
  // completion order cannot reorder anything downstream.
  const std::size_t tasks = kLadder.size() * seeds;
  std::vector<RunResult> plain(tasks);
  std::vector<RunResult> traced(tasks);
  std::vector<std::unique_ptr<telemetry::Recorder>> recs(tasks);
  for (std::size_t t = 0; t < tasks; ++t) recs[t] = collector.acquire();

  ThreadPool pool(opts.threads);
  {
    std::vector<std::future<void>> futs;
    futs.reserve(tasks);
    for (std::size_t t = 0; t < tasks; ++t) {
      futs.push_back(pool.submit([&, t] {
        const std::size_t li = t / seeds;
        wl::SchemeSpec spec;
        spec.kind = kLadder[li].kind;
        spec.lines = cc.lines;
        spec.regions = cc.regions;
        spec.inner_interval = cc.inner_interval;
        spec.outer_interval = cc.outer_interval;
        spec.stages = kLadder[li].stages;
        spec.seed = t % seeds + 1;
        plain[t] = run_channel(cc, spec, pcm_cfg, nullptr);
        traced[t] = run_channel(cc, spec, pcm_cfg, recs[t].get());
      }));
    }
    for (auto& f : futs) f.get();
  }

  bool identical = true;
  for (std::size_t t = 0; t < tasks; ++t) identical = identical && plain[t] == traced[t];

  // Per-scheme aggregation: pool the (bit, Y) pairs and merge the
  // latency histograms across that scheme's seeds, then hand the
  // recorders to the collector in entry order.
  struct SchemeRow {
    double mi{0.0};
    double capacity{0.0};
    telemetry::LogHistogram write_ns;
    telemetry::LogHistogram stall_ns;
    u64 symbols{0};
  };
  std::vector<SchemeRow> rows(kLadder.size());
  for (std::size_t li = 0; li < kLadder.size(); ++li) {
    std::vector<u8> bits;
    std::vector<u64> ys;
    for (u64 s = 0; s < seeds; ++s) {
      const std::size_t t = li * seeds + s;
      bits.insert(bits.end(), traced[t].bits.begin(), traced[t].bits.end());
      ys.insert(ys.end(), traced[t].ys.begin(), traced[t].ys.end());
      rows[li].write_ns.merge(recs[t]->hist_write());
      rows[li].stall_ns.merge(recs[t]->hist_stall());
    }
    rows[li].symbols = bits.size();
    rows[li].mi = mutual_information(bits, ys);
    rows[li].capacity = rows[li].mi / static_cast<double>(cc.writes_per_symbol());
  }
  for (std::size_t t = 0; t < tasks; ++t) {
    telemetry::RunMeta meta;
    meta.entry = t;
    meta.scheme = kLadder[t / seeds].label;
    meta.attack = "stall-channel";
    meta.seed = t % seeds + 1;
    collector.absorb(meta, std::move(recs[t]));
  }

  Table table({"scheme", "stages", "symbols", "MI (bits/sym)", "capacity (bits/write)",
               "write p50/p99/p999 ns", "stall p99 ns"});
  for (std::size_t li = 0; li < kLadder.size(); ++li) {
    const auto& r = rows[li];
    table.add_row({kLadder[li].label, std::to_string(kLadder[li].stages),
                   std::to_string(r.symbols), fmt_double(r.mi, 4), fmt_double(r.capacity, 6),
                   std::to_string(r.write_ns.quantile(0.50)) + "/" +
                       std::to_string(r.write_ns.quantile(0.99)) + "/" +
                       std::to_string(r.write_ns.quantile(0.999)),
                   std::to_string(r.stall_ns.quantile(0.99))});
  }
  table.print(std::cout);

  const double cap_rbsg = rows[0].capacity;
  const double cap_srbsg_max = rows[kLadder.size() - 1].capacity;
  std::cout << "\ntraced runs bit-identical to untraced: " << (identical ? "yes" : "NO")
            << "\ncapacity rbsg: " << fmt_double(cap_rbsg, 6)
            << " bits/write, security-rbsg @7 stages: " << fmt_double(cap_srbsg_max, 6)
            << (cap_rbsg > 0.0 && cap_srbsg_max < cap_rbsg ? " (channel suppressed)"
                                                           : " (GATE NOT MET)")
            << "\n";

  if (!opts.json.empty()) {
    std::ofstream os(opts.json);
    if (!os) {
      std::cerr << "perf_stall: cannot open " << opts.json << " for writing\n";
      return 3;
    }
    // No thread count in here: the file must be byte-identical across
    // --threads (check_bench_json.py compares against the reference).
    os << "{\n"
       << "  \"schema_version\": 1,\n"
       << "  \"telemetry_schema\": " << telemetry::kTelemetrySchemaVersion << ",\n"
       << "  \"bench\": \"perf_stall\",\n"
       << "  \"config\": {\n"
       << "    \"lines\": " << cc.lines << ",\n"
       << "    \"regions\": " << cc.regions << ",\n"
       << "    \"inner_interval\": " << cc.inner_interval << ",\n"
       << "    \"outer_interval\": " << cc.outer_interval << ",\n"
       << "    \"endurance\": " << cc.endurance << ",\n"
       << "    \"seeds\": " << seeds << ",\n"
       << "    \"symbols\": " << cc.symbols << ",\n"
       << "    \"victim_writes\": " << cc.victim_writes << ",\n"
       << "    \"probe_writes\": " << cc.probe_writes << "\n"
       << "  },\n"
       << "  \"schemes\": [\n";
    for (std::size_t li = 0; li < kLadder.size(); ++li) {
      const auto& r = rows[li];
      os << "    {\n"
         << "      \"scheme\": \"" << kLadder[li].label << "\",\n"
         << "      \"stages\": " << kLadder[li].stages << ",\n"
         << "      \"symbols\": " << r.symbols << ",\n"
         << "      \"mi_bits_per_symbol\": " << json_number(r.mi) << ",\n"
         << "      \"capacity_bits_per_write\": " << json_number(r.capacity) << ",\n";
      hist_json(os, "write_ns", r.write_ns, "      ");
      os << ",\n";
      hist_json(os, "stall_ns", r.stall_ns, "      ");
      os << "\n    }" << (li + 1 < kLadder.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"capacity_rbsg\": " << json_number(cap_rbsg) << ",\n"
       << "  \"capacity_srbsg_max_stages\": " << json_number(cap_srbsg_max) << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << opts.json << "\n";
  }

  if (!opts.telemetry.empty()) {
    if (!collector.write_file(opts.telemetry)) {
      std::cerr << "perf_stall: cannot open " << opts.telemetry << " for writing\n";
      return 3;
    }
    std::cout << "wrote " << opts.telemetry << " (" << collector.runs() << " runs, "
              << collector.total_events()
              << " events; score with tools/srbsg-trace channel)\n";
  }

  return identical ? 0 : 1;
}
