// BENCH harness for the sweep engine: v2 (arena bank reuse + chunked
// parallel_for) against an inline replication of the v1 engine (one
// submitted future per entry, a freshly constructed PcmBank per run — the
// engine as it was before the arena existed). Both run the same reference
// grid, a Table-I subset (SR2 and Security RBSG shapes) with endurance
// variation enabled so v1 pays the per-line truncated-Gaussian draw on
// every run while v2 reuses each worker bank's table.
//
// Counters per engine: wall-clock ms, simulated writes, writes/sec, heap
// allocation calls/bytes (via the replaced global operator new below),
// peak RSS, and — for v2 — arena build/reuse stats. Every outcome field
// is compared across engines; `identical` must be true, and the process
// exits nonzero when it is not, so CI can gate on determinism while
// treating the timing numbers as informational.
//
// The v2 engine runs FIRST (cold caches, cold allocator); v1 runs second
// and still loses, which keeps the reported speedup conservative.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <new>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/bitops.hpp"
#include "telemetry/collector.hpp"

// --- allocation counting -------------------------------------------------
// Replaceable global allocation functions, counted with relaxed atomics.
// Binary-local: only this executable pays for (or sees) the counters.
// The aligned overloads are not replaced; over-aligned allocations fall
// back to the default implementation and go uncounted, which only makes
// the reported v1/v2 allocation gap smaller.

namespace {
std::atomic<srbsg::u64> g_alloc_calls{0};
std::atomic<srbsg::u64> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace srbsg;
using namespace srbsg::bench;

u64 peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss > 0 ? static_cast<u64>(ru.ru_maxrss) : 0;
}

struct EngineRun {
  std::string name;
  double wall_ms{0.0};
  u64 writes{0};
  double writes_per_sec{0.0};
  u64 alloc_calls{0};
  u64 alloc_bytes{0};
  u64 peak_rss_kb{0};
  u64 bank_builds{0};
  u64 bank_reuses{0};
  std::vector<sim::LifetimeOutcome> outcomes;
};

template <class Body>
EngineRun measure(std::string name, std::size_t entries, Body&& body) {
  EngineRun r;
  r.name = std::move(name);
  r.outcomes.reserve(entries);
  const u64 calls0 = g_alloc_calls.load(std::memory_order_relaxed);
  const u64 bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  body(r.outcomes);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.alloc_calls = g_alloc_calls.load(std::memory_order_relaxed) - calls0;
  r.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
  r.peak_rss_kb = peak_rss_kb();
  for (const auto& o : r.outcomes) r.writes += o.result.writes;
  r.writes_per_sec =
      r.wall_ms > 0.0 ? static_cast<double>(r.writes) / (r.wall_ms / 1000.0) : 0.0;
  return r;
}

/// The sweep engine as it existed before the arena: one pool.submit per
/// entry (a heap-allocated packaged_task + future each) and a freshly
/// constructed bank — including a fresh endurance-table draw — per run.
void run_v1(std::span<const sim::LifetimeConfig> configs, ThreadPool& pool,
            std::vector<sim::LifetimeOutcome>& out) {
  out.resize(configs.size());
  std::vector<std::future<void>> futs;
  futs.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    futs.push_back(pool.submit([&configs, &out, i] { out[i] = run_lifetime(configs[i]); }));
  }
  for (auto& f : futs) f.get();
}

bool outcomes_identical(const sim::LifetimeOutcome& a, const sim::LifetimeOutcome& b) {
  return a.result.succeeded == b.result.succeeded && a.result.lifetime == b.result.lifetime &&
         a.result.writes == b.result.writes && a.result.elapsed == b.result.elapsed &&
         a.wear.mean == b.wear.mean &&
         a.wear.coefficient_of_variation == b.wear.coefficient_of_variation &&
         a.wear.gini == b.wear.gini && a.wear.max_over_mean == b.wear.max_over_mean &&
         a.wear.max == b.wear.max && a.wear.min == b.wear.min;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  return os.str();
}

void engine_json(std::ostream& os, const EngineRun& r, bool with_arena_stats) {
  os << "    {\n"
     << "      \"name\": \"" << r.name << "\",\n"
     << "      \"wall_ms\": " << json_number(r.wall_ms) << ",\n"
     << "      \"writes\": " << r.writes << ",\n"
     << "      \"writes_per_sec\": " << json_number(r.writes_per_sec) << ",\n"
     << "      \"alloc_calls\": " << r.alloc_calls << ",\n"
     << "      \"alloc_bytes\": " << r.alloc_bytes << ",\n"
     << "      \"peak_rss_kb\": " << r.peak_rss_kb;
  if (with_arena_stats) {
    os << ",\n      \"bank_builds\": " << r.bank_builds
       << ",\n      \"bank_reuses\": " << r.bank_reuses;
  }
  os << "\n    }";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, kFlagAll);

  print_header("perf_sweep: sweep engine v2 (arena + chunked) vs v1 (fresh banks)",
               "engineering bench, no paper figure; see DESIGN.md §10");

  // Reference grid: a Table-I subset. SR2 and Security RBSG at three
  // sub-region counts and two inner intervals under RAA (the paper's
  // canonical uniform attacker; its hammering goes through the bulk
  // event-driven write path, so per-run simulation cost tracks the write
  // count, not the bank size), several seeds each, with endurance
  // variation ON so per-run bank construction includes the truncated-
  // Gaussian table draw that the arena amortizes away.
  const u64 lines = opts.lines_or(full_mode() ? (u64{1} << 17) : (u64{1} << 15));
  const u64 endurance = 2048;
  // 5 seeded replicas per configuration — the paper's Fig. 12 protocol
  // (each configuration averaged over 5 random keys).
  const u64 seeds = opts.seeds_or(5);
  auto pcm_cfg = pcm::PcmConfig::scaled(lines, endurance);
  pcm_cfg.endurance_variation = 0.1;
  pcm_cfg.variation_seed = 0xbadcafe;

  // Same sub-region scaling recipe as fig12: the paper bank's region size
  // M = 2^22 / sub_regions, shrunk by the bank's scale factor.
  const u64 scale_shift = 22 > log2_floor(lines) ? 22 - log2_floor(lines) : 0;
  std::vector<sim::LifetimeConfig> configs;
  for (const wl::SchemeKind kind : {wl::SchemeKind::kSr2, wl::SchemeKind::kSecurityRbsg}) {
    for (const u64 sub_regions : {256u, 512u, 1024u}) {
      for (const u64 inner : {32u, 64u}) {
        for (u64 seed = 1; seed <= seeds; ++seed) {
          sim::LifetimeConfig c;
          c.pcm = pcm_cfg;
          c.scheme.kind = kind;
          c.scheme.lines = lines;
          const u64 paper_m = (u64{1} << 22) / sub_regions;
          c.scheme.regions = lines / std::max<u64>(4, paper_m >> scale_shift);
          c.scheme.inner_interval = inner;
          c.scheme.outer_interval = 2 * inner;
          c.scheme.stages = 7;
          c.scheme.seed = seed;
          c.seed = seed;
          c.attack = sim::AttackKind::kRaa;
          c.write_budget = u64{1} << 32;
          c.engine = opts.engine;
          configs.push_back(c);
        }
      }
    }
  }

  ThreadPool pool(opts.threads);
  std::cout << "grid: " << configs.size() << " entries, " << lines << " lines, endurance "
            << endurance << " +/-10%, " << seeds << " seeds, " << pool.size()
            << " threads, engine tier " << wl::to_string(opts.engine) << "\n\n";

  // v2 first (cold), v1 second (warm allocator): conservative speedup.
  sim::WorkerArena arena;
  EngineRun v2 = measure("v2_arena_chunked", configs.size(),
                         [&](std::vector<sim::LifetimeOutcome>& out) {
                           auto entries = sim::run_sweep(configs, pool, arena);
                           for (auto& e : entries) out.push_back(e.outcome);
                         });
  v2.bank_builds = arena.stats().bank_builds;
  v2.bank_reuses = arena.stats().bank_reuses;
  arena.clear();

  EngineRun v1 = measure("v1_per_entry_fresh_banks", configs.size(),
                               [&](std::vector<sim::LifetimeOutcome>& out) {
                                 run_v1(configs, pool, out);
                               });

  bool identical = v1.outcomes.size() == v2.outcomes.size();
  for (std::size_t i = 0; identical && i < v1.outcomes.size(); ++i) {
    identical = outcomes_identical(v1.outcomes[i], v2.outcomes[i]);
  }
  const double speedup = v2.wall_ms > 0.0 ? v1.wall_ms / v2.wall_ms : 0.0;

  // Epoch-tier identity pass (untimed, outside the headline sections):
  // the same grid under the epoch fast-forward engine must reproduce the
  // v2 outcomes exactly — this is the sweep-level half of the epoch
  // bit-identity gate (perf_write_path covers the state-hash half).
  bool epoch_identical = true;
  {
    auto epoch_cfgs = configs;
    for (auto& c : epoch_cfgs) c.engine = wl::EngineTier::kEpoch;
    sim::WorkerArena epoch_arena;
    const auto epoch = sim::run_sweep(epoch_cfgs, pool, epoch_arena);
    epoch_identical = epoch.size() == v2.outcomes.size();
    for (std::size_t i = 0; epoch_identical && i < epoch.size(); ++i) {
      epoch_identical = outcomes_identical(epoch[i].outcome, v2.outcomes[i]);
    }
  }

  // --trace-out: re-run the grid with recorders attached and hold the
  // traced outcomes to the same bit-identity gate — telemetry must be
  // observation-only. The traced pass is deliberately outside the timed
  // sections above, so the headline numbers stay untouched.
  bool traced_identical = true;
  if (!opts.telemetry.empty()) {
    telemetry::TelemetryConfig tcfg;
    tcfg.ring_capacity = 4096;
    telemetry::Collector col(tcfg);
    auto traced_cfgs = configs;
    for (auto& c : traced_cfgs) c.telemetry = &col;
    sim::WorkerArena traced_arena;
    const auto traced = sim::run_sweep(traced_cfgs, pool, traced_arena);
    traced_identical = traced.size() == v2.outcomes.size();
    for (std::size_t i = 0; traced_identical && i < traced.size(); ++i) {
      traced_identical = outcomes_identical(traced[i].outcome, v2.outcomes[i]);
    }
    if (!col.write_file(opts.telemetry)) {
      std::cerr << "perf_sweep: cannot open " << opts.telemetry << " for writing\n";
      return 3;
    }
    std::cout << "wrote " << opts.telemetry << " (" << col.runs() << " runs, "
              << col.total_events() << " events)\n"
              << "outcomes bit-identical with telemetry attached: "
              << (traced_identical ? "yes" : "NO") << "\n";
  }

  Table t({"engine", "wall ms", "writes/sec", "alloc calls", "alloc MB", "peak RSS MB",
           "bank builds/reuses"});
  for (const EngineRun* r : {&v1, &v2}) {
    t.add_row({r->name, json_number(r->wall_ms), json_number(r->writes_per_sec),
               std::to_string(r->alloc_calls),
               fmt_double(static_cast<double>(r->alloc_bytes) / 1048576.0, 2),
               fmt_double(static_cast<double>(r->peak_rss_kb) / 1024.0, 2),
               r == &v2 ? std::to_string(r->bank_builds) + "/" + std::to_string(r->bank_reuses)
                        : "-"});
  }
  t.print(std::cout);
  std::cout << "\nspeedup (v1 wall / v2 wall): " << fmt_double(speedup, 2) << "x\n"
            << "outcomes bit-identical across engines: " << (identical ? "yes" : "NO") << "\n"
            << "outcomes bit-identical under the epoch tier: "
            << (epoch_identical ? "yes" : "NO") << "\n";

  if (!opts.json.empty()) {
    std::ofstream os(opts.json);
    if (!os) {
      std::cerr << "perf_sweep: cannot open " << opts.json << " for writing\n";
      return 3;
    }
    os << "{\n"
       << "  \"schema_version\": 1,\n"
       << "  \"telemetry_schema\": " << telemetry::kTelemetrySchemaVersion << ",\n"
       << "  \"bench\": \"perf_sweep\",\n"
       << "  \"grid\": {\n"
       << "    \"entries\": " << configs.size() << ",\n"
       << "    \"lines\": " << lines << ",\n"
       << "    \"endurance\": " << endurance << ",\n"
       << "    \"endurance_variation\": " << json_number(pcm_cfg.endurance_variation) << ",\n"
       << "    \"seeds\": " << seeds << ",\n"
       << "    \"threads\": " << pool.size() << "\n"
       << "  },\n"
       << "  \"engines\": [\n";
    engine_json(os, v1, false);
    os << ",\n";
    engine_json(os, v2, true);
    os << "\n  ],\n"
       << "  \"speedup\": " << json_number(speedup) << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"epoch_identical\": " << (epoch_identical ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << opts.json << "\n";
  }

  return identical && epoch_identical && traced_identical ? 0 : 1;
}
