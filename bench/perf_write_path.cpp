// BENCH harness for the batched access-stream layer (PR 4): the per-write
// reference loop against write_cycle / write_batch, per scheme, on the
// three stream shapes the attack and lifetime drivers actually issue:
//
//   raa_loop  — single-address hammer (RAA / BPA / RTA wear phases),
//               per-write loop vs write_cycle on a one-element pattern;
//   rta_loop  — short periodic probe pattern (RTA probe/hammer cycles),
//               per-write loop vs write_cycle;
//   fail_stop — single-address hammer at tiny endurance, driven to bank
//               failure: checks the exact-stop contract end to end
//               (bit-identical lifetime, failed line, overshoot);
//   blanket   — uniform random address block (blanket passes, trace
//               replay), per-write loop vs write_batch. Random streams
//               have no hammer runs to compress, so this one is
//               informational: it bounds the batch API's overhead.
//
// raa_loop/rta_loop run steady-state (endurance above the write budget)
// so the timings measure throughput rather than time-to-failure; the
// headline "min speedup" excludes `table`, whose O(lines) hot/cold scan
// on every ψ-boundary dominates both paths identically — batching
// cannot amortize trigger work, only per-write dispatch.
//
// Every scenario verifies the batched path is *bit-identical* to the
// reference loop — wear counts, movements, total simulated time,
// translation state and failure bookkeeping — and the process exits
// nonzero when any scenario diverges, so CI can gate on determinism
// while treating the timing numbers as informational (same contract as
// perf_sweep).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "pcm/bank.hpp"
#include "telemetry/collector.hpp"
#include "trace/generators.hpp"
#include "wl/factory.hpp"

namespace {

using namespace srbsg;
using namespace srbsg::bench;

/// Everything the bit-identity contract covers, folded to a comparable
/// value set (wear and translation via FNV-1a so the JSON stays small).
struct PathMetrics {
  u64 writes{0};
  u64 movements{0};
  u64 total_ns{0};
  u64 bank_writes{0};
  u64 wear_hash{0};
  u64 translate_hash{0};
  bool failed{false};
  u64 failed_line{0};
  u64 overshoot{0};

  bool operator==(const PathMetrics&) const = default;
};

u64 fnv1a(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

PathMetrics harvest(const wl::WearLeveler& s, const pcm::PcmBank& bank,
                    const wl::BulkOutcome& out) {
  PathMetrics m;
  m.writes = out.writes_applied;
  m.movements = out.movements;
  m.total_ns = out.total.value();
  m.bank_writes = bank.total_writes();
  u64 h = 0xcbf29ce484222325ULL;
  for (const u64 w : bank.wear_counts()) h = fnv1a(h, w);
  m.wear_hash = h;
  h = 0xcbf29ce484222325ULL;
  for (u64 la = 0; la < s.logical_lines(); ++la) {
    h = fnv1a(h, s.translate(La{la}).value());
  }
  m.translate_hash = h;
  m.failed = bank.has_failure();
  if (m.failed) {
    m.failed_line = bank.first_failed_line().value();
    m.overshoot = bank.failure_overshoot();
  }
  return m;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ScenarioResult {
  std::string scheme;
  std::string name;
  double per_write_ms{0.0};
  double batched_ms{0.0};
  double epoch_ms{0.0};
  double speedup{0.0};
  double epoch_speedup{0.0};
  bool identical{false};
  bool epoch_identical{false};  ///< epoch-tier pass matches the reference
  bool traced_identical{true};  ///< telemetry pass matches (true when off)
  PathMetrics metrics;  // the batched path's metrics (== reference when identical)
};

wl::SchemeSpec spec_for(wl::SchemeKind kind, u64 lines) {
  wl::SchemeSpec spec;
  spec.kind = kind;
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;
  spec.seed = 42;
  return spec;
}

/// The contract's reference stream: per-write loop with early stop.
wl::BulkOutcome reference_loop(wl::WearLeveler& s, std::span<const La> pattern, u64 count,
                               const pcm::LineData& data, pcm::PcmBank& bank) {
  wl::BulkOutcome out;
  const u64 period = pattern.size();
  for (u64 i = 0; i < count; ++i) {
    if (bank.has_failure()) break;
    const wl::WriteOutcome w = s.write(pattern[i % period], data, bank);
    out.total += w.total;
    ++out.writes_applied;
    out.movements += w.movements;
  }
  return out;
}

enum class BatchMode { kCycle, kBatch };

ScenarioResult run_scenario(wl::SchemeKind kind, std::string name, BatchMode mode,
                            std::span<const La> addrs, u64 count, u64 lines, u64 endurance,
                            wl::EngineTier batched_tier, telemetry::Collector* col,
                            u64 entry) {
  const auto spec = spec_for(kind, lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, endurance);
  const auto data = pcm::LineData::mixed(0xAA);

  auto ref = wl::make_scheme(spec);
  pcm::PcmBank bank_ref(cfg, ref->physical_lines());
  const auto t0 = std::chrono::steady_clock::now();
  const auto out_ref =
      mode == BatchMode::kCycle
          ? reference_loop(*ref, addrs, count, data, bank_ref)
          : reference_loop(*ref, addrs, addrs.size(), data, bank_ref);
  const double ref_ms = ms_since(t0);

  auto fast = wl::make_scheme(spec);
  fast->set_engine_tier(batched_tier);
  pcm::PcmBank bank_fast(cfg, fast->physical_lines());
  const auto t1 = std::chrono::steady_clock::now();
  const auto out_fast = mode == BatchMode::kCycle
                            ? fast->write_cycle(addrs, data, count, bank_fast)
                            : fast->write_batch(addrs, data, bank_fast);
  const double fast_ms = ms_since(t1);

  // Epoch tier, always raced regardless of --engine: the FNV state-hash
  // gate below is how CI catches an epoch/windowed divergence.
  auto epoch = wl::make_scheme(spec);
  epoch->set_engine_tier(wl::EngineTier::kEpoch);
  pcm::PcmBank bank_epoch(cfg, epoch->physical_lines());
  const auto t2 = std::chrono::steady_clock::now();
  const auto out_epoch = mode == BatchMode::kCycle
                             ? epoch->write_cycle(addrs, data, count, bank_epoch)
                             : epoch->write_batch(addrs, data, bank_epoch);
  const double epoch_ms = ms_since(t2);

  ScenarioResult r;
  r.scheme = std::string(wl::to_string(kind));
  r.name = std::move(name);
  r.per_write_ms = ref_ms;
  r.batched_ms = fast_ms;
  r.epoch_ms = epoch_ms;
  r.speedup = fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
  r.epoch_speedup = epoch_ms > 0.0 ? ref_ms / epoch_ms : 0.0;
  r.metrics = harvest(*fast, bank_fast, out_fast);
  r.identical = harvest(*ref, bank_ref, out_ref) == r.metrics;
  r.epoch_identical = harvest(*epoch, bank_epoch, out_epoch) == r.metrics;

  // --trace-out: third, untimed pass with a recorder attached directly to
  // the scheme; its metrics must match the untraced batched path exactly
  // (telemetry is observation-only). No controller here, so events carry
  // t=0 — the bench traces ordering and counts, not the sim clock.
  if (col != nullptr) {
    auto traced = wl::make_scheme(spec);
    traced->set_engine_tier(batched_tier);
    pcm::PcmBank bank_traced(cfg, traced->physical_lines());
    auto rec = col->acquire();
    traced->attach_telemetry(rec.get());
    const auto out_traced = mode == BatchMode::kCycle
                                ? traced->write_cycle(addrs, data, count, bank_traced)
                                : traced->write_batch(addrs, data, bank_traced);
    r.traced_identical = harvest(*traced, bank_traced, out_traced) == r.metrics;
    telemetry::RunMeta meta;
    meta.entry = entry;
    meta.scheme = r.scheme;
    meta.attack = r.name;
    meta.seed = spec.seed;
    col->absorb(meta, std::move(rec));
  }
  return r;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts =
      parse_bench_options(argc, argv, kFlagScale | kFlagJson | kFlagTelemetry | kFlagEngine);

  print_header("perf_write_path: per-write loop vs batched write_batch/write_cycle",
               "engineering bench, no paper figure; see DESIGN.md §11");

  const u64 lines = opts.lines_or(full_mode() ? (u64{1} << 14) : (u64{1} << 12));
  const u64 count = full_mode() ? (u64{1} << 24) : (u64{1} << 21);
  // Steady-state: no line can reach this even if every write lands on it.
  const u64 endurance_steady = 4 * count;
  // Fail-stop: even a perfectly leveled hammer must kill the bank well
  // inside the budget (count/lines writes per line >> endurance_fail).
  const u64 endurance_fail = std::max<u64>(count / lines / 4, 64);

  constexpr wl::SchemeKind kKinds[] = {
      wl::SchemeKind::kNone,       wl::SchemeKind::kStartGap,
      wl::SchemeKind::kRbsg,       wl::SchemeKind::kSr1,
      wl::SchemeKind::kSr2,        wl::SchemeKind::kMultiWaySr,
      wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kTable,
  };

  std::cout << "config: " << lines << " lines, " << count << " writes per scenario, "
            << "endurance " << endurance_steady << " (steady) / " << endurance_fail
            << " (fail_stop), batched tier " << wl::to_string(opts.engine) << "\n\n";

  // RTA probe cycle: a handful of spread addresses, far below the
  // write_cycle fallback guard at ψ = 64.
  const std::vector<La> rta_pattern = {La{0},         La{lines / 7},     La{lines / 3},
                                       La{lines / 2}, La{2 * lines / 3}, La{lines - 1}};
  const std::vector<La> raa_pattern = {La{lines / 2}};

  // Blanket block from the counter-based stream (same addresses for any
  // chunking of the generation).
  std::vector<u64> raw(std::min<u64>(count, u64{1} << 20));
  trace::uniform_address_block(lines, 0xB10C, 0, raw);
  std::vector<La> blanket;
  blanket.reserve(raw.size());
  for (const u64 a : raw) blanket.push_back(La{a});

  telemetry::TelemetryConfig tcfg;
  tcfg.ring_capacity = 2048;
  telemetry::Collector collector(tcfg);
  telemetry::Collector* col = opts.telemetry.empty() ? nullptr : &collector;

  std::vector<ScenarioResult> results;
  u64 entry = 0;
  for (const wl::SchemeKind kind : kKinds) {
    results.push_back(run_scenario(kind, "raa_loop", BatchMode::kCycle, raa_pattern, count,
                                   lines, endurance_steady, opts.engine, col, entry++));
    results.push_back(run_scenario(kind, "rta_loop", BatchMode::kCycle, rta_pattern, count,
                                   lines, endurance_steady, opts.engine, col, entry++));
    results.push_back(run_scenario(kind, "fail_stop", BatchMode::kCycle, raa_pattern, count,
                                   lines, endurance_fail, opts.engine, col, entry++));
    results.push_back(run_scenario(kind, "blanket", BatchMode::kBatch, blanket, 0, lines,
                                   endurance_steady, opts.engine, col, entry++));
  }

  bool traced_identical = true;
  for (const auto& r : results) traced_identical = traced_identical && r.traced_identical;
  if (col != nullptr) {
    if (!col->write_file(opts.telemetry)) {
      std::cerr << "perf_write_path: cannot open " << opts.telemetry << " for writing\n";
      return 3;
    }
    std::cout << "wrote " << opts.telemetry << " (" << col->runs() << " runs, "
              << col->total_events() << " events)\n"
              << "scenarios bit-identical with telemetry attached: "
              << (traced_identical ? "yes" : "NO") << "\n\n";
  }

  bool identical = true;
  bool epoch_identical = true;
  double min_raa = 0.0, min_rta = 0.0, min_epoch_raa = 0.0, min_epoch_rta = 0.0;
  bool first_raa = true, first_rta = true;
  Table t({"scheme", "scenario", "per-write ms", "batched ms", "epoch ms", "batched x",
           "epoch x", "identical"});
  for (const auto& r : results) {
    identical = identical && r.identical;
    epoch_identical = epoch_identical && r.epoch_identical;
    const bool headline = r.scheme != "table";  // see file comment
    if (headline && r.name == "raa_loop") {
      min_raa = first_raa ? r.speedup : std::min(min_raa, r.speedup);
      min_epoch_raa = first_raa ? r.epoch_speedup : std::min(min_epoch_raa, r.epoch_speedup);
      first_raa = false;
    } else if (headline && r.name == "rta_loop") {
      min_rta = first_rta ? r.speedup : std::min(min_rta, r.speedup);
      min_epoch_rta = first_rta ? r.epoch_speedup : std::min(min_epoch_rta, r.epoch_speedup);
      first_rta = false;
    }
    t.add_row({r.scheme, r.name, json_number(r.per_write_ms), json_number(r.batched_ms),
               json_number(r.epoch_ms), fmt_double(r.speedup, 2) + "x",
               fmt_double(r.epoch_speedup, 2) + "x",
               r.identical && r.epoch_identical ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nmin speedup (excluding table): raa_loop " << fmt_double(min_raa, 2)
            << "x, rta_loop " << fmt_double(min_rta, 2) << "x  (target: >= 3x)\n"
            << "min epoch speedup (excluding table): raa_loop " << fmt_double(min_epoch_raa, 2)
            << "x, rta_loop " << fmt_double(min_epoch_rta, 2) << "x\n"
            << "all scenarios bit-identical to the per-write loop: "
            << (identical ? "yes" : "NO") << "\n"
            << "epoch tier bit-identical to the per-write loop: "
            << (epoch_identical ? "yes" : "NO") << "\n";

  if (!opts.json.empty()) {
    std::ofstream os(opts.json);
    if (!os) {
      std::cerr << "perf_write_path: cannot open " << opts.json << " for writing\n";
      return 3;
    }
    os << "{\n"
       << "  \"schema_version\": 1,\n"
       << "  \"telemetry_schema\": " << telemetry::kTelemetrySchemaVersion << ",\n"
       << "  \"bench\": \"perf_write_path\",\n"
       << "  \"config\": {\n"
       << "    \"lines\": " << lines << ",\n"
       << "    \"endurance_steady\": " << endurance_steady << ",\n"
       << "    \"endurance_fail\": " << endurance_fail << ",\n"
       << "    \"writes_per_scenario\": " << count << ",\n"
       << "    \"blanket_block\": " << blanket.size() << "\n"
       << "  },\n"
       << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      os << "    {\n"
         << "      \"scheme\": \"" << r.scheme << "\",\n"
         << "      \"name\": \"" << r.name << "\",\n"
         << "      \"per_write_ms\": " << json_number(r.per_write_ms) << ",\n"
         << "      \"batched_ms\": " << json_number(r.batched_ms) << ",\n"
         << "      \"epoch_ms\": " << json_number(r.epoch_ms) << ",\n"
         << "      \"speedup\": " << json_number(r.speedup) << ",\n"
         << "      \"epoch_speedup\": " << json_number(r.epoch_speedup) << ",\n"
         << "      \"writes\": " << r.metrics.writes << ",\n"
         << "      \"movements\": " << r.metrics.movements << ",\n"
         << "      \"total_ns\": " << r.metrics.total_ns << ",\n"
         << "      \"failed\": " << (r.metrics.failed ? "true" : "false") << ",\n"
         << "      \"identical\": " << (r.identical ? "true" : "false") << ",\n"
         << "      \"epoch_identical\": " << (r.epoch_identical ? "true" : "false") << "\n"
         << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n"
       << "  \"min_speedup_raa\": " << json_number(min_raa) << ",\n"
       << "  \"min_speedup_rta\": " << json_number(min_rta) << ",\n"
       << "  \"min_epoch_speedup_raa\": " << json_number(min_epoch_raa) << ",\n"
       << "  \"min_epoch_speedup_rta\": " << json_number(min_epoch_rta) << ",\n"
       << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"epoch_identical\": " << (epoch_identical ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << opts.json << "\n";
  }

  return identical && epoch_identical && traced_identical ? 0 : 1;
}
