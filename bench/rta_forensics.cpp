// Attack-forensics trace: RTA probe vs Security RBSG with the online
// detector enabled, telemetry on, reduced scale.
//
// This bench exists for the telemetry pipeline rather than a paper
// figure: it produces the JSONL trace that `tools/srbsg-trace` validates
// and renders. Every GapMoved / KeyRerandomized in the trace must be
// attributable to a RemapTriggered at the same sim instant (the schemes
// emit them from a single movement helper), and the ProbeClassified
// stream lets the forensics view line the attacker's harvested bits up
// against the defender's remap/re-key cadence — the paper's §IV.B story
// told from both sides of the timing channel.
//
// Scale is deliberately small (default 2^10 lines, endurance 2^12) so a
// CI smoke run finishes in seconds while still exercising detector
// trips, DFN re-keys, wear snapshots and the BPA fallback phase.

#include <iostream>
#include <memory>

#include "attack/harness.hpp"
#include "attack/rta_probe.hpp"
#include "bench_util.hpp"
#include "telemetry/collector.hpp"
#include "wl/factory.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts =
      parse_bench_options(argc, argv, kFlagSeeds | kFlagScale | kFlagTelemetry);

  print_header("rta_forensics: RTA probe vs Security RBSG, telemetry trace",
               "observability harness for §IV.B; see DESIGN.md §12");

  const u64 lines = opts.lines_or(u64{1} << 10);
  const u64 endurance = u64{1} << 12;
  const u64 seeds = opts.seeds_or(2);
  const auto pcm_cfg = pcm::PcmConfig::scaled(lines, endurance);

  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = lines;
  spec.regions = 16;
  spec.inner_interval = 32;
  spec.outer_interval = 64;
  spec.stages = 7;

  telemetry::TelemetryConfig tcfg;
  // Sized to hold a whole reduced-scale run (~200k events at the default
  // scale): the forensics view wants the early detector trips and the
  // probe phase, which drop-oldest would evict first. 32 B/event → 8 MB.
  tcfg.ring_capacity = std::size_t{1} << 18;
  // A handful of wear snapshots across the run, not one per remap. The
  // RTA probe concentrates wear, so failure lands far below the uniform
  // lines*endurance budget — cadence is sized to the attacked lifetime.
  tcfg.snapshot_interval = (lines * endurance) / 128;
  telemetry::Collector collector(tcfg);

  const auto& core = telemetry::CoreCounters::get();
  Table t({"seed", "outcome", "writes", "remap triggers", "rekeys", "detector trips",
           "probes"});
  for (u64 s = 0; s < seeds; ++s) {
    spec.seed = s + 1;
    ctl::MemoryController mc(pcm_cfg, wl::make_scheme(spec));
    wl::AttackDetectorConfig dcfg;
    dcfg.window = 4096;
    dcfg.threshold = 8.0;
    dcfg.max_boost = 4;
    mc.enable_detector(dcfg);

    attack::RtaProbeParams p;
    p.lines = lines;
    p.outer_interval = spec.outer_interval;
    p.probe_bit = 0;
    p.probe_movements = 512;
    p.seed = spec.seed;
    p.hammer_cap = 2 * (lines / spec.regions + 1) * spec.inner_interval;
    attack::RtaProbeAttacker attacker(p);

    auto rec = collector.acquire();
    attack::HarnessOptions hopts;
    hopts.recorder = rec.get();
    const auto res = attack::run_attack(mc, attacker, u64{1} << 30, hopts);

    t.add_row({std::to_string(spec.seed),
               res.succeeded ? dur(static_cast<double>(res.lifetime.value())) : "survived",
               std::to_string(res.writes), std::to_string(rec->counter(core.remap_triggers)),
               std::to_string(rec->counter(core.rekeys)),
               std::to_string(rec->counter(core.detector_trips)),
               std::to_string(rec->counter(core.probes))});

    telemetry::RunMeta meta;
    meta.entry = s;
    meta.scheme = std::string(mc.scheme().name());
    meta.attack = std::string(attacker.name());
    meta.seed = spec.seed;
    collector.absorb(meta, std::move(rec));
  }
  t.print(std::cout);

  if (!opts.telemetry.empty()) {
    if (!collector.write_file(opts.telemetry)) {
      std::cerr << "rta_forensics: cannot open " << opts.telemetry << " for writing\n";
      return 3;
    }
    std::cout << "\nwrote " << opts.telemetry << " (" << collector.runs() << " runs, "
              << collector.total_events() << " events; validate with tools/srbsg-trace)\n";
  } else {
    std::cout << "\n(no --telemetry PATH given; trace discarded after the summary above)\n";
  }
  return 0;
}
