// Motivation study (paper §I): real workloads write non-uniformly, so an
// unleveled PCM dies orders of magnitude before its ideal lifetime even
// WITHOUT an attacker. This bench replays synthetic workload patterns
// against every scheme and reports the achieved fraction of the ideal
// lifetime — the "why wear leveling at all" table.

#include "analytic/lifetime_models.hpp"
#include "bench_util.hpp"
#include "controller/memory_controller.hpp"
#include "trace/generators.hpp"
#include "wl/factory.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::bench;

  const BenchOptions opts = parse_bench_options(argc, argv, kFlagScale);

  print_header("Workload lifetime: non-uniform traffic vs wear leveling",
               "§I-II motivation: hot lines fail early without leveling");

  const u64 lines = opts.lines_or(full_mode() ? (1u << 12) : (1u << 11));
  const u64 endurance = 1u << 14;
  const auto cfg = pcm::PcmConfig::scaled(lines, endurance);
  const double ideal = analytic::ideal_lifetime_ns(cfg);

  auto make_trace = [&](const std::string& pattern, u64 seed) {
    trace::GeneratorOptions opt;
    opt.lines = lines;
    opt.accesses = 1u << 20;
    opt.write_ratio = 1.0;
    opt.seed = seed;
    if (pattern == "hotspot") return trace::make_hotspot(opt, 0.02, 0.9);
    if (pattern == "zipf") return trace::make_zipf(opt, 1.1);
    return trace::make_uniform(opt);
  };

  Table t({"workload", "scheme", "lifetime fraction of ideal", "max/mean wear"});
  for (const std::string pattern : {"hotspot", "zipf", "uniform"}) {
    for (auto kind : {wl::SchemeKind::kNone, wl::SchemeKind::kTable, wl::SchemeKind::kRbsg,
                      wl::SchemeKind::kSecurityRbsg}) {
      wl::SchemeSpec spec;
      spec.kind = kind;
      spec.lines = lines;
      spec.regions = lines / 64;
      spec.inner_interval = 16;
      spec.outer_interval = 32;
      spec.stages = 7;
      ctl::MemoryController mc(cfg, wl::make_scheme(spec));

      // Replay the pattern until first failure (regenerate as needed).
      // The whole trace goes through the batched write path; wear and
      // latency only depend on the data class, so one mixed token stands
      // in for the per-record tokens.
      u64 seed = 3;
      std::vector<La> block;
      while (!mc.failed() && mc.total_writes() < lines * endurance) {
        const auto tr = make_trace(pattern, seed++);
        block.clear();
        block.reserve(tr.size());
        for (const auto& rec : tr) block.push_back(La{rec.addr});
        mc.write_batch(block, pcm::LineData::mixed(0x3A7E));
      }
      const double frac =
          mc.failed() ? static_cast<double>(mc.failure().time.value()) / ideal : 1.0;
      const auto wear = compute_wear_metrics(mc.bank().wear_counts());
      t.add_row({pattern, std::string(wl::to_string(kind)), fmt_double(frac, 3),
                 fmt_double(wear.max_over_mean, 3)});
    }
  }
  t.print(std::cout);

  std::cout << "\nreading: a 90/2 hotspot kills an unleveled bank at a tiny fraction\n"
               "of ideal; RBSG and Security RBSG recover most of it (Security RBSG\n"
               "additionally resists the adversarial streams of the other benches).\n";
  return 0;
}
