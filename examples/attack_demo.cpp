// Attack demo: run the paper's three attacks (RAA, BPA, RTA) against
// RBSG, two-level Security Refresh and Security RBSG on a scaled bank,
// and print who dies and how fast.
//
//   ./attack_demo [lines] [endurance]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using sim::AttackKind;

  const u64 lines = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const u64 endurance = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32768;

  std::cout << "Scaled bank: " << lines << " lines, endurance " << endurance
            << " (the paper's 1 GB / 1e8 bank behaves identically, just slower)\n\n";

  std::vector<sim::LifetimeConfig> configs;
  for (auto scheme : {wl::SchemeKind::kRbsg, wl::SchemeKind::kSr2,
                      wl::SchemeKind::kSecurityRbsg}) {
    for (auto attack : {AttackKind::kRaa, AttackKind::kBpa, AttackKind::kRta}) {
      sim::LifetimeConfig c;
      c.pcm = pcm::PcmConfig::scaled(lines, endurance);
      c.scheme.kind = scheme;
      c.scheme.lines = lines;
      c.scheme.regions = scheme == wl::SchemeKind::kRbsg ? 8 : 16;
      c.scheme.inner_interval = 8;
      c.scheme.outer_interval = 16;
      c.scheme.stages = 7;
      c.scheme.seed = 21;
      c.attack = attack;
      // Cap the effort: an attack that cannot kill the bank within ~64x
      // the RAA-equivalent budget is reported as "survived".
      c.write_budget = 64 * lines * endurance / 8;
      configs.push_back(c);
    }
  }

  ThreadPool pool;
  const auto entries = sim::run_sweep(configs, pool);

  Table t({"scheme", "attack", "outcome", "lifetime", "attack writes", "max/mean wear"});
  for (const auto& e : entries) {
    const auto& r = e.outcome.result;
    t.add_row({std::string(wl::to_string(e.config.scheme.kind)),
               std::string(sim::to_string(e.config.attack)),
               r.succeeded ? "WORN OUT" : "survived",
               r.succeeded ? fmt_duration_ns(static_cast<double>(r.lifetime.value())) : "-",
               std::to_string(r.writes), fmt_double(e.outcome.wear.max_over_mean, 3)});
  }
  t.print(std::cout);

  std::cout << "\nReading the table: RTA wipes out RBSG and SR2 orders of magnitude\n"
               "faster than RAA/BPA, while Security RBSG's dynamic Feistel mapping\n"
               "reduces RTA to birthday-paradox effectiveness.\n";
  return 0;
}
