// Detector demo: watch the online attack detector (paper reference [15])
// classify traffic in real time — benign phases keep the wear-leveling
// rate low, hammering phases trip the detector and boost it.
//
//   ./detector_demo

#include <iostream>

#include "common/table.hpp"
#include "controller/memory_controller.hpp"
#include "trace/generators.hpp"
#include "wl/factory.hpp"

int main() {
  using namespace srbsg;

  const u64 lines = 1u << 14;
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;

  ctl::MemoryController mc(pcm::PcmConfig::scaled(lines, u64{1} << 40),
                           wl::make_scheme(spec));
  wl::AttackDetectorConfig dcfg;
  dcfg.window = 1u << 14;
  dcfg.threshold = 8.0;
  dcfg.max_boost = 4;
  mc.enable_detector(dcfg);

  Table t({"phase", "writes", "boost after", "windows", "trips"});
  auto report = [&](const char* phase, u64 writes) {
    t.add_row({phase, std::to_string(writes), std::to_string(mc.detector()->boost()),
               std::to_string(mc.detector()->windows_observed()),
               std::to_string(mc.detector()->trips())});
  };

  // Phase 1: benign uniform traffic.
  trace::GeneratorOptions opt;
  opt.lines = lines;
  opt.accesses = 100'000;
  opt.write_ratio = 1.0;
  opt.seed = 3;
  for (const auto& rec : trace::make_uniform(opt)) {
    mc.write(La{rec.addr}, pcm::LineData::mixed());
  }
  report("uniform (benign)", 100'000);

  // Phase 2: a zipf-skewed but plausible workload.
  opt.seed = 4;
  for (const auto& rec : trace::make_zipf(opt, 0.9)) {
    mc.write(La{rec.addr}, pcm::LineData::mixed());
  }
  report("zipf 0.9 (hot but benign)", 100'000);

  // Phase 3: hammering — a repeated-address attack.
  mc.write_repeated(La{77}, pcm::LineData::mixed(), 200'000);
  report("RAA hammering", 200'000);

  // Phase 4: the attacker gives up; traffic normalizes.
  opt.seed = 5;
  opt.accesses = 200'000;
  for (const auto& rec : trace::make_uniform(opt)) {
    mc.write(La{rec.addr}, pcm::LineData::mixed());
  }
  report("uniform again (recovery)", 200'000);

  t.print(std::cout);
  std::cout << "\nThe boost column is the log2 divisor applied to the scheme's\n"
               "remapping intervals: 0 when traffic looks benign, rising while a\n"
               "write stream concentrates, decaying once it stops.\n";
  return 0;
}
