// Lifetime calculator: evaluate the paper-scale closed-form models for
// any configuration without simulating — how long does a 1 GB PCM bank
// survive under each attack?
//
//   ./lifetime_calculator [regions] [inner-interval] [outer-interval] [stages]

#include <cstdlib>
#include <iostream>

#include "analytic/lifetime_models.hpp"
#include "analytic/overhead.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using namespace srbsg::analytic;

  const u64 regions = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const u64 inner = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const u64 outer = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 128;
  const u32 stages = argc > 4 ? static_cast<u32>(std::strtoul(argv[4], nullptr, 10)) : 7;

  const auto cfg = pcm::PcmConfig::paper_bank();
  std::cout << "1 GB PCM bank, 256 B lines, endurance 1e8, SET 1000 ns / RESET 125 ns\n\n";

  Table t({"scheme", "attack", "model lifetime", "notes"});
  t.add_row({"(none)", "RAA", fmt_duration_ns(raa_baseline_ns(cfg)), "one line, E writes"});
  t.add_row({"(ideal)", "-", fmt_duration_ns(ideal_lifetime_ns(cfg)), "perfectly uniform"});

  const RbsgShape rbsg{32, 100};
  t.add_row({"rbsg R=32 psi=100", "RAA", fmt_duration_ns(raa_rbsg_ns(cfg, rbsg)),
             "E*(M+1) writes"});
  const auto rta = rta_rbsg_ns(cfg, rbsg);
  t.add_row({"rbsg R=32 psi=100", "RTA", fmt_duration_ns(rta.total_ns),
             "paper: 478 s"});

  const Sr2Shape sr2{regions, inner, outer};
  const auto sr2_rta = rta_sr2_ns(cfg, sr2);
  t.add_row({"sr2 R=" + std::to_string(regions), "RTA", fmt_duration_ns(sr2_rta.total_ns),
             std::to_string(static_cast<u64>(sr2_rta.rounds)) + " outer rounds"});
  t.add_row({"sr2 R=" + std::to_string(regions), "RAA",
             fmt_duration_ns(raa_sr2_ns(cfg, 0.66)), "paper: ~105 months"});

  t.add_row({"security-rbsg S=" + std::to_string(stages), "RAA",
             fmt_duration_ns(security_rbsg_fraction_ns(cfg, 0.672)),
             "67.2% of ideal (paper Fig. 14)"});
  t.print(std::cout);

  const SecurityRbsgShape shape{regions, inner, outer, stages};
  const auto margin = dfn_security_margin(cfg, shape);
  const auto overhead = security_rbsg_overhead(cfg, OverheadShape{regions, inner, outer,
                                                                  stages});
  std::cout << "\nDFN security margin (key-detection writes / round writes): "
            << fmt_double(margin, 3) << (margin >= 1.0 ? "  [secure]" : "  [LEAKY]")
            << "\nminimum secure stages at this config: "
            << min_secure_stages(cfg, shape) << "\n\nhardware overhead: "
            << fmt_double(static_cast<double>(overhead.register_bits) / 8.0 / 1024.0, 3)
            << " KB registers, "
            << fmt_double(static_cast<double>(overhead.isremap_sram_bits) / 8.0 / 1024.0 /
                              1024.0,
                          3)
            << " MB isRemap SRAM, " << overhead.spare_lines << " spare lines, "
            << overhead.cubing_gates << " cubing gates\n";
  return 0;
}
