// Quickstart: put a Security RBSG wear-leveler in front of a PCM bank,
// run a hot-spotted workload, and watch the wear stay flat.
//
//   ./quickstart [lines] [writes] [--audit]
//
// With --audit the scheme runs inside the invariant auditor, which
// re-verifies translation injectivity, wear conservation and the DFN
// state machine every 4096 writes (a CheckFailure aborts the run).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "audit/auditing_wear_leveler.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "controller/memory_controller.hpp"
#include "trace/generators.hpp"
#include "wl/factory.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;

  bool audit_enabled = false;
  u64 positional[2] = {1u << 14, 2'000'000};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      audit_enabled = true;
    } else if (npos < 2) {
      positional[npos++] = std::strtoull(argv[i], nullptr, 10);
    }
  }
  const u64 lines = positional[0];
  const u64 writes = positional[1];

  // 1. Describe the PCM device (defaults follow the paper: SET 1000 ns,
  //    RESET/READ 125 ns). The endurance is irrelevant for this demo.
  const auto pcm_cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);

  // 2. Pick a wear-leveling scheme. Security RBSG with 7 Feistel stages
  //    is the paper's recommended configuration.
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;

  // 3. The controller glues the scheme to a bank and keeps simulated time.
  //    Optionally wrapped in the invariant auditor (see src/audit/).
  std::unique_ptr<wl::WearLeveler> scheme = wl::make_scheme(spec);
  if (audit_enabled) {
    audit::AuditConfig acfg;
    acfg.cadence = 4096;
    scheme = audit::make_audited(std::move(scheme), acfg);
  }
  ctl::MemoryController mc(pcm_cfg, std::move(scheme));

  // Basic reads and writes go through the dynamic translation:
  mc.write(La{42}, pcm::LineData::mixed(/*token=*/0xC0FFEE));
  const auto [data, read_latency] = mc.read(La{42});
  std::cout << "read back token 0x" << std::hex << data.token << std::dec << " in "
            << read_latency.value() << " ns\n";

  // 4. Hammer a hotspot: 90% of traffic on 1% of the address space.
  trace::GeneratorOptions opt;
  opt.lines = lines;
  opt.accesses = writes;
  opt.write_ratio = 1.0;
  opt.seed = 7;
  const auto trc = trace::make_hotspot(opt, 0.01, 0.9);
  for (const auto& rec : trc) {
    mc.write(La{rec.addr}, pcm::LineData::mixed(rec.addr));
  }

  // 5. Inspect the wear landscape.
  const auto metrics = compute_wear_metrics(mc.bank().wear_counts());
  Table t({"metric", "value"});
  t.add_row({"scheme", std::string(mc.scheme().name())});
  t.add_row({"logical lines", std::to_string(lines)});
  t.add_row({"writes issued", std::to_string(mc.total_writes())});
  t.add_row({"simulated time", fmt_duration_ns(static_cast<double>(mc.now().value()))});
  t.add_row({"mean wear", fmt_double(metrics.mean)});
  t.add_row({"max wear", std::to_string(metrics.max)});
  t.add_row({"max/mean (1.0 = perfectly even)", fmt_double(metrics.max_over_mean)});
  t.add_row({"gini coefficient", fmt_double(metrics.gini)});
  t.print(std::cout);

  std::cout << "\nA 90/1 hotspot would wear one line " << lines / 100
            << "x faster than average without wear leveling; Security RBSG keeps\n"
               "max/mean close to 1.\n";
  return 0;
}
