// Quickstart: put a Security RBSG wear-leveler in front of a PCM bank,
// run a hot-spotted workload, and watch the wear stay flat.
//
//   ./quickstart [lines] [writes]

#include <cstdlib>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "controller/memory_controller.hpp"
#include "trace/generators.hpp"
#include "wl/factory.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;

  const u64 lines = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 14);
  const u64 writes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000'000;

  // 1. Describe the PCM device (defaults follow the paper: SET 1000 ns,
  //    RESET/READ 125 ns). The endurance is irrelevant for this demo.
  const auto pcm_cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);

  // 2. Pick a wear-leveling scheme. Security RBSG with 7 Feistel stages
  //    is the paper's recommended configuration.
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;

  // 3. The controller glues the scheme to a bank and keeps simulated time.
  ctl::MemoryController mc(pcm_cfg, wl::make_scheme(spec));

  // Basic reads and writes go through the dynamic translation:
  mc.write(La{42}, pcm::LineData::mixed(/*token=*/0xC0FFEE));
  const auto [data, read_latency] = mc.read(La{42});
  std::cout << "read back token 0x" << std::hex << data.token << std::dec << " in "
            << read_latency.value() << " ns\n";

  // 4. Hammer a hotspot: 90% of traffic on 1% of the address space.
  trace::GeneratorOptions opt;
  opt.lines = lines;
  opt.accesses = writes;
  opt.write_ratio = 1.0;
  opt.seed = 7;
  const auto trc = trace::make_hotspot(opt, 0.01, 0.9);
  for (const auto& rec : trc) {
    mc.write(La{rec.addr}, pcm::LineData::mixed(rec.addr));
  }

  // 5. Inspect the wear landscape.
  const auto metrics = compute_wear_metrics(mc.bank().wear_counts());
  Table t({"metric", "value"});
  t.add_row({"scheme", std::string(mc.scheme().name())});
  t.add_row({"logical lines", std::to_string(lines)});
  t.add_row({"writes issued", std::to_string(mc.total_writes())});
  t.add_row({"simulated time", fmt_duration_ns(static_cast<double>(mc.now().value()))});
  t.add_row({"mean wear", fmt_double(metrics.mean)});
  t.add_row({"max wear", std::to_string(metrics.max)});
  t.add_row({"max/mean (1.0 = perfectly even)", fmt_double(metrics.max_over_mean)});
  t.add_row({"gini coefficient", fmt_double(metrics.gini)});
  t.print(std::cout);

  std::cout << "\nA 90/1 hotspot would wear one line " << lines / 100
            << "x faster than average without wear leveling; Security RBSG keeps\n"
               "max/mean close to 1.\n";
  return 0;
}
