// Batch sweep tool: run a (scheme × attack × seed) grid from the command
// line and emit one CSV row per run — the glue for plotting your own
// figures or extending the paper's grids.
//
//   ./sweep_csv [lines] [endurance] [seeds]
//
// Columns: scheme,attack,regions,inner,outer,stages,seed,succeeded,
//          lifetime_ns,writes,max_wear,max_over_mean

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;
  using sim::AttackKind;

  const u64 lines = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;
  const u64 endurance = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16384;
  const u64 seeds = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;

  std::vector<sim::LifetimeConfig> configs;
  for (auto scheme : {wl::SchemeKind::kRbsg, wl::SchemeKind::kSr2,
                      wl::SchemeKind::kSecurityRbsg}) {
    for (auto attack : {AttackKind::kRaa, AttackKind::kBpa, AttackKind::kRta}) {
      for (u64 seed = 1; seed <= seeds; ++seed) {
        sim::LifetimeConfig c;
        c.pcm = pcm::PcmConfig::scaled(lines, endurance);
        c.scheme.kind = scheme;
        c.scheme.lines = lines;
        c.scheme.regions = lines / 64;
        c.scheme.inner_interval = 8;
        c.scheme.outer_interval = 16;
        c.scheme.stages = 7;
        c.scheme.seed = seed;
        c.seed = seed;
        c.attack = attack;
        c.write_budget = 64 * lines * endurance / 8;
        configs.push_back(c);
      }
    }
  }

  ThreadPool pool;
  const auto entries = sim::run_sweep(configs, pool);

  std::cout << "scheme,attack,regions,inner,outer,stages,seed,succeeded,lifetime_ns,"
               "writes,max_wear,max_over_mean\n";
  for (const auto& e : entries) {
    const auto& s = e.config.scheme;
    const auto& r = e.outcome.result;
    std::cout << wl::to_string(s.kind) << ',' << sim::to_string(e.config.attack) << ','
              << s.regions << ',' << s.inner_interval << ',' << s.outer_interval << ','
              << s.stages << ',' << e.config.seed << ',' << (r.succeeded ? 1 : 0) << ','
              << r.lifetime.value() << ',' << r.writes << ',' << e.outcome.wear.max << ','
              << fmt_double(e.outcome.wear.max_over_mean, 5) << '\n';
  }
  return 0;
}
