// Trace replay: run a trace file (or a named synthetic profile) through
// the performance model and report the IPC cost of a wear-leveling
// scheme, gem5-style (§V.C.4).
//
//   ./trace_replay [profile-name|path.trace] [scheme]
//
// Profile names: any PARSEC/SPEC workload (e.g. "canneal", "mcf"), or a
// path to a text trace saved by Trace::save_text.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "perf/ipc_experiment.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;

  const std::string source = argc > 1 ? argv[1] : "canneal";
  const std::string scheme_name = argc > 2 ? argv[2] : "security-rbsg";
  const u64 lines = 1u << 14;
  const u64 instructions = 4'000'000;

  std::optional<trace::Trace> trc;
  for (auto span : {trace::parsec_profiles(), trace::spec2006_profiles()}) {
    for (const auto& p : span) {
      if (p.name == source) {
        trc = trace::make_profile_trace(p, lines, instructions, 3);
      }
    }
  }
  if (!trc) {
    std::ifstream in(source);
    if (!in) {
      std::cerr << "unknown profile and unreadable file: " << source << "\n";
      return 1;
    }
    trc = trace::Trace::load_text(in, source);
  }

  wl::SchemeSpec spec;
  spec.kind = wl::parse_scheme(scheme_name);
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;

  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  const auto stats = trc->stats();
  const auto cmp = perf::compare_ipc(*trc, spec, cfg, perf::CoreParams{}, Ns{10});

  Table t({"metric", "value"});
  t.add_row({"workload", trc->name()});
  t.add_row({"accesses", std::to_string(stats.records)});
  t.add_row({"write MPKI", fmt_double(stats.write_mpki, 3)});
  t.add_row({"read MPKI", fmt_double(stats.read_mpki, 3)});
  t.add_row({"IPC baseline (no WL)", fmt_double(cmp.ipc_baseline, 4)});
  t.add_row({"IPC with " + scheme_name, fmt_double(cmp.ipc_scheme, 4)});
  t.add_row({"degradation %", fmt_double(cmp.degradation_pct, 3)});
  t.print(std::cout);
  return 0;
}
