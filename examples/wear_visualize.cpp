// Wear visualizer: replay a synthetic workload against a chosen scheme
// and dump the per-line wear plus the Fig.16-style cumulative curve as
// CSV (pipe into your plotting tool of choice).
//
//   ./wear_visualize [scheme] [pattern] [writes]
//     scheme:  none | start-gap | rbsg | sr1 | sr2 | mwsr | security-rbsg
//     pattern: raa | uniform | zipf | hotspot | sequential

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "controller/memory_controller.hpp"
#include "trace/generators.hpp"
#include "wl/factory.hpp"

int main(int argc, char** argv) {
  using namespace srbsg;

  const std::string scheme_name = argc > 1 ? argv[1] : "security-rbsg";
  const std::string pattern = argc > 2 ? argv[2] : "raa";
  const u64 writes = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4'000'000;
  const u64 lines = 1u << 14;

  wl::SchemeSpec spec;
  spec.kind = wl::parse_scheme(scheme_name);
  spec.lines = lines;
  spec.regions = 64;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;

  ctl::MemoryController mc(pcm::PcmConfig::scaled(lines, u64{1} << 40),
                           wl::make_scheme(spec));

  if (pattern == "raa") {
    mc.write_repeated(La{0}, pcm::LineData::mixed(), writes);
  } else {
    trace::GeneratorOptions opt;
    opt.lines = lines;
    opt.accesses = writes;
    opt.write_ratio = 1.0;
    opt.seed = 13;
    trace::Trace trc;
    if (pattern == "uniform") {
      trc = trace::make_uniform(opt);
    } else if (pattern == "zipf") {
      trc = trace::make_zipf(opt, 1.1);
    } else if (pattern == "hotspot") {
      trc = trace::make_hotspot(opt, 0.05, 0.9);
    } else if (pattern == "sequential") {
      trc = trace::make_sequential(opt);
    } else {
      std::cerr << "unknown pattern: " << pattern << "\n";
      return 1;
    }
    for (const auto& rec : trc) {
      mc.write(La{rec.addr}, pcm::LineData::mixed(rec.addr));
    }
  }

  const auto wear = mc.bank().wear_counts();
  const auto curve = normalized_cumulative(wear, 64);
  const auto metrics = compute_wear_metrics(wear);

  std::cerr << "# scheme=" << scheme_name << " pattern=" << pattern << " writes=" << writes
            << " max/mean=" << metrics.max_over_mean << " gini=" << metrics.gini << "\n";

  std::cout << "section,index,value\n";
  // Down-sample the wear landscape to 256 buckets for plotting.
  const std::size_t buckets = 256;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * wear.size() / buckets;
    const std::size_t hi = (b + 1) * wear.size() / buckets;
    u64 sum = 0;
    for (std::size_t i = lo; i < hi; ++i) sum += wear[i];
    std::cout << "wear," << b << "," << sum << "\n";
  }
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::cout << "cumulative," << i << "," << curve[i] << "\n";
  }
  return 0;
}
