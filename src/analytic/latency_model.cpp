#include "analytic/latency_model.hpp"

namespace srbsg::analytic {

Latencies latencies_of(const pcm::PcmConfig& cfg) {
  Latencies l{};
  l.read_ns = static_cast<double>(cfg.read_latency.value());
  l.reset_ns = static_cast<double>(cfg.reset_latency.value());
  l.set_ns = static_cast<double>(cfg.set_latency.value());
  l.move0_ns = l.read_ns + l.reset_ns;
  l.move1_ns = l.read_ns + l.set_ns;
  l.swap00_ns = 2 * l.read_ns + 2 * l.reset_ns;
  l.swap01_ns = 2 * l.read_ns + l.reset_ns + l.set_ns;
  l.swap11_ns = 2 * l.read_ns + 2 * l.set_ns;
  return l;
}

double ideal_lifetime_ns(const pcm::PcmConfig& cfg) {
  const auto l = latencies_of(cfg);
  return static_cast<double>(cfg.line_count) * static_cast<double>(cfg.endurance) * l.set_ns;
}

double raa_baseline_ns(const pcm::PcmConfig& cfg) {
  const auto l = latencies_of(cfg);
  return static_cast<double>(cfg.endurance) * l.set_ns;
}

}  // namespace srbsg::analytic
