#pragma once
// Closed-form latency/lifetime building blocks shared by the analytic
// models. All results are in double nanoseconds — paper-scale numbers
// (1 GB bank, E = 1e8) exceed what per-write simulation can reach, and
// doubles keep the formulas overflow-free.

#include "pcm/config.hpp"

namespace srbsg::analytic {

struct Latencies {
  double read_ns;
  double reset_ns;  ///< ALL-0 write
  double set_ns;    ///< write containing a SET transition (incl. normal data)
  double move0_ns;  ///< remap movement of an ALL-0 line (read + RESET)
  double move1_ns;  ///< remap movement of a SET line (read + SET)
  double swap00_ns;  ///< SR swap of two ALL-0 lines
  double swap01_ns;
  double swap11_ns;
};

[[nodiscard]] Latencies latencies_of(const pcm::PcmConfig& cfg);

/// Ideal lifetime (paper Figs. 13-15 reference line): perfectly uniform
/// wear under normal (SET-latency) writes — N·E writes.
[[nodiscard]] double ideal_lifetime_ns(const pcm::PcmConfig& cfg);

/// Lifetime of the unprotected baseline under RAA: E writes to one line.
[[nodiscard]] double raa_baseline_ns(const pcm::PcmConfig& cfg);

}  // namespace srbsg::analytic
