#include "analytic/lifetime_models.hpp"

#include <cmath>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::analytic {
namespace {

double dbl(u64 v) { return static_cast<double>(v); }

}  // namespace

double raa_rbsg_ns(const pcm::PcmConfig& cfg, const RbsgShape& s) {
  check(s.regions > 0 && cfg.line_count % s.regions == 0, "raa_rbsg: bad regions");
  const auto l = latencies_of(cfg);
  const double m = dbl(cfg.line_count / s.regions);
  // Each physical slot hosts the hammered LA for one rotation
  // ((M+1)·ψ writes) out of every M+1 rotations; E·(M+1) writes total.
  return dbl(cfg.endurance) * (m + 1) * l.set_ns;
}

double raa_rbsg_exact_ns(const pcm::PcmConfig& cfg, const RbsgShape& s) {
  check(s.regions > 0 && cfg.line_count % s.regions == 0, "raa_rbsg_exact: bad regions");
  const auto l = latencies_of(cfg);
  const double m = dbl(cfg.line_count / s.regions);
  const double psi = dbl(s.interval);
  // The first-visited slot accumulates one hammer visit of (M+1)·ψ writes
  // plus M+1 movement writes per cycle of M+1 rotations; the fatal visit
  // happens at the start of the final cycle.
  const double per_visit = (m + 1) * psi;
  const double per_cycle_wear = per_visit + (m + 1);
  const double full_cycles = std::floor(dbl(cfg.endurance) / per_cycle_wear);
  const double remaining = dbl(cfg.endurance) - full_cycles * per_cycle_wear;
  const double hammer_writes = full_cycles * (m + 1) * per_visit + remaining;
  const double movements = hammer_writes / psi;
  // Normal (mixed) data everywhere: writes at SET, movements read+SET.
  return hammer_writes * l.set_ns + movements * (l.read_ns + l.set_ns);
}

RtaRbsgBreakdown rta_rbsg_ns(const pcm::PcmConfig& cfg, const RbsgShape& s) {
  check(s.regions > 0 && cfg.line_count % s.regions == 0, "rta_rbsg: bad regions");
  const auto l = latencies_of(cfg);
  const double n = dbl(cfg.line_count);
  const double m = dbl(cfg.line_count / s.regions);
  const double psi = dbl(s.interval);
  const double bits = dbl(log2_floor(cfg.line_count));
  const double rotation = (m + 1) * psi;  // writes per full region rotation

  RtaRbsgBreakdown b{};
  // Step 1: blanket ALL-0.
  b.blanket_ns = n * l.reset_ns;
  // Steps 2-3: hammer ALL-1 until the target's own migration stalls —
  // half a rotation in expectation.
  b.align_ns = 0.5 * rotation * l.set_ns;
  // Steps 4-6, per address bit: one pattern pass over the space (half the
  // lines flip to ALL-1, half to ALL-0) plus one rotation of trigger
  // writes whose content follows the target's own pattern bit (ALL-0 or
  // ALL-1 with equal probability over bit positions).
  const double pattern_pass = n * 0.5 * (l.reset_ns + l.set_ns);
  const double trigger_rotation = rotation * 0.5 * (l.reset_ns + l.set_ns);
  b.detect_ns = bits * (pattern_pass + trigger_rotation);
  // Wear-out: the pinned slot absorbs ~M·ψ of every rotation's writes;
  // the attacker hammers ALL-0.
  const double rounds = std::ceil(dbl(cfg.endurance) / (m * psi));
  b.wear_ns = rounds * rotation * l.reset_ns;
  b.total_ns = b.blanket_ns + b.align_ns + b.detect_ns + b.wear_ns;
  b.writes = n + 0.5 * rotation + bits * (n + rotation) + rounds * rotation;
  return b;
}

double bpa_expected_probes(u64 slots, u64 hits_needed) {
  check(slots > 0 && hits_needed > 0, "bpa_expected_probes: bad parameters");
  if (hits_needed == 1) return 1.0;
  const double bins = dbl(slots);
  // P(Pois(lambda) >= k) for the tail; search n geometrically then refine.
  auto tail = [&](double lambda, u64 k) {
    double term = std::exp(-lambda);
    double cdf = term;
    for (u64 i = 1; i < k; ++i) {
      term *= lambda / dbl(i);
      cdf += term;
    }
    return 1.0 - cdf;
  };
  double lo = 1.0;
  double hi = bins * dbl(hits_needed);
  while (bins * tail(hi / bins, hits_needed) < 1.0) hi *= 2.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (bins * tail(mid / bins, hits_needed) >= 1.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double bpa_rbsg_ns(const pcm::PcmConfig& cfg, const RbsgShape& s) {
  check(s.regions > 0 && cfg.line_count % s.regions == 0, "bpa_rbsg: bad regions");
  const auto l = latencies_of(cfg);
  const double m = dbl(cfg.line_count / s.regions);
  // Expected hammer length before the probed line is moved: half a
  // rotation of its region.
  const double deposit = (m + 1) * dbl(s.interval) / 2.0;
  const u64 hits = static_cast<u64>(std::ceil(dbl(cfg.endurance) / deposit));
  const double slots = dbl(cfg.line_count + s.regions);  // data lines + gap lines
  const double probes = bpa_expected_probes(static_cast<u64>(slots), hits);
  // BPA hammers crafted ALL-1 data to detect its own migration (§II.B).
  return probes * deposit * l.set_ns;
}

RtaSr2Breakdown rta_sr2_ns(const pcm::PcmConfig& cfg, const Sr2Shape& s) {
  check(is_pow2(s.sub_regions) && s.sub_regions > 1, "rta_sr2: bad sub_regions");
  const auto l = latencies_of(cfg);
  const double n = dbl(cfg.line_count);
  const double m = dbl(cfg.line_count / s.sub_regions);
  const double psi_o = dbl(s.outer_interval);
  const double region_bits = dbl(log2_floor(s.sub_regions));

  RtaSr2Breakdown b{};
  b.round_writes = n * psi_o;  // outer CRP walks all N lines
  // Per-round detection: log2(R) pattern passes of ~N/2 delta writes plus
  // a few boundary observations each (negligible).
  b.detect_writes = region_bits * (n / 2.0);
  b.wear_writes = b.round_writes - b.detect_writes;
  check(b.wear_writes > 0, "rta_sr2: detection exceeds the round budget");
  // The flood spreads uniformly over the sub-region's M lines; the first
  // line dies when the region has absorbed E·M writes.
  b.rounds = std::ceil(dbl(cfg.endurance) * m / b.wear_writes);
  const double detect_ns = b.detect_writes * 0.5 * (l.reset_ns + l.set_ns);
  const double wear_ns = b.wear_writes * l.reset_ns;  // attacker floods ALL-0
  b.total_ns = b.rounds * (detect_ns + wear_ns);
  b.writes = b.rounds * b.round_writes;
  return b;
}

double raa_sr2_ns(const pcm::PcmConfig& cfg, double uniformity) {
  check(uniformity > 0.0 && uniformity <= 1.0, "raa_sr2: bad uniformity");
  return uniformity * ideal_lifetime_ns(cfg);
}

double security_rbsg_fraction_ns(const pcm::PcmConfig& cfg, double fraction) {
  check(fraction > 0.0 && fraction <= 1.0, "security_rbsg: bad fraction");
  return fraction * ideal_lifetime_ns(cfg);
}

double dfn_security_margin(const pcm::PcmConfig& cfg, const SecurityRbsgShape& s) {
  const double b = dbl(cfg.address_bits());
  const double key_bits = dbl(s.stages) * b;
  const double per_bit_writes = dbl(cfg.line_count / s.sub_regions);
  const double round_writes = dbl(cfg.line_count / s.sub_regions) * dbl(s.outer_interval);
  return key_bits * per_bit_writes / round_writes;  // = stages·B/ψ_out
}

u32 min_secure_stages(const pcm::PcmConfig& cfg, const SecurityRbsgShape& s) {
  SecurityRbsgShape probe = s;
  for (u32 k = 1; k <= 64; ++k) {
    probe.stages = k;
    if (dfn_security_margin(cfg, probe) >= 1.0) return k;
  }
  return 64;
}

double extrapolate_lifetime(double measured_ns, double model_from_ns, double model_to_ns) {
  check(model_from_ns > 0.0, "extrapolate: degenerate source model");
  return measured_ns * (model_to_ns / model_from_ns);
}

}  // namespace srbsg::analytic
