#pragma once
// Closed-form lifetime models for each scheme × attack pair, derived from
// the write-count identities of paper §III and validated against the
// exact scaled-down simulations (tests assert agreement within tolerance).
//
// These are what the figure benches use to evaluate the *paper-scale*
// configuration (N = 2^22, E = 1e8), where to-failure simulation is out
// of reach; at scaled configurations the same formulas are cross-checked
// against the simulator.

#include "analytic/latency_model.hpp"
#include "pcm/config.hpp"

namespace srbsg::analytic {

// ---------------------------------------------------------------- RBSG --

struct RbsgShape {
  u64 regions;   ///< R
  u64 interval;  ///< ψ
};

/// RAA against RBSG, smooth form (the paper's arithmetic): the hammered
/// LA rides one slot per rotation, so each physical slot absorbs
/// (M+1)·ψ writes once per (M+1)-rotation cycle; failure after E·(M+1)
/// total writes of normal data.
[[nodiscard]] double raa_rbsg_ns(const pcm::PcmConfig& cfg, const RbsgShape& s);

/// RAA against RBSG, discrete form: accounts for the endurance being
/// crossed part-way through a visit and for the wear contributed by the
/// gap movements themselves. Tracks the exact simulator within a few
/// percent at any scale (used for scaled→paper extrapolation).
[[nodiscard]] double raa_rbsg_exact_ns(const pcm::PcmConfig& cfg, const RbsgShape& s);

struct RtaRbsgBreakdown {
  double blanket_ns;
  double align_ns;
  double detect_ns;
  double wear_ns;
  double total_ns;
  double writes;  ///< total attack writes
};

/// RTA against RBSG (§III.B): blanket + align + per-bit detection + the
/// pinned-slot wear-out. Mirrors the simulator's attacker (ALL-0 hammer
/// during wear).
[[nodiscard]] RtaRbsgBreakdown rta_rbsg_ns(const pcm::PcmConfig& cfg, const RbsgShape& s);

// --------------------------------------------------- BPA ---------------

/// Expected number of random probes until some of `slots` bins has been
/// hit `hits_needed` times — the balls-into-bins extreme-value bound
/// behind the Birthday Paradox Attack. Solved numerically from the
/// Poisson tail: the smallest n with slots·P(Pois(n/slots) ≥ k) ≥ 1.
[[nodiscard]] double bpa_expected_probes(u64 slots, u64 hits_needed);

/// BPA against RBSG/Start-Gap: each probed address is hammered until its
/// line moves (expected (M+1)·ψ/2 writes, all landing on one slot); the
/// bank dies when some slot has absorbed ⌈E / deposit⌉ deposits.
[[nodiscard]] double bpa_rbsg_ns(const pcm::PcmConfig& cfg, const RbsgShape& s);

// --------------------------------------------------- two-level SR ------

struct Sr2Shape {
  u64 sub_regions;     ///< R
  u64 inner_interval;  ///< ψ_in
  u64 outer_interval;  ///< ψ_out
};

struct RtaSr2Breakdown {
  double round_writes;   ///< writes per outer round (N · ψ_out)
  double detect_writes;  ///< per-round key detection writes
  double wear_writes;    ///< per-round writes landing on the target region
  double rounds;         ///< outer rounds until the region dies
  double total_ns;
  double writes;
};

/// RTA against two-level SR (§III.E): per outer round, re-detect the high
/// log2(R) key bits, then flood the target sub-region; its M lines share
/// the flood uniformly and die after E·M region writes.
[[nodiscard]] RtaSr2Breakdown rta_sr2_ns(const pcm::PcmConfig& cfg, const Sr2Shape& s);

/// RAA against two-level SR: traffic eventually spreads over the whole
/// space with efficiency `uniformity` (fraction of ideal; the paper's
/// measured value is ≈ 0.66, and the scaled simulator reproduces it).
[[nodiscard]] double raa_sr2_ns(const pcm::PcmConfig& cfg, double uniformity);

// --------------------------------------------------- Security RBSG -----

struct SecurityRbsgShape {
  u64 sub_regions;
  u64 inner_interval;
  u64 outer_interval;
  u32 stages;
};

/// RAA/BPA against Security RBSG: lifetime = fraction-of-ideal measured
/// at scale × the ideal lifetime. The fraction depends mostly on the DFN
/// permutation quality (number of stages), which is scale-free.
[[nodiscard]] double security_rbsg_fraction_ns(const pcm::PcmConfig& cfg, double fraction);

/// §V.C.1 security margin: writes needed to detect the DFN key array
/// (stages · B key bits, one bit per N/R writes) over the writes in one
/// remapping round ((N/R)·ψ_out). The scheme leaks nothing when > 1;
/// with B = 22 and ψ_out = 128 this yields the paper's "6 stages" rule.
[[nodiscard]] double dfn_security_margin(const pcm::PcmConfig& cfg,
                                         const SecurityRbsgShape& s);

/// Smallest stage count with dfn_security_margin > 1.
[[nodiscard]] u32 min_secure_stages(const pcm::PcmConfig& cfg, const SecurityRbsgShape& s);

// --------------------------------------------------- helpers -----------

/// Scale a measured scaled-config lifetime to another configuration using
/// the ratio of the model evaluated at both: measured · model(to)/model(from).
[[nodiscard]] double extrapolate_lifetime(double measured_ns, double model_from_ns,
                                          double model_to_ns);

}  // namespace srbsg::analytic
