#include "analytic/overhead.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::analytic {

OverheadReport security_rbsg_overhead(const pcm::PcmConfig& cfg, const OverheadShape& s) {
  check(s.sub_regions > 0 && cfg.line_count % s.sub_regions == 0,
        "overhead: sub_regions must divide lines");
  const u64 n = cfg.line_count;
  const u64 b = cfg.address_bits();
  const u64 region_lines = n / s.sub_regions;

  OverheadReport r{};
  const u64 outer_bits = (u64{s.stages} + 1) * b + log2_ceil(s.outer_interval);
  const u64 inner_bits =
      s.sub_regions * (2 * log2_ceil(region_lines) + log2_ceil(s.inner_interval));
  r.register_bits = outer_bits + inner_bits;
  r.spare_lines = s.sub_regions + 1;
  r.spare_bytes = r.spare_lines * cfg.line_bytes;
  r.isremap_sram_bits = n;
  r.cubing_gates = (3 * u64{s.stages} * b * b) / 8;
  r.spare_capacity_fraction =
      static_cast<double>(r.spare_lines) / static_cast<double>(n + r.spare_lines);
  return r;
}

}  // namespace srbsg::analytic
