#pragma once
// Hardware overhead model for Security RBSG (paper §V.C.3).

#include "pcm/config.hpp"

namespace srbsg::analytic {

struct OverheadShape {
  u64 sub_regions{512};     ///< R
  u64 inner_interval{64};   ///< ψ_in
  u64 outer_interval{128};  ///< ψ_out
  u32 stages{7};            ///< S
};

struct OverheadReport {
  /// Controller register bits:
  /// (S+1)·B + log2(ψ_out) for the outer level (Gap, Kc/Kp arrays, write
  /// counter) + R·(2·log2(N/R) + log2(ψ_in)) for the per-region Start-Gap
  /// state.
  u64 register_bits{0};
  /// Extra PCM lines: one outer spare + one gap line per sub-region.
  u64 spare_lines{0};
  u64 spare_bytes{0};
  /// isRemap bits: one per logical line, held in SRAM.
  u64 isremap_sram_bits{0};
  /// Cubing-circuit gate estimate: (3/8)·S·B² (squarer ≈ B²/2 gates,
  /// multiplier ≈ B² gates, per Liddicoat & Flynn).
  u64 cubing_gates{0};
  /// Fraction of PCM capacity consumed by spare lines.
  double spare_capacity_fraction{0.0};
};

[[nodiscard]] OverheadReport security_rbsg_overhead(const pcm::PcmConfig& cfg,
                                                    const OverheadShape& s);

}  // namespace srbsg::analytic
