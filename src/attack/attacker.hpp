#pragma once
// Attacker interface. Attack implementations interact with the memory
// controller exactly like malicious software would: they issue writes and
// observe per-request latencies (the remap-stall side channel). They are
// configured with the public scheme parameters (N, R, ψ — assumed known,
// as in the paper's threat model where the OS is compromised) but never
// inspect the scheme's secret state.

#include <string>
#include <string_view>

#include "controller/memory_controller.hpp"

namespace srbsg::attack {

class Attacker {
 public:
  virtual ~Attacker() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Attack until the bank fails or `write_budget` writes were issued.
  /// Implementations must poll `mc.failed()` and stop promptly.
  virtual void run(ctl::MemoryController& mc, u64 write_budget) = 0;

  /// Scheme-specific notes filled in during the run (detected key bits,
  /// phase write counts, ...). Purely informational.
  [[nodiscard]] virtual std::string detail() const { return {}; }
};

}  // namespace srbsg::attack
