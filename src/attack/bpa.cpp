#include "attack/bpa.hpp"

#include <algorithm>

namespace srbsg::attack {

BirthdayParadoxAttack::BirthdayParadoxAttack(u64 seed, u64 hammer_cap)
    : rng_(seed), hammer_cap_(hammer_cap) {}

void BirthdayParadoxAttack::run(ctl::MemoryController& mc, u64 write_budget) {
  const u64 lines = mc.logical_lines();
  u64 issued = 0;
  while (!mc.failed() && issued < write_budget) {
    const La la{rng_.next_below(lines)};
    ++addresses_tried_;
    const Pa original = mc.scheme().translate(la);
    u64 hammered = 0;
    while (!mc.failed() && issued < write_budget && hammered < hammer_cap_ &&
           mc.scheme().translate(la) == original) {
      // Chunk between observation points; remaps are only detectable at
      // movement boundaries anyway, which arrive every ψ writes at most.
      const u64 n = std::min<u64>({256, write_budget - issued, hammer_cap_ - hammered});
      const La pattern[] = {la};
      const auto out = mc.write_cycle(pattern, pcm::LineData::all_one(0xBB), n);
      issued += out.writes_applied;
      hammered += out.writes_applied;
      if (out.writes_applied == 0) return;
    }
  }
}

std::string BirthdayParadoxAttack::detail() const {
  return "addresses_tried=" + std::to_string(addresses_tried_);
}

}  // namespace srbsg::attack
