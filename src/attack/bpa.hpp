#pragma once
// Birthday Paradox Attack (Seznec'09; paper §II.B): pick logical
// addresses at random and hammer each until it gets remapped away, then
// move on. After surprisingly few picks some physical line has absorbed
// several full hammer windows and dies.
//
// The attacker detects "my line just moved" through the same timing
// channel RTA uses (hammering crafted ALL-1 data while the rest of the
// region is colder makes the migration stall stand out); the simulator
// grants that detection by watching for the translation change, which is
// timing-equivalent and keeps this attacker scheme-agnostic.

#include "attack/attacker.hpp"
#include "common/rng.hpp"

namespace srbsg::attack {

class BirthdayParadoxAttack final : public Attacker {
 public:
  /// `hammer_cap` bounds the writes spent on a single address before
  /// giving up on it (covers schemes whose remap of a given line can be
  /// starved arbitrarily long).
  BirthdayParadoxAttack(u64 seed, u64 hammer_cap);

  [[nodiscard]] std::string_view name() const override { return "BPA"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;
  [[nodiscard]] std::string detail() const override;

 private:
  Rng rng_;
  u64 hammer_cap_;
  u64 addresses_tried_{0};
};

}  // namespace srbsg::attack
