#include "attack/harness.hpp"

#include <memory>

#include "telemetry/telemetry.hpp"

namespace srbsg::attack {

AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker, u64 write_budget) {
  return run_attack(mc, attacker, write_budget, HarnessOptions{});
}

AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker, u64 write_budget,
                        const HarnessOptions& opts) {
  telemetry::Recorder* prev = mc.telemetry();
  std::unique_ptr<telemetry::Recorder> local;
  telemetry::Recorder* rec = opts.recorder;
  if (rec == nullptr && opts.collect_latency) {
    // The deprecated latency path needs only aggregates: a capacity-0
    // ring keeps the counters and drops every event.
    telemetry::TelemetryConfig cfg;
    cfg.ring_capacity = 0;
    local = std::make_unique<telemetry::Recorder>(cfg);
    rec = local.get();
  }
  const auto& core = telemetry::CoreCounters::get();
  u64 writes_before = 0, service_before = 0, movements_before = 0;
  if (rec != nullptr) {
    // Snapshot so a caller-supplied recorder with prior history still
    // yields per-run latency deltas (gauges are monotone, so max_single
    // reflects the whole recorder, not just this run).
    writes_before = rec->counter(core.writes);
    service_before = rec->counter(core.service_ns);
    movements_before = rec->counter(core.movements);
    mc.set_telemetry(rec);
  }
  attacker.run(mc, write_budget);
  AttackResult res;
  res.succeeded = mc.failed();
  res.writes = mc.total_writes();
  res.elapsed = mc.now();
  if (res.succeeded) {
    res.lifetime = mc.failure().time;
    res.elapsed = res.lifetime;
    res.writes = mc.failure().total_writes;
  }
  res.attacker = std::string(attacker.name());
  res.scheme = std::string(mc.scheme().name());
  res.detail = attacker.detail();
  if (opts.collect_latency && rec != nullptr) {
    ctl::LatencyStats stats;
    stats.writes = rec->counter(core.writes) - writes_before;
    stats.total = Ns{rec->counter(core.service_ns) - service_before};
    stats.movements = rec->counter(core.movements) - movements_before;
    stats.max_single = Ns{rec->counter(core.max_write_ns)};
    res.latency = stats;
  }
  if (rec != nullptr) mc.set_telemetry(prev);
  return res;
}

}  // namespace srbsg::attack
