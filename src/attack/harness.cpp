#include "attack/harness.hpp"

namespace srbsg::attack {

AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker, u64 write_budget) {
  return run_attack(mc, attacker, write_budget, HarnessOptions{});
}

AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker, u64 write_budget,
                        const HarnessOptions& opts) {
  ctl::LatencyStats stats;
  if (opts.collect_latency) mc.set_latency_sink(&stats);
  attacker.run(mc, write_budget);
  if (opts.collect_latency) mc.set_latency_sink(nullptr);
  AttackResult res;
  res.succeeded = mc.failed();
  res.writes = mc.total_writes();
  res.elapsed = mc.now();
  if (res.succeeded) {
    res.lifetime = mc.failure().time;
    res.elapsed = res.lifetime;
    res.writes = mc.failure().total_writes;
  }
  res.attacker = std::string(attacker.name());
  res.scheme = std::string(mc.scheme().name());
  res.detail = attacker.detail();
  if (opts.collect_latency) res.latency = stats;
  return res;
}

}  // namespace srbsg::attack
