#include "attack/harness.hpp"

namespace srbsg::attack {

AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker, u64 write_budget) {
  attacker.run(mc, write_budget);
  AttackResult res;
  res.succeeded = mc.failed();
  res.writes = mc.total_writes();
  res.elapsed = mc.now();
  if (res.succeeded) {
    res.lifetime = mc.failure().time;
    res.elapsed = res.lifetime;
    res.writes = mc.failure().total_writes;
  }
  res.attacker = std::string(attacker.name());
  res.scheme = std::string(mc.scheme().name());
  res.detail = attacker.detail();
  return res;
}

}  // namespace srbsg::attack
