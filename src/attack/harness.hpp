#pragma once
// Drives an attacker against a controller and reports the outcome.

#include <optional>
#include <string>

#include "attack/attacker.hpp"

namespace srbsg::telemetry {
class Recorder;
}  // namespace srbsg::telemetry

namespace srbsg::attack {

struct AttackResult {
  bool succeeded{false};  ///< a PCM line was worn out
  Ns lifetime{0};         ///< simulated time to first failure (if succeeded)
  u64 writes{0};          ///< logical writes issued by the attacker
  Ns elapsed{0};          ///< simulated time consumed (== lifetime on success)
  std::string attacker;
  std::string scheme;
  std::string detail;
  /// Present only when HarnessOptions::collect_latency was set.
  std::optional<ctl::LatencyStats> latency;
};

struct HarnessOptions {
  /// Deprecated alias for telemetry-backed latency aggregation, kept for
  /// source compatibility. Setting it registers a counters-only telemetry
  /// recorder for the run (reusing `recorder` when one is given) and
  /// rebuilds AttackResult::latency from the counter deltas — the same
  /// numbers the old controller-side sink produced. Off by default.
  bool collect_latency{false};
  /// Telemetry for the run: attached to the controller (and its scheme)
  /// for the duration of run_attack, then detached. Not owned; nullptr
  /// leaves telemetry off unless collect_latency asks for counters.
  telemetry::Recorder* recorder{nullptr};
};

/// Runs `attacker` until first line failure or `write_budget` writes.
[[nodiscard]] AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker,
                                      u64 write_budget);
[[nodiscard]] AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker,
                                      u64 write_budget, const HarnessOptions& opts);

}  // namespace srbsg::attack
