#pragma once
// Drives an attacker against a controller and reports the outcome.

#include <optional>
#include <string>

#include "attack/attacker.hpp"

namespace srbsg::attack {

struct AttackResult {
  bool succeeded{false};  ///< a PCM line was worn out
  Ns lifetime{0};         ///< simulated time to first failure (if succeeded)
  u64 writes{0};          ///< logical writes issued by the attacker
  Ns elapsed{0};          ///< simulated time consumed (== lifetime on success)
  std::string attacker;
  std::string scheme;
  std::string detail;
  /// Present only when HarnessOptions::collect_latency was set.
  std::optional<ctl::LatencyStats> latency;
};

struct HarnessOptions {
  /// Attach a latency sink for the run. Off by default: most callers
  /// only read the failure info, and latency accumulation on every
  /// write is pure overhead for them.
  bool collect_latency{false};
};

/// Runs `attacker` until first line failure or `write_budget` writes.
[[nodiscard]] AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker,
                                      u64 write_budget);
[[nodiscard]] AttackResult run_attack(ctl::MemoryController& mc, Attacker& attacker,
                                      u64 write_budget, const HarnessOptions& opts);

}  // namespace srbsg::attack
