#include "attack/raa.hpp"

#include <algorithm>

namespace srbsg::attack {

RepeatedAddressAttack::RepeatedAddressAttack(La target) : target_(target) {}

void RepeatedAddressAttack::run(ctl::MemoryController& mc, u64 write_budget) {
  constexpr u64 kChunk = 1u << 20;
  const La pattern[] = {target_};
  u64 issued = 0;
  while (!mc.failed() && issued < write_budget) {
    const u64 n = std::min(kChunk, write_budget - issued);
    const auto out = mc.write_cycle(pattern, pcm::LineData::mixed(0xAA), n);
    issued += out.writes_applied;
    if (out.writes_applied == 0) break;  // defensive: no forward progress
  }
}

}  // namespace srbsg::attack
