#pragma once
// Repeated Address Attack (paper §II.B): hammer one logical address with
// ordinary data. Kills an unprotected PCM line in about a minute; against
// wear-leveled memory it is the slow baseline RTA is compared with.

#include "attack/attacker.hpp"

namespace srbsg::attack {

class RepeatedAddressAttack final : public Attacker {
 public:
  /// `target` is the hammered logical address. Normal data contains both
  /// transitions, so each write costs the SET latency (§II.C).
  explicit RepeatedAddressAttack(La target = La{0});

  [[nodiscard]] std::string_view name() const override { return "RAA"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;

 private:
  La target_;
};

}  // namespace srbsg::attack
