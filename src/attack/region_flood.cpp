#include "attack/region_flood.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::attack {

StaticRegionFloodAttack::StaticRegionFloodAttack(const RegionFloodParams& p) : p_(p) {
  check(p.lines > 0 && is_pow2(p.lines), "RegionFlood: lines must be a power of two");
  check(is_pow2(p.regions) && p.regions >= 1 && p.regions <= p.lines,
        "RegionFlood: bad region count");
  check(p.target_region < p.regions, "RegionFlood: target out of range");
  check(p.chunk >= 1, "RegionFlood: bad chunk");
}

void StaticRegionFloodAttack::run(ctl::MemoryController& mc, u64 write_budget) {
  issued_ = 0;
  const u64 m = p_.lines / p_.regions;
  const u64 base = p_.target_region * m;
  u64 off = 0;
  while (!mc.failed() && issued_ < write_budget) {
    const u64 n = std::min(p_.chunk, write_budget - issued_);
    const auto out =
        mc.write_repeated(La{base + off}, pcm::LineData::all_zero(), n);
    issued_ += out.writes_applied;
    if (out.writes_applied == 0) break;
    off = (off + 1) % m;
  }
}

std::string StaticRegionFloodAttack::detail() const {
  return "region=" + std::to_string(p_.target_region) +
         " issued=" + std::to_string(issued_);
}

}  // namespace srbsg::attack
