#pragma once
// Static-region flood — the §III.E observation weaponized: schemes that
// partition the memory "by the address sequence and perform wear leveling
// for each sub-region independently" (Multi-Way SR) expose the LA→region
// assignment statically, so no timing detection is needed at all. The
// attacker floods the N/R logical addresses of one sub-region round-robin
// and waits for the region's weakest line to absorb E writes.
//
// Against Multi-Way SR this is the paper's full attack minus the (free)
// key detection; it also serves as a baseline for the dynamic schemes,
// where the same flood is diluted across the whole bank.

#include "attack/attacker.hpp"

namespace srbsg::attack {

struct RegionFloodParams {
  u64 lines{0};        ///< N
  u64 regions{0};      ///< R (static partition by high LA bits)
  u64 target_region{0};
  u64 chunk{64};       ///< writes per address before cycling
};

class StaticRegionFloodAttack final : public Attacker {
 public:
  explicit StaticRegionFloodAttack(const RegionFloodParams& p);

  [[nodiscard]] std::string_view name() const override { return "region-flood"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;
  [[nodiscard]] std::string detail() const override;

 private:
  RegionFloodParams p_;
  u64 issued_{0};
};

}  // namespace srbsg::attack
