#include "attack/rta_probe.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace srbsg::attack {

using pcm::DataClass;
using pcm::LineData;

RtaProbeAttacker::RtaProbeAttacker(const RtaProbeParams& p) : p_(p) {
  check(p.lines > 0 && is_pow2(p.lines), "RtaProbe: lines must be a power of two");
  check(p.outer_interval > 0, "RtaProbe: bad interval");
  check(p.probe_bit < log2_floor(p.lines), "RtaProbe: probe bit out of range");
}

void RtaProbeAttacker::run(ctl::MemoryController& mc, u64 write_budget) {
  const auto& cfg = mc.bank().config();
  const Ns mv1 = pcm::move_latency(cfg, DataClass::kAllOne);
  const Ns mv0 = pcm::move_latency(cfg, DataClass::kAllZero);
  u64 issued = 0;
  auto exhausted = [&] { return mc.failed() || issued >= write_budget; };

  // Pattern the space by the probe bit (doubles as the blanket pass). The
  // data class is constant across each aligned run of 2^probe_bit
  // addresses, so each run goes through the batched write path.
  const u64 run_len = u64{1} << p_.probe_bit;
  std::vector<La> block;
  block.reserve(run_len);
  for (u64 la = 0; la < p_.lines && !exhausted();) {
    const u64 n = std::min({run_len, p_.lines - la, write_budget - issued});
    block.clear();
    for (u64 k = 0; k < n; ++k) block.push_back(La{la + k});
    const auto out = mc.write_batch(
        block, bit_of(la, static_cast<u32>(p_.probe_bit)) ? LineData::all_one()
                                                          : LineData::all_zero());
    issued += out.writes_applied;
    la += n;
    if (out.writes_applied < n) break;
  }

  // Harvest the DFN migration-bit stream: hammer LA 0 (pattern-consistent
  // — all of LA 0's bits are zero) and classify movements that fire at an
  // outer boundary. The attacker mirrors the outer schedule from boot
  // (every ψ_out-th write, and it is the only writer); boundary writes
  // whose stall is not a clean single movement are inner coincidences and
  // are skipped.
  std::vector<u8> stream;
  stream.reserve(p_.probe_movements);
  telemetry::Recorder* tel = mc.telemetry();
  const u16 probe_id = tel != nullptr ? tel->intern_scheme(name()) : u16{0};
  while (stream.size() < p_.probe_movements && !exhausted()) {
    issued += 1;
    const bool outer_boundary = issued % p_.outer_interval == 0;
    const auto out = mc.write(La{0}, LineData::all_zero());
    if (outer_boundary && out.movements == 1) {
      if (out.stall == mv1) {
        stream.push_back(1);
      } else if (out.stall == mv0) {
        stream.push_back(0);
      }
      if (tel != nullptr && (out.stall == mv0 || out.stall == mv1)) {
        // Forensics hook: each harvested migration bit, with the stall
        // that classified it, timestamped against the remap timeline.
        tel->emit(telemetry::EventType::kProbeClassified, probe_id, telemetry::kGlobalDomain,
                  stream.back(), out.stall.value());
      }
    }
  }

  u64 ones = 0;
  for (u8 b : stream) ones += b;
  bias_ = stream.empty() ? 0.0 : static_cast<double>(ones) / static_cast<double>(stream.size());

  // Cross-round replay test: compare the first and second halves of the
  // stream at equal offsets. For a static mapping the migration order
  // repeats each rotation, pushing agreement toward 1; a re-keyed DFN
  // keeps it near 0.5.
  const std::size_t half = stream.size() / 2;
  u64 agree = 0;
  for (std::size_t i = 0; i < half; ++i) {
    agree += stream[i] == stream[i + half] ? u64{1} : u64{0};
  }
  agreement_ = half == 0 ? 0.0 : static_cast<double>(agree) / static_cast<double>(half);

  // Fallback: the timing stream carried no exploitable structure, so the
  // strongest remaining attack is birthday-paradox hammering.
  Rng rng(p_.seed);
  u64 addresses_tried = 0;
  while (!exhausted()) {
    const La la{rng.next_below(p_.lines)};
    ++addresses_tried;
    const Pa original = mc.scheme().translate(la);
    u64 hammered = 0;
    while (!exhausted() && hammered < p_.hammer_cap &&
           mc.scheme().translate(la) == original) {
      const u64 chunk = std::min<u64>({1024, write_budget - issued, p_.hammer_cap - hammered});
      const La hammer[] = {la};
      const auto out = mc.write_cycle(hammer, LineData::all_one(), chunk);
      issued += out.writes_applied;
      hammered += out.writes_applied;
      if (out.writes_applied == 0) return;
    }
  }

  notes_ = "samples=" + std::to_string(stream.size()) +
           " bias=" + std::to_string(bias_) +
           " agreement=" + std::to_string(agreement_) +
           " bpa_addresses=" + std::to_string(addresses_tried);
}

}  // namespace srbsg::attack
