#pragma once
// RTA feasibility probe against Security RBSG (paper §IV.B / §V.C.1).
//
// The RTA primitive that breaks RBSG and SR reads, from each remap stall,
// one data-pattern bit of the line being migrated. Against a *dynamic*
// Feistel network this still works — the attacker sees bit j of LOC_t for
// every outer movement t — but the sequence of migrated lines is a keyed
// pseudorandom permutation that is re-keyed every round, so the bits are
// useless: they cannot be stitched into key bits (the cubing round
// function is non-linear) and cannot be replayed across rounds (the keys
// rotate first).
//
// This probe quantifies that emptiness: it patterns memory, harvests the
// migration-bit stream for several rounds, and reports (a) the bias of
// the stream and (b) the agreement between consecutive rounds at the same
// movement index — both ≈ 0.5 for a secure mapping, far from it for a
// static one. It then falls back to birthday-paradox hammering, which is
// the best remaining strategy, so the measured lifetime doubles as the
// "Security RBSG under RTA" number.

#include <string>
#include <vector>

#include "attack/attacker.hpp"
#include "common/rng.hpp"

namespace srbsg::attack {

struct RtaProbeParams {
  u64 lines{0};           ///< N
  u64 outer_interval{0};  ///< ψ_out (outer movements fire every ψ_out writes)
  u64 probe_bit{0};       ///< which LA bit to pattern during the probe
  u64 probe_movements{4096};  ///< stall samples to harvest
  u64 seed{7};
  u64 hammer_cap{1u << 20};  ///< per-address cap for the BPA fallback
};

class RtaProbeAttacker final : public Attacker {
 public:
  explicit RtaProbeAttacker(const RtaProbeParams& p);

  [[nodiscard]] std::string_view name() const override { return "RTA-probe"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;
  [[nodiscard]] std::string detail() const override { return notes_; }

  /// Fraction of 1-bits in the harvested migration-bit stream.
  [[nodiscard]] double bit_bias() const { return bias_; }
  /// Agreement between successive halves of the stream at equal offsets
  /// (≈ 0.5 when rounds are independent).
  [[nodiscard]] double round_agreement() const { return agreement_; }

 private:
  RtaProbeParams p_;
  double bias_{0.0};
  double agreement_{0.0};
  std::string notes_;
};

}  // namespace srbsg::attack
