#include "attack/rta_rbsg.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::attack {

using pcm::DataClass;
using pcm::LineData;

RtaRbsgAttacker::RtaRbsgAttacker(const RtaRbsgParams& p) : p_(p) {
  check(p.lines > 0 && is_pow2(p.lines), "RtaRbsg: lines must be a power of two");
  check(p.regions > 0 && p.lines % p.regions == 0, "RtaRbsg: regions must divide lines");
  check(p.interval > 0 && p.endurance > 0, "RtaRbsg: bad interval/endurance");
  check(p.target.value() < p.lines, "RtaRbsg: target out of range");
}

bool RtaRbsgAttacker::exhausted(const ctl::MemoryController& mc) const {
  return mc.failed() || issued_ >= budget_;
}

wl::WriteOutcome RtaRbsgAttacker::issue(ctl::MemoryController& mc, La la,
                                        const LineData& data) {
  const auto out = mc.write(la, data);
  ++issued_;
  return out;
}

u64 RtaRbsgAttacker::ring_advance() {
  const u64 slots = ring_.size();
  const u64 from = gap_slot_ == 0 ? slots - 1 : gap_slot_ - 1;
  const u64 moved = ring_[from];
  ring_[gap_slot_] = static_cast<u32>(moved);
  gap_slot_ = from;
  return moved;
}

void RtaRbsgAttacker::run(ctl::MemoryController& mc, u64 write_budget) {
  budget_ = write_budget;
  issued_ = 0;
  notes_.clear();
  detected_.clear();

  const u64 n = p_.lines;
  const u64 m = n / p_.regions;  // lines per region
  const u64 psi = p_.interval;
  const u32 bits = log2_floor(n);
  const auto& cfg = mc.bank().config();
  const Ns stall_zero = pcm::move_latency(cfg, DataClass::kAllZero);
  const Ns stall_one = pcm::move_latency(cfg, DataClass::kAllOne);

  // ---- Phase 1: blanket ALL-0 (Step 1) --------------------------------
  // Ascending sweep with constant data: goes through the batched write
  // path in blocks (no per-write observation is needed here).
  {
    constexpr u64 kBlock = u64{1} << 16;
    std::vector<La> blanket;
    blanket.reserve(std::min(n, kBlock));
    for (u64 la = 0; la < n && !exhausted(mc);) {
      const u64 cnt = std::min({kBlock, n - la, budget_ - issued_});
      blanket.clear();
      for (u64 k = 0; k < cnt; ++k) blanket.push_back(La{la + k});
      const auto out = mc.write_batch(blanket, LineData::all_zero());
      issued_ += out.writes_applied;
      la += cnt;
      if (out.writes_applied < cnt) break;
    }
  }
  const u64 blanket_writes = issued_;

  // ---- Phase 2: alignment (Steps 2-3) ---------------------------------
  // Hammer the target with ALL-1; the unique read+SET stall marks the
  // migration of the target's own line. Any observed stall also resets
  // the mirrored write counter (a movement just fired).
  bool aligned = false;
  const u64 align_cap = (m + 2) * psi + 1;
  for (u64 t = 0; t < align_cap && !exhausted(mc); ++t) {
    const auto out = issue(mc, p_.target, LineData::all_one());
    if (out.movements > 0) {
      counter_ = 0;
      if (out.stall == stall_one) {
        aligned = true;
        break;
      }
    } else {
      ++counter_;
    }
  }
  if (!aligned) {
    notes_ = "alignment failed";
    return;
  }
  // The target just moved one slot up; the gap sits directly below it.
  // Relative coordinates: target at slot 0, gap at slot M, and the single
  // gap guarantees slots M-1..1 hold Li−1..Li−(M−1) in IA order.
  ring_.assign(m + 1, 0);
  gap_slot_ = m;
  for (u64 k = 1; k < m; ++k) ring_[m - k] = static_cast<u32>(k);
  const u64 align_writes = issued_ - blanket_writes;

  // ---- Phase 3: bit detection (Steps 4-6) ------------------------------
  // Two extra predecessors of margin: window-edge writes occasionally
  // land off the pinned slot, so the kill can take a round or two longer
  // than the ideal E/(M·ψ) estimate.
  const u64 rounds_needed = ceil_div(p_.endurance, m * psi) + 2;
  const u64 n_detect = std::min<u64>(rounds_needed, m - 1);
  std::vector<u64> la_bits(n_detect + 1, 0);
  std::vector<bool> seen(n_detect + 1, false);

  std::vector<La> pass_block;
  for (u32 j = 0; j < bits && !exhausted(mc); ++j) {
    // Pattern pass: bit j of the LA chooses ALL-0 / ALL-1. The data is
    // constant across each aligned run of 2^j addresses, so long runs go
    // through the batched path; short ones stay per-write.
    const u64 run = u64{1} << j;
    if (run >= 8) {
      pass_block.reserve(run);
      for (u64 la = 0; la < n && !exhausted(mc);) {
        const u64 cnt = std::min({run, n - la, budget_ - issued_});
        pass_block.clear();
        for (u64 k = 0; k < cnt; ++k) pass_block.push_back(La{la + k});
        const auto out = mc.write_batch(
            pass_block, bit_of(la, j) ? LineData::all_one() : LineData::all_zero());
        issued_ += out.writes_applied;
        la += cnt;
        if (out.writes_applied < cnt) break;
      }
    } else {
      for (u64 la = 0; la < n && !exhausted(mc); ++la) {
        issue(mc, La{la},
              bit_of(la, j) ? LineData::all_one() : LineData::all_zero());
      }
    }
    // Exactly M of those writes landed in the target's region; movements
    // fired during the pass are burned (observed but unattributable).
    const u64 total = counter_ + m;
    for (u64 b = 0; b < total / psi; ++b) ring_advance();
    counter_ = total % psi;

    // Hammer the target (with its own pattern value, keeping its line
    // consistent) and read bit j of each predecessor from its migration
    // stall. Up to two rotations: bits burned by the pass come around
    // again one rotation later.
    std::fill(seen.begin(), seen.end(), false);
    const LineData hammer =
        bit_of(p_.target.value(), j) ? LineData::all_one() : LineData::all_zero();
    u64 collected = 0;
    const u64 guard = 2 * (m + 1) * psi;
    for (u64 t = 0; t < guard && collected < n_detect && !exhausted(mc); ++t) {
      const auto out = issue(mc, p_.target, hammer);
      if (out.movements > 0) {
        counter_ = 0;
        const u64 k = ring_advance();
        if (k >= 1 && k <= n_detect && !seen[k]) {
          seen[k] = true;
          ++collected;
          if (out.stall == stall_one) {
            la_bits[k] |= u64{1} << j;
          } else {
            check(out.stall == stall_zero, "RtaRbsg: unexpected stall value");
          }
        }
      } else {
        ++counter_;
      }
    }
  }
  const u64 detect_writes = issued_ - blanket_writes - align_writes;

  detected_.assign(n_detect, 0);
  for (u64 k = 1; k <= n_detect; ++k) detected_[k - 1] = la_bits[k];

  // ---- Phase 4: wear-out ----------------------------------------------
  // Pin the slot the target LA occupies RIGHT NOW: from here on its
  // residents are exactly Li, Li−1, Li−2, … — the detected sequence —
  // regardless of how many rotations the detection consumed. All writes
  // are in-region, so the mirrored state advances in lock-step with the
  // real gap.
  const u64 slots = m + 1;
  u64 pinned = slots;  // slot currently holding the target's line
  for (u64 i = 0; i < slots; ++i) {
    if (ring_[i] == 0 && i != gap_slot_) {
      pinned = i;
      break;
    }
  }
  check(pinned < slots, "RtaRbsg: lost track of the target line");
  u64 fallback_windows = 0;
  while (!exhausted(mc)) {
    // Resident of the pinned slot (or, if it is currently the gap, the
    // line about to arrive from the slot below).
    const u64 below = (pinned + slots - 1) % slots;
    const u64 resident = gap_slot_ == pinned ? ring_[below] : ring_[pinned];
    u64 la;
    if (resident == 0) {
      la = p_.target.value();
    } else if (resident <= n_detect) {
      la = detected_[resident - 1];
    } else {
      // Sequence shorter than the rotation demands; hammer the target as
      // a fallback (wears a different slot this window).
      la = p_.target.value();
      ++fallback_windows;
    }
    // Hammer until the successor arrives at the pinned slot: that is the
    // movement executed when the gap reaches it.
    const u64 until_arrival = (gap_slot_ + slots - pinned) % slots + 1;
    const u64 writes_needed = until_arrival * psi - counter_;
    const u64 chunk = std::min(writes_needed, budget_ - issued_);
    const La hammer_la[] = {La{la}};
    const auto out = mc.write_cycle(hammer_la, LineData::all_zero(), chunk);
    issued_ += out.writes_applied;
    if (out.writes_applied == 0) break;
    const u64 tot = counter_ + out.writes_applied;
    for (u64 b = 0; b < tot / psi; ++b) ring_advance();
    counter_ = tot % psi;
  }

  notes_ = "blanket=" + std::to_string(blanket_writes) +
           " align=" + std::to_string(align_writes) +
           " detect=" + std::to_string(detect_writes) +
           " seq_len=" + std::to_string(n_detect) +
           " fallback_windows=" + std::to_string(fallback_windows);
}

}  // namespace srbsg::attack
