#pragma once
// Remapping Timing Attack against Region-Based Start-Gap (paper §III.B).
//
// The attacker knows the public configuration (N lines, R regions,
// remapping interval ψ, endurance E) but not the static randomizer. It
// learns everything else from per-request latencies:
//
//  1. Blanket: write ALL-0 everywhere (every line becomes RESET-fast).
//  2. Align:   hammer the target LA with ALL-1 until a remap stall of
//              read+SET (1125 ns) appears — that movement migrated the
//              target's own line, so the gap is now exactly one slot
//              below it. From here on, the attacker mirrors the region's
//              gap position arithmetically: every in-region write is its
//              own, and a full pattern pass puts exactly M = N/R writes
//              into the region (the randomizer is a bijection).
//  3. Detect:  for every address bit j, write a pattern (bit j of LA
//              selects ALL-0 vs ALL-1) to the whole space, then hammer
//              the target and read bit j of each physically-adjacent
//              predecessor Li−k = f⁻¹(f(Li)−k) from the stall of its
//              migration (250 ns ⇒ 0, 1125 ns ⇒ 1).
//  4. Wear:    rotate the region with its own writes, always hammering
//              the LA currently resident on the pinned physical slot —
//              the slot absorbs ~M·ψ writes per rotation and dies after
//              ⌈E/(M·ψ)⌉ rotations.
//
// Movements consumed by the pattern passes are "burned": their stalls
// cannot be attributed, so the affected bits are simply re-read one
// rotation later (the detection loop allows up to two rotations per bit).

#include <string>
#include <vector>

#include "attack/attacker.hpp"

namespace srbsg::attack {

struct RtaRbsgParams {
  u64 lines{0};      ///< N
  u64 regions{0};    ///< R
  u64 interval{0};   ///< ψ
  u64 endurance{0};  ///< E (used to size the predecessor sequence)
  La target{0};      ///< Li, the logical address anchoring the attack
};

class RtaRbsgAttacker final : public Attacker {
 public:
  explicit RtaRbsgAttacker(const RtaRbsgParams& p);

  [[nodiscard]] std::string_view name() const override { return "RTA"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;
  [[nodiscard]] std::string detail() const override { return notes_; }

  /// Detected predecessor logical addresses; element k-1 is Li−k.
  /// Populated after run() finishes the detection phase.
  [[nodiscard]] const std::vector<u64>& detected_sequence() const { return detected_; }

 private:
  /// One write through the controller with budget/failure accounting.
  wl::WriteOutcome issue(ctl::MemoryController& mc, La la, const pcm::LineData& data);
  [[nodiscard]] bool exhausted(const ctl::MemoryController& mc) const;

  /// Advance the attacker's mirror of the region state by one movement;
  /// returns the adjacency index k (Li−k) of the line that moved.
  u64 ring_advance();

  RtaRbsgParams p_;
  u64 budget_{0};
  u64 issued_{0};

  // Mirrored region state (valid after alignment).
  std::vector<u32> ring_;  ///< slot → adjacency index k (slot gap_ is stale)
  u64 gap_slot_{0};
  u64 counter_{0};  ///< in-region writes since the last movement

  std::vector<u64> detected_;
  std::string notes_;
};

}  // namespace srbsg::attack
