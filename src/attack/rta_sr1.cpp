#include "attack/rta_sr1.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::attack {

using pcm::DataClass;
using pcm::LineData;

RtaSr1Attacker::RtaSr1Attacker(const RtaSr1Params& p) : p_(p) {
  check(p.lines > 0 && is_pow2(p.lines), "RtaSr1: lines must be a power of two");
  check(p.interval > 0, "RtaSr1: bad interval");
  check(p.target.value() < p.lines, "RtaSr1: target out of range");
}

bool RtaSr1Attacker::exhausted(const ctl::MemoryController& mc) const {
  return mc.failed() || issued_ >= budget_;
}

wl::WriteOutcome RtaSr1Attacker::issue(ctl::MemoryController& mc, La la,
                                       const LineData& data) {
  const auto out = mc.write(la, data);
  ++issued_;
  shadow_[la.value()] = data.cls == DataClass::kAllOne ? 1 : 0;
  // Mirror the CRP arithmetically: every ψ writes advance one step,
  // whether or not that step performed a swap.
  if (++counter_ >= p_.interval) {
    counter_ = 0;
    ++crp_;
  }
  return out;
}

void RtaSr1Attacker::pattern_pass(ctl::MemoryController& mc, u32 j) {
  for (u64 la = 0; la < p_.lines && !exhausted(mc); ++la) {
    const u8 want = bit_of(la, j) ? 1 : 0;
    if (shadow_[la] != want) {
      issue(mc, La{la}, want ? LineData::all_one() : LineData::all_zero());
    }
  }
}

void RtaSr1Attacker::bulk_to_step(ctl::MemoryController& mc, u64 target) {
  while (crp_ < target && !exhausted(mc)) {
    const u64 writes_needed = (target - crp_) * p_.interval - counter_;
    const u64 chunk = std::min(writes_needed, budget_ - issued_);
    const La fill[] = {La{0}};
    const auto out = mc.write_cycle(fill, LineData::all_zero(), chunk);
    issued_ += out.writes_applied;
    shadow_[0] = 0;
    const u64 tot = counter_ + out.writes_applied;
    crp_ += tot / p_.interval;
    counter_ = tot % p_.interval;
    if (out.writes_applied < chunk) return;
  }
}

bool RtaSr1Attacker::wait_for_swap(ctl::MemoryController& mc, u64 wrap, Ns* stall_out) {
  const u64 n = p_.lines;
  const u64 round_start = wrap - n;
  u32 block_bits = 4;
  while (crp_ < wrap && !exhausted(mc)) {
    // Probe a handful of steps one write at a time.
    const u64 probe_until = std::min(wrap, crp_ + 8);
    while (crp_ < probe_until && !exhausted(mc)) {
      const auto out = issue(mc, La{0}, LineData::all_zero());
      if (out.movements > 0) {
        *stall_out = out.stall;
        return true;
      }
    }
    if (crp_ >= wrap) break;
    // Skip-only stretch: steps swap iff the key's top bit of the step
    // index is 0, so skip runs end at a power-of-two boundary. Escalate.
    const u64 in_round = crp_ - round_start;
    const u64 boundary = ((in_round >> block_bits) + 1) << block_bits;
    bulk_to_step(mc, std::min(wrap, round_start + boundary));
    if (block_bits < 63) ++block_bits;
  }
  return false;
}

bool RtaSr1Attacker::detect_key(ctl::MemoryController& mc, u32 bits, u64* key_out) {
  const auto& cfg = mc.bank().config();
  const Ns s01 = pcm::swap_latency(cfg, DataClass::kAllZero, DataClass::kAllOne);
  const u64 n = p_.lines;
  const u64 round_start = crp_ - (crp_ % n);
  const u64 wrap = round_start + n;
  u64 key = 0;
  for (u32 j = 0; j < bits; ++j) {
    pattern_pass(mc, j);
    if (crp_ >= wrap) return false;  // keys rotated mid-detection
    // The next swap stall classifies bit j of K. If the whole round has
    // no swap at all, the round's key delta is zero.
    Ns stall{0};
    if (!wait_for_swap(mc, wrap, &stall)) {
      if (j == 0 && !exhausted(mc)) {
        *key_out = 0;
        return true;
      }
      return false;
    }
    if (stall == s01) key |= u64{1} << j;
    if (exhausted(mc)) break;
  }
  *key_out = key;
  return true;
}

void RtaSr1Attacker::run(ctl::MemoryController& mc, u64 write_budget) {
  budget_ = write_budget;
  issued_ = 0;
  notes_.clear();
  shadow_.assign(p_.lines, 0xFF);  // unknown content
  counter_ = 0;
  crp_ = 0;

  const u64 n = p_.lines;
  const u32 bits = log2_floor(n);
  const auto& cfg = mc.bank().config();
  const Ns s01 = pcm::swap_latency(cfg, DataClass::kAllZero, DataClass::kAllOne);
  const Ns s11 = pcm::swap_latency(cfg, DataClass::kAllOne, DataClass::kAllOne);

  // ---- Phase 1: blanket + alignment (Steps 1-2) -----------------------
  // Batched blanket; the shadow and CRP mirrors advance in closed form
  // (same arithmetic issue() applies per write).
  {
    constexpr u64 kBlock = u64{1} << 16;
    std::vector<La> blanket;
    blanket.reserve(std::min(n, kBlock));
    for (u64 la = 0; la < n && !exhausted(mc);) {
      const u64 cnt = std::min({kBlock, n - la, budget_ - issued_});
      blanket.clear();
      for (u64 k = 0; k < cnt; ++k) blanket.push_back(La{la + k});
      const auto out = mc.write_batch(blanket, LineData::all_zero());
      issued_ += out.writes_applied;
      for (u64 k = 0; k < out.writes_applied; ++k) shadow_[la + k] = 0;
      const u64 tot = counter_ + out.writes_applied;
      crp_ += tot / p_.interval;
      counter_ = tot % p_.interval;
      la += cnt;
      if (out.writes_applied < cnt) break;
    }
  }
  bool aligned = false;
  const u64 align_cap = 3 * n * p_.interval;
  for (u64 t = 0; t < align_cap && !exhausted(mc); ++t) {
    const auto out = issue(mc, La{0}, LineData::all_one());
    if (out.movements > 0 && (out.stall == s01 || out.stall == s11)) {
      // LA 0's line (the only ALL-1 line) was just swapped — that is the
      // CRP = 0 step, the first step of a fresh round.
      aligned = true;
      crp_ = 1;
      counter_ = 0;
      break;
    }
  }
  if (!aligned) {
    notes_ = "alignment failed";
    return;
  }
  issue(mc, La{0}, LineData::all_zero());  // restore LA 0 to the blanket value

  // ---- Phases 2-3: per-round detect + wear ----------------------------
  u64 cur_la = p_.target.value();
  u64 detections = 0;
  while (!exhausted(mc)) {
    // Detect K for the current round (restart if a wrap interrupts).
    u64 key = 0;
    bool ok = false;
    while (!ok && !exhausted(mc)) {
      ok = detect_key(mc, bits, &key);
      ++detections;
    }
    if (!ok) break;
    detected_key_ = key;
    // If the new round already swapped past cur_la while we were
    // detecting, the slot's owner flipped to the pair address.
    const u64 round_start = crp_ - (crp_ % n);
    const u64 in_round = crp_ - round_start;
    if (key != 0 && std::min(cur_la, cur_la ^ key) < in_round) {
      cur_la ^= key;
    }
    // Hammer the slot owner; switch at the pair swap; re-detect at wrap.
    const u64 wrap = round_start + n;
    while (crp_ < wrap && !exhausted(mc)) {
      u64 next_event = wrap;
      if (key != 0) {
        const u64 mn = round_start + std::min(cur_la, cur_la ^ key);
        if (crp_ <= mn) next_event = std::min(next_event, mn + 1);
      }
      const u64 writes_needed = (next_event - crp_) * p_.interval - counter_;
      const u64 chunk = std::min(writes_needed, budget_ - issued_);
      const La hammer[] = {La{cur_la}};
      const auto out = mc.write_cycle(hammer, LineData::all_zero(), chunk);
      issued_ += out.writes_applied;
      shadow_[cur_la] = 0;
      const u64 tot = counter_ + out.writes_applied;
      crp_ += tot / p_.interval;
      counter_ = tot % p_.interval;
      if (out.writes_applied < chunk) break;  // failed or budget mid-bulk
      if (key != 0 && crp_ == round_start + std::min(cur_la, cur_la ^ key) + 1) {
        cur_la ^= key;  // the pinned slot is now owned by the pair
      }
    }
    ++rounds_attacked_;
  }
  notes_ = "rounds=" + std::to_string(rounds_attacked_) +
           " detections=" + std::to_string(detections) +
           " last_key=" + std::to_string(detected_key_);
}

}  // namespace srbsg::attack
