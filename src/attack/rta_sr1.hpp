#pragma once
// Remapping Timing Attack against one-level Security Refresh (paper
// §III.D).
//
// SR remaps by XOR with a per-round key, so one observed swap stall leaks
// one bit of (key_c ⊕ key_p):  the swap at CRP = c exchanges the lines of
// c and pair(c) = c ⊕ K;  with memory patterned by bit j of the LA, the
// stall is 500/2250 ns when bit j of c equals bit j of pair(c) (K_j = 0)
// and 1375 ns when they differ (K_j = 1).
//
// Phases:
//  1. Blanket ALL-0; hammer LA 0 with ALL-1 until the 1375 ns stall of
//     LA 0's own swap appears — that swap is the *first* step of every
//     round (min(0, pair(0)) = 0), so the round start and the CRP are now
//     known and tracked arithmetically (every ψ writes advance one step).
//  2. For each address bit j: re-pattern the changed half of the space
//     (N/2 writes), hammer LA 0 with ALL-0 and classify the next clean
//     swap stall.
//  3. Wear-out: hammer the LA currently pointing at the pinned physical
//     slot; when the CRP passes min(la, la ⊕ K), the slot's new owner is
//     la ⊕ K; at every round wrap, re-detect K and continue.

#include <string>
#include <vector>

#include "attack/attacker.hpp"

namespace srbsg::attack {

struct RtaSr1Params {
  u64 lines{0};      ///< N (single region)
  u64 interval{0};   ///< ψ
  u64 endurance{0};  ///< E (informational)
  La target{0};      ///< LA whose boot-time physical slot gets worn out
};

class RtaSr1Attacker final : public Attacker {
 public:
  explicit RtaSr1Attacker(const RtaSr1Params& p);

  [[nodiscard]] std::string_view name() const override { return "RTA"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;
  [[nodiscard]] std::string detail() const override { return notes_; }

  /// K = key_c ⊕ key_p detected in the most recent completed detection.
  [[nodiscard]] u64 detected_key() const { return detected_key_; }
  [[nodiscard]] u64 rounds_attacked() const { return rounds_attacked_; }

 private:
  wl::WriteOutcome issue(ctl::MemoryController& mc, La la, const pcm::LineData& data);
  [[nodiscard]] bool exhausted(const ctl::MemoryController& mc) const;

  /// Writes the bit-j pattern to every LA whose current content differs
  /// (attacker-side shadow keeps this to ~N/2 writes, paper Step 3).
  void pattern_pass(ctl::MemoryController& mc, u32 j);

  /// Detects all bits of K; assumes the CRP is early in a round. Returns
  /// false if the round wrapped mid-detection (caller restarts).
  bool detect_key(ctl::MemoryController& mc, u32 bits, u64* key_out);

  /// Advances to CRP step `target` with bulk ALL-0 writes to LA 0.
  void bulk_to_step(ctl::MemoryController& mc, u64 target);

  /// Waits for the next swap stall before `wrap`. Swap steps form blocks
  /// (step c swaps iff bit_msb(K) of c is 0), so after a short probe the
  /// attacker jumps to successive power-of-two step boundaries instead of
  /// grinding through a skip-only block. Returns false if the round ends
  /// first.
  bool wait_for_swap(ctl::MemoryController& mc, u64 wrap, Ns* stall_out);

  RtaSr1Params p_;
  u64 budget_{0};
  u64 issued_{0};

  // Mirrored SR state (valid after alignment).
  u64 counter_{0};  ///< writes since the last CRP step
  u64 crp_{0};

  std::vector<u8> shadow_;  ///< last data class written per LA (0/1)
  u64 detected_key_{0};
  u64 rounds_attacked_{0};
  std::string notes_;
};

}  // namespace srbsg::attack
