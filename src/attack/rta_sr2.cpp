#include "attack/rta_sr2.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::attack {

using pcm::DataClass;
using pcm::LineData;

RtaSr2Attacker::RtaSr2Attacker(const RtaSr2Params& p) : p_(p) {
  check(p.lines > 0 && is_pow2(p.lines), "RtaSr2: lines must be a power of two");
  check(is_pow2(p.sub_regions) && p.sub_regions > 1 && p.sub_regions < p.lines,
        "RtaSr2: bad sub_regions");
  check(p.inner_interval > 0 && p.outer_interval > 0, "RtaSr2: bad intervals");
}

bool RtaSr2Attacker::exhausted(const ctl::MemoryController& mc) const {
  return mc.failed() || issued_ >= budget_;
}

u64 RtaSr2Attacker::outer_wrap_step() const {
  return (steps_ / p_.lines + 1) * p_.lines;
}

wl::WriteOutcome RtaSr2Attacker::issue(ctl::MemoryController& mc, La la,
                                       const LineData& data) {
  const auto out = mc.write(la, data);
  ++issued_;
  shadow_[la.value()] = data.cls == DataClass::kAllOne ? 1 : 0;
  if (++counter_ >= p_.outer_interval) {
    counter_ = 0;
    ++steps_;
  }
  return out;
}

void RtaSr2Attacker::bulk_account(u64 writes) {
  issued_ += writes;
  const u64 tot = counter_ + writes;
  steps_ += tot / p_.outer_interval;
  counter_ = tot % p_.outer_interval;
}

void RtaSr2Attacker::pattern_pass(ctl::MemoryController& mc, u32 j) {
  for (u64 la = 0; la < p_.lines && !exhausted(mc); ++la) {
    const u8 want = bit_of(la, j) ? 1 : 0;
    if (shadow_[la] != want) {
      issue(mc, La{la}, want ? LineData::all_one() : LineData::all_zero());
    }
  }
}

bool RtaSr2Attacker::detect_high_key(ctl::MemoryController& mc, u64* key_high_out) {
  const auto& cfg = mc.bank().config();
  const Ns s00 = pcm::swap_latency(cfg, DataClass::kAllZero, DataClass::kAllZero);
  const Ns s01 = pcm::swap_latency(cfg, DataClass::kAllZero, DataClass::kAllOne);
  const Ns s11 = pcm::swap_latency(cfg, DataClass::kAllOne, DataClass::kAllOne);
  const u32 region_bits = log2_floor(p_.lines / p_.sub_regions);
  const u32 total_bits = log2_floor(p_.lines);
  const u64 wrap = outer_wrap_step();

  u64 key_high = 0;
  for (u32 j = region_bits; j < total_bits; ++j) {
    pattern_pass(mc, j);
    if (steps_ >= wrap) return false;
    // Sample outer-boundary stalls until 3 clean observations agree by
    // majority. Hammering LA 0 is always pattern-consistent (its bits
    // are all zero), so the observation write never perturbs the state.
    // Outer swap steps form power-of-two blocks (step c swaps iff
    // bit_msb(K_out) of c is 0), so after a few silent boundaries the
    // attacker jumps to escalating block boundaries instead of grinding
    // through a skip-only stretch.
    int ones = 0;
    int samples = 0;
    u32 block_bits = 4;
    u64 silent_boundaries = 0;
    const u64 round_start = wrap - p_.lines;
    while (samples < 3 && steps_ < wrap && !exhausted(mc)) {
      // Fast-forward to one write before the next outer boundary.
      const u64 gap = p_.outer_interval - counter_ - 1;
      if (gap > 0) {
        const u64 chunk = std::min(gap, budget_ - issued_);
        const La fill[] = {La{0}};
        const auto bulk = mc.write_cycle(fill, LineData::all_zero(), chunk);
        bulk_account(bulk.writes_applied);
        shadow_[0] = 0;
        if (bulk.writes_applied < chunk) return false;
      }
      const auto out = issue(mc, La{0}, LineData::all_zero());
      if (out.movements == 0 || out.stall == Ns{0} ||
          (out.stall != s00 && out.stall != s01 && out.stall != s11)) {
        // Skipped outer step, inner-only stall, or inner/outer
        // coincidence: no clean sample here.
        if (++silent_boundaries >= 8) {
          silent_boundaries = 0;
          const u64 in_round = steps_ - round_start;
          const u64 boundary = ((in_round >> block_bits) + 1) << block_bits;
          const u64 target = std::min(wrap, round_start + boundary);
          while (steps_ < target && !exhausted(mc)) {
            const u64 need = (target - steps_) * p_.outer_interval - counter_;
            const u64 chunk = std::min(need, budget_ - issued_);
            const La fill[] = {La{0}};
            const auto bulk = mc.write_cycle(fill, LineData::all_zero(), chunk);
            bulk_account(bulk.writes_applied);
            shadow_[0] = 0;
            if (bulk.writes_applied < chunk) return false;
          }
          if (block_bits < 63) ++block_bits;
        }
        continue;
      }
      if (out.stall == s01) ++ones;
      ++samples;
    }
    if (samples == 0) {
      if (j == region_bits && !exhausted(mc)) {
        // No outer swap all round: identity round, K_out = 0.
        *key_high_out = 0;
        return true;
      }
      return false;  // ran out of round mid-detection
    }
    if (ones * 2 > samples) key_high |= u64{1} << (j - region_bits);
  }
  *key_high_out = key_high;
  return true;
}

void RtaSr2Attacker::run(ctl::MemoryController& mc, u64 write_budget) {
  budget_ = write_budget;
  issued_ = 0;
  notes_.clear();
  shadow_.assign(p_.lines, 0xFF);
  counter_ = 0;
  steps_ = 0;
  prefix_ = 0;

  const u64 n = p_.lines;
  const u64 m = n / p_.sub_regions;  // LAs per sub-region
  const u32 region_bits = log2_floor(m);

  // Blanket ALL-0 so every pattern delta and stall value is known. Runs
  // through the batched path; the mirrors advance in closed form.
  {
    constexpr u64 kBlock = u64{1} << 16;
    std::vector<La> blanket;
    blanket.reserve(std::min(n, kBlock));
    for (u64 la = 0; la < n && !exhausted(mc);) {
      const u64 cnt = std::min({kBlock, n - la, budget_ - issued_});
      blanket.clear();
      for (u64 k = 0; k < cnt; ++k) blanket.push_back(La{la + k});
      const auto out = mc.write_batch(blanket, LineData::all_zero());
      bulk_account(out.writes_applied);
      for (u64 k = 0; k < out.writes_applied; ++k) shadow_[la + k] = 0;
      la += cnt;
      if (out.writes_applied < cnt) break;
    }
  }

  u64 detections = 0;
  u64 failed_detections = 0;
  while (!exhausted(mc)) {
    // Detect this round's high key bits (restart on wraps).
    u64 key_high = 0;
    bool ok = false;
    while (!ok && !exhausted(mc)) {
      const u64 round_before = steps_ / n;
      ok = detect_high_key(mc, &key_high);
      ++detections;
      if (!ok) {
        ++failed_detections;
        // Every failed detection crossed into a new round whose key we
        // did not read; the prefix is now stale — resync by brute
        // observation is possible but the paper's attacker simply keeps
        // going: the prefix update below only applies detected rounds.
        (void)round_before;
      }
    }
    if (!ok) break;
    prefix_ ^= key_high;
    ++rounds_attacked_;

    // Wear phase: hammer the sub-region's LA block round-robin until the
    // round wraps, spreading writes uniformly over its M physical lines.
    const u64 wrap = outer_wrap_step();
    const u64 chunk = std::max<u64>(p_.inner_interval, 64);
    u64 off = 0;
    while (steps_ < wrap && !exhausted(mc)) {
      const u64 la = (prefix_ << region_bits) | off;
      off = (off + 1) % m;
      const u64 writes_left_in_round =
          (wrap - steps_) * p_.outer_interval - counter_;
      const u64 this_chunk = std::min({chunk, writes_left_in_round, budget_ - issued_});
      const La hammer[] = {La{la}};
      const auto bulk = mc.write_cycle(hammer, LineData::all_zero(), this_chunk);
      bulk_account(bulk.writes_applied);
      shadow_[la] = 0;
      if (bulk.writes_applied < this_chunk) break;
    }
  }

  notes_ = "rounds=" + std::to_string(rounds_attacked_) +
           " detections=" + std::to_string(detections) +
           " failed_detections=" + std::to_string(failed_detections) +
           " prefix=" + std::to_string(prefix_);
}

}  // namespace srbsg::attack
