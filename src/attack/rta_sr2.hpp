#pragma once
// Remapping Timing Attack against two-level Security Refresh (paper
// §III.E).
//
// Detecting both levels' keys every round costs more writes than a round
// contains, so the practical attack tracks only the *outer* key's high
// log2(R) bits: they determine which logical addresses currently map into
// the target sub-region. Each outer round the attacker
//   1. re-detects the high bits of K_out = kc ⊕ kp from outer-swap stalls
//      (same ALL-0/ALL-1 patterning oracle as the one-level attack), and
//   2. hammers the N/R logical addresses of the target sub-region
//      round-robin, wearing the whole sub-region uniformly until some
//      line in it dies.
//
// Outer steps fire every ψ_out writes counted from boot, and the attacker
// is the only writer (compromised OS), so the outer schedule is mirrored
// arithmetically; the timing channel is needed only to read key bits.
// Stalls from inner refreshes that happen to land on an outer boundary
// are filtered by value (coincidence sums fall outside {500,1375,2250})
// and by a 3-sample majority vote.
//
// The target sub-region is the one holding the high-bits-zero LA block at
// boot: S_0 = { la : high(la) = 0 }, and S_{r+1} = S_r ⊕ high(K_{r+1})
// — no knowledge of the boot key is needed.

#include <string>
#include <vector>

#include "attack/attacker.hpp"

namespace srbsg::attack {

struct RtaSr2Params {
  u64 lines{0};           ///< N
  u64 sub_regions{0};     ///< R
  u64 inner_interval{0};  ///< ψ_in (informational; used for chunk sizing)
  u64 outer_interval{0};  ///< ψ_out
  u64 endurance{0};       ///< E (informational)
};

class RtaSr2Attacker final : public Attacker {
 public:
  explicit RtaSr2Attacker(const RtaSr2Params& p);

  [[nodiscard]] std::string_view name() const override { return "RTA"; }
  void run(ctl::MemoryController& mc, u64 write_budget) override;
  [[nodiscard]] std::string detail() const override { return notes_; }

  /// High-bit prefix of the LA block currently targeted (for tests).
  [[nodiscard]] u64 current_prefix() const { return prefix_; }
  [[nodiscard]] u64 rounds_attacked() const { return rounds_attacked_; }

 private:
  wl::WriteOutcome issue(ctl::MemoryController& mc, La la, const pcm::LineData& data);
  void bulk_account(u64 writes);
  [[nodiscard]] bool exhausted(const ctl::MemoryController& mc) const;
  [[nodiscard]] u64 outer_wrap_step() const;

  void pattern_pass(ctl::MemoryController& mc, u32 j);

  /// Detects the high log2(R) bits of K_out for the current round;
  /// returns false when the round wrapped mid-detection.
  bool detect_high_key(ctl::MemoryController& mc, u64* key_high_out);

  RtaSr2Params p_;
  u64 budget_{0};
  u64 issued_{0};

  // Mirrored outer schedule (exact from boot).
  u64 counter_{0};  ///< writes since the last outer step
  u64 steps_{0};    ///< outer steps completed

  std::vector<u8> shadow_;
  u64 prefix_{0};  ///< high-bit prefix of the targeted LA block
  u64 rounds_attacked_{0};
  std::string notes_;
};

}  // namespace srbsg::attack
