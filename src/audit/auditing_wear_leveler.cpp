#include "audit/auditing_wear_leveler.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/check.hpp"

namespace srbsg::audit {

AuditingWearLeveler::AuditingWearLeveler(std::unique_ptr<wl::WearLeveler> inner,
                                         AuditConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), rng_(cfg.seed) {
  check(inner_ != nullptr, "AuditingWearLeveler: null scheme");
  check(cfg_.window_lines >= 1, "AuditingWearLeveler: window must hold at least one line");
  name_ = "audited(" + std::string(inner_->name()) + ")";
}

void AuditingWearLeveler::capture_baseline(const pcm::PcmBank& bank) {
  if (baseline_set_) return;
  baseline_set_ = true;
  baseline_bank_writes_ = bank.total_writes();
  const auto wear = bank.wear_counts();
  baseline_wear_sum_ = std::accumulate(wear.begin(), wear.end(), u64{0});
}

wl::WriteOutcome AuditingWearLeveler::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  capture_baseline(bank);
  const wl::WriteOutcome out = inner_->write(la, data, bank);
  account(1, out.movements, bank);
  return out;
}

wl::BulkOutcome AuditingWearLeveler::write_repeated(La la, const pcm::LineData& data,
                                                    u64 count, pcm::PcmBank& bank) {
  capture_baseline(bank);
  const wl::BulkOutcome out = inner_->write_repeated(la, data, count, bank);
  account(out.writes_applied, out.movements, bank);
  return out;
}

wl::BulkOutcome AuditingWearLeveler::write_batch(std::span<const La> las,
                                                 const pcm::LineData& data,
                                                 pcm::PcmBank& bank) {
  capture_baseline(bank);
  const wl::BulkOutcome out = inner_->write_batch(las, data, bank);
  account(out.writes_applied, out.movements, bank);
  return out;
}

wl::BulkOutcome AuditingWearLeveler::write_cycle(std::span<const La> pattern,
                                                 const pcm::LineData& data, u64 count,
                                                 pcm::PcmBank& bank) {
  capture_baseline(bank);
  const wl::BulkOutcome out = inner_->write_cycle(pattern, data, count, bank);
  account(out.writes_applied, out.movements, bank);
  return out;
}

void AuditingWearLeveler::account(u64 writes, u64 movements, pcm::PcmBank& bank) {
  stats_.writes_seen += writes;
  stats_.movements_seen += movements;
  if (cfg_.cadence == 0) return;
  since_audit_ += writes;
  if (since_audit_ >= cfg_.cadence) {
    since_audit_ = 0;
    audit_now(bank);
  }
}

void AuditingWearLeveler::audit_now(const pcm::PcmBank& bank) {
  capture_baseline(bank);
  ++stats_.audits_run;
  if (cfg_.check_translation) audit_translation();
  if (cfg_.check_conservation) audit_conservation(bank);
  if (cfg_.check_scheme_state) inner_->validate_state();
}

void AuditingWearLeveler::scan_window(u64 start, u64 len,
                                      std::unordered_map<u64, u64>& seen) const {
  const u64 physical = inner_->physical_lines();
  for (u64 la = start; la < start + len; ++la) {
    const u64 pa = inner_->translate(La{la}).value();
    check_lt(pa, physical, "audit: translate() left the physical address space");
    const auto [it, inserted] = seen.emplace(pa, la);
    if (!inserted) {
      check(false, "audit: duplicate physical line " + std::to_string(pa) +
                       " (logical " + std::to_string(it->second) + " and " +
                       std::to_string(la) + ")");
    }
  }
}

void AuditingWearLeveler::audit_translation() {
  const u64 logical = inner_->logical_lines();
  std::unordered_map<u64, u64> seen;
  if (logical <= cfg_.full_scan_limit) {
    seen.reserve(logical);
    scan_window(0, logical, seen);
    return;
  }
  // Large domain: injectivity over sampled windows of consecutive logical
  // lines. Windows may overlap; the occupancy map spans the whole audit,
  // so cross-window collisions are caught too.
  seen.reserve(cfg_.sample_windows * cfg_.window_lines);
  for (u64 w = 0; w < cfg_.sample_windows; ++w) {
    const u64 len = std::min(cfg_.window_lines, logical);
    const u64 start = rng_.next_below(logical - len + 1);
    // Overlapping windows would report a self-collision; clip against the
    // lines already scanned instead of re-checking them.
    std::unordered_map<u64, u64> window;
    scan_window(start, len, window);
    for (const auto& [pa, la] : window) {
      const auto [it, inserted] = seen.emplace(pa, la);
      if (!inserted && it->second != la) {
        check(false, "audit: duplicate physical line " + std::to_string(pa) +
                         " (logical " + std::to_string(it->second) + " and " +
                         std::to_string(la) + ")");
      }
    }
  }
}

void AuditingWearLeveler::audit_conservation(const pcm::PcmBank& bank) const {
  // The scheme's ledger: every data write wears one line; every remap
  // movement wears writes_per_movement() lines.
  const u64 expected = stats_.writes_seen +
                       stats_.movements_seen * u64{inner_->writes_per_movement()};
  check_eq(bank.total_writes() - baseline_bank_writes_, expected,
           "audit: bank write ledger diverged from writes issued + remap movements");
  // And the bank's own ledger must agree with its per-line counters.
  const auto wear = bank.wear_counts();
  const u64 wear_sum = std::accumulate(wear.begin(), wear.end(), u64{0});
  check_eq(wear_sum - baseline_wear_sum_, expected,
           "audit: per-line wear counters diverged from the write ledger");
}

std::unique_ptr<AuditingWearLeveler> make_audited(std::unique_ptr<wl::WearLeveler> scheme,
                                                  AuditConfig cfg) {
  return std::make_unique<AuditingWearLeveler>(std::move(scheme), cfg);
}

}  // namespace srbsg::audit
