#pragma once
// Invariant auditor: a decorator that wraps any wear-leveling scheme and,
// on a configurable write cadence, re-verifies the properties every
// headline lifetime number depends on:
//
//   1. translation soundness — translate() stays injective (no two logical
//      lines share a physical line) and in-range, checked exhaustively for
//      small address spaces and over sampled logical windows for large ones;
//   2. wear conservation — the bank's write ledger equals the data writes
//      issued through the scheme plus remap movements times the scheme's
//      per-movement write cost, and the per-line wear counters sum to that
//      ledger (a silently miscounted remap skews lifetime by orders of
//      magnitude without failing any functional test);
//   3. scheme state — the wrapped scheme's own validate_state() hook (gap
//      bounds, DFN Gap/Kc/Kp/isRemap consistency, SR round counters, ...).
//
// The auditor assumes it is the only writer of the bank it sees (true when
// it sits inside a MemoryController); any violation throws CheckFailure
// with the diverging values. It is opt-in — wrap a scheme before handing
// it to the controller — and costs nothing until an audit fires.

#include <memory>
#include <string>
#include <unordered_map>

#include "common/check.hpp"  // audits throw CheckFailure; callers catch it
#include "common/rng.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::audit {

struct AuditConfig {
  /// Writes between audits; 1 audits after every operation. 0 disables
  /// cadence-driven audits (audit_now() still works).
  u64 cadence{1024};
  /// Exhaustive injectivity scan when logical_lines() <= this; sampled
  /// logical windows otherwise.
  u64 full_scan_limit{u64{1} << 16};
  /// Sampled mode: windows of consecutive logical lines per audit.
  u64 sample_windows{8};
  u64 window_lines{64};
  bool check_translation{true};
  bool check_conservation{true};
  bool check_scheme_state{true};
  /// Seed for the window sampler (deterministic audits).
  u64 seed{0x5eed};
};

struct AuditStats {
  u64 audits_run{0};
  u64 writes_seen{0};
  u64 movements_seen{0};
};

class AuditingWearLeveler final : public wl::WearLeveler {
 public:
  explicit AuditingWearLeveler(std::unique_ptr<wl::WearLeveler> inner, AuditConfig cfg = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] u64 logical_lines() const override { return inner_->logical_lines(); }
  [[nodiscard]] u64 physical_lines() const override { return inner_->physical_lines(); }
  [[nodiscard]] Pa translate(La la) const override { return inner_->translate(la); }

  wl::WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  wl::BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                                 pcm::PcmBank& bank) override;
  wl::BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                              pcm::PcmBank& bank) override;
  wl::BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                              u64 count, pcm::PcmBank& bank) override;

  void set_rate_boost(u32 log2_divisor) override { inner_->set_rate_boost(log2_divisor); }
  void set_engine_tier(wl::EngineTier tier) override {
    wl::WearLeveler::set_engine_tier(tier);
    inner_->set_engine_tier(tier);
  }
  /// Telemetry events come from the wrapped scheme's movement helpers, so
  /// the recorder is forwarded inward; the auditor emits nothing itself.
  void attach_telemetry(telemetry::Recorder* recorder) override {
    // srbsg-analyze: suppress(a10-lifetime) recorder outlives wrapper and inner scheme
    wl::WearLeveler::attach_telemetry(recorder);
    inner_->attach_telemetry(recorder);
  }
  void validate_state() const override { inner_->validate_state(); }
  [[nodiscard]] u32 writes_per_movement() const override {
    return inner_->writes_per_movement();
  }

  /// Runs every enabled check immediately, regardless of cadence.
  void audit_now(const pcm::PcmBank& bank);

  [[nodiscard]] const AuditStats& stats() const { return stats_; }
  [[nodiscard]] const AuditConfig& config() const { return cfg_; }
  [[nodiscard]] wl::WearLeveler& inner() { return *inner_; }
  [[nodiscard]] const wl::WearLeveler& inner() const { return *inner_; }

 private:
  void capture_baseline(const pcm::PcmBank& bank);
  void account(u64 writes, u64 movements, pcm::PcmBank& bank);
  void audit_translation();
  void audit_conservation(const pcm::PcmBank& bank) const;
  /// Checks one logical window [start, start+len) for in-range, collision
  /// free translations against `seen` (physical line → logical owner).
  void scan_window(u64 start, u64 len, std::unordered_map<u64, u64>& seen) const;

  std::unique_ptr<wl::WearLeveler> inner_;
  AuditConfig cfg_;
  std::string name_;
  Rng rng_;
  AuditStats stats_;
  u64 since_audit_{0};
  bool baseline_set_{false};
  u64 baseline_bank_writes_{0};
  u64 baseline_wear_sum_{0};
};

/// Convenience wrapper used by tests, examples and the fuzz harness.
[[nodiscard]] std::unique_ptr<AuditingWearLeveler> make_audited(
    std::unique_ptr<wl::WearLeveler> scheme, AuditConfig cfg = {});

}  // namespace srbsg::audit
