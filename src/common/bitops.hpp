#pragma once
// Bit manipulation helpers used by the address mappers.

#include <bit>
#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace srbsg {

[[nodiscard]] constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); x must be nonzero.
[[nodiscard]] constexpr u32 log2_floor(u64 x) {
  return static_cast<u32>(63 - std::countl_zero(x));
}

/// ceil(log2(x)); x must be nonzero.
[[nodiscard]] constexpr u32 log2_ceil(u64 x) {
  return is_pow2(x) ? log2_floor(x) : log2_floor(x) + 1;
}

/// Mask with the low `bits` bits set. `bits` may be 0..64.
[[nodiscard]] constexpr u64 low_mask(u32 bits) {
  return bits >= 64 ? ~u64{0} : ((u64{1} << bits) - 1);
}

/// Mask holding only the highest set bit of `x`; x must be nonzero.
[[nodiscard]] constexpr u64 top_bit(u64 x) { return u64{1} << log2_floor(x); }

/// Extract bit `i` (0 = LSB) of `x` as 0/1.
[[nodiscard]] constexpr u64 bit_of(u64 x, u32 i) { return (x >> i) & 1; }

/// Number of set bits.
[[nodiscard]] constexpr u32 popcount(u64 x) { return static_cast<u32>(std::popcount(x)); }

/// Round `x` up to the next multiple of `m` (m > 0).
[[nodiscard]] constexpr u64 round_up(u64 x, u64 m) { return (x + m - 1) / m * m; }

/// Ceiling division.
[[nodiscard]] constexpr u64 ceil_div(u64 x, u64 y) { return (x + y - 1) / y; }

}  // namespace srbsg
