#pragma once
// Lightweight runtime checking. Invariant violations in a simulator are
// programming errors, not recoverable conditions, so they throw
// `std::logic_error` with source location attached; callers are expected
// to let the exception terminate the experiment.

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace srbsg {

class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws CheckFailure if `cond` is false. Used for invariants that must
/// hold regardless of build type (simulation correctness depends on them).
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw CheckFailure(std::string(msg) + " [" + loc.file_name() + ":" +
                       std::to_string(loc.line()) + "]");
  }
}

}  // namespace srbsg
