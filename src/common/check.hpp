#pragma once
// Lightweight runtime checking. Invariant violations in a simulator are
// programming errors, not recoverable conditions, so they throw
// `std::logic_error` with source location attached; callers are expected
// to let the exception terminate the experiment.
//
// Three levels of diagnosability:
//   * check(cond, msg)        — message only (msg should name the invariant);
//   * SRBSG_CHECK(expr)       — carries the failing expression text itself;
//   * check_eq/check_lt/...   — carry both operand values, so an auditor
//     failure reports *what* diverged, not just that something did.
//
// Two tiers of cost:
//   * check()/SRBSG_CHECK and the comparison family are armed in every
//     build — simulation correctness depends on them;
//   * SRBSG_DCHECK(expr, msg) is the hot-path tier: a full check()
//     wherever bugs are hunted (Debug builds and every sanitizer preset,
//     where SRBSG_DCHECK_ENABLED is defined), and an optimizer assumption
//     in optimized builds. Use it only for invariants that upstream
//     layers already establish (e.g. bank bounds behind a validated
//     translation); a violated assumption in a release build is UB.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace srbsg {

class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(std::string_view msg, std::string_view values,
                                             std::source_location loc) {
  std::string what(msg);
  if (!values.empty()) {
    what += " (";
    what += values;
    what += ")";
  }
  what += " [";
  what += loc.file_name();
  what += ":";
  what += std::to_string(loc.line());
  what += "]";
  throw CheckFailure(what);
}

/// Renders a value for a failure message via operator<< (integers, strings,
/// anything streamable).
template <class T>
[[nodiscard]] std::string display(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

template <class A, class B>
[[noreturn]] void throw_cmp_failure(const A& a, const B& b, std::string_view op,
                                    std::string_view msg, std::source_location loc) {
  std::string values = "expected lhs ";
  values += op;
  values += " rhs; lhs=";
  values += display(a);
  values += ", rhs=";
  values += display(b);
  throw_check_failure(msg, values, loc);
}

}  // namespace detail

/// Throws CheckFailure if `cond` is false. Used for invariants that must
/// hold regardless of build type (simulation correctness depends on them).
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) detail::throw_check_failure(msg, {}, loc);
}

/// Comparison checks that print both operand values on failure. Compare
/// like-signed types; mixing signedness is a -Wsign-compare error under
/// the default warning set.
template <class A, class B>
void check_eq(const A& a, const B& b, std::string_view msg,
              std::source_location loc = std::source_location::current()) {
  if (!(a == b)) detail::throw_cmp_failure(a, b, "==", msg, loc);
}

template <class A, class B>
void check_ne(const A& a, const B& b, std::string_view msg,
              std::source_location loc = std::source_location::current()) {
  if (!(a != b)) detail::throw_cmp_failure(a, b, "!=", msg, loc);
}

template <class A, class B>
void check_lt(const A& a, const B& b, std::string_view msg,
              std::source_location loc = std::source_location::current()) {
  if (!(a < b)) detail::throw_cmp_failure(a, b, "<", msg, loc);
}

template <class A, class B>
void check_le(const A& a, const B& b, std::string_view msg,
              std::source_location loc = std::source_location::current()) {
  if (!(a <= b)) detail::throw_cmp_failure(a, b, "<=", msg, loc);
}

template <class A, class B>
void check_gt(const A& a, const B& b, std::string_view msg,
              std::source_location loc = std::source_location::current()) {
  if (!(a > b)) detail::throw_cmp_failure(a, b, ">", msg, loc);
}

template <class A, class B>
void check_ge(const A& a, const B& b, std::string_view msg,
              std::source_location loc = std::source_location::current()) {
  if (!(a >= b)) detail::throw_cmp_failure(a, b, ">=", msg, loc);
}

/// Checked replacement for a narrowing `static_cast`: converts `v` to the
/// (narrower) integral type `To`, throwing CheckFailure when the value does
/// not round-trip. Use at width boundaries (u64 simulator state feeding u32
/// report fields) so silent truncation cannot corrupt results.
template <class To, class From>
[[nodiscard]] To checked_narrow(From v,
                                std::source_location loc = std::source_location::current()) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_narrow is for integral conversions");
  if (!std::in_range<To>(v)) {
    detail::throw_check_failure("narrowing conversion lost value", detail::display(+v), loc);
  }
  return static_cast<To>(v);
}

/// True when SRBSG_DCHECK compiles to a full check() in this build.
/// Tests use this to skip death/throw expectations that only hold in
/// checked builds.
inline constexpr bool kDchecksArmed =
#if defined(SRBSG_DCHECK_ENABLED)
    true;
#else
    false;
#endif

}  // namespace srbsg

/// check() variant that carries the failing expression text; use when no
/// better invariant name exists than the condition itself.
#define SRBSG_CHECK(expr) ::srbsg::check((expr), "check failed: " #expr)

// Tells the optimizer `expr` holds without generating a branch-and-throw.
// The expression must be side-effect free; it may be evaluated.
#if defined(__clang__)
#define SRBSG_DETAIL_ASSUME(expr) __builtin_assume(expr)
#elif defined(__GNUC__)
#define SRBSG_DETAIL_ASSUME(expr) \
  do {                            \
    if (!(expr)) __builtin_unreachable(); \
  } while (false)
#else
#define SRBSG_DETAIL_ASSUME(expr) ((void)0)
#endif

/// Hot-path tier: full check() when SRBSG_DCHECK_ENABLED (Debug builds,
/// sanitizer presets, SRBSG_DCHECKS=ON), optimizer assumption otherwise.
#if defined(SRBSG_DCHECK_ENABLED)
#define SRBSG_DCHECK(expr, msg) ::srbsg::check((expr), (msg))
#else
#define SRBSG_DCHECK(expr, msg) SRBSG_DETAIL_ASSUME(expr)
#endif
