#include "common/rng.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace srbsg {
namespace {

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) {
  check(bound != 0, "next_below: bound must be nonzero");
  // Lemire's method: multiply-shift with rejection to remove bias.
  u64 x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<u64>(m);
  if (lo < bound) {
    const u64 threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

u64 Rng::next_in(u64 lo, u64 hi) {
  check(lo <= hi, "next_in: empty range");
  const u64 span = hi - lo;
  if (span == ~u64{0}) {
    return next();
  }
  return lo + next_below(span + 1);
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork() {
  // Mixing two outputs through SplitMix64 gives an independent stream.
  u64 sm = next() ^ rotl(next(), 32);
  return Rng(splitmix64(sm));
}

std::vector<u64> sample_distinct(Rng& rng, u64 bound, u64 n) {
  check(n <= bound, "sample_distinct: n exceeds population");
  std::vector<u64> out;
  out.reserve(n);
  if (n * 3 >= bound) {
    // Dense case: partial Fisher-Yates over the full population.
    std::vector<u64> all(bound);
    for (u64 i = 0; i < bound; ++i) all[i] = i;
    for (u64 i = 0; i < n; ++i) {
      u64 j = rng.next_in(i, bound - 1);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<u64> seen;
  seen.reserve(static_cast<std::size_t>(n * 2));
  while (out.size() < n) {
    u64 v = rng.next_below(bound);
    if (seen.insert(v).second) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace srbsg
