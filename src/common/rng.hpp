#pragma once
// Deterministic, fast random number generation (xoshiro256** seeded by
// SplitMix64). Every stochastic component of the simulator takes an
// explicit seed so experiments are exactly reproducible; nothing reads
// std::random_device.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace srbsg {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5eed5eed5eed5eedULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~u64{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  u64 next();

  /// Uniform value in [0, bound); bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  u64 next_below(u64 bound);

  /// Uniform value in [lo, hi] inclusive.
  u64 next_in(u64 lo, u64 hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle of a span.
  template <class T>
  void shuffle(std::span<T> data) {
    for (u64 i = data.size(); i > 1; --i) {
      u64 j = next_below(i);
      using std::swap;
      swap(data[i - 1], data[j]);
    }
  }

  /// Fork a statistically independent child generator (for threads).
  [[nodiscard]] Rng fork();

 private:
  std::array<u64, 4> s_{};
};

/// Draw `n` distinct values in [0, bound). O(n) expected when n << bound.
[[nodiscard]] std::vector<u64> sample_distinct(Rng& rng, u64 bound, u64 n);

}  // namespace srbsg
