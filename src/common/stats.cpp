#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"

namespace srbsg {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  check(buckets > 0, "Histogram: need at least one bucket");
  check(hi > lo, "Histogram: empty range");
}

void Histogram::add(double x, u64 weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double p) const {
  check(p >= 0.0 && p <= 1.0, "quantile: p out of range");
  // Empty histogram: no sample to point at, so the range's lower bound
  // for every p — callers get a well-defined value, never a mid-bucket
  // artifact.
  if (total_ == 0) return lo_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  // Exact endpoints bind to the occupied support, not bucket midpoints:
  // p=0 is the lower edge of the first non-empty bucket (the old code
  // returned bucket 0's midpoint even when bucket 0 was empty), p=1 the
  // upper edge of the last non-empty one (the old code stopped at its
  // midpoint, under-reporting the max).
  if (p == 0.0) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) return bucket_lo(i);
    }
  }
  if (p == 1.0) {
    for (std::size_t i = counts_.size(); i-- > 0;) {
      if (counts_[i] > 0) return bucket_lo(i) + width;
    }
  }
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bucket_lo(i) + width / 2.0;
  }
  return hi_;
}

WearMetrics compute_wear_metrics(std::span<const u64> writes) {
  WearMetrics m;
  if (writes.empty()) return m;
  u64 mx = 0;
  u64 mn = std::numeric_limits<u64>::max();
  for (u64 w : writes) {
    mx = std::max(mx, w);
    mn = std::min(mn, w);
  }
  m.max = mx;
  m.min = mn;

  // Every metric below (mean, CoV, Gini) is computed over value groups
  // rather than lines: wear vectors are heavily quantized — leveling
  // deals writes out in interval-sized quanta — so the number of distinct
  // values is tiny compared to the line count, and grouping turns an
  // O(n log n) sort plus per-line division into one counting pass. A
  // dense histogram covers the common case (max wear comparable to n);
  // wide value ranges fall back to sorting and run-length grouping. For
  // the Gini rank formula G = 2*sum(i*x_i)/(n*sum(x)) - (n+1)/n, a group
  // of `count` equal values following `rank` smaller ones occupies ranks
  // (rank, rank+count] whose sum is count*rank + count*(count+1)/2.
  std::vector<std::pair<u64, u64>> groups;  // (value, count), ascending
  if (mx <= 4 * writes.size() + 1024) {
    std::vector<u64> counts(mx + 1, 0);
    for (u64 w : writes) ++counts[w];
    for (u64 v = mn; v <= mx; ++v) {
      if (counts[v] > 0) groups.emplace_back(v, counts[v]);
    }
  } else {
    std::vector<u64> sorted(writes.begin(), writes.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
      std::size_t j = i + 1;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      groups.emplace_back(sorted[i], j - i);
      i = j;
    }
  }

  const auto n = static_cast<double>(writes.size());
  double total = 0.0;
  double weighted = 0.0;
  u64 rank = 0;
  for (const auto& [value, count] : groups) {
    const double v = static_cast<double>(value);
    const double c = static_cast<double>(count);
    total += c * v;
    weighted += (c * static_cast<double>(rank) + c * (c + 1.0) / 2.0) * v;
    rank += count;
  }
  m.mean = total / n;
  if (m.mean > 0.0) {
    double m2 = 0.0;
    for (const auto& [value, count] : groups) {
      const double d = static_cast<double>(value) - m.mean;
      m2 += static_cast<double>(count) * d * d;
    }
    const double variance = writes.size() > 1 ? m2 / (n - 1.0) : 0.0;
    m.coefficient_of_variation = std::sqrt(variance) / m.mean;
    m.max_over_mean = static_cast<double>(mx) / m.mean;
    m.gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return m;
}

std::vector<double> normalized_cumulative(std::span<const u64> writes, std::size_t points) {
  check(points >= 2, "normalized_cumulative: need at least two points");
  std::vector<double> out(points, 0.0);
  if (writes.empty()) return out;
  double total = 0.0;
  for (u64 w : writes) total += static_cast<double>(w);
  if (total == 0.0) return out;
  double cum = 0.0;
  std::size_t next_sample = 0;
  for (std::size_t i = 0; i < writes.size(); ++i) {
    cum += static_cast<double>(writes[i]);
    // Emit samples for every point whose address threshold we just passed.
    while (next_sample < points &&
           static_cast<double>(i + 1) >=
               static_cast<double>(next_sample + 1) / static_cast<double>(points) *
                   static_cast<double>(writes.size())) {
      out[next_sample++] = cum / total;
    }
  }
  while (next_sample < points) out[next_sample++] = 1.0;
  return out;
}

double cumulative_linearity_deviation(std::span<const double> curve) {
  double worst = 0.0;
  const auto n = static_cast<double>(curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double ideal = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::abs(curve[i] - ideal));
  }
  return worst;
}

}  // namespace srbsg
