#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"

namespace srbsg {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  check(buckets > 0, "Histogram: need at least one bucket");
  check(hi > lo, "Histogram: empty range");
}

void Histogram::add(double x, u64 weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double p) const {
  check(p >= 0.0 && p <= 1.0, "quantile: p out of range");
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return bucket_lo(i) + width / 2.0;
    }
  }
  return hi_;
}

WearMetrics compute_wear_metrics(std::span<const u64> writes) {
  WearMetrics m;
  if (writes.empty()) return m;
  RunningStats rs;
  u64 mx = 0;
  u64 mn = std::numeric_limits<u64>::max();
  for (u64 w : writes) {
    rs.add(static_cast<double>(w));
    mx = std::max(mx, w);
    mn = std::min(mn, w);
  }
  m.mean = rs.mean();
  m.max = mx;
  m.min = mn;
  if (m.mean > 0.0) {
    m.coefficient_of_variation = rs.stddev() / m.mean;
    m.max_over_mean = static_cast<double>(mx) / m.mean;
  }
  // Gini via the sorted-rank formula: G = (2*sum(i*x_i)/(n*sum(x)) - (n+1)/n).
  std::vector<u64> sorted(writes.begin(), writes.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
    total += static_cast<double>(sorted[i]);
  }
  if (total > 0.0) {
    m.gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return m;
}

std::vector<double> normalized_cumulative(std::span<const u64> writes, std::size_t points) {
  check(points >= 2, "normalized_cumulative: need at least two points");
  std::vector<double> out(points, 0.0);
  if (writes.empty()) return out;
  double total = 0.0;
  for (u64 w : writes) total += static_cast<double>(w);
  if (total == 0.0) return out;
  double cum = 0.0;
  std::size_t next_sample = 0;
  for (std::size_t i = 0; i < writes.size(); ++i) {
    cum += static_cast<double>(writes[i]);
    // Emit samples for every point whose address threshold we just passed.
    while (next_sample < points &&
           static_cast<double>(i + 1) >=
               static_cast<double>(next_sample + 1) / static_cast<double>(points) *
                   static_cast<double>(writes.size())) {
      out[next_sample++] = cum / total;
    }
  }
  while (next_sample < points) out[next_sample++] = 1.0;
  return out;
}

double cumulative_linearity_deviation(std::span<const double> curve) {
  double worst = 0.0;
  const auto n = static_cast<double>(curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double ideal = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::abs(curve[i] - ideal));
  }
  return worst;
}

}  // namespace srbsg
