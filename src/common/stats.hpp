#pragma once
// Streaming statistics and wear-distribution metrics.

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace srbsg {

/// Welford streaming accumulator: mean/variance/min/max without storing
/// the samples.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, u64 weight = 1);

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] u64 bucket_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] u64 total() const { return total_; }

  /// p in [0,1] -> approximate quantile (bucket midpoint interpolation).
  /// Well-defined at the edges: an empty histogram returns `lo` for any
  /// p; p=0 returns the lower edge of the first non-empty bucket and
  /// p=1 the upper edge of the last non-empty one.
  [[nodiscard]] double quantile(double p) const;

 private:
  double lo_;
  double hi_;
  std::vector<u64> counts_;
  u64 total_{0};
};

/// Wear-uniformity metrics over a vector of per-line write counts.
/// `coefficient_of_variation` is stddev/mean (0 = perfectly even);
/// `gini` is the Gini coefficient of the distribution (0 = even, →1 =
/// concentrated); `max_over_mean` is the hot-line ratio the paper's
/// "ideal lifetime" comparisons hinge on.
struct WearMetrics {
  double mean{0.0};
  double coefficient_of_variation{0.0};
  double gini{0.0};
  double max_over_mean{0.0};
  u64 max{0};
  u64 min{0};
};

[[nodiscard]] WearMetrics compute_wear_metrics(std::span<const u64> writes);

/// Normalized cumulative distribution of `writes` in address order —
/// exactly the y-axis of the paper's Fig. 16. Returns `points` samples of
/// the normalized accumulated write count at evenly spaced addresses.
[[nodiscard]] std::vector<double> normalized_cumulative(std::span<const u64> writes,
                                                        std::size_t points);

/// Maximum absolute deviation of a normalized-cumulative curve from the
/// y=x diagonal (0 = perfectly uniform writes; used to score Fig. 16).
[[nodiscard]] double cumulative_linearity_deviation(std::span<const double> curve);

}  // namespace srbsg
