#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace srbsg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_duration_ns(double ns) {
  const double s = ns * 1e-9;
  std::ostringstream ss;
  ss << std::setprecision(4);
  if (s < 120.0) {
    ss << s << " s";
  } else if (s < 2.0 * 3600.0) {
    ss << s / 60.0 << " min";
  } else if (s < 2.0 * 86400.0) {
    ss << s / 3600.0 << " h";
  } else if (s < 90.0 * 86400.0) {
    ss << s / 86400.0 << " days";
  } else {
    ss << s / 86400.0 / 30.44 << " months";
  }
  return ss.str();
}

}  // namespace srbsg
