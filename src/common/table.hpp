#pragma once
// ASCII table / CSV emission for benchmark harnesses. Every figure bench
// prints one of these so the paper's rows/series can be compared by eye.

#include <iosfwd>
#include <string>
#include <vector>

namespace srbsg {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// All rows must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.3g"-style but stable).
[[nodiscard]] std::string fmt_double(double v, int precision = 4);

/// Human-readable duration from nanoseconds: picks s / h / days / months.
[[nodiscard]] std::string fmt_duration_ns(double ns);

}  // namespace srbsg
