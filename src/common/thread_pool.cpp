#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace srbsg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr first_error;
  // One block-runner per worker; all claims go through `next`. The runner
  // never lets an exception escape into the pool — it is recorded under
  // the mutex and rethrown on the calling thread after every runner
  // drains, matching the old per-item-future semantics.
  auto runner = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + grain, n);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  const std::size_t blocks = (n + grain - 1) / grain;
  // The caller runs one runner itself; extra pool tasks only for the
  // blocks it cannot cover alone.
  const std::size_t helpers = std::min(pool.size(), blocks - 1);
  std::vector<std::future<void>> futs;
  futs.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) {
    futs.push_back(pool.submit(runner));
  }
  runner();
  for (auto& f : futs) {
    f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace srbsg
