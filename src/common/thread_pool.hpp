#pragma once
// Minimal work-stealing-free thread pool for parameter sweeps.
//
// Experiment sweeps (Figs. 11-15 run dozens of independent configs) are
// embarrassingly parallel; the pool keeps the sweep code simple and the
// simulator itself single-threaded and deterministic per config.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace srbsg {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future reports its result/exception.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_{false};
};

/// Run fn(i) for i in [0, n) across the pool; rethrows the first exception.
///
/// Scheduling is chunked: workers claim blocks of `grain` items off a
/// shared atomic index, so the pool receives one task per worker instead
/// of one heap-allocated future per item, and load balancing stays
/// dynamic. The calling thread participates, so the pool being busy (or
/// empty) never deadlocks the loop. `grain` defaults to 1 — right for
/// coarse items like to-failure simulations; raise it for large grids of
/// tiny items so neighbours share one claim. After an exception no new
/// blocks are claimed; already-claimed blocks finish, then the first
/// exception is rethrown.
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace srbsg
