#pragma once
// Fundamental strong types shared by every subsystem.
//
// The simulator juggles three address spaces (logical, intermediate,
// physical). Mixing them up is the dominant bug class in wear-leveling
// code, so each space gets its own vocabulary type. Conversions are
// explicit: only mappers and wear-levelers are allowed to move a value
// between spaces.

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>

namespace srbsg {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Strong address wrapper. `Tag` distinguishes the address space.
template <class Tag>
struct Addr {
  u64 v{0};

  constexpr Addr() = default;
  constexpr explicit Addr(u64 value) : v(value) {}

  [[nodiscard]] constexpr u64 value() const { return v; }
  constexpr auto operator<=>(const Addr&) const = default;
};

struct LogicalTag {};
struct IntermediateTag {};
struct PhysicalTag {};

/// Logical address: what the program (or the attacker) writes to.
using La = Addr<LogicalTag>;
/// Intermediate address: output of the outer-level mapping.
using Ia = Addr<IntermediateTag>;
/// Physical address: actual PCM line index.
using Pa = Addr<PhysicalTag>;

/// Simulated time in nanoseconds. PCM latencies in the paper are given in
/// ns; lifetimes are reported in seconds/hours/days, hence the helpers.
struct Ns {
  u64 v{0};

  constexpr Ns() = default;
  constexpr explicit Ns(u64 value) : v(value) {}

  [[nodiscard]] constexpr u64 value() const { return v; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(v) * 1e-9; }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }
  [[nodiscard]] constexpr double days() const { return seconds() / 86400.0; }
  [[nodiscard]] constexpr double months() const { return days() / 30.44; }
  [[nodiscard]] constexpr double years() const { return days() / 365.25; }

  constexpr auto operator<=>(const Ns&) const = default;

  constexpr Ns& operator+=(Ns other) {
    v += other.v;
    return *this;
  }
};

[[nodiscard]] constexpr Ns operator+(Ns a, Ns b) { return Ns{a.v + b.v}; }
[[nodiscard]] constexpr Ns operator*(Ns a, u64 n) { return Ns{a.v * n}; }
[[nodiscard]] constexpr Ns operator*(u64 n, Ns a) { return Ns{a.v * n}; }

inline constexpr u64 kInvalidAddr = std::numeric_limits<u64>::max();

}  // namespace srbsg

template <class Tag>
struct std::hash<srbsg::Addr<Tag>> {
  std::size_t operator()(const srbsg::Addr<Tag>& a) const noexcept {
    return std::hash<srbsg::u64>{}(a.v);
  }
};
