#include "controller/memory_controller.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace srbsg::ctl {

MemoryController::MemoryController(const pcm::PcmConfig& cfg,
                                   std::unique_ptr<wl::WearLeveler> scheme)
    : bank_(cfg, scheme->physical_lines()), scheme_(std::move(scheme)) {
  check(scheme_ != nullptr, "MemoryController: null scheme");
  check(cfg.line_count == scheme_->logical_lines(),
        "MemoryController: scheme sized for a different bank");
}

MemoryController::MemoryController(pcm::PcmBank&& bank, std::unique_ptr<wl::WearLeveler> scheme)
    : bank_(std::move(bank)), scheme_(std::move(scheme)) {
  check(scheme_ != nullptr, "MemoryController: null scheme");
  check(bank_.config().line_count == scheme_->logical_lines(),
        "MemoryController: scheme sized for a different bank");
  check(bank_.total_lines() == scheme_->physical_lines(),
        "MemoryController: adopted bank has the wrong physical size");
  check(!bank_.has_failure() && bank_.total_writes() == 0,
        "MemoryController: adopted bank is not freshly reset");
}

void MemoryController::maybe_record_failure(Ns per_write_latency) {
  if (failure_ || !bank_.has_failure()) return;
  const u64 overshoot = bank_.failure_overshoot();
  FailureInfo info;
  info.line = bank_.first_failed_line();
  // Writes past the crossing (bulk overshoot) happened "after" the
  // failure; rewind both the write count and the clock.
  info.total_writes = writes_issued_ > overshoot ? writes_issued_ - overshoot : 0;
  // Rewind to the instant the endurance limit was crossed: overshoot
  // writes of this op's per-write latency happened after it.
  const u64 rewind = overshoot * per_write_latency.value();
  info.time = Ns{now_.value() > rewind ? now_.value() - rewind : 0};
  failure_ = info;
  if (tel_ != nullptr) {
    // Stamped with the rewound failure instant, not the op-entry clock.
    tel_->emit_at(info.time.value(), telemetry::EventType::kLineFailed, tel_id_,
                  telemetry::kGlobalDomain, info.line.value(), info.total_writes);
  }
}

void MemoryController::set_telemetry(telemetry::Recorder* recorder) {
  // srbsg-analyze: suppress(a10-lifetime) harness-owned recorder outlives the controller
  tel_ = recorder;
  scheme_->attach_telemetry(recorder);
  if (recorder != nullptr) {
    tel_id_ = recorder->intern_scheme(scheme_->name());
    recorder->set_now(now_);
  } else {
    tel_id_ = 0;
  }
}

void MemoryController::note_writes(u64 writes, Ns total, u64 movements, Ns service) {
  if (tel_ == nullptr) return;
  tel_->set_now(now_);
  const auto& core = telemetry::CoreCounters::get();
  tel_->count(core.writes, writes);
  tel_->count(core.service_ns, total.value());
  tel_->count(core.movements, movements);
  if (writes > 0) {
    // Deterministic stall attribution: the data-service share of the op
    // is writes * service; the remainder is remap stall, charged evenly
    // to the writes that triggered movements. The split depends only on
    // the op outcome (identical across engine tiers and worker counts).
    const u64 base = service.value();
    const u64 service_total = writes * base;
    const u64 stall = total.value() > service_total ? total.value() - service_total : 0;
    const u64 stalled = stall > 0 ? std::min(std::max<u64>(movements, 1), writes) : 0;
    const u64 per = stalled > 0 ? stall / stalled : 0;
    if (writes > stalled) tel_->record_write_ns(base, writes - stalled);
    if (stalled > 0) {
      tel_->record_write_ns(base + per, stalled);
      tel_->record_stall_ns(per, stalled);
    }
    tel_->count(core.stall_ns, stall);
  }
  if (tel_->snapshot_due(writes_issued_)) {
    tel_->take_snapshot(writes_issued_, bank_.wear_counts());
  }
}

void MemoryController::enable_detector(const wl::AttackDetectorConfig& cfg) {
  detector_ = std::make_unique<wl::AttackDetector>(cfg, scheme_->logical_lines());
}

void MemoryController::feed_detector(La la, u64 count) {
  if (detector_ && detector_->record(la, count)) {
    scheme_->set_rate_boost(detector_->boost());
    if (tel_ != nullptr) {
      tel_->emit(telemetry::EventType::kDetectorStateChange, tel_id_, telemetry::kGlobalDomain,
                 detector_->boost(), detector_->trips());
    }
  }
}

void MemoryController::account_bulk(const wl::BulkOutcome& out) {
  if (!latency_sink_) return;
  latency_sink_->writes += out.writes_applied;
  latency_sink_->total += out.total;
  latency_sink_->movements += out.movements;
}

wl::WriteOutcome MemoryController::write(La la, const pcm::LineData& data) {
  // The recorder clock is pinned to the op-entry instant; events emitted
  // inside the scheme all carry this timestamp, which is what makes the
  // RemapTriggered → GapMoved attribution rule checkable downstream.
  if (tel_ != nullptr) tel_->set_now(now_);
  feed_detector(la, 1);
  const wl::WriteOutcome out = scheme_->write(la, data, bank_);
  now_ += out.total;
  ++writes_issued_;
  maybe_record_failure(pcm::write_latency(bank_.config(), data.cls));
  if (latency_sink_) {
    ++latency_sink_->writes;
    latency_sink_->total += out.total;
    latency_sink_->movements += out.movements;
    latency_sink_->max_single = std::max(latency_sink_->max_single, out.total);
  }
  note_writes(1, out.total, out.movements, pcm::write_latency(bank_.config(), data.cls));
  if (tel_ != nullptr) {
    tel_->gauge_max(telemetry::CoreCounters::get().max_write_ns, out.total.value());
  }
  return out;
}

wl::BulkOutcome MemoryController::write_repeated(La la, const pcm::LineData& data, u64 count) {
  // Bulk writes notify the detector up-front; a boost therefore applies
  // from the start of the bulk, which only makes the defense stronger.
  if (tel_ != nullptr) tel_->set_now(now_);
  const bool traced_eval = tel_ != nullptr && detector_ != nullptr;
  if (traced_eval) {
    tel_->span_begin(telemetry::SpanKind::kDetectorEval, tel_id_, telemetry::kGlobalDomain, 0,
                     count);
  }
  feed_detector(la, count);
  if (traced_eval) {
    tel_->span_end(telemetry::SpanKind::kDetectorEval, tel_id_, telemetry::kGlobalDomain, 0,
                   count);
  }
  const wl::BulkOutcome out = scheme_->write_repeated(la, data, count, bank_);
  now_ += out.total;
  writes_issued_ += out.writes_applied;
  maybe_record_failure(pcm::write_latency(bank_.config(), data.cls));
  account_bulk(out);
  note_writes(out.writes_applied, out.total, out.movements,
              pcm::write_latency(bank_.config(), data.cls));
  return out;
}

wl::BulkOutcome MemoryController::write_batch(std::span<const La> las,
                                              const pcm::LineData& data) {
  // Like write_repeated, the detector sees the whole block before any
  // write lands; the record sequence matches the per-write loop exactly.
  if (tel_ != nullptr) tel_->set_now(now_);
  if (detector_) {
    const bool traced_eval = tel_ != nullptr;
    if (traced_eval) {
      tel_->span_begin(telemetry::SpanKind::kDetectorEval, tel_id_, telemetry::kGlobalDomain, 0,
                       las.size());
    }
    for (const La la : las) feed_detector(la, 1);
    if (traced_eval) {
      tel_->span_end(telemetry::SpanKind::kDetectorEval, tel_id_, telemetry::kGlobalDomain, 0,
                     las.size());
    }
  }
  const wl::BulkOutcome out = scheme_->write_batch(las, data, bank_);
  now_ += out.total;
  writes_issued_ += out.writes_applied;
  maybe_record_failure(pcm::write_latency(bank_.config(), data.cls));
  account_bulk(out);
  note_writes(out.writes_applied, out.total, out.movements,
              pcm::write_latency(bank_.config(), data.cls));
  return out;
}

wl::BulkOutcome MemoryController::write_cycle(std::span<const La> pattern,
                                              const pcm::LineData& data, u64 count) {
  if (tel_ != nullptr) tel_->set_now(now_);
  if (detector_ && !pattern.empty()) {
    const bool traced_eval = tel_ != nullptr;
    if (traced_eval) {
      tel_->span_begin(telemetry::SpanKind::kDetectorEval, tel_id_, telemetry::kGlobalDomain, 0,
                       count);
    }
    const u64 period = pattern.size();
    for (u64 i = 0; i < period; ++i) {
      const u64 hits = count / period + (i < count % period ? 1 : 0);
      if (hits > 0) feed_detector(pattern[i], hits);
    }
    if (traced_eval) {
      tel_->span_end(telemetry::SpanKind::kDetectorEval, tel_id_, telemetry::kGlobalDomain, 0,
                     count);
    }
  }
  const wl::BulkOutcome out = scheme_->write_cycle(pattern, data, count, bank_);
  now_ += out.total;
  writes_issued_ += out.writes_applied;
  maybe_record_failure(pcm::write_latency(bank_.config(), data.cls));
  account_bulk(out);
  note_writes(out.writes_applied, out.total, out.movements,
              pcm::write_latency(bank_.config(), data.cls));
  return out;
}

std::pair<pcm::LineData, Ns> MemoryController::read(La la) {
  auto res = scheme_->read(la, bank_);
  now_ += res.second;
  return res;
}

const FailureInfo& MemoryController::failure() const {
  check(failure_.has_value(), "MemoryController: no failure recorded");
  return *failure_;
}

}  // namespace srbsg::ctl
