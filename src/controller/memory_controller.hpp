#pragma once
// Memory controller: glues a wear-leveling scheme to a PCM bank, keeps
// the simulated clock, and exposes exactly what a software attacker can
// observe — per-request latencies. Remap movements stall the triggering
// request (paper §III), which is the RTA side channel.

#include <memory>
#include <optional>
#include <span>

#include "common/types.hpp"
#include "pcm/bank.hpp"
#include "wl/attack_detector.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::telemetry {
class Recorder;
}  // namespace srbsg::telemetry

namespace srbsg::ctl {

struct FailureInfo {
  Ns time{0};         ///< simulated instant of the first line failure
  Pa line{0};         ///< physical line that failed
  u64 total_writes{0};  ///< logical writes issued up to the failure
};

/// Aggregate observed-latency statistics, accumulated only when a caller
/// opts in via MemoryController::set_latency_sink — long attack and
/// lifetime runs that discard per-write latencies pay nothing for it.
struct LatencyStats {
  u64 writes{0};     ///< writes contributing to `total`
  Ns total{0};       ///< observed service time (data writes + remap stalls)
  u64 movements{0};  ///< remap movements folded into `total`
  Ns max_single{0};  ///< slowest single write (per-write path only)
};

class MemoryController {
 public:
  MemoryController(const pcm::PcmConfig& cfg, std::unique_ptr<wl::WearLeveler> scheme);

  /// Arena path: adopt an already-sized, freshly reset bank (see
  /// sim::WorkerArena) instead of constructing one. The bank must match
  /// the scheme's logical/physical line counts.
  MemoryController(pcm::PcmBank&& bank, std::unique_ptr<wl::WearLeveler> scheme);

  /// Move the bank back out for recycling. The controller is unusable
  /// afterwards; call only once the run is over and its wear state has
  /// been harvested.
  [[nodiscard]] pcm::PcmBank release_bank() { return std::move(bank_); }

  /// One write; returns the latency the requester observes (data write +
  /// any remap stall) — this is the timing oracle.
  wl::WriteOutcome write(La la, const pcm::LineData& data);

  /// `count` identical writes to `la` (event-driven fast path).
  wl::BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count);

  /// Applies `las` in order through the scheme's batched path;
  /// bit-identical to per-write issue except that an attached detector
  /// sees the whole block up-front (same convention as write_repeated —
  /// a boost applies from the start of the block, which only makes the
  /// defense stronger).
  wl::BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data);

  /// `count` writes cycling through `pattern` (event-driven fast path
  /// for periodic probe/hammer loops).
  wl::BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                              u64 count);

  /// Read through the translation.
  std::pair<pcm::LineData, Ns> read(La la);

  [[nodiscard]] Ns now() const { return now_; }
  [[nodiscard]] u64 total_writes() const { return writes_issued_; }
  [[nodiscard]] u64 logical_lines() const { return scheme_->logical_lines(); }

  [[nodiscard]] bool failed() const { return failure_.has_value(); }
  [[nodiscard]] const FailureInfo& failure() const;

  [[nodiscard]] pcm::PcmBank& bank() { return bank_; }
  [[nodiscard]] const pcm::PcmBank& bank() const { return bank_; }
  [[nodiscard]] wl::WearLeveler& scheme() { return *scheme_; }
  [[nodiscard]] const wl::WearLeveler& scheme() const { return *scheme_; }

  /// Select the scheme's write_cycle engine tier (reference / windowed /
  /// epoch). All tiers are bit-identical on the simulated state; the
  /// choice only trades wall-clock for generality.
  void set_engine_tier(wl::EngineTier tier) { scheme_->set_engine_tier(tier); }

  /// Attach an online attack detector (Qureshi HPCA'11, reference [15]):
  /// suspicious write concentration boosts the scheme's remapping rate.
  void enable_detector(const wl::AttackDetectorConfig& cfg);
  [[nodiscard]] const wl::AttackDetector* detector() const { return detector_.get(); }

  /// Opt-in latency accumulation: pass a stats object to start
  /// accumulating, nullptr to stop. The sink must outlive the controller
  /// or be detached first.
  void set_latency_sink(LatencyStats* sink) { latency_sink_ = sink; }

  /// Opt-in telemetry: attaches the recorder to the controller and the
  /// scheme (nullptr detaches both). Observation-only — counters and
  /// events never feed back into scheme or detector decisions, so the
  /// simulated timeline is bit-identical with or without a recorder.
  /// The recorder must outlive the controller or be detached first.
  void set_telemetry(telemetry::Recorder* recorder);
  [[nodiscard]] telemetry::Recorder* telemetry() const { return tel_; }

 private:
  /// Captures failure info the first time the bank reports one. The bank
  /// records how many writes overshot the endurance limit inside a bulk
  /// op; the failure instant is rewound by that amount.
  void maybe_record_failure(Ns per_write_latency);

  void feed_detector(La la, u64 count);
  void account_bulk(const wl::BulkOutcome& out);

  /// Telemetry bookkeeping shared by every write path: advances the
  /// recorder clock, bumps the core counters, splits the observed bulk
  /// latency into service vs. remap stall for the latency histograms,
  /// and takes a wear snapshot when the configured write cadence is
  /// due. `service` is the scheme-independent per-write data latency
  /// (pcm::write_latency for the op's data class); everything above
  /// `writes * service` is attributed to remap stalls, spread evenly
  /// over `min(max(movements,1), writes)` stalled writes. No-op without
  /// a recorder.
  void note_writes(u64 writes, Ns total, u64 movements, Ns service);

  pcm::PcmBank bank_;
  std::unique_ptr<wl::WearLeveler> scheme_;
  std::unique_ptr<wl::AttackDetector> detector_;
  Ns now_{0};
  u64 writes_issued_{0};
  std::optional<FailureInfo> failure_;
  LatencyStats* latency_sink_{nullptr};
  telemetry::Recorder* tel_{nullptr};
  u16 tel_id_{0};
};

}  // namespace srbsg::ctl
