#include "controller/multi_bank.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::ctl {

void MultiBankConfig::validate() const {
  check(is_pow2(banks) && banks >= 1, "MultiBankConfig: banks must be a power of two");
}

MultiBankMemory::MultiBankMemory(const MultiBankConfig& cfg, const pcm::PcmConfig& pcm,
                                 const wl::SchemeSpec& scheme)
    : cfg_(cfg), lines_per_bank_(pcm.line_count) {
  cfg_.validate();
  check(pcm.line_count == scheme.lines, "MultiBankMemory: scheme/pcm size mismatch");
  banks_.reserve(cfg.banks);
  for (u64 b = 0; b < cfg.banks; ++b) {
    wl::SchemeSpec per_bank = scheme;
    per_bank.seed = scheme.seed + b;  // independent keys per bank (§IV.A)
    banks_.push_back(std::make_unique<MemoryController>(pcm, wl::make_scheme(per_bank)));
  }
}

MultiBankMemory::Location MultiBankMemory::locate(La global) const {
  check(global.value() < logical_lines(), "MultiBankMemory: address out of range");
  if (cfg_.line_interleaved) {
    return {global.value() % banks(), La{global.value() / banks()}};
  }
  return {global.value() / lines_per_bank_, La{global.value() % lines_per_bank_}};
}

wl::WriteOutcome MultiBankMemory::write(La global, const pcm::LineData& data) {
  const auto loc = locate(global);
  return banks_[loc.bank]->write(loc.local, data);
}

wl::BulkOutcome MultiBankMemory::write_repeated(La global, const pcm::LineData& data,
                                                u64 count) {
  const auto loc = locate(global);
  return banks_[loc.bank]->write_repeated(loc.local, data, count);
}

std::pair<pcm::LineData, Ns> MultiBankMemory::read(La global) {
  const auto loc = locate(global);
  return banks_[loc.bank]->read(loc.local);
}

Ns MultiBankMemory::now() const {
  Ns busiest{0};
  for (const auto& b : banks_) busiest = std::max(busiest, b->now());
  return busiest;
}

u64 MultiBankMemory::total_writes() const {
  u64 total = 0;
  for (const auto& b : banks_) total += b->total_writes();
  return total;
}

bool MultiBankMemory::failed() const {
  return std::any_of(banks_.begin(), banks_.end(),
                     [](const auto& b) { return b->failed(); });
}

u64 MultiBankMemory::failed_bank() const {
  u64 best = banks();
  Ns best_time{~u64{0}};
  for (u64 i = 0; i < banks(); ++i) {
    if (banks_[i]->failed() && banks_[i]->failure().time < best_time) {
      best = i;
      best_time = banks_[i]->failure().time;
    }
  }
  check(best < banks(), "MultiBankMemory: no failure recorded");
  return best;
}

const FailureInfo& MultiBankMemory::failure() const {
  return banks_[failed_bank()]->failure();
}

}  // namespace srbsg::ctl
