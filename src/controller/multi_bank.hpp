#pragma once
// Multi-bank memory front end. The paper manages wear leveling *per bank*
// (§IV.A: "implemented in the memory controller and manages each bank
// separately to avoid bank parallelism attack") — the earlier
// bank-parallelism attack against RBSG [7] exploited a single gap shared
// across banks, letting parallel hammer streams multiply the damage.
//
// This front end interleaves a flat logical space across `banks`
// independent MemoryControllers (each with its own scheme instance and
// its own remap counters) and exposes per-bank and aggregate state.
// Bank-level parallelism is modelled for timing: requests to different
// banks overlap, so the aggregate clock is the maximum of the per-bank
// clocks rather than the sum.

#include <memory>
#include <vector>

#include "controller/memory_controller.hpp"
#include "wl/factory.hpp"

namespace srbsg::ctl {

struct MultiBankConfig {
  u64 banks{4};  ///< power of two
  /// Interleaving granularity: consecutive lines rotate across banks
  /// (true, the usual choice) or each bank owns a contiguous block.
  bool line_interleaved{true};

  void validate() const;
};

class MultiBankMemory {
 public:
  /// `pcm` and `scheme` describe ONE bank; the logical space seen by
  /// software is banks × pcm.line_count lines.
  MultiBankMemory(const MultiBankConfig& cfg, const pcm::PcmConfig& pcm,
                  const wl::SchemeSpec& scheme);

  [[nodiscard]] u64 banks() const { return banks_.size(); }
  [[nodiscard]] u64 logical_lines() const { return lines_per_bank_ * banks(); }

  struct Location {
    u64 bank;
    La local;
  };
  [[nodiscard]] Location locate(La global) const;

  wl::WriteOutcome write(La global, const pcm::LineData& data);
  wl::BulkOutcome write_repeated(La global, const pcm::LineData& data, u64 count);
  std::pair<pcm::LineData, Ns> read(La global);

  /// Aggregate clock: banks serve in parallel, so this is the busiest
  /// bank's clock (the quantity an attacker's wall clock tracks).
  [[nodiscard]] Ns now() const;
  [[nodiscard]] u64 total_writes() const;

  [[nodiscard]] bool failed() const;
  /// Failure of the earliest-failing bank (by simulated time).
  [[nodiscard]] const FailureInfo& failure() const;
  [[nodiscard]] u64 failed_bank() const;

  [[nodiscard]] MemoryController& bank(u64 i) { return *banks_[i]; }
  [[nodiscard]] const MemoryController& bank(u64 i) const { return *banks_[i]; }

 private:
  MultiBankConfig cfg_;
  u64 lines_per_bank_;
  std::vector<std::unique_ptr<MemoryController>> banks_;
};

}  // namespace srbsg::ctl
