#include "mapping/binary_matrix.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::mapping {

u64 gf2_matvec(const std::vector<u64>& rows, u64 x) {
  u64 y = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    y |= static_cast<u64>(popcount(rows[i] & x) & 1u) << i;
  }
  return y;
}

std::vector<u64> gf2_invert(std::vector<u64> rows, u32 width_bits) {
  const std::size_t n = width_bits;
  std::vector<u64> inv(n);
  for (std::size_t i = 0; i < n; ++i) inv[i] = u64{1} << i;

  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot with bit `col` set at or below row `col`.
    std::size_t pivot = col;
    while (pivot < n && !bit_of(rows[pivot], checked_narrow<u32>(col))) ++pivot;
    if (pivot == n) return {};  // singular
    std::swap(rows[col], rows[pivot]);
    std::swap(inv[col], inv[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r != col && bit_of(rows[r], checked_narrow<u32>(col))) {
        rows[r] ^= rows[col];
        inv[r] ^= inv[col];
      }
    }
  }
  return inv;
}

BinaryMatrixMapper::BinaryMatrixMapper(u32 width_bits, Rng& rng) : width_bits_(width_bits) {
  check(width_bits >= 1 && width_bits <= 62, "BinaryMatrixMapper: width out of range");
  const u64 mask = low_mask(width_bits);
  for (;;) {
    rows_.assign(width_bits, 0);
    for (auto& row : rows_) row = rng.next() & mask;
    inv_rows_ = gf2_invert(rows_, width_bits);
    if (!inv_rows_.empty()) break;  // invertible
  }
}

u64 BinaryMatrixMapper::map(u64 x) const {
  check(x < domain_size(), "BinaryMatrixMapper::map: input out of domain");
  return gf2_matvec(rows_, x);
}

u64 BinaryMatrixMapper::unmap(u64 y) const {
  check(y < domain_size(), "BinaryMatrixMapper::unmap: input out of domain");
  return gf2_matvec(inv_rows_, y);
}

}  // namespace srbsg::mapping
