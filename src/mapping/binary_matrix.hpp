#pragma once
// Random Invertible Binary Matrix randomizer — the alternative static
// address scrambler mentioned by RBSG (§III.A): y = M·x over GF(2).

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mapping/mapper.hpp"

namespace srbsg::mapping {

class BinaryMatrixMapper final : public AddressMapper {
 public:
  /// Builds a uniformly random invertible B×B matrix over GF(2)
  /// (rejection-sampled; expected < 4 attempts).
  BinaryMatrixMapper(u32 width_bits, Rng& rng);

  [[nodiscard]] u32 width_bits() const override { return width_bits_; }
  [[nodiscard]] u64 map(u64 x) const override;
  [[nodiscard]] u64 unmap(u64 y) const override;

 private:
  u32 width_bits_;
  std::vector<u64> rows_;      ///< forward matrix, row-major bitmasks
  std::vector<u64> inv_rows_;  ///< inverse matrix
};

/// GF(2) matrix-vector product: bit i of the result is parity(rows[i] & x).
[[nodiscard]] u64 gf2_matvec(const std::vector<u64>& rows, u64 x);

/// Gauss-Jordan inverse over GF(2); returns empty vector if singular.
[[nodiscard]] std::vector<u64> gf2_invert(std::vector<u64> rows, u32 width_bits);

}  // namespace srbsg::mapping
