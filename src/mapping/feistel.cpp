#include "mapping/feistel.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::mapping {

namespace {
// (v XOR key)^3 mod 2^w with the mask precomputed — the hot-path form
// used by the stage loops, where the width check has already been done
// once at construction. t*t stays exact in 64 bits for any w <= 32.
inline u64 cube_masked(u64 v, u64 key, u64 mask) {
  const u64 t = (v ^ key) & mask;
  const u64 sq = (t * t) & mask;
  return (sq * t) & mask;
}
}  // namespace

u64 cubing_round(u64 v, u64 key, u32 half_bits) {
  // (t^3) mod 2^half_bits. Half widths never exceed 32 bits in practice
  // (62-bit address spaces), so t*t fits in 64 bits after masking; mask
  // between multiplications to stay exact for any half width <= 32.
  check(half_bits <= 32, "cubing_round: half width too large");
  return cube_masked(v, key, low_mask(half_bits));
}

FeistelNetwork::FeistelNetwork(u32 width_bits, std::span<const u64> keys)
    : width_bits_(width_bits),
      even_bits_(width_bits % 2 == 0 ? width_bits : width_bits + 1),
      half_bits_(even_bits_ / 2),
      half_mask_(low_mask(half_bits_)),
      keys_(keys.begin(), keys.end()) {
  check(width_bits >= 2 && width_bits <= 62, "FeistelNetwork: width out of range");
  check(!keys_.empty(), "FeistelNetwork: need at least one stage");
  for (auto& k : keys_) k &= half_mask_;
}

u64 FeistelNetwork::round_once(u64 x, u64 key) const {
  const u64 left = x >> half_bits_;
  const u64 right = x & half_mask_;
  const u64 new_left = right;
  const u64 new_right = left ^ cube_masked(right, key, half_mask_);
  return (new_left << half_bits_) | new_right;
}

u64 FeistelNetwork::unround_once(u64 x, u64 key) const {
  const u64 new_left = x >> half_bits_;
  const u64 new_right = x & half_mask_;
  const u64 right = new_left;
  const u64 left = new_right ^ cube_masked(right, key, half_mask_);
  return (left << half_bits_) | right;
}

u64 FeistelNetwork::encrypt_even(u64 x) const {
  for (u64 k : keys_) x = round_once(x, k);
  return x;
}

u64 FeistelNetwork::decrypt_even(u64 x) const {
  for (auto it = keys_.rbegin(); it != keys_.rend(); ++it) x = unround_once(x, *it);
  return x;
}

u64 FeistelNetwork::map(u64 x) const {
  const u64 dom = u64{1} << width_bits_;
  check(x < dom, "FeistelNetwork::map: input out of domain");
  u64 y = encrypt_even(x);
  // Cycle-walk back into the domain for odd widths.
  while (y >= dom) y = encrypt_even(y);
  return y;
}

u64 FeistelNetwork::unmap(u64 y) const {
  const u64 dom = u64{1} << width_bits_;
  check(y < dom, "FeistelNetwork::unmap: input out of domain");
  u64 x = decrypt_even(y);
  while (x >= dom) x = decrypt_even(x);
  return x;
}

std::vector<u64> FeistelNetwork::random_keys(u32 width_bits, u32 stages, Rng& rng) {
  check(stages > 0, "random_keys: need at least one stage");
  const u32 even = width_bits % 2 == 0 ? width_bits : width_bits + 1;
  const u64 mask = low_mask(even / 2);
  std::vector<u64> keys(stages);
  for (auto& k : keys) k = rng.next() & mask;
  return keys;
}

}  // namespace srbsg::mapping
