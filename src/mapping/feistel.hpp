#pragma once
// Multi-stage Feistel network with the paper's cubing round function
// (§IV.B, Fig. 7):  L' = R,  R' = L XOR (R XOR K)^3   [balanced variant]
//
// The paper draws the classic balanced network: each stage splits the
// B-bit input into halves (L, R); the new left half is R and the new
// right half is L XOR F(R, K) with F the cubing function truncated to
// B/2 bits. Encryption and decryption differ only in key order.
//
// Odd widths are supported by cycle-walking a (B+1)-bit network: the
// permutation on [0, 2^(B+1)) is iterated until the value falls back into
// [0, 2^B), which restricts it to a bijection on the smaller domain.

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mapping/mapper.hpp"

namespace srbsg::mapping {

class FeistelNetwork final : public AddressMapper {
 public:
  /// `width_bits` in [2, 62]; one key per stage, each truncated to the
  /// half-width of the internal (even-width) network.
  FeistelNetwork(u32 width_bits, std::span<const u64> keys);

  [[nodiscard]] u32 width_bits() const override { return width_bits_; }
  // srbsg-analyze: suppress(a1-width) stage count is a small per-network constant
  [[nodiscard]] u32 stages() const { return static_cast<u32>(keys_.size()); }
  [[nodiscard]] std::span<const u64> keys() const { return keys_; }

  [[nodiscard]] u64 map(u64 x) const override;
  [[nodiscard]] u64 unmap(u64 y) const override;

  /// Fresh random key schedule for a `stages`-stage network of this width.
  [[nodiscard]] static std::vector<u64> random_keys(u32 width_bits, u32 stages, Rng& rng);

 private:
  [[nodiscard]] u64 round_once(u64 x, u64 key) const;
  [[nodiscard]] u64 unround_once(u64 x, u64 key) const;
  [[nodiscard]] u64 encrypt_even(u64 x) const;
  [[nodiscard]] u64 decrypt_even(u64 x) const;

  u32 width_bits_;
  u32 even_bits_;   ///< width of the internal balanced network
  u32 half_bits_;   ///< even_bits_ / 2
  u64 half_mask_;
  std::vector<u64> keys_;
};

/// The paper's round function: cubing of (v XOR key), truncated to
/// `half_bits` (exposed for tests and the gate-count overhead model).
[[nodiscard]] u64 cubing_round(u64 v, u64 key, u32 half_bits);

}  // namespace srbsg::mapping
