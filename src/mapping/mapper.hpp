#pragma once
// Common interface for invertible address randomizers. All mappers are
// bijections on [0, 2^width_bits).

#include "common/types.hpp"

namespace srbsg::mapping {

class AddressMapper {
 public:
  virtual ~AddressMapper() = default;

  /// Domain is [0, 2^width_bits()).
  [[nodiscard]] virtual u32 width_bits() const = 0;

  /// Forward mapping (bijective).
  [[nodiscard]] virtual u64 map(u64 x) const = 0;

  /// Inverse mapping: unmap(map(x)) == x.
  [[nodiscard]] virtual u64 unmap(u64 y) const = 0;

  [[nodiscard]] u64 domain_size() const { return u64{1} << width_bits(); }
};

}  // namespace srbsg::mapping
