#include "mapping/quality.hpp"

#include <vector>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::mapping {

QualityReport measure_quality(const AddressMapper& mapper, std::size_t samples,
                              std::size_t buckets, Rng& rng) {
  check(samples > 0 && buckets > 0, "measure_quality: bad parameters");
  const u32 width = mapper.width_bits();
  const u64 domain = mapper.domain_size();

  QualityReport rep;
  rep.buckets = buckets;
  rep.samples = samples;

  // Avalanche + fixed points over random probes.
  double flip_sum = 0.0;
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const u64 x = rng.next_below(domain);
    const u64 y = mapper.map(x);
    if (x == y) ++fixed;
    const u32 bit = checked_narrow<u32>(rng.next_below(width));
    const u64 x2 = x ^ (u64{1} << bit);
    if (x2 < domain) {
      const u64 y2 = mapper.map(x2);
      flip_sum += static_cast<double>(popcount(y ^ y2)) / static_cast<double>(width);
    }
  }
  rep.avalanche = flip_sum / static_cast<double>(samples);
  rep.fixed_point_rate = static_cast<double>(fixed) / static_cast<double>(samples);

  // Sequential-input bucket chi-square: RBSG relies on the randomizer
  // destroying spatial locality of sequential traffic.
  std::vector<u64> occupancy(buckets, 0);
  const std::size_t seq = std::min<std::size_t>(samples, static_cast<std::size_t>(domain));
  for (std::size_t i = 0; i < seq; ++i) {
    const u64 y = mapper.map(static_cast<u64>(i));
    const auto b = static_cast<std::size_t>((static_cast<__uint128_t>(y) * buckets) / domain);
    ++occupancy[b];
  }
  const double expect = static_cast<double>(seq) / static_cast<double>(buckets);
  double chi2 = 0.0;
  for (u64 c : occupancy) {
    const double d = static_cast<double>(c) - expect;
    chi2 += d * d / expect;
  }
  rep.sequential_chi2 = chi2;
  return rep;
}

bool verify_bijection(const AddressMapper& mapper) {
  const u64 domain = mapper.domain_size();
  std::vector<bool> seen(domain, false);
  for (u64 x = 0; x < domain; ++x) {
    const u64 y = mapper.map(x);
    if (y >= domain || seen[y]) return false;
    seen[y] = true;
    if (mapper.unmap(y) != x) return false;
  }
  return true;
}

}  // namespace srbsg::mapping
