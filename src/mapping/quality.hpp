#pragma once
// Permutation-quality metrics. Fig. 14 of the paper shows that the
// *randomness quality* of a few-stage Feistel network determines how much
// of the ideal lifetime RAA traffic can reach — these metrics quantify
// that effect and are used by tests and the fig14 bench commentary.

#include <cstddef>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mapping/mapper.hpp"

namespace srbsg::mapping {

struct QualityReport {
  /// Average fraction of output bits flipped per single-bit input flip
  /// (ideal 0.5 for a random permutation).
  double avalanche{0.0};
  /// Fraction of sampled inputs that map to themselves (ideal ~1/2^B).
  double fixed_point_rate{0.0};
  /// Chi-square statistic of output bucket occupancy when inputs are the
  /// first `samples` consecutive addresses and outputs are hashed into
  /// `buckets` equal ranges. For a random permutation this is close to
  /// the bucket count.
  double sequential_chi2{0.0};
  std::size_t buckets{0};
  std::size_t samples{0};
};

/// Measures mapper quality with `samples` probes (sampled deterministically
/// from `rng`).
[[nodiscard]] QualityReport measure_quality(const AddressMapper& mapper, std::size_t samples,
                                            std::size_t buckets, Rng& rng);

/// Exhaustively verifies that `mapper` is a bijection on its full domain
/// (intended for widths <= ~22 in tests). Returns true iff bijective and
/// unmap inverts map everywhere.
[[nodiscard]] bool verify_bijection(const AddressMapper& mapper);

}  // namespace srbsg::mapping
