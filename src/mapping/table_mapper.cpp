#include "mapping/table_mapper.hpp"

#include <span>

#include "common/check.hpp"

namespace srbsg::mapping {

TableMapper::TableMapper(u32 width_bits, Rng& rng) : width_bits_(width_bits) {
  check(width_bits >= 1 && width_bits <= 28, "TableMapper: width out of range");
  const u64 n = u64{1} << width_bits;
  fwd_.resize(n);
  inv_.resize(n);
  // srbsg-analyze: suppress(a1-width) i < 2^width and width <= 28 is checked above
  for (u64 i = 0; i < n; ++i) fwd_[i] = static_cast<u32>(i);
  rng.shuffle(std::span<u32>(fwd_));
  // srbsg-analyze: suppress(a1-width) same bound as above; this is the 2^width-entry hot path
  for (u64 i = 0; i < n; ++i) inv_[fwd_[i]] = static_cast<u32>(i);
}

u64 TableMapper::map(u64 x) const {
  check(x < fwd_.size(), "TableMapper::map: input out of domain");
  return fwd_[x];
}

u64 TableMapper::unmap(u64 y) const {
  check(y < inv_.size(), "TableMapper::unmap: input out of domain");
  return inv_[y];
}

}  // namespace srbsg::mapping
