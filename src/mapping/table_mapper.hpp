#pragma once
// Explicit random permutation table — a *true* uniform random permutation
// with O(1) lookup. Hardware-unrealistic at memory scale (it needs N·B
// bits of table), but the ideal-randomizer upper bound for ablations: it
// shows how much lifetime the paper's cubing Feistel network leaves on
// the table (pun intended) due to its T-function diffusion weakness.

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mapping/mapper.hpp"

namespace srbsg::mapping {

class TableMapper final : public AddressMapper {
 public:
  /// Uniformly random permutation of [0, 2^width_bits) via Fisher-Yates.
  TableMapper(u32 width_bits, Rng& rng);

  [[nodiscard]] u32 width_bits() const override { return width_bits_; }
  [[nodiscard]] u64 map(u64 x) const override;
  [[nodiscard]] u64 unmap(u64 y) const override;

 private:
  u32 width_bits_;
  std::vector<u32> fwd_;
  std::vector<u32> inv_;
};

}  // namespace srbsg::mapping
