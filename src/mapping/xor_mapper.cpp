#include "mapping/xor_mapper.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::mapping {

XorMapper::XorMapper(u32 width_bits, u64 key)
    : width_bits_(width_bits), key_(key & low_mask(width_bits)) {
  check(width_bits >= 1 && width_bits <= 62, "XorMapper: width out of range");
}

u64 XorMapper::map(u64 x) const {
  check(x < domain_size(), "XorMapper::map: input out of domain");
  return x ^ key_;
}

u64 XorMapper::unmap(u64 y) const {
  check(y < domain_size(), "XorMapper::unmap: input out of domain");
  return y ^ key_;
}

}  // namespace srbsg::mapping
