#pragma once
// XOR-with-key mapper — the Security Refresh remapping primitive
// (PA = LA XOR key). Self-inverse.

#include "common/types.hpp"
#include "mapping/mapper.hpp"

namespace srbsg::mapping {

class XorMapper final : public AddressMapper {
 public:
  XorMapper(u32 width_bits, u64 key);

  [[nodiscard]] u32 width_bits() const override { return width_bits_; }
  [[nodiscard]] u64 key() const { return key_; }

  [[nodiscard]] u64 map(u64 x) const override;
  [[nodiscard]] u64 unmap(u64 y) const override;

 private:
  u32 width_bits_;
  u64 key_;
};

}  // namespace srbsg::mapping
