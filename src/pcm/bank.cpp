#include "pcm/bank.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace srbsg::pcm {

namespace {
// Process-wide incarnation counter: two bank (re)configurations never
// share a stamp, even across worker threads recycling arena banks.
std::atomic<u64> g_bank_incarnation{0};
}  // namespace

PcmBank::PcmBank(const PcmConfig& cfg, u64 total_lines) : cfg_(cfg) {
  reconfigure(cfg, total_lines);
}

PcmBank::PcmBank(PcmBank&& other) noexcept
    : cfg_(other.cfg_),
      data_(std::move(other.data_)),
      wear_(std::move(other.wear_)),
      endurance_(std::move(other.endurance_)),
      endurance_lut_(endurance_.empty() ? nullptr : endurance_.data()),
      uniform_endurance_(other.uniform_endurance_),
      endurance_rebuilds_(other.endurance_rebuilds_),
      incarnation_(other.incarnation_),
      mut_seq_(other.mut_seq_),
      total_writes_(other.total_writes_),
      first_failure_(other.first_failure_),
      failure_overshoot_(other.failure_overshoot_) {
  other.endurance_lut_ = nullptr;
}

PcmBank& PcmBank::operator=(PcmBank&& other) noexcept {
  if (this == &other) return *this;
  cfg_ = other.cfg_;
  data_ = std::move(other.data_);
  wear_ = std::move(other.wear_);
  endurance_ = std::move(other.endurance_);
  endurance_lut_ = endurance_.empty() ? nullptr : endurance_.data();
  uniform_endurance_ = other.uniform_endurance_;
  endurance_rebuilds_ = other.endurance_rebuilds_;
  incarnation_ = other.incarnation_;
  mut_seq_ = other.mut_seq_;
  total_writes_ = other.total_writes_;
  first_failure_ = other.first_failure_;
  failure_overshoot_ = other.failure_overshoot_;
  other.endurance_lut_ = nullptr;
  return *this;
}

void PcmBank::regenerate_endurance(u64 total_lines) {
  // Truncated-Gaussian per-line limits (sum of 12 uniforms ≈ N(0,1)),
  // clamped to ±3σ so no line is pathological in either direction.
  Rng rng(cfg_.variation_seed);
  endurance_.resize(total_lines);
  const double mu = static_cast<double>(cfg_.endurance);
  const double sigma = cfg_.endurance_variation * mu;
  for (auto& e : endurance_) {
    double z = -6.0;
    for (int i = 0; i < 12; ++i) z += rng.next_double();
    z = std::clamp(z, -3.0, 3.0);
    e = static_cast<u64>(std::max(1.0, mu + sigma * z));
  }
  ++endurance_rebuilds_;
}

void PcmBank::reconfigure(const PcmConfig& cfg, u64 total_lines) {
  cfg.validate();
  check(total_lines >= cfg.line_count, "PcmBank: fewer physical than logical lines");
  const bool variation_on = cfg.endurance_variation > 0.0;
  // The table depends only on (size, mean, coefficient, seed); when all
  // four match the previous configuration, the draw would be bit-identical
  // and the table is reused instead of re-sampled (12 RNG draws per line).
  const bool table_reusable = variation_on && endurance_.size() == total_lines &&
                              cfg_.endurance == cfg.endurance &&
                              cfg_.endurance_variation == cfg.endurance_variation &&
                              cfg_.variation_seed == cfg.variation_seed;
  cfg_ = cfg;
  data_.assign(total_lines, LineData::all_zero());
  wear_.assign(total_lines, 0);
  uniform_endurance_ = cfg_.endurance;
  if (!variation_on) {
    endurance_.clear();
  } else if (!table_reusable) {
    regenerate_endurance(total_lines);
  }
  endurance_lut_ = endurance_.empty() ? nullptr : endurance_.data();
  incarnation_ = g_bank_incarnation.fetch_add(1, std::memory_order_relaxed) + 1;
  total_writes_ = 0;
  first_failure_.reset();
  failure_overshoot_ = 0;
}

u64 PcmBank::line_endurance(Pa pa) const {
  check(pa.value() < wear_.size(), "PcmBank: physical address out of range");
  return endurance_lut_ ? endurance_lut_[pa.value()] : uniform_endurance_;
}

void PcmBank::record_wear(Pa pa, u64 count) {
  SRBSG_DCHECK(pa.value() < wear_.size(), "PcmBank: physical address out of range");
  ++mut_seq_;
  u64& w = wear_[pa.value()];
  w += count;
  total_writes_ += count;
  const u64 limit = endurance_lut_ ? endurance_lut_[pa.value()] : uniform_endurance_;
  if (!first_failure_ && w >= limit) [[unlikely]] {
    first_failure_ = pa;
    // Writes applied after the one that hit the endurance limit.
    failure_overshoot_ = w - limit;
  }
}

Ns PcmBank::write(Pa pa, const LineData& data) {
  record_wear(pa, 1);
  data_[pa.value()] = data;
  return write_latency(cfg_, data.cls);
}

Ns PcmBank::bulk_write(Pa pa, const LineData& data, u64 count) {
  if (count == 0) return Ns{0};
  record_wear(pa, count);
  data_[pa.value()] = data;
  return write_latency(cfg_, data.cls) * count;
}

std::pair<LineData, Ns> PcmBank::read(Pa pa) const {
  SRBSG_DCHECK(pa.value() < data_.size(), "PcmBank: physical address out of range");
  return {data_[pa.value()], read_latency(cfg_)};
}

Ns PcmBank::move_line(Pa from, Pa to) {
  SRBSG_DCHECK(from.value() < data_.size() && to.value() < data_.size(),
               "PcmBank: physical address out of range");
  const LineData moved = data_[from.value()];
  record_wear(to, 1);
  data_[to.value()] = moved;
  return move_latency(cfg_, moved.cls);
}

Ns PcmBank::swap_lines(Pa a, Pa b) {
  SRBSG_DCHECK(a.value() < data_.size() && b.value() < data_.size(),
               "PcmBank: physical address out of range");
  const LineData da = data_[a.value()];
  const LineData db = data_[b.value()];
  record_wear(a, 1);
  record_wear(b, 1);
  data_[a.value()] = db;
  data_[b.value()] = da;
  return swap_latency(cfg_, da.cls, db.cls);
}

u64 PcmBank::min_headroom(Pa base, u64 count) const {
  SRBSG_DCHECK(base.value() + count <= wear_.size(),
               "PcmBank: headroom scan out of range");
  u64 min = ~u64{0};
  for (u64 i = base.value(); i < base.value() + count; ++i) {
    const u64 limit = endurance_lut_ ? endurance_lut_[i] : uniform_endurance_;
    const u64 h = limit > wear_[i] ? limit - wear_[i] : 0;
    if (h < min) min = h;
  }
  return min;
}

void PcmBank::add_wear_range_unchecked(Pa base, u64 count, u64 per_line) {
  SRBSG_DCHECK(base.value() + count <= wear_.size(),
               "PcmBank: wear range out of range");
  ++mut_seq_;
  for (u64 i = base.value(); i < base.value() + count; ++i) wear_[i] += per_line;
  total_writes_ += count * per_line;
}

Pa PcmBank::first_failed_line() const {
  check(first_failure_.has_value(), "PcmBank: no failure recorded");
  return *first_failure_;
}

u64 PcmBank::max_wear() const {
  return wear_.empty() ? 0 : *std::max_element(wear_.begin(), wear_.end());
}

void PcmBank::reset() {
  ++mut_seq_;
  std::fill(data_.begin(), data_.end(), LineData::all_zero());
  std::fill(wear_.begin(), wear_.end(), u64{0});
  total_writes_ = 0;
  first_failure_.reset();
  failure_overshoot_ = 0;
}

void PcmBank::reset(const PcmConfig& cfg, u64 total_lines) { reconfigure(cfg, total_lines); }

}  // namespace srbsg::pcm
