#pragma once
// Line-granularity PCM bank: data classes, per-line wear counters,
// endurance tracking, and the bulk-write fast path that makes exact
// to-failure simulation feasible.

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "pcm/config.hpp"
#include "pcm/timing.hpp"

namespace srbsg::pcm {

/// A PCM bank of `total_lines` physical lines. The bank does not know
/// about address translation — all addresses here are physical. Writes
/// past the endurance limit are recorded (first failed line + the wear
/// overshoot) rather than thrown, so the harness can pinpoint the exact
/// failure instant inside a bulk write.
///
/// Banks are heavy (paper scale is ~100 MB of vectors) and recyclable:
/// reset(cfg, total_lines) re-targets an existing bank at a new
/// configuration without reallocating, which is what sim::WorkerArena
/// builds on. Copying is disabled — a silent 100 MB copy is never what a
/// caller wants; moves are cheap and re-sync the endurance lookup.
class PcmBank {
 public:
  PcmBank(const PcmConfig& cfg, u64 total_lines);

  PcmBank(const PcmBank&) = delete;
  PcmBank& operator=(const PcmBank&) = delete;
  PcmBank(PcmBank&& other) noexcept;
  PcmBank& operator=(PcmBank&& other) noexcept;

  [[nodiscard]] const PcmConfig& config() const { return cfg_; }
  [[nodiscard]] u64 total_lines() const { return data_.size(); }

  /// Write `data` into line `pa`; returns data-dependent latency.
  Ns write(Pa pa, const LineData& data);

  /// `count` consecutive writes of the same data to the same line.
  /// Equivalent to calling write() `count` times; O(1).
  Ns bulk_write(Pa pa, const LineData& data, u64 count);

  /// Read the line; returns {data, latency}.
  [[nodiscard]] std::pair<LineData, Ns> read(Pa pa) const;

  /// Remap movement: copy line `from` into line `to` (read + write).
  /// `from` keeps its data (the algorithms treat the source as the new
  /// gap; its stale content is never read again).
  Ns move_line(Pa from, Pa to);

  /// Security-Refresh movement: swap the contents of two lines
  /// (two reads + two writes, both destinations wear by one).
  Ns swap_lines(Pa a, Pa b);

  // --- Epoch-engine aggregate primitives (DESIGN.md §15) ------------
  // The epoch fast-forward engine proves, before each jump, that no line
  // the jump touches can reach its endurance limit inside it; it then
  // applies the jump's wear without per-write failure checks and settles
  // total_writes in one add. All other callers use the checked
  // write/move/swap entry points above.

  /// Smallest writes-to-failure margin over `count` lines from `base`
  /// (limit - wear, floored at 0 for lines at or past their limit).
  [[nodiscard]] u64 min_headroom(Pa base, u64 count) const;

  /// Contiguous unchecked wear: lines [base, base+count) each gain
  /// `per_line`; total_writes advances by count * per_line.
  void add_wear_range_unchecked(Pa base, u64 count, u64 per_line);

  /// Raw wear counters for scattered unchecked adds (SR swap sweeps);
  /// pair with note_writes_unchecked() so total_writes stays exact.
  [[nodiscard]] std::span<u64> wear_mut() {
    ++mut_seq_;
    return wear_;
  }
  void note_writes_unchecked(u64 count) {
    ++mut_seq_;
    total_writes_ += count;
  }

  /// Set a line's content without wear or latency — settles the one slot
  /// whose content a fully aggregated gap sweep actually changes.
  void poke_data(Pa pa, const LineData& data) {
    ++mut_seq_;
    data_[pa.value()] = data;
  }

  [[nodiscard]] u64 wear(Pa pa) const { return wear_[pa.value()]; }
  [[nodiscard]] std::span<const u64> wear_counts() const { return wear_; }
  [[nodiscard]] const LineData& data(Pa pa) const { return data_[pa.value()]; }
  /// Endurance limit of one line (constant unless variation is enabled).
  [[nodiscard]] u64 line_endurance(Pa pa) const;

  [[nodiscard]] bool has_failure() const { return first_failure_.has_value(); }
  /// Physical line that first reached the endurance limit.
  [[nodiscard]] Pa first_failed_line() const;
  /// How many writes past the failure instant the failing line received
  /// during the operation that killed it (0 when it failed exactly on its
  /// last write). Lets callers rewind simulated time to the true instant.
  [[nodiscard]] u64 failure_overshoot() const { return failure_overshoot_; }

  [[nodiscard]] u64 total_writes() const { return total_writes_; }
  [[nodiscard]] u64 max_wear() const;

  /// Reset wear, data and failure state (config unchanged).
  void reset();

  /// Re-target the bank at (cfg, total_lines) in place. Buffers are
  /// reused — no reallocation when the existing capacity suffices — and
  /// the per-line endurance-variation table is kept when the draw would
  /// be identical (same endurance mean, variation coefficient, variation
  /// seed and line count). The result is indistinguishable from a
  /// freshly constructed PcmBank(cfg, total_lines).
  void reset(const PcmConfig& cfg, u64 total_lines);

  /// Times the endurance-variation table has been (re)generated over this
  /// bank's lifetime — lets the sweep arena assert table reuse.
  [[nodiscard]] u64 endurance_rebuilds() const { return endurance_rebuilds_; }

  /// Identity/mutation stamp for content-dependent caches (the epoch
  /// engines' cross-call scan cache, DESIGN.md §15). `incarnation` is
  /// unique per (re)configuration — no two bank incarnations in the
  /// process ever share one — and `mutation_seq` advances on every
  /// mutating entry point, unchecked wear adds and data pokes included.
  /// State recorded at (address, incarnation, mutation_seq) is therefore
  /// bit-identical iff all three still match.
  [[nodiscard]] u64 incarnation() const { return incarnation_; }
  [[nodiscard]] u64 mutation_seq() const { return mut_seq_; }

 private:
  void reconfigure(const PcmConfig& cfg, u64 total_lines);
  void regenerate_endurance(u64 total_lines);
  void record_wear(Pa pa, u64 count);

  PcmConfig cfg_;
  std::vector<LineData> data_;
  std::vector<u64> wear_;
  std::vector<u64> endurance_;  ///< per-line limits; empty when uniform
  /// Hot-path endurance lookup: null means every line shares
  /// `uniform_endurance_`, otherwise points at endurance_.data(). Kept
  /// out of the vector so record_wear() issues one predictable load.
  const u64* endurance_lut_{nullptr};
  u64 uniform_endurance_{0};
  u64 endurance_rebuilds_{0};
  u64 incarnation_{0};
  u64 mut_seq_{0};
  u64 total_writes_{0};
  std::optional<Pa> first_failure_;
  u64 failure_overshoot_{0};
};

}  // namespace srbsg::pcm
