#pragma once
// Line-granularity PCM bank: data classes, per-line wear counters,
// endurance tracking, and the bulk-write fast path that makes exact
// to-failure simulation feasible.

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "pcm/config.hpp"
#include "pcm/timing.hpp"

namespace srbsg::pcm {

/// A PCM bank of `total_lines` physical lines. The bank does not know
/// about address translation — all addresses here are physical. Writes
/// past the endurance limit are recorded (first failed line + the wear
/// overshoot) rather than thrown, so the harness can pinpoint the exact
/// failure instant inside a bulk write.
class PcmBank {
 public:
  PcmBank(const PcmConfig& cfg, u64 total_lines);

  [[nodiscard]] const PcmConfig& config() const { return cfg_; }
  [[nodiscard]] u64 total_lines() const { return data_.size(); }

  /// Write `data` into line `pa`; returns data-dependent latency.
  Ns write(Pa pa, const LineData& data);

  /// `count` consecutive writes of the same data to the same line.
  /// Equivalent to calling write() `count` times; O(1).
  Ns bulk_write(Pa pa, const LineData& data, u64 count);

  /// Read the line; returns {data, latency}.
  [[nodiscard]] std::pair<LineData, Ns> read(Pa pa) const;

  /// Remap movement: copy line `from` into line `to` (read + write).
  /// `from` keeps its data (the algorithms treat the source as the new
  /// gap; its stale content is never read again).
  Ns move_line(Pa from, Pa to);

  /// Security-Refresh movement: swap the contents of two lines
  /// (two reads + two writes, both destinations wear by one).
  Ns swap_lines(Pa a, Pa b);

  [[nodiscard]] u64 wear(Pa pa) const { return wear_[pa.value()]; }
  [[nodiscard]] std::span<const u64> wear_counts() const { return wear_; }
  [[nodiscard]] const LineData& data(Pa pa) const { return data_[pa.value()]; }
  /// Endurance limit of one line (constant unless variation is enabled).
  [[nodiscard]] u64 line_endurance(Pa pa) const;

  [[nodiscard]] bool has_failure() const { return first_failure_.has_value(); }
  /// Physical line that first reached the endurance limit.
  [[nodiscard]] Pa first_failed_line() const;
  /// How many writes past the failure instant the failing line received
  /// during the operation that killed it (0 when it failed exactly on its
  /// last write). Lets callers rewind simulated time to the true instant.
  [[nodiscard]] u64 failure_overshoot() const { return failure_overshoot_; }

  [[nodiscard]] u64 total_writes() const { return total_writes_; }
  [[nodiscard]] u64 max_wear() const;

  /// Reset wear, data and failure state (config unchanged).
  void reset();

 private:
  void record_wear(Pa pa, u64 count);

  PcmConfig cfg_;
  std::vector<LineData> data_;
  std::vector<u64> wear_;
  std::vector<u64> endurance_;  ///< per-line limits; empty when uniform
  u64 total_writes_{0};
  std::optional<Pa> first_failure_;
  u64 failure_overshoot_{0};
};

}  // namespace srbsg::pcm
