#include "pcm/config.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::pcm {

void PcmConfig::validate() const {
  check(is_pow2(line_count), "PcmConfig: line_count must be a power of two");
  check(line_bytes > 0, "PcmConfig: line_bytes must be positive");
  check(endurance > 0, "PcmConfig: endurance must be positive");
  check(set_latency.value() >= reset_latency.value(),
        "PcmConfig: SET must not be faster than RESET");
  check(read_latency.value() > 0, "PcmConfig: read latency must be positive");
  check(endurance_variation >= 0.0 && endurance_variation < 0.5,
        "PcmConfig: endurance variation out of range");
}

u32 PcmConfig::address_bits() const { return log2_floor(line_count); }

PcmConfig PcmConfig::paper_bank() {
  PcmConfig cfg;
  cfg.validate();
  return cfg;
}

PcmConfig PcmConfig::scaled(u64 line_count, u64 endurance) {
  PcmConfig cfg;
  cfg.line_count = line_count;
  cfg.endurance = endurance;
  cfg.validate();
  return cfg;
}

}  // namespace srbsg::pcm
