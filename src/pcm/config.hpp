#pragma once
// PCM device configuration. Defaults follow the paper's evaluation setup
// (§V): 1 GB bank, 256 B lines (= 2^22 lines), endurance 1e8 writes,
// SET 1000 ns, RESET/READ 125 ns.

#include "common/types.hpp"

namespace srbsg::pcm {

struct PcmConfig {
  /// Number of addressable logical lines in the bank (power of two).
  u64 line_count{u64{1} << 22};
  /// Line (block) size in bytes; equals the last-level cache line (256 B).
  u64 line_bytes{256};
  /// Per-line write endurance before a stuck-at fault (the mean, when
  /// variation is enabled).
  u64 endurance{100'000'000};
  /// Process-variation coefficient (σ/μ) of per-line endurance; 0 =
  /// deterministic (the paper's model). PCM cells vary strongly in
  /// practice (the wear-rate-leveling literature the paper cites), and a
  /// weak line makes every lifetime number worse — the bank samples a
  /// truncated Gaussian per line when this is nonzero.
  double endurance_variation{0.0};
  /// Seed for the per-line endurance draw.
  u64 variation_seed{0x7a71e7};
  /// Latency of a write whose data requires at least one SET transition.
  Ns set_latency{Ns{1000}};
  /// Latency of a write whose data is ALL-0 (RESET pulses only).
  Ns reset_latency{Ns{125}};
  /// Read latency.
  Ns read_latency{Ns{125}};

  /// Throws CheckFailure on inconsistent values.
  void validate() const;

  [[nodiscard]] u64 capacity_bytes() const { return line_count * line_bytes; }
  [[nodiscard]] u32 address_bits() const;

  /// The paper's 1 GB evaluation bank.
  [[nodiscard]] static PcmConfig paper_bank();

  /// A scaled-down bank for exact to-failure simulation. Keeps the latency
  /// model; shrinks line count and endurance so first-failure runs finish
  /// in milliseconds while preserving the write-count identities that
  /// govern lifetime (see DESIGN.md §3).
  [[nodiscard]] static PcmConfig scaled(u64 line_count, u64 endurance);
};

}  // namespace srbsg::pcm
