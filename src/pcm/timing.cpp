#include "pcm/timing.hpp"

#include <string_view>

namespace srbsg::pcm {

std::string_view to_string(DataClass cls) {
  switch (cls) {
    case DataClass::kAllZero:
      return "ALL-0";
    case DataClass::kAllOne:
      return "ALL-1";
    case DataClass::kMixed:
      return "MIXED";
  }
  return "?";
}

}  // namespace srbsg::pcm
