#pragma once
// Data-dependent write timing — the physical effect behind the Remapping
// Timing Attack (paper §II.C).
//
// A PCM line write completes when its slowest cell completes. Writing a
// line whose data contains at least one '1' requires a SET pulse
// (~1000 ns); a line of all '0's needs only RESET pulses (~125 ns).
// Uncontrolled ("normal") data virtually always contains both transitions
// and therefore costs the SET time. We track per-line data as a latency
// class plus a 64-bit integrity token so tests can prove remapping never
// loses or duplicates a line.

#include <string_view>

#include "common/types.hpp"
#include "pcm/config.hpp"

namespace srbsg::pcm {

enum class DataClass : u8 {
  kAllZero,  ///< every bit is 0 — RESET-only write
  kAllOne,   ///< every bit is 1 — SET-dominated write
  kMixed,    ///< arbitrary data — SET-dominated write (worst cell wins)
};

struct LineData {
  DataClass cls{DataClass::kAllZero};
  /// Opaque integrity token carried through remappings (not timing-relevant).
  u64 token{0};

  [[nodiscard]] static constexpr LineData all_zero(u64 token = 0) {
    return LineData{DataClass::kAllZero, token};
  }
  [[nodiscard]] static constexpr LineData all_one(u64 token = 0) {
    return LineData{DataClass::kAllOne, token};
  }
  [[nodiscard]] static constexpr LineData mixed(u64 token = 0) {
    return LineData{DataClass::kMixed, token};
  }

  constexpr bool operator==(const LineData&) const = default;
};

/// Human-readable name ("ALL-0" / "ALL-1" / "MIXED").
[[nodiscard]] std::string_view to_string(DataClass cls);

/// Latency of writing `data` into a line (data-dependent; §II.C / Fig. 1).
[[nodiscard]] constexpr Ns write_latency(const PcmConfig& cfg, DataClass data) {
  return data == DataClass::kAllZero ? cfg.reset_latency : cfg.set_latency;
}

/// Latency of a read (data-independent).
[[nodiscard]] constexpr Ns read_latency(const PcmConfig& cfg) { return cfg.read_latency; }

/// Latency of one remap *movement* that copies `data` from one line to
/// another: a read plus a data-dependent write (paper Fig. 4(a)).
[[nodiscard]] constexpr Ns move_latency(const PcmConfig& cfg, DataClass data) {
  return read_latency(cfg) + write_latency(cfg, data);
}

/// Latency of a Security-Refresh style *swap* of two lines: both are read,
/// then both written (paper Fig. 4(b): 500/1375/2250 ns).
[[nodiscard]] constexpr Ns swap_latency(const PcmConfig& cfg, DataClass a, DataClass b) {
  return 2 * read_latency(cfg) + write_latency(cfg, a) + write_latency(cfg, b);
}

}  // namespace srbsg::pcm
