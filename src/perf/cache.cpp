#include "perf/cache.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::perf {

void CacheConfig::validate() const {
  check(size_bytes > 0 && line_bytes > 0 && ways > 0, "CacheConfig: zero dimension");
  check(size_bytes % (line_bytes * ways) == 0, "CacheConfig: size not set-aligned");
  check(is_pow2(sets()), "CacheConfig: set count must be a power of two");
}

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  ways_.assign(cfg_.sets() * cfg_.ways, Way{});
}

SetAssocCache::Result SetAssocCache::access(u64 line_addr, bool is_write) {
  ++stats_.accesses;
  ++tick_;
  const u64 set = line_addr & (cfg_.sets() - 1);
  const u64 tag = line_addr / cfg_.sets();
  Way* base = &ways_[set * cfg_.ways];

  Result res;
  // Hit?
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      ++stats_.hits;
      way.lru = tick_;
      way.dirty = way.dirty || is_write;
      res.hit = true;
      return res;
    }
  }
  // Miss: pick a victim (invalid first, else LRU).
  ++stats_.misses;
  u32 victim = 0;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  Way& v = base[victim];
  if (v.valid && v.dirty) {
    ++stats_.writebacks;
    res.writeback = v.tag * cfg_.sets() + set;
  }
  v.valid = true;
  v.dirty = is_write;
  v.tag = tag;
  v.lru = tick_;
  res.fill = line_addr;
  return res;
}

void SetAssocCache::flush(std::vector<u64>* dirty_out) {
  const u64 sets = cfg_.sets();
  for (u64 s = 0; s < sets; ++s) {
    for (u32 w = 0; w < cfg_.ways; ++w) {
      Way& way = ways_[s * cfg_.ways + w];
      if (way.valid && way.dirty && dirty_out) {
        dirty_out->push_back(way.tag * sets + s);
      }
      way = Way{};
    }
  }
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg)
    : l1_(cfg.l1), l2_(cfg.l2), l3_(cfg.l3) {}

CacheHierarchy::MemoryTraffic CacheHierarchy::access(u64 line_addr, bool is_write) {
  MemoryTraffic out;
  const auto r1 = l1_.access(line_addr, is_write);
  if (r1.hit && !r1.writeback) return out;

  // L1 writebacks land in L2 as writes; L1 fills look up L2 as reads.
  auto to_l3 = [&](u64 addr, bool write) {
    const auto r3 = l3_.access(addr, write);
    if (r3.fill) {
      ++out.reads;
      out.read_addr = *r3.fill;
    }
    if (r3.writeback) {
      ++out.writes;
      out.write_addr = *r3.writeback;
    }
  };
  auto to_l2 = [&](u64 addr, bool write) {
    const auto r2 = l2_.access(addr, write);
    if (r2.fill && !r2.hit) to_l3(addr, false);
    if (r2.writeback) to_l3(*r2.writeback, true);
  };
  if (r1.writeback) to_l2(*r1.writeback, true);
  if (!r1.hit) to_l2(line_addr, false);
  return out;
}

}  // namespace srbsg::perf
