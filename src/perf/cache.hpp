#pragma once
// Set-associative cache hierarchy — the L1/L2/L3-DRAM-cache stack of the
// paper's gem5 platform (§V.C.4). The lifetime studies bypass caches (as
// the paper argues attackers can), but the performance study and the
// "normal workload" wear studies are more faithful when CPU-level access
// streams are filtered down to PCM traffic by a real hierarchy.
//
// Write-back, write-allocate, true-LRU within a set. Addresses are in
// cache-line units (one PCM line = one cache line, §V).

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace srbsg::perf {

struct CacheConfig {
  u64 size_bytes{32 * 1024};
  u64 line_bytes{256};  ///< equals the PCM line size in the paper
  u32 ways{8};

  [[nodiscard]] u64 sets() const { return size_bytes / line_bytes / ways; }
  void validate() const;
};

struct CacheStats {
  u64 accesses{0};
  u64 hits{0};
  u64 misses{0};
  u64 writebacks{0};

  [[nodiscard]] double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

/// One cache level. `access` returns what the level passes down: a miss
/// fill (line address) and, possibly, a dirty eviction.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  struct Result {
    bool hit{false};
    std::optional<u64> fill;      ///< line to fetch from the level below
    std::optional<u64> writeback;  ///< dirty line evicted to the level below
  };

  Result access(u64 line_addr, bool is_write);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  /// Drop everything (dirty lines are reported through `sink`).
  void flush(std::vector<u64>* dirty_out = nullptr);

 private:
  struct Way {
    u64 tag{0};
    bool valid{false};
    bool dirty{false};
    u64 lru{0};  ///< smaller = older
  };

  CacheConfig cfg_;
  std::vector<Way> ways_;  ///< sets × ways, row-major
  u64 tick_{0};
  CacheStats stats_;
};

/// Three-level hierarchy matching the paper's platform: private L1,
/// shared L2, L3 DRAM cache in front of PCM.
struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 256, 2};
  CacheConfig l2{256 * 1024, 256, 8};
  CacheConfig l3{8 * 1024 * 1024, 256, 16};
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& cfg);

  /// What PCM sees for one CPU access: zero or more line reads (fills)
  /// and line writes (L3 dirty writebacks).
  struct MemoryTraffic {
    u32 reads{0};
    u32 writes{0};
    u64 read_addr{0};   ///< valid when reads > 0
    u64 write_addr{0};  ///< valid when writes > 0
  };

  MemoryTraffic access(u64 line_addr, bool is_write);

  [[nodiscard]] const SetAssocCache& l1() const { return l1_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }
  [[nodiscard]] const SetAssocCache& l3() const { return l3_; }

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache l3_;
};

}  // namespace srbsg::perf
