#include "perf/core_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace srbsg::perf {

ExecutionResult execute_trace(const trace::Trace& trace, ctl::MemoryController& mc,
                              const CoreParams& params) {
  check(params.clock_ghz > 0.0 && params.base_ipc > 0.0, "execute_trace: bad core params");
  const double cycle_ns = 1.0 / params.clock_ghz;
  const double ns_per_instr = cycle_ns / params.base_ipc;
  const double xlat = static_cast<double>(params.translation.value());
  const double read_ns = static_cast<double>(mc.bank().config().read_latency.value());

  WriteQueue queue(params.queue_depth);
  ExecutionResult res;
  double now = 0.0;
  double bank_free = 0.0;
  double write_service_sum = 0.0;
  const u64 lines = mc.logical_lines();

  for (const auto& rec : trace) {
    res.instructions += rec.instruction_gap;
    now += static_cast<double>(rec.instruction_gap) * ns_per_instr;
    queue.drain_until(static_cast<u64>(now));
    const u64 addr = rec.addr % lines;

    if (!rec.is_write) {
      ++res.reads;
      const double start = std::max(now, bank_free);
      const double done = start + xlat + read_ns;
      bank_free = done;
      now = done;  // reads block the core
      continue;
    }

    ++res.writes;
    if (queue.full()) {
      ++res.queue_full_stalls;
      const double unblock = static_cast<double>(queue.earliest_completion());
      now = std::max(now, unblock);
      queue.drain_until(static_cast<u64>(now));
    }
    // Device service: translation plus the data write and any remap
    // movements it triggers (the wear-leveling scheme is exercised for
    // real, so remap stalls appear at their true cadence).
    const auto out = mc.write(La{addr}, pcm::LineData::mixed(rec.addr));
    const double service = xlat + static_cast<double>(out.total.value());
    const double start = std::max(now, bank_free);
    const double done = start + service;
    bank_free = done;
    write_service_sum += service;
    queue.push(static_cast<u64>(done));
  }

  res.time_ns = std::max(now, bank_free);
  if (res.time_ns > 0.0) {
    res.ipc = static_cast<double>(res.instructions) / (res.time_ns / cycle_ns);
  }
  if (res.writes > 0) {
    res.avg_write_service_ns = write_service_sum / static_cast<double>(res.writes);
  }
  return res;
}

}  // namespace srbsg::perf
