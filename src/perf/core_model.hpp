#pragma once
// Trace-driven core + memory-controller timing model — the gem5
// substitute for the paper's §V.C.4 IPC study (see DESIGN.md §3).
//
// The core retires instructions at `base_ipc` until a memory access from
// the trace is due. Reads block the core for the full service time
// (translation + queue/bank wait + array read). Writes are posted into a
// bounded queue drained by the bank in FCFS order with reads given
// priority via bank serialization; the core blocks only on a full queue.
// Wear-leveling remap stalls extend the device service time of the
// triggering write exactly as in the lifetime simulations, and address
// translation adds a constant latency (the paper charges 10 ns for the
// DFN plus SRAM lookup).

#include "controller/memory_controller.hpp"
#include "perf/request_queue.hpp"
#include "trace/trace.hpp"

namespace srbsg::perf {

struct CoreParams {
  double clock_ghz{1.0};    ///< paper platform: 1 GHz cores
  double base_ipc{1.0};     ///< IPC when no access misses to PCM
  std::size_t queue_depth{32};
  Ns translation{Ns{0}};    ///< address translation latency (10 ns for DFN)
};

struct ExecutionResult {
  u64 instructions{0};
  double time_ns{0.0};
  double ipc{0.0};
  u64 reads{0};
  u64 writes{0};
  u64 queue_full_stalls{0};
  double avg_write_service_ns{0.0};
};

/// Replays `trace` against the controller and returns execution timing.
/// The controller's wear-leveling state advances as a side effect.
[[nodiscard]] ExecutionResult execute_trace(const trace::Trace& trace,
                                            ctl::MemoryController& mc,
                                            const CoreParams& params);

}  // namespace srbsg::perf
