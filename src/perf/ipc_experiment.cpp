#include "perf/ipc_experiment.hpp"

#include "common/check.hpp"
#include "wl/no_wl.hpp"

namespace srbsg::perf {

IpcComparison compare_ipc(const trace::Trace& trc, const wl::SchemeSpec& spec,
                          const pcm::PcmConfig& cfg, const CoreParams& core, Ns translation) {
  check(cfg.line_count == spec.lines, "compare_ipc: spec/config size mismatch");

  CoreParams base_core = core;
  base_core.translation = Ns{0};
  ctl::MemoryController base(cfg, std::make_unique<wl::NoWearLeveling>(cfg.line_count));
  const auto base_res = execute_trace(trc, base, base_core);

  CoreParams scheme_core = core;
  scheme_core.translation = translation;
  ctl::MemoryController with_scheme(cfg, wl::make_scheme(spec));
  const auto scheme_res = execute_trace(trc, with_scheme, scheme_core);

  IpcComparison cmp;
  cmp.workload = trc.name();
  cmp.ipc_baseline = base_res.ipc;
  cmp.ipc_scheme = scheme_res.ipc;
  if (base_res.ipc > 0.0) {
    cmp.degradation_pct = 100.0 * (base_res.ipc - scheme_res.ipc) / base_res.ipc;
  }
  return cmp;
}

std::vector<IpcComparison> run_ipc_suite(std::span<const trace::WorkloadProfile> profiles,
                                         const wl::SchemeSpec& spec, const pcm::PcmConfig& cfg,
                                         const CoreParams& core, Ns translation,
                                         u64 instructions, u64 seed) {
  std::vector<IpcComparison> out;
  out.reserve(profiles.size());
  u64 s = seed;
  for (const auto& p : profiles) {
    const auto trc = trace::make_profile_trace(p, cfg.line_count, instructions, s++);
    out.push_back(compare_ipc(trc, spec, cfg, core, translation));
  }
  return out;
}

IpcComparison compare_ipc_filtered(const trace::Trace& cpu_trace,
                                   const HierarchyConfig& hierarchy,
                                   const wl::SchemeSpec& spec, const pcm::PcmConfig& cfg,
                                   const CoreParams& core, Ns translation) {
  const auto filtered = filter_through_hierarchy(cpu_trace, hierarchy);
  auto cmp = compare_ipc(filtered.pcm_trace, spec, cfg, core, translation);
  cmp.workload = cpu_trace.name() + "+cache";
  return cmp;
}

double mean_degradation(const std::vector<IpcComparison>& results) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.degradation_pct;
  return sum / static_cast<double>(results.size());
}

}  // namespace srbsg::perf
