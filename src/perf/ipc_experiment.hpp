#pragma once
// IPC-impact experiment (§V.C.4): replay a workload against a baseline
// (no wear leveling, no translation latency) and against a scheme, and
// report the IPC degradation caused by remap stalls + translation.

#include <vector>

#include "perf/core_model.hpp"
#include "perf/trace_filter.hpp"
#include "trace/profiles.hpp"
#include "wl/factory.hpp"

namespace srbsg::perf {

struct IpcComparison {
  std::string workload;
  double ipc_baseline{0.0};
  double ipc_scheme{0.0};
  double degradation_pct{0.0};
};

/// Runs `trc` twice: against `none` (baseline) and against `spec`.
/// `translation` is charged only on the scheme run.
[[nodiscard]] IpcComparison compare_ipc(const trace::Trace& trc, const wl::SchemeSpec& spec,
                                        const pcm::PcmConfig& cfg, const CoreParams& core,
                                        Ns translation);

/// Suite sweep: one comparison per profile; `instructions` per workload.
[[nodiscard]] std::vector<IpcComparison> run_ipc_suite(
    std::span<const trace::WorkloadProfile> profiles, const wl::SchemeSpec& spec,
    const pcm::PcmConfig& cfg, const CoreParams& core, Ns translation, u64 instructions,
    u64 seed);

/// Mean degradation over a set of comparisons.
[[nodiscard]] double mean_degradation(const std::vector<IpcComparison>& results);

/// End-to-end variant: treat `cpu_trace` as CPU-level accesses, filter it
/// through the cache hierarchy first (only misses and dirty writebacks
/// reach PCM), then compare IPC as above.
[[nodiscard]] IpcComparison compare_ipc_filtered(const trace::Trace& cpu_trace,
                                                 const HierarchyConfig& hierarchy,
                                                 const wl::SchemeSpec& spec,
                                                 const pcm::PcmConfig& cfg,
                                                 const CoreParams& core, Ns translation);

}  // namespace srbsg::perf
