#include "perf/request_queue.hpp"

#include "common/check.hpp"

namespace srbsg::perf {

WriteQueue::WriteQueue(std::size_t depth) : depth_(depth) {
  check(depth >= 1, "WriteQueue: depth must be positive");
}

void WriteQueue::drain_until(u64 now_ns) {
  while (!completions_.empty() && completions_.front() <= now_ns) {
    completions_.pop_front();
  }
}

u64 WriteQueue::earliest_completion() const {
  check(!completions_.empty(), "WriteQueue: empty");
  return completions_.front();
}

void WriteQueue::push(u64 done_ns) {
  check(completions_.size() < depth_, "WriteQueue: overflow");
  check(completions_.empty() || done_ns >= completions_.back(),
        "WriteQueue: non-monotone completion");
  completions_.push_back(done_ns);
}

}  // namespace srbsg::perf
