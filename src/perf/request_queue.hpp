#pragma once
// Bounded write queue with completion-time bookkeeping — the 32-entry
// memory-controller queue of the paper's gem5 platform (§V.C.4). Writes
// are posted: the core only blocks when the queue is full.

#include <cstddef>
#include <deque>

#include "common/types.hpp"

namespace srbsg::perf {

class WriteQueue {
 public:
  explicit WriteQueue(std::size_t depth);

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t occupancy() const { return completions_.size(); }
  [[nodiscard]] bool full() const { return completions_.size() >= depth_; }

  /// Retire every entry whose device service finishes at or before `now`.
  void drain_until(u64 now_ns);

  /// Earliest completion time (queue must be non-empty).
  [[nodiscard]] u64 earliest_completion() const;

  /// Record a write whose device service completes at `done_ns`
  /// (completions are monotone because the bank is serialized).
  void push(u64 done_ns);

 private:
  std::size_t depth_;
  std::deque<u64> completions_;
};

}  // namespace srbsg::perf
