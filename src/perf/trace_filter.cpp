#include "perf/trace_filter.hpp"

namespace srbsg::perf {

FilterResult filter_through_hierarchy(const trace::Trace& cpu_trace,
                                      const HierarchyConfig& cfg) {
  CacheHierarchy hierarchy(cfg);
  FilterResult res;
  res.pcm_trace = trace::Trace(cpu_trace.name() + ".pcm");

  u64 pending_gap = 0;
  u64 instructions = 0;
  for (const auto& rec : cpu_trace) {
    pending_gap += rec.instruction_gap;
    instructions += rec.instruction_gap;
    const auto traffic = hierarchy.access(rec.addr, rec.is_write);
    if (traffic.reads > 0) {
      trace::TraceRecord out;
      out.instruction_gap = static_cast<u32>(pending_gap);
      pending_gap = 0;
      out.is_write = false;
      out.addr = traffic.read_addr;
      out.data = pcm::DataClass::kMixed;
      res.pcm_trace.add(out);
    }
    if (traffic.writes > 0) {
      trace::TraceRecord out;
      out.instruction_gap = static_cast<u32>(pending_gap);
      pending_gap = 0;
      out.is_write = true;
      out.addr = traffic.write_addr;
      out.data = pcm::DataClass::kMixed;
      res.pcm_trace.add(out);
    }
  }
  res.l1 = hierarchy.l1().stats();
  res.l2 = hierarchy.l2().stats();
  res.l3 = hierarchy.l3().stats();
  const auto stats = res.pcm_trace.stats();
  if (instructions > 0) {
    res.pcm_write_mpki =
        1000.0 * static_cast<double>(stats.writes) / static_cast<double>(instructions);
  }
  return res;
}

}  // namespace srbsg::perf
