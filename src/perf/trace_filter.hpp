#pragma once
// CPU-trace → PCM-trace filtering through the cache hierarchy: the
// lifetime studies deliberately bypass caches (the paper shows attackers
// can), but normal-workload wear and performance studies are more
// faithful when only the hierarchy's misses and dirty writebacks reach
// the PCM bank.

#include "perf/cache.hpp"
#include "trace/trace.hpp"

namespace srbsg::perf {

struct FilterResult {
  trace::Trace pcm_trace;
  CacheStats l1;
  CacheStats l2;
  CacheStats l3;
  /// PCM writes per kilo-instruction after filtering.
  double pcm_write_mpki{0.0};
};

/// Runs `cpu_trace` through a fresh hierarchy. Instruction gaps are
/// redistributed onto the surviving records so MPKI accounting stays
/// consistent; reads are L3 miss fills, writes are L3 dirty writebacks.
[[nodiscard]] FilterResult filter_through_hierarchy(const trace::Trace& cpu_trace,
                                                    const HierarchyConfig& cfg);

}  // namespace srbsg::perf
