#include "sim/arena.hpp"

#include <optional>
#include <utility>

namespace srbsg::sim {

pcm::PcmBank WorkerArena::acquire(const pcm::PcmConfig& cfg, u64 total_lines) {
  std::optional<pcm::PcmBank> cached;
  {
    std::lock_guard lock(mu_);
    ++stats_.acquires;
    if (!free_.empty()) {
      // Default to the most recently released bank (warmest pages). With
      // endurance variation enabled, prefer one whose table would be
      // regenerated identically — reset() then keeps it. When no cached
      // table matches, resetting would destroy a table a later acquire
      // (same grid, different entry size) could still reuse, so build
      // fresh instead while the cache has room.
      std::size_t pick = free_.size();
      if (cfg.endurance_variation > 0.0) {
        for (std::size_t i = free_.size(); i-- > 0;) {
          const pcm::PcmConfig& c = free_[i].config();
          if (free_[i].total_lines() == total_lines && c.endurance == cfg.endurance &&
              c.endurance_variation == cfg.endurance_variation &&
              c.variation_seed == cfg.variation_seed) {
            pick = i;
            break;
          }
        }
        if (pick == free_.size() && free_.size() >= kMaxCached) pick = 0;  // evict oldest
      } else {
        pick = free_.size() - 1;
      }
      if (pick < free_.size()) {
        cached.emplace(std::move(free_[pick]));
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(pick));
        ++stats_.bank_reuses;
      } else {
        ++stats_.bank_builds;
      }
    } else {
      ++stats_.bank_builds;
    }
  }
  // Reset/construction runs outside the lock: it is the O(lines) part.
  if (cached) {
    cached->reset(cfg, total_lines);
    return std::move(*cached);
  }
  return pcm::PcmBank(cfg, total_lines);
}

void WorkerArena::release(pcm::PcmBank&& bank) {
  std::lock_guard lock(mu_);
  free_.push_back(std::move(bank));
}

WorkerArena::Stats WorkerArena::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t WorkerArena::cached() const {
  std::lock_guard lock(mu_);
  return free_.size();
}

void WorkerArena::clear() {
  std::lock_guard lock(mu_);
  free_.clear();
}

}  // namespace srbsg::sim
