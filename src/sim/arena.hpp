#pragma once
// Bank recycling for sweep workloads.
//
// Every to-failure run needs a PcmBank, and at paper scale a bank is
// ~100 MB of vectors (data + wear + optional endurance table). A naive
// sweep constructs and faults one per entry; the arena instead keeps a
// pool of retired banks and re-targets them in place via
// PcmBank::reset(cfg, total_lines), so a sweep performs O(concurrent
// workers) large allocations rather than O(entries).

#include <mutex>
#include <vector>

#include "pcm/bank.hpp"

namespace srbsg::sim {

/// Thread-safe pool of recyclable PcmBanks. acquire() hands a bank out by
/// move (reset in place when a cached one is available, freshly built
/// otherwise); release() returns it after the run. When endurance
/// variation is enabled, acquire() prefers a cached bank whose variation
/// draw parameters match so the per-line endurance table is reused
/// instead of re-sampled. The lock covers list surgery only — the
/// O(lines) reset work runs outside it, so workers do not serialize on
/// their memsets.
class WorkerArena {
 public:
  struct Stats {
    u64 acquires{0};
    u64 bank_builds{0};  ///< cache misses: full construction
    u64 bank_reuses{0};  ///< cache hits: in-place reset
  };

  WorkerArena() = default;
  WorkerArena(const WorkerArena&) = delete;
  WorkerArena& operator=(const WorkerArena&) = delete;

  /// A bank configured exactly like PcmBank(cfg, total_lines) — reset
  /// state, identical endurance draw — but usually without the
  /// allocation.
  [[nodiscard]] pcm::PcmBank acquire(const pcm::PcmConfig& cfg, u64 total_lines);

  /// Return a bank for future reuse. Dirty state is fine; the next
  /// acquire() resets it.
  void release(pcm::PcmBank&& bank);

  [[nodiscard]] Stats stats() const;

  /// Number of banks currently cached (idle).
  [[nodiscard]] std::size_t cached() const;

  /// Drop every cached bank (frees the memory).
  void clear();

 private:
  /// Cap on idle cached banks. Only reachable with endurance variation
  /// enabled on a grid of many distinct bank sizes: a variation-enabled
  /// acquire that matches no cached table builds fresh (so a cached table
  /// a later entry needs is not destroyed) until the cache holds this
  /// many banks, after which the oldest is recycled.
  static constexpr std::size_t kMaxCached = 16;

  mutable std::mutex mu_;
  std::vector<pcm::PcmBank> free_;
  Stats stats_;
};

}  // namespace srbsg::sim
