#include "sim/lifetime.hpp"

#include <algorithm>

#include "attack/bpa.hpp"
#include "attack/raa.hpp"
#include "attack/rta_probe.hpp"
#include "attack/rta_rbsg.hpp"
#include "attack/rta_sr1.hpp"
#include "attack/region_flood.hpp"
#include "attack/rta_sr2.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/arena.hpp"
#include "telemetry/collector.hpp"

namespace srbsg::sim {

std::string_view to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kRaa:
      return "RAA";
    case AttackKind::kBpa:
      return "BPA";
    case AttackKind::kRta:
      return "RTA";
  }
  return "?";
}

namespace {

/// Writes a BPA can spend on one address before concluding it will not be
/// remapped soon: roughly two remap windows of the scheme.
u64 bpa_hammer_cap(const wl::SchemeSpec& spec) {
  switch (spec.kind) {
    case wl::SchemeKind::kNone:
      return spec.lines;  // nothing ever remaps; cap arbitrarily
    case wl::SchemeKind::kStartGap:
      return 2 * (spec.lines + 1) * spec.inner_interval;
    case wl::SchemeKind::kRbsg: {
      const u64 m = spec.lines / spec.regions;
      return 2 * (m + 1) * spec.inner_interval;
    }
    case wl::SchemeKind::kSr1:
      // One swap per address per round; a round is N steps of ψ writes.
      return 2 * spec.lines * spec.inner_interval;
    case wl::SchemeKind::kMultiWaySr: {
      const u64 m = spec.lines / spec.regions;
      return 2 * m * spec.inner_interval;
    }
    case wl::SchemeKind::kSr2:
    case wl::SchemeKind::kSecurityRbsg: {
      // The inner level remaps within the sub-region long before the
      // outer round completes.
      const u64 m = spec.lines / spec.regions;
      return 2 * (m + 1) * spec.inner_interval;
    }
    case wl::SchemeKind::kTable:
      // The hottest line swaps at the next interval boundary.
      return 4 * spec.inner_interval;
  }
  return 1u << 20;
}

/// Runs the attack, routing it through a collector-pooled Recorder when
/// the config asks for telemetry (the recorder is absorbed back, keyed
/// by the sweep entry, before the outcome is returned).
attack::AttackResult run_attack_traced(const LifetimeConfig& cfg, ctl::MemoryController& mc,
                                       attack::Attacker& attacker) {
  if (cfg.telemetry == nullptr) {
    return attack::run_attack(mc, attacker, cfg.write_budget);
  }
  auto rec = cfg.telemetry->acquire();
  attack::HarnessOptions opts;
  opts.recorder = rec.get();
  auto result = attack::run_attack(mc, attacker, cfg.write_budget, opts);
  telemetry::RunMeta meta;
  meta.entry = cfg.telemetry_entry;
  meta.scheme = std::string(mc.scheme().name());
  meta.attack = std::string(to_string(cfg.attack));
  meta.seed = cfg.seed;
  cfg.telemetry->absorb(meta, std::move(rec));
  return result;
}

}  // namespace

std::unique_ptr<attack::Attacker> make_attacker(const LifetimeConfig& cfg) {
  const auto& s = cfg.scheme;
  switch (cfg.attack) {
    case AttackKind::kRaa: {
      // A seed-derived target rather than LA 0: the cubing Feistel's
      // diffusion is measurably weaker on degenerate inputs (all-zero
      // address), which would bias scheme comparisons. See EXPERIMENTS.md.
      u64 sm = cfg.seed ^ 0x5AA0u;
      return std::make_unique<attack::RepeatedAddressAttack>(
          La{splitmix64(sm) % s.lines});
    }
    case AttackKind::kBpa:
      return std::make_unique<attack::BirthdayParadoxAttack>(cfg.seed, bpa_hammer_cap(s));
    case AttackKind::kRta:
      break;
  }
  // RTA: pick the attack model matching the scheme.
  switch (s.kind) {
    case wl::SchemeKind::kNone:
      return std::make_unique<attack::RepeatedAddressAttack>(La{0});
    case wl::SchemeKind::kStartGap: {
      attack::RtaRbsgParams p;
      p.lines = s.lines;
      p.regions = 1;
      p.interval = s.inner_interval;
      p.endurance = cfg.pcm.endurance;
      return std::make_unique<attack::RtaRbsgAttacker>(p);
    }
    case wl::SchemeKind::kRbsg: {
      attack::RtaRbsgParams p;
      p.lines = s.lines;
      p.regions = s.regions;
      p.interval = s.inner_interval;
      p.endurance = cfg.pcm.endurance;
      return std::make_unique<attack::RtaRbsgAttacker>(p);
    }
    case wl::SchemeKind::kSr1: {
      attack::RtaSr1Params p;
      p.lines = s.lines;
      p.interval = s.inner_interval;
      p.endurance = cfg.pcm.endurance;
      return std::make_unique<attack::RtaSr1Attacker>(p);
    }
    case wl::SchemeKind::kSr2: {
      attack::RtaSr2Params p;
      p.lines = s.lines;
      p.sub_regions = s.regions;
      p.inner_interval = s.inner_interval;
      p.outer_interval = s.outer_interval;
      p.endurance = cfg.pcm.endurance;
      return std::make_unique<attack::RtaSr2Attacker>(p);
    }
    case wl::SchemeKind::kMultiWaySr: {
      // §III.E: the static LA→region partition makes key detection
      // unnecessary — flooding one region is the whole attack.
      attack::RegionFloodParams p;
      p.lines = s.lines;
      p.regions = s.regions;
      p.target_region = 0;
      p.chunk = std::max<u64>(s.inner_interval, 16);
      return std::make_unique<attack::StaticRegionFloodAttack>(p);
    }
    case wl::SchemeKind::kTable:
      // §II.B: deterministic table schemes fall to plain hammering (this
      // implementation ping-pongs the attacked line between two slots).
      return std::make_unique<attack::RepeatedAddressAttack>(La{0});
    case wl::SchemeKind::kSecurityRbsg: {
      attack::RtaProbeParams p;
      p.lines = s.lines;
      p.outer_interval = s.outer_interval;
      p.probe_bit = 0;
      p.seed = cfg.seed;
      p.hammer_cap = bpa_hammer_cap(s);
      return std::make_unique<attack::RtaProbeAttacker>(p);
    }
  }
  throw CheckFailure("make_attacker: unhandled scheme kind");
}

LifetimeOutcome run_lifetime(const LifetimeConfig& cfg) {
  check(cfg.pcm.line_count == cfg.scheme.lines, "run_lifetime: scheme/pcm size mismatch");
  ctl::MemoryController mc(cfg.pcm, wl::make_scheme(cfg.scheme));
  mc.set_engine_tier(cfg.engine);
  const auto attacker = make_attacker(cfg);
  LifetimeOutcome out;
  out.result = run_attack_traced(cfg, mc, *attacker);
  out.wear = compute_wear_metrics(mc.bank().wear_counts());
  return out;
}

LifetimeOutcome run_lifetime(const LifetimeConfig& cfg, WorkerArena& arena) {
  check(cfg.pcm.line_count == cfg.scheme.lines, "run_lifetime: scheme/pcm size mismatch");
  auto scheme = wl::make_scheme(cfg.scheme);
  const u64 physical = scheme->physical_lines();
  ctl::MemoryController mc(arena.acquire(cfg.pcm, physical), std::move(scheme));
  mc.set_engine_tier(cfg.engine);
  const auto attacker = make_attacker(cfg);
  LifetimeOutcome out;
  out.result = run_attack_traced(cfg, mc, *attacker);
  out.wear = compute_wear_metrics(mc.bank().wear_counts());
  arena.release(mc.release_bank());
  return out;
}

}  // namespace srbsg::sim
