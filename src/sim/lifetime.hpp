#pragma once
// To-failure lifetime simulation: builds a controller from a scheme spec,
// picks the right attacker implementation, and runs until the first line
// dies (or a write budget runs out).

#include <memory>

#include "attack/harness.hpp"
#include "common/stats.hpp"
#include "wl/factory.hpp"

namespace srbsg::telemetry {
class Collector;
}  // namespace srbsg::telemetry

namespace srbsg::sim {

class WorkerArena;  // sim/arena.hpp

enum class AttackKind : u8 {
  kRaa,
  kBpa,
  kRta,       ///< scheme-specific RTA variant (probe for Security RBSG)
};

[[nodiscard]] std::string_view to_string(AttackKind kind);

struct LifetimeConfig {
  pcm::PcmConfig pcm;
  wl::SchemeSpec scheme;
  AttackKind attack{AttackKind::kRaa};
  u64 write_budget{u64{1} << 40};
  u64 seed{1};
  /// write_cycle engine tier for the run. All tiers produce bit-identical
  /// outcomes (ctest -L verify guards this); epoch is the fast path for
  /// periodic attacks, windowed the general default.
  wl::EngineTier engine{wl::EngineTier::kWindowed};
  /// Optional trace collection: the run borrows a Recorder from the
  /// collector for the attack and absorbs it back (keyed by
  /// `telemetry_entry`) once the run finishes. Not owned; nullptr (the
  /// default) runs without telemetry.
  telemetry::Collector* telemetry{nullptr};
  /// Trace key for this run — run_sweep assigns the sweep entry index.
  u64 telemetry_entry{0};
};

struct LifetimeOutcome {
  attack::AttackResult result;
  WearMetrics wear;  ///< over all physical lines at the end of the run
};

/// The scheme-appropriate attacker: RTA resolves to the RBSG / SR1 / SR2
/// models of §III, or to the feasibility probe for Security RBSG.
[[nodiscard]] std::unique_ptr<attack::Attacker> make_attacker(const LifetimeConfig& cfg);

[[nodiscard]] LifetimeOutcome run_lifetime(const LifetimeConfig& cfg);

/// Arena path: identical results to run_lifetime(cfg), but the bank is
/// borrowed from (and returned to) `arena` instead of being constructed
/// per call — the per-run cost drops from O(bank size) allocation +
/// endurance-table sampling to an in-place reset.
[[nodiscard]] LifetimeOutcome run_lifetime(const LifetimeConfig& cfg, WorkerArena& arena);

}  // namespace srbsg::sim
