#include "sim/sweep.hpp"

#include "common/check.hpp"

namespace srbsg::sim {

std::vector<SweepEntry> run_sweep(std::span<const LifetimeConfig> configs, ThreadPool& pool) {
  std::vector<SweepEntry> entries(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    entries[i].config = configs[i];
  }
  parallel_for(pool, configs.size(),
               [&entries](std::size_t i) { entries[i].outcome = run_lifetime(entries[i].config); });
  return entries;
}

double average_lifetime_ns(const LifetimeConfig& base, u64 seeds, ThreadPool& pool) {
  check(seeds >= 1, "average_lifetime_ns: need at least one seed");
  std::vector<LifetimeConfig> configs(seeds, base);
  for (u64 s = 0; s < seeds; ++s) {
    configs[s].seed = base.seed + s;
    configs[s].scheme.seed = base.scheme.seed + s;
  }
  const auto entries = run_sweep(configs, pool);
  double sum = 0.0;
  u64 counted = 0;
  for (const auto& e : entries) {
    if (e.outcome.result.succeeded) {
      sum += static_cast<double>(e.outcome.result.lifetime.value());
      ++counted;
    }
  }
  check(counted > 0, "average_lifetime_ns: no run reached failure within budget");
  return sum / static_cast<double>(counted);
}

}  // namespace srbsg::sim
