#include "sim/sweep.hpp"

#include "common/check.hpp"

namespace srbsg::sim {

std::vector<SweepEntry> run_sweep(std::span<const LifetimeConfig> configs, ThreadPool& pool) {
  WorkerArena arena;
  return run_sweep(configs, pool, arena);
}

std::vector<SweepEntry> run_sweep(std::span<const LifetimeConfig> configs, ThreadPool& pool,
                                  WorkerArena& arena) {
  std::vector<SweepEntry> entries(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    entries[i].config = configs[i];
    // Trace runs are keyed by sweep position so JSONL output is stable
    // across worker counts and completion order.
    entries[i].config.telemetry_entry = i;
  }
  parallel_for(pool, configs.size(), [&entries, &arena](std::size_t i) {
    entries[i].outcome = run_lifetime(entries[i].config, arena);
  });
  return entries;
}

namespace {

AverageLifetime average_over(const std::vector<SweepEntry>& entries) {
  AverageLifetime avg;
  avg.seeds = entries.size();
  double sum = 0.0;
  for (const auto& e : entries) {
    if (e.outcome.result.succeeded) {
      sum += static_cast<double>(e.outcome.result.lifetime.value());
      ++avg.counted;
    }
  }
  if (avg.counted > 0) avg.mean_ns = sum / static_cast<double>(avg.counted);
  return avg;
}

std::vector<LifetimeConfig> seeded_replicas(const LifetimeConfig& base, u64 seeds) {
  check(seeds >= 1, "average_lifetime: need at least one seed");
  std::vector<LifetimeConfig> configs(seeds, base);
  for (u64 s = 0; s < seeds; ++s) {
    configs[s].seed = base.seed + s;
    configs[s].scheme.seed = base.scheme.seed + s;
  }
  return configs;
}

}  // namespace

AverageLifetime average_lifetime(const LifetimeConfig& base, u64 seeds, ThreadPool& pool) {
  WorkerArena arena;
  return average_lifetime(base, seeds, pool, arena);
}

AverageLifetime average_lifetime(const LifetimeConfig& base, u64 seeds, ThreadPool& pool,
                                 WorkerArena& arena) {
  return average_over(run_sweep(seeded_replicas(base, seeds), pool, arena));
}

double average_lifetime_ns(const LifetimeConfig& base, u64 seeds, ThreadPool& pool) {
  const AverageLifetime avg = average_lifetime(base, seeds, pool);
  check(avg.counted > 0, "average_lifetime_ns: no run reached failure within budget");
  return avg.mean_ns;
}

}  // namespace srbsg::sim
