#pragma once
// Parameter sweeps over (scheme config × attack × seed) — the engine
// behind the figure benches. Runs are independent, so they fan out over a
// thread pool; banks are recycled through a WorkerArena so a sweep
// performs O(concurrent workers) large allocations, not O(entries).

#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/arena.hpp"
#include "sim/lifetime.hpp"

namespace srbsg::sim {

struct SweepEntry {
  LifetimeConfig config;
  LifetimeOutcome outcome;
};

/// Runs every config; results are in input order. Banks are recycled
/// through an internal arena that lives for the duration of the call.
[[nodiscard]] std::vector<SweepEntry> run_sweep(std::span<const LifetimeConfig> configs,
                                                ThreadPool& pool);

/// Same, recycling banks through a caller-owned arena — use this when
/// issuing several sweeps in a row (bench grids) so the bank pool
/// persists across calls.
[[nodiscard]] std::vector<SweepEntry> run_sweep(std::span<const LifetimeConfig> configs,
                                                ThreadPool& pool, WorkerArena& arena);

/// Lifetime averaged over seeded replicas of one config (paper Fig. 12
/// averages five random keys per configuration). `counted` < `seeds`
/// means some replicas exhausted their write budget before any line
/// failed; the mean is over the counted replicas only, so callers must
/// inspect complete() instead of trusting a silently biased average.
struct AverageLifetime {
  double mean_ns{0.0};  ///< over the replicas that reached failure
  u64 counted{0};       ///< replicas that reached failure within budget
  u64 seeds{0};         ///< replicas requested
  [[nodiscard]] bool complete() const { return counted == seeds; }
};

[[nodiscard]] AverageLifetime average_lifetime(const LifetimeConfig& base, u64 seeds,
                                               ThreadPool& pool);
[[nodiscard]] AverageLifetime average_lifetime(const LifetimeConfig& base, u64 seeds,
                                               ThreadPool& pool, WorkerArena& arena);

/// Back-compat wrapper around average_lifetime(): returns the mean alone
/// and throws CheckFailure when no replica reached failure. Partial
/// convergence is not detectable through this interface — prefer
/// average_lifetime() in new code.
[[nodiscard]] double average_lifetime_ns(const LifetimeConfig& base, u64 seeds,
                                         ThreadPool& pool);

}  // namespace srbsg::sim
