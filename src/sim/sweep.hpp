#pragma once
// Parameter sweeps over (scheme config × attack × seed) — the engine
// behind the figure benches. Runs are independent, so they fan out over a
// thread pool.

#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/lifetime.hpp"

namespace srbsg::sim {

struct SweepEntry {
  LifetimeConfig config;
  LifetimeOutcome outcome;
};

/// Runs every config; results are in input order.
[[nodiscard]] std::vector<SweepEntry> run_sweep(std::span<const LifetimeConfig> configs,
                                                ThreadPool& pool);

/// Averages the lifetime over `seeds` seeded replicas of `base`
/// (paper Fig. 12 averages five random keys per configuration).
[[nodiscard]] double average_lifetime_ns(const LifetimeConfig& base, u64 seeds,
                                         ThreadPool& pool);

}  // namespace srbsg::sim
