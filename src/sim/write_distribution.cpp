#include "sim/write_distribution.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "controller/memory_controller.hpp"

namespace srbsg::sim {

DistributionResult raa_write_distribution(const pcm::PcmConfig& cfg,
                                          const wl::SchemeSpec& spec, u64 writes,
                                          std::size_t points) {
  check(cfg.line_count == spec.lines, "write_distribution: scheme/pcm size mismatch");
  // Push the endurance out of reach so the run never "fails".
  pcm::PcmConfig unlimited = cfg;
  unlimited.endurance = std::max<u64>(cfg.endurance, writes + 1);

  ctl::MemoryController mc(unlimited, wl::make_scheme(spec));
  constexpr u64 kChunk = u64{1} << 22;
  u64 issued = 0;
  while (issued < writes) {
    const u64 n = std::min(kChunk, writes - issued);
    const auto out = mc.write_repeated(La{0}, pcm::LineData::mixed(0x5A), n);
    issued += out.writes_applied;
    check(out.writes_applied > 0, "write_distribution: no forward progress");
  }

  DistributionResult res;
  const auto counts = mc.bank().wear_counts();
  res.wear.assign(counts.begin(), counts.end());
  res.cumulative = normalized_cumulative(res.wear, points);
  res.linearity_deviation = cumulative_linearity_deviation(res.cumulative);
  res.metrics = compute_wear_metrics(res.wear);
  return res;
}

}  // namespace srbsg::sim
