#pragma once
// Write-distribution study (paper Fig. 16): how a scheme spreads a
// pinned-address write stream across the physical space.

#include <vector>

#include "common/stats.hpp"
#include "pcm/config.hpp"
#include "wl/factory.hpp"

namespace srbsg::sim {

struct DistributionResult {
  std::vector<u64> wear;           ///< per physical line
  std::vector<double> cumulative;  ///< normalized accumulated writes (Fig. 16 y-axis)
  double linearity_deviation{0.0};  ///< max |curve - diagonal| (0 = perfectly even)
  WearMetrics metrics;
};

/// Issues `writes` RAA writes (single pinned logical address) through the
/// scheme and returns the wear landscape. The endurance limit is ignored
/// — the study measures distribution, not failure.
[[nodiscard]] DistributionResult raa_write_distribution(const pcm::PcmConfig& cfg,
                                                        const wl::SchemeSpec& spec,
                                                        u64 writes, std::size_t points);

}  // namespace srbsg::sim
