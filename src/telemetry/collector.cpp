#include "telemetry/collector.hpp"

#include <algorithm>
#include <fstream>
#include <locale>
#include <ostream>
#include <sstream>
#include <tuple>

#include "common/check.hpp"

namespace srbsg::telemetry {

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF] << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  // Round-trippable and locale-independent; JSONL must be deterministic.
  std::ostringstream tmp;
  tmp.imbue(std::locale::classic());
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

/// kGlobalDomain serializes as -1: friendlier for the Python tooling
/// than the 2^32-1 sentinel.
void write_domain(std::ostream& os, u32 domain) {
  if (domain == kGlobalDomain) {
    os << "-1";
  } else {
    os << domain;
  }
}

/// Non-zero counters of `shard`, sorted by registry name.
std::vector<std::pair<std::string, u64>> named_counters(const CounterShard& shard) {
  const auto& reg = CounterRegistry::global();
  std::vector<std::pair<std::string, u64>> out;
  for (std::size_t i = 0; i < shard.size(); ++i) {
    const u64 v = shard.value(static_cast<u32>(i));
    if (v != 0) out.emplace_back(reg.name(static_cast<u32>(i)), v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void write_counter_object(std::ostream& os, const CounterShard& shard) {
  os << "{";
  bool first = true;
  for (const auto& [name, value] : named_counters(shard)) {
    if (!first) os << ",";
    first = false;
    write_escaped(os, name);
    os << ":" << value;
  }
  os << "}";
}

/// Body of a "hist"/"hist_merged" record after the caller's leading
/// fields: summary statistics plus the sparse [index, lower bound,
/// count] bucket triplets (schema 2).
void write_hist_fields(std::ostream& os, std::string_view name, const LogHistogram& h) {
  os << ",\"name\":";
  write_escaped(os, name);
  os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
     << ",\"max\":" << h.max() << ",\"p50\":" << h.quantile(0.5)
     << ",\"p99\":" << h.quantile(0.99) << ",\"p999\":" << h.quantile(0.999) << ",\"buckets\":[";
  bool first = true;
  const auto& buckets = h.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "[" << i << "," << LogHistogram::bucket_lo(static_cast<u32>(i)) << "," << buckets[i]
       << "]";
  }
  os << "]}\n";
}

}  // namespace

Collector::Collector(const TelemetryConfig& cfg) : cfg_(cfg) {}

std::unique_ptr<Recorder> Collector::acquire() {
  const std::scoped_lock lock(mu_);
  if (!pool_.empty()) {
    auto rec = std::move(pool_.back());
    pool_.pop_back();
    rec->reset();
    return rec;
  }
  return std::make_unique<Recorder>(cfg_);
}

void Collector::absorb(const RunMeta& meta, std::unique_ptr<Recorder> rec) {
  check(rec != nullptr, "Collector::absorb: null recorder");
  RunRecord run;
  run.meta = meta;
  run.schemes = rec->schemes();
  const EventRing& ring = rec->events();
  run.events.reserve(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) run.events.push_back(ring.at(i));
  // Span ends are stamped at op entry plus an intra-op latency offset,
  // so emission order is not time order; a stable sort restores the
  // timeline while preserving same-instant emission order (which is
  // what the RemapTriggered → GapMoved attribution rule checks).
  std::stable_sort(run.events.begin(), run.events.end(),
                   [](const Event& x, const Event& y) { return x.time_ns < y.time_ns; });
  run.dropped = ring.dropped();
  run.snapshots = rec->snapshots();
  run.shard = rec->shard();
  run.hist_write = rec->hist_write();
  run.hist_stall = rec->hist_stall();
  const std::scoped_lock lock(mu_);
  merged_.merge(run.shard);
  merged_write_.merge(run.hist_write);
  merged_stall_.merge(run.hist_stall);
  runs_.push_back(std::move(run));
  pool_.push_back(std::move(rec));
}

std::size_t Collector::runs() const {
  const std::scoped_lock lock(mu_);
  return runs_.size();
}

u64 Collector::total_events() const {
  const std::scoped_lock lock(mu_);
  u64 total = 0;
  for (const auto& run : runs_) total += run.dropped + run.events.size();
  return total;
}

u64 Collector::merged(std::string_view name) const {
  const auto& reg = CounterRegistry::global();
  const std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < merged_.size(); ++i) {
    if (reg.name(static_cast<u32>(i)) == name) return merged_.value(static_cast<u32>(i));
  }
  return 0;
}

void Collector::write_jsonl(std::ostream& os) const {
  const std::scoped_lock lock(mu_);
  // Deterministic order: sort run indices by (entry, scheme, seed) —
  // absorb order depends on worker scheduling.
  std::vector<std::size_t> order(runs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    const RunMeta& ma = runs_[a].meta;
    const RunMeta& mb = runs_[b].meta;
    return std::tie(ma.entry, ma.scheme, ma.seed) < std::tie(mb.entry, mb.scheme, mb.seed);
  });

  u64 total_events = 0;
  for (const auto& run : runs_) total_events += run.dropped + run.events.size();
  os << "{\"type\":\"header\",\"telemetry_schema\":" << kTelemetrySchemaVersion
     << ",\"generator\":\"srbsg\",\"runs\":" << runs_.size() << ",\"events\":" << total_events
     << "}\n";

  for (const std::size_t idx : order) {
    const RunRecord& run = runs_[idx];
    os << "{\"type\":\"run\",\"entry\":" << run.meta.entry << ",\"scheme\":";
    write_escaped(os, run.meta.scheme);
    os << ",\"attack\":";
    write_escaped(os, run.meta.attack);
    os << ",\"seed\":" << run.meta.seed << ",\"events\":" << run.dropped + run.events.size()
       << ",\"retained\":" << run.events.size() << ",\"dropped\":" << run.dropped
       << ",\"snapshots\":" << run.snapshots.size() << "}\n";

    for (std::size_t i = 0; i < run.events.size(); ++i) {
      const Event& e = run.events[i];
      // seq is the emission ordinal, so consumers can see a gap where
      // ring overflow dropped the oldest events.
      os << "{\"type\":\"event\",\"entry\":" << run.meta.entry << ",\"seq\":" << run.dropped + i
         << ",\"t\":" << e.time_ns << ",\"ev\":";
      write_escaped(os, to_string(e.type));
      os << ",\"scheme\":";
      const std::size_t sid = e.scheme;
      write_escaped(os, sid < run.schemes.size() ? std::string_view(run.schemes[sid])
                                                 : std::string_view("?"));
      os << ",\"domain\":";
      write_domain(os, e.domain);
      os << ",\"a\":" << e.a << ",\"b\":" << e.b;
      if (e.type == EventType::kSpanBegin || e.type == EventType::kSpanEnd) {
        // Decoded span names ride along with the raw a/b payload so the
        // Python tooling never needs the enum tables.
        os << ",\"span\":";
        write_escaped(os, to_string(static_cast<SpanKind>(e.a)));
        if (static_cast<SpanKind>(e.a) == SpanKind::kExactReplayFallback) {
          os << ",\"reason\":";
          write_escaped(os, to_string(static_cast<FallbackReason>(e.b)));
        }
      }
      os << "}\n";
    }

    for (const WearSnapshot& snap : run.snapshots) {
      os << "{\"type\":\"wear_snapshot\",\"entry\":" << run.meta.entry << ",\"t\":" << snap.time_ns
         << ",\"writes\":" << snap.writes << ",\"mean\":";
      write_double(os, snap.wear.mean);
      os << ",\"cov\":";
      write_double(os, snap.wear.coefficient_of_variation);
      os << ",\"gini\":";
      write_double(os, snap.wear.gini);
      os << ",\"max_over_mean\":";
      write_double(os, snap.wear.max_over_mean);
      os << ",\"max\":" << snap.wear.max << ",\"min\":" << snap.wear.min << ",\"hist_lo\":";
      write_double(os, snap.hist_lo);
      os << ",\"hist_hi\":";
      write_double(os, snap.hist_hi);
      os << ",\"hist\":[";
      for (std::size_t i = 0; i < snap.hist_counts.size(); ++i) {
        if (i > 0) os << ",";
        os << snap.hist_counts[i];
      }
      os << "]}\n";
    }

    os << "{\"type\":\"hist\",\"entry\":" << run.meta.entry;
    write_hist_fields(os, "write_ns", run.hist_write);
    os << "{\"type\":\"hist\",\"entry\":" << run.meta.entry;
    write_hist_fields(os, "stall_ns", run.hist_stall);

    os << "{\"type\":\"counters\",\"entry\":" << run.meta.entry << ",\"counters\":";
    write_counter_object(os, run.shard);
    os << "}\n";
  }

  os << "{\"type\":\"counters_merged\",\"counters\":";
  write_counter_object(os, merged_);
  os << "}\n";
  os << "{\"type\":\"hist_merged\"";
  write_hist_fields(os, "write_ns", merged_write_);
  os << "{\"type\":\"hist_merged\"";
  write_hist_fields(os, "stall_ns", merged_stall_);
}

bool Collector::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_jsonl(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace srbsg::telemetry
