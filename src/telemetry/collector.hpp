#pragma once
// Joins per-run Recorders into one deterministic JSONL trace.
//
// Sweep workers each own the Recorder of the run they are executing
// (handed out by acquire(), pooled like sim::WorkerArena banks); at the
// join the worker calls absorb(), which folds the shard into the merged
// counters under a mutex and files the run's events keyed by its sweep
// entry index. Serialization sorts runs by entry and counters by name,
// so the JSONL output is byte-identical regardless of worker count or
// completion order.

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace srbsg::telemetry {

/// Identity of one run inside a trace (the sweep entry index plus the
/// labels the forensics tooling groups by).
struct RunMeta {
  u64 entry{0};
  std::string scheme;
  std::string attack;
  u64 seed{0};
};

/// Version of the JSONL layout written by Collector::write_jsonl and
/// embedded in BENCH JSONs; bump when records change incompatibly.
/// Schema 2 (over 1): SpanBegin/SpanEnd events carry decoded "span" /
/// "reason" names, and each run (plus the merged view) emits "hist"
/// records with the stall-attribution latency histograms.
inline constexpr int kTelemetrySchemaVersion = 2;

class Collector {
 public:
  explicit Collector(const TelemetryConfig& cfg = TelemetryConfig{});

  /// Borrow a freshly reset Recorder (recycled from the pool when one
  /// is available).
  [[nodiscard]] std::unique_ptr<Recorder> acquire();

  /// Fold a finished run back in: shard into the merged counters, the
  /// event ring / snapshots into the run table, recorder into the pool.
  void absorb(const RunMeta& meta, std::unique_ptr<Recorder> rec);

  [[nodiscard]] std::size_t runs() const;
  [[nodiscard]] u64 total_events() const;
  /// Merged value of a counter by registry name (0 when never bumped).
  [[nodiscard]] u64 merged(std::string_view name) const;

  /// Serializes header, per-run records, events, snapshots, histograms
  /// and counters as JSON Lines (telemetry_schema 2).
  void write_jsonl(std::ostream& os) const;

  /// write_jsonl to `path`; returns false (without throwing) when the
  /// file cannot be opened, so bench binaries can report and exit.
  [[nodiscard]] bool write_file(const std::string& path) const;

  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

 private:
  struct RunRecord {
    RunMeta meta;
    std::vector<std::string> schemes;
    /// Retained events, stable-sorted by timestamp at absorb: span ends
    /// carry intra-op latency offsets, so ring (emission) order is not
    /// time order; the stable sort keeps same-instant emission order.
    std::vector<Event> events;
    u64 dropped{0};
    std::vector<WearSnapshot> snapshots;
    CounterShard shard;
    LogHistogram hist_write;
    LogHistogram hist_stall;
  };

  mutable std::mutex mu_;
  TelemetryConfig cfg_;
  std::vector<std::unique_ptr<Recorder>> pool_;
  std::vector<RunRecord> runs_;
  CounterShard merged_;
  LogHistogram merged_write_;
  LogHistogram merged_stall_;
};

}  // namespace srbsg::telemetry
