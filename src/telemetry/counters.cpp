#include "telemetry/counters.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace srbsg::telemetry {

CounterRegistry& CounterRegistry::global() {
  static CounterRegistry registry;
  return registry;
}

u32 CounterRegistry::register_slot(std::string_view name, CounterKind kind) {
  check(!name.empty(), "CounterRegistry: empty counter name");
  const std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) {
      check(entries_[i].kind == kind,
            "CounterRegistry: name re-registered under a different kind");
      return static_cast<u32>(i);
    }
  }
  entries_.push_back(Entry{std::string(name), kind});
  return static_cast<u32>(entries_.size() - 1);
}

std::size_t CounterRegistry::size() const {
  const std::scoped_lock lock(mu_);
  return entries_.size();
}

const CounterRegistry::Entry& CounterRegistry::entry(u32 slot) const {
  check_lt(static_cast<std::size_t>(slot), entries_.size(), "CounterRegistry: slot out of range");
  return entries_[slot];
}

std::string CounterRegistry::name(u32 slot) const {
  const std::scoped_lock lock(mu_);
  return entry(slot).name;
}

CounterKind CounterRegistry::kind(u32 slot) const {
  const std::scoped_lock lock(mu_);
  return entry(slot).kind;
}

const CoreCounters& CoreCounters::get() {
  // One registration burst under the Meyers-singleton lock, so the core
  // slots occupy a stable, deterministic prefix of the registry.
  static const CoreCounters core = [] {
    auto& reg = CounterRegistry::global();
    CoreCounters c;
    c.writes = reg.register_slot("ctl.writes", CounterKind::kCounter);
    c.service_ns = reg.register_slot("ctl.service_ns", CounterKind::kCounter);
    c.movements = reg.register_slot("ctl.movements", CounterKind::kCounter);
    c.max_write_ns = reg.register_slot("ctl.max_write_ns", CounterKind::kGauge);
    c.remap_triggers = reg.register_slot("wl.remap_triggers", CounterKind::kCounter);
    c.gap_moves = reg.register_slot("wl.gap_moves", CounterKind::kCounter);
    c.rekeys = reg.register_slot("wl.rekeys", CounterKind::kCounter);
    c.detector_trips = reg.register_slot("ctl.detector_trips", CounterKind::kCounter);
    c.line_failures = reg.register_slot("ctl.line_failures", CounterKind::kCounter);
    c.batch_chunks = reg.register_slot("wl.batch_chunks", CounterKind::kCounter);
    c.probes = reg.register_slot("attack.probes", CounterKind::kCounter);
    c.epoch_jumps = reg.register_slot("wl.epoch_jumps", CounterKind::kCounter);
    c.wear_snapshots = reg.register_slot("tel.wear_snapshots", CounterKind::kCounter);
    c.spans = reg.register_slot("tel.spans", CounterKind::kCounter);
    c.epoch_fallbacks = reg.register_slot("wl.epoch_fallbacks", CounterKind::kCounter);
    c.stall_ns = reg.register_slot("ctl.stall_ns", CounterKind::kCounter);
    return c;
  }();
  return core;
}

void CounterShard::grow(u32 slot) {
  const std::size_t registered = CounterRegistry::global().size();
  const std::size_t need = std::max<std::size_t>(slot + 1, registered);
  values_.resize(need, 0);
}

void CounterShard::merge(const CounterShard& other) {
  if (other.values_.empty()) return;
  if (values_.size() < other.values_.size()) values_.resize(other.values_.size(), 0);
  const auto& reg = CounterRegistry::global();
  for (std::size_t i = 0; i < other.values_.size(); ++i) {
    if (other.values_[i] == 0) continue;
    if (reg.kind(static_cast<u32>(i)) == CounterKind::kGauge) {
      values_[i] = std::max(values_[i], other.values_[i]);
    } else {
      values_[i] += other.values_[i];
    }
  }
}

}  // namespace srbsg::telemetry
