#pragma once
// Named counter registry with near-zero-cost hot-path increments.
//
// Counters are registered once (by name) against the process-wide
// registry and resolved to dense `u32` slot handles; the hot path is a
// plain `u64` add into a per-recorder shard indexed by handle — no map
// lookup, no atomics, no lock. Shards live one-per-worker (each sweep
// worker owns the Recorder of the run it is executing) and are merged
// at sweep joins under the Collector's mutex, mirroring how
// sim::WorkerArena scopes bank ownership.
//
// Two kinds: monotonic counters merge by sum; gauges merge by max
// (used for high-water marks such as the slowest single write).

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace srbsg::telemetry {

enum class CounterKind : u8 {
  kCounter,  ///< monotonic; shards merge by sum
  kGauge,    ///< high-water mark; shards merge by max
};

/// Process-wide name→slot table. Registration is idempotent: the same
/// name always resolves to the same slot (the kind must match). Slot
/// numbering is registration-order dependent, so serialization sorts by
/// name — output never depends on which thread registered first.
class CounterRegistry {
 public:
  [[nodiscard]] static CounterRegistry& global();

  /// Returns the slot for `name`, registering it on first use. Throws
  /// CheckFailure when re-registering under a different kind.
  [[nodiscard]] u32 register_slot(std::string_view name, CounterKind kind);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::string name(u32 slot) const;
  [[nodiscard]] CounterKind kind(u32 slot) const;

 private:
  struct Entry {
    std::string name;
    CounterKind kind{CounterKind::kCounter};
  };

  [[nodiscard]] const Entry& entry(u32 slot) const;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // slot-indexed, append-only
};

/// The built-in slots every Recorder increments. Resolved once, in one
/// deterministic registration burst, on first use.
struct CoreCounters {
  u32 writes;           ///< logical writes applied through the controller
  u32 service_ns;       ///< observed service time (data writes + stalls)
  u32 movements;        ///< remap movements folded into service_ns
  u32 max_write_ns;     ///< gauge: slowest single write (per-write path)
  u32 remap_triggers;   ///< RemapTriggered events emitted
  u32 gap_moves;        ///< GapMoved events emitted
  u32 rekeys;           ///< KeyRerandomized events emitted
  u32 detector_trips;   ///< DetectorStateChange events emitted
  u32 line_failures;    ///< LineFailed events emitted
  u32 batch_chunks;     ///< BatchChunkApplied events emitted
  u32 probes;           ///< ProbeClassified events emitted
  u32 epoch_jumps;      ///< EpochApplied events emitted
  u32 wear_snapshots;   ///< WearSnapshot records taken
  u32 spans;            ///< SpanBegin events emitted
  u32 epoch_fallbacks;  ///< ExactReplayFallback spans opened
  u32 stall_ns;         ///< remap-stall share of ctl.service_ns

  [[nodiscard]] static const CoreCounters& get();
};

/// Per-worker slot array. Sized lazily against the registry, so slots
/// registered after the shard was created still land correctly.
class CounterShard {
 public:
  void add(u32 slot, u64 n) {
    if (slot >= values_.size()) grow(slot);
    values_[slot] += n;
  }

  void gauge_max(u32 slot, u64 v) {
    if (slot >= values_.size()) grow(slot);
    if (v > values_[slot]) values_[slot] = v;
  }

  [[nodiscard]] u64 value(u32 slot) const {
    return slot < values_.size() ? values_[slot] : 0;
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  void clear() { values_.assign(values_.size(), 0); }

  /// Folds `other` into this shard, respecting each slot's kind.
  void merge(const CounterShard& other);

 private:
  void grow(u32 slot);

  std::vector<u64> values_;
};

}  // namespace srbsg::telemetry
