#include "telemetry/histogram.hpp"

#include <algorithm>
#include <bit>

namespace srbsg::telemetry {

u32 LogHistogram::bucket_index(u64 v) {
  if (v < (u64{1} << kSubBucketBits)) return static_cast<u32>(v);
  // Octave of the leading bit, then the next kSubBucketBits bits select
  // the sub-bucket; the layout is continuous: bucket_lo(idx + 1) is the
  // first value past bucket idx.
  const u32 h = static_cast<u32>(std::bit_width(v)) - 1;
  const u32 sub = static_cast<u32>((v >> (h - kSubBucketBits)) & ((u64{1} << kSubBucketBits) - 1));
  return ((h - kSubBucketBits + 1) << kSubBucketBits) | sub;
}

u64 LogHistogram::bucket_lo(u32 idx) {
  if (idx < (u32{1} << kSubBucketBits)) return idx;
  const u32 octave = idx >> kSubBucketBits;
  const u64 sub = idx & ((u32{1} << kSubBucketBits) - 1);
  return ((u64{1} << kSubBucketBits) | sub) << (octave - 1);
}

void LogHistogram::record(u64 v, u64 weight) {
  if (weight == 0) return;
  const u32 idx = bucket_index(v);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += weight;
  count_ += weight;
  sum_ += v * weight;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.size() < other.counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

u64 LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample among `count_` sorted samples; the double
  // product is exact for every realistic count and identical on every
  // IEEE-754 platform, so serialized quantiles stay deterministic.
  const u64 rank = static_cast<u64>(q * static_cast<double>(count_ - 1));
  u64 cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > rank) return bucket_lo(static_cast<u32>(i));
  }
  return bucket_lo(static_cast<u32>(counts_.size()) - 1);
}

void LogHistogram::clear() {
  counts_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~u64{0};
  max_ = 0;
}

}  // namespace srbsg::telemetry
