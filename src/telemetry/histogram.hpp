#pragma once
// Log-bucketed latency histogram (HDR-style, integer-only).
//
// Buckets cover the full u64 range with a bounded relative error: values
// below 2^kSubBucketBits are exact, larger values share an octave split
// into 2^kSubBucketBits sub-buckets, so every bucket's width is at most
// 1/2^kSubBucketBits of its lower bound. Recording is O(1) (a bit-width
// computation plus one array add), merging is element-wise addition, and
// quantiles walk the cumulative counts — everything is integer
// arithmetic on deterministic inputs, which is what keeps serialized
// histograms byte-identical across worker counts (DESIGN.md §16).

#include <vector>

#include "common/types.hpp"

namespace srbsg::telemetry {

class LogHistogram {
 public:
  /// Sub-buckets per octave as a power of two: 8 sub-buckets, so bucket
  /// boundaries are within 12.5% of each other — tight enough to
  /// separate a remap-stalled write from a plain one at any scale.
  static constexpr u32 kSubBucketBits = 3;

  /// Bucket index holding `v`. Exact below 2^kSubBucketBits; above, the
  /// octave of the leading bit plus the next kSubBucketBits bits.
  [[nodiscard]] static u32 bucket_index(u64 v);

  /// Smallest value mapping to bucket `idx` (quantiles report this
  /// conservative lower bound).
  [[nodiscard]] static u64 bucket_lo(u32 idx);

  /// Record `weight` samples of value `v` (bulk paths record a whole
  /// chunk of identical per-write latencies in one call).
  void record(u64 v, u64 weight = 1);

  /// Element-wise sum; shards merge associatively and commutatively, so
  /// the merged histogram is independent of worker count and join order.
  void merge(const LogHistogram& other);

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] u64 sum() const { return sum_; }
  [[nodiscard]] u64 min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] u64 max() const { return max_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Lower bound of the bucket holding the q-th sample (0 <= q <= 1);
  /// 0 on an empty histogram.
  [[nodiscard]] u64 quantile(double q) const;

  /// Sparse bucket-index-ordered view; zero-count buckets are skipped.
  [[nodiscard]] const std::vector<u64>& buckets() const { return counts_; }

  void clear();

 private:
  std::vector<u64> counts_;  ///< bucket-indexed, grown lazily
  u64 count_{0};
  u64 sum_{0};
  u64 min_{~u64{0}};
  u64 max_{0};
};

}  // namespace srbsg::telemetry
