#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace srbsg::telemetry {

std::string_view to_string(EventType type) {
  switch (type) {
    case EventType::kRemapTriggered:
      return "RemapTriggered";
    case EventType::kGapMoved:
      return "GapMoved";
    case EventType::kKeyRerandomized:
      return "KeyRerandomized";
    case EventType::kDetectorStateChange:
      return "DetectorStateChange";
    case EventType::kLineFailed:
      return "LineFailed";
    case EventType::kBatchChunkApplied:
      return "BatchChunkApplied";
    case EventType::kProbeClassified:
      return "ProbeClassified";
    case EventType::kEpochApplied:
      return "EpochApplied";
    case EventType::kSpanBegin:
      return "SpanBegin";
    case EventType::kSpanEnd:
      return "SpanEnd";
  }
  return "?";
}

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRemapEpoch:
      return "RemapEpoch";
    case SpanKind::kBatchChunk:
      return "BatchChunk";
    case SpanKind::kEpochProjection:
      return "EpochProjection";
    case SpanKind::kExactReplayFallback:
      return "ExactReplayFallback";
    case SpanKind::kDetectorEval:
      return "DetectorEval";
    case SpanKind::kChannelSymbol:
      return "ChannelSymbol";
  }
  return "?";
}

std::string_view to_string(FallbackReason reason) {
  switch (reason) {
    case FallbackReason::kNone:
      return "None";
    case FallbackReason::kNearFailure:
      return "NearFailure";
    case FallbackReason::kPsiChange:
      return "PsiChange";
    case FallbackReason::kNonUniformContent:
      return "NonUniformContent";
    case FallbackReason::kNonPeriodicPattern:
      return "NonPeriodicPattern";
    case FallbackReason::kCacheMiss:
      return "CacheMiss";
  }
  return "?";
}

Recorder::Recorder(const TelemetryConfig& cfg)
    : cfg_(cfg), ring_(cfg.ring_capacity), next_snapshot_(cfg.snapshot_interval) {
  check(cfg_.snapshot_buckets > 0, "Recorder: snapshot_buckets must be positive");
}

u16 Recorder::intern_scheme(std::string_view name) {
  for (std::size_t i = 0; i < schemes_.size(); ++i) {
    if (schemes_[i] == name) return static_cast<u16>(i);
  }
  check_lt(schemes_.size(), std::size_t{0xFFFF}, "Recorder: scheme intern table full");
  schemes_.emplace_back(name);
  return static_cast<u16>(schemes_.size() - 1);
}

void Recorder::emit_at(u64 time_ns, EventType type, u16 scheme, u32 domain, u64 a, u64 b) {
  Event e;
  e.time_ns = time_ns;
  e.a = a;
  e.b = b;
  e.type = type;
  e.scheme = scheme;
  e.domain = domain;
  ring_.push(e);
  const CoreCounters& core = CoreCounters::get();
  switch (type) {
    case EventType::kRemapTriggered:
      shard_.add(core.remap_triggers, 1);
      break;
    case EventType::kGapMoved:
      shard_.add(core.gap_moves, 1);
      break;
    case EventType::kKeyRerandomized:
      shard_.add(core.rekeys, 1);
      break;
    case EventType::kDetectorStateChange:
      shard_.add(core.detector_trips, 1);
      break;
    case EventType::kLineFailed:
      shard_.add(core.line_failures, 1);
      break;
    case EventType::kBatchChunkApplied:
      shard_.add(core.batch_chunks, 1);
      break;
    case EventType::kProbeClassified:
      shard_.add(core.probes, 1);
      break;
    case EventType::kEpochApplied:
      shard_.add(core.epoch_jumps, 1);
      break;
    case EventType::kSpanBegin:
      shard_.add(core.spans, 1);
      if (a == static_cast<u64>(SpanKind::kExactReplayFallback)) {
        shard_.add(core.epoch_fallbacks, 1);
      }
      break;
    case EventType::kSpanEnd:
      break;
  }
}

void Recorder::take_snapshot(u64 total_writes, std::span<const u64> wear) {
  WearSnapshot snap;
  snap.time_ns = now_;
  snap.writes = total_writes;
  snap.wear = compute_wear_metrics(wear);
  // Downsample the per-line counts into a fixed-width histogram over the
  // observed value range; a degenerate range (all lines equal) still
  // needs a non-empty span for Histogram's hi > lo invariant.
  const auto lo = static_cast<double>(snap.wear.min);
  const double hi = std::max(static_cast<double>(snap.wear.max) + 1.0, lo + 1.0);
  Histogram hist(lo, hi, cfg_.snapshot_buckets);
  for (const u64 w : wear) hist.add(static_cast<double>(w));
  snap.hist_lo = lo;
  snap.hist_hi = hi;
  snap.hist_counts.resize(hist.buckets());
  for (std::size_t i = 0; i < hist.buckets(); ++i) snap.hist_counts[i] = hist.bucket_count(i);
  snapshots_.push_back(std::move(snap));
  shard_.add(CoreCounters::get().wear_snapshots, 1);
  // Next boundary strictly after the writes we just sampled, so a bulk
  // op that crossed several intervals yields one snapshot, not a burst.
  const u64 interval = cfg_.snapshot_interval;
  next_snapshot_ = (total_writes / interval + 1) * interval;
}

void Recorder::reset() {
  now_ = 0;
  ring_.clear();
  shard_.clear();
  hist_write_.clear();
  hist_stall_.clear();
  schemes_.clear();
  snapshots_.clear();
  next_snapshot_ = cfg_.snapshot_interval;
}

}  // namespace srbsg::telemetry
