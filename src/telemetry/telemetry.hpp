#pragma once
// Structured event tracing for wear-leveling runs.
//
// The paper's claims are about internal dynamics — gap movement, DFN key
// re-randomization, remap triggers, the RTA probe's latency
// classification — so every run can record them as typed, fixed-layout
// events in a bounded ring buffer (drop-oldest, with a drop counter) and
// spill them to JSONL at the end. Telemetry is off by default: schemes
// and the controller hold a plain `Recorder*` that is null unless a
// caller attaches one, so the disabled cost is a single predictable
// branch per remap event — nothing on the per-write fast path.

#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"

namespace srbsg::telemetry {

enum class EventType : u16 {
  kRemapTriggered = 1,     ///< a remap counter crossed its interval
  kGapMoved = 2,           ///< a line actually moved/swapped (a=from PA, b=to PA)
  kKeyRerandomized = 3,    ///< a mapping key was re-drawn (a=round/key ordinal)
  kDetectorStateChange = 4,  ///< attack detector changed boost (a=log2 boost, b=trips)
  kLineFailed = 5,         ///< first line failure (a=failed PA, b=writes at failure)
  kBatchChunkApplied = 6,  ///< batch engine applied a window (a=start, b=writes)
  kProbeClassified = 7,    ///< RTA probe classified a latency sample (a=bit, b=stall ns)
  kEpochApplied = 8,       ///< epoch engine applied an analytic jump (a=writes, b=remap steps)
  kSpanBegin = 9,          ///< span opened (a=SpanKind, b=kind-specific detail)
  kSpanEnd = 10,           ///< span closed (a=SpanKind, b=kind-specific detail)
};

[[nodiscard]] std::string_view to_string(EventType type);

/// What a begin/end span pair brackets. Spans are stamped on the
/// controller virtual clock plus the intra-operation latency offset, so
/// their durations are deterministic simulated time, not wall clock.
enum class SpanKind : u16 {
  kRemapEpoch = 1,           ///< one analytic epoch jump (begin b=writes, end b=steps)
  kBatchChunk = 2,           ///< one windowed-engine chunk (begin b=writes)
  kEpochProjection = 3,      ///< epoch-tier scan/projection proof (b=writes remaining)
  kExactReplayFallback = 4,  ///< epoch tier bailed to exact replay (b=FallbackReason)
  kDetectorEval = 5,         ///< controller fed the attack detector (b=writes observed)
  kChannelSymbol = 6,  ///< one covert-channel symbol (begin b=(writes<<1)|bit, end b=observed Y)
};

[[nodiscard]] std::string_view to_string(SpanKind kind);

/// Why the epoch fast-forward tier bailed out to exact replay; carried
/// in the detail field of every kExactReplayFallback span.
enum class FallbackReason : u16 {
  kNone = 0,
  kNearFailure = 1,         ///< a line would cross its endurance limit inside the jump
  kPsiChange = 2,           ///< a remap interval shrank below a carried counter
  kNonUniformContent = 3,   ///< movement slots hold mixed content (scan failed)
  kNonPeriodicPattern = 4,  ///< pattern period too long for any windowed/epoch engine
  kCacheMiss = 5,           ///< cross-call budget cache was cold (fresh projection scan)
};

[[nodiscard]] std::string_view to_string(FallbackReason reason);

/// Domain id used for events that concern the whole bank rather than one
/// region/sub-region.
inline constexpr u32 kGlobalDomain = 0xFFFFFFFFu;

/// Remap level carried in RemapTriggered's `a` field.
inline constexpr u64 kLevelInner = 0;
inline constexpr u64 kLevelOuter = 1;

/// Fixed 32-byte event record. `time_ns` is the simulated clock at the
/// start of the controller operation that produced the event (the clock
/// does not advance inside a bulk operation); `scheme` is a Recorder
/// intern id; `domain` is the region/sub-region index or kGlobalDomain.
struct Event {
  u64 time_ns{0};
  u64 a{0};
  u64 b{0};
  EventType type{EventType::kRemapTriggered};
  u16 scheme{0};
  u32 domain{0};
};
static_assert(sizeof(Event) == 32, "Event must stay a fixed 32-byte record");
static_assert(std::is_trivially_copyable_v<Event>, "Event must be trivially copyable");

/// Bounded drop-oldest ring. Capacity 0 means "counters only": every
/// push is dropped (but still counted), which is what the latency-only
/// harness path uses.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : slots_(capacity) {}

  void push(const Event& e) {
    if (slots_.empty()) {
      ++dropped_;
      return;
    }
    if (size_ < slots_.size()) {
      slots_[index(size_)] = e;
      ++size_;
    } else {
      slots_[start_] = e;
      start_ = index(1);
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Events pushed but no longer retained (overwritten or capacity 0).
  [[nodiscard]] u64 dropped() const { return dropped_; }
  /// Total events ever pushed.
  [[nodiscard]] u64 pushed() const { return dropped_ + size_; }

  /// i-th oldest retained event, 0 <= i < size().
  [[nodiscard]] const Event& at(std::size_t i) const { return slots_[index(i)]; }

  void clear() {
    start_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t i) const { return (start_ + i) % slots_.size(); }

  std::vector<Event> slots_;
  std::size_t start_{0};
  std::size_t size_{0};
  u64 dropped_{0};
};

/// Periodic wear-distribution sample: the downsampled per-line
/// write-count histogram plus the Gini/CoV metrics from common/stats.
struct WearSnapshot {
  u64 time_ns{0};
  u64 writes{0};  ///< logical writes issued when the snapshot was taken
  WearMetrics wear;
  double hist_lo{0.0};
  double hist_hi{0.0};
  std::vector<u64> hist_counts;
};

struct TelemetryConfig {
  /// Retained events per run; older events are dropped (and counted).
  std::size_t ring_capacity{std::size_t{1} << 16};
  /// Logical writes between WearSnapshots; 0 disables snapshots.
  u64 snapshot_interval{0};
  /// Buckets in the downsampled wear histogram.
  std::size_t snapshot_buckets{32};
};

/// Per-run recording surface. Single-threaded by design: one Recorder is
/// owned by the worker executing one run (the sweep engine hands each
/// run its own), and shards are merged at the join — the hot path takes
/// no locks. All emission is observation-only; attaching a Recorder
/// never changes scheme behavior, timing, or RNG consumption.
class Recorder {
 public:
  explicit Recorder(const TelemetryConfig& cfg = TelemetryConfig{});

  /// Advance the event clock; called by the controller at operation
  /// entry (events inside a bulk op share its start time).
  void set_now(Ns now) { now_ = now.value(); }
  [[nodiscard]] Ns now() const { return Ns{now_}; }

  /// Stable per-recorder id for a scheme name (linear search; the set is
  /// tiny and interning happens once per attach, not per event).
  [[nodiscard]] u16 intern_scheme(std::string_view name);
  [[nodiscard]] const std::vector<std::string>& schemes() const { return schemes_; }

  /// Records one event at the current sim time and bumps the matching
  /// core counter.
  void emit(EventType type, u16 scheme, u32 domain, u64 a, u64 b) {
    emit_at(now_, type, scheme, domain, a, b);
  }
  void emit_at(u64 time_ns, EventType type, u16 scheme, u32 domain, u64 a, u64 b);

  /// Span tracing: begin/end pairs stamped at op-entry time plus the
  /// caller's accumulated intra-op latency offset, so durations are
  /// simulated time. Every begin must be matched by an end on every
  /// path (the a11-span analyzer check enforces post-domination).
  void span_begin(SpanKind kind, u16 scheme, u32 domain, u64 offset_ns, u64 detail = 0) {
    emit_at(now_ + offset_ns, EventType::kSpanBegin, scheme, domain,
            static_cast<u64>(kind), detail);
  }
  void span_end(SpanKind kind, u16 scheme, u32 domain, u64 offset_ns, u64 detail = 0) {
    emit_at(now_ + offset_ns, EventType::kSpanEnd, scheme, domain,
            static_cast<u64>(kind), detail);
  }

  /// Stall-attribution histograms (DESIGN.md §16): per-write observed
  /// latency and the remap-stall share of it, fed by the controller's
  /// deterministic latency split. Bulk paths record whole chunks of
  /// identical values in O(1).
  void record_write_ns(u64 v, u64 weight = 1) { hist_write_.record(v, weight); }
  void record_stall_ns(u64 v, u64 weight = 1) { hist_stall_.record(v, weight); }
  [[nodiscard]] const LogHistogram& hist_write() const { return hist_write_; }
  [[nodiscard]] const LogHistogram& hist_stall() const { return hist_stall_; }

  /// Hot-path counter increments (plain array adds).
  void count(u32 slot, u64 n = 1) { shard_.add(slot, n); }
  void gauge_max(u32 slot, u64 v) { shard_.gauge_max(slot, v); }
  [[nodiscard]] u64 counter(u32 slot) const { return shard_.value(slot); }
  [[nodiscard]] const CounterShard& shard() const { return shard_; }

  /// Wear-snapshot cadence: due once `total_writes` crosses the next
  /// interval boundary. take_snapshot is O(lines) and therefore runs
  /// only on the configured cadence, never per write.
  [[nodiscard]] bool snapshot_due(u64 total_writes) const {
    return cfg_.snapshot_interval > 0 && total_writes >= next_snapshot_;
  }
  void take_snapshot(u64 total_writes, std::span<const u64> wear);

  [[nodiscard]] const EventRing& events() const { return ring_; }
  [[nodiscard]] const std::vector<WearSnapshot>& snapshots() const { return snapshots_; }
  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

  /// Returns the recorder to its freshly constructed state (pooling).
  void reset();

 private:
  TelemetryConfig cfg_;
  u64 now_{0};
  EventRing ring_;
  CounterShard shard_;
  LogHistogram hist_write_;
  LogHistogram hist_stall_;
  std::vector<std::string> schemes_;
  std::vector<WearSnapshot> snapshots_;
  u64 next_snapshot_{0};
};

}  // namespace srbsg::telemetry
