#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace srbsg::trace {
namespace {

u32 sample_gap(Rng& rng, u32 mean) {
  if (mean == 0) return 0;
  // Geometric-ish gap with the requested mean, capped to keep traces sane.
  const double u = std::max(rng.next_double(), 1e-12);
  const double g = -std::log(u) * static_cast<double>(mean);
  return static_cast<u32>(std::min(g, 32.0 * static_cast<double>(mean)));
}

TraceRecord make_record(Rng& rng, const GeneratorOptions& opt, u64 addr) {
  TraceRecord r;
  r.instruction_gap = sample_gap(rng, opt.mean_instruction_gap);
  r.is_write = rng.next_bool(opt.write_ratio);
  r.addr = addr;
  r.data = pcm::DataClass::kMixed;
  return r;
}

}  // namespace

Trace make_uniform(const GeneratorOptions& opt) {
  Rng rng(opt.seed);
  Trace t("uniform");
  t.reserve(opt.accesses);
  for (u64 i = 0; i < opt.accesses; ++i) {
    t.add(make_record(rng, opt, rng.next_below(opt.lines)));
  }
  return t;
}

Trace make_sequential(const GeneratorOptions& opt) {
  Rng rng(opt.seed);
  Trace t("sequential");
  t.reserve(opt.accesses);
  for (u64 i = 0; i < opt.accesses; ++i) {
    t.add(make_record(rng, opt, i % opt.lines));
  }
  return t;
}

Trace make_strided(const GeneratorOptions& opt, u64 stride) {
  check(stride > 0, "make_strided: stride must be positive");
  Rng rng(opt.seed);
  Trace t("strided");
  t.reserve(opt.accesses);
  for (u64 i = 0; i < opt.accesses; ++i) {
    t.add(make_record(rng, opt, (i * stride) % opt.lines));
  }
  return t;
}

Trace make_zipf(const GeneratorOptions& opt, double alpha) {
  check(alpha > 0.0, "make_zipf: alpha must be positive");
  Rng rng(opt.seed);
  // Build the CDF over a capped rank universe, then scatter ranks across
  // the address space with a cheap bijective mix.
  const u64 ranks = std::min<u64>(opt.lines, 1u << 16);
  std::vector<double> cdf(ranks);
  double sum = 0.0;
  for (u64 r = 0; r < ranks; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf[r] = sum;
  }
  for (auto& v : cdf) v /= sum;
  u64 mix_state = opt.seed ^ 0x9e3779b97f4a7c15ULL;
  const u64 scatter = splitmix64(mix_state) | 1;  // odd => bijective mod 2^k

  Trace t("zipf");
  t.reserve(opt.accesses);
  for (u64 i = 0; i < opt.accesses; ++i) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const u64 rank = static_cast<u64>(it - cdf.begin());
    const u64 addr = (rank * scatter) % opt.lines;
    t.add(make_record(rng, opt, addr));
  }
  return t;
}

Trace make_hotspot(const GeneratorOptions& opt, double hot_fraction, double hot_traffic) {
  check(hot_fraction > 0.0 && hot_fraction < 1.0, "make_hotspot: bad hot fraction");
  check(hot_traffic > 0.0 && hot_traffic < 1.0, "make_hotspot: bad hot traffic");
  Rng rng(opt.seed);
  const u64 hot_lines = std::max<u64>(1, static_cast<u64>(hot_fraction *
                                                          static_cast<double>(opt.lines)));
  Trace t("hotspot");
  t.reserve(opt.accesses);
  for (u64 i = 0; i < opt.accesses; ++i) {
    u64 addr;
    if (rng.next_bool(hot_traffic)) {
      addr = rng.next_below(hot_lines);
    } else {
      addr = hot_lines + rng.next_below(opt.lines - hot_lines);
    }
    t.add(make_record(rng, opt, addr));
  }
  return t;
}

void uniform_address_block(u64 lines, u64 seed, u64 start, std::span<u64> out) {
  check(lines != 0, "uniform_address_block: lines must be nonzero");
  // Lemire multiply-shift with rejection (same method as Rng::next_below),
  // but over a stateless per-element splitmix64 stream.
  const u64 threshold = (0 - lines) % lines;
  for (std::size_t i = 0; i < out.size(); ++i) {
    u64 s = seed + (start + i) * 0x9e3779b97f4a7c15ULL;
    u64 x = splitmix64(s);
    __uint128_t m = static_cast<__uint128_t>(x) * lines;
    auto lo = static_cast<u64>(m);
    while (lo < threshold) {
      x = splitmix64(s);
      m = static_cast<__uint128_t>(x) * lines;
      lo = static_cast<u64>(m);
    }
    out[i] = static_cast<u64>(m >> 64);
  }
}

Trace make_single_address(const GeneratorOptions& opt, u64 addr) {
  Rng rng(opt.seed);
  Trace t("single-address");
  t.reserve(opt.accesses);
  for (u64 i = 0; i < opt.accesses; ++i) {
    TraceRecord r = make_record(rng, opt, addr);
    r.is_write = true;
    t.add(r);
  }
  return t;
}

}  // namespace srbsg::trace
