#pragma once
// Synthetic access-pattern generators.

#include <span>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace srbsg::trace {

struct GeneratorOptions {
  u64 lines{1u << 16};        ///< address space (line count)
  u64 accesses{100'000};      ///< records to generate
  double write_ratio{0.3};    ///< fraction of accesses that are writes
  u32 mean_instruction_gap{50};  ///< average instructions between accesses
  u64 seed{1};
};

/// Uniformly random addresses.
[[nodiscard]] Trace make_uniform(const GeneratorOptions& opt);

/// Sequential sweep (streaming workload) with wrap-around.
[[nodiscard]] Trace make_sequential(const GeneratorOptions& opt);

/// Strided sweep with the given stride.
[[nodiscard]] Trace make_strided(const GeneratorOptions& opt, u64 stride);

/// Zipf-distributed addresses (exponent `alpha`, rank-shuffled so hot
/// lines are scattered across the space).
[[nodiscard]] Trace make_zipf(const GeneratorOptions& opt, double alpha);

/// `hot_fraction` of the space receives `hot_traffic` of the accesses —
/// the classic hotspot pattern that kills unleveled PCM.
[[nodiscard]] Trace make_hotspot(const GeneratorOptions& opt, double hot_fraction,
                                 double hot_traffic);

/// Adversarial single-address stream (RAA as a trace).
[[nodiscard]] Trace make_single_address(const GeneratorOptions& opt, u64 addr);

/// Fills `out` with uniform addresses in [0, lines) from a counter-based
/// splitmix64 stream: element k depends only on (seed, start + k), so any
/// partition of the stream into blocks produces identical addresses —
/// blocks feed MemoryController::write_batch without the interleaved
/// per-record draws of the Trace generators above.
void uniform_address_block(u64 lines, u64 seed, u64 start, std::span<u64> out);

}  // namespace srbsg::trace
