#include "trace/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace srbsg::trace {
namespace {

// Intensities are memory-side (post DRAM-cache) misses per kilo-instruction.
const std::vector<WorkloadProfile> kParsec = {
    {"blackscholes", "parsec", 0.25, 0.08, 0.9, 0.05},
    {"bodytrack", "parsec", 0.90, 0.35, 0.8, 0.10},
    {"canneal", "parsec", 4.20, 1.10, 0.6, 0.60},
    {"dedup", "parsec", 2.10, 1.40, 0.7, 0.35},
    {"facesim", "parsec", 1.80, 0.90, 0.8, 0.30},
    {"ferret", "parsec", 1.50, 0.60, 0.7, 0.25},
    {"fluidanimate", "parsec", 1.20, 0.80, 0.8, 0.20},
    {"freqmine", "parsec", 1.00, 0.40, 0.8, 0.15},
    {"raytrace", "parsec", 0.70, 0.20, 0.9, 0.12},
    {"streamcluster", "parsec", 3.50, 1.20, 0.5, 0.45},
    {"swaptions", "parsec", 0.30, 0.10, 0.9, 0.04},
    {"vips", "parsec", 1.10, 0.70, 0.7, 0.18},
    {"x264", "parsec", 1.30, 0.90, 0.7, 0.22},
};

const std::vector<WorkloadProfile> kSpec = {
    {"perlbench", "spec2006", 0.30, 0.10, 0.9, 0.05},
    {"bzip2", "spec2006", 0.08, 0.02, 1.0, 0.02},
    {"gcc", "spec2006", 0.10, 0.03, 1.0, 0.03},
    {"bwaves", "spec2006", 1.90, 0.50, 0.6, 0.40},
    {"gamess", "spec2006", 0.12, 0.03, 1.0, 0.02},
    {"mcf", "spec2006", 3.80, 0.70, 0.5, 0.70},
    {"milc", "spec2006", 2.30, 0.60, 0.6, 0.45},
    {"zeusmp", "spec2006", 1.00, 0.30, 0.7, 0.25},
    {"gromacs", "spec2006", 0.25, 0.08, 0.9, 0.06},
    {"cactusADM", "spec2006", 1.20, 0.40, 0.7, 0.30},
    {"leslie3d", "spec2006", 1.60, 0.45, 0.6, 0.35},
    {"namd", "spec2006", 0.15, 0.04, 0.9, 0.04},
    {"gobmk", "spec2006", 0.20, 0.06, 0.9, 0.04},
    {"dealII", "spec2006", 0.40, 0.12, 0.8, 0.08},
    {"soplex", "spec2006", 1.40, 0.35, 0.7, 0.28},
    {"povray", "spec2006", 0.10, 0.03, 1.0, 0.02},
    {"calculix", "spec2006", 0.30, 0.09, 0.8, 0.06},
    {"hmmer", "spec2006", 0.18, 0.05, 0.9, 0.03},
    {"sjeng", "spec2006", 0.22, 0.06, 0.9, 0.04},
    {"GemsFDTD", "spec2006", 2.00, 0.55, 0.6, 0.40},
    {"libquantum", "spec2006", 2.60, 0.40, 0.5, 0.30},
    {"h264ref", "spec2006", 0.35, 0.12, 0.8, 0.07},
    {"tonto", "spec2006", 0.28, 0.08, 0.8, 0.05},
    {"lbm", "spec2006", 3.10, 1.00, 0.5, 0.50},
    {"omnetpp", "spec2006", 1.70, 0.45, 0.6, 0.35},
    {"astar", "spec2006", 0.90, 0.25, 0.7, 0.18},
    {"xalancbmk", "spec2006", 1.10, 0.30, 0.7, 0.20},
};

}  // namespace

std::span<const WorkloadProfile> parsec_profiles() { return kParsec; }

std::span<const WorkloadProfile> spec2006_profiles() { return kSpec; }

Trace make_profile_trace(const WorkloadProfile& profile, u64 lines, u64 instructions,
                         u64 seed) {
  check(lines > 0 && instructions > 0, "make_profile_trace: bad sizes");
  Rng rng(seed);
  const double total_mpki = profile.read_mpki + profile.write_mpki;
  const auto accesses =
      static_cast<u64>(total_mpki * static_cast<double>(instructions) / 1000.0);
  const double write_prob = total_mpki > 0.0 ? profile.write_mpki / total_mpki : 0.0;
  const u32 mean_gap =
      accesses > 0 ? static_cast<u32>(instructions / std::max<u64>(accesses, 1)) : 1000;

  const u64 footprint_lines =
      std::max<u64>(16, static_cast<u64>(profile.footprint * static_cast<double>(lines)));

  // Zipf CDF over a capped rank universe scattered across the footprint.
  const u64 ranks = std::min<u64>(footprint_lines, 1u << 14);
  std::vector<double> cdf(ranks);
  double sum = 0.0;
  for (u64 r = 0; r < ranks; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), profile.zipf_alpha);
    cdf[r] = sum;
  }
  for (auto& v : cdf) v /= sum;
  u64 mix_state = seed ^ 0xc0ffee;
  const u64 scatter = splitmix64(mix_state) | 1;

  Trace t(profile.suite + "." + profile.name);
  t.reserve(accesses);
  for (u64 i = 0; i < accesses; ++i) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const u64 rank = static_cast<u64>(it - cdf.begin());
    TraceRecord rec;
    rec.instruction_gap = mean_gap;
    rec.is_write = rng.next_bool(write_prob);
    rec.addr = (rank * scatter) % footprint_lines;
    rec.data = pcm::DataClass::kMixed;
    t.add(rec);
  }
  return t;
}

}  // namespace srbsg::trace
