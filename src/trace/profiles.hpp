#pragma once
// Synthetic per-benchmark memory profiles standing in for the PARSEC and
// SPEC CPU2006 binaries the paper runs under gem5 (§V.C.4). Each profile
// captures the aspects the IPC-impact experiment is sensitive to: memory
// intensity (read/write MPKI at the PCM, i.e. post-L3-DRAM-cache),
// footprint and locality. The MPKI magnitudes follow the published
// working-set characterizations (PARSEC is markedly more write-intensive
// at the memory interface than most of SPEC; bzip2/gcc barely miss the
// DRAM cache, matching the paper's "no degradation" remark).

#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace srbsg::trace {

struct WorkloadProfile {
  std::string name;
  std::string suite;     ///< "parsec" or "spec2006"
  double read_mpki;      ///< reads per kilo-instruction reaching PCM
  double write_mpki;     ///< writes per kilo-instruction reaching PCM
  double zipf_alpha;     ///< address locality (higher = hotter)
  double footprint;      ///< fraction of the bank the workload touches
};

/// 13 PARSEC-like profiles.
[[nodiscard]] std::span<const WorkloadProfile> parsec_profiles();

/// 27 SPEC CPU2006-like profiles.
[[nodiscard]] std::span<const WorkloadProfile> spec2006_profiles();

/// Generates a trace realizing `profile` over `instructions` simulated
/// instructions on a bank of `lines` lines.
[[nodiscard]] Trace make_profile_trace(const WorkloadProfile& profile, u64 lines,
                                       u64 instructions, u64 seed);

}  // namespace srbsg::trace
