#include "trace/trace.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <unordered_set>

#include "common/check.hpp"

namespace srbsg::trace {
namespace {

char data_char(pcm::DataClass c) {
  switch (c) {
    case pcm::DataClass::kAllZero:
      return '0';
    case pcm::DataClass::kAllOne:
      return '1';
    case pcm::DataClass::kMixed:
      return 'M';
  }
  return '?';
}

pcm::DataClass data_from_char(char c) {
  switch (c) {
    case '0':
      return pcm::DataClass::kAllZero;
    case '1':
      return pcm::DataClass::kAllOne;
    case 'M':
      return pcm::DataClass::kMixed;
    default:
      throw CheckFailure("trace: bad data class char");
  }
}

constexpr std::array<char, 8> kMagic{'S', 'R', 'B', 'S', 'G', 'T', 'R', '1'};

}  // namespace

TraceStats Trace::stats() const {
  TraceStats s;
  std::unordered_set<u64> lines;
  for (const auto& r : records_) {
    ++s.records;
    s.instructions += r.instruction_gap;
    if (r.is_write) {
      ++s.writes;
    } else {
      ++s.reads;
    }
    lines.insert(r.addr);
  }
  s.distinct_lines = lines.size();
  if (s.instructions > 0) {
    s.write_mpki = 1000.0 * static_cast<double>(s.writes) / static_cast<double>(s.instructions);
    s.read_mpki = 1000.0 * static_cast<double>(s.reads) / static_cast<double>(s.instructions);
  }
  return s;
}

void Trace::save_text(std::ostream& os) const {
  for (const auto& r : records_) {
    os << r.instruction_gap << ' ' << (r.is_write ? 'W' : 'R') << ' ' << std::hex << r.addr
       << std::dec << ' ' << data_char(r.data) << '\n';
  }
}

Trace Trace::load_text(std::istream& is, std::string name) {
  Trace t(std::move(name));
  u32 gap = 0;
  char rw = 0;
  u64 addr = 0;
  char dc = 0;
  while (is >> gap >> rw >> std::hex >> addr >> std::dec >> dc) {
    check(rw == 'R' || rw == 'W', "trace: bad R/W flag");
    t.add(TraceRecord{gap, rw == 'W', addr, data_from_char(dc)});
  }
  return t;
}

void Trace::save_binary(std::ostream& os) const {
  os.write(kMagic.data(), kMagic.size());
  const u64 n = records_.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& r : records_) {
    os.write(reinterpret_cast<const char*>(&r.instruction_gap), sizeof(r.instruction_gap));
    const u8 flags = static_cast<u8>((r.is_write ? 1u : 0u) |
                                     (static_cast<u8>(r.data) << 1));
    os.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
    os.write(reinterpret_cast<const char*>(&r.addr), sizeof(r.addr));
  }
}

Trace Trace::load_binary(std::istream& is, std::string name) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  check(is.good() && magic == kMagic, "trace: bad binary header");
  u64 n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  Trace t(std::move(name));
  t.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    TraceRecord r;
    u8 flags = 0;
    is.read(reinterpret_cast<char*>(&r.instruction_gap), sizeof(r.instruction_gap));
    is.read(reinterpret_cast<char*>(&flags), sizeof(flags));
    is.read(reinterpret_cast<char*>(&r.addr), sizeof(r.addr));
    check(is.good(), "trace: truncated binary record");
    r.is_write = (flags & 1) != 0;
    r.data = static_cast<pcm::DataClass>(flags >> 1);
    t.add(r);
  }
  return t;
}

}  // namespace srbsg::trace
