#pragma once
// Memory-access traces: the record format, container, and text/binary IO.
// Traces drive the performance model (§V.C.4 substitute) and the wear
// studies on "normal" workloads.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "pcm/timing.hpp"

namespace srbsg::trace {

struct TraceRecord {
  /// Instructions the core retires before this access is issued.
  u32 instruction_gap{0};
  bool is_write{false};
  u64 addr{0};  ///< line address
  pcm::DataClass data{pcm::DataClass::kMixed};
};

struct TraceStats {
  u64 records{0};
  u64 reads{0};
  u64 writes{0};
  u64 instructions{0};
  u64 distinct_lines{0};
  double write_mpki{0.0};
  double read_mpki{0.0};
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void reserve(std::size_t n) { records_.reserve(n); }
  void add(const TraceRecord& r) { records_.push_back(r); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const TraceRecord& operator[](std::size_t i) const { return records_[i]; }
  [[nodiscard]] auto begin() const { return records_.begin(); }
  [[nodiscard]] auto end() const { return records_.end(); }

  [[nodiscard]] TraceStats stats() const;

  /// Text form: one record per line, "<gap> <R|W> <addr-hex> <0|1|M>".
  void save_text(std::ostream& os) const;
  [[nodiscard]] static Trace load_text(std::istream& is, std::string name = "trace");

  /// Compact binary form with a magic header.
  void save_binary(std::ostream& os) const;
  [[nodiscard]] static Trace load_binary(std::istream& is, std::string name = "trace");

 private:
  std::string name_;
  std::vector<TraceRecord> records_;
};

}  // namespace srbsg::trace
