// Differential equivalence of the batch fast paths: write_batch() and
// write_cycle() must be bit-identical to the per-write reference loop —
// wear, movements, latency, failure instant and final translation — for
// EVERY pattern up to the bounded length, on steady and failing banks.
// Two families share this harness: batch-equivalence runs the fast arm
// under the default windowed tier, epoch-equivalence under
// EngineTier::kEpoch with a write budget that clears every scheme's
// epoch-dispatch gate.

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>

#include "common/check.hpp"
#include "pcm/bank.hpp"
#include "verify/checks.hpp"
#include "verify/minimize.hpp"

namespace srbsg::verify::detail {

namespace {

constexpr u64 kToken = 0xD00D0000;
constexpr u64 kBatchToken = 0xBA7C4;
constexpr u64 kSteadyEndurance = u64{1} << 40;
/// Low enough that repeated patterns kill a line mid-replay, high enough
/// that the tagging prologue never does (swap-based schemes wear two
/// lines per movement, so the prologue alone costs up to ~4 writes on a
/// hot line).
constexpr u64 kFailEndurance = 8;

struct Arm {
  std::unique_ptr<wl::WearLeveler> scheme;
  pcm::PcmBank bank;
  wl::BulkOutcome out;

  Arm(const wl::SchemeSpec& spec, const MutationSpec& mut, bool fail_mode)
      : scheme(maybe_mutate(wl::make_scheme(spec), mut)),
        bank(pcm::PcmConfig::scaled(spec.lines, fail_mode ? kFailEndurance : kSteadyEndurance),
             scheme->physical_lines()) {
    for (u64 la = 0; la < spec.lines; ++la) {
      (void)scheme->write(La{la}, pcm::LineData::mixed(kToken + la), bank);
    }
    check(!bank.has_failure(), "batch check: prologue exhausted the failing-bank endurance");
  }
};

/// First divergence between the fast arm and the reference arm, or
/// nullopt when they are bit-identical.
std::optional<std::string> compare_arms(const Arm& fast, const Arm& ref) {
  const auto diff = [](std::string_view what, u64 got, u64 want) {
    std::ostringstream os;
    os << what << " diverged: fast path " << got << ", reference " << want;
    return os.str();
  };
  if (fast.out.total != ref.out.total) {
    return diff("total latency", fast.out.total.value(), ref.out.total.value());
  }
  if (fast.out.writes_applied != ref.out.writes_applied) {
    return diff("writes_applied", fast.out.writes_applied, ref.out.writes_applied);
  }
  if (fast.out.movements != ref.out.movements) {
    return diff("movements", fast.out.movements, ref.out.movements);
  }
  if (fast.bank.total_writes() != ref.bank.total_writes()) {
    return diff("bank total_writes", fast.bank.total_writes(), ref.bank.total_writes());
  }
  if (fast.bank.has_failure() != ref.bank.has_failure()) {
    return diff("has_failure", fast.bank.has_failure() ? 1 : 0, ref.bank.has_failure() ? 1 : 0);
  }
  if (fast.bank.has_failure()) {
    if (fast.bank.first_failed_line() != ref.bank.first_failed_line()) {
      return diff("first_failed_line", fast.bank.first_failed_line().value(),
                  ref.bank.first_failed_line().value());
    }
    if (fast.bank.failure_overshoot() != ref.bank.failure_overshoot()) {
      return diff("failure_overshoot", fast.bank.failure_overshoot(),
                  ref.bank.failure_overshoot());
    }
  }
  for (u64 pa = 0; pa < fast.scheme->physical_lines(); ++pa) {
    if (fast.bank.wear(Pa{pa}) != ref.bank.wear(Pa{pa})) {
      return "wear[" + std::to_string(pa) + "] diverged: fast path " +
             std::to_string(fast.bank.wear(Pa{pa})) + ", reference " +
             std::to_string(ref.bank.wear(Pa{pa}));
    }
    if (!(fast.bank.data(Pa{pa}) == ref.bank.data(Pa{pa}))) {
      return "data[" + std::to_string(pa) + "] diverged: fast path token " +
             std::to_string(fast.bank.data(Pa{pa}).token) + ", reference token " +
             std::to_string(ref.bank.data(Pa{pa}).token);
    }
  }
  for (u64 la = 0; la < fast.scheme->logical_lines(); ++la) {
    const Pa a = fast.scheme->translate(La{la});
    const Pa b = ref.scheme->translate(La{la});
    if (a != b) {
      return "translate(" + std::to_string(la) + ") diverged: fast path " +
             std::to_string(a.value()) + ", reference " + std::to_string(b.value());
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> replay_batch_pattern(const wl::SchemeSpec& spec,
                                                const MutationSpec& mut,
                                                const std::vector<u64>& pattern, bool fail_mode,
                                                bool cycle_op, const Bounds& bounds,
                                                wl::EngineTier fast_tier) {
  MutationSpec eff = mut;
  if (eff.kind != MutationKind::kNone) eff.arm_after += spec.lines;

  std::vector<La> las;
  las.reserve(pattern.size());
  for (const u64 p : pattern) las.emplace_back(p % spec.lines);
  const pcm::LineData data = pcm::LineData::mixed(kBatchToken);

  try {
    Arm fast(spec, eff, fail_mode);
    Arm ref(spec, eff, fail_mode);
    fast.scheme->set_engine_tier(fast_tier);
    if (cycle_op) {
      // The epoch tier needs the cycle count to exceed the scheme's
      // small-burst dispatch gate (roughly one bank's worth of writes),
      // or the engines under test would silently defer to the windowed
      // path at these bounded sizes.
      u64 count = pattern.size() * bounds.cycle_count_factor + 1;
      if (fast_tier == wl::EngineTier::kEpoch) count += fast.scheme->physical_lines();
      fast.out = fast.scheme->write_cycle(las, data, count, fast.bank);
      for (u64 i = 0; i < count && !ref.bank.has_failure(); ++i) {
        const wl::WriteOutcome w = ref.scheme->write(las[i % las.size()], data, ref.bank);
        ref.out.total += w.total;
        ref.out.movements += w.movements;
        ++ref.out.writes_applied;
      }
    } else {
      fast.out = fast.scheme->write_batch(las, data, fast.bank);
      for (const La la : las) {
        if (ref.bank.has_failure()) break;
        const wl::WriteOutcome w = ref.scheme->write(la, data, ref.bank);
        ref.out.total += w.total;
        ref.out.movements += w.movements;
        ++ref.out.writes_applied;
      }
    }
    fast.scheme->validate_state();
    ref.scheme->validate_state();
    std::optional<std::string> diverged = compare_arms(fast, ref);
    if (diverged) {
      return std::string(cycle_op ? "write_cycle" : "write_batch") +
             (fast_tier == wl::EngineTier::kEpoch ? " under epoch tier" : "") +
             (fail_mode ? " on failing bank: " : " on steady bank: ") + *diverged;
    }
    return std::nullopt;
  } catch (const CheckFailure& e) {
    return std::string("CheckFailure: ") + e.what();
  }
}

namespace {

/// Total number of patterns of length 1..max_len over an `alphabet`-line
/// bank, and the index->pattern decoding (length-major, then odometer).
u64 pattern_count(u64 alphabet, u64 max_len) {
  u64 total = 0;
  u64 layer = 1;
  for (u64 k = 1; k <= max_len; ++k) {
    layer *= alphabet;
    total += layer;
  }
  return total;
}

std::vector<u64> decode_pattern(u64 idx, u64 alphabet, u64 max_len) {
  u64 layer = 1;
  for (u64 k = 1; k <= max_len; ++k) {
    layer *= alphabet;
    if (idx < layer) {
      std::vector<u64> pattern(k);
      for (u64 j = 0; j < k; ++j) {
        pattern[k - 1 - j] = idx % alphabet;
        idx /= alphabet;
      }
      return pattern;
    }
    idx -= layer;
  }
  throw CheckFailure("pattern index out of range");
}

struct BatchWitness {
  u64 order{0};  ///< (idx, seed, mode, op) packed for deterministic "first"
  u64 idx{0};
  u64 seed{0};
  bool fail_mode{false};
  bool cycle_op{false};
  std::string message;
};

/// Shared engine for the batch-equivalence and epoch-equivalence cells:
/// the families differ only in the fast arm's engine tier and the check
/// id stamped into witnesses.
CellResult run_pattern_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                            const MutationSpec& mut, std::string_view family,
                            wl::EngineTier fast_tier) {
  const auto t0 = std::chrono::steady_clock::now();
  CellResult res;
  res.cell = cell;
  const u64 lines = cell.param;
  const u64 patterns = pattern_count(lines, bounds.max_pattern_len);

  std::mutex mu;
  std::optional<BatchWitness> witness;
  std::atomic<u64> states{0};
  parallel_for(
      pool, static_cast<std::size_t>(patterns),
      [&](std::size_t idx) {
        {
          std::lock_guard lock(mu);
          if (witness.has_value() && witness->idx < idx) return;
        }
        const std::vector<u64> pattern = decode_pattern(idx, lines, bounds.max_pattern_len);
        u64 checked = 0;
        for (u64 seed = 0; seed < bounds.seeds; ++seed) {
          const wl::SchemeSpec spec = cell_spec(cell.scheme, bounds, lines, seed);
          for (const bool fail_mode : {false, true}) {
            for (const bool cycle_op : {false, true}) {
              ++checked;
              const std::optional<std::string> diverged =
                  replay_batch_pattern(spec, mut, pattern, fail_mode, cycle_op, bounds,
                                       fast_tier);
              if (!diverged) continue;
              BatchWitness w;
              w.idx = idx;
              w.seed = seed;
              w.fail_mode = fail_mode;
              w.cycle_op = cycle_op;
              w.order = ((idx * bounds.seeds + seed) << 2) |
                        (u64{fail_mode} << 1) | u64{cycle_op};
              w.message = *diverged;
              std::lock_guard lock(mu);
              if (!witness.has_value() || w.order < witness->order) witness = std::move(w);
              return;
            }
          }
        }
        states.fetch_add(checked, std::memory_order_relaxed);
      },
      /*grain=*/16);

  if (witness.has_value()) {
    const BatchWitness& w = *witness;
    const wl::SchemeSpec spec = cell_spec(cell.scheme, bounds, lines, w.seed);
    const std::vector<u64> pattern = decode_pattern(w.idx, lines, bounds.max_pattern_len);
    const auto fails = [&](const std::vector<u64>& candidate) {
      return replay_batch_pattern(spec, mut, candidate, w.fail_mode, w.cycle_op, bounds,
                                  fast_tier)
          .has_value();
    };
    MinimizeResult min = ddmin(pattern, fails);
    Counterexample cex;
    cex.original_size = pattern.size();
    cex.size = min.trace.size();
    cex.minimized = min.minimal;
    cex.message =
        "scheme=" + cell.scheme + " lines=" + std::to_string(lines) +
        " seed=" + std::to_string(w.seed) + " pattern=[" + format_trace(min.trace) + "]: " +
        replay_batch_pattern(spec, mut, min.trace, w.fail_mode, w.cycle_op, bounds, fast_tier)
            .value_or(w.message);
    std::ostringstream rp;
    rp << "check=" << family << ";scheme=" << cell.scheme << ";lines=" << lines
       << ";regions=" << spec.regions << ";inner=" << spec.inner_interval
       << ";outer=" << spec.outer_interval << ";stages=" << spec.stages << ";seed=" << w.seed
       << ";mode=" << (w.fail_mode ? "fail" : "steady") << ";op="
       << (w.cycle_op ? "cycle" : "batch") << ";mutate=" << to_string(mut.kind)
       << ";arm=" << mut.arm_after << ";trace=" << format_trace(min.trace);
    cex.replay = rp.str();
    res.pass = false;
    res.cex = std::move(cex);
  }

  res.states = states.load();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace

CellResult run_batch_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                          const MutationSpec& mut) {
  return run_pattern_cell(cell, bounds, pool, mut, kBatchFamily, wl::EngineTier::kWindowed);
}

CellResult run_epoch_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                          const MutationSpec& mut) {
  return run_pattern_cell(cell, bounds, pool, mut, kEpochFamily, wl::EngineTier::kEpoch);
}

}  // namespace srbsg::verify::detail
