#pragma once
// Internal interface between the cell dispatcher (verify.cpp) and the
// per-family check engines. Not installed; include only from src/verify.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "verify/verify.hpp"
#include "wl/factory.hpp"

namespace srbsg::verify::detail {

inline constexpr std::string_view kFeistelFamily = "feistel-bijection";
inline constexpr std::string_view kRoundtripFamily = "scheme-roundtrip";
inline constexpr std::string_view kPreserveFamily = "remap-preservation";
inline constexpr std::string_view kBatchFamily = "batch-equivalence";
inline constexpr std::string_view kEpochFamily = "epoch-equivalence";

/// Scheme construction parameters for one stepping/batch cell.
[[nodiscard]] wl::SchemeSpec cell_spec(std::string_view scheme, const Bounds& bounds, u64 lines,
                                       u64 seed);

/// Write budget guaranteeing every Start-Gap region completes at least
/// `rotation_rounds` full rotations and every SR/DFN level at least one
/// key round at these bank sizes.
[[nodiscard]] u64 write_budget(u64 physical_lines, const Bounds& bounds);

CellResult run_feistel_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool);
CellResult run_scheme_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                           const MutationSpec& mut);
CellResult run_batch_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                          const MutationSpec& mut);
/// Same pattern grid as the batch family, but the fast arm runs under
/// EngineTier::kEpoch with a write budget large enough to clear every
/// scheme's epoch-dispatch gate, so the analytic fast-forward engines
/// (DESIGN.md §15) are the code under test.
CellResult run_epoch_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                          const MutationSpec& mut);

// Single-trace replay engines. Each returns the violation message when
// the invariant fails on that exact input, nullopt when it holds.
// `mut.arm_after` counts post-prologue writes; the engines add the fixed
// prologue (one tagging write per logical line) internally so a
// minimized trace stays replayable.
[[nodiscard]] std::optional<std::string> replay_feistel_point(u32 width,
                                                              const std::vector<u64>& keys,
                                                              u64 x);
[[nodiscard]] std::optional<std::string> replay_scheme_trace(std::string_view family,
                                                             const wl::SchemeSpec& spec,
                                                             const MutationSpec& mut,
                                                             const std::vector<u64>& trace,
                                                             u64* steps_checked = nullptr);
[[nodiscard]] std::optional<std::string> replay_batch_pattern(
    const wl::SchemeSpec& spec, const MutationSpec& mut, const std::vector<u64>& pattern,
    bool fail_mode, bool cycle_op, const Bounds& bounds,
    wl::EngineTier fast_tier = wl::EngineTier::kWindowed);

/// Replays one counterexample string produced by any family; returns the
/// violation message when the invariant still fails, nullopt when the
/// replay passes (i.e. the bug is fixed). Throws CheckFailure on a
/// malformed replay string.
[[nodiscard]] std::optional<std::string> replay_counterexample(const std::string& replay,
                                                               const Bounds& bounds);

/// Flat `key=value;` replay-string helpers shared by the families.
[[nodiscard]] std::string format_trace(const std::vector<u64>& trace);
[[nodiscard]] std::vector<u64> parse_trace(const std::string& csv);
/// Value for `key` in a `k=v;k=v` replay string; throws when missing
/// unless `required` is false (then returns "").
[[nodiscard]] std::string replay_get(const std::string& replay, const std::string& key,
                                     bool required = true);

}  // namespace srbsg::verify::detail
