#include <atomic>
#include <chrono>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "mapping/feistel.hpp"
#include "verify/checks.hpp"

namespace srbsg::verify::detail {

namespace {

// The network internals round odd widths up (cycle-walking), so the
// exhaustive key domain is [0, 2^half_bits) per stage.
u32 feistel_half_bits(u32 width_bits) {
  const u32 even = width_bits + (width_bits & 1u);
  return even / 2;
}

std::vector<u64> tuple_keys(u64 tuple, u32 stages, u32 half_bits) {
  std::vector<u64> keys(stages);
  const u64 mask = (u64{1} << half_bits) - 1;
  for (u32 s = 0; s < stages; ++s) {
    keys[s] = (tuple >> (s * half_bits)) & mask;
  }
  return keys;
}

std::string format_keys(const std::vector<u64>& keys) {
  std::ostringstream os;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i) os << ',';
    os << keys[i];
  }
  return os.str();
}

}  // namespace

std::optional<std::string> replay_feistel_point(u32 width, const std::vector<u64>& keys, u64 x) {
  const u64 domain = u64{1} << width;
  check(x < domain, "feistel replay: x outside the width's domain");
  const mapping::FeistelNetwork net(width, keys);
  const u64 y = net.map(x);
  if (y >= domain) {
    return "map(" + std::to_string(x) + ")=" + std::to_string(y) + " escapes the domain";
  }
  const u64 back = net.unmap(y);
  if (back != x) {
    return "unmap(map(" + std::to_string(x) + "))=" + std::to_string(back);
  }
  return std::nullopt;
}

CellResult run_feistel_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool) {
  const auto t0 = std::chrono::steady_clock::now();
  CellResult res;
  res.cell = cell;

  const u32 width = static_cast<u32>(cell.param);
  check(width >= 2 && width <= 20, "feistel cell width out of verifiable range");
  const u32 half = feistel_half_bits(width);
  const u64 domain = u64{1} << width;

  std::atomic<u64> states{0};
  for (u32 stages = 1; stages <= bounds.max_stages && res.pass; ++stages) {
    if (u64{half} * stages > bounds.key_budget_bits) break;
    const u64 tuples = u64{1} << (half * stages);

    // Lowest failing (tuple, x) wins so reruns report the same witness
    // regardless of shard interleaving.
    constexpr u64 kNone = std::numeric_limits<u64>::max();
    std::atomic<u64> best{kNone};
    parallel_for(
        pool, static_cast<std::size_t>(tuples),
        [&](std::size_t t) {
          if (best.load(std::memory_order_relaxed) != kNone) return;
          const std::vector<u64> keys = tuple_keys(t, stages, half);
          const mapping::FeistelNetwork net(width, keys);
          u64 checked = 0;
          for (u64 x = 0; x < domain; ++x) {
            const u64 y = net.map(x);
            ++checked;
            if (y < domain && net.unmap(y) == x) continue;
            u64 enc = t * domain + x;
            u64 cur = best.load(std::memory_order_relaxed);
            while (enc < cur && !best.compare_exchange_weak(cur, enc)) {
            }
            break;
          }
          states.fetch_add(checked, std::memory_order_relaxed);
        },
        /*grain=*/64);

    const u64 enc = best.load();
    if (enc != kNone) {
      const u64 tuple = enc / domain;
      const u64 x = enc % domain;
      const std::vector<u64> keys = tuple_keys(tuple, stages, half);
      const mapping::FeistelNetwork net(width, keys);
      const u64 y = net.map(x);
      std::ostringstream msg;
      msg << "feistel width=" << width << " stages=" << stages << " keys=[" << format_keys(keys)
          << "]: map(" << x << ")=" << y;
      if (y >= domain) {
        msg << " escapes the domain [0," << domain << ")";
      } else {
        msg << " but unmap(" << y << ")=" << net.unmap(y) << " != " << x;
      }
      Counterexample cex;
      cex.message = msg.str();
      std::ostringstream rp;
      rp << "check=" << kFeistelFamily << ";width=" << width << ";stages=" << stages
         << ";keys=" << format_keys(keys) << ";x=" << x;
      cex.replay = rp.str();
      cex.original_size = 1;  // a point witness is born minimal
      cex.size = 1;
      cex.minimized = true;
      res.pass = false;
      res.cex = std::move(cex);
    }
  }

  res.states = states.load();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace srbsg::verify::detail
