// srbsg-verify: bounded model checker CLI. Exhaustively proves the five
// invariant families over the bounded cell grid, or replays / minimizes
// counterexamples. See DESIGN.md §14 and EXPERIMENTS.md.
//
// Exit codes: 0 all selected cells pass (or replay passes), 1 at least
// one counterexample (or replay reproduces), 2 usage/internal error.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "verify/checks.hpp"
#include "verify/report.hpp"
#include "verify/verify.hpp"

namespace {

using namespace srbsg;
using namespace srbsg::verify;

void usage(std::ostream& os) {
  os << "usage: srbsg-verify [options] [cell-id-prefix ...]\n"
        "\n"
        "Runs every cell whose id starts with one of the given prefixes\n"
        "(all cells when none are given).\n"
        "\n"
        "options:\n"
        "  --list                 print the cell grid and exit\n"
        "  --threads N            worker threads (0 = hardware concurrency)\n"
        "  --json PATH            write the JSON report to PATH\n"
        "  --replay STR           replay one counterexample string and exit\n"
        "  --mutate KIND          inject a fault (selftest aid): none,\n"
        "                         translate-collision, lost-copy,\n"
        "                         phantom-write, batch-skip, epoch-skip\n"
        "  --arm-after N          faithful writes before the fault arms\n"
        "  --selftest             prove each family catches its bug class\n"
        "                         and that witnesses minimize; exit 0/2\n"
        "bounds (defaults are the documented reference bounds):\n"
        "  --min-width N --max-width N --max-stages N --key-budget-bits N\n"
        "  --bank-lines CSV --seeds N --rotation-rounds N\n"
        "  --batch-lines N --max-pattern-len N\n";
}

struct Options {
  Bounds bounds;
  MutationSpec mut;
  std::vector<std::string> prefixes;
  std::string json_path;
  std::string replay;
  std::size_t threads{0};
  bool list{false};
  bool selftest{false};
};

u64 parse_u64(const std::string& value, const std::string& flag) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw CheckFailure("bad value for " + flag + ": " + value);
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  const auto need = [&](int& i, const std::string& flag) -> std::string {
    check(i + 1 < argc, "missing value for " + flag);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--threads") {
      opt.threads = parse_u64(need(i, arg), arg);
    } else if (arg == "--json") {
      opt.json_path = need(i, arg);
    } else if (arg == "--replay") {
      opt.replay = need(i, arg);
    } else if (arg == "--mutate") {
      opt.mut.kind = parse_mutation(need(i, arg));
    } else if (arg == "--arm-after") {
      opt.mut.arm_after = parse_u64(need(i, arg), arg);
    } else if (arg == "--min-width") {
      opt.bounds.min_width = static_cast<u32>(parse_u64(need(i, arg), arg));
    } else if (arg == "--max-width") {
      opt.bounds.max_width = static_cast<u32>(parse_u64(need(i, arg), arg));
    } else if (arg == "--max-stages") {
      opt.bounds.max_stages = static_cast<u32>(parse_u64(need(i, arg), arg));
    } else if (arg == "--key-budget-bits") {
      opt.bounds.key_budget_bits = static_cast<u32>(parse_u64(need(i, arg), arg));
    } else if (arg == "--bank-lines") {
      opt.bounds.bank_lines = verify::detail::parse_trace(need(i, arg));
    } else if (arg == "--seeds") {
      opt.bounds.seeds = parse_u64(need(i, arg), arg);
    } else if (arg == "--rotation-rounds") {
      opt.bounds.rotation_rounds = parse_u64(need(i, arg), arg);
    } else if (arg == "--batch-lines") {
      opt.bounds.batch_lines = parse_u64(need(i, arg), arg);
    } else if (arg == "--max-pattern-len") {
      opt.bounds.max_pattern_len = parse_u64(need(i, arg), arg);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      throw CheckFailure("unknown flag: " + arg);
    } else {
      opt.prefixes.push_back(arg);
    }
  }
  return opt;
}

std::vector<Cell> select_cells(const Options& opt) {
  std::vector<Cell> cells = list_cells(opt.bounds);
  if (opt.prefixes.empty()) return cells;
  std::vector<Cell> out;
  for (Cell& cell : cells) {
    for (const std::string& p : opt.prefixes) {
      if (cell.id.rfind(p, 0) == 0) {
        out.push_back(std::move(cell));
        break;
      }
    }
  }
  check(!out.empty(), "no cells match the given prefixes");
  return out;
}

/// Curated (mutation, cell) pairs proving each family detects its bug
/// class: the unmutated cell must pass, the mutated one must fail with a
/// replayable witness that reproduces and actually shrank.
int run_selftest(const Options& opt) {
  struct Probe {
    MutationKind kind;
    const char* cell_prefix;
    u64 max_witness;  ///< minimized witness must be <= this many items
  };
  const std::vector<Probe> probes = {
      {MutationKind::kTranslateCollision, "roundtrip/security-rbsg/", 1},
      {MutationKind::kLostCopy, "preserve/sr2/", 16},
      {MutationKind::kPhantomWrite, "preserve/rbsg/", 16},
      {MutationKind::kBatchSkip, "batch/start-gap/", 3},
      {MutationKind::kEpochSkip, "epoch/security-rbsg/", 1},
  };

  // Shrunk bounds keep the selftest to a few seconds.
  Bounds b = opt.bounds;
  b.min_width = 4;
  b.max_width = 6;
  b.bank_lines = {16};
  b.seeds = 1;
  b.rotation_rounds = 2;
  b.max_pattern_len = 4;
  ThreadPool pool(opt.threads);

  int failures = 0;
  for (const Probe& probe : probes) {
    const std::vector<Cell> all = list_cells(b);
    const Cell* cell = nullptr;
    for (const Cell& c : all) {
      if (c.id.rfind(probe.cell_prefix, 0) == 0) {
        cell = &c;
        break;
      }
    }
    check(cell != nullptr, std::string("selftest: no cell matches ") + probe.cell_prefix);

    const auto complain = [&](const std::string& what) {
      std::cerr << "selftest FAIL [" << to_string(probe.kind) << " @ " << cell->id
                << "]: " << what << "\n";
      ++failures;
    };

    const CellResult clean = run_cell(*cell, b, pool);
    if (!clean.pass) {
      complain("unmutated cell failed: " + clean.cex->message);
      continue;
    }
    const CellResult hurt = run_cell(*cell, b, pool, MutationSpec{probe.kind, 0});
    if (hurt.pass) {
      complain("mutated cell passed — the family missed its bug class");
      continue;
    }
    const Counterexample& cex = *hurt.cex;
    if (cex.size > probe.max_witness) {
      complain("witness did not minimize: size=" + std::to_string(cex.size) +
               " (expected <= " + std::to_string(probe.max_witness) + ")");
      continue;
    }
    const std::optional<std::string> repro = verify::detail::replay_counterexample(cex.replay, b);
    if (!repro.has_value()) {
      complain("minimized replay string does not reproduce: " + cex.replay);
      continue;
    }
    std::cout << "selftest ok [" << to_string(probe.kind) << " @ " << cell->id
              << "]: witness " << cex.original_size << " -> " << cex.size << " items\n";
  }
  if (failures == 0) std::cout << "selftest: all " << probes.size() << " probes passed\n";
  return failures == 0 ? 0 : 2;
}

int run(const Options& opt) {
  if (opt.list) {
    for (const Cell& cell : list_cells(opt.bounds)) {
      std::cout << cell.id << "\n";
    }
    return 0;
  }
  if (!opt.replay.empty()) {
    const std::optional<std::string> violation =
        verify::detail::replay_counterexample(opt.replay, opt.bounds);
    if (violation.has_value()) {
      std::cout << "replay reproduces the violation: " << *violation << "\n";
      return 1;
    }
    std::cout << "replay passes: the invariant holds on this input\n";
    return 0;
  }
  if (opt.selftest) return run_selftest(opt);

  ThreadPool pool(opt.threads);
  const std::vector<Cell> cells = select_cells(opt);
  const std::vector<CellResult> results = run_cells(cells, opt.bounds, pool, opt.mut);

  u64 failed = 0;
  u64 states = 0;
  for (const CellResult& r : results) {
    states += r.states;
    if (r.pass) {
      std::cout << "PASS " << r.cell.id << "  states=" << r.states << "  wall_ms=" << r.wall_ms
                << "\n";
    } else {
      ++failed;
      std::cout << "FAIL " << r.cell.id << "  states=" << r.states << "\n  " << r.cex->message
                << "\n  minimized " << r.cex->original_size << " -> " << r.cex->size
                << " items\n  replay: " << r.cex->replay << "\n";
    }
  }
  std::cout << results.size() << " cells, " << failed << " failed, " << states
            << " states enumerated\n";
  if (!opt.json_path.empty()) {
    write_file(opt.json_path, report_json(results, opt.bounds, opt.mut));
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "srbsg-verify: " << e.what() << "\n";
    return 2;
  }
}
