#include "verify/minimize.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace srbsg::verify {

namespace {

/// The `trace` minus the half-open chunk [begin, end).
std::vector<u64> without_chunk(const std::vector<u64>& trace, std::size_t begin, std::size_t end) {
  std::vector<u64> out;
  out.reserve(trace.size() - (end - begin));
  out.insert(out.end(), trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(begin));
  out.insert(out.end(), trace.begin() + static_cast<std::ptrdiff_t>(end), trace.end());
  return out;
}

}  // namespace

MinimizeResult ddmin(std::vector<u64> trace, const FailPredicate& fails, u64 max_tests) {
  MinimizeResult res;
  std::size_t granularity = 2;
  while (trace.size() >= 2) {
    if (res.tests_run >= max_tests) {
      res.minimal = false;
      break;
    }
    granularity = std::min(granularity, trace.size());
    const std::size_t chunk = (trace.size() + granularity - 1) / granularity;
    bool reduced = false;

    // Try each chunk alone ("reduce to subset"), then each complement
    // ("reduce to complement"). Complements are where most progress
    // happens for invariant traces, since the fault usually needs a
    // prefix to arm plus one trigger.
    for (std::size_t g = 0; g < granularity && !reduced && res.tests_run < max_tests; ++g) {
      const std::size_t begin = g * chunk;
      const std::size_t end = std::min(begin + chunk, trace.size());
      if (begin >= end) continue;
      std::vector<u64> subset(trace.begin() + static_cast<std::ptrdiff_t>(begin),
                              trace.begin() + static_cast<std::ptrdiff_t>(end));
      ++res.tests_run;
      if (subset.size() < trace.size() && fails(subset)) {
        trace = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    for (std::size_t g = 0; g < granularity && !reduced && res.tests_run < max_tests; ++g) {
      const std::size_t begin = g * chunk;
      const std::size_t end = std::min(begin + chunk, trace.size());
      if (begin >= end || (begin == 0 && end == trace.size())) continue;
      std::vector<u64> complement = without_chunk(trace, begin, end);
      ++res.tests_run;
      if (fails(complement)) {
        trace = std::move(complement);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }

    if (!reduced) {
      if (granularity >= trace.size()) break;  // 1-minimal
      granularity = std::min(trace.size(), granularity * 2);
    }
  }
  res.trace = std::move(trace);
  return res;
}

}  // namespace srbsg::verify
