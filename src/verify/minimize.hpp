#pragma once
// Counterexample minimization: delta debugging (ddmin) over a failing
// trace. The verifier's witnesses are sequences of u64 items — logical
// addresses of a write schedule, or positions of a batch pattern — and
// any subsequence is itself a valid input, so ddmin applies directly:
// shrink the failing sequence to one that is 1-minimal (removing any
// single remaining item makes the failure disappear).

#include <functional>
#include <vector>

#include "common/types.hpp"

namespace srbsg::verify {

/// Returns true when replaying `trace` still violates the invariant.
/// Must be deterministic: the same trace always gives the same verdict.
using FailPredicate = std::function<bool(const std::vector<u64>&)>;

struct MinimizeResult {
  std::vector<u64> trace;
  u64 tests_run{0};
  /// False when the test budget ran out before reaching 1-minimality
  /// (the returned trace still fails, it just may not be minimal).
  bool minimal{true};
};

/// Zeller-Hildebrandt ddmin. Precondition: fails(trace) is true; the
/// result keeps that property. `max_tests` bounds predicate invocations
/// so a pathological predicate cannot stall a verify run.
[[nodiscard]] MinimizeResult ddmin(std::vector<u64> trace, const FailPredicate& fails,
                                   u64 max_tests = 4096);

}  // namespace srbsg::verify
