#include "verify/mutant.hpp"

#include <string>
#include <utility>

#include "common/check.hpp"

namespace srbsg::verify {

std::string_view to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kNone:
      return "none";
    case MutationKind::kTranslateCollision:
      return "translate-collision";
    case MutationKind::kLostCopy:
      return "lost-copy";
    case MutationKind::kPhantomWrite:
      return "phantom-write";
    case MutationKind::kBatchSkip:
      return "batch-skip";
    case MutationKind::kEpochSkip:
      return "epoch-skip";
  }
  return "?";
}

MutationKind parse_mutation(std::string_view name) {
  for (MutationKind k : {MutationKind::kNone, MutationKind::kTranslateCollision,
                         MutationKind::kLostCopy, MutationKind::kPhantomWrite,
                         MutationKind::kBatchSkip, MutationKind::kEpochSkip}) {
    if (name == to_string(k)) return k;
  }
  throw CheckFailure("unknown mutation kind: " + std::string(name));
}

MutantScheme::MutantScheme(std::unique_ptr<wl::WearLeveler> inner, MutationSpec spec)
    : inner_(std::move(inner)), spec_(spec) {
  check(inner_ != nullptr, "MutantScheme: null inner scheme");
}

Pa MutantScheme::translate(La la) const {
  if (spec_.kind == MutationKind::kTranslateCollision && armed() && la.value() == 1) {
    return inner_->translate(La{0});
  }
  return inner_->translate(la);
}

wl::WriteOutcome MutantScheme::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const wl::WriteOutcome out = inner_->write(la, data, bank);
  ++writes_seen_;
  if (!armed() || out.movements == 0) return out;
  if (spec_.kind == MutationKind::kLostCopy && !lost_copy_done_) {
    // Simulate a remap movement whose data copy went astray: the logical
    // neighbor's line silently loses its content (token zeroed). One
    // bank-level rewrite of the neighbor's current slot.
    lost_copy_done_ = true;
    const La victim{(la.value() + 1) % inner_->logical_lines()};
    const auto current = bank.read(inner_->translate(victim)).first;
    bank.write(inner_->translate(victim), pcm::LineData{current.cls, current.token ^ 1});
  } else if (spec_.kind == MutationKind::kPhantomWrite) {
    // Movement bookkeeping leak: one unaccounted physical write per
    // movement (rewrites the same data, so only wear conservation sees
    // it).
    bank.write(inner_->translate(la), data);
  }
  return out;
}

wl::BulkOutcome MutantScheme::write_batch(std::span<const La> las, const pcm::LineData& data,
                                          pcm::PcmBank& bank) {
  if (spec_.kind == MutationKind::kBatchSkip && writes_seen_ >= spec_.arm_after &&
      las.size() >= 3) {
    bool touches_victim = false;
    for (const La la : las) touches_victim |= la.value() == 5;
    if (touches_victim) {
      wl::BulkOutcome out = inner_->write_batch(las.first(las.size() - 1), data, bank);
      writes_seen_ += out.writes_applied;
      return out;
    }
  }
  const wl::BulkOutcome out = inner_->write_batch(las, data, bank);
  writes_seen_ += out.writes_applied;
  return out;
}

wl::BulkOutcome MutantScheme::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                          u64 count, pcm::PcmBank& bank) {
  if (spec_.kind == MutationKind::kEpochSkip && armed() &&
      engine_tier() == wl::EngineTier::kEpoch && count >= 2) {
    // The epoch engine "loses" the cycle's last write; the reference and
    // windowed tiers stay faithful, so only epoch-equivalence can see it.
    const wl::BulkOutcome out = inner_->write_cycle(pattern, data, count - 1, bank);
    writes_seen_ += out.writes_applied;
    return out;
  }
  const wl::BulkOutcome out = inner_->write_cycle(pattern, data, count, bank);
  writes_seen_ += out.writes_applied;
  return out;
}

std::unique_ptr<wl::WearLeveler> maybe_mutate(std::unique_ptr<wl::WearLeveler> inner,
                                              const MutationSpec& spec) {
  if (spec.kind == MutationKind::kNone) return inner;
  return std::make_unique<MutantScheme>(std::move(inner), spec);
}

}  // namespace srbsg::verify
