#pragma once
// Seeded fault injection for the verifier's selftest: wraps a real scheme
// and corrupts exactly one aspect of its behavior after a deterministic
// arming point, so each check family can prove it *finds* the class of
// bug it exists for — and that the minimizer shrinks the witness.

#include <memory>
#include <string_view>

#include "wl/wear_leveler.hpp"

namespace srbsg::verify {

enum class MutationKind : u8 {
  kNone,
  /// translate(La{1}) collides with translate(La{0}) once armed —
  /// breaks scheme-roundtrip injectivity.
  kTranslateCollision,
  /// The first remap movement after arming "loses" a line: the mutant
  /// clobbers the token of the logical neighbor — breaks
  /// remap-preservation data integrity.
  kLostCopy,
  /// Each movement after arming issues one phantom bank write — breaks
  /// the remap-preservation wear-conservation identity.
  kPhantomWrite,
  /// write_batch drops its final write when the batch has >= 3 positions
  /// and touches La{5} — breaks batch-equivalence; the minimal witness
  /// is a 3-position pattern containing address 5.
  kBatchSkip,
  /// write_cycle under the epoch engine tier silently drops its final
  /// write — breaks epoch-equivalence while leaving the reference and
  /// windowed tiers bit-identical.
  kEpochSkip,
};

struct MutationSpec {
  MutationKind kind{MutationKind::kNone};
  /// Data writes the mutant forwards faithfully before the fault arms.
  u64 arm_after{0};
};

[[nodiscard]] std::string_view to_string(MutationKind kind);
/// Parses
/// "none|translate-collision|lost-copy|phantom-write|batch-skip|epoch-skip";
/// throws CheckFailure on unknown names.
[[nodiscard]] MutationKind parse_mutation(std::string_view name);

/// Decorator carrying one seeded fault. All forwarded behavior is
/// bit-identical to the wrapped scheme until the fault arms.
class MutantScheme final : public wl::WearLeveler {
 public:
  MutantScheme(std::unique_ptr<wl::WearLeveler> inner, MutationSpec spec);

  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] u64 logical_lines() const override { return inner_->logical_lines(); }
  [[nodiscard]] u64 physical_lines() const override { return inner_->physical_lines(); }
  [[nodiscard]] Pa translate(La la) const override;

  wl::WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  wl::BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                              pcm::PcmBank& bank) override;
  wl::BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                              pcm::PcmBank& bank) override;

  void set_rate_boost(u32 log2_divisor) override { inner_->set_rate_boost(log2_divisor); }
  void set_engine_tier(wl::EngineTier tier) override {
    wl::WearLeveler::set_engine_tier(tier);
    inner_->set_engine_tier(tier);
  }
  void validate_state() const override { inner_->validate_state(); }
  [[nodiscard]] u32 writes_per_movement() const override { return inner_->writes_per_movement(); }

 private:
  [[nodiscard]] bool armed() const { return writes_seen_ >= spec_.arm_after; }

  std::unique_ptr<wl::WearLeveler> inner_;
  MutationSpec spec_;
  u64 writes_seen_{0};
  bool lost_copy_done_{false};
};

/// Wraps `inner` when `spec.kind != kNone`; returns it untouched otherwise.
[[nodiscard]] std::unique_ptr<wl::WearLeveler> maybe_mutate(
    std::unique_ptr<wl::WearLeveler> inner, const MutationSpec& spec);

}  // namespace srbsg::verify
