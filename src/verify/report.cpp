#include "verify/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace srbsg::verify {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_bounds(std::ostringstream& os, const Bounds& b) {
  os << "{\"min_width\":" << b.min_width << ",\"max_width\":" << b.max_width
     << ",\"max_stages\":" << b.max_stages << ",\"key_budget_bits\":" << b.key_budget_bits
     << ",\"bank_lines\":[";
  for (std::size_t i = 0; i < b.bank_lines.size(); ++i) {
    if (i) os << ',';
    os << b.bank_lines[i];
  }
  os << "],\"seeds\":" << b.seeds << ",\"rotation_rounds\":" << b.rotation_rounds
     << ",\"batch_lines\":" << b.batch_lines << ",\"max_pattern_len\":" << b.max_pattern_len
     << ",\"cycle_count_factor\":" << b.cycle_count_factor << ",\"regions\":" << b.regions
     << ",\"inner_interval\":" << b.inner_interval << ",\"outer_interval\":" << b.outer_interval
     << ",\"stages\":" << b.stages << "}";
}

void append_cell(std::ostringstream& os, const CellResult& r) {
  os << "{\"id\":\"" << json_escape(r.cell.id) << "\",\"check\":\"" << json_escape(r.cell.check)
     << "\",\"scheme\":\"" << json_escape(r.cell.scheme) << "\",\"param\":" << r.cell.param
     << ",\"source\":\"" << json_escape(check_source_file(r.cell.check)) << "\",\"pass\":"
     << (r.pass ? "true" : "false") << ",\"states\":" << r.states << ",\"wall_ms\":" << r.wall_ms;
  if (r.cex.has_value()) {
    os << ",\"counterexample\":{\"message\":\"" << json_escape(r.cex->message)
       << "\",\"replay\":\"" << json_escape(r.cex->replay)
       << "\",\"original_size\":" << r.cex->original_size << ",\"size\":" << r.cex->size
       << ",\"minimized\":" << (r.cex->minimized ? "true" : "false") << "}";
  }
  os << "}";
}

}  // namespace

std::string report_json(const std::vector<CellResult>& results, const Bounds& bounds,
                        const MutationSpec& mut) {
  std::ostringstream os;
  u64 failed = 0;
  u64 states = 0;
  for (const CellResult& r : results) {
    failed += r.pass ? 0 : 1;
    states += r.states;
  }
  os << "{\"schema_version\":" << kReportSchemaVersion << ",\"tool\":\"srbsg-verify\""
     << ",\"mutation\":\"" << json_escape(to_string(mut.kind)) << "\",\"bounds\":";
  append_bounds(os, bounds);
  os << ",\"summary\":{\"cells\":" << results.size() << ",\"failed\":" << failed
     << ",\"states\":" << states << "},\"cells\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) os << ',';
    append_cell(os, results[i]);
  }
  os << "]}\n";
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  check(out.good(), "verify: cannot open report file: " + path);
  out << text;
  out.flush();
  check(out.good(), "verify: short write to report file: " + path);
}

}  // namespace srbsg::verify
