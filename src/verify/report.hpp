#pragma once
// Machine-readable verify reports. The C++ CLI emits one JSON document
// per run; tools/srbsg-verify parses it to update the verified-cell
// cache and to translate counterexamples into SARIF results (reusing
// tools/analyze/sarif.py). schema_version gates compatibility on the
// Python side.

#include <string>
#include <vector>

#include "verify/verify.hpp"

namespace srbsg::verify {

inline constexpr int kReportSchemaVersion = 1;

/// JSON string escaping (control chars, quotes, backslashes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// The full report document for one run.
[[nodiscard]] std::string report_json(const std::vector<CellResult>& results,
                                      const Bounds& bounds, const MutationSpec& mut);

/// Writes `text` to `path` atomically enough for CI (tmp + rename is
/// overkill here; a failed write throws CheckFailure).
void write_file(const std::string& path, const std::string& text);

}  // namespace srbsg::verify
