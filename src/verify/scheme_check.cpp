// Stepping engine for the scheme-roundtrip and remap-preservation
// families: drives a scheme through a full rotation schedule and checks
// the family invariant after EVERY write, so a violation is pinned to
// the exact remap step that introduced it.

#include <atomic>
#include <chrono>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "pcm/bank.hpp"
#include "verify/checks.hpp"
#include "verify/minimize.hpp"

namespace srbsg::verify::detail {

namespace {

constexpr u64 kToken = 0xD00D0000;
constexpr u64 kSteadyEndurance = u64{1} << 40;

/// Injectivity + bounds of the full translation (the LA->PA->LA
/// bijection proof at this bank size). `stamp` is scratch reused across
/// steps; `marker` must be unique per step.
std::optional<std::string> check_roundtrip(const wl::WearLeveler& scheme, std::vector<u64>& stamp,
                                           u64 marker) {
  const u64 lines = scheme.logical_lines();
  const u64 physical = scheme.physical_lines();
  for (u64 la = 0; la < lines; ++la) {
    const Pa pa = scheme.translate(La{la});
    if (pa.value() >= physical) {
      return "translate(" + std::to_string(la) + ")=" + std::to_string(pa.value()) +
             " out of bounds (physical=" + std::to_string(physical) + ")";
    }
    if (stamp[pa.value()] == marker) {
      return "translation collision at pa=" + std::to_string(pa.value()) +
             " (second la=" + std::to_string(la) + ")";
    }
    stamp[pa.value()] = marker;
  }
  return std::nullopt;
}

std::optional<std::string> check_preservation(const wl::WearLeveler& scheme,
                                              const pcm::PcmBank& bank, u64 data_writes,
                                              u64 movements) {
  for (u64 la = 0; la < scheme.logical_lines(); ++la) {
    const u64 token = scheme.read(La{la}, bank).first.token;
    if (token != kToken + la) {
      return "data lost: la=" + std::to_string(la) + " reads token " + std::to_string(token) +
             " instead of " + std::to_string(kToken + la);
    }
  }
  const u64 expected = data_writes + movements * scheme.writes_per_movement();
  if (bank.total_writes() != expected) {
    return "wear conservation broken: bank writes=" + std::to_string(bank.total_writes()) +
           " but data writes + movements*wpm=" + std::to_string(expected);
  }
  scheme.validate_state();  // throws CheckFailure on internal corruption
  return std::nullopt;
}

}  // namespace

std::optional<std::string> replay_scheme_trace(std::string_view family, const wl::SchemeSpec& spec,
                                               const MutationSpec& mut,
                                               const std::vector<u64>& trace, u64* steps_checked) {
  // arm_after counts trace writes; the tagging prologue always forwards
  // faithfully.
  MutationSpec eff = mut;
  if (eff.kind != MutationKind::kNone) eff.arm_after += spec.lines;
  auto scheme = maybe_mutate(wl::make_scheme(spec), eff);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(spec.lines, kSteadyEndurance),
                    scheme->physical_lines());

  u64 data_writes = 0;
  u64 movements = 0;
  for (u64 la = 0; la < spec.lines; ++la) {
    const wl::WriteOutcome out = scheme->write(La{la}, pcm::LineData::mixed(kToken + la), bank);
    ++data_writes;
    movements += out.movements;
  }

  std::vector<u64> stamp(scheme->physical_lines(), std::numeric_limits<u64>::max());
  u64 steps = 0;
  std::optional<std::string> violation;
  for (std::size_t i = 0; i < trace.size() && !violation; ++i) {
    const u64 la = trace[i] % spec.lines;
    try {
      const wl::WriteOutcome out =
          scheme->write(La{la}, pcm::LineData::mixed(kToken + la), bank);
      ++data_writes;
      movements += out.movements;
      violation = family == kRoundtripFamily
                      ? check_roundtrip(*scheme, stamp, i)
                      : check_preservation(*scheme, bank, data_writes, movements);
    } catch (const CheckFailure& e) {
      violation = std::string("CheckFailure: ") + e.what();
    }
    ++steps;
    if (violation) violation = "step " + std::to_string(i) + ": " + *violation;
  }
  if (steps_checked != nullptr) *steps_checked = steps;
  return violation;
}

CellResult run_scheme_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                           const MutationSpec& mut) {
  const auto t0 = std::chrono::steady_clock::now();
  CellResult res;
  res.cell = cell;
  const std::string_view family = cell.check;
  const u64 lines = cell.param;

  // One probe construction to size the rotation budget off the real
  // physical line count (spares differ per scheme).
  const u64 physical = wl::make_scheme(cell_spec(cell.scheme, bounds, lines, 0))->physical_lines();
  const u64 budget = write_budget(physical, bounds);
  std::vector<u64> trace(budget);
  for (u64 i = 0; i < budget; ++i) trace[i] = i % lines;

  constexpr u64 kNoSeed = std::numeric_limits<u64>::max();
  std::atomic<u64> best_seed{kNoSeed};
  std::atomic<u64> states{0};
  std::vector<std::string> messages(bounds.seeds);
  parallel_for(pool, static_cast<std::size_t>(bounds.seeds), [&](std::size_t seed) {
    if (best_seed.load(std::memory_order_relaxed) < seed) return;
    const wl::SchemeSpec spec = cell_spec(cell.scheme, bounds, lines, seed);
    u64 steps = 0;
    const std::optional<std::string> violation =
        replay_scheme_trace(family, spec, mut, trace, &steps);
    states.fetch_add(steps, std::memory_order_relaxed);
    if (violation.has_value()) {
      messages[seed] = *violation;
      u64 cur = best_seed.load(std::memory_order_relaxed);
      while (seed < cur && !best_seed.compare_exchange_weak(cur, seed)) {
      }
    }
  });

  const u64 seed = best_seed.load();
  if (seed != kNoSeed) {
    const wl::SchemeSpec spec = cell_spec(cell.scheme, bounds, lines, seed);
    const auto fails = [&](const std::vector<u64>& candidate) {
      return replay_scheme_trace(family, spec, mut, candidate).has_value();
    };
    MinimizeResult min = ddmin(trace, fails);
    Counterexample cex;
    cex.original_size = trace.size();
    cex.size = min.trace.size();
    cex.minimized = min.minimal;
    cex.message = "scheme=" + cell.scheme + " lines=" + std::to_string(lines) +
                  " seed=" + std::to_string(seed) + ": " +
                  replay_scheme_trace(family, spec, mut, min.trace).value_or(messages[seed]);
    std::ostringstream rp;
    rp << "check=" << family << ";scheme=" << cell.scheme << ";lines=" << lines
       << ";regions=" << spec.regions << ";inner=" << spec.inner_interval
       << ";outer=" << spec.outer_interval << ";stages=" << spec.stages << ";seed=" << seed
       << ";mutate=" << to_string(mut.kind) << ";arm=" << mut.arm_after
       << ";trace=" << format_trace(min.trace);
    cex.replay = rp.str();
    res.pass = false;
    res.cex = std::move(cex);
  }

  res.states = states.load();
  res.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace srbsg::verify::detail
