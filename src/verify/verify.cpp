#include "verify/verify.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "verify/checks.hpp"

namespace srbsg::verify {

namespace detail {

wl::SchemeSpec cell_spec(std::string_view scheme, const Bounds& bounds, u64 lines, u64 seed) {
  wl::SchemeSpec spec;
  spec.kind = wl::parse_scheme(scheme);
  spec.lines = lines;
  // Regions must stay a power of two strictly below the line count for
  // the multi-way/sub-region schemes; clamp for tiny banks.
  u64 regions = bounds.regions;
  while (regions >= lines && regions > 1) regions /= 2;
  spec.regions = regions;
  spec.inner_interval = bounds.inner_interval;
  spec.outer_interval = bounds.outer_interval;
  spec.stages = bounds.stages;
  // Seed 0 is reserved by some RNG seeding paths; keep seeds distinct
  // and nonzero.
  spec.seed = seed * 0x9e3779b9ULL + 1;
  return spec;
}

u64 write_budget(u64 physical_lines, const Bounds& bounds) {
  const u64 interval = std::max(bounds.inner_interval, bounds.outer_interval);
  return bounds.rotation_rounds * (physical_lines + 1) * interval;
}

std::string format_trace(const std::vector<u64>& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i) os << ',';
    os << trace[i];
  }
  return os.str();
}

std::vector<u64> parse_trace(const std::string& csv) {
  std::vector<u64> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    check(!item.empty(), "replay trace: empty element");
    out.push_back(std::stoull(item));
  }
  return out;
}

std::string replay_get(const std::string& replay, const std::string& key, bool required) {
  std::istringstream is(replay);
  std::string field;
  while (std::getline(is, field, ';')) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) continue;
    if (field.substr(0, eq) == key) return field.substr(eq + 1);
  }
  check(!required, "replay string missing key: " + key);
  return "";
}

std::optional<std::string> replay_counterexample(const std::string& replay,
                                                 const Bounds& bounds) {
  const std::string family = replay_get(replay, "check");
  if (family == kFeistelFamily) {
    const u32 width = static_cast<u32>(std::stoul(replay_get(replay, "width")));
    const std::vector<u64> keys = parse_trace(replay_get(replay, "keys"));
    return replay_feistel_point(width, keys, std::stoull(replay_get(replay, "x")));
  }

  wl::SchemeSpec spec;
  spec.kind = wl::parse_scheme(replay_get(replay, "scheme"));
  spec.lines = std::stoull(replay_get(replay, "lines"));
  spec.regions = std::stoull(replay_get(replay, "regions"));
  spec.inner_interval = std::stoull(replay_get(replay, "inner"));
  spec.outer_interval = std::stoull(replay_get(replay, "outer"));
  spec.stages = static_cast<u32>(std::stoul(replay_get(replay, "stages")));
  const u64 seed = std::stoull(replay_get(replay, "seed"));
  spec.seed = seed * 0x9e3779b9ULL + 1;

  MutationSpec mut;
  const std::string mut_name = replay_get(replay, "mutate", /*required=*/false);
  if (!mut_name.empty()) {
    mut.kind = parse_mutation(mut_name);
    const std::string arm = replay_get(replay, "arm", /*required=*/false);
    if (!arm.empty()) mut.arm_after = std::stoull(arm);
  }
  const std::vector<u64> trace = parse_trace(replay_get(replay, "trace"));

  if (family == kRoundtripFamily || family == kPreserveFamily) {
    return replay_scheme_trace(family, spec, mut, trace);
  }
  if (family == kBatchFamily || family == kEpochFamily) {
    const bool fail_mode = replay_get(replay, "mode") == "fail";
    const bool cycle_op = replay_get(replay, "op") == "cycle";
    const wl::EngineTier tier =
        family == kEpochFamily ? wl::EngineTier::kEpoch : wl::EngineTier::kWindowed;
    return replay_batch_pattern(spec, mut, trace, fail_mode, cycle_op, bounds, tier);
  }
  throw CheckFailure("replay string names unknown check family: " + family);
}

}  // namespace detail

std::string check_source_file(const std::string& check) {
  if (check == detail::kFeistelFamily) return "src/mapping/feistel.cpp";
  if (check == detail::kBatchFamily) return "src/wl/batch.cpp";
  if (check == detail::kEpochFamily) return "src/wl/epoch.cpp";
  if (check == detail::kRoundtripFamily || check == detail::kPreserveFamily) {
    return "src/wl/factory.cpp";
  }
  throw CheckFailure("unknown check family: " + check);
}

std::vector<Cell> list_cells(const Bounds& bounds) {
  check(bounds.min_width >= 2 && bounds.min_width <= bounds.max_width,
        "bounds: feistel width range invalid");
  check(!bounds.bank_lines.empty() && bounds.seeds > 0, "bounds: need bank sizes and seeds");
  std::vector<Cell> cells;

  for (u32 w = bounds.min_width; w <= bounds.max_width; ++w) {
    Cell c;
    c.id = "feistel/w" + std::to_string(w);
    c.check = std::string(detail::kFeistelFamily);
    c.param = w;
    cells.push_back(std::move(c));
  }

  const auto scheme_names = {
      wl::SchemeKind::kNone,       wl::SchemeKind::kStartGap, wl::SchemeKind::kRbsg,
      wl::SchemeKind::kSr1,        wl::SchemeKind::kSr2,      wl::SchemeKind::kMultiWaySr,
      wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kTable};
  for (const std::string_view family : {detail::kRoundtripFamily, detail::kPreserveFamily}) {
    const std::string prefix = family == detail::kRoundtripFamily ? "roundtrip" : "preserve";
    for (const wl::SchemeKind kind : scheme_names) {
      for (const u64 lines : bounds.bank_lines) {
        Cell c;
        c.scheme = std::string(wl::to_string(kind));
        c.id = prefix + "/" + c.scheme + "/n" + std::to_string(lines);
        c.check = std::string(family);
        c.param = lines;
        cells.push_back(std::move(c));
      }
    }
  }
  for (const wl::SchemeKind kind : scheme_names) {
    Cell c;
    c.scheme = std::string(wl::to_string(kind));
    c.id = "batch/" + c.scheme + "/n" + std::to_string(bounds.batch_lines);
    c.check = std::string(detail::kBatchFamily);
    c.param = bounds.batch_lines;
    cells.push_back(std::move(c));
  }
  for (const wl::SchemeKind kind : scheme_names) {
    Cell c;
    c.scheme = std::string(wl::to_string(kind));
    c.id = "epoch/" + c.scheme + "/n" + std::to_string(bounds.batch_lines);
    c.check = std::string(detail::kEpochFamily);
    c.param = bounds.batch_lines;
    cells.push_back(std::move(c));
  }
  return cells;
}

CellResult run_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                    const MutationSpec& mut) {
  if (cell.check == detail::kFeistelFamily) {
    return detail::run_feistel_cell(cell, bounds, pool);
  }
  if (cell.check == detail::kRoundtripFamily || cell.check == detail::kPreserveFamily) {
    return detail::run_scheme_cell(cell, bounds, pool, mut);
  }
  if (cell.check == detail::kBatchFamily) {
    return detail::run_batch_cell(cell, bounds, pool, mut);
  }
  if (cell.check == detail::kEpochFamily) {
    return detail::run_epoch_cell(cell, bounds, pool, mut);
  }
  throw CheckFailure("run_cell: unknown check family: " + cell.check);
}

std::vector<CellResult> run_cells(const std::vector<Cell>& cells, const Bounds& bounds,
                                  ThreadPool& pool, const MutationSpec& mut) {
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (const Cell& cell : cells) {
    results.push_back(run_cell(cell, bounds, pool, mut));
  }
  return results;
}

}  // namespace srbsg::verify
