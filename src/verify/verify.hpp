#pragma once
// srbsg-verify: a bounded model checker for the scheme invariants the
// security argument rests on (DESIGN.md §14).
//
// Unlike the unit tests and the runtime auditor — which *sample* states —
// the verifier exhaustively enumerates a bounded state space and proves
// the invariant over all of it, or emits a minimized, replayable
// counterexample. Five check families:
//
//   feistel-bijection   map()/unmap() invert each other for EVERY key
//                       tuple x stage count at 4-12-bit widths
//   scheme-roundtrip    translation stays an in-bounds injection (hence a
//                       LA->PA->LA bijection) after EVERY write of a full
//                       rotation schedule, all schemes, 16-64-line banks
//   remap-preservation  no remap loses data; write/movement bookkeeping
//                       conserves bank wear exactly, step by step
//   batch-equivalence   write_batch()/write_cycle() bit-identical to the
//                       per-write reference loop for ALL patterns up to a
//                       bounded length, steady and failing banks
//   epoch-equivalence   the same pattern grid with the fast arm under
//                       EngineTier::kEpoch, so the analytic fast-forward
//                       engines (DESIGN.md §15) carry the bit-identity
//                       proof, including mid-pattern endurance failure
//
// The state space of one (check, scheme, width) cell is sharded across a
// ThreadPool via parallel_for; results are deterministic (the lowest
// failing state index wins). The CLI (tools/srbsg-verify) caches verified
// cells keyed on a content hash of the sources they exercise.

#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "verify/mutant.hpp"

namespace srbsg::verify {

/// Exploration bounds. The defaults are the *reference bounds* the CI
/// verify job runs and DESIGN.md §14 documents; tests shrink them.
struct Bounds {
  // feistel-bijection: widths [min_width, max_width]; for each width,
  // every stage count whose full key cross-product fits in
  // 2^key_budget_bits tuples (half_bits * stages <= key_budget_bits) is
  // verified over ALL key tuples x ALL inputs.
  u32 min_width{4};
  u32 max_width{12};
  u32 max_stages{8};
  u32 key_budget_bits{16};

  // scheme-roundtrip / remap-preservation: bank sizes (logical lines) and
  // the exhaustive seed range [0, seeds). rotation_rounds scales the
  // write budget so every Start-Gap region completes at least that many
  // full rotations and every SR/DFN level at least one full key round.
  std::vector<u64> bank_lines{16, 64};
  u64 seeds{8};
  u64 rotation_rounds{3};

  // batch-equivalence: alphabet = all logical lines of a batch_lines
  // bank; every pattern in [1, max_pattern_len] positions is replayed
  // through write_batch and write_cycle against the per-write loop.
  u64 batch_lines{8};
  u64 max_pattern_len{4};
  /// write_cycle repetition count = pattern length * this factor + 1, so
  /// the final cycle is always partial.
  u64 cycle_count_factor{3};

  /// Scheme-construction knobs shared by the stepping/batch families.
  u64 regions{4};
  u64 inner_interval{4};
  u64 outer_interval{8};
  u32 stages{3};
};

/// A minimized, replayable witness of an invariant violation.
struct Counterexample {
  std::string message;  ///< what diverged, with both values
  /// Flat `key=value;...` string accepted by `srbsg-verify --replay`.
  std::string replay;
  u64 original_size{0};  ///< states/pattern positions before minimization
  u64 size{0};           ///< after minimization
  bool minimized{false};
};

/// One verifiable unit of the grid: (check family, scheme, size param).
struct Cell {
  std::string id;      ///< e.g. "feistel/w6", "batch/sr2/n8"
  std::string check;   ///< family id ("feistel-bijection", ...)
  std::string scheme;  ///< factory name; empty for feistel cells
  u64 param{0};        ///< width_bits (feistel) or logical lines
};

struct CellResult {
  Cell cell;
  bool pass{true};
  u64 states{0};  ///< states actually enumerated
  double wall_ms{0.0};
  std::optional<Counterexample> cex;
};

/// Source file each family anchors to in SARIF reports.
[[nodiscard]] std::string check_source_file(const std::string& check);

/// The full cell grid at `bounds`, in deterministic order.
[[nodiscard]] std::vector<Cell> list_cells(const Bounds& bounds);

/// Exhaustively verifies one cell, sharding its state space over `pool`.
/// A non-kNone `mut` seeds the mutation into every scheme the cell
/// constructs (selftest path: the cell must then fail).
[[nodiscard]] CellResult run_cell(const Cell& cell, const Bounds& bounds, ThreadPool& pool,
                                  const MutationSpec& mut = {});

/// All cells in order; stops early only on internal errors, never on a
/// counterexample (every cell reports independently).
[[nodiscard]] std::vector<CellResult> run_cells(const std::vector<Cell>& cells,
                                                const Bounds& bounds, ThreadPool& pool,
                                                const MutationSpec& mut = {});

}  // namespace srbsg::verify
