#include "wl/attack_detector.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::wl {

void AttackDetectorConfig::validate() const {
  check(window > 0, "AttackDetectorConfig: window must be positive");
  check(threshold > 1.0, "AttackDetectorConfig: threshold must exceed 1");
  check(is_pow2(tracked_regions), "AttackDetectorConfig: regions must be a power of two");
}

AttackDetector::AttackDetector(const AttackDetectorConfig& cfg, u64 lines)
    : cfg_(cfg), lines_(lines) {
  cfg_.validate();
  check(is_pow2(lines), "AttackDetector: lines must be a power of two");
  const u64 regions = std::min(cfg_.tracked_regions, lines);
  region_shift_ = log2_floor(lines / regions);
  counts_.assign(regions, 0);
}

bool AttackDetector::record(La la, u64 count) {
  check(la.value() < lines_, "AttackDetector: address out of range");
  const u32 before = boost_;
  u64 remaining = count;
  while (remaining > 0) {
    const u64 room = cfg_.window - in_window_;
    const u64 chunk = std::min(remaining, room);
    counts_[la.value() >> region_shift_] += chunk;
    in_window_ += chunk;
    remaining -= chunk;
    if (in_window_ >= cfg_.window) roll_window();
  }
  return boost_ != before;
}

void AttackDetector::roll_window() {
  ++windows_;
  const u64 hottest = *std::max_element(counts_.begin(), counts_.end());
  const double fair = static_cast<double>(cfg_.window) / static_cast<double>(counts_.size());
  if (static_cast<double>(hottest) > cfg_.threshold * fair) {
    if (boost_ < cfg_.max_boost) ++boost_;
    ++trips_;
  } else if (boost_ > 0) {
    --boost_;
  }
  std::fill(counts_.begin(), counts_.end(), u64{0});
  in_window_ = 0;
}

}  // namespace srbsg::wl
