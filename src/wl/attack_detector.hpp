#pragma once
// Online malicious-write-stream detector, after Qureshi et al., "Practical
// and secure PCM systems by online detection of malicious write streams"
// (HPCA'11) — reference [15] of the paper. The paper argues such a
// detector defeats BPA-style attacks (boosting the wear-leveling rate
// when traffic concentrates) but claims that "increasing the rate of
// wear leveling instead accelerates RTA"; the ablation bench puts that
// claim to the test.
//
// Mechanism: writes are counted per coarse region over a sliding window.
// If the hottest region's share exceeds `threshold` × fair share, the
// boost level rises (halving the effective remap interval); when traffic
// looks benign for a full window, the boost decays.

#include <vector>

#include "common/types.hpp"

namespace srbsg::wl {

struct AttackDetectorConfig {
  u64 window{1u << 16};    ///< writes per observation window
  double threshold{8.0};   ///< hot-share multiple of fair share that trips
  u32 max_boost{4};        ///< maximum log2 interval divisor
  u64 tracked_regions{64};  ///< counting granularity

  void validate() const;
};

class AttackDetector {
 public:
  AttackDetector(const AttackDetectorConfig& cfg, u64 lines);

  /// Record `count` writes to `la`. Returns true when the boost level
  /// changed (caller should push the new level into the scheme).
  bool record(La la, u64 count = 1);

  [[nodiscard]] u32 boost() const { return boost_; }
  [[nodiscard]] u64 windows_observed() const { return windows_; }
  [[nodiscard]] u64 trips() const { return trips_; }

 private:
  /// Close the current window and update the boost level.
  void roll_window();

  AttackDetectorConfig cfg_;
  u64 lines_;
  u32 region_shift_;
  std::vector<u64> counts_;
  u64 in_window_{0};
  u32 boost_{0};
  u64 windows_{0};
  u64 trips_{0};
};

}  // namespace srbsg::wl
