#include "wl/batch.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace srbsg::wl::batch {

HitSet::HitSet(std::vector<u64> offsets, u64 period)
    : offs_(std::move(offsets)), period_(period) {
  SRBSG_DCHECK(period_ >= 1, "HitSet: empty period");
  SRBSG_DCHECK(std::is_sorted(offs_.begin(), offs_.end()), "HitSet: offsets not sorted");
  SRBSG_DCHECK(offs_.empty() || offs_.back() < period_, "HitSet: offset past the period");
}

u64 HitSet::hits_in(u64 start, u64 writes) const {
  const u64 m = offs_.size();
  if (m == 0 || writes == 0) return 0;
  u64 hits = (writes / period_) * m;
  const u64 rem = writes % period_;
  if (rem > 0) {
    // Circular range [start, start + rem) over the sorted offsets.
    const u64 end = start + rem;  // start < period, rem < period => end < 2*period
    const auto lo = std::lower_bound(offs_.begin(), offs_.end(), start);
    if (end <= period_) {
      hits += static_cast<u64>(std::lower_bound(lo, offs_.end(), end) - lo);
    } else {
      hits += static_cast<u64>(offs_.end() - lo);
      hits += static_cast<u64>(
          std::lower_bound(offs_.begin(), offs_.end(), end - period_) - offs_.begin());
    }
  }
  return hits;
}

u64 HitSet::until_nth(u64 start, u64 n) const {
  const u64 m = offs_.size();
  if (m == 0) return kUnbounded;
  SRBSG_DCHECK(n >= 1, "HitSet: until_nth needs n >= 1");
  const u64 cycles = (n - 1) / m;
  const u64 rank = (n - 1) % m;
  // Offset of the rank-th hit in rotated order (positions >= start first).
  const auto lo = std::lower_bound(offs_.begin(), offs_.end(), start);
  const u64 ge = static_cast<u64>(offs_.end() - lo);
  const u64 off = rank < ge ? lo[static_cast<std::ptrdiff_t>(rank)] - start
                            : offs_[rank - ge] + period_ - start;
  if (cycles > (kUnbounded - off - 1) / period_) return kUnbounded;
  return cycles * period_ + off + 1;
}

void build_line_scheds(std::span<const Pa> pas, const pcm::PcmBank& bank,
                       std::vector<LineSched>& out) {
  out.clear();
  const u64 period = pas.size();
  std::vector<std::pair<u64, u64>> keyed;  // (pa, position), lexicographic
  keyed.reserve(period);
  for (u64 i = 0; i < period; ++i) keyed.emplace_back(pas[i].value(), i);
  std::sort(keyed.begin(), keyed.end());
  for (u64 i = 0; i < period;) {
    u64 j = i;
    std::vector<u64> offs;
    while (j < period && keyed[j].first == keyed[i].first) {
      offs.push_back(keyed[j].second);
      ++j;
    }
    LineSched ls;
    ls.pa = Pa{keyed[i].first};
    ls.hits = HitSet(std::move(offs), period);
    // Writes this line can absorb until it records the first failure; the
    // engine only runs while the bank has none, so wear < limit here.
    const u64 limit = bank.line_endurance(ls.pa);
    const u64 wear = bank.wear(ls.pa);
    ls.remaining = limit > wear ? limit - wear : 1;
    out.push_back(std::move(ls));
    i = j;
  }
}

void build_domain_scheds(std::span<const u64> keys, std::vector<DomainSched>& out) {
  out.clear();
  const u64 period = keys.size();
  std::vector<std::pair<u64, u64>> keyed;  // (domain, position)
  keyed.reserve(period);
  for (u64 i = 0; i < period; ++i) {
    if (keys[i] != kNoDomain) keyed.emplace_back(keys[i], i);
  }
  std::sort(keyed.begin(), keyed.end());
  const u64 n = keyed.size();
  for (u64 i = 0; i < n;) {
    u64 j = i;
    std::vector<u64> offs;
    while (j < n && keyed[j].first == keyed[i].first) {
      offs.push_back(keyed[j].second);
      ++j;
    }
    out.push_back(DomainSched{keyed[i].first, HitSet(std::move(offs), period)});
    i = j;
  }
}

u64 cap_chunk_at_failure(std::span<const LineSched> lines, u64 start, u64 chunk) {
  u64 cap = chunk;
  for (const auto& ls : lines) {
    // until_nth(remaining) <= cap exactly when the window holds enough
    // hits to cross the limit, so the min lands on the failing write.
    if (ls.hits.hits_in(start, cap) >= ls.remaining) {
      cap = std::min(cap, ls.hits.until_nth(start, ls.remaining));
    }
  }
  return cap;
}

Ns apply_chunk(std::span<LineSched> lines, const pcm::LineData& data, u64 start, u64 chunk,
               pcm::PcmBank& bank) {
  return apply_chunk(lines, data, start, chunk, bank, nullptr, 0, 0);
}

Ns apply_chunk(std::span<LineSched> lines, const pcm::LineData& data, u64 start, u64 chunk,
               pcm::PcmBank& bank, telemetry::Recorder* tel, u16 scheme, u64 base_ns) {
  const bool traced = tel != nullptr && chunk > 0;
  if (traced) {
    tel->span_begin(telemetry::SpanKind::kBatchChunk, scheme, telemetry::kGlobalDomain,
                    base_ns, chunk);
    tel->emit(telemetry::EventType::kBatchChunkApplied, scheme, telemetry::kGlobalDomain, start,
              chunk);
  }
  Ns total{0};
  for (auto& ls : lines) {
    const u64 h = ls.hits.hits_in(start, chunk);
    if (h == 0) continue;
    total += bank.bulk_write(ls.pa, data, h);
    ls.remaining = ls.remaining > h ? ls.remaining - h : 0;
  }
  if (traced) {
    tel->span_end(telemetry::SpanKind::kBatchChunk, scheme, telemetry::kGlobalDomain,
                  base_ns + total.value(), chunk);
  }
  return total;
}

}  // namespace srbsg::wl::batch
