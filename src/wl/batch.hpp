#pragma once
// Shared machinery for the batched write paths (write_batch/write_cycle).
//
// A periodic pattern of L addresses is described by *hit schedules*: for
// each distinct physical line (and each remap-counter domain) the sorted
// pattern offsets it occupies. Closed-form circular-range counting then
// answers, in O(log L), the two questions the windowed engine needs:
//   * how many of the next `writes` writes hit this line/domain, and
//   * after how many writes does the n-th hit land.
// Windows end at the earliest remap trigger or at the exact write that
// crosses a line's endurance limit, so the engine applies bulk writes
// with zero overshoot and fires triggers precisely where the per-write
// reference loop would — the bit-identity contract of DESIGN.md §11.

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "pcm/bank.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl::batch {

/// "No bound" sentinel for until_nth() when the schedule is empty.
inline constexpr u64 kUnbounded = ~u64{0};

/// Domain key marking a pattern position that advances no remap counter
/// (e.g. the Security-RBSG outer spare line).
inline constexpr u64 kNoDomain = ~u64{0};

/// Minimum run of identical addresses for which run_compressed_batch()
/// delegates to the event-driven write_cycle() fast path.
inline constexpr u64 kRunThreshold = 16;

/// A pattern whose period exceeds this multiple of the smallest effective
/// remapping interval gains nothing from windowing (every window would
/// rescan O(L) schedules); scheme overrides fall back to the generic
/// per-write loop beyond it.
inline constexpr u64 kPatternFallbackFactor = 4;

/// Sorted pattern offsets (subset of [0, period)) hit by one line/domain.
class HitSet {
 public:
  HitSet() = default;
  HitSet(std::vector<u64> offsets, u64 period);

  [[nodiscard]] u64 per_period() const { return offs_.size(); }
  [[nodiscard]] bool empty() const { return offs_.empty(); }

  /// Hits among the next `writes` writes when the cycle is at `start`.
  [[nodiscard]] u64 hits_in(u64 start, u64 writes) const;

  /// Writes needed (from phase `start`) so that the n-th hit (n >= 1) has
  /// just been applied; kUnbounded when the set is empty or the value
  /// would overflow.
  [[nodiscard]] u64 until_nth(u64 start, u64 n) const;

 private:
  std::vector<u64> offs_;  ///< strictly increasing, all < period_
  u64 period_{1};
};

/// Per-distinct-physical-line schedule plus the writes this line can
/// still absorb before it records the bank's first endurance failure.
struct LineSched {
  Pa pa{0};
  HitSet hits;
  u64 remaining{0};
};

/// Per-remap-counter-domain schedule (domain = whatever unit owns one
/// write counter: an RBSG region, an SR sub-region, the global counter).
struct DomainSched {
  u64 key{0};
  HitSet hits;
};

/// Group pattern positions by physical line and compute `remaining` from
/// the bank's current wear. Reuses `out`'s capacity across rebuilds.
void build_line_scheds(std::span<const Pa> pas, const pcm::PcmBank& bank,
                       std::vector<LineSched>& out);

/// Group pattern positions by domain key; positions keyed kNoDomain are
/// excluded. Reuses `out`'s capacity across rebuilds.
void build_domain_scheds(std::span<const u64> keys, std::vector<DomainSched>& out);

/// Movement-triggered rebuild guard. Recompute the pattern's mapping into
/// `fresh` (sized to the period) and call this; it adopts `fresh` by swap
/// and returns true when the cached values differ or `cached` is empty
/// (first build). Most movements relocate lines outside the pattern:
/// translations are unchanged, and since a movement only writes slots it
/// remapped (or the previously empty gap/spare slot), unchanged
/// translations also mean the pattern's physical lines took no wear from
/// it — every schedule, including the incrementally maintained
/// `remaining`, stays exact and need not be rebuilt.
template <typename T>
[[nodiscard]] bool adopt_if_changed(std::vector<T>& cached, std::vector<T>& fresh) {
  if (!cached.empty() && cached == fresh) return false;
  cached.swap(fresh);
  return true;
}

/// Largest prefix of `chunk` writes (from phase `start`) that stops
/// exactly at the first write crossing any line's endurance limit — the
/// same write the per-write reference loop would stop after.
[[nodiscard]] u64 cap_chunk_at_failure(std::span<const LineSched> lines, u64 start, u64 chunk);

/// Apply `chunk` writes (from phase `start`) as per-line bulk writes and
/// decrement each schedule's `remaining`. Returns the summed latency,
/// which equals the per-write sum because one batch carries one data
/// value (constant per-write latency).
[[nodiscard]] Ns apply_chunk(std::span<LineSched> lines, const pcm::LineData& data, u64 start,
                             u64 chunk, pcm::PcmBank& bank);

/// Telemetry-aware variant: records a BatchChunkApplied event (a=phase,
/// b=writes in the window) when `tel` is non-null before applying, and
/// brackets the chunk with a BatchChunk span over its latency window —
/// `base_ns` is the caller's accumulated intra-op latency at chunk
/// entry. The plain overload forwards here with a null recorder.
[[nodiscard]] Ns apply_chunk(std::span<LineSched> lines, const pcm::LineData& data, u64 start,
                             u64 chunk, pcm::PcmBank& bank, telemetry::Recorder* tel,
                             u16 scheme, u64 base_ns);

/// Shared write_batch skeleton: walk maximal runs of identical addresses,
/// sending long runs through the scheme's write_cycle() fast path and
/// short ones through `per_write(la, out)` — the scheme's hoisted
/// single-write body (translation state, counters and bank resolved
/// outside the loop). Stops after the write that records a failure,
/// exactly like the per-write reference loop.
template <typename Scheme, typename PerWrite>
BulkOutcome run_compressed_batch(Scheme& self, std::span<const La> las,
                                 const pcm::LineData& data, pcm::PcmBank& bank,
                                 PerWrite&& per_write) {
  BulkOutcome out;
  const u64 n = las.size();
  u64 i = 0;
  while (i < n && !bank.has_failure()) {
    u64 run = 1;
    while (i + run < n && las[i + run].value() == las[i].value()) ++run;
    if (run >= kRunThreshold) {
      const BulkOutcome b = self.write_cycle(las.subspan(i, 1), data, run, bank);
      out.total += b.total;
      out.writes_applied += b.writes_applied;
      out.movements += b.movements;
      if (b.writes_applied < run) break;
    } else {
      for (u64 k = 0; k < run && !bank.has_failure(); ++k) {
        per_write(las[i + k], out);
      }
    }
    i += run;
  }
  return out;
}

}  // namespace srbsg::wl::batch
