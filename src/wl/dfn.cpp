#include "wl/dfn.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mapping/feistel.hpp"
#include "mapping/quality.hpp"
#include "mapping/table_mapper.hpp"

namespace srbsg::wl {

std::unique_ptr<mapping::AddressMapper> DynamicFeistelOuter::make_prp(u64 seed) const {
  Rng rng(seed);
  switch (kind_) {
    case OuterPrpKind::kCubingFeistel: {
      const auto keys = mapping::FeistelNetwork::random_keys(width_, stages_, rng);
      return std::make_unique<mapping::FeistelNetwork>(width_, keys);
    }
    case OuterPrpKind::kTablePrp:
      return std::make_unique<mapping::TableMapper>(width_, rng);
  }
  throw CheckFailure("DynamicFeistelOuter: unhandled PRP kind");
}

DynamicFeistelOuter::DynamicFeistelOuter(u32 width_bits, u32 stages, Rng rng,
                                         OuterPrpKind kind)
    : width_(width_bits), stages_(stages), kind_(kind), rng_(rng) {
  check(width_bits >= 2 && width_bits <= 28, "DynamicFeistelOuter: width out of range");
  check(stages >= 1, "DynamicFeistelOuter: need at least one stage");
  // Boot: both epochs use the same permutation, everything consistently
  // mapped, all lines counted as remapped so the first advance starts a
  // fresh round.
  const u64 seed0 = rng_.next();
  enc_p_ = make_prp(seed0);
  enc_c_ = make_prp(seed0);
  is_remap_.assign(lines(), true);
  slot_remapped_.assign(lines(), true);
  remapped_ = lines();
}

u64 DynamicFeistelOuter::translate(u64 la) const {
  check(la < lines(), "DynamicFeistelOuter: address out of range");
  if (spare_holder_ && *spare_holder_ == la) return spare_ia();
  return is_remap_[la] ? enc_c_->map(la) : enc_p_->map(la);
}

void DynamicFeistelOuter::begin_round() {
  enc_p_ = std::move(enc_c_);
  enc_c_ = make_prp(rng_.next());
  is_remap_.assign(lines(), false);
  slot_remapped_.assign(lines(), false);
  remapped_ = 0;
  scan_ = 0;
}

u64 DynamicFeistelOuter::next_unremapped_slot() {
  // Scan slots in order (the paper starts at slot 0); a slot still holds
  // its previous-round resident DEC_Kp(slot) iff that LA has not been
  // remapped yet, which makes it a valid next cycle start. Scanning by
  // slot keeps the evicted LA key-dependent — scanning by LA would park
  // the same logical line on the (un-leveled) spare every single round.
  // The slot-indexed mirror spares the scan a DEC_Kp per probed slot.
  while (scan_ < lines() && slot_remapped_[scan_]) ++scan_;
  check(scan_ < lines(), "DynamicFeistelOuter: no unremapped slot left");
  return scan_;
}

DynamicFeistelOuter::Movement DynamicFeistelOuter::advance() {
  if (phase_ == Phase::kIdle) {
    begin_round();
    round_movements_ = 0;
  }
  ++round_movements_;
  if (phase_ == Phase::kIdle || phase_ == Phase::kNeedNewCycle) {
    phase_ = Phase::kInCycle;
    // Open a cycle: evict the first slot whose resident has not been
    // remapped yet into the spare.
    const u64 slot = next_unremapped_slot();
    const u64 la = enc_p_->unmap(slot);
    spare_holder_ = la;
    cycle_start_ = slot;
    gap_ = slot;
    return Movement{slot, spare_ia()};
  }

  // In-cycle movement (Fig. 9): the LA that belongs at the gap under the
  // current keys moves in; its old slot becomes the new gap.
  const u64 loc = enc_c_->unmap(gap_);
  const u64 old_gap = gap_;
  if (spare_holder_ && *spare_holder_ == loc) {
    // Cycle closes: loc's data was parked in the spare at eviction time
    // (its old ENC_Kp slot is the cycle start).
    spare_holder_.reset();
    is_remap_[loc] = true;
    slot_remapped_[cycle_start_] = true;
    ++remapped_;
    if (remapped_ == lines()) {
      phase_ = Phase::kIdle;
      ++rounds_completed_;
    } else {
      phase_ = Phase::kNeedNewCycle;
    }
    return Movement{spare_ia(), old_gap};
  }
  const u64 src = enc_p_->map(loc);
  is_remap_[loc] = true;
  slot_remapped_[src] = true;
  ++remapped_;
  gap_ = src;
  return Movement{src, old_gap};
}

void DynamicFeistelOuter::validate() const {
  const u64 n = lines();
  const u64 populated =
      static_cast<u64>(std::count(is_remap_.begin(), is_remap_.end(), true));
  check_eq(populated, remapped_, "DFN: isRemap population disagrees with remapped counter");
  for (u64 slot = 0; slot < n; ++slot) {
    check_eq(static_cast<u64>(slot_remapped_[slot]),
             static_cast<u64>(is_remap_[enc_p_->unmap(slot)]),
             "DFN: slot-indexed remap mirror disagrees with isRemap");
  }
  check_le(remapped_, n, "DFN: remapped counter exceeds line count");
  check_le(scan_, n, "DFN: scan pointer out of bounds");
  switch (phase_) {
    case Phase::kIdle:
      // Between rounds every line is consistently mapped under ENC_Kc.
      check_eq(remapped_, n, "DFN: idle phase with unremapped lines");
      check(!spare_holder_.has_value(), "DFN: idle phase but a line is parked in the spare");
      break;
    case Phase::kInCycle:
      check(spare_holder_.has_value(), "DFN: in-cycle phase but the spare is empty");
      check_lt(*spare_holder_, n, "DFN: spare holder out of range");
      check(!is_remap_[*spare_holder_], "DFN: spare holder already marked remapped");
      check_lt(gap_, n, "DFN: Gap register out of bounds");
      check_lt(cycle_start_, n, "DFN: cycle start out of bounds");
      check_eq(translate(*spare_holder_), spare_ia(),
               "DFN: spare holder does not translate to the spare");
      check_lt(remapped_, n, "DFN: in-cycle phase after every line was remapped");
      break;
    case Phase::kNeedNewCycle:
      check(!spare_holder_.has_value(), "DFN: closed cycle left a line in the spare");
      check_lt(remapped_, n, "DFN: need-new-cycle phase with all lines remapped");
      break;
  }
  // The two key epochs must each be bijections — exhaustively verifiable
  // for the widths the tests and scaled sims use.
  if (width_ <= 16) {
    check(mapping::verify_bijection(*enc_p_), "DFN: ENC_Kp is not a bijection");
    check(mapping::verify_bijection(*enc_c_), "DFN: ENC_Kc is not a bijection");
  }
}

}  // namespace srbsg::wl
