#pragma once
// Dynamic Feistel Network (DFN) outer-level mapping — the paper's core
// contribution (§IV.B, Figs. 8-10).
//
// LA→IA is a keyed permutation whose keys are re-randomized every
// remapping round, so a timing attacker never has enough writes to
// recover them before they change. One extra spare line (IA index N)
// plus a Gap register enable incremental migration of the whole address
// space from the previous permutation (ENC_Kp) to the current one
// (ENC_Kc); a per-line isRemap bit selects which one translates each LA.
//
// The permutation family is pluggable: the paper's multi-stage Feistel
// network with the cubing round function (kCubingFeistel) or an explicit
// uniform random permutation table (kTablePrp) — the latter is a
// hardware-unrealistic ablation upper bound quantifying how much wear
// uniformity the cubing round's weak diffusion costs.
//
// The paper walks a single permutation cycle starting at slot 0 (Fig. 9).
// A random key pair generally induces *multiple* cycles in
// ENC_Kp ∘ DEC_Kc, so this implementation generalizes the flowchart: when
// a cycle closes (the spare's content returns to the gap), the next slot
// whose resident has not been remapped is evicted to the spare and its
// cycle is walked, until every line has been remapped. Each advance()
// performs exactly one line copy; a round therefore takes N + (#cycles)
// movements, which is N + 1 in the paper's single-cycle illustration.

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mapping/mapper.hpp"

namespace srbsg::wl {

enum class OuterPrpKind : u8 {
  kCubingFeistel,  ///< the paper's design
  kTablePrp,       ///< ideal-randomizer ablation
};

class DynamicFeistelOuter {
 public:
  /// Address space of 2^width_bits lines; `stages` Feistel stages
  /// (ignored for kTablePrp).
  DynamicFeistelOuter(u32 width_bits, u32 stages, Rng rng,
                      OuterPrpKind kind = OuterPrpKind::kCubingFeistel);

  [[nodiscard]] u64 lines() const { return u64{1} << width_; }
  /// IA index of the spare line.
  [[nodiscard]] u64 spare_ia() const { return lines(); }
  [[nodiscard]] u32 stages() const { return stages_; }
  [[nodiscard]] OuterPrpKind prp_kind() const { return kind_; }

  /// Current IA of `la`, in [0, N] (N = spare, while `la`'s data is
  /// parked there mid-round).
  [[nodiscard]] u64 translate(u64 la) const;

  /// One remapping movement: the owner must copy the data of IA slot
  /// `from` into IA slot `to` (either may be the spare index N).
  struct Movement {
    u64 from;
    u64 to;
  };
  Movement advance();

  /// Movements executed so far in the current round (0 between rounds).
  [[nodiscard]] u64 round_movements() const { return round_movements_; }
  /// Logical lines already remapped to the current keys this round.
  [[nodiscard]] u64 remapped_count() const { return remapped_; }
  /// True when no round is in progress (all lines under one key array).
  [[nodiscard]] bool round_idle() const { return phase_ == Phase::kIdle; }
  /// Rounds completed since construction.
  [[nodiscard]] u64 rounds_completed() const { return rounds_completed_; }

  /// Full consistency audit of the DFN state machine: Gap/scan bounds,
  /// isRemap population vs. the remapped counter, spare-holder/phase
  /// agreement, and (for widths small enough to enumerate) bijectivity of
  /// both key epochs' permutations. Throws CheckFailure on violation.
  void validate() const;

 private:
  enum class Phase : u8 {
    kIdle,          ///< between rounds; next advance starts a round
    kInCycle,       ///< walking a cycle; gap_ is the empty slot
    kNeedNewCycle,  ///< cycle closed but lines remain; next advance evicts
  };

  [[nodiscard]] std::unique_ptr<mapping::AddressMapper> make_prp(u64 seed) const;
  void begin_round();
  [[nodiscard]] u64 next_unremapped_slot();

  u32 width_;
  u32 stages_;
  OuterPrpKind kind_;
  Rng rng_;
  std::unique_ptr<mapping::AddressMapper> enc_p_;
  std::unique_ptr<mapping::AddressMapper> enc_c_;
  std::vector<bool> is_remap_;
  /// Mirror of is_remap_ indexed by ENC_Kp slot instead of LA, so the
  /// next-unremapped scan advances without a DEC_Kp evaluation per slot
  /// (the scan is the hot path's third PRP call otherwise).
  std::vector<bool> slot_remapped_;
  Phase phase_{Phase::kIdle};
  u64 gap_{0};                       ///< empty IA slot while kInCycle
  u64 cycle_start_{0};               ///< slot evicted into the spare
  std::optional<u64> spare_holder_;  ///< LA whose data sits in the spare
  u64 scan_{0};                      ///< next-unremapped scan pointer
  u64 remapped_{0};
  u64 round_movements_{0};
  u64 rounds_completed_{0};
};

}  // namespace srbsg::wl
