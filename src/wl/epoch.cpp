#include "wl/epoch.hpp"

#include "telemetry/telemetry.hpp"

namespace srbsg::wl::epoch {

ScanResult scan_uniform(const pcm::PcmBank& bank, u64 phys_lines,
                        std::span<const u64> exclude_sorted) {
  ScanResult r;
  r.min_headroom = ~u64{0};
  std::size_t x = 0;
  bool have_content = false;
  for (u64 pa = 0; pa < phys_lines; ++pa) {
    if (x < exclude_sorted.size() && exclude_sorted[x] == pa) {
      ++x;
      continue;
    }
    const Pa p{pa};
    const pcm::LineData& d = bank.data(p);
    if (!have_content) {
      r.content = d;
      have_content = true;
    } else if (!(d == r.content)) {
      return r;  // not uniform; r.uniform stays false
    }
    const u64 limit = bank.line_endurance(p);
    const u64 w = bank.wear(p);
    const u64 h = limit > w ? limit - w : 0;
    if (h < r.min_headroom) r.min_headroom = h;
  }
  r.uniform = have_content;
  return r;
}

u64 min_headroom_excluding(const pcm::PcmBank& bank, u64 phys_lines,
                           std::span<const u64> exclude_sorted) {
  u64 min = ~u64{0};
  std::size_t x = 0;
  for (u64 pa = 0; pa < phys_lines; ++pa) {
    if (x < exclude_sorted.size() && exclude_sorted[x] == pa) {
      ++x;
      continue;
    }
    const Pa p{pa};
    const u64 limit = bank.line_endurance(p);
    const u64 w = bank.wear(p);
    const u64 h = limit > w ? limit - w : 0;
    if (h < min) min = h;
  }
  return min;
}

bool CallCache::restore(const pcm::PcmBank& bank, HeadroomBudget& budget) {
  if (bank_ != &bank || incarnation_ != bank.incarnation() ||
      seq_ != bank.mutation_seq()) {
    return false;
  }
  budget.seed(budget_);
  return true;
}

void CallCache::save(const pcm::PcmBank& bank, const HeadroomBudget& budget) {
  bank_ = &bank;
  incarnation_ = bank.incarnation();
  seq_ = bank.mutation_seq();
  budget_ = budget.remaining();
}

void emit_jump(telemetry::Recorder* tel, u16 scheme, u32 domain, u64 writes, u64 steps,
               u64 t0_ns, u64 t1_ns) {
  if (tel != nullptr) {
    tel->span_begin(telemetry::SpanKind::kRemapEpoch, scheme, domain, t0_ns, writes);
    tel->emit_at(tel->now().value() + t0_ns, telemetry::EventType::kEpochApplied, scheme,
                 domain, writes, steps);
    tel->span_end(telemetry::SpanKind::kRemapEpoch, scheme, domain, t1_ns, steps);
  }
}

void emit_projection(telemetry::Recorder* tel, u16 scheme, u32 domain, u64 offset_ns,
                     u64 writes, telemetry::FallbackReason reason) {
  if (tel != nullptr) {
    // Zero-duration: the scan/projection proof is free in simulated time
    // (it models controller-side bookkeeping, not a bank access).
    tel->span_begin(telemetry::SpanKind::kEpochProjection, scheme, domain, offset_ns, writes);
    tel->span_end(telemetry::SpanKind::kEpochProjection, scheme, domain, offset_ns,
                  static_cast<u64>(reason));
  }
}

void span_fallback_begin(telemetry::Recorder* tel, u16 scheme, u64 offset_ns,
                         telemetry::FallbackReason reason) {
  if (tel != nullptr) {
    tel->span_begin(telemetry::SpanKind::kExactReplayFallback, scheme,
                    telemetry::kGlobalDomain, offset_ns, static_cast<u64>(reason));
  }
}

void span_fallback_end(telemetry::Recorder* tel, u16 scheme, u64 offset_ns,
                       telemetry::FallbackReason reason) {
  if (tel != nullptr) {
    tel->span_end(telemetry::SpanKind::kExactReplayFallback, scheme,
                  telemetry::kGlobalDomain, offset_ns, static_cast<u64>(reason));
  }
}

}  // namespace srbsg::wl::epoch
