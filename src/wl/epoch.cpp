#include "wl/epoch.hpp"

#include "telemetry/telemetry.hpp"

namespace srbsg::wl::epoch {

ScanResult scan_uniform(const pcm::PcmBank& bank, u64 phys_lines,
                        std::span<const u64> exclude_sorted) {
  ScanResult r;
  r.min_headroom = ~u64{0};
  std::size_t x = 0;
  bool have_content = false;
  for (u64 pa = 0; pa < phys_lines; ++pa) {
    if (x < exclude_sorted.size() && exclude_sorted[x] == pa) {
      ++x;
      continue;
    }
    const Pa p{pa};
    const pcm::LineData& d = bank.data(p);
    if (!have_content) {
      r.content = d;
      have_content = true;
    } else if (!(d == r.content)) {
      return r;  // not uniform; r.uniform stays false
    }
    const u64 limit = bank.line_endurance(p);
    const u64 w = bank.wear(p);
    const u64 h = limit > w ? limit - w : 0;
    if (h < r.min_headroom) r.min_headroom = h;
  }
  r.uniform = have_content;
  return r;
}

u64 min_headroom_excluding(const pcm::PcmBank& bank, u64 phys_lines,
                           std::span<const u64> exclude_sorted) {
  u64 min = ~u64{0};
  std::size_t x = 0;
  for (u64 pa = 0; pa < phys_lines; ++pa) {
    if (x < exclude_sorted.size() && exclude_sorted[x] == pa) {
      ++x;
      continue;
    }
    const Pa p{pa};
    const u64 limit = bank.line_endurance(p);
    const u64 w = bank.wear(p);
    const u64 h = limit > w ? limit - w : 0;
    if (h < min) min = h;
  }
  return min;
}

bool CallCache::restore(const pcm::PcmBank& bank, HeadroomBudget& budget) {
  if (bank_ != &bank || incarnation_ != bank.incarnation() ||
      seq_ != bank.mutation_seq()) {
    return false;
  }
  budget.seed(budget_);
  return true;
}

void CallCache::save(const pcm::PcmBank& bank, const HeadroomBudget& budget) {
  bank_ = &bank;
  incarnation_ = bank.incarnation();
  seq_ = bank.mutation_seq();
  budget_ = budget.remaining();
}

void emit_jump(telemetry::Recorder* tel, u16 scheme, u32 domain, u64 writes, u64 steps) {
  if (tel != nullptr) {
    tel->emit(telemetry::EventType::kEpochApplied, scheme, domain, writes, steps);
  }
}

}  // namespace srbsg::wl::epoch
