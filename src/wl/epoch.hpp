#pragma once
// Epoch fast-forward support (DESIGN.md §15).
//
// Between remap triggers the LA→PA map of every scheme is frozen, so a
// periodic pattern's per-line wear over one whole epoch is a constant
// vector. The per-scheme epoch engines jump many epochs at once: pattern
// wear lands as one bulk_write per distinct PA (exact, failure-checked
// via HitSet::until_nth), and the remap steps inside the jump are folded
// into aggregate sweeps whose data movement is provably a no-op. That
// proof needs two facts this header computes:
//   1. every movement slot holds one shared content value V (so moves and
//      swaps neither change bank data nor vary in latency), and
//   2. no movement slot can reach its endurance limit inside the jump
//      (so unchecked aggregate wear records the same failure — none — as
//      the per-write reference loop).
// Any violation, boundary (rekey, gap wrap, pattern-slot touch), detector
// change, or inexpressible state makes the scheme fall back to the PR-4
// windowed path for the rest of the call — bit-identity is never traded
// for speed.
//
// SecurityRbsg uses a stronger variant that needs no content proof at
// all: its aggregated sweeps replay the data shift exactly (an O(moves)
// window walk over bank.data), so only fact 2 — the headroom budget —
// is required, and the scan never fails on attack-polluted banks.

#include <span>
#include <vector>

#include "common/types.hpp"
#include "pcm/bank.hpp"
#include "telemetry/telemetry.hpp"

namespace srbsg::wl::epoch {

/// Result of one uniformity/headroom scan over the movement slots.
struct ScanResult {
  bool uniform{false};      ///< all scanned slots hold identical content
  pcm::LineData content{};  ///< the shared content V; valid iff `uniform`
  u64 min_headroom{0};      ///< smallest limit−wear margin over scanned slots
};

/// Scan physical lines [0, phys_lines), skipping the strictly increasing
/// `exclude_sorted` slots (pattern lines, gaps, spares — the slots whose
/// wear and content the engines track exactly). O(lines), run once per
/// bulk-entry call and amortized over every jump inside it.
[[nodiscard]] ScanResult scan_uniform(const pcm::PcmBank& bank, u64 phys_lines,
                                      std::span<const u64> exclude_sorted);

/// Headroom-only scan: smallest limit−wear margin over [0, phys_lines)
/// minus the strictly increasing `exclude_sorted` slots. Used by engines
/// that replay data movement exactly (SecurityRbsg) and therefore need no
/// content proof — only the guarantee that unchecked aggregate wear
/// cannot push a movement slot past its endurance limit. Never "fails":
/// a tiny result simply exhausts the budget sooner.
[[nodiscard]] u64 min_headroom_excluding(const pcm::PcmBank& bank, u64 phys_lines,
                                         std::span<const u64> exclude_sorted);

/// Writes-to-failure budget for movement slots. Seeded from a min-headroom
/// scan and spent conservatively (worst-case wear per jump); when a spend
/// would leave no margin the caller re-scans or falls back. record_wear()
/// fails a line when wear *reaches* its limit, so `spend` succeeds only
/// while at least one write of margin remains after the cost.
class HeadroomBudget {
 public:
  void seed(u64 min_headroom) { budget_ = min_headroom; }
  [[nodiscard]] bool spend(u64 cost) {
    if (budget_ <= cost) return false;
    budget_ -= cost;
    return true;
  }
  [[nodiscard]] u64 remaining() const { return budget_; }

 private:
  u64 budget_{0};
};

/// Cross-call budget cache. A fully-epoch call leaves the bank in a
/// settled state whose headroom proof (the remaining conservative budget)
/// is still valid when the next bulk call arrives — unless anything wrote
/// to the bank in between. Validity is established with the bank's
/// (address, incarnation, mutation_seq) stamp, so attack loops probing in
/// short write_cycle bursts (BPA's 256-write chunks) pay the O(lines)
/// headroom scan once instead of per call, while any out-of-band mutation
/// (other entry points, direct pokes in tests) changes the stamp and
/// forces a fresh scan.
class CallCache {
 public:
  /// Adopt the saved budget iff `bank` is bit-for-bit the state save() saw.
  [[nodiscard]] bool restore(const pcm::PcmBank& bank, HeadroomBudget& budget);
  /// Record the proof after the final write of a fully-epoch call.
  void save(const pcm::PcmBank& bank, const HeadroomBudget& budget);

 private:
  const pcm::PcmBank* bank_{nullptr};
  u64 incarnation_{0};
  u64 seq_{0};
  u64 budget_{0};
};

/// Emit one kEpochApplied event (a = writes jumped, b = remap steps
/// folded into the jump) bracketed by a RemapEpoch span over the jump's
/// intra-op latency window [t0_ns, t1_ns] (offsets from op entry).
/// Null-recorder safe, like every scheme emission.
void emit_jump(telemetry::Recorder* tel, u16 scheme, u32 domain, u64 writes, u64 steps,
               u64 t0_ns, u64 t1_ns);

/// Emit a zero-duration EpochProjection span at latency offset
/// `offset_ns`: the epoch tier just (re)proved its analytic projection
/// over the remaining `writes`. `reason` is kNone for a scheduled scan,
/// kCacheMiss when a cold cross-call cache forced it.
void emit_projection(telemetry::Recorder* tel, u16 scheme, u32 domain, u64 offset_ns,
                     u64 writes, telemetry::FallbackReason reason);

/// ExactReplayFallback span delimiters: the epoch tier hands the rest of
/// the call to the exact windowed/reference engine for `reason`. Both
/// take intra-op latency offsets; schemes must call them in matched
/// pairs on every path (the a11-span check enforces post-domination).
void span_fallback_begin(telemetry::Recorder* tel, u16 scheme, u64 offset_ns,
                         telemetry::FallbackReason reason);
void span_fallback_end(telemetry::Recorder* tel, u16 scheme, u64 offset_ns,
                       telemetry::FallbackReason reason);

}  // namespace srbsg::wl::epoch
