#include "wl/factory.hpp"

#include "common/check.hpp"
#include "wl/multiway_sr.hpp"
#include "wl/no_wl.hpp"
#include "wl/rbsg.hpp"
#include "wl/security_rbsg.hpp"
#include "wl/security_refresh.hpp"
#include "wl/table_wl.hpp"
#include "wl/two_level_sr.hpp"

namespace srbsg::wl {

std::string_view to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNone:
      return "none";
    case SchemeKind::kStartGap:
      return "start-gap";
    case SchemeKind::kRbsg:
      return "rbsg";
    case SchemeKind::kSr1:
      return "sr1";
    case SchemeKind::kSr2:
      return "sr2";
    case SchemeKind::kMultiWaySr:
      return "mwsr";
    case SchemeKind::kSecurityRbsg:
      return "security-rbsg";
    case SchemeKind::kTable:
      return "table";
  }
  return "?";
}

SchemeKind parse_scheme(std::string_view name) {
  for (SchemeKind k :
       {SchemeKind::kNone, SchemeKind::kStartGap, SchemeKind::kRbsg, SchemeKind::kSr1,
        SchemeKind::kSr2, SchemeKind::kMultiWaySr, SchemeKind::kSecurityRbsg,
        SchemeKind::kTable}) {
    if (name == to_string(k)) return k;
  }
  throw CheckFailure("unknown scheme name: " + std::string(name));
}

std::unique_ptr<WearLeveler> make_scheme(const SchemeSpec& spec) {
  switch (spec.kind) {
    case SchemeKind::kNone:
      return std::make_unique<NoWearLeveling>(spec.lines);
    case SchemeKind::kStartGap: {
      return std::make_unique<RegionStartGap>(
          RegionStartGap::plain_start_gap(spec.lines, spec.inner_interval));
    }
    case SchemeKind::kRbsg: {
      RbsgConfig cfg;
      cfg.lines = spec.lines;
      cfg.regions = spec.regions;
      cfg.interval = spec.inner_interval;
      cfg.feistel_stages = spec.stages;
      cfg.seed = spec.seed;
      return std::make_unique<RegionStartGap>(cfg);
    }
    case SchemeKind::kSr1: {
      SecurityRefreshConfig cfg;
      cfg.lines = spec.lines;
      cfg.interval = spec.inner_interval;
      cfg.seed = spec.seed;
      return std::make_unique<SecurityRefresh>(cfg);
    }
    case SchemeKind::kSr2: {
      TwoLevelSrConfig cfg;
      cfg.lines = spec.lines;
      cfg.sub_regions = spec.regions;
      cfg.inner_interval = spec.inner_interval;
      cfg.outer_interval = spec.outer_interval;
      cfg.seed = spec.seed;
      return std::make_unique<TwoLevelSecurityRefresh>(cfg);
    }
    case SchemeKind::kMultiWaySr: {
      MultiWaySrConfig cfg;
      cfg.lines = spec.lines;
      cfg.regions = spec.regions;
      cfg.interval = spec.inner_interval;
      cfg.seed = spec.seed;
      return std::make_unique<MultiWaySecurityRefresh>(cfg);
    }
    case SchemeKind::kTable: {
      TableWlConfig cfg;
      cfg.lines = spec.lines;
      cfg.interval = spec.inner_interval;
      return std::make_unique<TableWearLeveling>(cfg);
    }
    case SchemeKind::kSecurityRbsg: {
      SecurityRbsgConfig cfg;
      cfg.lines = spec.lines;
      cfg.sub_regions = spec.regions;
      cfg.inner_interval = spec.inner_interval;
      cfg.outer_interval = spec.outer_interval;
      cfg.stages = spec.stages;
      cfg.seed = spec.seed;
      return std::make_unique<SecurityRbsg>(cfg);
    }
  }
  throw CheckFailure("make_scheme: unhandled scheme kind");
}

}  // namespace srbsg::wl
