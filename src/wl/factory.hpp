#pragma once
// Uniform construction of wear-leveling schemes from a flat spec —
// used by the sweep driver, examples and CLI tools.

#include <memory>
#include <string_view>

#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

enum class SchemeKind : u8 {
  kNone,          ///< identity mapping (unprotected baseline)
  kStartGap,      ///< single-region Start-Gap, no randomizer
  kRbsg,          ///< Region-Based Start-Gap with static randomizer
  kSr1,           ///< one-level Security Refresh
  kSr2,           ///< two-level Security Refresh
  kMultiWaySr,    ///< Multi-Way Security Refresh
  kSecurityRbsg,  ///< this paper's scheme
  kTable,         ///< table-based hot/cold swapping (§II.A family)
};

[[nodiscard]] std::string_view to_string(SchemeKind kind);

/// Parses "none|start-gap|rbsg|sr1|sr2|mwsr|security-rbsg|table";
/// throws on unknown names.
[[nodiscard]] SchemeKind parse_scheme(std::string_view name);

/// Flat parameter set covering every scheme; irrelevant fields are
/// ignored by schemes that do not use them.
struct SchemeSpec {
  SchemeKind kind{SchemeKind::kSecurityRbsg};
  u64 lines{1u << 16};
  /// Regions (RBSG) / sub-regions (SR2, MWSR, Security RBSG).
  u64 regions{512};
  /// ψ for single-level schemes; ψ_in for two-level schemes.
  u64 inner_interval{64};
  /// ψ_out for two-level schemes.
  u64 outer_interval{128};
  /// Feistel stages (RBSG static randomizer / Security RBSG DFN).
  u32 stages{7};
  u64 seed{1};
};

[[nodiscard]] std::unique_ptr<WearLeveler> make_scheme(const SchemeSpec& spec);

}  // namespace srbsg::wl
