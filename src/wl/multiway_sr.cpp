#include "wl/multiway_sr.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "pcm/timing.hpp"
#include "wl/batch.hpp"
#include "wl/epoch.hpp"

namespace srbsg::wl {

void MultiWaySrConfig::validate() const {
  check(is_pow2(lines), "MultiWaySrConfig: lines must be a power of two");
  check(is_pow2(regions) && regions >= 1 && regions < lines,
        "MultiWaySrConfig: regions must be a power of two smaller than lines");
  check(interval >= 1, "MultiWaySrConfig: interval must be positive");
}

MultiWaySecurityRefresh::MultiWaySecurityRefresh(const MultiWaySrConfig& cfg)
    : cfg_(cfg), region_bits_(log2_floor(cfg.region_lines())) {
  cfg_.validate();
  Rng seeder(cfg.seed ^ 0x3157ac0deULL);
  regions_.reserve(cfg_.regions);
  for (u64 q = 0; q < cfg_.regions; ++q) {
    regions_.emplace_back(region_bits_, seeder.fork());
  }
  counter_.assign(cfg_.regions, 0);
}

Pa MultiWaySecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  const u64 q = la.value() >> region_bits_;
  const u64 off = la.value() & low_mask(region_bits_);
  return Pa{(q << region_bits_) | regions_[q].translate(off)};
}

Ns MultiWaySecurityRefresh::do_step(u64 q, pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const u64 key_before = regions_[q].key_c();
  const auto swap = regions_[q].advance();
  if (tel_ != nullptr && regions_[q].key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, checked_narrow<u32>(q), 0, 0);
  }
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const u64 base = q << region_bits_;
  const Pa pa{base | swap->a};
  const Pa pb{base | swap->b};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), pa.value(),
               pb.value());
  }
  return bank.swap_lines(pa, pb);
}

WriteOutcome MultiWaySecurityRefresh::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  const u64 q = la.value() >> region_bits_;
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_[q] >= effective_interval()) {
    counter_[q] = 0;
    u64 moved = 0;
    out.stall = do_step(q, bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void MultiWaySecurityRefresh::validate_state() const {
  for (u64 q = 0; q < cfg_.regions; ++q) {
    regions_[q].validate();
    check_le(counter_[q], cfg_.interval, "MultiWaySecurityRefresh: write counter overran ψ");
  }
}

BulkOutcome MultiWaySecurityRefresh::write_batch(std::span<const La> las,
                                                 const pcm::LineData& data, pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const u64 q = la.value() >> region_bits_;
        const u64 off = la.value() & low_mask(region_bits_);
        out.total += bank.write(Pa{(q << region_bits_) | regions_[q].translate(off)}, data);
        ++out.writes_applied;
        if (++counter_[q] >= effective_interval()) {
          counter_[q] = 0;
          out.total += do_step(q, bank, &out.movements);
        }
      });
}

BulkOutcome MultiWaySecurityRefresh::write_cycle(std::span<const La> pattern,
                                                 const pcm::LineData& data, u64 count,
                                                 pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  }
  const u64 period = pattern.size();
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  if (period > batch::kPatternFallbackFactor * effective_interval()) {
    if (engine_tier() == EngineTier::kEpoch) {
      epoch::span_fallback_begin(tel_, tel_id_, 0,
                                 telemetry::FallbackReason::kNonPeriodicPattern);
      const BulkOutcome ref = WearLeveler::write_cycle(pattern, data, count, bank);
      epoch::span_fallback_end(tel_, tel_id_, ref.total.value(),
                               telemetry::FallbackReason::kNonPeriodicPattern);
      return ref;
    }
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The epoch engine opens with an O(physical lines) uniform-content
  // scan per call; bursts too short to amortize it (BPA's 256-write
  // probes) take the windowed engine instead — same outcomes, no scan.
  if (engine_tier() == EngineTier::kEpoch && count >= physical_lines()) {
    return write_cycle_epoch(pattern, data, count, bank);
  }
  write_cycle_windowed(pattern, data, count, 0, bank, out);
  return out;
}

void MultiWaySecurityRefresh::write_cycle_windowed(std::span<const La> pattern,
                                                   const pcm::LineData& data, u64 count,
                                                   u64 phase0, pcm::PcmBank& bank,
                                                   BulkOutcome& out) {
  const u64 period = pattern.size();
  // The address-sequence partition is static: region keys never change.
  std::vector<u64> keys(period);
  for (u64 i = 0; i < period; ++i) keys[i] = pattern[i].value() >> region_bits_;
  std::vector<batch::DomainSched> doms;
  batch::build_domain_scheds(keys, doms);
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = phase0;
  u64 applied = 0;
  while (applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 off = pattern[i].value() & low_mask(region_bits_);
        fresh[i] = Pa{(keys[i] << region_bits_) | regions_[keys[i]].translate(off)};
      }
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    u64 chunk = count - applied;
    for (const auto& d : doms) {
      const u64 deficit = counter_[d.key] >= iv ? 1 : iv - counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_,
                                    out.total.value());
    applied += chunk;
    const u64 chunk_phase = phase;
    for (const auto& d : doms) counter_[d.key] += d.hits.hits_in(phase, chunk);
    phase = (phase + chunk) % period;
    // A region whose counter sits past a shrunken ψ but took no write in
    // this chunk must wait for its next write, like the per-write path.
    for (const auto& d : doms) {
      if (counter_[d.key] >= iv && d.hits.hits_in(chunk_phase, chunk) > 0) {
        counter_[d.key] = 0;
        const u64 before = out.movements;
        out.total += do_step(d.key, bank, &out.movements);
        if (out.movements != before) rebuild = true;  // skipped steps move nothing
      }
    }
  }
  out.writes_applied += applied;
}

BulkOutcome MultiWaySecurityRefresh::write_cycle_epoch(std::span<const La> pattern,
                                                       const pcm::LineData& data, u64 count,
                                                       pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 period = pattern.size();
  const u64 rl = cfg_.region_lines();
  const u64 omask = low_mask(region_bits_);

  // Static partition: keys and domains never change; only the per-region
  // SR mappings (and thus the PAs) move.
  std::vector<u64> keys(period);
  for (u64 i = 0; i < period; ++i) keys[i] = pattern[i].value() >> region_bits_;
  std::vector<batch::DomainSched> doms;
  batch::build_domain_scheds(keys, doms);
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  std::vector<u64> slots;
  std::vector<u64> next_slots;
  bool rebuild = true;
  u64 phase = 0;

  epoch::HeadroomBudget budget;
  pcm::LineData uniform{};
  bool scanned = false;

  const auto windowed_tail = [&](telemetry::FallbackReason reason) {
    epoch::span_fallback_begin(tel_, tel_id_, out.total.value(), reason);
    write_cycle_windowed(pattern, data, count - out.writes_applied, phase, bank, out);
    epoch::span_fallback_end(tel_, tel_id_, out.total.value(), reason);
  };

  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 off = pattern[i].value() & omask;
        fresh[i] = Pa{(keys[i] << region_bits_) | regions_[keys[i]].translate(off)};
      }
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
        next_slots.clear();
        for (const auto& ls : lines) next_slots.push_back(ls.pa.value());
        std::sort(next_slots.begin(), next_slots.end());
        // A slot leaving the pattern set re-joins the movement set
        // carrying pattern-scale wear; fold its headroom into the budget.
        if (scanned) {
          for (const u64 s : slots) {
            if (std::binary_search(next_slots.begin(), next_slots.end(), s)) continue;
            const u64 limit = bank.line_endurance(Pa{s});
            const u64 w = bank.wear(Pa{s});
            const u64 h = limit > w ? limit - w : 0;
            if (h < budget.remaining()) budget.seed(h);
          }
        }
        slots.swap(next_slots);
      }
      rebuild = false;
    }
    if (!scanned) {
      const epoch::ScanResult scan = epoch::scan_uniform(bank, cfg_.lines, slots);
      if (!scan.uniform) {
        windowed_tail(telemetry::FallbackReason::kNonUniformContent);
        return out;
      }
      uniform = scan.content;
      budget.seed(scan.min_headroom);
      epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                             count - out.writes_applied, telemetry::FallbackReason::kNone);
      scanned = true;
    }
    const u64 iv = effective_interval();
    bool overrun = false;  // interval shrank below a carried counter
    for (const auto& d : doms) overrun = overrun || counter_[d.key] >= iv;
    if (overrun) {
      windowed_tail(telemetry::FallbackReason::kPsiChange);
      return out;
    }
    const u64 remaining = count - out.writes_applied;

    // Next replayed trigger, as a 1-based write index: per region, the
    // first CRP candidate whose swap touches a pattern slot in it, or the
    // round end (rekey), whichever is closer.
    u64 boundary = batch::kUnbounded;
    for (const auto& d : doms) {
      const auto& reg = regions_[d.key];
      const u64 crp = reg.crp();
      u64 js = 0;
      if (crp < rl) {
        js = rl - crp;
        for (u64 i = 0; i < period; ++i) {
          if (keys[i] != d.key) continue;
          const u64 t = reg.next_touch(pas[i].value() & omask);
          if (t < rl) js = std::min(js, t - crp);
        }
      }
      const u64 at = d.hits.until_nth(phase, (iv - counter_[d.key]) + js * iv);
      boundary = std::min(boundary, at);
    }
    const bool replay = boundary <= remaining;
    // The jump covers the boundary write itself (the trigger fires after
    // the write, under the pre-trigger mapping); it alone replays live.
    const u64 jump = std::min(remaining, boundary);

    // Endurance cap over the pattern lines → windowed tail (exact).
    u64 lfail = batch::kUnbounded;
    for (const auto& ls : lines) {
      lfail = std::min(lfail, ls.hits.until_nth(phase, ls.remaining));
    }
    if (lfail <= jump) {
      windowed_tail(telemetry::FallbackReason::kNearFailure);
      return out;
    }
    // Movement-slot wear: aggregated sweeps stay inside one round per
    // region (one endpoint per slot); the replayed boundary step can open
    // a new round and re-touch a swept slot, costing one more.
    if (!budget.spend(2)) {
      const epoch::ScanResult scan = epoch::scan_uniform(bank, cfg_.lines, slots);
      if (!scan.uniform || !(budget.seed(scan.min_headroom), budget.spend(2))) {
        // genuinely near a movement-slot failure
        windowed_tail(telemetry::FallbackReason::kNearFailure);
        return out;
      }
      uniform = scan.content;
      epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                             count - out.writes_applied, telemetry::FallbackReason::kNone);
    }

    const u64 jump_t0 = out.total.value();
    // Pattern wear/data: one failure-checked bulk write per distinct PA.
    for (auto& ls : lines) {
      const u64 h = ls.hits.hits_in(phase, jump);
      if (h == 0) continue;
      out.total += bank.bulk_write(ls.pa, data, h);
      ls.remaining -= h;
    }

    // The binding region's trigger at the boundary write replays live;
    // every earlier trigger aggregates (its swap provably avoids pattern
    // slots, so it is a wear-only data no-op under uniform content).
    u64 q_b = batch::kNoDomain;
    if (replay) q_b = keys[(phase + boundary - 1) % period];
    u64 agg = 0;
    u64 fired = 0;
    const std::span<u64> wear = bank.wear_mut();
    for (const auto& d : doms) {
      const u64 h = d.hits.hits_in(phase, jump);
      u64 n = (counter_[d.key] + h) / iv;
      counter_[d.key] = (counter_[d.key] + h) % iv;
      if (replay && d.key == q_b) --n;
      if (n > 0) {
        const u64 base = d.key << region_bits_;
        fired += regions_[d.key].advance_steps(
            n, [&wear, base](u64 a, u64 b) { ++wear[base | a], ++wear[base | b]; });
        agg += n;
      }
    }
    if (fired > 0) {
      bank.note_writes_unchecked(2 * fired);
      out.total += pcm::swap_latency(bank.config(), uniform.cls, uniform.cls) * fired;
      out.movements += fired;
    }
    out.writes_applied += jump;
    phase = (phase + jump) % period;
    epoch::emit_jump(tel_, tel_id_, telemetry::kGlobalDomain, jump, agg + (replay ? 1 : 0),
                     jump_t0, out.total.value());
    if (replay) {
      counter_[q_b] = 0;
      const u64 before = out.movements;
      out.total += do_step(q_b, bank, &out.movements);
      if (out.movements != before) rebuild = true;  // skipped steps move nothing
    }
  }
  return out;
}

BulkOutcome MultiWaySecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                                    pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 q = la.value() >> region_bits_;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_[q] >= iv ? 1 : iv - counter_[q];
    const u64 chunk = std::min(count - out.writes_applied, until);
    out.total += bank.bulk_write(translate(la), data, chunk);
    out.writes_applied += chunk;
    counter_[q] += chunk;
    if (counter_[q] >= iv && !bank.has_failure()) {
      counter_[q] = 0;
      out.total += do_step(q, bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
