#include "wl/multiway_sr.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::wl {

void MultiWaySrConfig::validate() const {
  check(is_pow2(lines), "MultiWaySrConfig: lines must be a power of two");
  check(is_pow2(regions) && regions >= 1 && regions < lines,
        "MultiWaySrConfig: regions must be a power of two smaller than lines");
  check(interval >= 1, "MultiWaySrConfig: interval must be positive");
}

MultiWaySecurityRefresh::MultiWaySecurityRefresh(const MultiWaySrConfig& cfg)
    : cfg_(cfg), region_bits_(log2_floor(cfg.region_lines())) {
  cfg_.validate();
  Rng seeder(cfg.seed ^ 0x3157ac0deULL);
  regions_.reserve(cfg_.regions);
  for (u64 q = 0; q < cfg_.regions; ++q) {
    regions_.emplace_back(region_bits_, seeder.fork());
  }
  counter_.assign(cfg_.regions, 0);
}

Pa MultiWaySecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  const u64 q = la.value() >> region_bits_;
  const u64 off = la.value() & low_mask(region_bits_);
  return Pa{(q << region_bits_) | regions_[q].translate(off)};
}

Ns MultiWaySecurityRefresh::do_step(u64 q, pcm::PcmBank& bank, u64* movements) {
  const auto swap = regions_[q].advance();
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const u64 base = q << region_bits_;
  return bank.swap_lines(Pa{base | swap->a}, Pa{base | swap->b});
}

WriteOutcome MultiWaySecurityRefresh::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  const u64 q = la.value() >> region_bits_;
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_[q] >= effective_interval()) {
    counter_[q] = 0;
    u64 moved = 0;
    out.stall = do_step(q, bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void MultiWaySecurityRefresh::validate_state() const {
  for (u64 q = 0; q < cfg_.regions; ++q) {
    regions_[q].validate();
    check_le(counter_[q], cfg_.interval, "MultiWaySecurityRefresh: write counter overran ψ");
  }
}

BulkOutcome MultiWaySecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                                    pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 q = la.value() >> region_bits_;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_[q] >= iv ? 1 : iv - counter_[q];
    const u64 chunk = std::min(count - out.writes_applied, until);
    out.total += bank.bulk_write(translate(la), data, chunk);
    out.writes_applied += chunk;
    counter_[q] += chunk;
    if (counter_[q] >= iv && !bank.has_failure()) {
      counter_[q] = 0;
      out.total += do_step(q, bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
