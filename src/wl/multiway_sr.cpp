#include "wl/multiway_sr.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"

namespace srbsg::wl {

void MultiWaySrConfig::validate() const {
  check(is_pow2(lines), "MultiWaySrConfig: lines must be a power of two");
  check(is_pow2(regions) && regions >= 1 && regions < lines,
        "MultiWaySrConfig: regions must be a power of two smaller than lines");
  check(interval >= 1, "MultiWaySrConfig: interval must be positive");
}

MultiWaySecurityRefresh::MultiWaySecurityRefresh(const MultiWaySrConfig& cfg)
    : cfg_(cfg), region_bits_(log2_floor(cfg.region_lines())) {
  cfg_.validate();
  Rng seeder(cfg.seed ^ 0x3157ac0deULL);
  regions_.reserve(cfg_.regions);
  for (u64 q = 0; q < cfg_.regions; ++q) {
    regions_.emplace_back(region_bits_, seeder.fork());
  }
  counter_.assign(cfg_.regions, 0);
}

Pa MultiWaySecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  const u64 q = la.value() >> region_bits_;
  const u64 off = la.value() & low_mask(region_bits_);
  return Pa{(q << region_bits_) | regions_[q].translate(off)};
}

Ns MultiWaySecurityRefresh::do_step(u64 q, pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const u64 key_before = regions_[q].key_c();
  const auto swap = regions_[q].advance();
  if (tel_ != nullptr && regions_[q].key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, checked_narrow<u32>(q), 0, 0);
  }
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const u64 base = q << region_bits_;
  const Pa pa{base | swap->a};
  const Pa pb{base | swap->b};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), pa.value(),
               pb.value());
  }
  return bank.swap_lines(pa, pb);
}

WriteOutcome MultiWaySecurityRefresh::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  const u64 q = la.value() >> region_bits_;
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_[q] >= effective_interval()) {
    counter_[q] = 0;
    u64 moved = 0;
    out.stall = do_step(q, bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void MultiWaySecurityRefresh::validate_state() const {
  for (u64 q = 0; q < cfg_.regions; ++q) {
    regions_[q].validate();
    check_le(counter_[q], cfg_.interval, "MultiWaySecurityRefresh: write counter overran ψ");
  }
}

BulkOutcome MultiWaySecurityRefresh::write_batch(std::span<const La> las,
                                                 const pcm::LineData& data, pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const u64 q = la.value() >> region_bits_;
        const u64 off = la.value() & low_mask(region_bits_);
        out.total += bank.write(Pa{(q << region_bits_) | regions_[q].translate(off)}, data);
        ++out.writes_applied;
        if (++counter_[q] >= effective_interval()) {
          counter_[q] = 0;
          out.total += do_step(q, bank, &out.movements);
        }
      });
}

BulkOutcome MultiWaySecurityRefresh::write_cycle(std::span<const La> pattern,
                                                 const pcm::LineData& data, u64 count,
                                                 pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "MultiWaySecurityRefresh: address out of range");
  }
  const u64 period = pattern.size();
  if (period > batch::kPatternFallbackFactor * effective_interval()) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The address-sequence partition is static: region keys never change.
  std::vector<u64> keys(period);
  for (u64 i = 0; i < period; ++i) keys[i] = pattern[i].value() >> region_bits_;
  std::vector<batch::DomainSched> doms;
  batch::build_domain_scheds(keys, doms);
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 off = pattern[i].value() & low_mask(region_bits_);
        fresh[i] = Pa{(keys[i] << region_bits_) | regions_[keys[i]].translate(off)};
      }
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    u64 chunk = count - out.writes_applied;
    for (const auto& d : doms) {
      const u64 deficit = counter_[d.key] >= iv ? 1 : iv - counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_);
    out.writes_applied += chunk;
    for (const auto& d : doms) counter_[d.key] += d.hits.hits_in(phase, chunk);
    phase = (phase + chunk) % period;
    for (const auto& d : doms) {
      if (counter_[d.key] >= iv) {
        counter_[d.key] = 0;
        const u64 before = out.movements;
        out.total += do_step(d.key, bank, &out.movements);
        if (out.movements != before) rebuild = true;  // skipped steps move nothing
      }
    }
  }
  return out;
}

BulkOutcome MultiWaySecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                                    pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 q = la.value() >> region_bits_;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_[q] >= iv ? 1 : iv - counter_[q];
    const u64 chunk = std::min(count - out.writes_applied, until);
    out.total += bank.bulk_write(translate(la), data, chunk);
    out.writes_applied += chunk;
    counter_[q] += chunk;
    if (counter_[q] >= iv && !bank.has_failure()) {
      counter_[q] = 0;
      out.total += do_step(q, bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
