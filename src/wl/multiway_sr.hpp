#pragma once
// Multi-Way Security Refresh (Yu & Du, IEEE TC'14), as characterized in
// paper §III.E: the memory is partitioned into R sub-regions *by address
// sequence* (high LA bits select the region) and each sub-region runs an
// independent one-level Security Refresh. The static partition is exactly
// what makes the scheme vulnerable to the sub-region detection attack.

#include <vector>

#include "common/check.hpp"
#include "wl/security_refresh_region.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

struct MultiWaySrConfig {
  u64 lines{1u << 16};  ///< N, power of two
  u64 regions{64};      ///< R, power of two
  u64 interval{64};     ///< ψ per sub-region
  u64 seed{1};

  void validate() const;
  [[nodiscard]] u64 region_lines() const { return lines / regions; }
};

class MultiWaySecurityRefresh final : public WearLeveler {
 public:
  explicit MultiWaySecurityRefresh(const MultiWaySrConfig& cfg);

  [[nodiscard]] std::string_view name() const override { return "mwsr"; }
  [[nodiscard]] u64 logical_lines() const override { return cfg_.lines; }
  [[nodiscard]] u64 physical_lines() const override { return cfg_.lines; }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

  [[nodiscard]] const MultiWaySrConfig& config() const { return cfg_; }

  void validate_state() const override;
  /// SR movements are swaps: two line writes each.
  [[nodiscard]] u32 writes_per_movement() const override { return 2; }

  void set_rate_boost(u32 log2_divisor) override {
    check_lt(log2_divisor, u32{64}, "set_rate_boost: boost shifts past the interval width");
    boost_ = log2_divisor;
  }
  [[nodiscard]] u64 effective_interval() const {
    const u64 iv = cfg_.interval >> boost_;
    return iv == 0 ? 1 : iv;
  }

 private:
  Ns do_step(u64 q, pcm::PcmBank& bank, u64* movements);
  /// PR-4 windowed engine, entered at cycle offset `phase0`; accumulates
  /// into `out`.
  void write_cycle_windowed(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                            u64 phase0, pcm::PcmBank& bank, BulkOutcome& out);
  /// Epoch fast-forward engine (DESIGN.md §15): per-region aggregated SR
  /// sweeps between replayed pattern-touching/rekey steps.
  BulkOutcome write_cycle_epoch(std::span<const La> pattern, const pcm::LineData& data,
                                u64 count, pcm::PcmBank& bank);

  MultiWaySrConfig cfg_;
  u32 region_bits_;
  std::vector<SecurityRefreshRegion> regions_;
  std::vector<u64> counter_;
  u32 boost_{0};
};

}  // namespace srbsg::wl
