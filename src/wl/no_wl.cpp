#include "wl/no_wl.hpp"

#include "common/check.hpp"

namespace srbsg::wl {

NoWearLeveling::NoWearLeveling(u64 lines) : lines_(lines) {
  check(lines >= 1, "NoWearLeveling: need at least one line");
}

Pa NoWearLeveling::translate(La la) const {
  check(la.value() < lines_, "NoWearLeveling: address out of range");
  return Pa{la.value()};
}

WriteOutcome NoWearLeveling::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const Ns lat = bank.write(translate(la), data);
  return WriteOutcome{lat, Ns{0}, 0};
}

BulkOutcome NoWearLeveling::write_repeated(La la, const pcm::LineData& data, u64 count,
                                           pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0 || bank.has_failure()) return out;
  out.total = bank.bulk_write(translate(la), data, count);
  out.writes_applied = count;
  return out;
}

}  // namespace srbsg::wl
