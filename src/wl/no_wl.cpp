#include "wl/no_wl.hpp"

#include <vector>

#include "common/check.hpp"
#include "wl/batch.hpp"

namespace srbsg::wl {

NoWearLeveling::NoWearLeveling(u64 lines) : lines_(lines) {
  check(lines >= 1, "NoWearLeveling: need at least one line");
}

Pa NoWearLeveling::translate(La la) const {
  check(la.value() < lines_, "NoWearLeveling: address out of range");
  return Pa{la.value()};
}

WriteOutcome NoWearLeveling::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const Ns lat = bank.write(translate(la), data);
  return WriteOutcome{lat, Ns{0}, 0};
}

BulkOutcome NoWearLeveling::write_repeated(La la, const pcm::LineData& data, u64 count,
                                           pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0 || bank.has_failure()) return out;
  out.total = bank.bulk_write(translate(la), data, count);
  out.writes_applied = count;
  return out;
}

BulkOutcome NoWearLeveling::write_batch(std::span<const La> las, const pcm::LineData& data,
                                        pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < lines_, "NoWearLeveling: address out of range");
  }
  return batch::run_compressed_batch(*this, las, data, bank, [&](La la, BulkOutcome& out) {
    out.total += bank.write(Pa{la.value()}, data);
    ++out.writes_applied;
  });
}

BulkOutcome NoWearLeveling::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                        u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  std::vector<Pa> pas;
  pas.reserve(pattern.size());
  for (const La la : pattern) {
    check(la.value() < lines_, "NoWearLeveling: address out of range");
    pas.push_back(Pa{la.value()});
  }
  // No remap triggers: a single window runs to completion or stops at the
  // exact write that records the failure.
  std::vector<batch::LineSched> lines;
  batch::build_line_scheds(pas, bank, lines);
  const u64 period = pattern.size();
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 chunk =
        batch::cap_chunk_at_failure(lines, phase, count - out.writes_applied);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_,
                                    out.total.value());
    out.writes_applied += chunk;
    phase = (phase + chunk) % period;
  }
  return out;
}

}  // namespace srbsg::wl
