#pragma once
// Identity mapping, no remapping — the paper's unprotected baseline
// (RAA kills a line on it in about a minute, §II.B).

#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

class NoWearLeveling final : public WearLeveler {
 public:
  explicit NoWearLeveling(u64 lines);

  [[nodiscard]] std::string_view name() const override { return "none"; }
  [[nodiscard]] u64 logical_lines() const override { return lines_; }
  [[nodiscard]] u64 physical_lines() const override { return lines_; }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

 private:
  u64 lines_;
};

}  // namespace srbsg::wl
