#include "wl/rbsg.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"
#include "wl/epoch.hpp"
#include "mapping/binary_matrix.hpp"
#include "mapping/feistel.hpp"
#include "mapping/quality.hpp"

namespace srbsg::wl {

void RbsgConfig::validate() const {
  check(is_pow2(lines), "RbsgConfig: lines must be a power of two");
  check(regions >= 1 && lines % regions == 0, "RbsgConfig: regions must divide lines");
  check(interval >= 1, "RbsgConfig: interval must be positive");
  check(feistel_stages >= 1, "RbsgConfig: need at least one Feistel stage");
}

RegionStartGap::RegionStartGap(const RbsgConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  Rng rng(cfg_.seed);
  const u32 bits = log2_floor(cfg_.lines);
  switch (cfg_.randomizer) {
    case RbsgConfig::Randomizer::kNone:
      break;
    case RbsgConfig::Randomizer::kFeistel: {
      const auto keys = mapping::FeistelNetwork::random_keys(bits, cfg_.feistel_stages, rng);
      mapper_ = std::make_unique<mapping::FeistelNetwork>(bits, keys);
      break;
    }
    case RbsgConfig::Randomizer::kMatrix:
      mapper_ = std::make_unique<mapping::BinaryMatrixMapper>(bits, rng);
      break;
  }
  sg_.assign(cfg_.regions, StartGapRegion(cfg_.region_lines()));
  counter_.assign(cfg_.regions, 0);
}

u64 RegionStartGap::randomize(u64 la) const { return mapper_ ? mapper_->map(la) : la; }

u64 RegionStartGap::derandomize(u64 ia) const { return mapper_ ? mapper_->unmap(ia) : ia; }

Pa RegionStartGap::translate(La la) const {
  check(la.value() < cfg_.lines, "RegionStartGap: address out of range");
  const u64 ia = randomize(la.value());
  const u64 m = cfg_.region_lines();
  const u64 q = ia / m;
  const u64 off = ia % m;
  return Pa{region_base(q) + sg_[q].translate(off)};
}

Ns RegionStartGap::do_movement(u64 q, pcm::PcmBank& bank) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const auto mv = sg_[q].advance();
  const Pa from{region_base(q) + mv.from};
  const Pa to{region_base(q) + mv.to};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), from.value(),
               to.value());
  }
  return bank.move_line(from, to);
}

WriteOutcome RegionStartGap::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const u64 ia = randomize(la.value());
  const u64 q = ia / cfg_.region_lines();
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_[q] >= effective_interval()) {
    counter_[q] = 0;
    out.stall = do_movement(q, bank);
    out.movements = 1;
    out.total += out.stall;
  }
  return out;
}

BulkOutcome RegionStartGap::write_repeated(La la, const pcm::LineData& data, u64 count,
                                           pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 ia = randomize(la.value());
  const u64 m = cfg_.region_lines();
  const u64 q = ia / m;
  const u64 off = ia % m;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_[q] >= iv ? 1 : iv - counter_[q];
    const u64 chunk = std::min(count - out.writes_applied, until);
    const Pa pa{region_base(q) + sg_[q].translate(off)};
    out.total += bank.bulk_write(pa, data, chunk);
    out.writes_applied += chunk;
    counter_[q] += chunk;
    if (counter_[q] >= iv && !bank.has_failure()) {
      counter_[q] = 0;
      out.total += do_movement(q, bank);
      ++out.movements;
    }
  }
  return out;
}

BulkOutcome RegionStartGap::write_batch(std::span<const La> las, const pcm::LineData& data,
                                        pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "RegionStartGap: address out of range");
  }
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_batch(las, data, bank);
  }
  const u64 m = cfg_.region_lines();
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        // write() body with the randomizer drawn once (write() pays a
        // second draw inside translate()).
        const u64 ia = randomize(la.value());
        const u64 q = ia / m;
        out.total += bank.write(Pa{region_base(q) + sg_[q].translate(ia % m)}, data);
        ++out.writes_applied;
        if (++counter_[q] >= effective_interval()) {
          counter_[q] = 0;
          out.total += do_movement(q, bank);
          ++out.movements;
        }
      });
}

BulkOutcome RegionStartGap::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                        u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "RegionStartGap: address out of range");
  }
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  if (pattern.size() > batch::kPatternFallbackFactor * effective_interval()) {
    if (engine_tier() == EngineTier::kEpoch) {
      epoch::span_fallback_begin(tel_, tel_id_, 0,
                                 telemetry::FallbackReason::kNonPeriodicPattern);
      const BulkOutcome ref = WearLeveler::write_cycle(pattern, data, count, bank);
      epoch::span_fallback_end(tel_, tel_id_, ref.total.value(),
                               telemetry::FallbackReason::kNonPeriodicPattern);
      return ref;
    }
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The epoch engine opens with an O(physical lines) uniform-content
  // scan per call; bursts too short to amortize it (BPA's 256-write
  // probes) take the windowed engine instead — same outcomes, no scan.
  if (engine_tier() == EngineTier::kEpoch && count >= physical_lines()) {
    return write_cycle_epoch(pattern, data, count, bank);
  }
  write_cycle_windowed(pattern, data, count, 0, bank, out);
  return out;
}

void RegionStartGap::write_cycle_windowed(std::span<const La> pattern,
                                          const pcm::LineData& data, u64 count, u64 phase0,
                                          pcm::PcmBank& bank, BulkOutcome& out) {
  const u64 period = pattern.size();
  const u64 m = cfg_.region_lines();
  // The randomizer is static: IAs and region keys are fixed for the call.
  std::vector<u64> ias(period);
  std::vector<u64> keys(period);
  for (u64 i = 0; i < period; ++i) {
    ias[i] = randomize(pattern[i].value());
    keys[i] = ias[i] / m;
  }
  std::vector<batch::DomainSched> doms;
  batch::build_domain_scheds(keys, doms);
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = phase0;
  u64 applied = 0;
  while (applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        fresh[i] = Pa{region_base(keys[i]) + sg_[keys[i]].translate(ias[i] % m)};
      }
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    u64 chunk = count - applied;
    for (const auto& d : doms) {
      const u64 deficit = counter_[d.key] >= iv ? 1 : iv - counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_,
                                    out.total.value());
    applied += chunk;
    const u64 chunk_phase = phase;
    for (const auto& d : doms) counter_[d.key] += d.hits.hits_in(phase, chunk);
    phase = (phase + chunk) % period;
    // At most one region reaches ψ *through a write in this chunk* — the
    // chunk's last write belongs to a single region. Fire it even when
    // that write recorded the failure, exactly as write() would. A region
    // whose counter already sits past a shrunken ψ (detector boost raised
    // mid-stream) but that received no write here must wait for its next
    // write, like the per-write path.
    for (const auto& d : doms) {
      if (counter_[d.key] >= iv && d.hits.hits_in(chunk_phase, chunk) > 0) {
        counter_[d.key] = 0;
        out.total += do_movement(d.key, bank);
        ++out.movements;
        rebuild = true;
      }
    }
  }
  out.writes_applied += applied;
}

BulkOutcome RegionStartGap::write_cycle_epoch(std::span<const La> pattern,
                                              const pcm::LineData& data, u64 count,
                                              pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 period = pattern.size();
  const u64 m = cfg_.region_lines();
  std::vector<u64> ias(period);
  std::vector<u64> keys(period);
  for (u64 i = 0; i < period; ++i) {
    ias[i] = randomize(pattern[i].value());
    keys[i] = ias[i] / m;
  }
  std::vector<batch::DomainSched> doms;
  batch::build_domain_scheds(keys, doms);

  // Pattern mapping + schedules, rebuilt after every replayed movement.
  // `slots` additionally excludes each pattern region's gap slot, whose
  // content is stale by construction.
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  std::vector<u64> slots;
  bool rebuild = true;
  u64 phase = 0;

  epoch::HeadroomBudget budget;
  pcm::LineData uniform{};
  bool scanned = false;

  const auto windowed_tail = [&](telemetry::FallbackReason reason) {
    epoch::span_fallback_begin(tel_, tel_id_, out.total.value(), reason);
    write_cycle_windowed(pattern, data, count - out.writes_applied, phase, bank, out);
    epoch::span_fallback_end(tel_, tel_id_, out.total.value(), reason);
  };
  const auto slot_headroom = [&bank](u64 s) {
    const u64 limit = bank.line_endurance(Pa{s});
    const u64 w = bank.wear(Pa{s});
    return limit > w ? limit - w : 0;
  };
  const auto fold_headroom = [&](u64 s) {
    const u64 h = slot_headroom(s);
    if (h < budget.remaining()) budget.seed(h);
  };
  // Current scan exclusions: pattern slots plus each pattern region's gap
  // slot (stale content). Gap headroom is folded into the budget
  // separately — gap slots do receive aggregated movement writes.
  const auto recompute_slots = [&] {
    slots.clear();
    for (const auto& ls : lines) slots.push_back(ls.pa.value());
    for (const auto& d : doms) slots.push_back(region_base(d.key) + sg_[d.key].gap());
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  };
  const auto rescan = [&] {
    recompute_slots();
    const epoch::ScanResult scan = epoch::scan_uniform(bank, physical_lines(), slots);
    if (!scan.uniform) return false;
    uniform = scan.content;
    budget.seed(scan.min_headroom);
    for (const auto& d : doms) fold_headroom(region_base(d.key) + sg_[d.key].gap());
    epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                           count - out.writes_applied, telemetry::FallbackReason::kNone);
    return true;
  };

  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        fresh[i] = Pa{region_base(keys[i]) + sg_[keys[i]].translate(ias[i] % m)};
      }
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
        if (scanned) {
          // Slots leaving the excluded set re-join the movement set with
          // their accumulated wear; fold their headroom into the budget.
          // New exclusions (fresh pattern slots, moved gaps) only shrink
          // the scanned set, which is always safe.
          std::vector<u64> prev;
          prev.swap(slots);
          recompute_slots();
          for (const u64 s : prev) {
            if (!std::binary_search(slots.begin(), slots.end(), s)) fold_headroom(s);
          }
          for (const auto& d : doms) fold_headroom(region_base(d.key) + sg_[d.key].gap());
        }
      }
      rebuild = false;
    }
    if (!scanned) {
      if (!rescan()) {
        windowed_tail(telemetry::FallbackReason::kNonUniformContent);
        return out;
      }
      scanned = true;
    }
    const u64 iv = effective_interval();
    bool overrun = false;
    for (const auto& d : doms) overrun = overrun || counter_[d.key] >= iv;
    if (overrun) {  // interval shrank below a carried counter
      windowed_tail(telemetry::FallbackReason::kPsiChange);
      return out;
    }
    const u64 remaining = count - out.writes_applied;

    // Per pattern region: movements aggregatable before one would touch a
    // pattern slot (from == pattern slot, i.e. the gap reaches slot+1) or
    // wrap the rotation; then the write index of that boundary movement.
    u64 jump = remaining;
    const batch::DomainSched* replay_dom = nullptr;
    for (const auto& d : doms) {
      const u64 gap = sg_[d.key].gap();
      u64 safe = gap;  // gap movements until the wrap movement
      for (const auto& ls : lines) {
        const u64 base = region_base(d.key);
        if (ls.pa.value() < base || ls.pa.value() >= base + m + 1) continue;
        const u64 slot = ls.pa.value() - base;
        if (slot < gap) safe = std::min(safe, gap - slot - 1);
      }
      const u64 need = (iv - counter_[d.key]) + safe * iv;
      const u64 at = d.hits.until_nth(phase, need);
      if (at <= jump) {
        jump = at;
        replay_dom = &d;
      }
    }

    // Endurance cap over the pattern lines → windowed tail (exact).
    u64 lfail = batch::kUnbounded;
    for (const auto& ls : lines) {
      lfail = std::min(lfail, ls.hits.until_nth(phase, ls.remaining));
    }
    if (lfail <= jump) {
      windowed_tail(telemetry::FallbackReason::kNearFailure);
      return out;
    }
    // Aggregated movements wear each movement slot at most once per jump
    // (each region's targets are one contiguous descending range).
    if (!budget.spend(1)) {
      if (!rescan() || !budget.spend(1)) {
        // genuinely near a movement-slot failure
        windowed_tail(telemetry::FallbackReason::kNearFailure);
        return out;
      }
    }

    const u64 jump_t0 = out.total.value();
    // Pattern wear/data: one failure-checked bulk write per distinct PA.
    for (auto& ls : lines) {
      const u64 h = ls.hits.hits_in(phase, jump);
      if (h == 0) continue;
      out.total += bank.bulk_write(ls.pa, data, h);
      ls.remaining -= h;
    }
    // Aggregated gap movements per region: a contiguous wear range below
    // the gap; only the old gap slot changes content (it receives its
    // lower neighbour's line — `uniform`, like every slot in the range).
    u64 steps = 0;
    for (const auto& d : doms) {
      const u64 hits = d.hits.hits_in(phase, jump);
      u64 moves = (counter_[d.key] + hits) / iv;
      counter_[d.key] = (counter_[d.key] + hits) % iv;
      if (replay_dom == &d) --moves;  // the boundary movement replays below
      if (moves == 0) continue;
      const u64 gap = sg_[d.key].gap();
      bank.add_wear_range_unchecked(Pa{region_base(d.key) + gap - moves + 1}, moves, 1);
      bank.poke_data(Pa{region_base(d.key) + gap}, uniform);
      sg_[d.key].retreat_gap(moves);
      out.total += pcm::move_latency(bank.config(), uniform.cls) * moves;
      out.movements += moves;
      steps += moves;
    }
    out.writes_applied += jump;
    phase = (phase + jump) % period;
    epoch::emit_jump(tel_, tel_id_, telemetry::kGlobalDomain, jump,
                     steps + (replay_dom != nullptr ? 1 : 0), jump_t0, out.total.value());
    if (replay_dom != nullptr) {
      counter_[replay_dom->key] = 0;
      out.total += do_movement(replay_dom->key, bank);
      ++out.movements;
      rebuild = true;
    }
  }
  return out;
}

void RegionStartGap::validate_state() const {
  for (u64 q = 0; q < cfg_.regions; ++q) {
    sg_[q].validate();
    check_le(counter_[q], cfg_.interval, "RegionStartGap: region write counter overran ψ");
  }
  if (mapper_ && cfg_.lines <= (u64{1} << 16)) {
    check(mapping::verify_bijection(*mapper_), "RegionStartGap: randomizer is not a bijection");
  }
}

RbsgConfig RegionStartGap::plain_start_gap(u64 lines, u64 interval) {
  RbsgConfig cfg;
  cfg.lines = lines;
  cfg.regions = 1;
  cfg.interval = interval;
  cfg.randomizer = RbsgConfig::Randomizer::kNone;
  return cfg;
}

}  // namespace srbsg::wl
