#include "wl/rbsg.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"
#include "mapping/binary_matrix.hpp"
#include "mapping/feistel.hpp"
#include "mapping/quality.hpp"

namespace srbsg::wl {

void RbsgConfig::validate() const {
  check(is_pow2(lines), "RbsgConfig: lines must be a power of two");
  check(regions >= 1 && lines % regions == 0, "RbsgConfig: regions must divide lines");
  check(interval >= 1, "RbsgConfig: interval must be positive");
  check(feistel_stages >= 1, "RbsgConfig: need at least one Feistel stage");
}

RegionStartGap::RegionStartGap(const RbsgConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  Rng rng(cfg_.seed);
  const u32 bits = log2_floor(cfg_.lines);
  switch (cfg_.randomizer) {
    case RbsgConfig::Randomizer::kNone:
      break;
    case RbsgConfig::Randomizer::kFeistel: {
      const auto keys = mapping::FeistelNetwork::random_keys(bits, cfg_.feistel_stages, rng);
      mapper_ = std::make_unique<mapping::FeistelNetwork>(bits, keys);
      break;
    }
    case RbsgConfig::Randomizer::kMatrix:
      mapper_ = std::make_unique<mapping::BinaryMatrixMapper>(bits, rng);
      break;
  }
  sg_.assign(cfg_.regions, StartGapRegion(cfg_.region_lines()));
  counter_.assign(cfg_.regions, 0);
}

u64 RegionStartGap::randomize(u64 la) const { return mapper_ ? mapper_->map(la) : la; }

u64 RegionStartGap::derandomize(u64 ia) const { return mapper_ ? mapper_->unmap(ia) : ia; }

Pa RegionStartGap::translate(La la) const {
  check(la.value() < cfg_.lines, "RegionStartGap: address out of range");
  const u64 ia = randomize(la.value());
  const u64 m = cfg_.region_lines();
  const u64 q = ia / m;
  const u64 off = ia % m;
  return Pa{region_base(q) + sg_[q].translate(off)};
}

Ns RegionStartGap::do_movement(u64 q, pcm::PcmBank& bank) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const auto mv = sg_[q].advance();
  const Pa from{region_base(q) + mv.from};
  const Pa to{region_base(q) + mv.to};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), from.value(),
               to.value());
  }
  return bank.move_line(from, to);
}

WriteOutcome RegionStartGap::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const u64 ia = randomize(la.value());
  const u64 q = ia / cfg_.region_lines();
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_[q] >= effective_interval()) {
    counter_[q] = 0;
    out.stall = do_movement(q, bank);
    out.movements = 1;
    out.total += out.stall;
  }
  return out;
}

BulkOutcome RegionStartGap::write_repeated(La la, const pcm::LineData& data, u64 count,
                                           pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 ia = randomize(la.value());
  const u64 m = cfg_.region_lines();
  const u64 q = ia / m;
  const u64 off = ia % m;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_[q] >= iv ? 1 : iv - counter_[q];
    const u64 chunk = std::min(count - out.writes_applied, until);
    const Pa pa{region_base(q) + sg_[q].translate(off)};
    out.total += bank.bulk_write(pa, data, chunk);
    out.writes_applied += chunk;
    counter_[q] += chunk;
    if (counter_[q] >= iv && !bank.has_failure()) {
      counter_[q] = 0;
      out.total += do_movement(q, bank);
      ++out.movements;
    }
  }
  return out;
}

BulkOutcome RegionStartGap::write_batch(std::span<const La> las, const pcm::LineData& data,
                                        pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "RegionStartGap: address out of range");
  }
  const u64 m = cfg_.region_lines();
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        // write() body with the randomizer drawn once (write() pays a
        // second draw inside translate()).
        const u64 ia = randomize(la.value());
        const u64 q = ia / m;
        out.total += bank.write(Pa{region_base(q) + sg_[q].translate(ia % m)}, data);
        ++out.writes_applied;
        if (++counter_[q] >= effective_interval()) {
          counter_[q] = 0;
          out.total += do_movement(q, bank);
          ++out.movements;
        }
      });
}

BulkOutcome RegionStartGap::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                        u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "RegionStartGap: address out of range");
  }
  const u64 period = pattern.size();
  if (period > batch::kPatternFallbackFactor * effective_interval()) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  const u64 m = cfg_.region_lines();
  // The randomizer is static: IAs and region keys are fixed for the call.
  std::vector<u64> ias(period);
  std::vector<u64> keys(period);
  for (u64 i = 0; i < period; ++i) {
    ias[i] = randomize(pattern[i].value());
    keys[i] = ias[i] / m;
  }
  std::vector<batch::DomainSched> doms;
  batch::build_domain_scheds(keys, doms);
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        fresh[i] = Pa{region_base(keys[i]) + sg_[keys[i]].translate(ias[i] % m)};
      }
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    u64 chunk = count - out.writes_applied;
    for (const auto& d : doms) {
      const u64 deficit = counter_[d.key] >= iv ? 1 : iv - counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_);
    out.writes_applied += chunk;
    for (const auto& d : doms) counter_[d.key] += d.hits.hits_in(phase, chunk);
    phase = (phase + chunk) % period;
    // At most one region reaches ψ here — the chunk's last write belongs
    // to a single region. Fire it even when that write recorded the
    // failure, exactly as write() would.
    for (const auto& d : doms) {
      if (counter_[d.key] >= iv) {
        counter_[d.key] = 0;
        out.total += do_movement(d.key, bank);
        ++out.movements;
        rebuild = true;
      }
    }
  }
  return out;
}

void RegionStartGap::validate_state() const {
  for (u64 q = 0; q < cfg_.regions; ++q) {
    sg_[q].validate();
    check_le(counter_[q], cfg_.interval, "RegionStartGap: region write counter overran ψ");
  }
  if (mapper_ && cfg_.lines <= (u64{1} << 16)) {
    check(mapping::verify_bijection(*mapper_), "RegionStartGap: randomizer is not a bijection");
  }
}

RbsgConfig RegionStartGap::plain_start_gap(u64 lines, u64 interval) {
  RbsgConfig cfg;
  cfg.lines = lines;
  cfg.regions = 1;
  cfg.interval = interval;
  cfg.randomizer = RbsgConfig::Randomizer::kNone;
  return cfg;
}

}  // namespace srbsg::wl
