#pragma once
// Region-Based Start-Gap (RBSG, Qureshi et al. MICRO'09; paper §III.A).
//
// A *static* randomizer (Feistel network or random invertible binary
// matrix, fixed at boot) maps LA→IA; the IA space is split into R equal
// contiguous regions, each wear-leveled independently by Start-Gap with
// one extra gap line. Every `interval` writes to a region trigger one gap
// movement in that region.
//
// With `regions == 1` and `randomizer == kNone` this degenerates to the
// plain Start-Gap scheme.

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "mapping/mapper.hpp"
#include "wl/start_gap_region.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

struct RbsgConfig {
  u64 lines{1u << 16};  ///< N, power of two
  u64 regions{32};      ///< R, must divide N
  u64 interval{100};    ///< ψ, writes per region between gap movements
  enum class Randomizer { kNone, kFeistel, kMatrix } randomizer{Randomizer::kFeistel};
  u32 feistel_stages{3};  ///< RBSG's recommended static randomizer depth
  u64 seed{1};

  void validate() const;
  [[nodiscard]] u64 region_lines() const { return lines / regions; }
};

class RegionStartGap final : public WearLeveler {
 public:
  explicit RegionStartGap(const RbsgConfig& cfg);

  [[nodiscard]] std::string_view name() const override {
    return cfg_.regions == 1 && cfg_.randomizer == RbsgConfig::Randomizer::kNone
               ? "start-gap"
               : "rbsg";
  }
  [[nodiscard]] u64 logical_lines() const override { return cfg_.lines; }
  [[nodiscard]] u64 physical_lines() const override {
    return cfg_.regions * (cfg_.region_lines() + 1);
  }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

  [[nodiscard]] const RbsgConfig& config() const { return cfg_; }
  /// Static randomizer (identity when configured with kNone).
  [[nodiscard]] u64 randomize(u64 la) const;
  [[nodiscard]] u64 derandomize(u64 ia) const;
  /// Gap register of region `q` (for tests).
  [[nodiscard]] u64 region_gap(u64 q) const { return sg_[q].gap(); }
  [[nodiscard]] u64 region_write_counter(u64 q) const { return counter_[q]; }

  /// Convenience: plain Start-Gap over the whole bank (single region, no
  /// randomizer).
  [[nodiscard]] static RbsgConfig plain_start_gap(u64 lines, u64 interval);

  void set_rate_boost(u32 log2_divisor) override {
    check_lt(log2_divisor, u32{64}, "set_rate_boost: boost shifts past the interval width");
    boost_ = log2_divisor;
  }
  /// Region register bounds, write-counter bounds, and (for enumerable
  /// widths) bijectivity of the static randomizer.
  void validate_state() const override;
  /// Effective remapping interval (configured ψ divided by the boost).
  [[nodiscard]] u64 effective_interval() const {
    const u64 iv = cfg_.interval >> boost_;
    return iv == 0 ? 1 : iv;
  }

 private:
  /// Executes one gap movement in region `q`; returns its latency.
  Ns do_movement(u64 q, pcm::PcmBank& bank);

  /// PR-4 windowed engine, continuing from pattern phase `phase0` for up
  /// to `count` more writes; accumulates into `out`. The epoch path calls
  /// this as its fallback tail.
  void write_cycle_windowed(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                            u64 phase0, pcm::PcmBank& bank, BulkOutcome& out);

  /// Epoch fast-forward engine (DESIGN.md §15): analytic jumps over whole
  /// gap-movement epochs, replaying only movements that relocate a
  /// pattern line or wrap a region's rotation.
  BulkOutcome write_cycle_epoch(std::span<const La> pattern, const pcm::LineData& data,
                                u64 count, pcm::PcmBank& bank);
  [[nodiscard]] u64 region_base(u64 q) const { return q * (cfg_.region_lines() + 1); }

  RbsgConfig cfg_;
  std::unique_ptr<mapping::AddressMapper> mapper_;  ///< null = identity
  std::vector<StartGapRegion> sg_;
  std::vector<u64> counter_;
  u32 boost_{0};
};

}  // namespace srbsg::wl
