#include "wl/security_rbsg.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"

namespace srbsg::wl {

void SecurityRbsgConfig::validate() const {
  check(is_pow2(lines), "SecurityRbsgConfig: lines must be a power of two");
  check(is_pow2(sub_regions) && sub_regions >= 1 && sub_regions < lines,
        "SecurityRbsgConfig: sub_regions must be a power of two smaller than lines");
  check(inner_interval >= 1 && outer_interval >= 1, "SecurityRbsgConfig: bad intervals");
  check(stages >= 1, "SecurityRbsgConfig: need at least one stage");
}

SecurityRbsg::SecurityRbsg(const SecurityRbsgConfig& cfg)
    : cfg_(cfg), outer_(log2_floor(cfg.lines), cfg.stages, Rng(cfg.seed), cfg.prp) {
  cfg_.validate();
  inner_.assign(cfg_.sub_regions, StartGapRegion(cfg_.region_lines()));
  inner_counter_.assign(cfg_.sub_regions, 0);
}

Pa SecurityRbsg::ia_to_pa(u64 ia) const {
  if (ia == outer_.spare_ia()) return spare_pa();
  const u64 m = cfg_.region_lines();
  const u64 q = ia / m;
  const u64 off = ia % m;
  return Pa{q * (m + 1) + inner_[q].translate(off)};
}

Pa SecurityRbsg::translate(La la) const {
  check(la.value() < cfg_.lines, "SecurityRbsg: address out of range");
  return ia_to_pa(outer_.translate(la.value()));
}

Ns SecurityRbsg::do_inner_movement(u64 q, pcm::PcmBank& bank) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const auto mv = inner_[q].advance();
  const u64 base = q * (cfg_.region_lines() + 1);
  const Pa from{base + mv.from};
  const Pa to{base + mv.to};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), from.value(),
               to.value());
  }
  return bank.move_line(from, to);
}

Ns SecurityRbsg::do_outer_movement(pcm::PcmBank& bank) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelOuter, 0);
  }
  // An advance from the idle phase starts a round, which re-draws the
  // DFN key pair — the paper's security lever.
  const bool rekey = outer_.round_idle();
  // The outer movement copies one intermediate line; both endpoints are
  // located through the inner mappings at this instant.
  const auto mv = outer_.advance();
  const Pa from = ia_to_pa(mv.from);
  const Pa to = ia_to_pa(mv.to);
  if (tel_ != nullptr) {
    if (rekey) {
      tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, telemetry::kGlobalDomain,
                 outer_.rounds_completed() + 1, 0);
    }
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, from.value(),
               to.value());
  }
  return bank.move_line(from, to);
}

WriteOutcome SecurityRbsg::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const u64 ia = outer_.translate(la.value());
  WriteOutcome out;
  out.total = bank.write(ia_to_pa(ia), data);
  Ns stall{0};
  u32 moved = 0;
  if (ia != outer_.spare_ia()) {
    const u64 q = ia / cfg_.region_lines();
    if (++inner_counter_[q] >= effective_inner_interval()) {
      inner_counter_[q] = 0;
      stall += do_inner_movement(q, bank);
      ++moved;
    }
  }
  if (++outer_counter_ >= effective_outer_interval()) {
    outer_counter_ = 0;
    stall += do_outer_movement(bank);
    ++moved;
  }
  out.stall = stall;
  out.movements = moved;
  out.total += stall;
  return out;
}

void SecurityRbsg::validate_state() const {
  outer_.validate();
  check_le(outer_counter_, cfg_.outer_interval,
           "SecurityRbsg: outer write counter overran ψ_out");
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_[q].validate();
    check_le(inner_counter_[q], cfg_.inner_interval,
             "SecurityRbsg: inner write counter overran ψ_in");
  }
}

BulkOutcome SecurityRbsg::write_batch(std::span<const La> las, const pcm::LineData& data,
                                      pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "SecurityRbsg: address out of range");
  }
  const u64 m = cfg_.region_lines();
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const u64 ia = outer_.translate(la.value());
        out.total += bank.write(ia_to_pa(ia), data);
        ++out.writes_applied;
        if (ia != outer_.spare_ia()) {
          const u64 q = ia / m;
          if (++inner_counter_[q] >= effective_inner_interval()) {
            inner_counter_[q] = 0;
            out.total += do_inner_movement(q, bank);
            ++out.movements;
          }
        }
        if (++outer_counter_ >= effective_outer_interval()) {
          outer_counter_ = 0;
          out.total += do_outer_movement(bank);
          ++out.movements;
        }
      });
}

BulkOutcome SecurityRbsg::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                      u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "SecurityRbsg: address out of range");
  }
  const u64 period = pattern.size();
  const u64 min_iv = std::min(effective_inner_interval(), effective_outer_interval());
  if (period > batch::kPatternFallbackFactor * min_iv) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  const u64 m = cfg_.region_lines();
  // DFN movements re-key the outer mapping (and move the spare), so
  // domain keys and line schedules are revalidated after every movement;
  // the position currently on the spare advances no inner counter.
  std::vector<u64> keys;
  std::vector<u64> keys_fresh;
  std::vector<Pa> pas;
  std::vector<Pa> pas_fresh;
  std::vector<batch::DomainSched> doms;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      keys_fresh.resize(period);
      pas_fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 ia = outer_.translate(pattern[i].value());
        keys_fresh[i] = ia == outer_.spare_ia() ? batch::kNoDomain : ia / m;
        pas_fresh[i] = ia_to_pa(ia);
      }
      if (batch::adopt_if_changed(keys, keys_fresh)) {
        batch::build_domain_scheds(keys, doms);
      }
      if (batch::adopt_if_changed(pas, pas_fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    u64 chunk = std::min(count - out.writes_applied, until_outer);
    for (const auto& d : doms) {
      const u64 deficit =
          inner_counter_[d.key] >= iv_in ? 1 : iv_in - inner_counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_);
    out.writes_applied += chunk;
    for (const auto& d : doms) inner_counter_[d.key] += d.hits.hits_in(phase, chunk);
    outer_counter_ += chunk;
    phase = (phase + chunk) % period;
    // Fire in write()'s order: the (single) due inner region, then the
    // outer movement — even when the chunk's last write recorded the
    // failure. Both movement kinds always move a line here.
    for (const auto& d : doms) {
      if (inner_counter_[d.key] >= iv_in) {
        inner_counter_[d.key] = 0;
        out.total += do_inner_movement(d.key, bank);
        ++out.movements;
        rebuild = true;
      }
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_movement(bank);
      ++out.movements;
      rebuild = true;
    }
  }
  return out;
}

BulkOutcome SecurityRbsg::write_repeated(La la, const pcm::LineData& data, u64 count,
                                         pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    // An outer movement can remap `la` into another sub-region (or the
    // spare), so the chunk ends at the nearest trigger and everything is
    // recomputed afterwards.
    const u64 ia = outer_.translate(la.value());
    const bool on_spare = ia == outer_.spare_ia();
    const u64 q = on_spare ? 0 : ia / cfg_.region_lines();
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_inner =
        on_spare ? count
                 : (inner_counter_[q] >= iv_in ? 1 : iv_in - inner_counter_[q]);
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    const u64 chunk = std::min({count - out.writes_applied, until_inner, until_outer});
    out.total += bank.bulk_write(ia_to_pa(ia), data, chunk);
    out.writes_applied += chunk;
    if (!on_spare) inner_counter_[q] += chunk;
    outer_counter_ += chunk;
    if (bank.has_failure()) break;
    if (!on_spare && inner_counter_[q] >= iv_in) {
      inner_counter_[q] = 0;
      out.total += do_inner_movement(q, bank);
      ++out.movements;
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_movement(bank);
      ++out.movements;
    }
  }
  return out;
}

}  // namespace srbsg::wl
