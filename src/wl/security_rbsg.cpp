#include "wl/security_rbsg.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"
#include "wl/epoch.hpp"
#include "pcm/timing.hpp"

namespace srbsg::wl {

void SecurityRbsgConfig::validate() const {
  check(is_pow2(lines), "SecurityRbsgConfig: lines must be a power of two");
  check(is_pow2(sub_regions) && sub_regions >= 1 && sub_regions < lines,
        "SecurityRbsgConfig: sub_regions must be a power of two smaller than lines");
  check(inner_interval >= 1 && outer_interval >= 1, "SecurityRbsgConfig: bad intervals");
  check(stages >= 1, "SecurityRbsgConfig: need at least one stage");
}

SecurityRbsg::SecurityRbsg(const SecurityRbsgConfig& cfg)
    : cfg_(cfg), outer_(log2_floor(cfg.lines), cfg.stages, Rng(cfg.seed), cfg.prp) {
  cfg_.validate();
  inner_.assign(cfg_.sub_regions, StartGapRegion(cfg_.region_lines()));
  inner_counter_.assign(cfg_.sub_regions, 0);
}

Pa SecurityRbsg::ia_to_pa(u64 ia) const {
  if (ia == outer_.spare_ia()) return spare_pa();
  const u64 m = cfg_.region_lines();
  const u64 q = ia / m;
  const u64 off = ia % m;
  return Pa{q * (m + 1) + inner_[q].translate(off)};
}

Pa SecurityRbsg::translate(La la) const {
  check(la.value() < cfg_.lines, "SecurityRbsg: address out of range");
  return ia_to_pa(outer_.translate(la.value()));
}

Ns SecurityRbsg::do_inner_movement(u64 q, pcm::PcmBank& bank) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const auto mv = inner_[q].advance();
  const u64 base = q * (cfg_.region_lines() + 1);
  const Pa from{base + mv.from};
  const Pa to{base + mv.to};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), from.value(),
               to.value());
  }
  return bank.move_line(from, to);
}

Ns SecurityRbsg::do_outer_movement(pcm::PcmBank& bank) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelOuter, 0);
  }
  // An advance from the idle phase starts a round, which re-draws the
  // DFN key pair — the paper's security lever.
  const bool rekey = outer_.round_idle();
  // The outer movement copies one intermediate line; both endpoints are
  // located through the inner mappings at this instant.
  const auto mv = outer_.advance();
  const Pa from = ia_to_pa(mv.from);
  const Pa to = ia_to_pa(mv.to);
  if (tel_ != nullptr) {
    if (rekey) {
      tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, telemetry::kGlobalDomain,
                 outer_.rounds_completed() + 1, 0);
    }
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, from.value(),
               to.value());
  }
  return bank.move_line(from, to);
}

WriteOutcome SecurityRbsg::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  const u64 ia = outer_.translate(la.value());
  WriteOutcome out;
  out.total = bank.write(ia_to_pa(ia), data);
  Ns stall{0};
  u32 moved = 0;
  if (ia != outer_.spare_ia()) {
    const u64 q = ia / cfg_.region_lines();
    if (++inner_counter_[q] >= effective_inner_interval()) {
      inner_counter_[q] = 0;
      stall += do_inner_movement(q, bank);
      ++moved;
    }
  }
  if (++outer_counter_ >= effective_outer_interval()) {
    outer_counter_ = 0;
    stall += do_outer_movement(bank);
    ++moved;
  }
  out.stall = stall;
  out.movements = moved;
  out.total += stall;
  return out;
}

void SecurityRbsg::validate_state() const {
  outer_.validate();
  check_le(outer_counter_, cfg_.outer_interval,
           "SecurityRbsg: outer write counter overran ψ_out");
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_[q].validate();
    check_le(inner_counter_[q], cfg_.inner_interval,
             "SecurityRbsg: inner write counter overran ψ_in");
  }
}

BulkOutcome SecurityRbsg::write_batch(std::span<const La> las, const pcm::LineData& data,
                                      pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "SecurityRbsg: address out of range");
  }
  const u64 m = cfg_.region_lines();
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const u64 ia = outer_.translate(la.value());
        out.total += bank.write(ia_to_pa(ia), data);
        ++out.writes_applied;
        if (ia != outer_.spare_ia()) {
          const u64 q = ia / m;
          if (++inner_counter_[q] >= effective_inner_interval()) {
            inner_counter_[q] = 0;
            out.total += do_inner_movement(q, bank);
            ++out.movements;
          }
        }
        if (++outer_counter_ >= effective_outer_interval()) {
          outer_counter_ = 0;
          out.total += do_outer_movement(bank);
          ++out.movements;
        }
      });
}

BulkOutcome SecurityRbsg::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                      u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "SecurityRbsg: address out of range");
  }
  const u64 period = pattern.size();
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  const u64 min_iv = std::min(effective_inner_interval(), effective_outer_interval());
  if (period > batch::kPatternFallbackFactor * min_iv) {
    if (engine_tier() == EngineTier::kEpoch) {
      epoch::span_fallback_begin(tel_, tel_id_, 0,
                                 telemetry::FallbackReason::kNonPeriodicPattern);
      const BulkOutcome ref = WearLeveler::write_cycle(pattern, data, count, bank);
      epoch::span_fallback_end(tel_, tel_id_, ref.total.value(),
                               telemetry::FallbackReason::kNonPeriodicPattern);
      return ref;
    }
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The epoch engine's O(physical lines) headroom scan is amortized
  // across calls by the cross-call cache, so even short bursts (BPA's
  // 256-write probes) take the epoch engine under that tier.
  if (engine_tier() == EngineTier::kEpoch) {
    return write_cycle_epoch(pattern, data, count, bank);
  }
  write_cycle_windowed(pattern, data, count, 0, bank, out);
  return out;
}

void SecurityRbsg::write_cycle_windowed(std::span<const La> pattern, const pcm::LineData& data,
                                        u64 count, u64 phase0, pcm::PcmBank& bank,
                                        BulkOutcome& out) {
  const u64 period = pattern.size();
  const u64 m = cfg_.region_lines();
  // DFN movements re-key the outer mapping (and move the spare), so
  // domain keys and line schedules are revalidated after every movement;
  // the position currently on the spare advances no inner counter.
  std::vector<u64> keys;
  std::vector<u64> keys_fresh;
  std::vector<Pa> pas;
  std::vector<Pa> pas_fresh;
  std::vector<batch::DomainSched> doms;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = phase0;
  u64 applied = 0;
  while (applied < count && !bank.has_failure()) {
    if (rebuild) {
      keys_fresh.resize(period);
      pas_fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 ia = outer_.translate(pattern[i].value());
        keys_fresh[i] = ia == outer_.spare_ia() ? batch::kNoDomain : ia / m;
        pas_fresh[i] = ia_to_pa(ia);
      }
      if (batch::adopt_if_changed(keys, keys_fresh)) {
        batch::build_domain_scheds(keys, doms);
      }
      if (batch::adopt_if_changed(pas, pas_fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    u64 chunk = std::min(count - applied, until_outer);
    for (const auto& d : doms) {
      const u64 deficit =
          inner_counter_[d.key] >= iv_in ? 1 : iv_in - inner_counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_,
                                    out.total.value());
    applied += chunk;
    const u64 chunk_phase = phase;
    for (const auto& d : doms) inner_counter_[d.key] += d.hits.hits_in(phase, chunk);
    outer_counter_ += chunk;
    phase = (phase + chunk) % period;
    // Fire in write()'s order: the (single) due inner region, then the
    // outer movement — even when the chunk's last write recorded the
    // failure. Both movement kinds always move a line here. A region whose
    // counter sits past a shrunken ψ_in but took no write in this chunk
    // must wait for its next write, like the per-write path.
    for (const auto& d : doms) {
      if (inner_counter_[d.key] >= iv_in && d.hits.hits_in(chunk_phase, chunk) > 0) {
        inner_counter_[d.key] = 0;
        out.total += do_inner_movement(d.key, bank);
        ++out.movements;
        rebuild = true;
      }
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_movement(bank);
      ++out.movements;
      rebuild = true;
    }
  }
  out.writes_applied += applied;
}

BulkOutcome SecurityRbsg::write_cycle_epoch(std::span<const La> pattern,
                                            const pcm::LineData& data, u64 count,
                                            pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 period = pattern.size();
  const u64 m = cfg_.region_lines();
  const pcm::PcmConfig& pcfg = bank.config();

  // Pattern mapping + schedules, rebuilt only when a movement actually
  // displaces a pattern line (outer DFN movements re-shard the pattern;
  // the spare position advances no inner counter and owns no domain).
  std::vector<u64> ias(period);
  std::vector<u64> keys(period);
  std::vector<batch::DomainSched> doms;
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  std::vector<u64> pat_slots;
  std::vector<u64> next_slots;
  bool rebuild = true;
  u64 phase = 0;

  // Unlike the closed-form engines, this one replays every movement's
  // data shift exactly (sources read back from the bank), so no content
  // uniformity is required — only the headroom budget proving that
  // unchecked aggregate wear cannot push a movement slot past its
  // endurance limit. A previous epoch call's budget survives when
  // nothing wrote to the bank in between (BPA's 256-write probe bursts
  // rely on this).
  epoch::HeadroomBudget budget;
  bool budgeted = ecache_.restore(bank, budget);

  const auto windowed_tail = [&](telemetry::FallbackReason reason) {
    epoch::span_fallback_begin(tel_, tel_id_, out.total.value(), reason);
    write_cycle_windowed(pattern, data, count - out.writes_applied, phase, bank, out);
    epoch::span_fallback_end(tel_, tel_id_, out.total.value(), reason);
  };

  const auto fold_headroom = [&](u64 s) {
    const u64 limit = bank.line_endurance(Pa{s});
    const u64 w = bank.wear(Pa{s});
    const u64 h = limit > w ? limit - w : 0;
    if (h < budget.remaining()) budget.seed(h);
  };
  // Conservative wear margin over every slot the pattern writes do not
  // track exactly: movement slots, gap holes and the spare all take
  // movement wear. Never fails — a polluted or near-worn bank just gets
  // a small budget and tails sooner.
  const auto rescan = [&](telemetry::FallbackReason reason) {
    budget.seed(epoch::min_headroom_excluding(bank, physical_lines(), pat_slots));
    epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                           count - out.writes_applied, reason);
  };

  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      for (u64 i = 0; i < period; ++i) {
        ias[i] = outer_.translate(pattern[i].value());
        keys[i] = ias[i] == outer_.spare_ia() ? batch::kNoDomain : ias[i] / m;
      }
      batch::build_domain_scheds(keys, doms);
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) fresh[i] = ia_to_pa(ias[i]);
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
        next_slots.clear();
        for (const auto& ls : lines) next_slots.push_back(ls.pa.value());
        std::sort(next_slots.begin(), next_slots.end());
        if (budgeted) {
          // A slot leaving the pattern set re-joins the movement pool
          // carrying pattern-scale wear.
          for (const u64 s : pat_slots) {
            if (std::binary_search(next_slots.begin(), next_slots.end(), s)) continue;
            fold_headroom(s);
          }
        }
        pat_slots.swap(next_slots);
      }
      rebuild = false;
    }
    if (!budgeted) {
      // A cold cross-call cache forces the fresh headroom projection.
      rescan(telemetry::FallbackReason::kCacheMiss);
      budgeted = true;
    }
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    bool overrun = outer_counter_ >= iv_out;  // interval shrank below a carried counter
    for (const auto& d : doms) overrun = overrun || inner_counter_[d.key] >= iv_in;
    if (overrun) {
      windowed_tail(telemetry::FallbackReason::kPsiChange);
      return out;
    }
    const u64 remaining = count - out.writes_applied;

    // Inner level: per active region, gap movements aggregate until one
    // would shift a pattern slot or wrap (Start redraw); the
    // cumulative-safe formulation below stays valid across every segment
    // of this round, so it is computed once per round.
    u64 b_in = batch::kUnbounded;
    for (const auto& d : doms) {
      const u64 base = d.key * (m + 1);
      const u64 g = inner_[d.key].gap();
      u64 safe = g;
      for (u64 i = 0; i < period; ++i) {
        if (keys[i] != d.key) continue;
        const u64 local = pas[i].value() - base;
        if (local < g) safe = std::min(safe, g - local - 1);
      }
      const u64 at = d.hits.until_nth(phase, (iv_in - inner_counter_[d.key]) + safe * iv_in);
      b_in = std::min(b_in, at);
    }
    // Writes coverable this round. Outer (DFN) movements cannot
    // fast-forward — the Feistel walk replays one movement per ψ_out
    // writes — but each replay is cheap (wear + an exact one-line copy),
    // so the segment loop below walks whole ψ_out intervals and only
    // surfaces when a movement displaces a pattern line (rebuild).
    const u64 big = std::min(remaining, b_in);
    const bool inner_boundary = b_in <= remaining;

    // Endurance cap over the pattern lines, hoisted: `until_nth` counts
    // from this round's phase, so one bound covers every segment.
    u64 lfail = batch::kUnbounded;
    for (const auto& ls : lines) {
      lfail = std::min(lfail, ls.hits.until_nth(phase, ls.remaining));
    }

    const u64 jump_t0 = out.total.value();
    u64 done = 0;
    u64 steps = 0;
    bool stop = false;
    bool tail = false;
    while (done < big && !stop) {
      const u64 until_outer = iv_out - outer_counter_;
      const u64 seg = std::min(big - done, until_outer);
      const bool outer_live = seg == until_outer;
      const bool at_big = done + seg == big;

      if (lfail <= done + seg) {  // a pattern line fails inside this segment
        tail = true;
        break;
      }
      // Per segment a movement slot takes at most one aggregated
      // gap-shift wear (contiguous descending ranges, disjoint from any
      // replayed movement's target) plus one outer-movement destination.
      if (!budget.spend(2)) {
        rescan(telemetry::FallbackReason::kNone);
        if (!budget.spend(2)) {
          tail = true;  // genuinely near a movement-slot failure
          break;
        }
      }

      // Pattern wear/data: one failure-checked bulk write per distinct PA.
      for (auto& ls : lines) {
        const u64 h = ls.hits.hits_in(phase, seg);
        if (h == 0) continue;
        out.total += bank.bulk_write(ls.pa, data, h);
        ls.remaining -= h;
      }

      // The final write of the round's last segment can fire the one
      // inner movement the aggregate below must not fold: at the b_in
      // boundary the due movement would cross a pattern slot or wrap
      // (Start redraw), so it replays exactly.
      bool inner_exact = false;
      u64 q_b = batch::kNoDomain;
      if (at_big && inner_boundary) {
        q_b = keys[(phase + seg - 1) % period];
        if (q_b != batch::kNoDomain) {
          for (const auto& d : doms) {
            if (d.key != q_b) continue;
            inner_exact = (inner_counter_[d.key] + d.hits.hits_in(phase, seg)) % iv_in == 0;
            break;
          }
        }
      }
      // Aggregated gap movements per region: one wear range plus an exact
      // replay of the data shift — destination t receives slot t−1's
      // line, walked top-down so each source is read before it is
      // overwritten. Sources are re-read from the bank, so non-uniform
      // content (attack residue) is carried bit-exactly. Movements
      // co-firing at an outer boundary are aggregated too: they are
      // within the safe distance, and the gap retreat lands before the
      // outer replay reads the inner mapping, matching write()'s
      // inner-then-outer order.
      for (const auto& d : doms) {
        const u64 h = d.hits.hits_in(phase, seg);
        u64 moves = (inner_counter_[d.key] + h) / iv_in;
        inner_counter_[d.key] = (inner_counter_[d.key] + h) % iv_in;
        if (inner_exact && d.key == q_b) --moves;  // the boundary movement replays below
        if (moves == 0) continue;
        const u64 base = d.key * (m + 1);
        const u64 g = inner_[d.key].gap();
        bank.add_wear_range_unchecked(Pa{base + g - moves + 1}, moves, 1);
        for (u64 t = base + g; t > base + g - moves; --t) {
          const pcm::LineData src = bank.data(Pa{t - 1});
          out.total += pcm::move_latency(pcfg, src.cls);
          if (!(bank.data(Pa{t}) == src)) bank.poke_data(Pa{t}, src);
        }
        inner_[d.key].retreat_gap(moves);
        out.movements += moves;
        steps += moves;
      }
      outer_counter_ += seg;
      done += seg;
      phase = (phase + seg) % period;

      // Replay the due movement(s), in write()'s order (inner then
      // outer); the due counters already read 0 here.
      if (inner_exact) {
        out.total += do_inner_movement(q_b, bank);
        ++out.movements;
        ++steps;
        rebuild = true;  // a wrap redraws Start and shifts the region wholesale
        stop = true;
      }
      if (outer_live) {
        outer_counter_ = 0;
        // Inline DFN replay; telemetry mirrors do_outer_movement().
        if (tel_ != nullptr) {
          tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_,
                     telemetry::kGlobalDomain, telemetry::kLevelOuter, 0);
        }
        const bool rekey = outer_.round_idle();
        const auto mv = outer_.advance();
        if (tel_ != nullptr && rekey) {
          tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_,
                     telemetry::kGlobalDomain, outer_.rounds_completed() + 1, 0);
        }
        bool touches_pattern = false;
        for (u64 i = 0; i < period; ++i) {
          touches_pattern = touches_pattern || ias[i] == mv.from || ias[i] == mv.to;
        }
        const Pa ofrom = ia_to_pa(mv.from);
        const Pa oto = ia_to_pa(mv.to);
        if (tel_ != nullptr) {
          tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain,
                     ofrom.value(), oto.value());
        }
        ++out.movements;
        ++steps;
        if (touches_pattern) {
          // A pattern line actually moves: copy it with checked wear and
          // rebuild the schedules around its new position.
          out.total += bank.move_line(ofrom, oto);
          rebuild = true;
          stop = true;
        } else {
          // The copy cannot involve a pattern line: replay it exactly
          // with budget-covered wear. Reading the source from the bank
          // keeps arbitrary content (attack residue, the parked spare)
          // bit-exact without any uniformity assumption.
          bank.add_wear_range_unchecked(oto, 1, 1);
          const pcm::LineData src = bank.data(ofrom);
          out.total += pcm::move_latency(pcfg, src.cls);
          if (!(bank.data(oto) == src)) bank.poke_data(oto, src);
        }
      }
    }
    out.writes_applied += done;
    if (done > 0) {
      epoch::emit_jump(tel_, tel_id_, telemetry::kGlobalDomain, done, steps, jump_t0,
                       out.total.value());
    }
    if (tail) {
      // Both tail sites bail because a line is about to cross its
      // endurance limit (pattern line or movement slot).
      windowed_tail(telemetry::FallbackReason::kNearFailure);
      return out;
    }
  }
  if (budgeted && !bank.has_failure()) {
    ecache_.save(bank, budget);
  }
  return out;
}

BulkOutcome SecurityRbsg::write_repeated(La la, const pcm::LineData& data, u64 count,
                                         pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    // An outer movement can remap `la` into another sub-region (or the
    // spare), so the chunk ends at the nearest trigger and everything is
    // recomputed afterwards.
    const u64 ia = outer_.translate(la.value());
    const bool on_spare = ia == outer_.spare_ia();
    const u64 q = on_spare ? 0 : ia / cfg_.region_lines();
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_inner =
        on_spare ? count
                 : (inner_counter_[q] >= iv_in ? 1 : iv_in - inner_counter_[q]);
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    const u64 chunk = std::min({count - out.writes_applied, until_inner, until_outer});
    out.total += bank.bulk_write(ia_to_pa(ia), data, chunk);
    out.writes_applied += chunk;
    if (!on_spare) inner_counter_[q] += chunk;
    outer_counter_ += chunk;
    if (bank.has_failure()) break;
    if (!on_spare && inner_counter_[q] >= iv_in) {
      inner_counter_[q] = 0;
      out.total += do_inner_movement(q, bank);
      ++out.movements;
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_movement(bank);
      ++out.movements;
    }
  }
  return out;
}

}  // namespace srbsg::wl
