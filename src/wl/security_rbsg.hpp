#pragma once
// Security Region-Based Start-Gap — the paper's proposed scheme (§IV).
//
// Outer level: security-level-adjustable *dynamic* Feistel network maps
// LA→IA, re-keyed every remapping round so a timing attacker cannot
// recover the keys before they rotate. One outer movement every
// `outer_interval` writes to the bank.
//
// Inner level: the IA space is split into `sub_regions` fixed-size
// regions, each rotated by plain Start-Gap (low overhead; security is
// already provided by the outer level). One inner movement every
// `inner_interval` writes landing in that sub-region.
//
// Physical layout: sub-region q occupies slots [q*(M+1), (q+1)*(M+1));
// the outer spare line is the final physical line.

#include <vector>

#include "common/check.hpp"
#include "wl/dfn.hpp"
#include "wl/epoch.hpp"
#include "wl/start_gap_region.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

struct SecurityRbsgConfig {
  u64 lines{1u << 16};      ///< N, power of two
  u64 sub_regions{512};     ///< R, power of two, divides N
  u64 inner_interval{64};   ///< ψ_in (Start-Gap movements)
  u64 outer_interval{128};  ///< ψ_out (DFN movements)
  u32 stages{7};            ///< Feistel stages (security level; paper picks 7)
  OuterPrpKind prp{OuterPrpKind::kCubingFeistel};  ///< outer permutation family
  u64 seed{1};

  void validate() const;
  [[nodiscard]] u64 region_lines() const { return lines / sub_regions; }
};

class SecurityRbsg final : public WearLeveler {
 public:
  explicit SecurityRbsg(const SecurityRbsgConfig& cfg);

  [[nodiscard]] std::string_view name() const override { return "security-rbsg"; }
  [[nodiscard]] u64 logical_lines() const override { return cfg_.lines; }
  [[nodiscard]] u64 physical_lines() const override {
    return cfg_.sub_regions * (cfg_.region_lines() + 1) + 1;
  }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

  [[nodiscard]] const SecurityRbsgConfig& config() const { return cfg_; }
  [[nodiscard]] const DynamicFeistelOuter& outer() const { return outer_; }
  [[nodiscard]] u64 to_ia(u64 la) const { return outer_.translate(la); }

  /// DFN state-machine consistency (Gap/Kc/Kp/isRemap), inner Start-Gap
  /// register bounds, and the inner/outer write-counter bounds.
  void validate_state() const override;

  void set_rate_boost(u32 log2_divisor) override {
    check_lt(log2_divisor, u32{64}, "set_rate_boost: boost shifts past the interval width");
    boost_ = log2_divisor;
  }
  [[nodiscard]] u64 effective_inner_interval() const {
    const u64 iv = cfg_.inner_interval >> boost_;
    return iv == 0 ? 1 : iv;
  }
  [[nodiscard]] u64 effective_outer_interval() const {
    const u64 iv = cfg_.outer_interval >> boost_;
    return iv == 0 ? 1 : iv;
  }

 private:
  [[nodiscard]] Pa ia_to_pa(u64 ia) const;
  [[nodiscard]] Pa spare_pa() const { return Pa{physical_lines() - 1}; }
  Ns do_inner_movement(u64 q, pcm::PcmBank& bank);
  Ns do_outer_movement(pcm::PcmBank& bank);
  /// PR-4 windowed engine, entered at cycle offset `phase0`; accumulates
  /// into `out`.
  void write_cycle_windowed(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                            u64 phase0, pcm::PcmBank& bank, BulkOutcome& out);
  /// Epoch fast-forward engine (DESIGN.md §15): inner Start-Gap sweeps
  /// aggregate between exactly-replayed outer DFN movements.
  BulkOutcome write_cycle_epoch(std::span<const La> pattern, const pcm::LineData& data,
                                u64 count, pcm::PcmBank& bank);

  SecurityRbsgConfig cfg_;
  DynamicFeistelOuter outer_;
  std::vector<StartGapRegion> inner_;
  std::vector<u64> inner_counter_;
  u64 outer_counter_{0};
  u32 boost_{0};
  /// Cross-call budget cache: short bulk bursts (BPA's probes) re-enter
  /// the epoch engine without re-paying the O(physical lines) headroom
  /// scan.
  epoch::CallCache ecache_;
};

}  // namespace srbsg::wl
