#include "wl/security_refresh.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"
#include "wl/epoch.hpp"

namespace srbsg::wl {

void SecurityRefreshConfig::validate() const {
  check(is_pow2(lines), "SecurityRefreshConfig: lines must be a power of two");
  check(interval >= 1, "SecurityRefreshConfig: interval must be positive");
}

SecurityRefresh::SecurityRefresh(const SecurityRefreshConfig& cfg)
    : cfg_(cfg), region_(log2_floor(cfg.lines), Rng(cfg.seed)) {
  cfg_.validate();
}

Pa SecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  return Pa{region_.translate(la.value())};
}

Ns SecurityRefresh::do_step(pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelInner, 0);
  }
  // A CRP wrap inside advance() re-draws key_c; the key value itself
  // stays out of the trace (it is the secret the attacks chase).
  const u64 key_before = region_.key_c();
  const auto swap = region_.advance();
  if (tel_ != nullptr && region_.key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, telemetry::kGlobalDomain, 0, 0);
  }
  // A skipped step (candidate already refreshed this round) triggers a
  // remap but moves nothing: RemapTriggered without GapMoved.
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, swap->a,
               swap->b);
  }
  return bank.swap_lines(Pa{swap->a}, Pa{swap->b});
}

WriteOutcome SecurityRefresh::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_ >= effective_interval()) {
    counter_ = 0;
    u64 moved = 0;
    out.stall = do_step(bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void SecurityRefresh::validate_state() const {
  region_.validate();
  check_le(counter_, cfg_.interval, "SecurityRefresh: write counter overran ψ");
}

BulkOutcome SecurityRefresh::write_batch(std::span<const La> las, const pcm::LineData& data,
                                         pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  }
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_batch(las, data, bank);
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        out.total += bank.write(Pa{region_.translate(la.value())}, data);
        ++out.writes_applied;
        if (++counter_ >= effective_interval()) {
          counter_ = 0;
          out.total += do_step(bank, &out.movements);
        }
      });
}

BulkOutcome SecurityRefresh::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                         u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  }
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  if (pattern.size() > batch::kPatternFallbackFactor * effective_interval()) {
    if (engine_tier() == EngineTier::kEpoch) {
      epoch::span_fallback_begin(tel_, tel_id_, 0,
                                 telemetry::FallbackReason::kNonPeriodicPattern);
      const BulkOutcome ref = WearLeveler::write_cycle(pattern, data, count, bank);
      epoch::span_fallback_end(tel_, tel_id_, ref.total.value(),
                               telemetry::FallbackReason::kNonPeriodicPattern);
      return ref;
    }
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The epoch engine opens with an O(physical lines) uniform-content
  // scan per call; bursts too short to amortize it (BPA's 256-write
  // probes) take the windowed engine instead — same outcomes, no scan.
  if (engine_tier() == EngineTier::kEpoch && count >= physical_lines()) {
    return write_cycle_epoch(pattern, data, count, bank);
  }
  write_cycle_windowed(pattern, data, count, 0, bank, out);
  return out;
}

void SecurityRefresh::write_cycle_windowed(std::span<const La> pattern,
                                           const pcm::LineData& data, u64 count, u64 phase0,
                                           pcm::PcmBank& bank, BulkOutcome& out) {
  // The single global counter advances on every write, so windows are
  // just the deficit; the CRP mapping only changes at real swaps.
  const u64 period = pattern.size();
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = phase0;
  u64 applied = 0;
  while (applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) fresh[i] = Pa{region_.translate(pattern[i].value())};
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    const u64 deficit = counter_ >= iv ? 1 : iv - counter_;
    u64 chunk = std::min(count - applied, deficit);
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_,
                                    out.total.value());
    applied += chunk;
    counter_ += chunk;
    phase = (phase + chunk) % period;
    if (counter_ >= iv) {
      counter_ = 0;
      const u64 before = out.movements;
      out.total += do_step(bank, &out.movements);
      if (out.movements != before) rebuild = true;  // skipped steps move nothing
    }
  }
  out.writes_applied += applied;
}

BulkOutcome SecurityRefresh::write_cycle_epoch(std::span<const La> pattern,
                                               const pcm::LineData& data, u64 count,
                                               pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 period = pattern.size();

  // Pattern mapping + per-line schedules, rebuilt after any replayed CRP
  // step that moved a line. `slots` is the sorted distinct pattern slots
  // — the set every aggregated swap must avoid.
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  std::vector<u64> slots;
  std::vector<u64> next_slots;
  bool rebuild = true;
  u64 phase = 0;

  // One uniformity/headroom scan authorizes the whole call (DESIGN.md
  // §15): aggregated swaps are data no-ops while every movement slot
  // holds `uniform`, and cannot fail while the budget stays positive.
  epoch::HeadroomBudget budget;
  pcm::LineData uniform{};
  bool scanned = false;

  const auto windowed_tail = [&](telemetry::FallbackReason reason) {
    epoch::span_fallback_begin(tel_, tel_id_, out.total.value(), reason);
    write_cycle_windowed(pattern, data, count - out.writes_applied, phase, bank, out);
    epoch::span_fallback_end(tel_, tel_id_, out.total.value(), reason);
  };

  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) fresh[i] = Pa{region_.translate(pattern[i].value())};
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
        next_slots.clear();
        for (const auto& ls : lines) next_slots.push_back(ls.pa.value());
        std::sort(next_slots.begin(), next_slots.end());
        // A slot leaving the pattern set re-joins the movement set
        // carrying pattern-scale wear; fold its headroom into the budget.
        if (scanned) {
          for (const u64 s : slots) {
            if (std::binary_search(next_slots.begin(), next_slots.end(), s)) continue;
            const u64 limit = bank.line_endurance(Pa{s});
            const u64 w = bank.wear(Pa{s});
            const u64 h = limit > w ? limit - w : 0;
            if (h < budget.remaining()) budget.seed(h);
          }
        }
        slots.swap(next_slots);
      }
      rebuild = false;
    }
    if (!scanned) {
      const epoch::ScanResult scan = epoch::scan_uniform(bank, cfg_.lines, slots);
      if (!scan.uniform) {
        windowed_tail(telemetry::FallbackReason::kNonUniformContent);
        return out;
      }
      uniform = scan.content;
      budget.seed(scan.min_headroom);
      epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                             count - out.writes_applied, telemetry::FallbackReason::kNone);
      scanned = true;
    }
    const u64 iv = effective_interval();
    if (counter_ >= iv) {  // interval shrank below the carried counter
      windowed_tail(telemetry::FallbackReason::kPsiChange);
      return out;
    }
    const u64 remaining = count - out.writes_applied;
    const u64 deficit = iv - counter_;
    // Triggers the remaining writes would fire: the first after `deficit`
    // writes, then one per interval.
    const u64 due = remaining < deficit ? 0 : 1 + (remaining - deficit) / iv;
    // First upcoming CRP candidate whose swap touches a pattern slot (or
    // the round end, whichever is closer); steps before it aggregate.
    u64 boundary = region_.lines();
    for (const u64 s : slots) boundary = std::min(boundary, region_.next_touch(s));
    const u64 crp = region_.crp();
    const u64 safe_steps = boundary > crp ? boundary - crp : 0;

    u64 jump;   // writes this jump covers
    u64 steps;  // CRP steps aggregated inside it
    bool replay;
    if (due <= safe_steps) {
      jump = remaining;
      steps = due;
      replay = false;
    } else {
      jump = deficit + safe_steps * iv;  // through the boundary trigger's write
      steps = safe_steps;
      replay = true;
    }

    // Endurance cap: the write whose pattern hit would record the bank's
    // first failure. Anywhere inside the jump → windowed tail (exact).
    u64 lfail = batch::kUnbounded;
    for (const auto& ls : lines) {
      lfail = std::min(lfail, ls.hits.until_nth(phase, ls.remaining));
    }
    if (lfail <= jump) {
      windowed_tail(telemetry::FallbackReason::kNearFailure);
      return out;
    }
    // Movement-slot wear: one round touches each slot at most once, so the
    // aggregated swaps cost one unit per slot; the replayed boundary step
    // can open a *new* round and re-touch an already-swept slot, so a
    // second unit covers its (checked) wear too.
    if (steps > 0 && !budget.spend(2)) {
      const epoch::ScanResult scan = epoch::scan_uniform(bank, cfg_.lines, slots);
      if (!scan.uniform || !(budget.seed(scan.min_headroom), budget.spend(2))) {
        // genuinely near a movement-slot failure
        windowed_tail(telemetry::FallbackReason::kNearFailure);
        return out;
      }
      uniform = scan.content;
      epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                             count - out.writes_applied, telemetry::FallbackReason::kNone);
    }

    const u64 jump_t0 = out.total.value();
    // Pattern wear/data: one failure-checked bulk write per distinct PA.
    for (auto& ls : lines) {
      const u64 h = ls.hits.hits_in(phase, jump);
      if (h == 0) continue;
      out.total += bank.bulk_write(ls.pa, data, h);
      ls.remaining -= h;
    }
    // Aggregated swaps: wear-only; contents are all `uniform`, so the
    // permutation they induce is invisible and latency is uniform.
    if (steps > 0) {
      const std::span<u64> wear = bank.wear_mut();
      const u64 fired =
          region_.advance_steps(steps, [&wear](u64 a, u64 b) { ++wear[a], ++wear[b]; });
      bank.note_writes_unchecked(2 * fired);
      out.total += pcm::swap_latency(bank.config(), uniform.cls, uniform.cls) * fired;
      out.movements += fired;
    }
    out.writes_applied += jump;
    phase = (phase + jump) % period;
    epoch::emit_jump(tel_, tel_id_, telemetry::kGlobalDomain, jump, steps, jump_t0,
                     out.total.value());
    if (replay) {
      counter_ = 0;
      const u64 before = out.movements;
      out.total += do_step(bank, &out.movements);
      if (out.movements != before) rebuild = true;
    } else {
      counter_ = counter_ + jump - steps * iv;
    }
  }
  return out;
}

BulkOutcome SecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                            pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_ >= iv ? 1 : iv - counter_;
    const u64 chunk = std::min(count - out.writes_applied, until);
    out.total += bank.bulk_write(translate(la), data, chunk);
    out.writes_applied += chunk;
    counter_ += chunk;
    if (counter_ >= iv && !bank.has_failure()) {
      counter_ = 0;
      out.total += do_step(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
