#include "wl/security_refresh.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::wl {

void SecurityRefreshConfig::validate() const {
  check(is_pow2(lines), "SecurityRefreshConfig: lines must be a power of two");
  check(interval >= 1, "SecurityRefreshConfig: interval must be positive");
}

SecurityRefresh::SecurityRefresh(const SecurityRefreshConfig& cfg)
    : cfg_(cfg), region_(log2_floor(cfg.lines), Rng(cfg.seed)) {
  cfg_.validate();
}

Pa SecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  return Pa{region_.translate(la.value())};
}

Ns SecurityRefresh::do_step(pcm::PcmBank& bank, u64* movements) {
  const auto swap = region_.advance();
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  return bank.swap_lines(Pa{swap->a}, Pa{swap->b});
}

WriteOutcome SecurityRefresh::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_ >= effective_interval()) {
    counter_ = 0;
    u64 moved = 0;
    out.stall = do_step(bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void SecurityRefresh::validate_state() const {
  region_.validate();
  check_le(counter_, cfg_.interval, "SecurityRefresh: write counter overran ψ");
}

BulkOutcome SecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                            pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_ >= iv ? 1 : iv - counter_;
    const u64 chunk = std::min(count - out.writes_applied, until);
    out.total += bank.bulk_write(translate(la), data, chunk);
    out.writes_applied += chunk;
    counter_ += chunk;
    if (counter_ >= iv && !bank.has_failure()) {
      counter_ = 0;
      out.total += do_step(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
