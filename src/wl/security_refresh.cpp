#include "wl/security_refresh.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"

namespace srbsg::wl {

void SecurityRefreshConfig::validate() const {
  check(is_pow2(lines), "SecurityRefreshConfig: lines must be a power of two");
  check(interval >= 1, "SecurityRefreshConfig: interval must be positive");
}

SecurityRefresh::SecurityRefresh(const SecurityRefreshConfig& cfg)
    : cfg_(cfg), region_(log2_floor(cfg.lines), Rng(cfg.seed)) {
  cfg_.validate();
}

Pa SecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  return Pa{region_.translate(la.value())};
}

Ns SecurityRefresh::do_step(pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelInner, 0);
  }
  // A CRP wrap inside advance() re-draws key_c; the key value itself
  // stays out of the trace (it is the secret the attacks chase).
  const u64 key_before = region_.key_c();
  const auto swap = region_.advance();
  if (tel_ != nullptr && region_.key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, telemetry::kGlobalDomain, 0, 0);
  }
  // A skipped step (candidate already refreshed this round) triggers a
  // remap but moves nothing: RemapTriggered without GapMoved.
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, swap->a,
               swap->b);
  }
  return bank.swap_lines(Pa{swap->a}, Pa{swap->b});
}

WriteOutcome SecurityRefresh::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  WriteOutcome out;
  out.total = bank.write(translate(la), data);
  if (++counter_ >= effective_interval()) {
    counter_ = 0;
    u64 moved = 0;
    out.stall = do_step(bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void SecurityRefresh::validate_state() const {
  region_.validate();
  check_le(counter_, cfg_.interval, "SecurityRefresh: write counter overran ψ");
}

BulkOutcome SecurityRefresh::write_batch(std::span<const La> las, const pcm::LineData& data,
                                         pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        out.total += bank.write(Pa{region_.translate(la.value())}, data);
        ++out.writes_applied;
        if (++counter_ >= effective_interval()) {
          counter_ = 0;
          out.total += do_step(bank, &out.movements);
        }
      });
}

BulkOutcome SecurityRefresh::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                         u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "SecurityRefresh: address out of range");
  }
  const u64 period = pattern.size();
  if (period > batch::kPatternFallbackFactor * effective_interval()) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The single global counter advances on every write, so windows are
  // just the deficit; the CRP mapping only changes at real swaps.
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) fresh[i] = Pa{region_.translate(pattern[i].value())};
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    const u64 deficit = counter_ >= iv ? 1 : iv - counter_;
    u64 chunk = std::min(count - out.writes_applied, deficit);
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_);
    out.writes_applied += chunk;
    counter_ += chunk;
    phase = (phase + chunk) % period;
    if (counter_ >= iv) {
      counter_ = 0;
      const u64 before = out.movements;
      out.total += do_step(bank, &out.movements);
      if (out.movements != before) rebuild = true;  // skipped steps move nothing
    }
  }
  return out;
}

BulkOutcome SecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                            pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_ >= iv ? 1 : iv - counter_;
    const u64 chunk = std::min(count - out.writes_applied, until);
    out.total += bank.bulk_write(translate(la), data, chunk);
    out.writes_applied += chunk;
    counter_ += chunk;
    if (counter_ >= iv && !bank.has_failure()) {
      counter_ = 0;
      out.total += do_step(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
