#pragma once
// One-level Security Refresh covering the whole bank (paper §III.C).
// Every `interval` writes advance the CRP by one step.

#include <vector>

#include "common/check.hpp"
#include "wl/security_refresh_region.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

struct SecurityRefreshConfig {
  u64 lines{1u << 16};  ///< N, power of two
  u64 interval{100};    ///< ψ, writes between refresh steps
  u64 seed{1};

  void validate() const;
};

class SecurityRefresh final : public WearLeveler {
 public:
  explicit SecurityRefresh(const SecurityRefreshConfig& cfg);

  [[nodiscard]] std::string_view name() const override { return "sr1"; }
  [[nodiscard]] u64 logical_lines() const override { return cfg_.lines; }
  [[nodiscard]] u64 physical_lines() const override { return cfg_.lines; }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

  [[nodiscard]] const SecurityRefreshRegion& region() const { return region_; }

  void validate_state() const override;
  /// SR movements are swaps: two line writes each.
  [[nodiscard]] u32 writes_per_movement() const override { return 2; }

  void set_rate_boost(u32 log2_divisor) override {
    check_lt(log2_divisor, u32{64}, "set_rate_boost: boost shifts past the interval width");
    boost_ = log2_divisor;
  }
  [[nodiscard]] u64 effective_interval() const {
    const u64 iv = cfg_.interval >> boost_;
    return iv == 0 ? 1 : iv;
  }

 private:
  /// Performs one CRP step; returns the swap latency (0 when skipped).
  Ns do_step(pcm::PcmBank& bank, u64* movements);

  /// PR-4 windowed engine, continuing from pattern phase `phase0` for up
  /// to `count` more writes; accumulates into `out`. The epoch path calls
  /// this as its fallback tail.
  void write_cycle_windowed(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                            u64 phase0, pcm::PcmBank& bank, BulkOutcome& out);

  /// Epoch fast-forward engine (DESIGN.md §15): analytic jumps over whole
  /// refresh epochs, replaying only the CRP steps that touch a pattern
  /// slot or wrap the round.
  BulkOutcome write_cycle_epoch(std::span<const La> pattern, const pcm::LineData& data,
                                u64 count, pcm::PcmBank& bank);

  SecurityRefreshConfig cfg_;
  SecurityRefreshRegion region_;
  u64 counter_{0};
  u32 boost_{0};
};

}  // namespace srbsg::wl
