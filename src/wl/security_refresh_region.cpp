#include "wl/security_refresh_region.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::wl {

SecurityRefreshRegion::SecurityRefreshRegion(u32 width_bits, Rng rng)
    : width_(width_bits), mask_(low_mask(width_bits)), rng_(rng) {
  check(width_bits >= 1 && width_bits <= 40, "SecurityRefreshRegion: width out of range");
  // Boot state: everything is mapped with a single key; the first advance
  // starts the first real remapping round (paper Fig. 5(a)→(b)).
  kp_ = rng_.next() & mask_;
  kc_ = kp_;
  crp_ = lines();
}

bool SecurityRefreshRegion::refreshed(u64 la) const {
  // LA c is processed when the CRP passes min(c, pair(c)): the swap at the
  // smaller of the two remaps both.
  const u64 p = pair_of(la);
  return std::min(la, p) < crp_;
}

u64 SecurityRefreshRegion::translate(u64 la) const {
  check(la <= mask_, "SecurityRefreshRegion: address out of range");
  return la ^ (refreshed(la) ? kc_ : kp_);
}

void SecurityRefreshRegion::maybe_begin_round() {
  if (crp_ == lines()) {
    kp_ = kc_;
    kc_ = rng_.next() & mask_;
    crp_ = 0;
  }
}

std::optional<SecurityRefreshRegion::SwapSlots> SecurityRefreshRegion::advance() {
  maybe_begin_round();
  const u64 c = crp_;
  ++crp_;
  const u64 p = pair_of(c);
  if (p > c) {
    // Swapping slots c⊕kp and c⊕kc moves both c and its pair to their
    // new-round locations in one movement.
    return SwapSlots{c ^ kp_, c ^ kc_};
  }
  // p < c: already swapped when the CRP passed p. p == c: the round key
  // difference is zero — the identity round needs no data movement.
  return std::nullopt;
}

void SecurityRefreshRegion::validate() const {
  check_le(crp_, lines(), "SecurityRefreshRegion: CRP out of bounds");
  check_le(kp_, mask_, "SecurityRefreshRegion: previous key exceeds region mask");
  check_le(kc_, mask_, "SecurityRefreshRegion: current key exceeds region mask");
}

}  // namespace srbsg::wl
