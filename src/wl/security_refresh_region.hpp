#pragma once
// The Security Refresh primitive (Seong et al., ISCA'10; paper §III.C,
// Fig. 5): addresses in a 2^width region are remapped by XOR with a
// per-round random key. The Current Refresh Pointer (CRP) walks the
// region; remapping LA c swaps the physical slots c⊕key_p and c⊕key_c,
// which simultaneously remaps c's pair (c ⊕ key_c ⊕ key_p). When the CRP
// wraps, key_p ← key_c and a fresh key_c is drawn.
//
// Pure bookkeeping in region-local slot space; owners perform the swaps.

#include <optional>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace srbsg::wl {

class SecurityRefreshRegion {
 public:
  /// Region of 2^width_bits lines; keys are drawn from `rng`.
  SecurityRefreshRegion(u32 width_bits, Rng rng);

  [[nodiscard]] u64 lines() const { return u64{1} << width_; }
  [[nodiscard]] u64 crp() const { return crp_; }
  [[nodiscard]] u64 key_c() const { return kc_; }
  [[nodiscard]] u64 key_p() const { return kp_; }

  /// Pair address: remapping `la` also remaps pair_of(la) (§III.D).
  [[nodiscard]] u64 pair_of(u64 la) const { return la ^ kc_ ^ kp_; }

  /// Has `la` been remapped in the current round?
  [[nodiscard]] bool refreshed(u64 la) const;

  /// Current slot of `la` within the region.
  [[nodiscard]] u64 translate(u64 la) const;

  /// One refresh step (one CRP advance). Returns the pair of slots whose
  /// contents the owner must swap, or nullopt when the candidate was
  /// already remapped earlier in the round (CRP simply increments).
  struct SwapSlots {
    u64 a;
    u64 b;
  };
  std::optional<SwapSlots> advance();

  /// Epoch-engine aggregate: `steps` consecutive advance() calls folded
  /// into one sweep, invoking `fn(slot_a, slot_b)` for each step whose
  /// swap fires. Requires crp() + steps <= lines() — round rekeys consume
  /// RNG draws and must replay through advance(). Returns the number of
  /// swaps fired. Also requires crp() < lines() (a round is in progress);
  /// with steps == 0 this is a no-op.
  template <typename Fn>
  u64 advance_steps(u64 steps, Fn&& fn) {
    SRBSG_DCHECK(crp_ < lines() && steps <= lines() - crp_,
                 "SecurityRefreshRegion: aggregate sweep crosses a round boundary");
    if (kp_ == kc_) {
      // Identity round: no candidate fires, the CRP just walks forward.
      crp_ += steps;
      return 0;
    }
    // A swap fires at candidate c iff pair_of(c) > c, i.e. the top set bit
    // of kp^kc is clear in c (XOR with the key difference flips that bit).
    const u64 h = top_bit(kp_ ^ kc_);
    const u64 end = crp_ + steps;
    u64 fired = 0;
    for (u64 c = crp_; c < end; ++c) {
      if ((c & h) != 0) continue;
      fn(c ^ kp_, c ^ kc_);
      ++fired;
    }
    crp_ = end;
    return fired;
  }

  /// translate() as it will read once the CRP has advanced to `crp`
  /// within the *current* round (same keys). Lets the epoch engines
  /// resolve a slot at a future step of an aggregated sweep without
  /// mutating the region. `crp` in [crp(), lines()].
  [[nodiscard]] u64 translate_at(u64 la, u64 crp) const {
    const u64 p = la ^ kc_ ^ kp_;
    return la ^ ((p < la ? p : la) < crp ? kc_ : kp_);
  }

  /// First candidate >= crp() whose swap would touch slot `slot`, or
  /// lines() when no remaining step of this round touches it (its
  /// resident already swapped, or only the round wrap affects it).
  [[nodiscard]] u64 next_touch(u64 slot) const {
    if (kp_ == kc_) return lines();
    const u64 h = top_bit(kp_ ^ kc_);
    u64 best = lines();
    for (const u64 c : {slot ^ kp_, slot ^ kc_}) {
      if (c >= crp_ && (c & h) == 0 && c < best) best = c;
    }
    return best;
  }

  /// Register-bound invariants (CRP in [0, lines], keys within the region
  /// mask); throws CheckFailure on violation. Audit hook.
  void validate() const;

 private:
  void maybe_begin_round();

  u32 width_;
  u64 mask_;
  Rng rng_;
  u64 kp_;
  u64 kc_;
  u64 crp_;  ///< in [0, lines]; lines = round boundary
};

}  // namespace srbsg::wl
