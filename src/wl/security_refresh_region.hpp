#pragma once
// The Security Refresh primitive (Seong et al., ISCA'10; paper §III.C,
// Fig. 5): addresses in a 2^width region are remapped by XOR with a
// per-round random key. The Current Refresh Pointer (CRP) walks the
// region; remapping LA c swaps the physical slots c⊕key_p and c⊕key_c,
// which simultaneously remaps c's pair (c ⊕ key_c ⊕ key_p). When the CRP
// wraps, key_p ← key_c and a fresh key_c is drawn.
//
// Pure bookkeeping in region-local slot space; owners perform the swaps.

#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace srbsg::wl {

class SecurityRefreshRegion {
 public:
  /// Region of 2^width_bits lines; keys are drawn from `rng`.
  SecurityRefreshRegion(u32 width_bits, Rng rng);

  [[nodiscard]] u64 lines() const { return u64{1} << width_; }
  [[nodiscard]] u64 crp() const { return crp_; }
  [[nodiscard]] u64 key_c() const { return kc_; }
  [[nodiscard]] u64 key_p() const { return kp_; }

  /// Pair address: remapping `la` also remaps pair_of(la) (§III.D).
  [[nodiscard]] u64 pair_of(u64 la) const { return la ^ kc_ ^ kp_; }

  /// Has `la` been remapped in the current round?
  [[nodiscard]] bool refreshed(u64 la) const;

  /// Current slot of `la` within the region.
  [[nodiscard]] u64 translate(u64 la) const;

  /// One refresh step (one CRP advance). Returns the pair of slots whose
  /// contents the owner must swap, or nullopt when the candidate was
  /// already remapped earlier in the round (CRP simply increments).
  struct SwapSlots {
    u64 a;
    u64 b;
  };
  std::optional<SwapSlots> advance();

  /// Register-bound invariants (CRP in [0, lines], keys within the region
  /// mask); throws CheckFailure on violation. Audit hook.
  void validate() const;

 private:
  void maybe_begin_round();

  u32 width_;
  u64 mask_;
  Rng rng_;
  u64 kp_;
  u64 kc_;
  u64 crp_;  ///< in [0, lines]; lines = round boundary
};

}  // namespace srbsg::wl
