#include "wl/start_gap_region.hpp"

#include "common/check.hpp"

namespace srbsg::wl {

StartGapRegion::StartGapRegion(u64 lines) : lines_(lines), gap_(lines), start_(0) {
  check(lines >= 1, "StartGapRegion: need at least one line");
}

u64 StartGapRegion::translate(u64 ia) const {
  check(ia < lines_, "StartGapRegion: intermediate address out of range");
  // Qureshi's closed form: rotate by Start modulo the LINE count, then
  // skip over the gap slot.
  u64 pa = ia + start_;
  if (pa >= lines_) pa -= lines_;
  if (pa >= gap_) ++pa;
  return pa;
}

StartGapRegion::Movement StartGapRegion::advance() {
  if (gap_ == 0) {
    // Wrap: the line in the last slot moves into slot 0; one full rotation
    // completes, so Start advances.
    const Movement mv{lines_, 0};
    gap_ = lines_;
    start_ = start_ + 1 == lines_ ? 0 : start_ + 1;
    return mv;
  }
  const Movement mv{gap_ - 1, gap_};
  --gap_;
  return mv;
}

void StartGapRegion::retreat_gap(u64 steps) {
  check_le(steps, gap_, "StartGapRegion: aggregate retreat crosses the wrap");
  gap_ -= steps;
}

void StartGapRegion::validate() const {
  check_le(gap_, lines_, "StartGapRegion: Gap register out of bounds");
  check_lt(start_, lines_, "StartGapRegion: Start register out of bounds");
}

}  // namespace srbsg::wl
