#pragma once
// The Start-Gap rotation primitive (Qureshi et al., MICRO'09; paper §III.A,
// Fig. 2): M lines live in M+1 slots; a Gap register points at the empty
// slot and a Start register tracks completed rotations. Every gap movement
// copies slot[Gap-1] into slot[Gap] and decrements Gap; after M+1
// movements every line has shifted by one slot.
//
// This class is pure bookkeeping in "slot space" [0, M]; owners add their
// region base and perform the actual data copies.

#include "common/types.hpp"

namespace srbsg::wl {

class StartGapRegion {
 public:
  /// `lines` = M (data lines); the region occupies M+1 physical slots.
  explicit StartGapRegion(u64 lines);

  [[nodiscard]] u64 lines() const { return lines_; }
  [[nodiscard]] u64 slots() const { return lines_ + 1; }
  [[nodiscard]] u64 gap() const { return gap_; }
  [[nodiscard]] u64 start() const { return start_; }

  /// Slot currently holding intermediate address `ia` (ia in [0, M)).
  [[nodiscard]] u64 translate(u64 ia) const;

  /// One gap movement. Returns {from, to}: the owner must copy the data
  /// of slot `from` into slot `to`.
  struct Movement {
    u64 from;
    u64 to;
  };
  Movement advance();

  /// Epoch-engine aggregate: `steps` consecutive advance() calls folded
  /// into one register update. Requires steps <= gap() — the wrap redraws
  /// Start and must replay through advance(). The owner applies the
  /// folded data effect: slots [gap-steps+1, gap] wear by one, and only
  /// slot gap changes content (it receives slot gap-1's line).
  void retreat_gap(u64 steps);

  /// Register-bound invariants (Gap in [0, M], Start in [0, M)); throws
  /// CheckFailure on violation. Audit hook, not a fast-path check.
  void validate() const;

 private:
  u64 lines_;
  u64 gap_;    ///< empty slot, in [0, M]
  u64 start_;  ///< rotation offset, in [0, M)
};

}  // namespace srbsg::wl
