#include "wl/table_wl.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"

namespace srbsg::wl {

void TableWlConfig::validate() const {
  check(lines >= 2, "TableWlConfig: need at least two lines");
  check(interval >= 1, "TableWlConfig: interval must be positive");
}

TableWearLeveling::TableWearLeveling(const TableWlConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  la_to_pa_.resize(cfg_.lines);
  pa_to_la_.resize(cfg_.lines);
  for (u64 i = 0; i < cfg_.lines; ++i) {
    la_to_pa_[i] = i;
    pa_to_la_[i] = i;
  }
  residual_.assign(cfg_.lines, 0);
  total_.assign(cfg_.lines, 0);
}

Pa TableWearLeveling::translate(La la) const {
  check(la.value() < cfg_.lines, "TableWearLeveling: address out of range");
  return Pa{la_to_pa_[la.value()]};
}

TableWearLeveling::SwapPrediction TableWearLeveling::predict_next_swap() const {
  u64 hot = 0, cold = 0;
  for (u64 pa = 1; pa < cfg_.lines; ++pa) {
    if (residual_[pa] > residual_[hot]) hot = pa;
    if (total_[pa] < total_[cold]) cold = pa;
  }
  return {hot, cold};
}

Ns TableWearLeveling::do_swap(pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelInner, 0);
  }
  const auto pred = predict_next_swap();
  if (pred.hot_pa == pred.cold_pa) return Ns{0};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, pred.hot_pa,
               pred.cold_pa);
  }
  const u64 la_hot = pa_to_la_[pred.hot_pa];
  const u64 la_cold = pa_to_la_[pred.cold_pa];
  const Ns lat = bank.swap_lines(Pa{pred.hot_pa}, Pa{pred.cold_pa});
  std::swap(la_to_pa_[la_hot], la_to_pa_[la_cold]);
  std::swap(pa_to_la_[pred.hot_pa], pa_to_la_[pred.cold_pa]);
  residual_[pred.hot_pa] = 0;
  residual_[pred.cold_pa] = 0;
  ++total_[pred.hot_pa];  // the swap itself writes both lines
  ++total_[pred.cold_pa];
  if (movements) ++*movements;
  return lat;
}

WriteOutcome TableWearLeveling::write(La la, const pcm::LineData& data, pcm::PcmBank& bank) {
  WriteOutcome out;
  const Pa pa = translate(la);
  out.total = bank.write(pa, data);
  ++residual_[pa.value()];
  ++total_[pa.value()];
  if (++counter_ >= effective_interval()) {
    counter_ = 0;
    u64 moved = 0;
    out.stall = do_swap(bank, &moved);
    out.movements = checked_narrow<u32>(moved);
    out.total += out.stall;
  }
  return out;
}

void TableWearLeveling::validate_state() const {
  check_le(counter_, cfg_.interval, "TableWearLeveling: write counter overran ψ");
  for (u64 la = 0; la < cfg_.lines; ++la) {
    const u64 pa = la_to_pa_[la];
    check_lt(pa, cfg_.lines, "TableWearLeveling: LA→PA entry out of range");
    check_eq(pa_to_la_[pa], la, "TableWearLeveling: LA→PA and PA→LA tables diverged");
  }
  for (u64 pa = 0; pa < cfg_.lines; ++pa) {
    check_le(residual_[pa], total_[pa],
             "TableWearLeveling: residual wear exceeds lifetime wear");
  }
}

BulkOutcome TableWearLeveling::write_batch(std::span<const La> las, const pcm::LineData& data,
                                           pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "TableWearLeveling: address out of range");
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const Pa pa{la_to_pa_[la.value()]};
        out.total += bank.write(pa, data);
        ++out.writes_applied;
        ++residual_[pa.value()];
        ++total_[pa.value()];
        if (++counter_ >= effective_interval()) {
          counter_ = 0;
          out.total += do_swap(bank, &out.movements);
        }
      });
}

BulkOutcome TableWearLeveling::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                           u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "TableWearLeveling: address out of range");
  }
  const u64 period = pattern.size();
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  if (period > batch::kPatternFallbackFactor * effective_interval()) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) fresh[i] = Pa{la_to_pa_[pattern[i].value()]};
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv = effective_interval();
    const u64 deficit = counter_ >= iv ? 1 : iv - counter_;
    u64 chunk = std::min(count - out.writes_applied, deficit);
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    // Applied inline (not batch::apply_chunk) because the scheme's own
    // wear book-keeping advances with the data writes.
    if (tel_ != nullptr && chunk > 0) {
      tel_->emit(telemetry::EventType::kBatchChunkApplied, tel_id_, telemetry::kGlobalDomain,
                 phase, chunk);
    }
    for (auto& ls : lines) {
      const u64 h = ls.hits.hits_in(phase, chunk);
      if (h == 0) continue;
      out.total += bank.bulk_write(ls.pa, data, h);
      residual_[ls.pa.value()] += h;
      total_[ls.pa.value()] += h;
      ls.remaining = ls.remaining > h ? ls.remaining - h : 0;
    }
    out.writes_applied += chunk;
    counter_ += chunk;
    phase = (phase + chunk) % period;
    if (counter_ >= iv) {
      counter_ = 0;
      const u64 before = out.movements;
      out.total += do_swap(bank, &out.movements);
      if (out.movements != before) rebuild = true;  // hot==cold swaps nothing
    }
  }
  return out;
}

BulkOutcome TableWearLeveling::write_repeated(La la, const pcm::LineData& data, u64 count,
                                              pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    const u64 iv = effective_interval();
    const u64 until = counter_ >= iv ? 1 : iv - counter_;
    const u64 chunk = std::min(count - out.writes_applied, until);
    const Pa pa = translate(la);
    out.total += bank.bulk_write(pa, data, chunk);
    residual_[pa.value()] += chunk;
    total_[pa.value()] += chunk;
    out.writes_applied += chunk;
    counter_ += chunk;
    if (counter_ >= iv && !bank.has_failure()) {
      counter_ = 0;
      out.total += do_swap(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
