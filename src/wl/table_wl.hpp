#pragma once
// Table-based wear leveling (§II.A background family, e.g. Zhou et al.
// ISCA'09): an indirection table maps every LA to a PA and a per-line
// write counter drives periodic hot↔cold swaps. The paper dismisses the
// family for two reasons this implementation makes measurable:
//   * cost — a full map plus counters (N·B bits of table state vs a few
//     registers for algebraic schemes), and a swap that needs two line
//     writes;
//   * security — the remapping is *deterministic* given the write
//     counts, so an attacker who knows the algorithm can predict exactly
//     where a hot line goes (no key material at all).
//
// Mechanism (Zhou et al. style): every `interval` writes, the hottest
// line (by residual wear since its last swap) is swapped with the
// coldest line (by total lifetime wear); residuals reset at the swap.

#include <vector>

#include "common/check.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

struct TableWlConfig {
  u64 lines{1u << 16};
  u64 interval{100};  ///< writes between hot/cold swaps
  void validate() const;
};

class TableWearLeveling final : public WearLeveler {
 public:
  explicit TableWearLeveling(const TableWlConfig& cfg);

  [[nodiscard]] std::string_view name() const override { return "table"; }
  [[nodiscard]] u64 logical_lines() const override { return cfg_.lines; }
  [[nodiscard]] u64 physical_lines() const override { return cfg_.lines; }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

  /// The LA→PA and PA→LA tables must stay mutually inverse permutations;
  /// per-line residual counters can never exceed lifetime totals.
  void validate_state() const override;
  /// Table WL movements are hot/cold swaps: two line writes each.
  [[nodiscard]] u32 writes_per_movement() const override { return 2; }

  void set_rate_boost(u32 log2_divisor) override {
    check_lt(log2_divisor, u32{64}, "set_rate_boost: boost shifts past the interval width");
    boost_ = log2_divisor;
  }
  [[nodiscard]] u64 effective_interval() const {
    const u64 iv = cfg_.interval >> boost_;
    return iv == 0 ? 1 : iv;
  }

  /// The determinism the paper criticizes: given the same write sequence,
  /// the next swap pair is fully predictable (exposed for the tests that
  /// demonstrate the weakness).
  struct SwapPrediction {
    u64 hot_pa;
    u64 cold_pa;
  };
  [[nodiscard]] SwapPrediction predict_next_swap() const;

 private:
  Ns do_swap(pcm::PcmBank& bank, u64* movements);

  TableWlConfig cfg_;
  std::vector<u64> la_to_pa_;
  std::vector<u64> pa_to_la_;
  std::vector<u64> residual_;  ///< writes since the line's last swap (by PA)
  std::vector<u64> total_;     ///< lifetime writes per PA (scheme's own view)
  u64 counter_{0};
  u32 boost_{0};
};

}  // namespace srbsg::wl
