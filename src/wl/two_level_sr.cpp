#include "wl/two_level_sr.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace srbsg::wl {

void TwoLevelSrConfig::validate() const {
  check(is_pow2(lines), "TwoLevelSrConfig: lines must be a power of two");
  check(is_pow2(sub_regions) && sub_regions >= 1 && sub_regions < lines,
        "TwoLevelSrConfig: sub_regions must be a power of two smaller than lines");
  check(inner_interval >= 1 && outer_interval >= 1, "TwoLevelSrConfig: bad intervals");
}

TwoLevelSecurityRefresh::TwoLevelSecurityRefresh(const TwoLevelSrConfig& cfg)
    : cfg_(cfg),
      region_bits_(log2_floor(cfg.region_lines())),
      outer_(log2_floor(cfg.lines), Rng(cfg.seed)) {
  cfg_.validate();
  Rng seeder(cfg.seed ^ 0x517ac0deULL);
  inner_.reserve(cfg_.sub_regions);
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_.emplace_back(region_bits_, seeder.fork());
  }
  inner_counter_.assign(cfg_.sub_regions, 0);
}

Pa TwoLevelSecurityRefresh::ia_to_pa(u64 ia) const {
  const u64 q = ia >> region_bits_;
  const u64 off = ia & low_mask(region_bits_);
  return Pa{(q << region_bits_) | inner_[q].translate(off)};
}

Pa TwoLevelSecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  return ia_to_pa(outer_.translate(la.value()));
}

Ns TwoLevelSecurityRefresh::do_inner_step(u64 q, pcm::PcmBank& bank, u64* movements) {
  const auto swap = inner_[q].advance();
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const u64 base = q << region_bits_;
  return bank.swap_lines(Pa{base | swap->a}, Pa{base | swap->b});
}

Ns TwoLevelSecurityRefresh::do_outer_step(pcm::PcmBank& bank, u64* movements) {
  // The outer level swaps two *intermediate* lines; where they physically
  // live right now is decided by the inner mappings of their sub-regions.
  const auto swap = outer_.advance();
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  return bank.swap_lines(ia_to_pa(swap->a), ia_to_pa(swap->b));
}

WriteOutcome TwoLevelSecurityRefresh::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  const u64 ia = outer_.translate(la.value());
  const u64 q = ia >> region_bits_;
  WriteOutcome out;
  out.total = bank.write(ia_to_pa(ia), data);
  u64 moved = 0;
  Ns stall{0};
  if (++inner_counter_[q] >= effective_inner_interval()) {
    inner_counter_[q] = 0;
    stall += do_inner_step(q, bank, &moved);
  }
  if (++outer_counter_ >= effective_outer_interval()) {
    outer_counter_ = 0;
    stall += do_outer_step(bank, &moved);
  }
  out.stall = stall;
  out.movements = checked_narrow<u32>(moved);
  out.total += stall;
  return out;
}

void TwoLevelSecurityRefresh::validate_state() const {
  outer_.validate();
  check_le(outer_counter_, cfg_.outer_interval,
           "TwoLevelSecurityRefresh: outer write counter overran ψ_out");
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_[q].validate();
    check_le(inner_counter_[q], cfg_.inner_interval,
             "TwoLevelSecurityRefresh: inner write counter overran ψ_in");
  }
}

BulkOutcome TwoLevelSecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                                    pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    // The IA (and thus sub-region) of `la` can change at any outer step,
    // so recompute per chunk; chunks end at the nearest trigger.
    const u64 ia = outer_.translate(la.value());
    const u64 q = ia >> region_bits_;
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_inner = inner_counter_[q] >= iv_in ? 1 : iv_in - inner_counter_[q];
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    const u64 chunk =
        std::min({count - out.writes_applied, until_inner, until_outer});
    out.total += bank.bulk_write(ia_to_pa(ia), data, chunk);
    out.writes_applied += chunk;
    inner_counter_[q] += chunk;
    outer_counter_ += chunk;
    if (bank.has_failure()) break;
    if (inner_counter_[q] >= iv_in) {
      inner_counter_[q] = 0;
      out.total += do_inner_step(q, bank, &out.movements);
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_step(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
