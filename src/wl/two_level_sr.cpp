#include "wl/two_level_sr.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"
#include "wl/epoch.hpp"

namespace srbsg::wl {

void TwoLevelSrConfig::validate() const {
  check(is_pow2(lines), "TwoLevelSrConfig: lines must be a power of two");
  check(is_pow2(sub_regions) && sub_regions >= 1 && sub_regions < lines,
        "TwoLevelSrConfig: sub_regions must be a power of two smaller than lines");
  check(inner_interval >= 1 && outer_interval >= 1, "TwoLevelSrConfig: bad intervals");
}

TwoLevelSecurityRefresh::TwoLevelSecurityRefresh(const TwoLevelSrConfig& cfg)
    : cfg_(cfg),
      region_bits_(log2_floor(cfg.region_lines())),
      outer_(log2_floor(cfg.lines), Rng(cfg.seed)) {
  cfg_.validate();
  Rng seeder(cfg.seed ^ 0x517ac0deULL);
  inner_.reserve(cfg_.sub_regions);
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_.emplace_back(region_bits_, seeder.fork());
  }
  inner_counter_.assign(cfg_.sub_regions, 0);
}

Pa TwoLevelSecurityRefresh::ia_to_pa(u64 ia) const {
  const u64 q = ia >> region_bits_;
  const u64 off = ia & low_mask(region_bits_);
  return Pa{(q << region_bits_) | inner_[q].translate(off)};
}

Pa TwoLevelSecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  return ia_to_pa(outer_.translate(la.value()));
}

Ns TwoLevelSecurityRefresh::do_inner_step(u64 q, pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const u64 key_before = inner_[q].key_c();
  const auto swap = inner_[q].advance();
  if (tel_ != nullptr && inner_[q].key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, checked_narrow<u32>(q), 0, 0);
  }
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const u64 base = q << region_bits_;
  const Pa pa{base | swap->a};
  const Pa pb{base | swap->b};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), pa.value(),
               pb.value());
  }
  return bank.swap_lines(pa, pb);
}

Ns TwoLevelSecurityRefresh::do_outer_step(pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelOuter, 0);
  }
  const u64 key_before = outer_.key_c();
  // The outer level swaps two *intermediate* lines; where they physically
  // live right now is decided by the inner mappings of their sub-regions.
  const auto swap = outer_.advance();
  if (tel_ != nullptr && outer_.key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, telemetry::kGlobalDomain, 0, 0);
  }
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const Pa pa = ia_to_pa(swap->a);
  const Pa pb = ia_to_pa(swap->b);
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, pa.value(),
               pb.value());
  }
  return bank.swap_lines(pa, pb);
}

WriteOutcome TwoLevelSecurityRefresh::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  const u64 ia = outer_.translate(la.value());
  const u64 q = ia >> region_bits_;
  WriteOutcome out;
  out.total = bank.write(ia_to_pa(ia), data);
  u64 moved = 0;
  Ns stall{0};
  if (++inner_counter_[q] >= effective_inner_interval()) {
    inner_counter_[q] = 0;
    stall += do_inner_step(q, bank, &moved);
  }
  if (++outer_counter_ >= effective_outer_interval()) {
    outer_counter_ = 0;
    stall += do_outer_step(bank, &moved);
  }
  out.stall = stall;
  out.movements = checked_narrow<u32>(moved);
  out.total += stall;
  return out;
}

void TwoLevelSecurityRefresh::validate_state() const {
  outer_.validate();
  check_le(outer_counter_, cfg_.outer_interval,
           "TwoLevelSecurityRefresh: outer write counter overran ψ_out");
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_[q].validate();
    check_le(inner_counter_[q], cfg_.inner_interval,
             "TwoLevelSecurityRefresh: inner write counter overran ψ_in");
  }
}

BulkOutcome TwoLevelSecurityRefresh::write_batch(std::span<const La> las,
                                                 const pcm::LineData& data, pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const u64 ia = outer_.translate(la.value());
        const u64 q = ia >> region_bits_;
        out.total += bank.write(ia_to_pa(ia), data);
        ++out.writes_applied;
        if (++inner_counter_[q] >= effective_inner_interval()) {
          inner_counter_[q] = 0;
          out.total += do_inner_step(q, bank, &out.movements);
        }
        if (++outer_counter_ >= effective_outer_interval()) {
          outer_counter_ = 0;
          out.total += do_outer_step(bank, &out.movements);
        }
      });
}

BulkOutcome TwoLevelSecurityRefresh::write_cycle(std::span<const La> pattern,
                                                 const pcm::LineData& data, u64 count,
                                                 pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  }
  const u64 period = pattern.size();
  if (engine_tier() == EngineTier::kReference) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  const u64 min_iv = std::min(effective_inner_interval(), effective_outer_interval());
  if (period > batch::kPatternFallbackFactor * min_iv) {
    if (engine_tier() == EngineTier::kEpoch) {
      epoch::span_fallback_begin(tel_, tel_id_, 0,
                                 telemetry::FallbackReason::kNonPeriodicPattern);
      const BulkOutcome ref = WearLeveler::write_cycle(pattern, data, count, bank);
      epoch::span_fallback_end(tel_, tel_id_, ref.total.value(),
                               telemetry::FallbackReason::kNonPeriodicPattern);
      return ref;
    }
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // The epoch engine opens with an O(physical lines) uniform-content
  // scan per call; bursts too short to amortize it (BPA's 256-write
  // probes) take the windowed engine instead — same outcomes, no scan.
  if (engine_tier() == EngineTier::kEpoch && count >= physical_lines()) {
    return write_cycle_epoch(pattern, data, count, bank);
  }
  write_cycle_windowed(pattern, data, count, 0, bank, out);
  return out;
}

void TwoLevelSecurityRefresh::write_cycle_windowed(std::span<const La> pattern,
                                                   const pcm::LineData& data, u64 count,
                                                   u64 phase0, pcm::PcmBank& bank,
                                                   BulkOutcome& out) {
  const u64 period = pattern.size();
  // Outer swaps re-shard the pattern across sub-regions, so domain keys
  // are revalidated together with the line schedules.
  std::vector<u64> keys;
  std::vector<u64> keys_fresh;
  std::vector<Pa> pas;
  std::vector<Pa> pas_fresh;
  std::vector<batch::DomainSched> doms;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = phase0;
  u64 applied = 0;
  while (applied < count && !bank.has_failure()) {
    if (rebuild) {
      keys_fresh.resize(period);
      pas_fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 ia = outer_.translate(pattern[i].value());
        keys_fresh[i] = ia >> region_bits_;
        pas_fresh[i] = ia_to_pa(ia);
      }
      if (batch::adopt_if_changed(keys, keys_fresh)) {
        batch::build_domain_scheds(keys, doms);
      }
      if (batch::adopt_if_changed(pas, pas_fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    u64 chunk = std::min(count - applied, until_outer);
    for (const auto& d : doms) {
      const u64 deficit =
          inner_counter_[d.key] >= iv_in ? 1 : iv_in - inner_counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_,
                                    out.total.value());
    applied += chunk;
    const u64 chunk_phase = phase;
    for (const auto& d : doms) inner_counter_[d.key] += d.hits.hits_in(phase, chunk);
    outer_counter_ += chunk;
    phase = (phase + chunk) % period;
    // Fire in write()'s order: the (single) inner region that reached
    // ψ_in *through a write in this chunk*, then the outer step — even
    // when the chunk's last write recorded the failure. A region whose
    // counter already sits past a shrunken ψ_in (detector boost raised
    // mid-stream) but that received no write here must wait for its next
    // write, like the per-write path.
    for (const auto& d : doms) {
      if (inner_counter_[d.key] >= iv_in && d.hits.hits_in(chunk_phase, chunk) > 0) {
        inner_counter_[d.key] = 0;
        const u64 before = out.movements;
        out.total += do_inner_step(d.key, bank, &out.movements);
        if (out.movements != before) rebuild = true;
      }
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      const u64 before = out.movements;
      out.total += do_outer_step(bank, &out.movements);
      if (out.movements != before) rebuild = true;
    }
  }
  out.writes_applied += applied;
}

BulkOutcome TwoLevelSecurityRefresh::write_cycle_epoch(std::span<const La> pattern,
                                                       const pcm::LineData& data, u64 count,
                                                       pcm::PcmBank& bank) {
  BulkOutcome out;
  const u64 period = pattern.size();
  const u64 rl = cfg_.region_lines();
  const u64 omask = low_mask(region_bits_);

  // Pattern mapping + schedules, rebuilt after every replayed trigger.
  // Outer swaps re-shard, so IAs/keys/domains recompute alongside PAs.
  std::vector<u64> ias(period);
  std::vector<u64> keys(period);
  std::vector<batch::DomainSched> doms;
  std::vector<Pa> pas;
  std::vector<Pa> fresh;
  std::vector<batch::LineSched> lines;
  std::vector<u64> slots;
  std::vector<u64> next_slots;
  bool rebuild = true;
  u64 phase = 0;

  epoch::HeadroomBudget budget;
  pcm::LineData uniform{};
  bool scanned = false;

  const auto windowed_tail = [&](telemetry::FallbackReason reason) {
    epoch::span_fallback_begin(tel_, tel_id_, out.total.value(), reason);
    write_cycle_windowed(pattern, data, count - out.writes_applied, phase, bank, out);
    epoch::span_fallback_end(tel_, tel_id_, out.total.value(), reason);
  };

  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      for (u64 i = 0; i < period; ++i) {
        ias[i] = outer_.translate(pattern[i].value());
        keys[i] = ias[i] >> region_bits_;
      }
      batch::build_domain_scheds(keys, doms);
      fresh.resize(period);
      for (u64 i = 0; i < period; ++i) fresh[i] = ia_to_pa(ias[i]);
      if (batch::adopt_if_changed(pas, fresh)) {
        batch::build_line_scheds(pas, bank, lines);
        next_slots.clear();
        for (const auto& ls : lines) next_slots.push_back(ls.pa.value());
        std::sort(next_slots.begin(), next_slots.end());
        // A slot leaving the pattern set re-joins the movement set
        // carrying pattern-scale wear; fold its headroom into the budget.
        if (scanned) {
          for (const u64 s : slots) {
            if (std::binary_search(next_slots.begin(), next_slots.end(), s)) continue;
            const u64 limit = bank.line_endurance(Pa{s});
            const u64 w = bank.wear(Pa{s});
            const u64 h = limit > w ? limit - w : 0;
            if (h < budget.remaining()) budget.seed(h);
          }
        }
        slots.swap(next_slots);
      }
      rebuild = false;
    }
    if (!scanned) {
      const epoch::ScanResult scan = epoch::scan_uniform(bank, cfg_.lines, slots);
      if (!scan.uniform) {
        windowed_tail(telemetry::FallbackReason::kNonUniformContent);
        return out;
      }
      uniform = scan.content;
      budget.seed(scan.min_headroom);
      epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                             count - out.writes_applied, telemetry::FallbackReason::kNone);
      scanned = true;
    }
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    bool overrun = outer_counter_ >= iv_out;  // interval shrank below a carried counter
    for (const auto& d : doms) overrun = overrun || inner_counter_[d.key] >= iv_in;
    if (overrun) {
      windowed_tail(telemetry::FallbackReason::kPsiChange);
      return out;
    }
    const u64 remaining = count - out.writes_applied;

    // Next replayed trigger, as a 1-based write index. Outer level: the
    // round wrap (rekey) or a swap whose endpoint is a pattern IA; the
    // n-th outer trigger lands on every iv_out-th write.
    u64 b_out = batch::kUnbounded;
    {
      const u64 ocrp = outer_.crp();
      u64 js = 0;  // CRP steps until the special one; 0 at boot/wrap (rekey)
      if (ocrp < outer_.lines()) {
        js = outer_.lines() - ocrp;
        for (u64 i = 0; i < period; ++i) {
          const u64 t = outer_.next_touch(ias[i]);
          if (t < outer_.lines()) js = std::min(js, t - ocrp);
        }
      }
      b_out = (iv_out - outer_counter_) + js * iv_out;
    }
    // Inner level, per pattern-active sub-region (inactive regions take
    // no writes, so their inner state is frozen for the whole call).
    u64 b_in = batch::kUnbounded;
    for (const auto& d : doms) {
      const auto& reg = inner_[d.key];
      const u64 icrp = reg.crp();
      u64 js = 0;
      if (icrp < rl) {
        js = rl - icrp;
        for (u64 i = 0; i < period; ++i) {
          if (keys[i] != d.key) continue;
          // next_touch wants the *physical* slot the pattern line sits in.
          const u64 t = reg.next_touch(pas[i].value() & omask);
          if (t < rl) js = std::min(js, t - icrp);
        }
      }
      const u64 at = d.hits.until_nth(phase, (iv_in - inner_counter_[d.key]) + js * iv_in);
      b_in = std::min(b_in, at);
    }
    const u64 boundary = std::min(b_out, b_in);
    const bool replay = boundary <= remaining;
    // The jump covers the boundary write itself (triggers fire after the
    // write, under the pre-trigger mapping); only the special trigger(s)
    // replay live.
    const u64 jump = std::min(remaining, boundary);

    // Endurance cap over the pattern lines → windowed tail (exact).
    u64 lfail = batch::kUnbounded;
    for (const auto& ls : lines) {
      lfail = std::min(lfail, ls.hits.until_nth(phase, ls.remaining));
    }
    if (lfail <= jump) {
      windowed_tail(telemetry::FallbackReason::kNearFailure);
      return out;
    }
    // Movement-slot wear: one jump stays inside one outer round and one
    // Movement-slot wear per jump: aggregated sweeps stay inside one round
    // per level, where fired swaps touch each slot exactly once — at most
    // one inner endpoint plus (a PA's resident IA changing at most once
    // mid-jump) two outer endpoints. The replayed boundary step(s) can
    // open a *new* round at either level and re-touch an already-swept
    // slot, adding one checked wear each. Five budget units cover it all.
    if (!budget.spend(5)) {
      const epoch::ScanResult scan = epoch::scan_uniform(bank, cfg_.lines, slots);
      if (!scan.uniform || !(budget.seed(scan.min_headroom), budget.spend(5))) {
        // genuinely near a movement-slot failure
        windowed_tail(telemetry::FallbackReason::kNearFailure);
        return out;
      }
      uniform = scan.content;
      epoch::emit_projection(tel_, tel_id_, telemetry::kGlobalDomain, out.total.value(),
                             count - out.writes_applied, telemetry::FallbackReason::kNone);
    }

    const u64 jump_t0 = out.total.value();
    // Pattern wear/data: one failure-checked bulk write per distinct PA.
    for (auto& ls : lines) {
      const u64 h = ls.hits.hits_in(phase, jump);
      if (h == 0) continue;
      out.total += bank.bulk_write(ls.pa, data, h);
      ls.remaining -= h;
    }

    // When replaying, *every* trigger due at the boundary write fires
    // live (not just the special one): aggregated sweeps then stay
    // strictly before the boundary, where no pattern slot moves — so
    // their unchecked endpoint wear provably lands on budgeted movement
    // slots only, in reference order.
    const u64 oc0 = outer_counter_;
    bool outer_live = false;
    bool inner_live = false;
    u64 q_b = 0;
    if (replay) {
      outer_live = (oc0 + boundary) % iv_out == 0;
      q_b = keys[(phase + boundary - 1) % period];
      for (const auto& d : doms) {
        if (d.key != q_b) continue;
        inner_live = (inner_counter_[d.key] + d.hits.hits_in(phase, boundary)) % iv_in == 0;
        break;
      }
    }
    u64 agg_steps = 0;
    u64 fired = 0;
    const std::span<u64> wear = bank.wear_mut();

    // Aggregated outer sweep. Endpoints resolve through each sub-region's
    // inner map *as of that trigger's write*: frozen regions read live,
    // active regions read analytically (keys are round-stable inside the
    // jump; only their CRP advances, at one step per ψ_in hits).
    u64 n_out = (oc0 + jump) / iv_out - (outer_live ? 1 : 0);
    if (n_out > 0) {
      const u64 kp = outer_.key_p();
      const u64 ocrp0 = outer_.crp();
      const auto endpoint_pa = [&](u64 ia, u64 w) {
        const u64 q = ia >> region_bits_;
        const u64 off = ia & omask;
        for (const auto& d : doms) {
          if (d.key != q) continue;
          const u64 steps =
              (inner_counter_[d.key] + d.hits.hits_in(phase, w)) / iv_in;
          return (q << region_bits_) | inner_[q].translate_at(off, inner_[q].crp() + steps);
        }
        return (q << region_bits_) | inner_[q].translate(off);
      };
      fired += outer_.advance_steps(n_out, [&](u64 a, u64 b) {
        // Trigger index from the candidate (a = c ^ key_p), then the
        // write it lands on.
        const u64 w = (iv_out - oc0) + ((a ^ kp) - ocrp0) * iv_out;
        ++wear[endpoint_pa(a, w)];
        ++wear[endpoint_pa(b, w)];
      });
      agg_steps += n_out;
    }
    // Aggregated inner sweeps (endpoints stay inside the region).
    for (const auto& d : doms) {
      const u64 h = d.hits.hits_in(phase, jump);
      const u64 c = inner_counter_[d.key] + h;
      u64 n_in = c / iv_in;
      if (inner_live && d.key == q_b) --n_in;
      if (n_in > 0) {
        const u64 base = d.key << region_bits_;
        fired += inner_[d.key].advance_steps(
            n_in, [&](u64 a, u64 b) { ++wear[base | a], ++wear[base | b]; });
        agg_steps += n_in;
      }
      inner_counter_[d.key] = c % iv_in;
    }
    if (fired > 0) {
      bank.note_writes_unchecked(2 * fired);
      out.total += pcm::swap_latency(bank.config(), uniform.cls, uniform.cls) * fired;
      out.movements += fired;
    }
    outer_counter_ = (oc0 + jump) % iv_out;
    out.writes_applied += jump;
    phase = (phase + jump) % period;
    epoch::emit_jump(tel_, tel_id_, telemetry::kGlobalDomain, jump,
                     agg_steps + (inner_live ? 1 : 0) + (outer_live ? 1 : 0), jump_t0,
                     out.total.value());

    // Replay the special trigger(s) exactly, in write()'s order. Both
    // counters already read 0 here when due (the mod above).
    if (replay) {
      u64 moved = 0;
      Ns stall{0};
      if (inner_live) stall += do_inner_step(q_b, bank, &moved);
      if (outer_live) stall += do_outer_step(bank, &moved);
      out.total += stall;
      out.movements += moved;
      rebuild = true;
    }
  }
  return out;
}

BulkOutcome TwoLevelSecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                                    pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    // The IA (and thus sub-region) of `la` can change at any outer step,
    // so recompute per chunk; chunks end at the nearest trigger.
    const u64 ia = outer_.translate(la.value());
    const u64 q = ia >> region_bits_;
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_inner = inner_counter_[q] >= iv_in ? 1 : iv_in - inner_counter_[q];
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    const u64 chunk =
        std::min({count - out.writes_applied, until_inner, until_outer});
    out.total += bank.bulk_write(ia_to_pa(ia), data, chunk);
    out.writes_applied += chunk;
    inner_counter_[q] += chunk;
    outer_counter_ += chunk;
    if (bank.has_failure()) break;
    if (inner_counter_[q] >= iv_in) {
      inner_counter_[q] = 0;
      out.total += do_inner_step(q, bank, &out.movements);
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_step(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
