#include "wl/two_level_sr.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/batch.hpp"

namespace srbsg::wl {

void TwoLevelSrConfig::validate() const {
  check(is_pow2(lines), "TwoLevelSrConfig: lines must be a power of two");
  check(is_pow2(sub_regions) && sub_regions >= 1 && sub_regions < lines,
        "TwoLevelSrConfig: sub_regions must be a power of two smaller than lines");
  check(inner_interval >= 1 && outer_interval >= 1, "TwoLevelSrConfig: bad intervals");
}

TwoLevelSecurityRefresh::TwoLevelSecurityRefresh(const TwoLevelSrConfig& cfg)
    : cfg_(cfg),
      region_bits_(log2_floor(cfg.region_lines())),
      outer_(log2_floor(cfg.lines), Rng(cfg.seed)) {
  cfg_.validate();
  Rng seeder(cfg.seed ^ 0x517ac0deULL);
  inner_.reserve(cfg_.sub_regions);
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_.emplace_back(region_bits_, seeder.fork());
  }
  inner_counter_.assign(cfg_.sub_regions, 0);
}

Pa TwoLevelSecurityRefresh::ia_to_pa(u64 ia) const {
  const u64 q = ia >> region_bits_;
  const u64 off = ia & low_mask(region_bits_);
  return Pa{(q << region_bits_) | inner_[q].translate(off)};
}

Pa TwoLevelSecurityRefresh::translate(La la) const {
  check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  return ia_to_pa(outer_.translate(la.value()));
}

Ns TwoLevelSecurityRefresh::do_inner_step(u64 q, pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, checked_narrow<u32>(q),
               telemetry::kLevelInner, 0);
  }
  const u64 key_before = inner_[q].key_c();
  const auto swap = inner_[q].advance();
  if (tel_ != nullptr && inner_[q].key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, checked_narrow<u32>(q), 0, 0);
  }
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const u64 base = q << region_bits_;
  const Pa pa{base | swap->a};
  const Pa pb{base | swap->b};
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, checked_narrow<u32>(q), pa.value(),
               pb.value());
  }
  return bank.swap_lines(pa, pb);
}

Ns TwoLevelSecurityRefresh::do_outer_step(pcm::PcmBank& bank, u64* movements) {
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kRemapTriggered, tel_id_, telemetry::kGlobalDomain,
               telemetry::kLevelOuter, 0);
  }
  const u64 key_before = outer_.key_c();
  // The outer level swaps two *intermediate* lines; where they physically
  // live right now is decided by the inner mappings of their sub-regions.
  const auto swap = outer_.advance();
  if (tel_ != nullptr && outer_.key_c() != key_before) {
    tel_->emit(telemetry::EventType::kKeyRerandomized, tel_id_, telemetry::kGlobalDomain, 0, 0);
  }
  if (!swap) return Ns{0};
  if (movements) ++*movements;
  const Pa pa = ia_to_pa(swap->a);
  const Pa pb = ia_to_pa(swap->b);
  if (tel_ != nullptr) {
    tel_->emit(telemetry::EventType::kGapMoved, tel_id_, telemetry::kGlobalDomain, pa.value(),
               pb.value());
  }
  return bank.swap_lines(pa, pb);
}

WriteOutcome TwoLevelSecurityRefresh::write(La la, const pcm::LineData& data,
                                            pcm::PcmBank& bank) {
  const u64 ia = outer_.translate(la.value());
  const u64 q = ia >> region_bits_;
  WriteOutcome out;
  out.total = bank.write(ia_to_pa(ia), data);
  u64 moved = 0;
  Ns stall{0};
  if (++inner_counter_[q] >= effective_inner_interval()) {
    inner_counter_[q] = 0;
    stall += do_inner_step(q, bank, &moved);
  }
  if (++outer_counter_ >= effective_outer_interval()) {
    outer_counter_ = 0;
    stall += do_outer_step(bank, &moved);
  }
  out.stall = stall;
  out.movements = checked_narrow<u32>(moved);
  out.total += stall;
  return out;
}

void TwoLevelSecurityRefresh::validate_state() const {
  outer_.validate();
  check_le(outer_counter_, cfg_.outer_interval,
           "TwoLevelSecurityRefresh: outer write counter overran ψ_out");
  for (u64 q = 0; q < cfg_.sub_regions; ++q) {
    inner_[q].validate();
    check_le(inner_counter_[q], cfg_.inner_interval,
             "TwoLevelSecurityRefresh: inner write counter overran ψ_in");
  }
}

BulkOutcome TwoLevelSecurityRefresh::write_batch(std::span<const La> las,
                                                 const pcm::LineData& data, pcm::PcmBank& bank) {
  for (const La la : las) {
    check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  }
  return batch::run_compressed_batch(
      *this, las, data, bank, [&](La la, BulkOutcome& out) {
        const u64 ia = outer_.translate(la.value());
        const u64 q = ia >> region_bits_;
        out.total += bank.write(ia_to_pa(ia), data);
        ++out.writes_applied;
        if (++inner_counter_[q] >= effective_inner_interval()) {
          inner_counter_[q] = 0;
          out.total += do_inner_step(q, bank, &out.movements);
        }
        if (++outer_counter_ >= effective_outer_interval()) {
          outer_counter_ = 0;
          out.total += do_outer_step(bank, &out.movements);
        }
      });
}

BulkOutcome TwoLevelSecurityRefresh::write_cycle(std::span<const La> pattern,
                                                 const pcm::LineData& data, u64 count,
                                                 pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  for (const La la : pattern) {
    check(la.value() < cfg_.lines, "TwoLevelSecurityRefresh: address out of range");
  }
  const u64 period = pattern.size();
  const u64 min_iv = std::min(effective_inner_interval(), effective_outer_interval());
  if (period > batch::kPatternFallbackFactor * min_iv) {
    return WearLeveler::write_cycle(pattern, data, count, bank);
  }
  // Outer swaps re-shard the pattern across sub-regions, so domain keys
  // are revalidated together with the line schedules.
  std::vector<u64> keys;
  std::vector<u64> keys_fresh;
  std::vector<Pa> pas;
  std::vector<Pa> pas_fresh;
  std::vector<batch::DomainSched> doms;
  std::vector<batch::LineSched> lines;
  bool rebuild = true;
  u64 phase = 0;
  while (out.writes_applied < count && !bank.has_failure()) {
    if (rebuild) {
      keys_fresh.resize(period);
      pas_fresh.resize(period);
      for (u64 i = 0; i < period; ++i) {
        const u64 ia = outer_.translate(pattern[i].value());
        keys_fresh[i] = ia >> region_bits_;
        pas_fresh[i] = ia_to_pa(ia);
      }
      if (batch::adopt_if_changed(keys, keys_fresh)) {
        batch::build_domain_scheds(keys, doms);
      }
      if (batch::adopt_if_changed(pas, pas_fresh)) {
        batch::build_line_scheds(pas, bank, lines);
      }
      rebuild = false;
    }
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    u64 chunk = std::min(count - out.writes_applied, until_outer);
    for (const auto& d : doms) {
      const u64 deficit =
          inner_counter_[d.key] >= iv_in ? 1 : iv_in - inner_counter_[d.key];
      chunk = std::min(chunk, d.hits.until_nth(phase, deficit));
    }
    chunk = batch::cap_chunk_at_failure(lines, phase, chunk);
    out.total += batch::apply_chunk(lines, data, phase, chunk, bank, tel_, tel_id_);
    out.writes_applied += chunk;
    for (const auto& d : doms) inner_counter_[d.key] += d.hits.hits_in(phase, chunk);
    outer_counter_ += chunk;
    phase = (phase + chunk) % period;
    // Fire in write()'s order: the (single) due inner region, then the
    // outer step — even when the chunk's last write recorded the failure.
    for (const auto& d : doms) {
      if (inner_counter_[d.key] >= iv_in) {
        inner_counter_[d.key] = 0;
        const u64 before = out.movements;
        out.total += do_inner_step(d.key, bank, &out.movements);
        if (out.movements != before) rebuild = true;
      }
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      const u64 before = out.movements;
      out.total += do_outer_step(bank, &out.movements);
      if (out.movements != before) rebuild = true;
    }
  }
  return out;
}

BulkOutcome TwoLevelSecurityRefresh::write_repeated(La la, const pcm::LineData& data, u64 count,
                                                    pcm::PcmBank& bank) {
  BulkOutcome out;
  while (out.writes_applied < count && !bank.has_failure()) {
    // The IA (and thus sub-region) of `la` can change at any outer step,
    // so recompute per chunk; chunks end at the nearest trigger.
    const u64 ia = outer_.translate(la.value());
    const u64 q = ia >> region_bits_;
    const u64 iv_in = effective_inner_interval();
    const u64 iv_out = effective_outer_interval();
    const u64 until_inner = inner_counter_[q] >= iv_in ? 1 : iv_in - inner_counter_[q];
    const u64 until_outer = outer_counter_ >= iv_out ? 1 : iv_out - outer_counter_;
    const u64 chunk =
        std::min({count - out.writes_applied, until_inner, until_outer});
    out.total += bank.bulk_write(ia_to_pa(ia), data, chunk);
    out.writes_applied += chunk;
    inner_counter_[q] += chunk;
    outer_counter_ += chunk;
    if (bank.has_failure()) break;
    if (inner_counter_[q] >= iv_in) {
      inner_counter_[q] = 0;
      out.total += do_inner_step(q, bank, &out.movements);
    }
    if (outer_counter_ >= iv_out) {
      outer_counter_ = 0;
      out.total += do_outer_step(bank, &out.movements);
    }
  }
  return out;
}

}  // namespace srbsg::wl
