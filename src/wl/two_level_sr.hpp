#pragma once
// Two-level Security Refresh (paper §III.C, last paragraph): an outer SR
// over the whole bank maps LA→IA; the IA space is split into equal
// sub-regions, each managed by an independent inner SR mapping IA→PA.
// Outer steps trigger every `outer_interval` writes to the bank; inner
// steps every `inner_interval` writes landing in that sub-region.

#include <vector>

#include "common/check.hpp"
#include "wl/security_refresh_region.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

struct TwoLevelSrConfig {
  u64 lines{1u << 16};     ///< N, power of two
  u64 sub_regions{512};    ///< R, power of two, divides N
  u64 inner_interval{64};  ///< ψ_in
  u64 outer_interval{128};  ///< ψ_out
  u64 seed{1};

  void validate() const;
  [[nodiscard]] u64 region_lines() const { return lines / sub_regions; }
};

class TwoLevelSecurityRefresh final : public WearLeveler {
 public:
  explicit TwoLevelSecurityRefresh(const TwoLevelSrConfig& cfg);

  [[nodiscard]] std::string_view name() const override { return "sr2"; }
  [[nodiscard]] u64 logical_lines() const override { return cfg_.lines; }
  [[nodiscard]] u64 physical_lines() const override { return cfg_.lines; }
  [[nodiscard]] Pa translate(La la) const override;

  WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override;
  BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                             pcm::PcmBank& bank) override;
  BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                          pcm::PcmBank& bank) override;
  BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                          pcm::PcmBank& bank) override;

  [[nodiscard]] const TwoLevelSrConfig& config() const { return cfg_; }
  [[nodiscard]] const SecurityRefreshRegion& outer() const { return outer_; }
  [[nodiscard]] const SecurityRefreshRegion& inner(u64 q) const { return inner_[q]; }

  /// Intermediate address of `la` under the current outer mapping.
  [[nodiscard]] u64 to_ia(u64 la) const { return outer_.translate(la); }

  /// Outer and every inner SR region's register invariants plus the
  /// inner/outer write-counter bounds.
  void validate_state() const override;
  /// SR movements are swaps: two line writes each.
  [[nodiscard]] u32 writes_per_movement() const override { return 2; }

  void set_rate_boost(u32 log2_divisor) override {
    check_lt(log2_divisor, u32{64}, "set_rate_boost: boost shifts past the interval width");
    boost_ = log2_divisor;
  }
  [[nodiscard]] u64 effective_inner_interval() const {
    const u64 iv = cfg_.inner_interval >> boost_;
    return iv == 0 ? 1 : iv;
  }
  [[nodiscard]] u64 effective_outer_interval() const {
    const u64 iv = cfg_.outer_interval >> boost_;
    return iv == 0 ? 1 : iv;
  }

 private:
  [[nodiscard]] Pa ia_to_pa(u64 ia) const;
  Ns do_inner_step(u64 q, pcm::PcmBank& bank, u64* movements);
  Ns do_outer_step(pcm::PcmBank& bank, u64* movements);
  /// PR-4 windowed engine, entered at cycle offset `phase0`; accumulates
  /// into `out`.
  void write_cycle_windowed(std::span<const La> pattern, const pcm::LineData& data, u64 count,
                            u64 phase0, pcm::PcmBank& bank, BulkOutcome& out);
  /// Epoch fast-forward engine (DESIGN.md §15): analytic jumps between
  /// pattern-touching/rekey triggers, windowed fallback otherwise.
  BulkOutcome write_cycle_epoch(std::span<const La> pattern, const pcm::LineData& data,
                                u64 count, pcm::PcmBank& bank);

  TwoLevelSrConfig cfg_;
  u32 region_bits_;
  SecurityRefreshRegion outer_;
  std::vector<SecurityRefreshRegion> inner_;
  std::vector<u64> inner_counter_;
  u64 outer_counter_{0};
  u32 boost_{0};
};

}  // namespace srbsg::wl
