#include "wl/wear_leveler.hpp"

namespace srbsg::wl {

BulkOutcome WearLeveler::write_repeated(La la, const pcm::LineData& data, u64 count,
                                        pcm::PcmBank& bank) {
  // Generic fallback: one write at a time. Schemes override this with an
  // event-driven fast path.
  BulkOutcome out;
  for (u64 i = 0; i < count && !bank.has_failure(); ++i) {
    const WriteOutcome w = write(la, data, bank);
    out.total += w.total;
    out.movements += w.movements;
    ++out.writes_applied;
  }
  return out;
}

std::pair<pcm::LineData, Ns> WearLeveler::read(La la, const pcm::PcmBank& bank) const {
  return bank.read(translate(la));
}

}  // namespace srbsg::wl
