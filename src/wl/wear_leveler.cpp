#include "wl/wear_leveler.hpp"

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace srbsg::wl {

std::string_view to_string(EngineTier tier) {
  switch (tier) {
    case EngineTier::kReference:
      return "reference";
    case EngineTier::kWindowed:
      return "windowed";
    case EngineTier::kEpoch:
      return "epoch";
  }
  return "?";
}

EngineTier parse_engine_tier(std::string_view name) {
  if (name == "reference") return EngineTier::kReference;
  if (name == "windowed") return EngineTier::kWindowed;
  if (name == "epoch") return EngineTier::kEpoch;
  throw CheckFailure("unknown engine tier: " + std::string(name));
}

void WearLeveler::attach_telemetry(telemetry::Recorder* recorder) {
  // srbsg-analyze: suppress(a10-lifetime) harness-owned recorder outlives every scheme
  tel_ = recorder;
  tel_id_ = recorder ? recorder->intern_scheme(name()) : u16{0};
}

BulkOutcome WearLeveler::write_repeated(La la, const pcm::LineData& data, u64 count,
                                        pcm::PcmBank& bank) {
  // Generic fallback: one write at a time. Schemes override this with an
  // event-driven fast path.
  BulkOutcome out;
  for (u64 i = 0; i < count && !bank.has_failure(); ++i) {
    const WriteOutcome w = write(la, data, bank);
    out.total += w.total;
    out.movements += w.movements;
    ++out.writes_applied;
  }
  return out;
}

BulkOutcome WearLeveler::write_batch(std::span<const La> las, const pcm::LineData& data,
                                     pcm::PcmBank& bank) {
  // Generic fallback: one write at a time, stopping after the write that
  // records a failure — the reference semantics scheme overrides must
  // reproduce bit-identically.
  BulkOutcome out;
  for (const La la : las) {
    if (bank.has_failure()) break;
    const WriteOutcome w = write(la, data, bank);
    out.total += w.total;
    out.movements += w.movements;
    ++out.writes_applied;
  }
  return out;
}

BulkOutcome WearLeveler::write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                     u64 count, pcm::PcmBank& bank) {
  BulkOutcome out;
  if (count == 0) return out;
  check(!pattern.empty(), "write_cycle: empty pattern with writes requested");
  const u64 period = pattern.size();
  for (u64 i = 0; i < count && !bank.has_failure(); ++i) {
    const WriteOutcome w = write(pattern[i % period], data, bank);
    out.total += w.total;
    out.movements += w.movements;
    ++out.writes_applied;
  }
  return out;
}

std::pair<pcm::LineData, Ns> WearLeveler::read(La la, const pcm::PcmBank& bank) const {
  return bank.read(translate(la));
}

}  // namespace srbsg::wl
