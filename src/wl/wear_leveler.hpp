#pragma once
// Common interface for wear-leveling schemes.
//
// A scheme owns the logical→physical translation state and the remapping
// triggers; the PCM bank is passed into every operation so schemes stay
// decoupled from storage. The `WriteOutcome::stall` field is the timing
// side channel the Remapping Timing Attack observes: remap movements halt
// the triggering request (paper §III), so their latency is added to it.

#include <span>
#include <string_view>
#include <utility>

#include "common/types.hpp"
#include "pcm/bank.hpp"
#include "pcm/timing.hpp"

namespace srbsg::telemetry {
class Recorder;
}

namespace srbsg::wl {

/// Which bulk-write engine a scheme runs under (DESIGN.md §15). All
/// tiers are bit-identical in outcome; they differ only in cost. The
/// windowed tier is the default so existing callers are unaffected.
enum class EngineTier : u8 {
  kReference,  ///< per-write loop — the ground-truth semantics
  kWindowed,   ///< PR-4 windowed engine: O(remap triggers) chunks
  kEpoch,      ///< epoch fast-forward: analytic jumps over whole remap
               ///< epochs, falling back to the windowed tier near
               ///< failure, boundaries, and inexpressible state
};

[[nodiscard]] std::string_view to_string(EngineTier tier);
/// Parses "reference|windowed|epoch"; throws on unknown names.
[[nodiscard]] EngineTier parse_engine_tier(std::string_view name);

struct WriteOutcome {
  /// Latency observed by the requester (data write + remap stall).
  Ns total{0};
  /// Extra latency contributed by remap movements triggered by this write.
  Ns stall{0};
  /// Number of remap movements this write triggered (usually 0 or 1).
  u32 movements{0};
};

struct BulkOutcome {
  /// Total simulated time for the applied writes (including remap stalls).
  Ns total{0};
  /// Writes actually applied (< requested when the bank failed mid-bulk).
  u64 writes_applied{0};
  /// Remap movements performed during the bulk.
  u64 movements{0};
};

class WearLeveler {
 public:
  virtual ~WearLeveler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Number of logical lines exposed to software.
  [[nodiscard]] virtual u64 logical_lines() const = 0;

  /// Physical lines the backing bank must provide (logical + spares).
  [[nodiscard]] virtual u64 physical_lines() const = 0;

  /// Current logical→physical translation (inspection/testing only; the
  /// attack code never calls this — it works from observed latencies).
  [[nodiscard]] virtual Pa translate(La la) const = 0;

  /// One write of `data` to `la`: performs the data write, advances the
  /// remap counters, and executes any triggered remap movement(s).
  virtual WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) = 0;

  /// `count` consecutive writes of identical data to `la`. Semantically
  /// identical to calling write() in a loop, but schemes override it with
  /// an event-driven fast path (O(remap events), not O(count)). Stops
  /// early once the bank records a failure.
  virtual BulkOutcome write_repeated(La la, const pcm::LineData& data, u64 count,
                                     pcm::PcmBank& bank);

  /// One write of `data` to each address in `las`, in order. Bit-identical
  /// to the per-write reference loop
  ///   `for (la : las) { if (bank.has_failure()) break; write(la, ...); }`
  /// in wear counts, movements and total latency — including the exact
  /// stop after the write that records the failure (whose due remap
  /// movement still fires, as in write()). Scheme overrides hoist
  /// translation state out of the loop and send runs of >= 16 identical
  /// addresses through the event-driven write_cycle() path. Addresses
  /// are validated up-front in the overrides; partial application before
  /// an out-of-range throw is unspecified.
  virtual BulkOutcome write_batch(std::span<const La> las, const pcm::LineData& data,
                                  pcm::PcmBank& bank);

  /// `count` writes of `data` cycling through `pattern`: write #k targets
  /// pattern[k % pattern.size()], and the final cycle may be partial.
  /// Same bit-identity contract as write_batch() versus the per-write
  /// reference loop. Scheme overrides run a windowed engine that applies
  /// per-line bulk writes between remap triggers, so periodic hammer
  /// loops cost O(remap events + pattern length) instead of O(count);
  /// patterns much longer than the remapping interval fall back to the
  /// generic loop (see batch::kPatternFallbackFactor).
  virtual BulkOutcome write_cycle(std::span<const La> pattern, const pcm::LineData& data,
                                  u64 count, pcm::PcmBank& bank);

  /// Read through the translation (no wear, no counter advance).
  [[nodiscard]] std::pair<pcm::LineData, Ns> read(La la, const pcm::PcmBank& bank) const;

  /// Online-attack-detector hook (Qureshi et al., HPCA'11): divide the
  /// remapping interval(s) by 2^log2_divisor, speeding up wear leveling
  /// while a suspicious write stream is active. Schemes that support
  /// adaptive rates override this; the default ignores it.
  virtual void set_rate_boost(u32 log2_divisor) { (void)log2_divisor; }

  /// Scheme-specific invariant audit: throws CheckFailure when internal
  /// state (gap bounds, key/round consistency, table inversions, ...) is
  /// corrupt. Called by the audit::AuditingWearLeveler on its cadence and
  /// free to be O(lines) — it never runs on the simulation fast path.
  virtual void validate_state() const {}

  /// Physical line writes one remap movement costs on the bank: 1 for
  /// move-based schemes (Start-Gap family), 2 for swap-based schemes
  /// (Security Refresh family, table WL). The auditor uses this for the
  /// wear-conservation identity
  ///   bank writes == data writes issued + movements * writes_per_movement.
  [[nodiscard]] virtual u32 writes_per_movement() const { return 1; }

  /// Select the bulk-write engine for write_repeated/write_batch/
  /// write_cycle. Virtual so wrappers (audit, verify mutants) forward to
  /// the scheme they decorate. Schemes without an epoch fast path treat
  /// kEpoch as kWindowed — every tier keeps the bit-identity contract.
  virtual void set_engine_tier(EngineTier tier) { tier_ = tier; }
  [[nodiscard]] EngineTier engine_tier() const { return tier_; }

  /// Attach (or detach, with nullptr) a telemetry recorder. Recording is
  /// observation-only: it never changes translations, counters, timing
  /// or RNG consumption, and the disabled cost is one null check per
  /// remap event. Virtual so wrappers (audit) can forward to the scheme
  /// they decorate.
  virtual void attach_telemetry(telemetry::Recorder* recorder);

 protected:
  /// Null when telemetry is off; schemes guard every emission on it.
  telemetry::Recorder* tel_{nullptr};
  /// Recorder intern id of name(), valid while `tel_` is non-null.
  u16 tel_id_{0};
  /// Engine tier for the bulk-write entry points.
  EngineTier tier_{EngineTier::kWindowed};
};

}  // namespace srbsg::wl
