// srbsg-analyze fixture: seeded a10-lifetime violations (clean twin:
// a10_lifetime_clean.cpp). View parameters — a Recorder* and a
// std::span — are stored into members that outlive the call, directly
// and through a forwarding callee. The suppressed case mirrors the
// attached-observer contract src/ uses.
#include <span>

namespace fixture {
namespace telemetry {

struct Recorder {
  unsigned long last_ = 0;
};

}  // namespace telemetry

struct Hub {
  void attach(telemetry::Recorder* rec) {
    tel_ = rec;  // EXPECT: a10-lifetime
  }
  void wire(telemetry::Recorder* rec) {
    attach(rec);  // EXPECT: a10-lifetime
  }
  void adopt_window(std::span<const unsigned long> window) {
    window_ = window;  // EXPECT: a10-lifetime
  }
  telemetry::Recorder* tel_ = nullptr;
  std::span<const unsigned long> window_;
};

struct ObserverHub {
  void attach(telemetry::Recorder* rec) {
    // srbsg-analyze: suppress(a10-lifetime) the recorder outlives every hub by contract
    tel_ = rec;  // EXPECT-SUPPRESSED: a10-lifetime
  }
  telemetry::Recorder* tel_ = nullptr;
};

}  // namespace fixture
