// srbsg-analyze fixture: clean twin of a10_lifetime_bad.cpp. The same
// view-parameter signatures, but the bodies copy the viewed *data*
// instead of the view: summed span contents and a dereferenced value.
// Nothing borrowed outlives the call, so a10-lifetime must stay
// silent.
#include <span>

namespace fixture {
namespace telemetry {

struct Recorder {
  unsigned long last_ = 0;
};

}  // namespace telemetry

struct Hub {
  void adopt_window(std::span<const unsigned long> window) {
    total_ = 0;
    for (unsigned long v : window) {
      total_ += v;
    }
  }
  void observe(telemetry::Recorder* rec) {
    last_seen_ = rec ? rec->last_ : 0;  // copies the value, not the view
  }
  unsigned long total_ = 0;
  unsigned long last_seen_ = 0;
};

}  // namespace fixture
