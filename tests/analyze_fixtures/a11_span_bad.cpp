// srbsg-analyze fixture: seeded a11-span violations (clean twin:
// a11_span_clean.cpp). Span begin/end pairs that are not closed on every
// path out of their scope: an early return inside the pair, a throw
// inside the pair, an end with no begin, and a begin with no end at all.
#include <cstdint>
#include <stdexcept>

namespace fixture {

struct Recorder {
  void span_begin(std::uint64_t kind, std::uint64_t detail) { last_ = kind + detail; }
  void span_end(std::uint64_t kind, std::uint64_t detail) { last_ = kind - detail; }
  std::uint64_t last_ = 0;
};

std::uint64_t early_return(Recorder& rec, std::uint64_t writes) {
  rec.span_begin(1, writes);
  if (writes == 0) {
    return 0;  // EXPECT: a11-span
  }
  rec.span_end(1, writes);
  return writes;
}

std::uint64_t throw_escapes(Recorder& rec, std::uint64_t writes) {
  rec.span_begin(2, writes);
  if (writes > 100) {
    throw std::runtime_error("overflow");  // EXPECT: a11-span
  }
  rec.span_end(2, writes);
  return writes;
}

void end_without_begin(Recorder& rec, std::uint64_t writes) {
  rec.span_end(3, writes);  // EXPECT: a11-span
}

void begin_without_end(Recorder& rec, std::uint64_t writes) {
  rec.span_begin(4, writes);  // EXPECT: a11-span
}

}  // namespace fixture
