// srbsg-analyze fixture: clean twin of a11_span_bad.cpp. Every span
// begin is post-dominated by its end: straight-line pairs, a guarded
// symmetric pair, a pair inside a lambda's own scope, and a forwarding
// wrapper whose name marks it as one half of a pair.
#include <cstdint>

namespace fixture {

struct Recorder {
  void span_begin(std::uint64_t kind, std::uint64_t detail) { last_ = kind + detail; }
  void span_end(std::uint64_t kind, std::uint64_t detail) { last_ = kind - detail; }
  std::uint64_t last_ = 0;
};

std::uint64_t balanced(Recorder& rec, std::uint64_t writes) {
  rec.span_begin(1, writes);
  rec.span_end(1, writes);
  return writes;
}

std::uint64_t guarded_pair(Recorder* rec, std::uint64_t writes) {
  const bool traced = rec != nullptr;
  if (traced) rec->span_begin(2, writes);
  const std::uint64_t result = writes + 1;
  if (traced) rec->span_end(2, result);
  return result;
}

std::uint64_t lambda_scoped(Recorder& rec, std::uint64_t writes) {
  const auto traced = [&rec](std::uint64_t w) {
    rec.span_begin(3, w);
    rec.span_end(3, w);
    return w;
  };
  return traced(writes);
}

// A forwarding wrapper emits only its half of the pair; the span-shaped
// name exempts the body (the matching end lives in span_fallback_end).
void span_fallback_begin(Recorder* rec, std::uint64_t writes) {
  if (rec != nullptr) rec->span_begin(4, writes);
}

void span_fallback_end(Recorder* rec, std::uint64_t writes) {
  if (rec != nullptr) rec->span_end(4, writes);
}

std::uint64_t via_wrappers(Recorder* rec, std::uint64_t writes) {
  span_fallback_begin(rec, writes);
  const std::uint64_t result = writes * 2;
  span_fallback_end(rec, result);
  return result;
}

}  // namespace fixture
