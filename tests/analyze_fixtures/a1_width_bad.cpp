// srbsg-analyze fixture: seeded a1-width violations (clean twin:
// a1_width_clean.cpp). Every line carrying a violation ends with an
// `EXPECT:` annotation; the selftest asserts the analyzer reports
// exactly those (file, line, check) triples and nothing else.
#include <cstdint>

namespace fixture {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

void sink32(u32 v);

u32 narrow_return(u64 line) {
  return static_cast<u32>(line);  // EXPECT: a1-width
}

u64 narrow_local(u64 wear_count) {
  u32 truncated = wear_count;  // EXPECT: a1-width
  return truncated;
}

void narrow_argument(u64 addr) {
  sink32(addr);  // EXPECT: a1-width
}

u32 narrow_c_cast(u64 physical_line) {
  return (u32)physical_line;  // EXPECT: a1-width
}

u32 suppressed_narrow(u64 line) {
  return static_cast<u32>(line & 0xffu);  // srbsg-analyze: suppress(a1-width) masked to 8 bits  EXPECT-SUPPRESSED: a1-width
}

}  // namespace fixture
