// srbsg-analyze fixture: clean twin of a1_width_bad.cpp. Same shapes,
// zero findings expected: arithmetic stays in 64 bits, provably-fitting
// literals are exempt, and the checked_narrow helper is the sanctioned
// narrowing sink wherever it is defined.
#include <cstdint>

namespace fixture {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

template <class To, class From>
To checked_narrow(From v) {
  To t = static_cast<To>(v);
  return t;
}

void sink64(u64 v);

u64 wide_return(u64 line) {
  return line;
}

u64 wide_local(u64 wear_count) {
  u64 kept = wear_count;
  return kept;
}

void wide_argument(u64 addr) {
  sink64(addr);
}

u32 literal_fits() {
  u64 five = 5;
  (void)five;
  u32 small = 7ul;  // 64-bit literal that provably fits: exempt
  return small;
}

u32 sanctioned_narrow(u64 line) {
  return checked_narrow<u32>(line & 0xffu);
}

}  // namespace fixture
