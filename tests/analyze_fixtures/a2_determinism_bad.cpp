// srbsg-analyze fixture: seeded a2-determinism violations (clean twin:
// a2_determinism_clean.cpp). Covers both the AST-only classes (pointer
// hashing, unordered iteration, chrono clocks) and the classes shared
// with the regex pre-pass (rand/time/random_device) — the latter must be
// reported exactly once despite two detection layers.
#include <chrono>
#include <cstdlib>
#include <ctime>  // EXPECT: a2-determinism
#include <functional>
#include <random>
#include <unordered_map>

namespace fixture {

int hidden_seed_randomness() {
  return std::rand();  // EXPECT: a2-determinism
}

long wall_clock() {
  return static_cast<long>(std::time(nullptr));  // EXPECT: a2-determinism
}

unsigned entropy_seed() {
  std::random_device rd;  // EXPECT: a2-determinism
  return rd();
}

long chrono_clock() {
  auto t = std::chrono::steady_clock::now();  // EXPECT: a2-determinism
  return t.time_since_epoch().count();
}

std::size_t pointer_hash(int* p) {
  std::hash<int*> hasher;  // EXPECT: a2-determinism
  return hasher(p);
}

long unordered_iteration(const std::unordered_map<long, long>& histogram) {
  long checksum = 0;
  for (const auto& kv : histogram) {  // EXPECT: a2-determinism
    checksum = checksum * 31 + kv.second;
  }
  return checksum;
}

int suppressed_randomness() {
  return std::rand();  // srbsg-analyze: suppress(a2-determinism) fixture-only  EXPECT-SUPPRESSED: a2-determinism
}

}  // namespace fixture
