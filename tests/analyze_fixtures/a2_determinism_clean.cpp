// srbsg-analyze fixture: clean twin of a2_determinism_bad.cpp. The same
// jobs done deterministically: explicit seeds, value hashing, ordered
// iteration. Zero findings expected.
#include <cstdint>
#include <functional>
#include <map>
#include <random>

namespace fixture {

std::uint64_t seeded_randomness(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return rng() & 0x7f;
}

long simulated_clock(long now_ns, long step_ns) {
  return now_ns + step_ns;
}

unsigned explicit_seed(unsigned seed) {
  return seed * 2654435761u;
}

std::size_t value_hash(long v) {
  std::hash<long> hasher;
  return hasher(v);
}

long ordered_iteration(const std::map<long, long>& histogram) {
  long checksum = 0;
  for (const auto& kv : histogram) {
    checksum = checksum * 31 + kv.second;
  }
  return checksum;
}

}  // namespace fixture
