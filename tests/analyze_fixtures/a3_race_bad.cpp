// srbsg-analyze fixture: seeded a3-race violations (clean twin:
// a3_race_clean.cpp). A miniature ThreadPool mirrors the interface of
// common/thread_pool.hpp; the seeded lambdas mutate captured state with
// no synchronization. Findings anchor to the submitting call.
#include <cstddef>
#include <utility>

namespace fixture {

struct ThreadPool {
  template <class F>
  void submit(F&& fn) {
    std::forward<F>(fn)();
  }
};

template <class F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

long racy_counter(ThreadPool& pool) {
  long total = 0;
  pool.submit([&total] { ++total; });  // EXPECT: a3-race
  return total;
}

void racy_shared_slot(ThreadPool& pool, long* out) {
  pool.submit([&out] { out[0] = 1; });  // EXPECT: a3-race
}

long racy_accumulate(ThreadPool& pool, std::size_t n, long* out) {
  long sum = 0;
  parallel_for(pool, n, [&sum, out](std::size_t i) { sum += out[i]; });  // EXPECT: a3-race
  return sum;
}

long suppressed_race(ThreadPool& pool) {
  long total = 0;
  pool.submit([&total] { ++total; });  // srbsg-analyze: suppress(a3-race) fixture-only  EXPECT-SUPPRESSED: a3-race
  return total;
}

}  // namespace fixture
