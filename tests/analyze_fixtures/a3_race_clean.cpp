// srbsg-analyze fixture: clean twin of a3_race_bad.cpp. The same work
// shapes, correctly synchronized: disjoint slices indexed by the task
// parameter, lock-guarded bodies, atomic counters, read-only captures,
// and mutation in lambdas that are never pool-submitted.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>

namespace fixture {

struct ThreadPool {
  template <class F>
  void submit(F&& fn) {
    std::forward<F>(fn)();
  }
};

template <class F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

void disjoint_slices(ThreadPool& pool, std::size_t n, long* out) {
  parallel_for(pool, n, [out](std::size_t i) { out[i] += 1; });
}

long guarded_counter(ThreadPool& pool, std::mutex& m) {
  long total = 0;
  pool.submit([&total, &m] {
    std::lock_guard<std::mutex> guard(m);
    ++total;
  });
  return total;
}

long atomic_counter(ThreadPool& pool, std::atomic<long>& total) {
  pool.submit([&total] { total.fetch_add(1); });
  return total.load();
}

long read_only_capture(ThreadPool& pool, long seed) {
  pool.submit([seed] {
    long copy = seed;
    (void)copy;
  });
  return seed;
}

long unsubmitted_lambda(long n) {
  long total = 0;
  auto bump = [&total] { ++total; };
  for (long i = 0; i < n; ++i) {
    bump();
  }
  return total;
}

}  // namespace fixture
