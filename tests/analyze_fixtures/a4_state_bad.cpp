// srbsg-analyze fixture: seeded a4-state violations (clean twin:
// a4_state_clean.cpp). Mutable state outside the scheme object: a
// namespace-scope counter, a static local, and a static data member —
// each silently couples scheme instances across parallel sweeps.
#include <cstdint>

namespace fixture {

std::uint64_t g_total_writes = 0;  // EXPECT: a4-state

long remap_counter() {
  static long calls = 0;  // EXPECT: a4-state
  ++calls;
  return calls;
}

struct SchemeStats {
  static long instances;  // EXPECT: a4-state
  long local_count = 0;
};

std::uint64_t g_debug_epoch = 0;  // srbsg-analyze: suppress(a4-state) fixture-only  EXPECT-SUPPRESSED: a4-state

std::uint64_t bump() {
  g_total_writes += 1;
  return g_total_writes;
}

}  // namespace fixture
