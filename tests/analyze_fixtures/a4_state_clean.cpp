// srbsg-analyze fixture: clean twin of a4_state_bad.cpp. The same
// shapes, made legitimate: immutable constants (constexpr/const), a
// const static-local table, and per-instance fields on the scheme
// object. Zero findings expected.
#include <cstdint>

namespace fixture {

constexpr std::uint64_t kLineCount = 64;
const std::uint64_t kStepSeed = 3;

std::uint64_t table_lookup(std::uint64_t i) {
  static const std::uint64_t kTable[4] = {1, 3, 5, 7};
  return kTable[i & 3u];
}

struct SchemeStats {
  std::uint64_t instance_writes = 0;
  std::uint64_t local_count = 0;
};

std::uint64_t bump(SchemeStats& stats) {
  std::uint64_t scratch = stats.instance_writes;
  scratch += kStepSeed;
  stats.instance_writes = scratch;
  return scratch + kLineCount;
}

}  // namespace fixture
