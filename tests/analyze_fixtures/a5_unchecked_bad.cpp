// srbsg-analyze fixture: seeded a5-unchecked violations (clean twin:
// a5_unchecked_clean.cpp). A WearLeveler-derived scheme whose public
// entry points use address/width parameters without ever reaching the
// check family — including through a non-checking local helper, which
// the whole-program closure must see through.
#include <cstdint>

namespace fixture {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

struct WearLeveler {
  virtual ~WearLeveler() = default;
  virtual u64 translate(u64 la) = 0;
  virtual void set_rate_boost(u32 log2_divisor) {}
};

struct BadScheme : WearLeveler {
  explicit BadScheme(u64 lines) { lines_ = lines; }  // EXPECT: a5-unchecked

  u64 translate(u64 la) override { return mix(la); }  // EXPECT: a5-unchecked

  void set_rate_boost(u32 log2_divisor) override {  // EXPECT: a5-unchecked
    boost_ = log2_divisor;
  }

  u64 read(u64 la) { return la + lines_; }  // srbsg-analyze: suppress(a5-unchecked) fixture-only  EXPECT-SUPPRESSED: a5-unchecked

  u64 mix(u64 la) { return la ^ (lines_ >> 1); }

  u64 lines_ = 0;
  u32 boost_ = 0;
};

}  // namespace fixture
