// srbsg-analyze fixture: clean twin of a5_unchecked_bad.cpp. Every
// entry point reaches the check family: directly, through a checking
// local helper (the closure must credit it), or through an external
// callee whose body is unseen (trusted). Unused parameters are voided
// and non-WearLeveler classes are out of scope.
#include <cstdint>

namespace fixture {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

void check_lt(u64 value, u64 limit);
u64 mix64(u64 v);

struct WearLeveler {
  virtual ~WearLeveler() = default;
  virtual u64 translate(u64 la) = 0;
  virtual void set_rate_boost(u32 log2_divisor) {}
};

struct GoodScheme : WearLeveler {
  explicit GoodScheme(u64 lines) {
    check_lt(lines, u64{1} << 22);
    lines_ = lines;
  }

  u64 translate(u64 la) override {
    check_lt(la, lines_);
    return la ^ (lines_ >> 1);
  }

  u64 write(u64 la) { return validated(la) + 1; }

  u64 read(u64 la) { return mix64(la); }

  void set_rate_boost(u32 log2_divisor) override { (void)log2_divisor; }

  u64 validated(u64 la) {
    check_lt(la, lines_);
    return la;
  }

  u64 lines_ = 0;
};

struct NotAScheme {
  u64 translate(u64 la) { return la + 1; }
};

}  // namespace fixture
