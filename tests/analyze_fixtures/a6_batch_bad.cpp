// srbsg-analyze fixture: seeded a6-batch violations (clean twin:
// a6_batch_clean.cpp). Raw loops issuing per-write WearLeveler /
// MemoryController write() calls with the outcome discarded — the
// batched entry points (write_batch / write_cycle) hoist translation
// state out of exactly these loops. Methods are declared without
// bodies so a5-unchecked records no entry points here.
#include <cstdint>

namespace fixture {

using u64 = std::uint64_t;

struct Outcome {
  u64 total = 0;
};

struct WearLeveler {
  Outcome write(u64 la);
  Outcome write_batch(const u64* las, u64 n);
};

struct MemoryController {
  Outcome write(u64 la);
};

void hammer(WearLeveler& wl, u64 count) {
  for (u64 i = 0; i < count; ++i) {
    wl.write(42);  // EXPECT: a6-batch
  }
}

void probe(MemoryController& mc, const u64* las, u64 n) {
  u64 i = 0;
  while (i < n) {
    mc.write(las[i]);  // EXPECT: a6-batch
    ++i;
  }
}

// A (void)-cast still discards the outcome; pointer receivers resolve
// through the same member-expression base.
void warmup(WearLeveler* wl, u64 count) {
  for (u64 i = 0; i < count; ++i) {
    (void)wl->write(i);  // EXPECT: a6-batch
  }
}

void suppressed_hammer(WearLeveler& wl, u64 count) {
  for (u64 i = 0; i < count; ++i) {
    wl.write(7);  // srbsg-analyze: suppress(a6-batch) fixture-only  EXPECT-SUPPRESSED: a6-batch
  }
}

}  // namespace fixture
