// srbsg-analyze fixture: clean twin of a6_batch_bad.cpp. Outcomes
// consumed every iteration, batched entry points, single writes outside
// loops, and unrelated write() surfaces are all sanctioned.
#include <cstdint>

namespace fixture {

using u64 = std::uint64_t;

struct Outcome {
  u64 total = 0;
};

struct WearLeveler {
  Outcome write(u64 la);
  Outcome write_batch(const u64* las, u64 n);
  Outcome write_cycle(const u64* pattern, u64 period, u64 count);
};

struct MemoryController {
  Outcome write(u64 la);
};

struct Logger {
  void write(u64 value);  // unrelated write() surface: not a wear path
};

// Outcome consumed every iteration: the sanctioned per-write observer.
u64 observe(MemoryController& mc, const u64* las, u64 n) {
  u64 total = 0;
  for (u64 i = 0; i < n; ++i) {
    const Outcome out = mc.write(las[i]);
    total += out.total;
  }
  return total;
}

// The batched entry point replaces the loop entirely.
Outcome blanket(WearLeveler& wl, const u64* las, u64 n) {
  return wl.write_batch(las, n);
}

// A single write outside any loop is not a stream.
Outcome one_shot(WearLeveler& wl) { return wl.write(3); }

// Loops over non-wear write() surfaces are out of scope.
void log_all(Logger& log, const u64* vals, u64 n) {
  for (u64 i = 0; i < n; ++i) {
    log.write(vals[i]);
  }
}

}  // namespace fixture
