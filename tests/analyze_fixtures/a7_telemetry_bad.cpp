// srbsg-analyze fixture: seeded a7-telemetry violations (clean twin:
// a7_telemetry_clean.cpp). Library-style code printing progress straight
// to stdout/stderr: std::cout/std::cerr references and printf-family
// calls, each bypassing the telemetry subsystem.
#include <cstdint>
#include <cstdio>
#include <iostream>

namespace fixture {

std::uint64_t remap_and_report(std::uint64_t moved) {
  std::cout << "moved " << moved << " lines\n";  // EXPECT: a7-telemetry
  if (moved == 0) {
    std::cerr << "nothing to do\n";  // EXPECT: a7-telemetry
  }
  std::printf("progress: %llu\n",  // EXPECT: a7-telemetry
              static_cast<unsigned long long>(moved));
  std::fprintf(stderr, "done\n");  // EXPECT: a7-telemetry
  std::puts("remap complete");     // EXPECT: a7-telemetry
  return moved;
}

std::uint64_t traced_report(std::uint64_t n) {
  // srbsg-analyze: suppress(a7-telemetry) fixture-only
  std::cout << n << "\n";  // EXPECT-SUPPRESSED: a7-telemetry
  return n;
}

}  // namespace fixture
