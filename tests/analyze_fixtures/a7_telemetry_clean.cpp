// srbsg-analyze fixture: a7-telemetry clean twin (bad twin:
// a7_telemetry_bad.cpp). The sanctioned shapes: reporting through a
// caller-supplied std::ostream& (how common/table.hpp prints) and plain
// counter accumulation a telemetry shard would absorb — no direct
// stdout/stderr reference, no printf family.
#include <cstdint>
#include <ostream>

namespace fixture {

struct ProgressCounters {
  std::uint64_t moves{0};
  std::uint64_t rekeys{0};
};

std::uint64_t remap_quietly(ProgressCounters& counters, std::uint64_t moved) {
  counters.moves += moved;
  if (moved > 0) counters.rekeys += 1;
  return counters.moves;
}

void render_report(std::ostream& os, const ProgressCounters& counters) {
  os << "moves=" << counters.moves << " rekeys=" << counters.rekeys << "\n";
}

}  // namespace fixture
