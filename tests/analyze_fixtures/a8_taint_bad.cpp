// srbsg-analyze fixture: seeded a8-taint violations (clean twin:
// a8_taint_clean.cpp). A miniature write_jsonl mirrors the telemetry
// collector's sink; the seeded flows carry rand() into it through a
// return value, an out-parameter, and a stored field. The rand() call
// sites themselves also trip a2-determinism.
#include <cstdlib>

namespace fixture {

// Mini serialization sink: the name matches the analyzer's sink family.
void write_jsonl(unsigned long v) { (void)v; }

unsigned long seed_value() {
  unsigned long s = static_cast<unsigned long>(std::rand());  // EXPECT: a2-determinism
  return s;
}

void fill_seed(unsigned long* out) {
  *out = static_cast<unsigned long>(std::rand());  // EXPECT: a2-determinism
}

struct Meta {
  void stamp() { run_id_ = seed_value(); }
  unsigned long run_id_ = 0;
};

void emit_run_header(Meta& meta) {
  unsigned long v = 0;
  fill_seed(&v);
  write_jsonl(seed_value());  // EXPECT: a8-taint
  write_jsonl(v);             // EXPECT: a8-taint
  write_jsonl(meta.run_id_);  // EXPECT: a8-taint
}

}  // namespace fixture
