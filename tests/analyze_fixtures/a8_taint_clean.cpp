// srbsg-analyze fixture: clean twin of a8_taint_bad.cpp. Every value
// reaching the write_jsonl sink derives from simulated time held in
// deterministic state — no randomness, no wall clock — so a8-taint
// must stay silent.
namespace fixture {

void write_jsonl(unsigned long v) { (void)v; }

// Simulated time is deterministic program state, not a wall clock.
struct Sim {
  unsigned long now_cycles() const { return cycles_; }
  unsigned long cycles_ = 0;
};

unsigned long row_count(const Sim& sim) { return sim.now_cycles(); }

void emit_run_header(const Sim& sim) {
  write_jsonl(sim.now_cycles());
  write_jsonl(row_count(sim));
}

}  // namespace fixture
