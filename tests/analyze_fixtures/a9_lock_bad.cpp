// srbsg-analyze fixture: seeded a9-lock violations (clean twin:
// a9_lock_clean.cpp). The submitted lambdas never write anything
// directly — a3 stays silent — but every call they make reaches an
// unguarded field write: through a method on the captured object,
// through a free function taking it by reference, and through a
// two-hop forwarding chain.
#include <cstddef>
#include <utility>

namespace fixture {

struct ThreadPool {
  template <class F>
  void submit(F&& fn) {
    std::forward<F>(fn)();
  }
};

struct Stats {
  void bump() { hits_ += 1; }
  unsigned long hits_ = 0;
};

void tick(Stats& st) { st.hits_ += 1; }

void tick_twice(Stats& st) {
  tick(st);
  tick(st);
}

unsigned long run_method_write(ThreadPool& pool, Stats& st) {
  pool.submit([&st] { st.bump(); });  // EXPECT: a9-lock
  return st.hits_;
}

void run_free_write(ThreadPool& pool, Stats& st) {
  pool.submit([&st] { tick(st); });  // EXPECT: a9-lock
}

void run_forwarded_write(ThreadPool& pool, Stats& st) {
  pool.submit([&st] { tick_twice(st); });  // EXPECT: a9-lock
}

}  // namespace fixture
