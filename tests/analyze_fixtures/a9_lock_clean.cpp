// srbsg-analyze fixture: clean twin of a9_lock_bad.cpp. The same
// submit-then-call shapes, but every reachable write is synchronized:
// a lock-guarded method, an atomic counter, and a free function that
// takes the object's mutex before writing. a9-lock must trust all of
// them and stay silent.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>

namespace fixture {

struct ThreadPool {
  template <class F>
  void submit(F&& fn) {
    std::forward<F>(fn)();
  }
};

struct Stats {
  void bump_locked() {
    std::lock_guard<std::mutex> g(m_);
    hits_ += 1;
  }
  void bump_atomic() { slots_.fetch_add(1); }
  std::mutex m_;
  unsigned long hits_ = 0;
  std::atomic<unsigned long> slots_{0};
};

void tick_guarded(Stats& st) {
  std::lock_guard<std::mutex> g(st.m_);
  st.hits_ += 1;
}

void run_locked(ThreadPool& pool, Stats& st) {
  pool.submit([&st] { st.bump_locked(); });
}

void run_atomic(ThreadPool& pool, Stats& st) {
  pool.submit([&st] { st.bump_atomic(); });
}

void run_guarded_free(ThreadPool& pool, Stats& st) {
  pool.submit([&st] { tick_guarded(st); });
}

}  // namespace fixture
