// Adaptive wear-leveling rate: the scheme hook, the controller + detector
// integration, and the defensive effect against concentration attacks.

#include <gtest/gtest.h>

#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "controller/memory_controller.hpp"
#include "wl/factory.hpp"
#include "wl/rbsg.hpp"
#include "wl/security_rbsg.hpp"

namespace srbsg {
namespace {

TEST(AdaptiveRate, BoostHalvesEffectiveInterval) {
  wl::RbsgConfig cfg;
  cfg.lines = 256;
  cfg.regions = 4;
  cfg.interval = 16;
  wl::RegionStartGap s(cfg);
  EXPECT_EQ(s.effective_interval(), 16u);
  s.set_rate_boost(2);
  EXPECT_EQ(s.effective_interval(), 4u);
  s.set_rate_boost(10);  // over-boost clamps at 1
  EXPECT_EQ(s.effective_interval(), 1u);
  s.set_rate_boost(0);
  EXPECT_EQ(s.effective_interval(), 16u);
}

TEST(AdaptiveRate, BoostedSchemeRemapsMoreOften) {
  wl::RbsgConfig cfg;
  cfg.lines = 256;
  cfg.regions = 4;
  cfg.interval = 16;
  wl::RegionStartGap calm(cfg), hot(cfg);
  hot.set_rate_boost(2);
  pcm::PcmBank bank_a(pcm::PcmConfig::scaled(256, u64{1} << 40), calm.physical_lines());
  pcm::PcmBank bank_b(pcm::PcmConfig::scaled(256, u64{1} << 40), hot.physical_lines());
  u64 calm_moves = 0, hot_moves = 0;
  for (int i = 0; i < 1000; ++i) {
    calm_moves += calm.write(La{0}, pcm::LineData::all_zero(), bank_a).movements;
    hot_moves += hot.write(La{0}, pcm::LineData::all_zero(), bank_b).movements;
  }
  EXPECT_NEAR(static_cast<double>(hot_moves), 4.0 * static_cast<double>(calm_moves),
              static_cast<double>(calm_moves));
}

TEST(AdaptiveRate, BulkPathHonorsBoost) {
  wl::SecurityRbsgConfig cfg;
  cfg.lines = 256;
  cfg.sub_regions = 8;
  cfg.inner_interval = 16;
  cfg.outer_interval = 32;
  wl::SecurityRbsg a(cfg), b(cfg);
  b.set_rate_boost(2);
  pcm::PcmBank bank_a(pcm::PcmConfig::scaled(256, u64{1} << 40), a.physical_lines());
  pcm::PcmBank bank_b(pcm::PcmConfig::scaled(256, u64{1} << 40), b.physical_lines());
  const auto slow = a.write_repeated(La{3}, pcm::LineData::all_zero(), 10'000, bank_a);
  const auto fast = b.write_repeated(La{3}, pcm::LineData::all_zero(), 10'000, bank_b);
  EXPECT_NEAR(static_cast<double>(fast.movements), 4.0 * static_cast<double>(slow.movements),
              static_cast<double>(slow.movements));
}

TEST(AdaptiveRate, BoostChangeMidStreamStaysConsistent) {
  // Raising and lowering the rate must never corrupt the mapping.
  wl::SecurityRbsgConfig cfg;
  cfg.lines = 128;
  cfg.sub_regions = 4;
  cfg.inner_interval = 8;
  cfg.outer_interval = 16;
  wl::SecurityRbsg s(cfg);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(128, u64{1} << 40), s.physical_lines());
  for (u64 la = 0; la < 128; ++la) {
    s.write(La{la}, pcm::LineData::mixed(0xD00D0000 + la), bank);
  }
  for (int epoch = 0; epoch < 20; ++epoch) {
    s.set_rate_boost(static_cast<u32>(epoch % 4));
    for (int i = 0; i < 500; ++i) {
      const u64 la = static_cast<u64>(i) % 128;
      s.write(La{la}, pcm::LineData::mixed(0xD00D0000 + la), bank);
    }
  }
  for (u64 la = 0; la < 128; ++la) {
    EXPECT_EQ(s.read(La{la}, bank).first.token, 0xD00D0000 + la) << la;
  }
}

TEST(DetectorIntegration, HammeringTriggersBoostThroughController) {
  const auto cfg = pcm::PcmConfig::scaled(1u << 12, u64{1} << 40);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kRbsg;
  spec.lines = 1u << 12;
  spec.regions = 8;
  spec.inner_interval = 64;
  ctl::MemoryController mc(cfg, wl::make_scheme(spec));
  wl::AttackDetectorConfig dcfg;
  dcfg.window = 4096;
  dcfg.threshold = 8.0;
  dcfg.max_boost = 4;
  mc.enable_detector(dcfg);
  mc.write_repeated(La{0}, pcm::LineData::mixed(), 10 * 4096);
  ASSERT_NE(mc.detector(), nullptr);
  EXPECT_GT(mc.detector()->boost(), 0u);
}

TEST(DetectorIntegration, ExtendsLifetimeAgainstRaaOnSlowScheme) {
  // A deliberately slow wear leveler (huge interval) dies quickly under
  // RAA; the detector boosts it back into a safe regime.
  const u64 lines = 1u << 12;
  const u64 endurance = 1u << 15;
  auto make = [&](bool with_detector) {
    wl::SchemeSpec spec;
    spec.kind = wl::SchemeKind::kRbsg;
    spec.lines = lines;
    spec.regions = 8;
    spec.inner_interval = 256;  // LVF = (513)*256 >> E: unsafe when calm
    auto mc = std::make_unique<ctl::MemoryController>(pcm::PcmConfig::scaled(lines, endurance),
                                                      wl::make_scheme(spec));
    if (with_detector) {
      wl::AttackDetectorConfig dcfg;
      dcfg.window = 4096;
      dcfg.threshold = 8.0;
      dcfg.max_boost = 6;
      mc->enable_detector(dcfg);
    }
    return mc;
  };
  auto mc_plain = make(false);
  attack::RepeatedAddressAttack raa_a(La{17});
  const auto undefended = run_attack(*mc_plain, raa_a, u64{1} << 34);
  ASSERT_TRUE(undefended.succeeded);

  auto mc_guarded = make(true);
  attack::RepeatedAddressAttack raa_b(La{17});
  const auto defended = run_attack(*mc_guarded, raa_b, u64{1} << 34);
  ASSERT_TRUE(defended.succeeded);

  EXPECT_GT(defended.lifetime.value(), 4 * undefended.lifetime.value());
}

}  // namespace
}  // namespace srbsg
