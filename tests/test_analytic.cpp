#include <gtest/gtest.h>

#include "analytic/lifetime_models.hpp"
#include "analytic/overhead.hpp"

namespace srbsg::analytic {
namespace {

TEST(LatencyModel, PaperValues) {
  const auto l = latencies_of(pcm::PcmConfig::paper_bank());
  EXPECT_DOUBLE_EQ(l.move0_ns, 250.0);
  EXPECT_DOUBLE_EQ(l.move1_ns, 1125.0);
  EXPECT_DOUBLE_EQ(l.swap00_ns, 500.0);
  EXPECT_DOUBLE_EQ(l.swap01_ns, 1375.0);
  EXPECT_DOUBLE_EQ(l.swap11_ns, 2250.0);
}

TEST(LatencyModel, IdealLifetimeIsAbout4850Days) {
  // Figs. 13-15 draw the ideal line just below 5000 days.
  const double days = ideal_lifetime_ns(pcm::PcmConfig::paper_bank()) / 86400e9;
  EXPECT_NEAR(days, 4854.0, 10.0);
}

TEST(LatencyModel, BaselineRaaDiesInUnderTwoMinutes) {
  // §II.B: "an adversary can render a memory line unusable in one minute".
  const double seconds = raa_baseline_ns(pcm::PcmConfig::paper_bank()) / 1e9;
  EXPECT_LT(seconds, 120.0);
  EXPECT_GT(seconds, 30.0);
}

TEST(RbsgModels, RaaLifetimeAtRecommendedConfig) {
  // 32 regions, ψ=100: E·(M+1) normal writes ≈ 151 days.
  const auto cfg = pcm::PcmConfig::paper_bank();
  const double days = raa_rbsg_ns(cfg, RbsgShape{32, 100}) / 86400e9;
  EXPECT_NEAR(days, 151.7, 2.0);
}

TEST(RbsgModels, RtaKillsInHundredsOfSeconds) {
  // Paper: 478 s at the recommended config; our attacker's cost model
  // lands in the same order (ALL-0 wear writes make it a bit faster).
  const auto cfg = pcm::PcmConfig::paper_bank();
  const auto b = rta_rbsg_ns(cfg, RbsgShape{32, 100});
  EXPECT_GT(b.total_ns / 1e9, 60.0);
  EXPECT_LT(b.total_ns / 1e9, 1000.0);
}

TEST(RbsgModels, RtaVsRaaSpeedupIsFourOrdersOfMagnitude) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  const RbsgShape s{32, 100};
  const double speedup = raa_rbsg_ns(cfg, s) / rta_rbsg_ns(cfg, s).total_ns;
  EXPECT_GT(speedup, 5'000.0);
  EXPECT_LT(speedup, 200'000.0);
}

TEST(RbsgModels, RtaFasterWithMoreRegions) {
  // Fig. 11's region trend: fewer lines per region mean shorter detection
  // rotations, so RTA kills faster.
  const auto cfg = pcm::PcmConfig::paper_bank();
  EXPECT_GT(rta_rbsg_ns(cfg, RbsgShape{32, 100}).total_ns,
            rta_rbsg_ns(cfg, RbsgShape{128, 100}).total_ns);
}

TEST(RbsgModels, RtaDetectionCostGrowsWithInterval) {
  // Documented deviation from the paper's narrative (EXPERIMENTS.md): in
  // a faithful implementation the per-bit detection sweep costs a full
  // region rotation ((M+1)·ψ writes), so a larger interval makes the
  // timing attack *slower*, while the wear phase is interval-free.
  const auto cfg = pcm::PcmConfig::paper_bank();
  const auto fast = rta_rbsg_ns(cfg, RbsgShape{32, 16});
  const auto slow = rta_rbsg_ns(cfg, RbsgShape{32, 100});
  EXPECT_LT(fast.detect_ns, slow.detect_ns);
  EXPECT_NEAR(fast.wear_ns / slow.wear_ns, 1.0, 0.15);
}

TEST(RbsgModels, ExactRaaFormBoundedBySmoothForm) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  for (u64 regions : {32u, 64u, 128u}) {
    const RbsgShape s{regions, 100};
    const double exact = raa_rbsg_exact_ns(cfg, s);
    const double smooth = raa_rbsg_ns(cfg, s);
    EXPECT_LT(exact, smooth * 1.15) << regions;
    EXPECT_GT(exact, smooth * 0.5) << regions;
  }
}

TEST(Sr2Models, RtaLifetimeTensOfHours) {
  // Paper: 178.8 h at 512 regions / ψ_in 64 / ψ_out 128. Our attacker
  // floods ALL-0 (strictly stronger), landing at ~30 h — same ballpark,
  // same trends (documented in EXPERIMENTS.md).
  const auto cfg = pcm::PcmConfig::paper_bank();
  const auto b = rta_sr2_ns(cfg, Sr2Shape{512, 64, 128});
  const double hours = b.total_ns / 3600e9;
  EXPECT_GT(hours, 10.0);
  EXPECT_LT(hours, 200.0);
}

TEST(Sr2Models, LifetimeDropsWithMoreSubRegionsAndLargerOuterInterval) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  EXPECT_GT(rta_sr2_ns(cfg, Sr2Shape{256, 64, 128}).total_ns,
            rta_sr2_ns(cfg, Sr2Shape{1024, 64, 128}).total_ns);
  EXPECT_GT(rta_sr2_ns(cfg, Sr2Shape{512, 64, 64}).total_ns,
            rta_sr2_ns(cfg, Sr2Shape{512, 64, 256}).total_ns);
}

TEST(Sr2Models, RaaUniformityScalesIdeal) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  const double months = raa_sr2_ns(cfg, 0.66) / (86400e9 * 30.44);
  EXPECT_NEAR(months, 105.0, 6.0);  // paper: "about 105 months"
}

TEST(SecurityRbsgModels, PaperFractionsReproduceFig14) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  const double days = security_rbsg_fraction_ns(cfg, 0.672) / 86400e9;
  EXPECT_NEAR(days, 0.672 * 4854.0, 20.0);
}

TEST(SecurityRbsgModels, SixStagesAreTheSecurityKnee) {
  // §V.C.1: "K >= 6 is capable to avoid information leakage ... when the
  // outer-level remapping interval is not larger than 132".
  const auto cfg = pcm::PcmConfig::paper_bank();
  SecurityRbsgShape s{512, 64, 128, 7};
  EXPECT_EQ(min_secure_stages(cfg, s), 6u);
  s.outer_interval = 132;
  EXPECT_EQ(min_secure_stages(cfg, s), 6u);
  s.outer_interval = 256;
  EXPECT_GT(min_secure_stages(cfg, s), 6u);
}

TEST(SecurityRbsgModels, MarginGrowsLinearlyWithStages) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  const SecurityRbsgShape s3{512, 64, 128, 3};
  const SecurityRbsgShape s6{512, 64, 128, 6};
  EXPECT_NEAR(dfn_security_margin(cfg, s6) / dfn_security_margin(cfg, s3), 2.0, 1e-9);
}

TEST(Extrapolate, ScalesByModelRatio) {
  EXPECT_DOUBLE_EQ(extrapolate_lifetime(10.0, 2.0, 8.0), 40.0);
}

TEST(Overhead, RecommendedConfigMatchesPaperScale) {
  const auto cfg = pcm::PcmConfig::paper_bank();
  const auto r = security_rbsg_overhead(cfg, OverheadShape{512, 64, 128, 7});
  // Paper: "about 2KB register for a 1GB bank".
  EXPECT_NEAR(static_cast<double>(r.register_bits) / 8.0 / 1024.0, 2.0, 0.5);
  // Paper: 0.5 MB of isRemap SRAM (one bit per line; the text's
  // "log2(N) bit" is a typo — 2^22 bits = 0.5 MB).
  EXPECT_EQ(r.isremap_sram_bits, u64{1} << 22);
  // One outer spare + one gap line per sub-region.
  EXPECT_EQ(r.spare_lines, 513u);
  // (3/8)·S·B² cubing gates.
  EXPECT_EQ(r.cubing_gates, 3 * 7 * 22 * 22 / 8);
  EXPECT_LT(r.spare_capacity_fraction, 0.001);
}

}  // namespace
}  // namespace srbsg::analytic
