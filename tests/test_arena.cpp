// Bank-reuse correctness: a run through the WorkerArena must be
// bit-identical to a run with a freshly constructed bank — same
// LifetimeOutcome, same per-line wear vectors — for every scheme,
// including the endurance-variation table-reuse path.

#include "sim/arena.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "attack/harness.hpp"
#include "controller/memory_controller.hpp"
#include "sim/sweep.hpp"
#include "wl/factory.hpp"

namespace srbsg::sim {
namespace {

constexpr wl::SchemeKind kAllSchemes[] = {
    wl::SchemeKind::kNone,       wl::SchemeKind::kStartGap, wl::SchemeKind::kRbsg,
    wl::SchemeKind::kSr1,        wl::SchemeKind::kSr2,      wl::SchemeKind::kMultiWaySr,
    wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kTable,
};

LifetimeConfig cfg_for(wl::SchemeKind kind, AttackKind attack = AttackKind::kRaa) {
  LifetimeConfig c;
  c.pcm = pcm::PcmConfig::scaled(512, 2048);
  c.scheme.kind = kind;
  c.scheme.lines = 512;
  c.scheme.regions = 8;
  c.scheme.inner_interval = 8;
  c.scheme.outer_interval = 16;
  c.scheme.stages = 7;
  c.scheme.seed = 3;
  c.attack = attack;
  c.write_budget = u64{1} << 34;
  return c;
}

void expect_outcomes_identical(const LifetimeOutcome& a, const LifetimeOutcome& b) {
  EXPECT_EQ(a.result.succeeded, b.result.succeeded);
  EXPECT_EQ(a.result.lifetime, b.result.lifetime);
  EXPECT_EQ(a.result.writes, b.result.writes);
  EXPECT_EQ(a.result.elapsed, b.result.elapsed);
  EXPECT_EQ(a.result.scheme, b.result.scheme);
  EXPECT_EQ(a.result.attacker, b.result.attacker);
  // Wear metrics are doubles computed from the same integer vectors; the
  // arithmetic is identical, so exact equality is required.
  EXPECT_EQ(a.wear.mean, b.wear.mean);
  EXPECT_EQ(a.wear.coefficient_of_variation, b.wear.coefficient_of_variation);
  EXPECT_EQ(a.wear.gini, b.wear.gini);
  EXPECT_EQ(a.wear.max_over_mean, b.wear.max_over_mean);
  EXPECT_EQ(a.wear.max, b.wear.max);
  EXPECT_EQ(a.wear.min, b.wear.min);
}

TEST(WorkerArena, FreshVsArenaIdenticalAcrossAllSchemes) {
  WorkerArena arena;
  // Dirty the arena's cache first so every scheme below reuses a stale
  // bank (different size, wear, failure state) rather than a pristine one.
  (void)run_lifetime(cfg_for(wl::SchemeKind::kRbsg), arena);
  for (wl::SchemeKind kind : kAllSchemes) {
    SCOPED_TRACE(wl::to_string(kind));
    const auto fresh = run_lifetime(cfg_for(kind));
    const auto reused = run_lifetime(cfg_for(kind), arena);
    expect_outcomes_identical(fresh, reused);
  }
  const auto stats = arena.stats();
  EXPECT_EQ(stats.acquires, 1u + std::size(kAllSchemes));
  EXPECT_EQ(stats.bank_builds, 1u);  // only the first run built a bank
  EXPECT_EQ(stats.bank_reuses, std::size(kAllSchemes));
}

TEST(WorkerArena, WearVectorsIdenticalAfterReuse) {
  for (wl::SchemeKind kind : kAllSchemes) {
    SCOPED_TRACE(wl::to_string(kind));
    const LifetimeConfig cfg = cfg_for(kind);

    auto fresh_scheme = wl::make_scheme(cfg.scheme);
    ctl::MemoryController fresh(cfg.pcm, std::move(fresh_scheme));
    auto fresh_attacker = make_attacker(cfg);
    (void)attack::run_attack(fresh, *fresh_attacker, cfg.write_budget);

    WorkerArena arena;
    // Pre-dirty the bank the arena will hand out.
    (void)run_lifetime(cfg_for(wl::SchemeKind::kSr1), arena);
    auto scheme = wl::make_scheme(cfg.scheme);
    const u64 physical = scheme->physical_lines();
    ctl::MemoryController reused(arena.acquire(cfg.pcm, physical), std::move(scheme));
    auto attacker = make_attacker(cfg);
    (void)attack::run_attack(reused, *attacker, cfg.write_budget);

    const auto a = fresh.bank().wear_counts();
    const auto b = reused.bank().wear_counts();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "wear diverged at line " << i;
    }
  }
}

TEST(WorkerArena, EnduranceVariationTableReusePathIdentical) {
  LifetimeConfig cfg = cfg_for(wl::SchemeKind::kSecurityRbsg);
  cfg.pcm.endurance_variation = 0.1;
  cfg.pcm.variation_seed = 99;

  WorkerArena arena;
  std::vector<LifetimeOutcome> arena_runs;
  for (u64 seed = 1; seed <= 3; ++seed) {
    LifetimeConfig c = cfg;
    c.seed = seed;
    c.scheme.seed = seed;
    arena_runs.push_back(run_lifetime(c, arena));
  }
  for (u64 seed = 1; seed <= 3; ++seed) {
    LifetimeConfig c = cfg;
    c.seed = seed;
    c.scheme.seed = seed;
    SCOPED_TRACE(seed);
    expect_outcomes_identical(run_lifetime(c), arena_runs[seed - 1]);
  }
  // The variation draw parameters never changed, so the table was sampled
  // exactly once even though the bank served three runs.
  const u64 physical = wl::make_scheme(cfg.scheme)->physical_lines();
  pcm::PcmBank bank = arena.acquire(cfg.pcm, physical);
  EXPECT_EQ(bank.endurance_rebuilds(), 1u);
}

TEST(WorkerArena, SweepIdenticalAcrossPoolSizeAndSharedArena) {
  std::vector<LifetimeConfig> configs;
  for (wl::SchemeKind kind :
       {wl::SchemeKind::kRbsg, wl::SchemeKind::kSr2, wl::SchemeKind::kSecurityRbsg}) {
    for (u64 seed = 1; seed <= 2; ++seed) {
      LifetimeConfig c = cfg_for(kind);
      c.seed = seed;
      c.scheme.seed = seed;
      configs.push_back(c);
    }
  }
  ThreadPool serial(1);
  ThreadPool wide(4);
  WorkerArena shared;
  const auto a = run_sweep(configs, serial);
  const auto b = run_sweep(configs, wide);
  const auto c = run_sweep(configs, wide, shared);
  const auto d = run_sweep(configs, wide, shared);  // arena already warm
  ASSERT_EQ(a.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_outcomes_identical(a[i].outcome, b[i].outcome);
    expect_outcomes_identical(a[i].outcome, c[i].outcome);
    expect_outcomes_identical(a[i].outcome, d[i].outcome);
  }
  const auto stats = shared.stats();
  EXPECT_EQ(stats.acquires, 2 * configs.size());
  EXPECT_LE(stats.bank_builds, wide.size() + 1);  // O(workers), not O(entries)
}

TEST(WorkerArena, StatsAndClear) {
  WorkerArena arena;
  const auto cfg = pcm::PcmConfig::scaled(64, 100);
  auto bank = arena.acquire(cfg, 64);
  EXPECT_EQ(arena.cached(), 0u);
  arena.release(std::move(bank));
  EXPECT_EQ(arena.cached(), 1u);
  auto again = arena.acquire(cfg, 64);
  const auto stats = arena.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.bank_builds, 1u);
  EXPECT_EQ(stats.bank_reuses, 1u);
  arena.release(std::move(again));
  arena.clear();
  EXPECT_EQ(arena.cached(), 0u);
}

}  // namespace
}  // namespace srbsg::sim
