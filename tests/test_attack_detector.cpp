#include "wl/attack_detector.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace srbsg::wl {
namespace {

AttackDetectorConfig small_cfg() {
  AttackDetectorConfig c;
  c.window = 1024;
  c.threshold = 4.0;
  c.max_boost = 3;
  c.tracked_regions = 16;
  return c;
}

TEST(AttackDetector, BenignUniformTrafficStaysCalm) {
  AttackDetector d(small_cfg(), 1u << 12);
  Rng rng(3);
  for (int i = 0; i < 20'000; ++i) {
    d.record(La{rng.next_below(1u << 12)});
  }
  EXPECT_EQ(d.boost(), 0u);
  EXPECT_GT(d.windows_observed(), 10u);
  EXPECT_EQ(d.trips(), 0u);
}

TEST(AttackDetector, HammeringTripsAndEscalates) {
  AttackDetector d(small_cfg(), 1u << 12);
  for (int i = 0; i < 5 * 1024; ++i) {
    d.record(La{42});
  }
  EXPECT_EQ(d.boost(), 3u);  // capped at max_boost
  EXPECT_GE(d.trips(), 3u);
}

TEST(AttackDetector, BoostDecaysWhenAttackStops) {
  AttackDetector d(small_cfg(), 1u << 12);
  for (int i = 0; i < 4 * 1024; ++i) d.record(La{42});
  const u32 peak = d.boost();
  EXPECT_GT(peak, 0u);
  Rng rng(5);
  for (int i = 0; i < 8 * 1024; ++i) d.record(La{rng.next_below(1u << 12)});
  EXPECT_LT(d.boost(), peak);
}

TEST(AttackDetector, BulkRecordingCrossesWindows) {
  AttackDetector d(small_cfg(), 1u << 12);
  const bool changed = d.record(La{7}, 10 * 1024);  // ten windows at once
  EXPECT_TRUE(changed);
  EXPECT_EQ(d.boost(), 3u);
  EXPECT_GE(d.windows_observed(), 10u);
}

TEST(AttackDetector, RecordReportsChangesOnly) {
  AttackDetector d(small_cfg(), 1u << 12);
  EXPECT_FALSE(d.record(La{1}));  // mid-window: no level change
  bool changed = false;
  for (int i = 0; i < 2048 && !changed; ++i) changed = d.record(La{1});
  EXPECT_TRUE(changed);
}

TEST(AttackDetector, Validation) {
  AttackDetectorConfig c = small_cfg();
  c.threshold = 0.5;
  EXPECT_THROW((AttackDetector{c, 1u << 12}), CheckFailure);
  c = small_cfg();
  c.tracked_regions = 7;
  EXPECT_THROW((AttackDetector{c, 1u << 12}), CheckFailure);
}

}  // namespace
}  // namespace srbsg::wl
