#include <gtest/gtest.h>

#include "analytic/lifetime_models.hpp"
#include "attack/bpa.hpp"
#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "wl/factory.hpp"

namespace srbsg::attack {
namespace {

ctl::MemoryController make_mc(const pcm::PcmConfig& cfg, const wl::SchemeSpec& spec) {
  return ctl::MemoryController(cfg, wl::make_scheme(spec));
}

TEST(Raa, KillsUnprotectedLineInExactlyEnduranceWrites) {
  const auto cfg = pcm::PcmConfig::scaled(64, 1000);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kNone;
  spec.lines = 64;
  auto mc = make_mc(cfg, spec);
  RepeatedAddressAttack atk(La{0});
  const auto res = run_attack(mc, atk, u64{1} << 30);
  ASSERT_TRUE(res.succeeded);
  EXPECT_EQ(res.writes, 1000u);
  // Normal data: every write costs the SET latency.
  EXPECT_EQ(res.lifetime, Ns{1000 * 1000});
}

TEST(Raa, RbsgLifetimeMatchesClosedForm) {
  const u64 lines = 1024, regions = 8, interval = 8, endurance = 4096;
  const auto cfg = pcm::PcmConfig::scaled(lines, endurance);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kRbsg;
  spec.lines = lines;
  spec.regions = regions;
  spec.inner_interval = interval;
  auto mc = make_mc(cfg, spec);
  RepeatedAddressAttack atk(La{0});
  const auto res = run_attack(mc, atk, u64{1} << 34);
  ASSERT_TRUE(res.succeeded);
  const double exact =
      analytic::raa_rbsg_exact_ns(cfg, analytic::RbsgShape{regions, interval});
  const double measured = static_cast<double>(res.lifetime.value());
  EXPECT_NEAR(measured / exact, 1.0, 0.15);
  // The smooth (paper-arithmetic) form is an upper bound within ~30%.
  const double smooth = analytic::raa_rbsg_ns(cfg, analytic::RbsgShape{regions, interval});
  EXPECT_LE(measured, smooth * 1.05);
  EXPECT_GE(measured, smooth * 0.6);
}

TEST(Raa, StartGapSpreadsWearBeforeFailure) {
  // Regime matters: the per-visit wear (M+1)·ψ must sit well below the
  // endurance or the line dies before it is ever moved (the LVF rule of
  // §II.B). Here (257)·2 = 514 << 8192.
  const auto cfg = pcm::PcmConfig::scaled(256, 8192);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kStartGap;
  spec.lines = 256;
  spec.inner_interval = 2;
  auto mc = make_mc(cfg, spec);
  RepeatedAddressAttack atk(La{0});
  const auto res = run_attack(mc, atk, u64{1} << 32);
  ASSERT_TRUE(res.succeeded);
  // Far more writes than E were needed because they spread.
  EXPECT_GT(res.writes, 100 * cfg.endurance);
}

TEST(Bpa, BeatsRaaAgainstOversizedRegions) {
  // Classic Seznec observation: with too few regions (large M), random
  // probing accumulates deposits on unlucky slots and kills one much
  // sooner than RAA's rotating target comes back around.
  const u64 lines = 4096, endurance = 1u << 14;
  const auto cfg = pcm::PcmConfig::scaled(lines, endurance);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kStartGap;  // single region: worst case
  spec.lines = lines;
  spec.inner_interval = 2;  // LVF = 8194 < E so RAA must rotate twice

  auto mc_bpa = make_mc(cfg, spec);
  BirthdayParadoxAttack bpa(123, /*hammer_cap=*/2 * (lines + 1) * 2);
  const auto res_bpa = run_attack(mc_bpa, bpa, u64{1} << 34);
  ASSERT_TRUE(res_bpa.succeeded);

  auto mc_raa = make_mc(cfg, spec);
  RepeatedAddressAttack raa(La{0});
  const auto res_raa = run_attack(mc_raa, raa, u64{1} << 34);
  ASSERT_TRUE(res_raa.succeeded);

  EXPECT_LT(res_bpa.lifetime.value(), res_raa.lifetime.value());
}

TEST(Bpa, SucceedsAgainstRbsg) {
  const auto cfg = pcm::PcmConfig::scaled(1024, 1u << 13);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kRbsg;
  spec.lines = 1024;
  spec.regions = 4;
  spec.inner_interval = 8;
  auto mc = make_mc(cfg, spec);
  BirthdayParadoxAttack bpa(7, 2 * (1024 / 4 + 1) * 8);
  const auto res = run_attack(mc, bpa, u64{1} << 34);
  EXPECT_TRUE(res.succeeded);
  EXPECT_FALSE(res.detail.empty());
}

TEST(Harness, RespectsBudget) {
  const auto cfg = pcm::PcmConfig::scaled(64, u64{1} << 40);
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kNone;
  spec.lines = 64;
  auto mc = make_mc(cfg, spec);
  RepeatedAddressAttack atk(La{0});
  const auto res = run_attack(mc, atk, 5000);
  EXPECT_FALSE(res.succeeded);
  EXPECT_LE(res.writes, 5000u + (u64{1} << 20));  // one chunk of slack
}

}  // namespace
}  // namespace srbsg::attack
