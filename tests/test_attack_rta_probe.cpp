#include "attack/rta_probe.hpp"

#include <gtest/gtest.h>

#include "attack/harness.hpp"
#include "wl/security_rbsg.hpp"

namespace srbsg::attack {
namespace {

wl::SecurityRbsgConfig scheme_cfg(u64 lines = 1024, u32 stages = 7) {
  wl::SecurityRbsgConfig c;
  c.lines = lines;
  c.sub_regions = 16;
  // Coprime-ish intervals so pure outer movements are observable (when
  // ψ_in divides ψ_out every outer boundary carries an inner coincidence
  // and the probe would have nothing clean to sample).
  c.inner_interval = 3;
  c.outer_interval = 8;
  c.stages = stages;
  c.seed = 13;
  return c;
}

TEST(RtaProbe, MigrationBitStreamCarriesNoStructure) {
  const auto cfg = scheme_cfg();
  ctl::MemoryController mc(pcm::PcmConfig::scaled(cfg.lines, u64{1} << 40),
                           std::make_unique<wl::SecurityRbsg>(cfg));
  RtaProbeParams p;
  p.lines = cfg.lines;
  p.outer_interval = cfg.outer_interval;
  p.probe_bit = 3;
  p.probe_movements = 4096;
  RtaProbeAttacker atk(p);
  // Budget covers the probe but not a BPA kill at huge endurance.
  const auto res = run_attack(mc, atk, 2'000'000);
  EXPECT_FALSE(res.succeeded);
  // Balanced pattern bit -> balanced stream; re-keying -> no replay.
  EXPECT_NEAR(atk.bit_bias(), 0.5, 0.15);
  EXPECT_NEAR(atk.round_agreement(), 0.5, 0.15);
}

TEST(RtaProbe, FallbackEventuallyWearsOutLikeBpa) {
  const auto cfg = scheme_cfg();
  ctl::MemoryController mc(pcm::PcmConfig::scaled(cfg.lines, 1u << 12),
                           std::make_unique<wl::SecurityRbsg>(cfg));
  RtaProbeParams p;
  p.lines = cfg.lines;
  p.outer_interval = cfg.outer_interval;
  p.probe_movements = 512;
  RtaProbeAttacker atk(p);
  const auto res = run_attack(mc, atk, u64{1} << 34);
  // With a small endurance the BPA fallback does finish the job — but
  // only by brute volume, not by timing inference.
  EXPECT_TRUE(res.succeeded) << res.detail;
  EXPECT_GT(res.writes, (u64{1} << 12) * 32);
}

TEST(RtaProbe, SecurityRbsgOutlastsRbsgUnderEqualBudget) {
  // Same bank, same budget: RTA kills RBSG; Security RBSG survives.
  const u64 lines = 1024, endurance = 1u << 14;

  ctl::MemoryController mc_srbsg(pcm::PcmConfig::scaled(lines, endurance),
                                 std::make_unique<wl::SecurityRbsg>(scheme_cfg(lines)));
  RtaProbeParams p;
  p.lines = lines;
  p.outer_interval = 8;
  p.probe_movements = 1024;
  RtaProbeAttacker probe(p);
  // An RTA on an equally-sized RBSG bank needs ~50k writes; grant several
  // times that. The BPA fallback needs ~1M+ at this endurance.
  const u64 budget = 300'000;
  const auto res_srbsg = run_attack(mc_srbsg, probe, budget);
  EXPECT_FALSE(res_srbsg.succeeded) << res_srbsg.detail;
}

}  // namespace
}  // namespace srbsg::attack
