#include "attack/rta_rbsg.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "wl/rbsg.hpp"

namespace srbsg::attack {
namespace {

struct AttackSetup {
  u64 lines = 4096;
  u64 regions = 8;
  u64 interval = 8;
  u64 endurance = 16384;  // rounds = E/(M·ψ) = 4
  u64 seed = 3;

  [[nodiscard]] wl::RbsgConfig scheme_cfg() const {
    wl::RbsgConfig c;
    c.lines = lines;
    c.regions = regions;
    c.interval = interval;
    c.seed = seed;
    return c;
  }
  [[nodiscard]] pcm::PcmConfig pcm_cfg() const {
    return pcm::PcmConfig::scaled(lines, endurance);
  }
  [[nodiscard]] RtaRbsgParams params() const {
    RtaRbsgParams p;
    p.lines = lines;
    p.regions = regions;
    p.interval = interval;
    p.endurance = endurance;
    p.target = La{0};
    return p;
  }
};

TEST(RtaRbsg, DetectsTruePredecessorSequence) {
  // The attacker must recover Li−k = f⁻¹(f(Li) − k) purely from timing.
  const AttackSetup s;
  auto scheme = std::make_unique<wl::RegionStartGap>(s.scheme_cfg());
  const wl::RegionStartGap* raw = scheme.get();
  ctl::MemoryController mc(s.pcm_cfg(), std::move(scheme));

  RtaRbsgAttacker atk(s.params());
  const auto res = run_attack(mc, atk, u64{1} << 32);
  ASSERT_TRUE(res.succeeded) << res.detail;

  const u64 m = s.lines / s.regions;
  const u64 ia0 = raw->randomize(0);
  const u64 base = ia0 - (ia0 % m);
  const u64 off0 = ia0 % m;
  const auto& seq = atk.detected_sequence();
  ASSERT_GE(seq.size(), 3u);
  for (std::size_t k = 1; k <= seq.size(); ++k) {
    const u64 expected = raw->derandomize(base + (off0 + m - k) % m);
    EXPECT_EQ(seq[k - 1], expected) << "Li-" << k;
  }
}

TEST(RtaRbsg, ConcentratesWearOnOneLine) {
  const AttackSetup s;
  ctl::MemoryController mc(s.pcm_cfg(),
                           std::make_unique<wl::RegionStartGap>(s.scheme_cfg()));
  RtaRbsgAttacker atk(s.params());
  const auto res = run_attack(mc, atk, u64{1} << 32);
  ASSERT_TRUE(res.succeeded);
  const Pa dead = mc.failure().line;
  EXPECT_GE(mc.bank().wear(dead), s.endurance);
  // The kill must come from concentration, not from grinding the whole
  // space to death: mean wear stays far below the endurance.
  double total = 0;
  for (u64 w : mc.bank().wear_counts()) total += static_cast<double>(w);
  const double mean = total / static_cast<double>(mc.bank().total_lines());
  EXPECT_LT(mean, static_cast<double>(s.endurance) / 4.0);
}

TEST(RtaRbsg, OrdersOfMagnitudeFasterThanRaa) {
  // The paper's headline: RTA >> RAA against RBSG (27435× at full scale).
  const AttackSetup s;
  ctl::MemoryController mc_rta(s.pcm_cfg(),
                               std::make_unique<wl::RegionStartGap>(s.scheme_cfg()));
  RtaRbsgAttacker rta(s.params());
  const auto res_rta = run_attack(mc_rta, rta, u64{1} << 34);
  ASSERT_TRUE(res_rta.succeeded);

  ctl::MemoryController mc_raa(s.pcm_cfg(),
                               std::make_unique<wl::RegionStartGap>(s.scheme_cfg()));
  RepeatedAddressAttack raa(La{0});
  const auto res_raa = run_attack(mc_raa, raa, u64{1} << 34);
  ASSERT_TRUE(res_raa.succeeded);

  EXPECT_LT(res_rta.lifetime.value() * 4, res_raa.lifetime.value());
}

TEST(RtaRbsg, WorksAcrossSeeds) {
  for (u64 seed : {11u, 22u, 33u}) {
    AttackSetup s;
    s.seed = seed;
    s.lines = 2048;
    s.regions = 4;
    s.endurance = 8192;  // rounds = 2
    ctl::MemoryController mc(s.pcm_cfg(),
                             std::make_unique<wl::RegionStartGap>(s.scheme_cfg()));
    RtaRbsgAttacker atk(s.params());
    const auto res = run_attack(mc, atk, u64{1} << 32);
    EXPECT_TRUE(res.succeeded) << "seed " << seed << ": " << res.detail;
  }
}

TEST(RtaRbsg, WorksWithMatrixRandomizer) {
  AttackSetup s;
  auto cfg = s.scheme_cfg();
  cfg.randomizer = wl::RbsgConfig::Randomizer::kMatrix;
  ctl::MemoryController mc(s.pcm_cfg(), std::make_unique<wl::RegionStartGap>(cfg));
  RtaRbsgAttacker atk(s.params());
  const auto res = run_attack(mc, atk, u64{1} << 32);
  EXPECT_TRUE(res.succeeded) << res.detail;
}

TEST(RtaRbsg, FasterWithFewerRegions) {
  // Paper Fig. 11: more regions -> smaller M -> faster RTA.
  auto lifetime_for = [](u64 regions) {
    AttackSetup s;
    s.regions = regions;
    ctl::MemoryController mc(s.pcm_cfg(),
                             std::make_unique<wl::RegionStartGap>(s.scheme_cfg()));
    RtaRbsgAttacker atk(s.params());
    const auto res = run_attack(mc, atk, u64{1} << 34);
    EXPECT_TRUE(res.succeeded);
    return res.lifetime.value();
  };
  EXPECT_GT(lifetime_for(4), lifetime_for(16));
}

TEST(RtaRbsg, RejectsBadParams) {
  RtaRbsgParams p;
  p.lines = 100;  // not a power of two
  p.regions = 4;
  p.interval = 8;
  p.endurance = 100;
  EXPECT_THROW(RtaRbsgAttacker{p}, CheckFailure);
}

}  // namespace
}  // namespace srbsg::attack
