#include <gtest/gtest.h>

#include "common/bitops.hpp"

#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "attack/rta_sr1.hpp"
#include "attack/rta_sr2.hpp"
#include "wl/security_refresh.hpp"
#include "wl/two_level_sr.hpp"

namespace srbsg::attack {
namespace {

TEST(RtaSr1, KillsOneLevelSr) {
  // The per-round detection (B pattern passes of N/2 writes) must fit in
  // the round's guaranteed swap-active first half, i.e. ψ ≳ 2·log2(N) —
  // comfortably true at paper scale and enforced in scaled runs.
  const u64 lines = 1024, interval = 16, endurance = 16384;
  wl::SecurityRefreshConfig scfg;
  scfg.lines = lines;
  scfg.interval = interval;
  scfg.seed = 5;
  ctl::MemoryController mc(pcm::PcmConfig::scaled(lines, endurance),
                           std::make_unique<wl::SecurityRefresh>(scfg));
  RtaSr1Params p;
  p.lines = lines;
  p.interval = interval;
  p.endurance = endurance;
  RtaSr1Attacker atk(p);
  const auto res = run_attack(mc, atk, u64{1} << 32);
  ASSERT_TRUE(res.succeeded) << res.detail;
  EXPECT_GE(atk.rounds_attacked(), 1u);
}

TEST(RtaSr1, DetectedKeyMatchesSchemeState) {
  const u64 lines = 512, interval = 16, endurance = 16384;
  wl::SecurityRefreshConfig scfg;
  scfg.lines = lines;
  scfg.interval = interval;
  scfg.seed = 9;
  auto scheme = std::make_unique<wl::SecurityRefresh>(scfg);
  const wl::SecurityRefresh* raw = scheme.get();
  ctl::MemoryController mc(pcm::PcmConfig::scaled(lines, endurance), std::move(scheme));
  RtaSr1Params p;
  p.lines = lines;
  p.interval = interval;
  p.endurance = endurance;
  RtaSr1Attacker atk(p);
  const auto res = run_attack(mc, atk, u64{1} << 32);
  ASSERT_TRUE(res.succeeded) << res.detail;
  // The last completed detection read the current round's key delta. If
  // the run ended in a wear phase (the common case), it must match.
  const u64 true_key = raw->region().key_c() ^ raw->region().key_p();
  EXPECT_EQ(atk.detected_key(), true_key) << res.detail;
}

TEST(RtaSr1, MuchFasterThanRaa) {
  // Under one-level SR, the RAA target gets one round's worth of writes
  // per slot visit (N·ψ = 8192), so the endurance must cover several
  // visits or RAA degenerates to an instant kill.
  const u64 lines = 1024, interval = 16, endurance = 131072;
  auto make = [&]() {
    wl::SecurityRefreshConfig scfg;
    scfg.lines = lines;
    scfg.interval = interval;
    scfg.seed = 5;
    return ctl::MemoryController(pcm::PcmConfig::scaled(lines, endurance),
                                 std::make_unique<wl::SecurityRefresh>(scfg));
  };
  auto mc_rta = make();
  RtaSr1Params p;
  p.lines = lines;
  p.interval = interval;
  p.endurance = endurance;
  RtaSr1Attacker rta(p);
  const auto res_rta = run_attack(mc_rta, rta, u64{1} << 34);
  ASSERT_TRUE(res_rta.succeeded);

  auto mc_raa = make();
  RepeatedAddressAttack raa(La{0});
  const auto res_raa = run_attack(mc_raa, raa, u64{1} << 34);
  ASSERT_TRUE(res_raa.succeeded);

  EXPECT_LT(res_rta.lifetime.value() * 4, res_raa.lifetime.value());
}

struct Sr2Setup {
  u64 lines = 1024;
  u64 sub_regions = 16;
  u64 inner_interval = 4;
  u64 outer_interval = 8;
  u64 endurance = 2048;
  u64 seed = 7;

  [[nodiscard]] wl::TwoLevelSrConfig scheme_cfg() const {
    wl::TwoLevelSrConfig c;
    c.lines = lines;
    c.sub_regions = sub_regions;
    c.inner_interval = inner_interval;
    c.outer_interval = outer_interval;
    c.seed = seed;
    return c;
  }
  [[nodiscard]] RtaSr2Params params() const {
    RtaSr2Params p;
    p.lines = lines;
    p.sub_regions = sub_regions;
    p.inner_interval = inner_interval;
    p.outer_interval = outer_interval;
    p.endurance = endurance;
    return p;
  }
};

TEST(RtaSr2, KillsTwoLevelSr) {
  const Sr2Setup s;
  ctl::MemoryController mc(pcm::PcmConfig::scaled(s.lines, s.endurance),
                           std::make_unique<wl::TwoLevelSecurityRefresh>(s.scheme_cfg()));
  RtaSr2Attacker atk(s.params());
  const auto res = run_attack(mc, atk, u64{1} << 34);
  ASSERT_TRUE(res.succeeded) << res.detail;
  EXPECT_GE(atk.rounds_attacked(), 1u);
}

TEST(RtaSr2, FailedLineIsInTargetSubRegion) {
  const Sr2Setup s;
  auto scheme = std::make_unique<wl::TwoLevelSecurityRefresh>(s.scheme_cfg());
  const wl::TwoLevelSecurityRefresh* raw = scheme.get();
  ctl::MemoryController mc(pcm::PcmConfig::scaled(s.lines, s.endurance), std::move(scheme));
  RtaSr2Attacker atk(s.params());
  const auto res = run_attack(mc, atk, u64{1} << 34);
  ASSERT_TRUE(res.succeeded) << res.detail;
  const u64 m = s.lines / s.sub_regions;
  const u32 region_bits = log2_floor(m);
  const u64 tracked_la = atk.current_prefix() << region_bits;
  const u64 target_region = raw->to_ia(tracked_la) / m;
  EXPECT_EQ(mc.failure().line.value() / m, target_region) << res.detail;
}

TEST(RtaSr2, MuchFasterThanRaa) {
  const Sr2Setup s;
  ctl::MemoryController mc_rta(
      pcm::PcmConfig::scaled(s.lines, s.endurance),
      std::make_unique<wl::TwoLevelSecurityRefresh>(s.scheme_cfg()));
  RtaSr2Attacker rta(s.params());
  const auto res_rta = run_attack(mc_rta, rta, u64{1} << 34);
  ASSERT_TRUE(res_rta.succeeded);

  ctl::MemoryController mc_raa(
      pcm::PcmConfig::scaled(s.lines, s.endurance),
      std::make_unique<wl::TwoLevelSecurityRefresh>(s.scheme_cfg()));
  RepeatedAddressAttack raa(La{0});
  const auto res_raa = run_attack(mc_raa, raa, u64{1} << 36);
  ASSERT_TRUE(res_raa.succeeded);

  EXPECT_LT(res_rta.lifetime.value() * 2, res_raa.lifetime.value());
}

TEST(RtaSr2, LifetimeDropsWithMoreSubRegions) {
  // Paper Fig. 12: more sub-regions -> fewer lines to wear out -> faster.
  auto lifetime_for = [](u64 sub_regions) {
    Sr2Setup s;
    s.sub_regions = sub_regions;
    ctl::MemoryController mc(
        pcm::PcmConfig::scaled(s.lines, s.endurance),
        std::make_unique<wl::TwoLevelSecurityRefresh>(s.scheme_cfg()));
    RtaSr2Attacker atk(s.params());
    const auto res = run_attack(mc, atk, u64{1} << 34);
    EXPECT_TRUE(res.succeeded);
    return res.lifetime.value();
  };
  EXPECT_GT(lifetime_for(8), lifetime_for(32));
}

}  // namespace
}  // namespace srbsg::attack
