// Auditor self-test: the invariant auditor is only worth anything if it
// actually fires, so a deliberately corruptible mock scheme breaks each
// invariant class in isolation — duplicated physical line, out-of-range
// translation, unaccounted bank write, phantom movement, stale gap
// register — and every fault must trip the matching check, while the
// clean configuration must audit quietly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "audit/auditing_wear_leveler.hpp"
#include "common/check.hpp"
#include "controller/memory_controller.hpp"
#include "wl/factory.hpp"

namespace srbsg::audit {
namespace {

enum class Fault : u8 {
  kNone,
  kDuplicatePa,       ///< two logical lines translate to one physical line
  kOutOfRangePa,      ///< translate() escapes the physical address space
  kUnaccountedWrite,  ///< a bank write the outcome never reports
  kPhantomMovement,   ///< a reported movement that never touched the bank
  kDroppedMovement,   ///< a bank movement the outcome never reports
  kStaleGap,          ///< scheme-state validator hook must fire
};

/// Identity scheme with one switchable defect. The bank writes stay
/// honest (in range) for the translation faults so each test trips
/// exactly one invariant class.
class CorruptibleScheme final : public wl::WearLeveler {
 public:
  explicit CorruptibleScheme(u64 lines) : lines_(lines) {}

  Fault fault{Fault::kNone};

  [[nodiscard]] std::string_view name() const override { return "corruptible"; }
  [[nodiscard]] u64 logical_lines() const override { return lines_; }
  [[nodiscard]] u64 physical_lines() const override { return lines_; }

  [[nodiscard]] Pa translate(La la) const override {
    switch (fault) {
      case Fault::kDuplicatePa:
        return Pa{la.value() % 4};
      case Fault::kOutOfRangePa:
        return Pa{lines_ + la.value()};
      default:
        return Pa{la.value()};
    }
  }

  wl::WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override {
    wl::WriteOutcome out;
    out.total = bank.write(Pa{la.value()}, data);
    switch (fault) {
      case Fault::kUnaccountedWrite:
        // A "secret" remap the ledger never hears about.
        bank.write(Pa{(la.value() + 1) % lines_}, data);
        break;
      case Fault::kPhantomMovement:
        out.movements = 1;
        break;
      case Fault::kDroppedMovement:
        bank.move_line(Pa{la.value()}, Pa{(la.value() + 1) % lines_});
        break;
      default:
        break;
    }
    return out;
  }

  void validate_state() const override {
    check_le(gap, lines_, "corruptible: stale gap register");
  }

  /// Fault injection surface for kStaleGap.
  u64 gap{0};

 private:
  u64 lines_;
};

constexpr u64 kLines = 64;

struct Harness {
  explicit Harness(AuditConfig cfg = {.cadence = 1}) {
    auto scheme = std::make_unique<CorruptibleScheme>(kLines);
    raw = scheme.get();
    audited = std::make_unique<AuditingWearLeveler>(std::move(scheme), cfg);
    bank = std::make_unique<pcm::PcmBank>(pcm::PcmConfig::scaled(kLines, u64{1} << 40),
                                          kLines);
  }

  wl::WriteOutcome write_one(u64 la = 3) {
    return audited->write(La{la}, pcm::LineData::mixed(la), *bank);
  }

  CorruptibleScheme* raw{nullptr};
  std::unique_ptr<AuditingWearLeveler> audited;
  std::unique_ptr<pcm::PcmBank> bank;
};

TEST(AuditSelfTest, CleanSchemeAuditsQuietly) {
  Harness h;
  for (u64 i = 0; i < 200; ++i) {
    ASSERT_NO_THROW(h.write_one(i % kLines));
  }
  EXPECT_EQ(h.audited->stats().audits_run, 200u);
  EXPECT_EQ(h.audited->stats().writes_seen, 200u);
  ASSERT_NO_THROW(h.audited->audit_now(*h.bank));
}

TEST(AuditSelfTest, DuplicatePhysicalLineTripsTranslationAudit) {
  Harness h;
  h.raw->fault = Fault::kDuplicatePa;
  try {
    h.write_one();
    FAIL() << "duplicate PA not detected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate physical line"), std::string::npos)
        << e.what();
  }
}

TEST(AuditSelfTest, OutOfRangeTranslationTripsTranslationAudit) {
  Harness h;
  h.raw->fault = Fault::kOutOfRangePa;
  try {
    h.write_one();
    FAIL() << "out-of-range PA not detected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("physical address space"), std::string::npos)
        << e.what();
  }
}

TEST(AuditSelfTest, UnaccountedBankWriteTripsConservation) {
  Harness h;
  h.raw->fault = Fault::kUnaccountedWrite;
  try {
    h.write_one();
    FAIL() << "unaccounted bank write not detected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("ledger"), std::string::npos) << e.what();
  }
}

TEST(AuditSelfTest, PhantomMovementTripsConservation) {
  Harness h;
  h.raw->fault = Fault::kPhantomMovement;
  EXPECT_THROW(h.write_one(), CheckFailure);
}

TEST(AuditSelfTest, DroppedMovementTripsConservation) {
  Harness h;
  h.raw->fault = Fault::kDroppedMovement;
  EXPECT_THROW(h.write_one(), CheckFailure);
}

TEST(AuditSelfTest, StaleGapTripsSchemeStateValidator) {
  Harness h;
  h.raw->fault = Fault::kStaleGap;
  h.raw->gap = kLines + 1;
  try {
    h.write_one();
    FAIL() << "stale gap not detected";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("stale gap"), std::string::npos) << e.what();
  }
}

TEST(AuditSelfTest, SampledWindowModeStillCatchesDuplicates) {
  // Force the sampled path by setting the full-scan limit below the line
  // count; the %4 duplication collides inside any window of >= 5 lines.
  AuditConfig cfg;
  cfg.cadence = 1;
  cfg.full_scan_limit = 16;
  cfg.sample_windows = 4;
  cfg.window_lines = 16;
  Harness h(cfg);
  h.raw->fault = Fault::kDuplicatePa;
  EXPECT_THROW(h.write_one(), CheckFailure);
}

TEST(AuditSelfTest, CadenceZeroNeverAuditsAutomatically) {
  Harness h(AuditConfig{.cadence = 0});
  h.raw->fault = Fault::kDuplicatePa;
  for (u64 i = 0; i < 50; ++i) {
    ASSERT_NO_THROW(h.write_one(i % kLines));
  }
  EXPECT_EQ(h.audited->stats().audits_run, 0u);
  EXPECT_THROW(h.audited->audit_now(*h.bank), CheckFailure);
}

TEST(AuditSelfTest, CadenceBatchesWrites) {
  AuditConfig cfg;
  cfg.cadence = 10;
  Harness h(cfg);
  for (u64 i = 0; i < 95; ++i) {
    h.write_one(i % kLines);
  }
  EXPECT_EQ(h.audited->stats().audits_run, 9u);
}

TEST(AuditSelfTest, ForwardsSchemeInterface) {
  Harness h;
  EXPECT_EQ(h.audited->name(), "audited(corruptible)");
  EXPECT_EQ(h.audited->logical_lines(), kLines);
  EXPECT_EQ(h.audited->physical_lines(), kLines);
  EXPECT_EQ(h.audited->translate(La{5}).value(), 5u);
  EXPECT_EQ(h.audited->writes_per_movement(), 1u);
}

TEST(AuditSelfTest, WorksInsideMemoryControllerWithRealScheme) {
  // End-to-end: a real factory scheme under a controller, audited on every
  // write, survives mixed traffic and a final explicit audit.
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = 256;
  spec.regions = 8;
  spec.inner_interval = 5;
  spec.outer_interval = 9;
  spec.stages = 3;
  spec.seed = 11;
  auto audited = make_audited(wl::make_scheme(spec), AuditConfig{.cadence = 1});
  auto* aud = audited.get();
  ctl::MemoryController mc(pcm::PcmConfig::scaled(256, u64{1} << 40), std::move(audited));
  for (u64 i = 0; i < 3000; ++i) {
    mc.write(La{(i * 37) % 256}, pcm::LineData::mixed(i));
  }
  mc.write_repeated(La{17}, pcm::LineData::mixed(99), 500);
  EXPECT_GT(aud->stats().audits_run, 0u);
  ASSERT_NO_THROW(aud->audit_now(mc.bank()));
}

}  // namespace
}  // namespace srbsg::audit
