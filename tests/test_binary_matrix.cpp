#include "mapping/binary_matrix.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "mapping/quality.hpp"

namespace srbsg::mapping {
namespace {

TEST(Gf2, MatvecIdentity) {
  std::vector<u64> rows = {1, 2, 4, 8};  // identity
  for (u64 x = 0; x < 16; ++x) EXPECT_EQ(gf2_matvec(rows, x), x);
}

TEST(Gf2, InvertIdentity) {
  std::vector<u64> rows = {1, 2, 4, 8};
  EXPECT_EQ(gf2_invert(rows, 4), rows);
}

TEST(Gf2, SingularDetected) {
  std::vector<u64> rows = {1, 1, 4, 8};  // duplicate rows -> singular
  EXPECT_TRUE(gf2_invert(rows, 4).empty());
}

TEST(Gf2, InverseComposesToIdentity) {
  Rng rng(9);
  BinaryMatrixMapper m(10, rng);
  for (u64 x = 0; x < m.domain_size(); ++x) {
    EXPECT_EQ(m.unmap(m.map(x)), x);
  }
}

TEST(BinaryMatrixMapper, IsBijective) {
  Rng rng(10);
  BinaryMatrixMapper m(12, rng);
  EXPECT_TRUE(verify_bijection(m));
}

TEST(BinaryMatrixMapper, ZeroIsFixedPoint) {
  // Linear maps always fix zero — a known (documented) weakness compared
  // with a keyed Feistel network.
  Rng rng(11);
  BinaryMatrixMapper m(16, rng);
  EXPECT_EQ(m.map(0), 0u);
}

TEST(BinaryMatrixMapper, DifferentSeedsDiffer) {
  Rng r1(12), r2(13);
  BinaryMatrixMapper a(14, r1), b(14, r2);
  int diff = 0;
  for (u64 x = 1; x < 1000; ++x) {
    if (a.map(x) != b.map(x)) ++diff;
  }
  EXPECT_GT(diff, 900);
}

TEST(BinaryMatrixMapper, RejectsBadWidth) {
  Rng rng(14);
  EXPECT_THROW(BinaryMatrixMapper(0, rng), CheckFailure);
  EXPECT_THROW(BinaryMatrixMapper(63, rng), CheckFailure);
}

}  // namespace
}  // namespace srbsg::mapping
