#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace srbsg {
namespace {

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(u64{1} << 40));
  EXPECT_FALSE(is_pow2((u64{1} << 40) + 1));
}

TEST(Bitops, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(u64{1} << 22), 22u);
  EXPECT_EQ(log2_floor(~u64{0}), 63u);
}

TEST(Bitops, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(u64{1} << 22), 22u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(64), ~u64{0});
}

TEST(Bitops, BitOf) {
  EXPECT_EQ(bit_of(0b1010, 0), 0u);
  EXPECT_EQ(bit_of(0b1010, 1), 1u);
  EXPECT_EQ(bit_of(0b1010, 3), 1u);
  EXPECT_EQ(bit_of(u64{1} << 63, 63), 1u);
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
}

TEST(Bitops, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

}  // namespace
}  // namespace srbsg
