#include <gtest/gtest.h>

#include "analytic/lifetime_models.hpp"
#include "attack/bpa.hpp"
#include "attack/harness.hpp"
#include "wl/factory.hpp"

namespace srbsg::analytic {
namespace {

TEST(BpaProbes, OneHitIsOneProbe) { EXPECT_DOUBLE_EQ(bpa_expected_probes(1000, 1), 1.0); }

TEST(BpaProbes, TwoHitsMatchBirthdayBound) {
  // Classic birthday: ~sqrt(2·bins·ln...) ≈ the Poisson-tail solution;
  // for 365 bins the expected first collision sits in the 20-40 range.
  const double probes = bpa_expected_probes(365, 2);
  EXPECT_GT(probes, 15.0);
  EXPECT_LT(probes, 45.0);
}

TEST(BpaProbes, BeatsExhaustiveCoverage) {
  // n(k) ~ bins^((k-1)/k)·(k!)^(1/k): monotone in k but always far below
  // the bins·k probes an attacker without the birthday advantage needs.
  const double n2 = bpa_expected_probes(4096, 2);
  const double n4 = bpa_expected_probes(4096, 4);
  const double n8 = bpa_expected_probes(4096, 8);
  EXPECT_LT(n2, n4);
  EXPECT_LT(n4, n8);
  EXPECT_LT(n2, 4096.0 * 2);
  EXPECT_LT(n4, 4096.0 * 4);
  EXPECT_LT(n8, 4096.0 * 8);
}

TEST(BpaProbes, MoreBinsNeedMoreProbes) {
  EXPECT_LT(bpa_expected_probes(1024, 4), bpa_expected_probes(16384, 4));
}

TEST(BpaModel, TracksSimulationWithinFactorTwo) {
  const u64 lines = 4096, interval = 2, endurance = 1u << 14;
  const auto cfg = pcm::PcmConfig::scaled(lines, endurance);
  const RbsgShape shape{1, interval};

  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kStartGap;
  spec.lines = lines;
  spec.inner_interval = interval;

  double total = 0.0;
  constexpr int kRuns = 3;
  for (int run = 0; run < kRuns; ++run) {
    ctl::MemoryController mc(cfg, wl::make_scheme(spec));
    attack::BirthdayParadoxAttack bpa(100 + static_cast<u64>(run),
                                      2 * (lines + 1) * interval);
    const auto res = run_attack(mc, bpa, u64{1} << 36);
    ASSERT_TRUE(res.succeeded);
    total += static_cast<double>(res.lifetime.value());
  }
  const double measured = total / kRuns;
  const double model = bpa_rbsg_ns(cfg, shape);
  EXPECT_GT(measured / model, 0.4);
  EXPECT_LT(measured / model, 2.5);
}

TEST(BpaModel, PaperScaleBpaBeatsRaaOnUnderRegionedRbsg) {
  // Seznec's point, in the closed forms: with too few regions, BPA kills
  // RBSG much sooner than RAA.
  const auto cfg = pcm::PcmConfig::paper_bank();
  const RbsgShape big_regions{4, 100};  // M = 2^20: far beyond the BPA rule
  EXPECT_LT(bpa_rbsg_ns(cfg, big_regions), raa_rbsg_ns(cfg, big_regions));
  // With the paper's recommended 32 regions the two are comparable.
  const RbsgShape recommended{32, 100};
  const double ratio = bpa_rbsg_ns(cfg, recommended) / raa_rbsg_ns(cfg, recommended);
  EXPECT_GT(ratio, 0.05);
}

}  // namespace
}  // namespace srbsg::analytic
