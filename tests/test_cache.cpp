#include "perf/cache.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace srbsg::perf {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 8 * 256;  // 8 lines
  c.line_bytes = 256;
  c.ways = 2;  // 4 sets
  return c;
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c(small_cache());
  const auto r1 = c.access(5, false);
  EXPECT_FALSE(r1.hit);
  ASSERT_TRUE(r1.fill.has_value());
  EXPECT_EQ(*r1.fill, 5u);
  const auto r2 = c.access(5, false);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(SetAssocCache, DirtyEvictionProducesWriteback) {
  SetAssocCache c(small_cache());
  // Set 0 holds lines {0, 4, 8, ...}; 2 ways.
  c.access(0, true);   // dirty
  c.access(4, false);  // clean
  const auto r = c.access(8, false);  // evicts LRU = line 0 (dirty)
  ASSERT_TRUE(r.writeback.has_value());
  EXPECT_EQ(*r.writeback, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SetAssocCache, CleanEvictionSilent) {
  SetAssocCache c(small_cache());
  c.access(0, false);
  c.access(4, false);
  const auto r = c.access(8, false);
  EXPECT_FALSE(r.writeback.has_value());
}

TEST(SetAssocCache, LruOrderRespected) {
  SetAssocCache c(small_cache());
  c.access(0, false);
  c.access(4, false);
  c.access(0, false);          // refresh 0; LRU is now 4
  c.access(8, false);          // evicts 4
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(4, false).hit);
}

TEST(SetAssocCache, WriteHitMarksDirty) {
  SetAssocCache c(small_cache());
  c.access(0, false);  // clean fill
  c.access(0, true);   // dirtied by hit
  c.access(4, false);
  const auto r = c.access(8, false);  // evict 0
  ASSERT_TRUE(r.writeback.has_value());
}

TEST(SetAssocCache, FlushReportsDirtyLines) {
  SetAssocCache c(small_cache());
  c.access(1, true);
  c.access(2, false);
  std::vector<u64> dirty;
  c.flush(&dirty);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 1u);
  EXPECT_FALSE(c.access(2, false).hit);  // cold after flush
}

TEST(SetAssocCache, ConfigValidation) {
  CacheConfig c = small_cache();
  c.size_bytes = 1000;  // not set-aligned
  EXPECT_THROW(SetAssocCache{c}, CheckFailure);
}

TEST(Hierarchy, HitInL1ProducesNoMemoryTraffic) {
  HierarchyConfig cfg;
  cfg.l1 = small_cache();
  cfg.l2 = {32 * 256, 256, 4};
  cfg.l3 = {128 * 256, 256, 8};
  CacheHierarchy h(cfg);
  h.access(3, false);
  const auto t = h.access(3, false);
  EXPECT_EQ(t.reads, 0u);
  EXPECT_EQ(t.writes, 0u);
}

TEST(Hierarchy, ColdMissReachesMemory) {
  HierarchyConfig cfg;
  cfg.l1 = small_cache();
  cfg.l2 = {32 * 256, 256, 4};
  cfg.l3 = {128 * 256, 256, 8};
  CacheHierarchy h(cfg);
  const auto t = h.access(3, false);
  EXPECT_EQ(t.reads, 1u);
  EXPECT_EQ(t.read_addr, 3u);
  EXPECT_EQ(t.writes, 0u);
}

TEST(Hierarchy, SmallFootprintIsAbsorbed) {
  HierarchyConfig cfg;  // default paper-ish sizes
  CacheHierarchy h(cfg);
  u64 memory_ops = 0;
  // Touch 64 lines over and over: everything fits in L1/L2.
  for (int round = 0; round < 50; ++round) {
    for (u64 a = 0; a < 64; ++a) {
      const auto t = h.access(a, round % 2 == 0);
      memory_ops += t.reads + t.writes;
    }
  }
  EXPECT_LE(memory_ops, 64u);  // only the cold fills
}

TEST(Hierarchy, StreamingFootprintLeaksWritebacks) {
  HierarchyConfig cfg;
  cfg.l3 = {1024 * 256, 256, 8};  // shrink L3 to 1024 lines
  CacheHierarchy h(cfg);
  u64 writes = 0;
  // Stream writes over 8x the L3 capacity: dirty evictions must reach PCM.
  for (u64 a = 0; a < 8 * 1024; ++a) {
    writes += h.access(a, true).writes;
  }
  for (u64 a = 0; a < 8 * 1024; ++a) {
    writes += h.access(a, true).writes;
  }
  EXPECT_GT(writes, 4 * 1024u);
}

}  // namespace
}  // namespace srbsg::perf
