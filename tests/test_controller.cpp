#include "controller/memory_controller.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "wl/factory.hpp"

namespace srbsg::ctl {
namespace {

wl::SchemeSpec spec_for(u64 lines, wl::SchemeKind kind = wl::SchemeKind::kRbsg) {
  wl::SchemeSpec s;
  s.kind = kind;
  s.lines = lines;
  s.regions = 4;
  s.inner_interval = 8;
  s.outer_interval = 16;
  s.stages = 3;
  return s;
}

TEST(Controller, ClockAdvancesWithWrites) {
  const auto cfg = pcm::PcmConfig::scaled(128, 1000);
  MemoryController mc(cfg, wl::make_scheme(spec_for(128)));
  EXPECT_EQ(mc.now(), Ns{0});
  const auto out = mc.write(La{0}, pcm::LineData::all_zero());
  EXPECT_EQ(mc.now(), out.total);
  EXPECT_EQ(mc.total_writes(), 1u);
}

TEST(Controller, ReadAdvancesClock) {
  const auto cfg = pcm::PcmConfig::scaled(128, 1000);
  MemoryController mc(cfg, wl::make_scheme(spec_for(128)));
  mc.read(La{5});
  EXPECT_EQ(mc.now(), Ns{125});
}

TEST(Controller, SizeMismatchRejected) {
  const auto cfg = pcm::PcmConfig::scaled(128, 1000);
  EXPECT_THROW(MemoryController(cfg, wl::make_scheme(spec_for(256))), CheckFailure);
}

TEST(Controller, FailureReportedWithExactTime) {
  // No wear leveling: the target line dies after exactly E writes.
  const auto cfg = pcm::PcmConfig::scaled(64, 100);
  MemoryController mc(cfg, wl::make_scheme(spec_for(64, wl::SchemeKind::kNone)));
  for (int i = 0; i < 99; ++i) mc.write(La{3}, pcm::LineData::all_one());
  EXPECT_FALSE(mc.failed());
  mc.write(La{3}, pcm::LineData::all_one());
  ASSERT_TRUE(mc.failed());
  EXPECT_EQ(mc.failure().line, Pa{3});
  EXPECT_EQ(mc.failure().time, Ns{100 * 1000});
}

TEST(Controller, BulkFailureTimeRewoundToCrossing) {
  const auto cfg = pcm::PcmConfig::scaled(64, 100);
  MemoryController mc(cfg, wl::make_scheme(spec_for(64, wl::SchemeKind::kNone)));
  mc.write_repeated(La{3}, pcm::LineData::all_one(), 150);
  ASSERT_TRUE(mc.failed());
  // 50 overshoot writes at 1000 ns each are rewound.
  EXPECT_EQ(mc.failure().time, Ns{100 * 1000});
}

TEST(Controller, BulkMatchesLoopOnSchemes) {
  const auto cfg = pcm::PcmConfig::scaled(128, u64{1} << 40);
  MemoryController loop_mc(cfg, wl::make_scheme(spec_for(128)));
  MemoryController bulk_mc(cfg, wl::make_scheme(spec_for(128)));
  for (int i = 0; i < 3000; ++i) loop_mc.write(La{7}, pcm::LineData::mixed());
  bulk_mc.write_repeated(La{7}, pcm::LineData::mixed(), 3000);
  EXPECT_EQ(loop_mc.now(), bulk_mc.now());
  EXPECT_EQ(loop_mc.total_writes(), bulk_mc.total_writes());
}

TEST(Controller, StallExposedToRequester) {
  // This is the timing side channel: remap movements must surface in the
  // request latency.
  const auto cfg = pcm::PcmConfig::scaled(128, u64{1} << 40);
  MemoryController mc(cfg, wl::make_scheme(spec_for(128)));
  bool saw_stall = false;
  for (int i = 0; i < 200; ++i) {
    const auto out = mc.write(La{0}, pcm::LineData::all_zero());
    if (out.stall.value() > 0) {
      saw_stall = true;
      EXPECT_EQ(out.total.value(), 125 + out.stall.value());
    }
  }
  EXPECT_TRUE(saw_stall);
}

TEST(Controller, FailureQueryWithoutFailureThrows) {
  const auto cfg = pcm::PcmConfig::scaled(64, 1000);
  MemoryController mc(cfg, wl::make_scheme(spec_for(64)));
  EXPECT_THROW((void)mc.failure(), CheckFailure);
}

}  // namespace
}  // namespace srbsg::ctl
