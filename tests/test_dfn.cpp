#include "wl/dfn.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace srbsg::wl {
namespace {

void expect_dfn_bijective(const DynamicFeistelOuter& d) {
  std::unordered_set<u64> used;
  for (u64 la = 0; la < d.lines(); ++la) {
    const u64 ia = d.translate(la);
    ASSERT_LE(ia, d.spare_ia());
    ASSERT_TRUE(used.insert(ia).second) << "collision at la " << la;
  }
}

TEST(Dfn, InitiallyConsistent) {
  DynamicFeistelOuter d(6, 7, Rng(1));
  EXPECT_EQ(d.lines(), 64u);
  EXPECT_EQ(d.spare_ia(), 64u);
  EXPECT_TRUE(d.round_idle());
  expect_dfn_bijective(d);
}

TEST(Dfn, BijectiveAfterEveryMovement) {
  DynamicFeistelOuter d(5, 3, Rng(2));
  for (int i = 0; i < 500; ++i) {
    d.advance();
    expect_dfn_bijective(d);
  }
}

TEST(Dfn, MovementDescribesDataFlow) {
  // Simulate the data array alongside the DFN and check that following
  // the reported movements keeps translate() pointing at each LA's data.
  DynamicFeistelOuter d(5, 3, Rng(3));
  const u64 n = d.lines();
  std::vector<u64> slot_data(n + 1, kInvalidAddr);  // slot -> la tag
  for (u64 la = 0; la < n; ++la) slot_data[d.translate(la)] = la;

  for (int i = 0; i < 800; ++i) {
    const auto mv = d.advance();
    slot_data[mv.to] = slot_data[mv.from];
    for (u64 la = 0; la < n; ++la) {
      ASSERT_EQ(slot_data[d.translate(la)], la) << "after movement " << i;
    }
  }
}

TEST(Dfn, RoundRemapsEveryLine) {
  DynamicFeistelOuter d(6, 7, Rng(4));
  const u64 n = d.lines();
  // Run exactly one full round.
  EXPECT_TRUE(d.round_idle());
  d.advance();
  EXPECT_FALSE(d.round_idle());
  u64 movements = 1;
  while (!d.round_idle()) {
    d.advance();
    ++movements;
    ASSERT_LT(movements, 3 * n) << "round did not terminate";
  }
  EXPECT_EQ(d.remapped_count(), n);
  // N fills + one eviction per permutation cycle.
  EXPECT_GE(movements, n + 1);
  EXPECT_LE(movements, 2 * n);
  EXPECT_EQ(d.rounds_completed(), 1u);
}

TEST(Dfn, MappingChangesAcrossRounds) {
  DynamicFeistelOuter d(7, 7, Rng(5));
  std::vector<u64> before(d.lines());
  for (u64 la = 0; la < d.lines(); ++la) before[la] = d.translate(la);
  d.advance();
  while (!d.round_idle()) d.advance();
  u64 moved = 0;
  for (u64 la = 0; la < d.lines(); ++la) {
    if (d.translate(la) != before[la]) ++moved;
  }
  EXPECT_GT(moved, d.lines() * 9 / 10);  // fresh keys: almost all move
}

TEST(Dfn, SpareHolderTracked) {
  DynamicFeistelOuter d(4, 3, Rng(6));
  d.advance();  // first movement of a round is always an eviction
  bool any_on_spare = false;
  for (u64 la = 0; la < d.lines(); ++la) {
    if (d.translate(la) == d.spare_ia()) any_on_spare = true;
  }
  EXPECT_TRUE(any_on_spare);
}

TEST(Dfn, MovementsNeverReadTheGap) {
  // A movement's source must currently hold live data: some LA must
  // translate to it at the instant before the movement.
  DynamicFeistelOuter d(5, 5, Rng(7));
  for (int i = 0; i < 400; ++i) {
    std::unordered_set<u64> live;
    for (u64 la = 0; la < d.lines(); ++la) live.insert(d.translate(la));
    const auto mv = d.advance();
    EXPECT_TRUE(live.count(mv.from)) << "movement " << i << " read a dead slot";
  }
}

class DfnStages : public ::testing::TestWithParam<u32> {};

TEST_P(DfnStages, ThreeRoundsStayConsistent) {
  DynamicFeistelOuter d(6, GetParam(), Rng(40 + GetParam()));
  u64 rounds_target = d.rounds_completed() + 3;
  u64 guard = 0;
  while (d.rounds_completed() < rounds_target) {
    d.advance();
    ASSERT_LT(++guard, 10'000u);
  }
  expect_dfn_bijective(d);
}

INSTANTIATE_TEST_SUITE_P(Stages, DfnStages, ::testing::Values(1u, 3u, 6u, 7u, 12u, 20u));

TEST(DfnTablePrp, BijectiveThroughRounds) {
  DynamicFeistelOuter d(6, 1, Rng(60), OuterPrpKind::kTablePrp);
  EXPECT_EQ(d.prp_kind(), OuterPrpKind::kTablePrp);
  for (int i = 0; i < 400; ++i) {
    d.advance();
    expect_dfn_bijective(d);
  }
}

TEST(DfnTablePrp, DataFlowConsistent) {
  DynamicFeistelOuter d(5, 1, Rng(61), OuterPrpKind::kTablePrp);
  const u64 n = d.lines();
  std::vector<u64> slot_data(n + 1, kInvalidAddr);
  for (u64 la = 0; la < n; ++la) slot_data[d.translate(la)] = la;
  for (int i = 0; i < 600; ++i) {
    const auto mv = d.advance();
    slot_data[mv.to] = slot_data[mv.from];
    for (u64 la = 0; la < n; ++la) {
      ASSERT_EQ(slot_data[d.translate(la)], la) << "movement " << i;
    }
  }
}

}  // namespace
}  // namespace srbsg::wl
