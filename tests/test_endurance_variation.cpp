#include <gtest/gtest.h>

#include "common/check.hpp"
#include "pcm/bank.hpp"
#include "sim/lifetime.hpp"

namespace srbsg::pcm {
namespace {

TEST(EnduranceVariation, DisabledMeansUniformLimits) {
  PcmBank bank(PcmConfig::scaled(64, 1000), 64);
  for (u64 i = 0; i < 64; ++i) {
    EXPECT_EQ(bank.line_endurance(Pa{i}), 1000u);
  }
}

TEST(EnduranceVariation, LimitsSpreadAroundMean) {
  auto cfg = PcmConfig::scaled(1u << 12, 100'000);
  cfg.endurance_variation = 0.1;
  PcmBank bank(cfg, 1u << 12);
  double sum = 0.0;
  u64 mn = ~u64{0}, mx = 0;
  for (u64 i = 0; i < bank.total_lines(); ++i) {
    const u64 e = bank.line_endurance(Pa{i});
    sum += static_cast<double>(e);
    mn = std::min(mn, e);
    mx = std::max(mx, e);
  }
  const double mean = sum / static_cast<double>(bank.total_lines());
  EXPECT_NEAR(mean, 100'000.0, 2'000.0);
  EXPECT_LT(mn, 95'000u);   // some weak lines
  EXPECT_GT(mx, 105'000u);  // some strong lines
  EXPECT_GE(mn, 70'000u);   // ±3σ clamp
  EXPECT_LE(mx, 130'000u);
}

TEST(EnduranceVariation, DeterministicPerSeed) {
  auto cfg = PcmConfig::scaled(256, 10'000);
  cfg.endurance_variation = 0.1;
  PcmBank a(cfg, 256), b(cfg, 256);
  for (u64 i = 0; i < 256; ++i) {
    EXPECT_EQ(a.line_endurance(Pa{i}), b.line_endurance(Pa{i}));
  }
  cfg.variation_seed = 999;
  PcmBank c(cfg, 256);
  int diff = 0;
  for (u64 i = 0; i < 256; ++i) {
    if (a.line_endurance(Pa{i}) != c.line_endurance(Pa{i})) ++diff;
  }
  EXPECT_GT(diff, 200);
}

TEST(EnduranceVariation, WeakLineFailsFirst) {
  auto cfg = PcmConfig::scaled(64, 1000);
  cfg.endurance_variation = 0.2;
  PcmBank bank(cfg, 64);
  // Find the weakest line and grind everything evenly: it must die first.
  u64 weakest = 0;
  for (u64 i = 1; i < 64; ++i) {
    if (bank.line_endurance(Pa{i}) < bank.line_endurance(Pa{weakest})) weakest = i;
  }
  while (!bank.has_failure()) {
    for (u64 i = 0; i < 64 && !bank.has_failure(); ++i) {
      bank.write(Pa{i}, LineData::all_zero());
    }
  }
  EXPECT_EQ(bank.first_failed_line().value(), weakest);
}

TEST(EnduranceVariation, ShortensLeveledLifetime) {
  // With perfect-ish leveling the weakest line gates the whole bank:
  // lifetime drops roughly by the left tail of the distribution.
  auto run = [](double variation) {
    sim::LifetimeConfig c;
    c.pcm = pcm::PcmConfig::scaled(1u << 11, 1u << 14);
    c.pcm.endurance_variation = variation;
    c.scheme.kind = wl::SchemeKind::kSecurityRbsg;
    c.scheme.lines = 1u << 11;
    c.scheme.regions = 32;
    c.scheme.inner_interval = 8;
    c.scheme.outer_interval = 16;
    c.scheme.seed = 9;
    c.attack = sim::AttackKind::kRaa;
    c.write_budget = u64{1} << 40;
    const auto out = sim::run_lifetime(c);
    EXPECT_TRUE(out.result.succeeded);
    return out.result.lifetime.value();
  };
  EXPECT_LT(run(0.2), run(0.0));
}

TEST(EnduranceVariation, Validation) {
  auto cfg = PcmConfig::scaled(64, 1000);
  cfg.endurance_variation = 0.9;
  EXPECT_THROW(cfg.validate(), CheckFailure);
}

}  // namespace
}  // namespace srbsg::pcm
