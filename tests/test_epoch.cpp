// Three-way engine-tier equivalence: for every scheme, the epoch
// fast-forward engine and the PR-4 windowed engine must be bit-identical
// to the per-write reference loop — wear counts, line contents, movement
// counts, total simulated time, translation state and failure bookkeeping
// (DESIGN.md §15). Covers mid-epoch endurance failure, a detector
// ψ-change between projections, non-periodic-pattern bailout, and
// non-uniform bank content (which must force the windowed fallback
// without breaking identity).

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "pcm/bank.hpp"
#include "telemetry/telemetry.hpp"
#include "wl/epoch.hpp"
#include "wl/factory.hpp"

namespace srbsg::wl {
namespace {

constexpr SchemeKind kAllKinds[] = {
    SchemeKind::kNone,       SchemeKind::kStartGap, SchemeKind::kRbsg,
    SchemeKind::kSr1,        SchemeKind::kSr2,      SchemeKind::kMultiWaySr,
    SchemeKind::kSecurityRbsg, SchemeKind::kTable,
};

SchemeSpec spec_for(SchemeKind kind, u64 lines) {
  SchemeSpec s;
  s.kind = kind;
  s.lines = lines;
  s.regions = 8;
  s.inner_interval = 16;
  s.outer_interval = 32;
  s.stages = 3;
  s.seed = 42;
  return s;
}

/// One scheme + bank driven under a pinned engine tier.
struct Arm {
  std::unique_ptr<WearLeveler> scheme;
  std::unique_ptr<pcm::PcmBank> bank;
  BulkOutcome out;

  Arm(const SchemeSpec& spec, const pcm::PcmConfig& cfg, EngineTier tier)
      : scheme(make_scheme(spec)),
        bank(std::make_unique<pcm::PcmBank>(cfg, scheme->physical_lines())) {
    scheme->set_engine_tier(tier);
  }

  void cycle(std::span<const La> pattern, const pcm::LineData& data, u64 count) {
    const BulkOutcome o = scheme->write_cycle(pattern, data, count, *bank);
    out.total += o.total;
    out.writes_applied += o.writes_applied;
    out.movements += o.movements;
  }
};

void expect_identical(const Arm& ref, const Arm& alt, const char* tag) {
  SCOPED_TRACE(tag);
  EXPECT_EQ(ref.out.writes_applied, alt.out.writes_applied);
  EXPECT_EQ(ref.out.movements, alt.out.movements);
  EXPECT_EQ(ref.out.total, alt.out.total);
  EXPECT_EQ(ref.bank->total_writes(), alt.bank->total_writes());
  ASSERT_EQ(ref.bank->has_failure(), alt.bank->has_failure());
  if (ref.bank->has_failure()) {
    EXPECT_EQ(ref.bank->first_failed_line(), alt.bank->first_failed_line());
    EXPECT_EQ(ref.bank->failure_overshoot(), alt.bank->failure_overshoot());
  }
  const auto wr = ref.bank->wear_counts();
  const auto wa = alt.bank->wear_counts();
  ASSERT_EQ(wr.size(), wa.size());
  for (u64 pa = 0; pa < wr.size(); ++pa) {
    ASSERT_EQ(wr[pa], wa[pa]) << "wear diverged at pa=" << pa;
  }
  for (u64 pa = 0; pa < wr.size(); ++pa) {
    ASSERT_EQ(ref.bank->data(Pa{pa}), alt.bank->data(Pa{pa}))
        << "content diverged at pa=" << pa;
  }
  for (u64 la = 0; la < ref.scheme->logical_lines(); ++la) {
    ASSERT_EQ(ref.scheme->translate(La{la}), alt.scheme->translate(La{la}))
        << "translation diverged at la=" << la;
  }
}

/// Drives the same write_cycle calls through all three tiers and asserts
/// bit-identity; `mutate` runs between calls on every arm (detector
/// boosts, extra single writes, ...).
template <typename Mutate>
void run_three_way(const SchemeSpec& spec, const pcm::PcmConfig& cfg,
                   std::span<const La> pattern, const pcm::LineData& data,
                   std::span<const u64> chunks, Mutate&& mutate) {
  Arm ref(spec, cfg, EngineTier::kReference);
  Arm win(spec, cfg, EngineTier::kWindowed);
  Arm epo(spec, cfg, EngineTier::kEpoch);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    ref.cycle(pattern, data, chunks[i]);
    win.cycle(pattern, data, chunks[i]);
    epo.cycle(pattern, data, chunks[i]);
    mutate(i, ref);
    mutate(i, win);
    mutate(i, epo);
  }
  expect_identical(ref, win, "windowed-vs-reference");
  expect_identical(ref, epo, "epoch-vs-reference");
}

void run_three_way(const SchemeSpec& spec, const pcm::PcmConfig& cfg,
                   std::span<const La> pattern, const pcm::LineData& data,
                   std::span<const u64> chunks) {
  run_three_way(spec, cfg, pattern, data, chunks, [](std::size_t, Arm&) {});
}

class EpochEquivalence : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(EpochEquivalence, SingleAddressHammer) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  const std::vector<La> pattern = {La{5}};
  const std::vector<u64> chunks = {10'000, 1, 37, 25'000};
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0xAA), chunks);
}

TEST_P(EpochEquivalence, MultiAddressPattern) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  const std::vector<La> pattern = {La{0}, La{17}, La{63}, La{200}, La{511}, La{17}};
  const std::vector<u64> chunks = {25'000, 13'337};
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0x51), chunks);
}

TEST_P(EpochEquivalence, MidEpochEnduranceFailure) {
  const u64 lines = 256;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, 2'000);
  const std::vector<La> pattern = {La{3}, La{7}};
  const std::vector<u64> chunks = {50'000'000};  // far past first failure
  Arm probe(spec, cfg, EngineTier::kReference);
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0xF0), chunks);
  probe.cycle(pattern, pcm::LineData::mixed(0xF0), chunks[0]);
  ASSERT_TRUE(probe.bank->has_failure());
}

TEST_P(EpochEquivalence, EnduranceVariationFailure) {
  const u64 lines = 256;
  const auto spec = spec_for(GetParam(), lines);
  auto cfg = pcm::PcmConfig::scaled(lines, 4'000);
  cfg.endurance_variation = 0.15;  // per-line limits; failure off-pattern too
  const std::vector<La> pattern = {La{11}};
  const std::vector<u64> chunks = {80'000'000};
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0x0B), chunks);
}

TEST_P(EpochEquivalence, DetectorBoostMidProjection) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  const std::vector<La> pattern = {La{42}, La{99}};
  const std::vector<u64> chunks = {9'000, 9'000, 9'000, 9'000};
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0xD7), chunks,
                [](std::size_t i, Arm& arm) {
                  // ψ shrinks then recovers between projections — the
                  // carried counter must stay exact across the change.
                  arm.scheme->set_rate_boost(i == 0 ? 3 : (i == 1 ? 0 : 2));
                });
}

TEST_P(EpochEquivalence, NonPeriodicPatternBailout) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  // Period far beyond kPatternFallbackFactor * interval: every tier must
  // route through the generic per-write loop and still agree.
  std::vector<La> pattern;
  for (u64 i = 0; i < 300; ++i) pattern.push_back(La{(i * 37) % lines});
  const std::vector<u64> chunks = {5'000};
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0x1234), chunks);
}

TEST_P(EpochEquivalence, NonUniformContentFallsBack) {
  const u64 lines = 256;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  const std::vector<La> pattern = {La{9}};
  const std::vector<u64> chunks = {2'000, 20'000};
  run_three_way(spec, cfg, pattern, pcm::LineData::mixed(0xC0), chunks,
                [lines](std::size_t i, Arm& arm) {
                  if (i != 0) return;
                  // Tag a few lines with distinct tokens: the movement
                  // slots are no longer uniform, so the epoch engine must
                  // take its windowed fallback — identically.
                  for (u64 la = 0; la < lines; la += 61) {
                    arm.scheme->write(La{la}, pcm::LineData::mixed(0xBEEF00 + la), *arm.bank);
                  }
                });
}

TEST_P(EpochEquivalence, EpochTelemetryAttributesJumps) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  Arm epo(spec, cfg, EngineTier::kEpoch);
  telemetry::TelemetryConfig tcfg;
  telemetry::Recorder rec(tcfg);
  epo.scheme->attach_telemetry(&rec);
  const std::vector<La> pattern = {La{5}};
  epo.cycle(pattern, pcm::LineData::mixed(0xAA), 50'000);
  u64 jump_writes = 0;
  u64 jumps = 0;
  const auto& ring = rec.events();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const auto& e = ring.at(i);
    if (e.type != telemetry::EventType::kEpochApplied) continue;
    ++jumps;
    jump_writes += e.a;
  }
  // Schemes with an epoch fast path must attribute the bulk of the run to
  // analytic jumps; schemes without one legitimately emit none.
  if (jumps > 0) {
    EXPECT_GT(jump_writes, 25'000u) << "jumps cover too little of the run";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EpochEquivalence, ::testing::ValuesIn(kAllKinds),
                         [](const auto& param_info) {
                           std::string n{to_string(param_info.param)};
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace srbsg::wl
