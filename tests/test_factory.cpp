#include "wl/factory.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

TEST(Factory, NamesRoundTrip) {
  for (SchemeKind k : {SchemeKind::kNone, SchemeKind::kStartGap, SchemeKind::kRbsg,
                       SchemeKind::kSr1, SchemeKind::kSr2, SchemeKind::kMultiWaySr,
                       SchemeKind::kSecurityRbsg, SchemeKind::kTable}) {
    EXPECT_EQ(parse_scheme(to_string(k)), k);
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW((void)parse_scheme("bogus"), CheckFailure);
}

class FactoryAllSchemes : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(FactoryAllSchemes, BuildsWorkingScheme) {
  SchemeSpec spec;
  spec.kind = GetParam();
  spec.lines = 128;
  spec.regions = 4;
  spec.inner_interval = 4;
  spec.outer_interval = 8;
  spec.stages = 5;
  spec.seed = 3;
  const auto scheme = make_scheme(spec);
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->logical_lines(), 128u);
  EXPECT_GE(scheme->physical_lines(), 128u);
  EXPECT_EQ(to_string(GetParam()), scheme->name());

  pcm::PcmBank bank(pcm::PcmConfig::scaled(128, u64{1} << 40), scheme->physical_lines());
  testutil::run_integrity_churn(*scheme, bank, 5'000);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FactoryAllSchemes,
                         ::testing::Values(SchemeKind::kNone, SchemeKind::kStartGap,
                                           SchemeKind::kRbsg, SchemeKind::kSr1,
                                           SchemeKind::kSr2, SchemeKind::kMultiWaySr,
                                           SchemeKind::kSecurityRbsg, SchemeKind::kTable));

}  // namespace
}  // namespace srbsg::wl
