#include "mapping/feistel.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "mapping/quality.hpp"

namespace srbsg::mapping {
namespace {

TEST(Feistel, RoundTripEvenWidth) {
  Rng rng(1);
  const auto keys = FeistelNetwork::random_keys(16, 3, rng);
  FeistelNetwork net(16, keys);
  for (u64 x = 0; x < net.domain_size(); x += 37) {
    EXPECT_EQ(net.unmap(net.map(x)), x);
  }
}

TEST(Feistel, BijectionEvenWidthExhaustive) {
  Rng rng(2);
  const auto keys = FeistelNetwork::random_keys(12, 3, rng);
  FeistelNetwork net(12, keys);
  EXPECT_TRUE(verify_bijection(net));
}

TEST(Feistel, BijectionOddWidthExhaustive) {
  // Odd widths use cycle-walking; the restriction must stay bijective.
  Rng rng(3);
  const auto keys = FeistelNetwork::random_keys(13, 4, rng);
  FeistelNetwork net(13, keys);
  EXPECT_EQ(net.domain_size(), u64{1} << 13);
  EXPECT_TRUE(verify_bijection(net));
}

TEST(Feistel, SingleStageStillBijective) {
  Rng rng(4);
  const auto keys = FeistelNetwork::random_keys(10, 1, rng);
  FeistelNetwork net(10, keys);
  EXPECT_TRUE(verify_bijection(net));
}

TEST(Feistel, DifferentKeysDifferentPermutation) {
  Rng rng(5);
  const auto k1 = FeistelNetwork::random_keys(16, 3, rng);
  const auto k2 = FeistelNetwork::random_keys(16, 3, rng);
  FeistelNetwork a(16, k1), b(16, k2);
  int diff = 0;
  for (u64 x = 0; x < 1000; ++x) {
    if (a.map(x) != b.map(x)) ++diff;
  }
  EXPECT_GT(diff, 900);
}

TEST(Feistel, DeterministicForSameKeys) {
  Rng rng(6);
  const auto keys = FeistelNetwork::random_keys(20, 7, rng);
  FeistelNetwork a(20, keys), b(20, keys);
  for (u64 x = 0; x < 500; ++x) EXPECT_EQ(a.map(x), b.map(x));
}

TEST(Feistel, RejectsBadParameters) {
  Rng rng(7);
  const auto keys = FeistelNetwork::random_keys(16, 3, rng);
  EXPECT_THROW(FeistelNetwork(1, keys), CheckFailure);
  EXPECT_THROW(FeistelNetwork(16, std::span<const u64>{}), CheckFailure);
}

TEST(Feistel, MapRejectsOutOfDomain) {
  Rng rng(8);
  const auto keys = FeistelNetwork::random_keys(8, 3, rng);
  FeistelNetwork net(8, keys);
  EXPECT_THROW((void)net.map(256), CheckFailure);
  EXPECT_THROW((void)net.unmap(1000), CheckFailure);
}

TEST(CubingRound, MatchesDirectComputation) {
  // (v ^ k)^3 mod 2^b
  const u64 v = 0x2A, k = 0x13;
  const u64 t = (v ^ k) & 0xFF;
  EXPECT_EQ(cubing_round(v, k, 8), (t * t * t) & 0xFF);
}

TEST(CubingRound, WidthMasking) {
  EXPECT_LT(cubing_round(0xFFFF, 0x1234, 11), u64{1} << 11);
}

class FeistelWidthTest : public ::testing::TestWithParam<u32> {};

TEST_P(FeistelWidthTest, BijectiveAtWidth) {
  Rng rng(100 + GetParam());
  const auto keys = FeistelNetwork::random_keys(GetParam(), 3, rng);
  FeistelNetwork net(GetParam(), keys);
  EXPECT_TRUE(verify_bijection(net)) << "width " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, FeistelWidthTest,
                         ::testing::Values(2u, 3u, 4u, 7u, 8u, 9u, 14u, 15u, 16u));

class FeistelStagesTest : public ::testing::TestWithParam<u32> {};

TEST_P(FeistelStagesTest, MoreStagesStayBijective) {
  Rng rng(200 + GetParam());
  const auto keys = FeistelNetwork::random_keys(12, GetParam(), rng);
  FeistelNetwork net(12, keys);
  EXPECT_TRUE(verify_bijection(net)) << "stages " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Stages, FeistelStagesTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 12u, 20u));

}  // namespace
}  // namespace srbsg::mapping
