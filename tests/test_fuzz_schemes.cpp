// Randomized differential testing: every wear-leveling scheme is driven
// with a seeded random mix of single writes, bulk writes and reads while
// a plain map of "what software last wrote where" acts as the oracle.
// Any lost, duplicated or misrouted line fails the run. This is the
// closest thing to a fuzzer the simulator has; each (scheme, seed) pair
// is an independent parameterized case.

#include <gtest/gtest.h>

#include <unordered_map>
#include <utility>

#include "audit/auditing_wear_leveler.hpp"
#include "common/rng.hpp"
#include "controller/memory_controller.hpp"
#include "wl/factory.hpp"

namespace srbsg::wl {
namespace {

struct FuzzCase {
  SchemeKind kind;
  u64 seed;
};

class SchemeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SchemeFuzz, RandomOpSequencePreservesData) {
  const auto [kind, seed] = GetParam();
  const u64 lines = 512;
  SchemeSpec spec;
  spec.kind = kind;
  spec.lines = lines;
  spec.regions = 8;
  spec.inner_interval = 4 + seed % 13;
  spec.outer_interval = 8 + seed % 29;
  spec.stages = 3 + static_cast<u32>(seed % 7);
  spec.seed = seed;
  ctl::MemoryController mc(pcm::PcmConfig::scaled(lines, u64{1} << 40),
                           wl::make_scheme(spec));

  Rng rng(seed * 7919 + 13);
  std::unordered_map<u64, u64> oracle;  // la -> token
  u64 next_token = 1;

  for (int op = 0; op < 30'000; ++op) {
    const u64 la = rng.next_below(lines);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // single write
        const u64 token = next_token++;
        mc.write(La{la}, pcm::LineData::mixed(token));
        oracle[la] = token;
        break;
      }
      case 2: {  // bulk write (exercises the fast path mid-sequence)
        const u64 token = next_token++;
        const u64 n = 1 + rng.next_below(200);
        mc.write_repeated(La{la}, pcm::LineData::mixed(token), n);
        oracle[la] = token;
        break;
      }
      case 3: {  // read-back check of a random previously written line
        const auto it = oracle.find(la);
        if (it != oracle.end()) {
          ASSERT_EQ(mc.read(La{la}).first.token, it->second)
              << "op " << op << " la " << la;
        }
        break;
      }
    }
  }
  // Full audit at the end.
  for (const auto& [la, token] : oracle) {
    ASSERT_EQ(mc.read(La{la}).first.token, token) << "final audit, la " << la;
  }
  // And the mapping must still be a bijection.
  std::unordered_map<u64, u64> seen;
  for (u64 la = 0; la < lines; ++la) {
    const u64 pa = mc.scheme().translate(La{la}).value();
    ASSERT_TRUE(seen.emplace(pa, la).second) << "pa collision at la " << la;
  }
}

std::vector<FuzzCase> all_cases() {
  std::vector<FuzzCase> cases;
  for (SchemeKind kind : {SchemeKind::kStartGap, SchemeKind::kRbsg, SchemeKind::kSr1,
                          SchemeKind::kSr2, SchemeKind::kMultiWaySr,
                          SchemeKind::kSecurityRbsg, SchemeKind::kTable}) {
    for (u64 seed : {1u, 2u, 3u}) {
      cases.push_back({kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeFuzz, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
                           std::string name(to_string(param_info.param.kind));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_seed" + std::to_string(param_info.param.seed);
                         });

// Same differential fuzz, but with the invariant auditor wrapped around the
// scheme at cadence 1: translation injectivity, wear conservation and the
// scheme's own state validator are re-proved after every single operation.
// Smaller line counts / op counts keep the O(lines) audits affordable.
class AuditedSchemeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(AuditedSchemeFuzz, EveryOpAuditedPreservesInvariants) {
  const auto [kind, seed] = GetParam();
  const u64 lines = 256;
  SchemeSpec spec;
  spec.kind = kind;
  spec.lines = lines;
  spec.regions = 8;
  spec.inner_interval = 3 + seed % 11;
  spec.outer_interval = 5 + seed % 17;
  spec.stages = 3 + static_cast<u32>(seed % 5);
  spec.seed = seed;

  audit::AuditConfig acfg;
  acfg.cadence = 1;
  acfg.seed = seed;
  auto audited = audit::make_audited(make_scheme(spec), acfg);
  auto* auditor = audited.get();
  ctl::MemoryController mc(pcm::PcmConfig::scaled(lines, u64{1} << 40),
                           std::move(audited));

  Rng rng(seed * 104729 + 7);
  std::unordered_map<u64, u64> oracle;  // la -> token
  u64 next_token = 1;

  for (int op = 0; op < 4'000; ++op) {
    const u64 la = rng.next_below(lines);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const u64 token = next_token++;
        mc.write(La{la}, pcm::LineData::mixed(token));
        oracle[la] = token;
        break;
      }
      case 2: {
        const u64 token = next_token++;
        const u64 n = 1 + rng.next_below(100);
        mc.write_repeated(La{la}, pcm::LineData::mixed(token), n);
        oracle[la] = token;
        break;
      }
      case 3: {
        const auto it = oracle.find(la);
        if (it != oracle.end()) {
          ASSERT_EQ(mc.read(La{la}).first.token, it->second)
              << "op " << op << " la " << la;
        }
        break;
      }
    }
  }
  EXPECT_GT(auditor->stats().audits_run, 0u);
  ASSERT_NO_THROW(auditor->audit_now(mc.bank()));
  for (const auto& [la, token] : oracle) {
    ASSERT_EQ(mc.read(La{la}).first.token, token) << "final audit, la " << la;
  }
}

std::vector<FuzzCase> audited_cases() {
  std::vector<FuzzCase> cases;
  for (SchemeKind kind : {SchemeKind::kNone, SchemeKind::kStartGap, SchemeKind::kRbsg,
                          SchemeKind::kSr1, SchemeKind::kSr2, SchemeKind::kMultiWaySr,
                          SchemeKind::kSecurityRbsg, SchemeKind::kTable}) {
    for (u64 seed : {1u, 2u}) {
      cases.push_back({kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AuditedSchemeFuzz, ::testing::ValuesIn(audited_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
                           std::string name(to_string(param_info.param.kind));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_seed" + std::to_string(param_info.param.seed);
                         });

}  // namespace
}  // namespace srbsg::wl
