#include "attack/harness.hpp"

#include <gtest/gtest.h>

#include "attack/raa.hpp"
#include "wl/factory.hpp"
#include "wl/no_wl.hpp"

namespace srbsg::attack {
namespace {

// Minimal custom scheme exercising the WearLeveler base-class defaults
// (the generic write_repeated loop and the read path).
class EchoScheme final : public wl::WearLeveler {
 public:
  explicit EchoScheme(u64 lines) : lines_(lines) {}
  [[nodiscard]] std::string_view name() const override { return "echo"; }
  [[nodiscard]] u64 logical_lines() const override { return lines_; }
  [[nodiscard]] u64 physical_lines() const override { return lines_; }
  [[nodiscard]] Pa translate(La la) const override { return Pa{la.value() ^ 1}; }
  wl::WriteOutcome write(La la, const pcm::LineData& data, pcm::PcmBank& bank) override {
    const Ns lat = bank.write(translate(la), data);
    return wl::WriteOutcome{lat, Ns{0}, 0};
  }

 private:
  u64 lines_;
};

TEST(WearLevelerBase, DefaultBulkMatchesLoop) {
  EchoScheme a(16), b(16);
  pcm::PcmBank bank_a(pcm::PcmConfig::scaled(16, 1u << 20), 16);
  pcm::PcmBank bank_b(pcm::PcmConfig::scaled(16, 1u << 20), 16);
  Ns loop_total{0};
  for (int i = 0; i < 500; ++i) {
    loop_total += a.write(La{3}, pcm::LineData::all_one(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{3}, pcm::LineData::all_one(), 500, bank_b);
  EXPECT_EQ(bulk.total, loop_total);
  EXPECT_EQ(bulk.writes_applied, 500u);
  EXPECT_EQ(bank_a.wear(Pa{2}), bank_b.wear(Pa{2}));
}

TEST(WearLevelerBase, DefaultBulkStopsAtFailure) {
  EchoScheme s(16);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(16, 100), 16);
  const auto bulk = s.write_repeated(La{0}, pcm::LineData::all_zero(), 10'000, bank);
  EXPECT_EQ(bulk.writes_applied, 100u);  // exactly at the endurance
  EXPECT_TRUE(bank.has_failure());
}

TEST(WearLevelerBase, ReadGoesThroughTranslation) {
  EchoScheme s(16);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(16, 1u << 20), 16);
  s.write(La{4}, pcm::LineData::mixed(99), bank);
  EXPECT_EQ(s.read(La{4}, bank).first.token, 99u);
  EXPECT_EQ(bank.data(Pa{5}).token, 99u);  // 4 ^ 1
}

TEST(Harness, ResultFieldsPopulated) {
  const auto cfg = pcm::PcmConfig::scaled(64, 200);
  ctl::MemoryController mc(cfg, std::make_unique<wl::NoWearLeveling>(64));
  RepeatedAddressAttack atk(La{5});
  const auto res = run_attack(mc, atk, u64{1} << 30);
  EXPECT_TRUE(res.succeeded);
  EXPECT_EQ(res.attacker, "RAA");
  EXPECT_EQ(res.scheme, "none");
  EXPECT_EQ(res.writes, 200u);  // overshoot rewound
  EXPECT_EQ(res.lifetime, res.elapsed);
  EXPECT_EQ(res.lifetime, Ns{200 * 1000});
}

TEST(Harness, FailedRunReportsElapsedOnly) {
  const auto cfg = pcm::PcmConfig::scaled(64, u64{1} << 40);
  ctl::MemoryController mc(cfg, std::make_unique<wl::NoWearLeveling>(64));
  RepeatedAddressAttack atk(La{5});
  const auto res = run_attack(mc, atk, 1000);
  EXPECT_FALSE(res.succeeded);
  EXPECT_EQ(res.lifetime, Ns{0});
  EXPECT_GT(res.elapsed.value(), 0u);
}

}  // namespace
}  // namespace srbsg::attack
