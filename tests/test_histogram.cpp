// LogHistogram: bucket geometry round-trips, quantile semantics, the
// associative/commutative merge that keeps serialized histograms
// byte-identical across worker counts, and weighted bulk recording.

#include "telemetry/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace srbsg {
namespace {

using telemetry::LogHistogram;

TEST(LogHistogram, BucketIndexExactBelowSubBucketRange) {
  for (u64 v = 0; v < (u64{1} << LogHistogram::kSubBucketBits); ++v) {
    EXPECT_EQ(LogHistogram::bucket_lo(LogHistogram::bucket_index(v)), v);
  }
}

TEST(LogHistogram, BucketLoIndexRoundTrip) {
  // bucket_lo(idx) must be the smallest value mapping to idx, and every
  // value must land in a bucket whose lower bound does not exceed it.
  std::vector<u64> probes = {8, 9, 15, 16, 17, 100, 960, 1000, 1024, 4096};
  probes.push_back(u64{1} << 32);
  probes.push_back(u64{1} << 63);
  probes.push_back(~u64{0});
  for (const u64 v : probes) {
    const u32 idx = LogHistogram::bucket_index(v);
    EXPECT_LE(LogHistogram::bucket_lo(idx), v) << "value " << v;
    EXPECT_EQ(LogHistogram::bucket_index(LogHistogram::bucket_lo(idx)), idx)
        << "bucket_lo(" << idx << ") maps to a different bucket";
    if (LogHistogram::bucket_lo(idx) > 0) {
      EXPECT_LT(LogHistogram::bucket_index(LogHistogram::bucket_lo(idx) - 1), idx)
          << "bucket_lo(" << idx << ") is not the smallest member";
    }
  }
}

TEST(LogHistogram, RelativeErrorBoundedBySubBucketWidth) {
  // Each bucket's width is at most 1/8 of its lower bound (kSubBucketBits
  // = 3), so reporting bucket_lo never understates by more than 12.5%.
  for (u64 v = 1; v < (u64{1} << 20); v = v * 3 + 1) {
    const u64 lo = LogHistogram::bucket_lo(LogHistogram::bucket_index(v));
    EXPECT_LE(v - lo, lo / (u64{1} << LogHistogram::kSubBucketBits) + 1)
        << "value " << v << " lower bound " << lo;
  }
}

TEST(LogHistogram, QuantilesOnKnownData) {
  LogHistogram h;
  for (u64 v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  // Quantiles report the bucket's conservative lower bound.
  EXPECT_EQ(h.quantile(0.0), 1u);
  const u64 p50 = h.quantile(0.50);
  EXPECT_LE(p50, 50u);
  EXPECT_GE(p50, 44u);  // 50 lives in bucket [48,52); lower bound >= 44 at 12.5%
  EXPECT_LE(h.quantile(0.99), 100u);
  EXPECT_EQ(h.quantile(1.0), LogHistogram::bucket_lo(LogHistogram::bucket_index(100)));
}

TEST(LogHistogram, EmptyHistogramIsZero) {
  const LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LogHistogram, MergeMatchesSingleShardRecording) {
  // Shard-and-merge must be indistinguishable from recording everything
  // into one histogram, regardless of how values are split.
  LogHistogram whole;
  LogHistogram shard_a;
  LogHistogram shard_b;
  for (u64 v = 0; v < 1000; ++v) {
    const u64 sample = (v * 2654435761u) % 100000;
    whole.record(sample);
    (v % 3 == 0 ? shard_a : shard_b).record(sample);
  }
  LogHistogram merged_ab = shard_a;
  merged_ab.merge(shard_b);
  LogHistogram merged_ba = shard_b;
  merged_ba.merge(shard_a);
  for (const LogHistogram* m : {&merged_ab, &merged_ba}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_EQ(m->sum(), whole.sum());
    EXPECT_EQ(m->min(), whole.min());
    EXPECT_EQ(m->max(), whole.max());
    EXPECT_EQ(m->buckets(), whole.buckets()) << "merge is not order-independent";
  }
}

TEST(LogHistogram, WeightedRecordEqualsRepeatedRecord) {
  LogHistogram repeated;
  LogHistogram weighted;
  for (int i = 0; i < 37; ++i) repeated.record(960);
  weighted.record(960, 37);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_EQ(weighted.sum(), repeated.sum());
  EXPECT_EQ(weighted.buckets(), repeated.buckets());
  EXPECT_EQ(weighted.quantile(0.999), repeated.quantile(0.999));
}

TEST(LogHistogram, ClearResetsEverything) {
  LogHistogram h;
  h.record(123, 5);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.record(7);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
}

}  // namespace
}  // namespace srbsg
