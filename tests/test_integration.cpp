// End-to-end scenarios crossing every layer: scheme + controller +
// attacker + analytic model, checking the paper's qualitative claims on
// a scaled bank.

#include <gtest/gtest.h>

#include "analytic/lifetime_models.hpp"
#include "sim/lifetime.hpp"

namespace srbsg {
namespace {

using sim::AttackKind;
using sim::LifetimeConfig;
using sim::run_lifetime;

LifetimeConfig cfg_for(wl::SchemeKind kind, AttackKind attack, u64 lines, u64 endurance) {
  LifetimeConfig c;
  c.pcm = pcm::PcmConfig::scaled(lines, endurance);
  c.scheme.kind = kind;
  c.scheme.lines = lines;
  c.scheme.regions = 8;
  c.scheme.inner_interval = 8;
  c.scheme.outer_interval = 16;
  c.scheme.stages = 7;
  c.scheme.seed = 11;
  c.attack = attack;
  c.write_budget = u64{1} << 36;
  return c;
}

TEST(Integration, SchemeOrderingUnderRaa) {
  // NoWL dies fastest; Start-Gap helps; Security RBSG approaches ideal.
  const u64 lines = 1024, endurance = 2048;
  const auto none = run_lifetime(cfg_for(wl::SchemeKind::kNone, AttackKind::kRaa, lines,
                                         endurance));
  const auto rbsg = run_lifetime(cfg_for(wl::SchemeKind::kRbsg, AttackKind::kRaa, lines,
                                         endurance));
  const auto srbsg = run_lifetime(cfg_for(wl::SchemeKind::kSecurityRbsg, AttackKind::kRaa,
                                          lines, endurance));
  ASSERT_TRUE(none.result.succeeded);
  ASSERT_TRUE(rbsg.result.succeeded);
  ASSERT_TRUE(srbsg.result.succeeded);
  EXPECT_LT(none.result.lifetime.value() * 10, rbsg.result.lifetime.value());
  EXPECT_LT(none.result.lifetime.value() * 10, srbsg.result.lifetime.value());
}

TEST(Integration, SecurityRbsgNearIdealUnderRaa) {
  // Fig. 14/15: Security RBSG reaches a large fraction of the ideal
  // lifetime under RAA (67.2% at paper scale with 7 stages). The scaled
  // run must keep the paper's regime: per-visit wear (M+1)·ψ_in well
  // below the endurance, or the result degenerates to birthday luck.
  const u64 lines = 512, endurance = 16384;
  auto c = cfg_for(wl::SchemeKind::kSecurityRbsg, AttackKind::kRaa, lines, endurance);
  c.scheme.regions = 8;        // M = 64, visit = 65*8 = 520 << E
  const auto out = run_lifetime(c);
  ASSERT_TRUE(out.result.succeeded);
  const double ideal = analytic::ideal_lifetime_ns(c.pcm);
  const double frac = static_cast<double>(out.result.lifetime.value()) / ideal;
  // Small banks sit deep in the extreme-value statistics (few visits per
  // slot at failure), so the achievable fraction is scale-depressed:
  // ~0.1-0.3 here vs 0.672 at paper scale. Unprotected RAA would be 1/N
  // = 0.2%; anything above 8% demonstrates effective leveling.
  EXPECT_GT(frac, 0.08);
  EXPECT_LE(frac, 1.02);
}

TEST(Integration, RtaHeadline) {
  // §III: RTA defeats RBSG and two-level SR; Security RBSG resists it.
  const u64 lines = 1024;
  const auto rbsg =
      run_lifetime(cfg_for(wl::SchemeKind::kRbsg, AttackKind::kRta, lines, 4096));
  ASSERT_TRUE(rbsg.result.succeeded) << rbsg.result.detail;

  auto sr2_cfg = cfg_for(wl::SchemeKind::kSr2, AttackKind::kRta, lines, 2048);
  sr2_cfg.scheme.regions = 16;
  sr2_cfg.scheme.inner_interval = 4;
  sr2_cfg.scheme.outer_interval = 8;
  const auto sr2 = run_lifetime(sr2_cfg);
  ASSERT_TRUE(sr2.result.succeeded) << sr2.result.detail;

  auto srbsg_cfg = cfg_for(wl::SchemeKind::kSecurityRbsg, AttackKind::kRta, lines, 4096);
  srbsg_cfg.write_budget = rbsg.result.writes * 2;  // same order of effort
  const auto srbsg = run_lifetime(srbsg_cfg);
  EXPECT_FALSE(srbsg.result.succeeded)
      << "Security RBSG fell to an RTA-sized budget: " << srbsg.result.detail;
}

TEST(Integration, WearConcentrationTellsTheStory) {
  // Under RTA the RBSG wear histogram is a spike; under RAA it is flat.
  const u64 lines = 1024;
  const auto rta = run_lifetime(cfg_for(wl::SchemeKind::kRbsg, AttackKind::kRta, lines, 4096));
  const auto raa = run_lifetime(cfg_for(wl::SchemeKind::kRbsg, AttackKind::kRaa, lines, 4096));
  ASSERT_TRUE(rta.result.succeeded);
  ASSERT_TRUE(raa.result.succeeded);
  EXPECT_GT(rta.wear.max_over_mean, raa.wear.max_over_mean);
}

TEST(Integration, AnalyticModelTracksSimulatedRaaAcrossScales) {
  // The extrapolation path: the discrete RAA/RBSG closed form must track
  // the simulator at multiple scales so paper-scale evaluation is
  // justified. The endurance scales with the per-visit wear (M+1)·ψ so
  // every scale sits in the paper's many-visits regime.
  for (u64 lines : {512u, 1024u, 2048u}) {
    const u64 m = lines / 8;
    const u64 endurance = 16 * (m + 1) * 8;
    auto c = cfg_for(wl::SchemeKind::kRbsg, AttackKind::kRaa, lines, endurance);
    const auto out = run_lifetime(c);
    ASSERT_TRUE(out.result.succeeded);
    const double model = analytic::raa_rbsg_exact_ns(
        c.pcm, analytic::RbsgShape{c.scheme.regions, c.scheme.inner_interval});
    const double ratio = static_cast<double>(out.result.lifetime.value()) / model;
    EXPECT_NEAR(ratio, 1.0, 0.15) << "lines=" << lines;
  }
}

}  // namespace
}  // namespace srbsg
