#include "mapping/quality.hpp"

#include <gtest/gtest.h>

#include "mapping/binary_matrix.hpp"
#include "mapping/feistel.hpp"
#include "mapping/xor_mapper.hpp"

namespace srbsg::mapping {
namespace {

TEST(XorMapper, SelfInverse) {
  XorMapper m(16, 0xBEEF);
  for (u64 x = 0; x < 2000; ++x) {
    EXPECT_EQ(m.unmap(m.map(x)), x);
    EXPECT_EQ(m.map(m.map(x)), x);  // XOR is an involution
  }
}

TEST(XorMapper, KeyMasked) {
  XorMapper m(8, 0xFFFF);
  EXPECT_EQ(m.key(), 0xFFu);
  EXPECT_TRUE(verify_bijection(m));
}

TEST(Quality, FeistelAvalancheImprovesWithStages) {
  Rng seeder(20);
  const auto k1 = FeistelNetwork::random_keys(16, 1, seeder);
  const auto k7 = FeistelNetwork::random_keys(16, 7, seeder);
  FeistelNetwork one(16, k1), seven(16, k7);
  Rng r1(21), r7(21);
  const auto q1 = measure_quality(one, 4000, 16, r1);
  const auto q7 = measure_quality(seven, 4000, 16, r7);
  // More stages diffuse better, but the paper's cubing round is a
  // T-function (bit i of x^3 mod 2^k depends only on bits <= i), so the
  // avalanche saturates well below the ideal 0.5 — this measurable
  // weakness is exactly why Fig. 14 tops out at ~67% of the ideal
  // lifetime instead of ~100%.
  EXPECT_LT(q1.avalanche, q7.avalanche);
  EXPECT_GT(q7.avalanche, 0.2);
  EXPECT_LT(q7.avalanche, 0.45);
}

TEST(Quality, BinaryMatrixAvalancheIsNearIdeal) {
  // Contrast: a random GF(2) matrix flips each output bit with
  // probability 1/2 per input-bit flip.
  Rng seeder(27);
  BinaryMatrixMapper m(16, seeder);
  Rng rng(28);
  const auto q = measure_quality(m, 4000, 16, rng);
  EXPECT_NEAR(q.avalanche, 0.5, 0.05);
}

TEST(Quality, XorMapperHasPoorAvalanche) {
  XorMapper m(16, 0x1234);
  Rng rng(22);
  const auto q = measure_quality(m, 4000, 16, rng);
  // XOR flips exactly the input bit: avalanche = 1/width, far from 0.5.
  EXPECT_NEAR(q.avalanche, 1.0 / 16.0, 0.01);
}

TEST(Quality, FeistelScattersSequentialInput) {
  Rng seeder(23);
  const auto keys = FeistelNetwork::random_keys(14, 3, seeder);
  FeistelNetwork net(14, keys);
  Rng rng(24);
  const auto q = measure_quality(net, 1u << 14, 64, rng);
  // Chi-square should be in the vicinity of the bucket count for a
  // well-scrambled mapping (allow a generous band).
  EXPECT_LT(q.sequential_chi2, 64.0 * 4.0);
}

TEST(Quality, FixedPointRateIsTiny) {
  Rng seeder(25);
  const auto keys = FeistelNetwork::random_keys(16, 7, seeder);
  FeistelNetwork net(16, keys);
  Rng rng(26);
  const auto q = measure_quality(net, 8000, 16, rng);
  EXPECT_LT(q.fixed_point_rate, 0.01);
}

TEST(VerifyBijection, DetectsNonBijection) {
  // A mapper that collapses everything to zero must be rejected.
  class Broken final : public AddressMapper {
   public:
    [[nodiscard]] u32 width_bits() const override { return 4; }
    [[nodiscard]] u64 map(u64) const override { return 0; }
    [[nodiscard]] u64 unmap(u64) const override { return 0; }
  } broken;
  EXPECT_FALSE(verify_bijection(broken));
}

}  // namespace
}  // namespace srbsg::mapping
