#include "controller/multi_bank.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace srbsg::ctl {
namespace {

MultiBankMemory make_memory(u64 banks, u64 lines_per_bank = 256, u64 endurance = 1u << 20) {
  MultiBankConfig mcfg;
  mcfg.banks = banks;
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = lines_per_bank;
  spec.regions = 8;
  spec.inner_interval = 8;
  spec.outer_interval = 16;
  spec.stages = 5;
  return MultiBankMemory(mcfg, pcm::PcmConfig::scaled(lines_per_bank, endurance), spec);
}

TEST(MultiBank, InterleavingCoversAllBanks) {
  auto mem = make_memory(4);
  EXPECT_EQ(mem.logical_lines(), 1024u);
  for (u64 g = 0; g < 16; ++g) {
    const auto loc = mem.locate(La{g});
    EXPECT_EQ(loc.bank, g % 4);
    EXPECT_EQ(loc.local.value(), g / 4);
  }
}

TEST(MultiBank, BlockModePartitionsContiguously) {
  MultiBankConfig mcfg;
  mcfg.banks = 4;
  mcfg.line_interleaved = false;
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kRbsg;
  spec.lines = 256;
  spec.regions = 4;
  spec.inner_interval = 8;
  MultiBankMemory mem(mcfg, pcm::PcmConfig::scaled(256, 1u << 20), spec);
  EXPECT_EQ(mem.locate(La{0}).bank, 0u);
  EXPECT_EQ(mem.locate(La{255}).bank, 0u);
  EXPECT_EQ(mem.locate(La{256}).bank, 1u);
  EXPECT_EQ(mem.locate(La{1023}).bank, 3u);
}

TEST(MultiBank, DataIntegrityAcrossBanks) {
  auto mem = make_memory(4);
  for (u64 g = 0; g < mem.logical_lines(); ++g) {
    mem.write(La{g}, pcm::LineData::mixed(0xFACE0000 + g));
  }
  // Churn to force remaps in every bank.
  for (u64 i = 0; i < 50'000; ++i) {
    const u64 g = i % mem.logical_lines();
    mem.write(La{g}, pcm::LineData::mixed(0xFACE0000 + g));
  }
  for (u64 g = 0; g < mem.logical_lines(); ++g) {
    EXPECT_EQ(mem.read(La{g}).first.token, 0xFACE0000 + g) << g;
  }
}

TEST(MultiBank, BanksHaveIndependentKeys) {
  auto mem = make_memory(4);
  // Same local address must not land on the same physical line in every
  // bank (independent per-bank seeds, §IV.A).
  const Pa p0 = mem.bank(0).scheme().translate(La{7});
  bool all_same = true;
  for (u64 b = 1; b < 4; ++b) {
    if (mem.bank(b).scheme().translate(La{7}) != p0) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(MultiBank, ParallelClockIsMaxNotSum) {
  auto mem = make_memory(4);
  // Write the same volume into every bank: wall clock ≈ one bank's time.
  for (u64 b = 0; b < 4; ++b) {
    mem.write_repeated(La{b}, pcm::LineData::all_zero(), 10'000);
  }
  Ns busiest{0};
  Ns sum{0};
  for (u64 b = 0; b < 4; ++b) {
    busiest = std::max(busiest, mem.bank(b).now());
    sum += mem.bank(b).now();
  }
  EXPECT_EQ(mem.now(), busiest);
  EXPECT_LT(mem.now().value() * 2, sum.value());
}

TEST(MultiBank, ParallelHammeringKillsInOneBankTime) {
  // The bank-parallelism observation: an attacker hammering K banks in
  // parallel wears K lines for the wall-clock price of one, but per-bank
  // wear leveling confines each stream to its own bank.
  auto mem = make_memory(4, 256, 1u << 14);
  u64 rounds = 0;
  while (!mem.failed() && rounds < 1u << 14) {
    for (u64 b = 0; b < 4; ++b) {
      mem.write_repeated(La{b}, pcm::LineData::mixed(), 4096);
    }
    ++rounds;
  }
  ASSERT_TRUE(mem.failed());
  // Every bank took roughly the same damage (streams cannot combine).
  const u64 dead = mem.failed_bank();
  for (u64 b = 0; b < 4; ++b) {
    EXPECT_NEAR(static_cast<double>(mem.bank(b).total_writes()),
                static_cast<double>(mem.bank(dead).total_writes()),
                static_cast<double>(mem.bank(dead).total_writes()) * 0.1);
  }
}

TEST(MultiBank, FailureReportsEarliestBank) {
  auto mem = make_memory(2, 256, 4096);
  mem.write_repeated(La{1}, pcm::LineData::mixed(), 1u << 22);  // bank 1 only
  ASSERT_TRUE(mem.failed());
  EXPECT_EQ(mem.failed_bank(), 1u);
  EXPECT_GT(mem.failure().time.value(), 0u);
}

TEST(MultiBank, Validation) {
  MultiBankConfig mcfg;
  mcfg.banks = 3;
  EXPECT_THROW(mcfg.validate(), CheckFailure);
}

TEST(MultiBank, OutOfRangeAddressThrows) {
  auto mem = make_memory(2);
  EXPECT_THROW(mem.write(La{mem.logical_lines()}, pcm::LineData::all_zero()), CheckFailure);
}

}  // namespace
}  // namespace srbsg::ctl
