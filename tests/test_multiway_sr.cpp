#include "wl/multiway_sr.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

MultiWaySrConfig small_cfg() {
  MultiWaySrConfig cfg;
  cfg.lines = 256;
  cfg.regions = 8;
  cfg.interval = 4;
  cfg.seed = 21;
  return cfg;
}

TEST(MultiWaySr, StaticPartitionByHighBits) {
  MultiWaySecurityRefresh s(small_cfg());
  // LA's sub-region is fixed by its high bits — the §III.E weakness.
  for (u64 la = 0; la < 256; ++la) {
    EXPECT_EQ(s.translate(La{la}).value() / 32, la / 32);
  }
}

TEST(MultiWaySr, InitiallyBijective) {
  MultiWaySecurityRefresh s(small_cfg());
  testutil::expect_translation_bijective(s);
}

TEST(MultiWaySr, IntegrityChurn) {
  MultiWaySecurityRefresh s(small_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 20'000, 2'500);
}

TEST(MultiWaySr, BulkMatchesPerWriteExactly) {
  MultiWaySecurityRefresh a(small_cfg()), b(small_cfg());
  pcm::PcmBank bank_a(pcm::PcmConfig::scaled(256, u64{1} << 40), a.physical_lines());
  pcm::PcmBank bank_b(pcm::PcmConfig::scaled(256, u64{1} << 40), b.physical_lines());
  Ns t_loop{0};
  for (int i = 0; i < 4000; ++i) {
    t_loop += a.write(La{100}, pcm::LineData::mixed(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{100}, pcm::LineData::mixed(), 4000, bank_b);
  EXPECT_EQ(bulk.total, t_loop);
  for (u64 la = 0; la < 256; ++la) {
    EXPECT_EQ(a.translate(La{la}), b.translate(La{la}));
  }
}

TEST(MultiWaySr, RegionsIndependent) {
  MultiWaySecurityRefresh s(small_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), s.physical_lines());
  std::vector<u64> other_before;
  for (u64 la = 32; la < 256; ++la) other_before.push_back(s.translate(La{la}).value());
  // Hammer region 0 only.
  s.write_repeated(La{0}, pcm::LineData::all_zero(), 50'000, bank);
  std::size_t idx = 0;
  for (u64 la = 32; la < 256; ++la) {
    EXPECT_EQ(s.translate(La{la}).value(), other_before[idx++]) << "la " << la;
  }
}

TEST(MultiWaySr, ConfigValidation) {
  auto cfg = small_cfg();
  cfg.regions = 5;
  EXPECT_THROW(MultiWaySecurityRefresh{cfg}, CheckFailure);
}

}  // namespace
}  // namespace srbsg::wl
