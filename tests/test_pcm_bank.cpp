#include "pcm/bank.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "common/check.hpp"

namespace srbsg::pcm {
namespace {

PcmConfig small_cfg(u64 lines = 16, u64 endurance = 10) {
  return PcmConfig::scaled(lines, endurance);
}

TEST(PcmBank, WriteUpdatesDataAndWear) {
  PcmBank bank(small_cfg(), 16);
  const Ns lat = bank.write(Pa{3}, LineData::all_one(42));
  EXPECT_EQ(lat, Ns{1000});
  EXPECT_EQ(bank.wear(Pa{3}), 1u);
  EXPECT_EQ(bank.data(Pa{3}).token, 42u);
  EXPECT_EQ(bank.data(Pa{3}).cls, DataClass::kAllOne);
  EXPECT_EQ(bank.total_writes(), 1u);
}

TEST(PcmBank, AllZeroWriteIsResetFast) {
  PcmBank bank(small_cfg(), 16);
  EXPECT_EQ(bank.write(Pa{0}, LineData::all_zero()), Ns{125});
  EXPECT_EQ(bank.write(Pa{0}, LineData::mixed()), Ns{1000});
}

TEST(PcmBank, BulkWriteEquivalentToLoop) {
  PcmBank a(small_cfg(16, 1000), 16);
  PcmBank b(small_cfg(16, 1000), 16);
  Ns t_loop{0};
  for (int i = 0; i < 100; ++i) t_loop += a.write(Pa{5}, LineData::all_one());
  const Ns t_bulk = b.bulk_write(Pa{5}, LineData::all_one(), 100);
  EXPECT_EQ(t_loop, t_bulk);
  EXPECT_EQ(a.wear(Pa{5}), b.wear(Pa{5}));
  EXPECT_EQ(a.total_writes(), b.total_writes());
}

TEST(PcmBank, BulkWriteZeroIsNoop) {
  PcmBank bank(small_cfg(), 16);
  EXPECT_EQ(bank.bulk_write(Pa{1}, LineData::all_one(), 0), Ns{0});
  EXPECT_EQ(bank.wear(Pa{1}), 0u);
}

TEST(PcmBank, ReadReturnsDataWithoutWear) {
  PcmBank bank(small_cfg(), 16);
  bank.write(Pa{2}, LineData::mixed(7));
  const auto [data, lat] = bank.read(Pa{2});
  EXPECT_EQ(data.token, 7u);
  EXPECT_EQ(lat, Ns{125});
  EXPECT_EQ(bank.wear(Pa{2}), 1u);
}

TEST(PcmBank, MoveLineCopiesDataAndWearsDestination) {
  PcmBank bank(small_cfg(), 16);
  bank.write(Pa{1}, LineData::all_one(99));
  const Ns lat = bank.move_line(Pa{1}, Pa{4});
  EXPECT_EQ(lat, Ns{1125});  // read + SET
  EXPECT_EQ(bank.data(Pa{4}).token, 99u);
  EXPECT_EQ(bank.wear(Pa{4}), 1u);
  EXPECT_EQ(bank.wear(Pa{1}), 1u);  // source keeps its wear, gains none
}

TEST(PcmBank, MoveAllZeroLineIsFast) {
  PcmBank bank(small_cfg(), 16);
  EXPECT_EQ(bank.move_line(Pa{0}, Pa{1}), Ns{250});
}

TEST(PcmBank, SwapExchangesDataAndWearsBoth) {
  PcmBank bank(small_cfg(), 16);
  bank.write(Pa{1}, LineData::all_one(11));
  bank.write(Pa{2}, LineData::all_zero(22));
  const Ns lat = bank.swap_lines(Pa{1}, Pa{2});
  EXPECT_EQ(lat, Ns{2 * 125 + 125 + 1000});  // Fig. 4(b): 1375 ns
  EXPECT_EQ(bank.data(Pa{1}).token, 22u);
  EXPECT_EQ(bank.data(Pa{2}).token, 11u);
  EXPECT_EQ(bank.wear(Pa{1}), 2u);
  EXPECT_EQ(bank.wear(Pa{2}), 2u);
}

TEST(PcmBank, FailureRecordedAtEndurance) {
  PcmBank bank(small_cfg(16, 5), 16);
  for (int i = 0; i < 4; ++i) bank.write(Pa{7}, LineData::all_zero());
  EXPECT_FALSE(bank.has_failure());
  bank.write(Pa{7}, LineData::all_zero());
  ASSERT_TRUE(bank.has_failure());
  EXPECT_EQ(bank.first_failed_line(), Pa{7});
  EXPECT_EQ(bank.failure_overshoot(), 0u);
}

TEST(PcmBank, BulkOvershootTracked) {
  PcmBank bank(small_cfg(16, 5), 16);
  bank.bulk_write(Pa{3}, LineData::all_zero(), 12);
  ASSERT_TRUE(bank.has_failure());
  EXPECT_EQ(bank.first_failed_line(), Pa{3});
  EXPECT_EQ(bank.failure_overshoot(), 7u);
}

TEST(PcmBank, FirstFailureSticks) {
  PcmBank bank(small_cfg(16, 3), 16);
  bank.bulk_write(Pa{1}, LineData::all_zero(), 5);
  bank.bulk_write(Pa{2}, LineData::all_zero(), 50);
  EXPECT_EQ(bank.first_failed_line(), Pa{1});
}

TEST(PcmBank, ResetClearsEverything) {
  PcmBank bank(small_cfg(16, 3), 16);
  bank.bulk_write(Pa{1}, LineData::all_one(5), 10);
  bank.reset();
  EXPECT_FALSE(bank.has_failure());
  EXPECT_EQ(bank.total_writes(), 0u);
  EXPECT_EQ(bank.wear(Pa{1}), 0u);
  EXPECT_EQ(bank.max_wear(), 0u);
}

TEST(PcmBank, OutOfRangeThrows) {
  // Bounds on the write/read hot path are SRBSG_DCHECK-tier: armed in
  // Debug and sanitizer builds, compiled to assumptions in optimized
  // builds (where executing them would be UB, so skip entirely).
  if constexpr (!kDchecksArmed) {
    GTEST_SKIP() << "SRBSG_DCHECK unarmed in this build";
  } else {
    PcmBank bank(small_cfg(), 16);
    EXPECT_THROW(bank.write(Pa{16}, LineData::all_zero()), CheckFailure);
    EXPECT_THROW((void)bank.read(Pa{100}), CheckFailure);
  }
}

TEST(PcmBank, LineEnduranceOutOfRangeThrows) {
  PcmBank bank(small_cfg(), 16);
  EXPECT_THROW((void)bank.line_endurance(Pa{16}), CheckFailure);
}

TEST(PcmBank, NoFailureQueryThrows) {
  PcmBank bank(small_cfg(), 16);
  EXPECT_THROW((void)bank.first_failed_line(), CheckFailure);
}

TEST(PcmBank, ExtraPhysicalLinesAllowed) {
  PcmBank bank(small_cfg(16, 10), 20);
  EXPECT_EQ(bank.total_lines(), 20u);
  bank.write(Pa{19}, LineData::all_zero());
  EXPECT_EQ(bank.wear(Pa{19}), 1u);
}

PcmConfig variation_cfg(u64 lines, u64 endurance, u64 seed) {
  PcmConfig cfg = PcmConfig::scaled(lines, endurance);
  cfg.endurance_variation = 0.1;
  cfg.variation_seed = seed;
  return cfg;
}

TEST(PcmBankReset, ReconfigureMatchesFreshConstruction) {
  PcmBank recycled(small_cfg(16, 3), 16);
  recycled.bulk_write(Pa{2}, LineData::all_one(9), 10);  // dirty it, incl. failure
  ASSERT_TRUE(recycled.has_failure());

  const PcmConfig target = variation_cfg(32, 1000, 42);
  recycled.reset(target, 40);
  const PcmBank fresh(target, 40);

  EXPECT_EQ(recycled.total_lines(), fresh.total_lines());
  EXPECT_FALSE(recycled.has_failure());
  EXPECT_EQ(recycled.total_writes(), 0u);
  for (u64 i = 0; i < 40; ++i) {
    EXPECT_EQ(recycled.wear(Pa{i}), 0u);
    EXPECT_EQ(recycled.data(Pa{i}), LineData::all_zero());
    EXPECT_EQ(recycled.line_endurance(Pa{i}), fresh.line_endurance(Pa{i}));
  }
}

TEST(PcmBankReset, ShrinkingAndGrowingKeepsSizesConsistent) {
  PcmBank bank(small_cfg(64, 5), 64);
  bank.reset(small_cfg(16, 5), 16);
  EXPECT_EQ(bank.total_lines(), 16u);
  EXPECT_EQ(bank.max_wear(), 0u);
  bank.reset(small_cfg(128, 5), 130);
  EXPECT_EQ(bank.total_lines(), 130u);
  bank.write(Pa{129}, LineData::all_zero());
  EXPECT_EQ(bank.wear(Pa{129}), 1u);
}

TEST(PcmBankReset, EnduranceTableReusedWhenDrawUnchanged) {
  const PcmConfig cfg = variation_cfg(32, 1000, 7);
  PcmBank bank(cfg, 32);
  EXPECT_EQ(bank.endurance_rebuilds(), 1u);
  bank.bulk_write(Pa{1}, LineData::mixed(), 50);
  bank.reset(cfg, 32);
  EXPECT_EQ(bank.endurance_rebuilds(), 1u);  // table kept
  const PcmBank fresh(cfg, 32);
  for (u64 i = 0; i < 32; ++i) {
    EXPECT_EQ(bank.line_endurance(Pa{i}), fresh.line_endurance(Pa{i}));
  }
}

TEST(PcmBankReset, EnduranceTableRegeneratedWhenDrawChanges) {
  PcmBank bank(variation_cfg(32, 1000, 7), 32);
  bank.reset(variation_cfg(32, 1000, 8), 32);  // new seed -> new draw
  EXPECT_EQ(bank.endurance_rebuilds(), 2u);
  const PcmBank fresh(variation_cfg(32, 1000, 8), 32);
  for (u64 i = 0; i < 32; ++i) {
    EXPECT_EQ(bank.line_endurance(Pa{i}), fresh.line_endurance(Pa{i}));
  }
}

TEST(PcmBankReset, VariationDisabledClearsTable) {
  PcmBank bank(variation_cfg(32, 1000, 7), 32);
  bank.reset(small_cfg(32, 1000), 32);
  for (u64 i = 0; i < 32; ++i) {
    EXPECT_EQ(bank.line_endurance(Pa{i}), 1000u);
  }
}

TEST(PcmBankReset, MovedBankKeepsEnduranceLookup) {
  PcmBank source(variation_cfg(32, 1000, 7), 32);
  const u64 e0 = source.line_endurance(Pa{0});
  PcmBank moved(std::move(source));
  EXPECT_EQ(moved.line_endurance(Pa{0}), e0);
  moved.bulk_write(Pa{0}, LineData::all_zero(), moved.line_endurance(Pa{0}));
  EXPECT_TRUE(moved.has_failure());  // limit still per-line, not lost in the move
}

}  // namespace
}  // namespace srbsg::pcm
