#include "pcm/timing.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace srbsg::pcm {
namespace {

TEST(PcmConfig, PaperBankShape) {
  const auto cfg = PcmConfig::paper_bank();
  EXPECT_EQ(cfg.line_count, u64{1} << 22);
  EXPECT_EQ(cfg.line_bytes, 256u);
  EXPECT_EQ(cfg.capacity_bytes(), u64{1} << 30);  // 1 GB
  EXPECT_EQ(cfg.address_bits(), 22u);
  EXPECT_EQ(cfg.endurance, 100'000'000u);
}

TEST(PcmConfig, ValidationRejectsNonPow2) {
  PcmConfig cfg;
  cfg.line_count = 1000;
  EXPECT_THROW(cfg.validate(), CheckFailure);
}

TEST(PcmConfig, ValidationRejectsFastSet) {
  PcmConfig cfg;
  cfg.set_latency = Ns{100};
  cfg.reset_latency = Ns{125};
  EXPECT_THROW(cfg.validate(), CheckFailure);
}

TEST(Timing, WriteLatencyByDataClass) {
  const auto cfg = PcmConfig::paper_bank();
  EXPECT_EQ(write_latency(cfg, DataClass::kAllZero), Ns{125});
  EXPECT_EQ(write_latency(cfg, DataClass::kAllOne), Ns{1000});
  EXPECT_EQ(write_latency(cfg, DataClass::kMixed), Ns{1000});
}

TEST(Timing, MoveLatencyMatchesFig4a) {
  const auto cfg = PcmConfig::paper_bank();
  EXPECT_EQ(move_latency(cfg, DataClass::kAllZero), Ns{250});
  EXPECT_EQ(move_latency(cfg, DataClass::kAllOne), Ns{1125});
}

TEST(Timing, SwapLatencyMatchesFig4b) {
  const auto cfg = PcmConfig::paper_bank();
  EXPECT_EQ(swap_latency(cfg, DataClass::kAllZero, DataClass::kAllZero), Ns{500});
  EXPECT_EQ(swap_latency(cfg, DataClass::kAllZero, DataClass::kAllOne), Ns{1375});
  EXPECT_EQ(swap_latency(cfg, DataClass::kAllOne, DataClass::kAllOne), Ns{2250});
}

TEST(Timing, NsConversions) {
  const Ns day{86'400'000'000'000ULL};
  EXPECT_DOUBLE_EQ(day.days(), 1.0);
  EXPECT_DOUBLE_EQ(day.hours(), 24.0);
  EXPECT_DOUBLE_EQ(Ns{1'000'000'000}.seconds(), 1.0);
}

TEST(Timing, DataClassNames) {
  EXPECT_EQ(to_string(DataClass::kAllZero), "ALL-0");
  EXPECT_EQ(to_string(DataClass::kAllOne), "ALL-1");
  EXPECT_EQ(to_string(DataClass::kMixed), "MIXED");
}

}  // namespace
}  // namespace srbsg::pcm
