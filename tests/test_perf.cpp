#include "perf/ipc_experiment.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "trace/generators.hpp"

namespace srbsg::perf {
namespace {

constexpr u64 kLines = 1u << 12;

pcm::PcmConfig cfg() { return pcm::PcmConfig::scaled(kLines, u64{1} << 40); }

wl::SchemeSpec srbsg_spec(u64 inner = 64) {
  wl::SchemeSpec s;
  s.kind = wl::SchemeKind::kSecurityRbsg;
  s.lines = kLines;
  s.regions = 32;
  s.inner_interval = inner;
  s.outer_interval = 128;
  s.stages = 7;
  return s;
}

trace::Trace light_trace() {
  trace::GeneratorOptions o;
  o.lines = kLines;
  o.accesses = 20'000;
  o.write_ratio = 0.3;
  o.mean_instruction_gap = 500;  // sparse accesses
  o.seed = 3;
  return make_uniform(o);
}

TEST(WriteQueue, DrainAndOverflowSemantics) {
  WriteQueue q(2);
  q.push(100);
  q.push(200);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.earliest_completion(), 100u);
  q.drain_until(150);
  EXPECT_EQ(q.occupancy(), 1u);
  q.push(300);
  EXPECT_THROW(q.push(400), CheckFailure);
  q.drain_until(1000);
  EXPECT_EQ(q.occupancy(), 0u);
}

TEST(CoreModel, IpcApproachesBaseWithSparseAccesses) {
  ctl::MemoryController mc(cfg(), wl::make_scheme(srbsg_spec()));
  CoreParams core;
  const auto res = execute_trace(light_trace(), mc, core);
  EXPECT_GT(res.ipc, 0.5);
  EXPECT_LE(res.ipc, 1.0);
  EXPECT_EQ(res.reads + res.writes, 20'000u);
}

TEST(CoreModel, DenseTrafficLowersIpc) {
  trace::GeneratorOptions o;
  o.lines = kLines;
  o.accesses = 20'000;
  o.write_ratio = 0.95;  // write bursts actually fill the queue
  o.mean_instruction_gap = 5;  // memory-bound
  o.seed = 4;
  ctl::MemoryController mc_dense(cfg(), wl::make_scheme(srbsg_spec()));
  ctl::MemoryController mc_light(cfg(), wl::make_scheme(srbsg_spec()));
  CoreParams core;
  const auto dense = execute_trace(make_uniform(o), mc_dense, core);
  const auto light = execute_trace(light_trace(), mc_light, core);
  EXPECT_LT(dense.ipc, light.ipc);
  EXPECT_GT(dense.queue_full_stalls, 0u);
}

TEST(IpcExperiment, DegradationSmallAndPositive) {
  // The paper's headline: wear-leveling overhead is ~1% or less.
  const auto cmp = compare_ipc(light_trace(), srbsg_spec(), cfg(), CoreParams{}, Ns{10});
  EXPECT_GE(cmp.degradation_pct, 0.0);
  EXPECT_LT(cmp.degradation_pct, 10.0);
  EXPECT_GT(cmp.ipc_scheme, 0.0);
}

TEST(IpcExperiment, SmallerInnerIntervalCostsMore) {
  // Fig-like trend from §V.C.4: ψ_in 32 degrades more than ψ_in 128.
  const auto t = light_trace();
  const auto d32 = compare_ipc(t, srbsg_spec(32), cfg(), CoreParams{}, Ns{10});
  const auto d128 = compare_ipc(t, srbsg_spec(128), cfg(), CoreParams{}, Ns{10});
  EXPECT_GE(d32.degradation_pct, d128.degradation_pct);
}

TEST(IpcExperiment, CacheFilteredVariantFiltersTraffic) {
  // With the hierarchy in front, far fewer accesses reach PCM, so the
  // wear-leveling cost (translation + stalls) shrinks further.
  trace::GeneratorOptions o;
  o.lines = 64;  // cache-resident CPU footprint
  o.accesses = 30'000;
  o.write_ratio = 0.5;
  o.mean_instruction_gap = 20;
  o.seed = 11;
  const auto cpu = trace::make_uniform(o);
  HierarchyConfig hier;
  hier.l1 = {16 * 256, 256, 2};
  hier.l2 = {64 * 256, 256, 4};
  hier.l3 = {256 * 256, 256, 8};
  const auto filtered_trace = filter_through_hierarchy(cpu, hier);
  EXPECT_LT(filtered_trace.pcm_trace.size(), cpu.size() / 50);

  const auto filtered = compare_ipc_filtered(cpu, hier, srbsg_spec(), cfg(), CoreParams{},
                                             Ns{10});
  // Residual cold-miss traffic still sees only a small relative cost.
  EXPECT_GE(filtered.degradation_pct, 0.0);
  EXPECT_LT(filtered.degradation_pct, 10.0);
  EXPECT_NE(filtered.workload.find("+cache"), std::string::npos);
}

TEST(IpcExperiment, SuiteRunsAllProfiles) {
  const auto results = run_ipc_suite(trace::parsec_profiles(), srbsg_spec(), cfg(),
                                     CoreParams{}, Ns{10}, 200'000, 5);
  EXPECT_EQ(results.size(), 13u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.workload.empty());
    EXPECT_GT(r.ipc_baseline, 0.0);
  }
  EXPECT_LT(mean_degradation(results), 15.0);
}

}  // namespace
}  // namespace srbsg::perf
