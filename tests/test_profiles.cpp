#include "trace/profiles.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace srbsg::trace {
namespace {

TEST(Profiles, SuiteSizesMatchPaper) {
  // §V.C.4: 13 PARSEC and 27 SPEC CPU2006 benchmarks.
  EXPECT_EQ(parsec_profiles().size(), 13u);
  EXPECT_EQ(spec2006_profiles().size(), 27u);
}

TEST(Profiles, NamesAreUnique) {
  std::unordered_set<std::string> names;
  for (const auto& p : parsec_profiles()) EXPECT_TRUE(names.insert(p.name).second);
  for (const auto& p : spec2006_profiles()) EXPECT_TRUE(names.insert(p.name).second);
}

TEST(Profiles, SaneIntensities) {
  for (auto span : {parsec_profiles(), spec2006_profiles()}) {
    for (const auto& p : span) {
      EXPECT_GT(p.read_mpki, 0.0) << p.name;
      EXPECT_GT(p.write_mpki, 0.0) << p.name;
      EXPECT_LT(p.write_mpki, 10.0) << p.name;
      EXPECT_GT(p.footprint, 0.0) << p.name;
      EXPECT_LE(p.footprint, 1.0) << p.name;
    }
  }
}

TEST(Profiles, TraceRealizesIntensity) {
  const auto& p = parsec_profiles()[2];  // canneal: memory-heavy
  const auto t = make_profile_trace(p, 1u << 14, 2'000'000, 5);
  const auto s = t.stats();
  EXPECT_NEAR(s.write_mpki, p.write_mpki, p.write_mpki * 0.3);
  EXPECT_NEAR(s.read_mpki + s.write_mpki, p.read_mpki + p.write_mpki,
              (p.read_mpki + p.write_mpki) * 0.3);
}

TEST(Profiles, FootprintRespected) {
  const auto& p = spec2006_profiles()[1];  // bzip2: tiny footprint
  const u64 lines = 1u << 14;
  const auto t = make_profile_trace(p, lines, 10'000'000, 7);
  u64 max_addr = 0;
  for (const auto& r : t) max_addr = std::max(max_addr, r.addr);
  EXPECT_LT(max_addr, static_cast<u64>(0.05 * static_cast<double>(lines)));
}

TEST(Profiles, BzipIsLighterThanCanneal) {
  // Relative intensity ordering drives the paper's "bzip2/gcc show no
  // degradation" observation.
  const auto& bzip = spec2006_profiles()[1];
  const auto& canneal = parsec_profiles()[2];
  EXPECT_LT(bzip.write_mpki * 10, canneal.write_mpki);
}

TEST(Profiles, DeterministicForSeed) {
  const auto& p = parsec_profiles()[0];
  const auto a = make_profile_trace(p, 1024, 100'000, 9);
  const auto b = make_profile_trace(p, 1024, 100'000, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 13) {
    EXPECT_EQ(a[i].addr, b[i].addr);
  }
}

}  // namespace
}  // namespace srbsg::trace
