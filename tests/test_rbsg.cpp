#include "wl/rbsg.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

RbsgConfig small_cfg() {
  RbsgConfig cfg;
  cfg.lines = 256;
  cfg.regions = 4;
  cfg.interval = 8;
  cfg.seed = 5;
  return cfg;
}

pcm::PcmConfig pcm_for(const RbsgConfig& cfg) {
  return pcm::PcmConfig::scaled(cfg.lines, u64{1} << 40);
}

TEST(Rbsg, PhysicalLinesIncludeGapLines) {
  RegionStartGap s(small_cfg());
  EXPECT_EQ(s.physical_lines(), 4 * (64 + 1));
  EXPECT_EQ(s.logical_lines(), 256u);
}

TEST(Rbsg, TranslationBijectiveInitially) {
  RegionStartGap s(small_cfg());
  testutil::expect_translation_bijective(s);
}

TEST(Rbsg, RandomizerRoundTrips) {
  RegionStartGap s(small_cfg());
  for (u64 la = 0; la < 256; ++la) {
    EXPECT_EQ(s.derandomize(s.randomize(la)), la);
  }
}

TEST(Rbsg, RemapTriggersEveryInterval) {
  const auto cfg = small_cfg();
  RegionStartGap s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  const u64 q = s.randomize(0) / cfg.region_lines();
  u32 movements = 0;
  for (u64 i = 0; i < cfg.interval; ++i) {
    const auto out = s.write(La{0}, pcm::LineData::all_zero(), bank);
    movements += out.movements;
  }
  EXPECT_EQ(movements, 1u);
  EXPECT_EQ(s.region_write_counter(q), 0u);
}

TEST(Rbsg, StallOnlyOnTriggeringWrite) {
  const auto cfg = small_cfg();
  RegionStartGap s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  for (u64 i = 0; i < cfg.interval - 1; ++i) {
    EXPECT_EQ(s.write(La{0}, pcm::LineData::all_zero(), bank).stall, Ns{0});
  }
  const auto out = s.write(La{0}, pcm::LineData::all_zero(), bank);
  EXPECT_GT(out.stall.value(), 0u);
  EXPECT_EQ(out.total, Ns{125} + out.stall);
}

TEST(Rbsg, IntegrityChurn) {
  const auto cfg = small_cfg();
  RegionStartGap s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 20'000, 2'500);
}

TEST(Rbsg, BulkMatchesPerWriteExactly) {
  const auto cfg = small_cfg();
  RegionStartGap a(cfg), b(cfg);
  pcm::PcmBank bank_a(pcm_for(cfg), a.physical_lines());
  pcm::PcmBank bank_b(pcm_for(cfg), b.physical_lines());

  Ns t_loop{0};
  for (int i = 0; i < 5000; ++i) {
    t_loop += a.write(La{3}, pcm::LineData::all_one(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{3}, pcm::LineData::all_one(), 5000, bank_b);
  EXPECT_EQ(bulk.total, t_loop);
  EXPECT_EQ(bulk.writes_applied, 5000u);
  for (u64 la = 0; la < cfg.lines; ++la) {
    EXPECT_EQ(a.translate(La{la}), b.translate(La{la})) << la;
  }
  EXPECT_EQ(bank_a.wear_counts().size(), bank_b.wear_counts().size());
  for (std::size_t i = 0; i < bank_a.wear_counts().size(); ++i) {
    EXPECT_EQ(bank_a.wear_counts()[i], bank_b.wear_counts()[i]) << "pa " << i;
  }
}

TEST(Rbsg, RegionsAreIndependent) {
  const auto cfg = small_cfg();
  RegionStartGap s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  // Hammer one address; only its region's gap should move.
  const u64 q0 = s.randomize(0) / cfg.region_lines();
  const std::vector<u64> gaps_before = {s.region_gap(0), s.region_gap(1), s.region_gap(2),
                                        s.region_gap(3)};
  s.write_repeated(La{0}, pcm::LineData::all_zero(), 10 * cfg.interval, bank);
  for (u64 q = 0; q < 4; ++q) {
    if (q == q0) {
      EXPECT_NE(s.region_gap(q), gaps_before[q]);
    } else {
      EXPECT_EQ(s.region_gap(q), gaps_before[q]);
    }
  }
}

TEST(Rbsg, HammeredLineMovesOncePerRotation) {
  const auto cfg = small_cfg();
  RegionStartGap s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  const Pa before = s.translate(La{9});
  const u64 m = cfg.region_lines();
  // One full rotation of region q: (M+1) movements — need the writes to
  // land in LA 9's own region, so hammer LA 9 itself.
  s.write_repeated(La{9}, pcm::LineData::all_zero(), (m + 1) * cfg.interval, bank);
  const Pa after = s.translate(La{9});
  EXPECT_NE(before, after);
}

TEST(Rbsg, MatrixRandomizerWorks) {
  auto cfg = small_cfg();
  cfg.randomizer = RbsgConfig::Randomizer::kMatrix;
  RegionStartGap s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 5'000);
}

TEST(Rbsg, PlainStartGapFactory) {
  const auto cfg = RegionStartGap::plain_start_gap(128, 10);
  EXPECT_EQ(cfg.regions, 1u);
  EXPECT_EQ(cfg.randomizer, RbsgConfig::Randomizer::kNone);
  RegionStartGap s(cfg);
  EXPECT_EQ(s.randomize(77), 77u);  // identity randomizer
  pcm::PcmBank bank(pcm::PcmConfig::scaled(128, u64{1} << 40), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 5'000);
}

TEST(Rbsg, ConfigValidation) {
  RbsgConfig cfg = small_cfg();
  cfg.regions = 3;  // does not divide 256
  EXPECT_THROW(RegionStartGap{cfg}, CheckFailure);
  cfg = small_cfg();
  cfg.lines = 100;  // not a power of two
  EXPECT_THROW(RegionStartGap{cfg}, CheckFailure);
  cfg = small_cfg();
  cfg.interval = 0;
  EXPECT_THROW(RegionStartGap{cfg}, CheckFailure);
}

}  // namespace
}  // namespace srbsg::wl
