#include "common/rng.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace srbsg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (u64 bound : {u64{1}, u64{2}, u64{7}, u64{1000}, u64{1} << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr u64 kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  const double expect = static_cast<double>(kSamples) / kBuckets;
  for (u64 b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expect, expect * 0.1) << "bucket " << b;
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.next_in(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<u64> v(100);
  for (u64 i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(std::span<u64>(w));
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SampleDistinct, ProducesDistinctValuesInRange) {
  Rng rng(23);
  const auto vals = sample_distinct(rng, 1000, 200);
  EXPECT_EQ(vals.size(), 200u);
  std::unordered_set<u64> set(vals.begin(), vals.end());
  EXPECT_EQ(set.size(), 200u);
  for (u64 v : vals) EXPECT_LT(v, 1000u);
}

TEST(SampleDistinct, DenseCaseCoversPopulation) {
  Rng rng(29);
  const auto vals = sample_distinct(rng, 16, 16);
  std::unordered_set<u64> set(vals.begin(), vals.end());
  EXPECT_EQ(set.size(), 16u);
}

TEST(SampleDistinct, RejectsOversizedRequest) {
  Rng rng(31);
  EXPECT_THROW((void)sample_distinct(rng, 4, 5), CheckFailure);
}

}  // namespace
}  // namespace srbsg
