#include "wl/security_rbsg.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

SecurityRbsgConfig small_cfg() {
  SecurityRbsgConfig cfg;
  cfg.lines = 256;
  cfg.sub_regions = 8;
  cfg.inner_interval = 4;
  cfg.outer_interval = 8;
  cfg.stages = 7;
  cfg.seed = 31;
  return cfg;
}

pcm::PcmConfig pcm_for(const SecurityRbsgConfig& cfg) {
  return pcm::PcmConfig::scaled(cfg.lines, u64{1} << 40);
}

TEST(SecurityRbsg, PhysicalLayout) {
  SecurityRbsg s(small_cfg());
  // 8 regions × (32+1) slots + 1 outer spare.
  EXPECT_EQ(s.physical_lines(), 8 * 33 + 1);
}

TEST(SecurityRbsg, InitiallyBijective) {
  SecurityRbsg s(small_cfg());
  testutil::expect_translation_bijective(s);
}

TEST(SecurityRbsg, IntegrityChurn) {
  const auto cfg = small_cfg();
  SecurityRbsg s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 40'000, 4'000);
}

TEST(SecurityRbsg, BulkMatchesPerWriteExactly) {
  const auto cfg = small_cfg();
  SecurityRbsg a(cfg), b(cfg);
  pcm::PcmBank bank_a(pcm_for(cfg), a.physical_lines());
  pcm::PcmBank bank_b(pcm_for(cfg), b.physical_lines());
  Ns t_loop{0};
  for (int i = 0; i < 10'000; ++i) {
    t_loop += a.write(La{5}, pcm::LineData::all_one(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{5}, pcm::LineData::all_one(), 10'000, bank_b);
  EXPECT_EQ(bulk.total, t_loop);
  for (u64 la = 0; la < cfg.lines; ++la) {
    EXPECT_EQ(a.translate(La{la}), b.translate(La{la})) << la;
  }
  for (std::size_t i = 0; i < bank_a.wear_counts().size(); ++i) {
    EXPECT_EQ(bank_a.wear_counts()[i], bank_b.wear_counts()[i]) << "pa " << i;
  }
}

TEST(SecurityRbsg, OuterRekeysUnderSustainedTraffic) {
  const auto cfg = small_cfg();
  SecurityRbsg s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  const u64 rounds_before = s.outer().rounds_completed();
  // Enough writes for several outer rounds: a round needs about
  // (N + cycles) movements, each every outer_interval writes.
  for (u64 i = 0; i < 4 * (cfg.lines + 20) * cfg.outer_interval; ++i) {
    s.write(La{i % cfg.lines}, pcm::LineData::all_zero(), bank);
  }
  EXPECT_GE(s.outer().rounds_completed(), rounds_before + 2);
}

TEST(SecurityRbsg, HammeredAddressKeepsMoving) {
  // The essential defense property: under single-address hammering the
  // physical target keeps changing (inner rotation + outer re-keying).
  const auto cfg = small_cfg();
  SecurityRbsg s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  std::unordered_set<u64> slots;
  for (int epoch = 0; epoch < 50; ++epoch) {
    slots.insert(s.translate(La{9}).value());
    s.write_repeated(La{9}, pcm::LineData::all_zero(),
                     (cfg.region_lines() + 1) * cfg.inner_interval, bank);
  }
  EXPECT_GT(slots.size(), 10u);
}

TEST(SecurityRbsg, WearSpreadUnderRaaBeatsNoWl) {
  const auto cfg = small_cfg();
  SecurityRbsg s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  s.write_repeated(La{0}, pcm::LineData::mixed(), 2'000'000, bank);
  const auto metrics = srbsg::compute_wear_metrics(bank.wear_counts());
  // Without wear leveling max/mean would be the line count (~265); with
  // Security RBSG the hot line should be within a small factor of mean.
  EXPECT_LT(metrics.max_over_mean, 10.0);
}

TEST(SecurityRbsg, ConfigValidation) {
  auto cfg = small_cfg();
  cfg.stages = 0;
  EXPECT_THROW(SecurityRbsg{cfg}, CheckFailure);
  cfg = small_cfg();
  cfg.sub_regions = 3;
  EXPECT_THROW(SecurityRbsg{cfg}, CheckFailure);
}

class SecurityRbsgShapes
    : public ::testing::TestWithParam<std::tuple<u64, u64, u64, u32>> {};

TEST_P(SecurityRbsgShapes, IntegrityAcrossShapes) {
  SecurityRbsgConfig cfg;
  cfg.lines = 128;
  cfg.sub_regions = std::get<0>(GetParam());
  cfg.inner_interval = std::get<1>(GetParam());
  cfg.outer_interval = std::get<2>(GetParam());
  cfg.stages = std::get<3>(GetParam());
  cfg.seed = 37;
  SecurityRbsg s(cfg);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(128, u64{1} << 40), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 15'000);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SecurityRbsgShapes,
                         ::testing::Values(std::make_tuple(2u, 2u, 4u, 3u),
                                           std::make_tuple(4u, 4u, 4u, 7u),
                                           std::make_tuple(16u, 8u, 2u, 6u),
                                           std::make_tuple(32u, 1u, 1u, 12u),
                                           std::make_tuple(8u, 16u, 64u, 20u)));

}  // namespace
}  // namespace srbsg::wl
