#include "wl/security_refresh.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/check.hpp"
#include "wl/security_refresh_region.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

void expect_region_bijective(const SecurityRefreshRegion& r) {
  std::unordered_set<u64> used;
  for (u64 la = 0; la < r.lines(); ++la) {
    const u64 slot = r.translate(la);
    ASSERT_LT(slot, r.lines());
    ASSERT_TRUE(used.insert(slot).second) << "collision at la " << la;
  }
}

TEST(SrRegion, InitiallyBijective) {
  SecurityRefreshRegion r(6, Rng(1));
  expect_region_bijective(r);
}

TEST(SrRegion, PairwiseProperty) {
  SecurityRefreshRegion r(8, Rng(2));
  r.advance();  // start a real round so kc != kp (almost surely)
  for (u64 la = 0; la < r.lines(); ++la) {
    EXPECT_EQ(r.pair_of(r.pair_of(la)), la);
    // LA and its pair exchange destinations across rounds (paper §III.C):
    // la ^ kc == pair ^ kp.
    EXPECT_EQ(la ^ r.key_c(), r.pair_of(la) ^ r.key_p());
  }
}

TEST(SrRegion, StaysBijectiveThroughRounds) {
  SecurityRefreshRegion r(5, Rng(3));
  for (int i = 0; i < 200; ++i) {
    r.advance();
    expect_region_bijective(r);
  }
}

TEST(SrRegion, SwapSlotsMatchTranslationChange) {
  SecurityRefreshRegion r(6, Rng(4));
  for (int i = 0; i < 150; ++i) {
    // Whoever translates to the swap's slots before must translate to the
    // other slot after (the swap is what makes translation consistent).
    std::vector<u64> before(r.lines());
    for (u64 la = 0; la < r.lines(); ++la) before[la] = r.translate(la);
    const auto swap = r.advance();
    if (!swap) continue;
    for (u64 la = 0; la < r.lines(); ++la) {
      const u64 after = r.translate(la);
      if (before[la] == swap->a) {
        EXPECT_TRUE(after == swap->b || after == before[la]);
      }
      if (before[la] != swap->a && before[la] != swap->b) {
        EXPECT_EQ(after, before[la]) << "la " << la << " moved without a swap";
      }
    }
  }
}

TEST(SrRegion, RoundProcessesEveryAddressOnce) {
  SecurityRefreshRegion r(7, Rng(5));
  // Run one full round; every LA must end up translated by key_c.
  const u64 n = r.lines();
  for (u64 i = 0; i < n; ++i) r.advance();
  const u64 kc = r.key_c();
  for (u64 la = 0; la < n; ++la) {
    EXPECT_EQ(r.translate(la), la ^ kc);
  }
}

SecurityRefreshConfig sr1_cfg() {
  SecurityRefreshConfig cfg;
  cfg.lines = 256;
  cfg.interval = 8;
  cfg.seed = 6;
  return cfg;
}

TEST(Sr1, NoSpareLines) {
  SecurityRefresh s(sr1_cfg());
  EXPECT_EQ(s.physical_lines(), s.logical_lines());
}

TEST(Sr1, IntegrityChurn) {
  SecurityRefresh s(sr1_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 20'000, 2'500);
}

TEST(Sr1, BulkMatchesPerWriteExactly) {
  SecurityRefresh a(sr1_cfg()), b(sr1_cfg());
  pcm::PcmBank bank_a(pcm::PcmConfig::scaled(256, u64{1} << 40), a.physical_lines());
  pcm::PcmBank bank_b(pcm::PcmConfig::scaled(256, u64{1} << 40), b.physical_lines());
  Ns t_loop{0};
  for (int i = 0; i < 6000; ++i) {
    t_loop += a.write(La{7}, pcm::LineData::all_one(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{7}, pcm::LineData::all_one(), 6000, bank_b);
  EXPECT_EQ(bulk.total, t_loop);
  for (u64 la = 0; la < 256; ++la) {
    EXPECT_EQ(a.translate(La{la}), b.translate(La{la}));
  }
}

TEST(Sr1, SwapStallValuesMatchFig4b) {
  SecurityRefresh s(sr1_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), s.physical_lines());
  // All lines ALL-0: every observed swap stall must be 500 ns.
  for (u64 la = 0; la < 256; ++la) s.write(La{la}, pcm::LineData::all_zero(), bank);
  for (int i = 0; i < 5000; ++i) {
    const auto out = s.write(La{1}, pcm::LineData::all_zero(), bank);
    if (out.movements > 0) {
      EXPECT_EQ(out.stall, Ns{500});
    }
  }
}

TEST(Sr1, ConfigValidation) {
  auto cfg = sr1_cfg();
  cfg.lines = 100;
  EXPECT_THROW(SecurityRefresh{cfg}, CheckFailure);
}

}  // namespace
}  // namespace srbsg::wl
