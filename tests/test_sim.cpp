#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/write_distribution.hpp"

namespace srbsg::sim {
namespace {

LifetimeConfig base_cfg() {
  LifetimeConfig c;
  c.pcm = pcm::PcmConfig::scaled(1024, 4096);
  c.scheme.kind = wl::SchemeKind::kRbsg;
  c.scheme.lines = 1024;
  c.scheme.regions = 8;
  c.scheme.inner_interval = 8;
  c.scheme.seed = 3;
  c.attack = AttackKind::kRaa;
  c.write_budget = u64{1} << 34;
  return c;
}

TEST(Lifetime, RaaRunCompletes) {
  const auto out = run_lifetime(base_cfg());
  EXPECT_TRUE(out.result.succeeded);
  EXPECT_GT(out.result.lifetime.value(), 0u);
  EXPECT_GT(out.wear.max, 0u);
}

TEST(Lifetime, RtaBeatsRaaOnRbsg) {
  auto rta = base_cfg();
  rta.attack = AttackKind::kRta;
  rta.pcm = pcm::PcmConfig::scaled(1024, 8192);
  rta.scheme.regions = 4;
  auto raa = rta;
  raa.attack = AttackKind::kRaa;
  const auto out_rta = run_lifetime(rta);
  const auto out_raa = run_lifetime(raa);
  ASSERT_TRUE(out_rta.result.succeeded) << out_rta.result.detail;
  ASSERT_TRUE(out_raa.result.succeeded);
  EXPECT_LT(out_rta.result.lifetime.value(), out_raa.result.lifetime.value());
}

TEST(Lifetime, AttackerDispatchCoversEverySchemeAndAttack) {
  for (auto kind : {wl::SchemeKind::kNone, wl::SchemeKind::kStartGap, wl::SchemeKind::kRbsg,
                    wl::SchemeKind::kSr1, wl::SchemeKind::kSr2, wl::SchemeKind::kMultiWaySr,
                    wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kTable}) {
    for (auto atk : {AttackKind::kRaa, AttackKind::kBpa, AttackKind::kRta}) {
      LifetimeConfig c = base_cfg();
      c.scheme.kind = kind;
      c.scheme.regions = 8;
      c.attack = atk;
      EXPECT_NE(make_attacker(c), nullptr);
    }
  }
}

TEST(Lifetime, NamesResolve) {
  EXPECT_EQ(to_string(AttackKind::kRaa), "RAA");
  EXPECT_EQ(to_string(AttackKind::kBpa), "BPA");
  EXPECT_EQ(to_string(AttackKind::kRta), "RTA");
}

TEST(Sweep, RunsAllConfigsInOrder) {
  ThreadPool pool(2);
  std::vector<LifetimeConfig> configs;
  for (u64 regions : {4u, 8u, 16u}) {
    auto c = base_cfg();
    c.scheme.regions = regions;
    configs.push_back(c);
  }
  const auto entries = run_sweep(configs, pool);
  ASSERT_EQ(entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(entries[i].config.scheme.regions, configs[i].scheme.regions);
    EXPECT_TRUE(entries[i].outcome.result.succeeded);
  }
}

TEST(Sweep, AverageLifetimeOverSeeds) {
  ThreadPool pool(2);
  const double avg = average_lifetime_ns(base_cfg(), 3, pool);
  EXPECT_GT(avg, 0.0);
}

TEST(Sweep, AverageLifetimeReportsFullConvergence) {
  ThreadPool pool(2);
  const AverageLifetime avg = average_lifetime(base_cfg(), 3, pool);
  EXPECT_EQ(avg.seeds, 3u);
  EXPECT_EQ(avg.counted, 3u);
  EXPECT_TRUE(avg.complete());
  EXPECT_GT(avg.mean_ns, 0.0);
}

TEST(Sweep, AverageLifetimeSurfacesNonConvergence) {
  // A write budget far below the endurance requirement: no seed can reach
  // failure, which must be visible in the return value instead of
  // silently biasing (or aborting) the average.
  ThreadPool pool(2);
  auto c = base_cfg();
  c.write_budget = 64;
  const AverageLifetime avg = average_lifetime(c, 3, pool);
  EXPECT_EQ(avg.seeds, 3u);
  EXPECT_EQ(avg.counted, 0u);
  EXPECT_FALSE(avg.complete());
  EXPECT_EQ(avg.mean_ns, 0.0);
  // The legacy scalar interface cannot represent this; it throws.
  EXPECT_THROW((void)average_lifetime_ns(c, 3, pool), CheckFailure);
}

TEST(Sweep, AverageLifetimeSharedArenaMatches) {
  ThreadPool pool(2);
  WorkerArena arena;
  const AverageLifetime with_arena = average_lifetime(base_cfg(), 3, pool, arena);
  const AverageLifetime fresh = average_lifetime(base_cfg(), 3, pool);
  EXPECT_EQ(with_arena.mean_ns, fresh.mean_ns);
  EXPECT_EQ(with_arena.counted, fresh.counted);
}

TEST(Distribution, SecurityRbsgSpreadsRaaWrites) {
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kSecurityRbsg;
  spec.lines = 1024;
  spec.regions = 16;
  spec.inner_interval = 8;
  spec.outer_interval = 16;
  spec.stages = 7;
  const auto cfg = pcm::PcmConfig::scaled(1024, u64{1} << 40);
  const auto few = raa_write_distribution(cfg, spec, 100'000, 32);
  const auto many = raa_write_distribution(cfg, spec, 10'000'000, 32);
  // Fig. 16: more writes -> closer to the diagonal.
  EXPECT_LT(many.linearity_deviation, few.linearity_deviation);
  EXPECT_LT(many.linearity_deviation, 0.2);
  EXPECT_EQ(many.cumulative.size(), 32u);
  EXPECT_DOUBLE_EQ(many.cumulative.back(), 1.0);
}

TEST(Distribution, NoWlIsAStepFunction) {
  wl::SchemeSpec spec;
  spec.kind = wl::SchemeKind::kNone;
  spec.lines = 1024;
  const auto cfg = pcm::PcmConfig::scaled(1024, u64{1} << 40);
  const auto res = raa_write_distribution(cfg, spec, 100'000, 32);
  EXPECT_GT(res.linearity_deviation, 0.9);
}

}  // namespace
}  // namespace srbsg::sim
