#include "wl/start_gap_region.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/check.hpp"

namespace srbsg::wl {
namespace {

void expect_region_consistent(const StartGapRegion& r) {
  std::unordered_set<u64> used;
  for (u64 ia = 0; ia < r.lines(); ++ia) {
    const u64 slot = r.translate(ia);
    ASSERT_LT(slot, r.slots());
    ASSERT_NE(slot, r.gap()) << "ia " << ia << " mapped onto the gap";
    ASSERT_TRUE(used.insert(slot).second) << "slot collision at ia " << ia;
  }
}

TEST(StartGapRegion, InitialStateMatchesFig2a) {
  StartGapRegion r(8);
  EXPECT_EQ(r.gap(), 8u);
  EXPECT_EQ(r.start(), 0u);
  for (u64 ia = 0; ia < 8; ++ia) EXPECT_EQ(r.translate(ia), ia);
}

TEST(StartGapRegion, FirstMovementMatchesFig2b) {
  StartGapRegion r(8);
  const auto mv = r.advance();
  EXPECT_EQ(mv.from, 7u);
  EXPECT_EQ(mv.to, 8u);
  EXPECT_EQ(r.gap(), 7u);
  EXPECT_EQ(r.translate(7), 8u);  // IA7 moved up
  EXPECT_EQ(r.translate(6), 6u);
}

TEST(StartGapRegion, EighthMovementMatchesFig2c) {
  StartGapRegion r(8);
  for (int i = 0; i < 8; ++i) r.advance();
  EXPECT_EQ(r.gap(), 0u);
  // All lines shifted by one: IA k at slot k+1.
  for (u64 ia = 0; ia < 8; ++ia) EXPECT_EQ(r.translate(ia), ia + 1);
}

TEST(StartGapRegion, WrapMovementAdvancesStart) {
  StartGapRegion r(8);
  for (int i = 0; i < 8; ++i) r.advance();
  const auto mv = r.advance();  // gap at 0: wrap
  EXPECT_EQ(mv.from, 8u);
  EXPECT_EQ(mv.to, 0u);
  EXPECT_EQ(r.gap(), 8u);
  EXPECT_EQ(r.start(), 1u);
  // IA7 wrapped to slot 0.
  EXPECT_EQ(r.translate(7), 0u);
  EXPECT_EQ(r.translate(0), 1u);
}

TEST(StartGapRegion, ConsistentThroughManyMovements) {
  StartGapRegion r(8);
  for (int i = 0; i < 200; ++i) {
    expect_region_consistent(r);
    r.advance();
  }
}

TEST(StartGapRegion, FullRotationShiftsEveryLineByOne) {
  // One gap cycle (M+1 movements) moves every line up one slot, except
  // the line that was adjacent to the boot gap: it crosses the gap twice
  // (once into the old gap slot, once through the wrap).
  StartGapRegion r(16);
  std::vector<u64> before(16);
  for (u64 ia = 0; ia < 16; ++ia) before[ia] = r.translate(ia);
  for (u64 i = 0; i < r.slots(); ++i) r.advance();
  for (u64 ia = 0; ia < 15; ++ia) {
    EXPECT_EQ(r.translate(ia), before[ia] + 1) << "ia " << ia;
  }
  EXPECT_EQ(r.translate(15), 0u);  // 15 -> 16 -> 0
}

TEST(StartGapRegion, MovementSourceHoldsALine) {
  // The movement's `from` slot must never be the gap itself.
  StartGapRegion r(5);
  for (int i = 0; i < 50; ++i) {
    const u64 gap_before = r.gap();
    const auto mv = r.advance();
    EXPECT_EQ(mv.to, gap_before);
    EXPECT_NE(mv.from, gap_before);
  }
}

TEST(StartGapRegion, SingleLineRegion) {
  StartGapRegion r(1);
  for (int i = 0; i < 10; ++i) {
    expect_region_consistent(r);
    r.advance();
  }
}

TEST(StartGapRegion, RejectsZeroLines) { EXPECT_THROW(StartGapRegion(0), CheckFailure); }

class StartGapSizes : public ::testing::TestWithParam<u64> {};

TEST_P(StartGapSizes, StaysConsistentOverThreeRotations) {
  StartGapRegion r(GetParam());
  for (u64 i = 0; i < 3 * r.slots(); ++i) {
    expect_region_consistent(r);
    r.advance();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StartGapSizes, ::testing::Values(1u, 2u, 3u, 8u, 17u, 64u));

}  // namespace
}  // namespace srbsg::wl
