#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace srbsg {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 45.0, 10.0);
}

TEST(Histogram, QuantileEdgesAreWellDefined) {
  // Empty: the range's lower bound for every p, including the endpoints.
  Histogram empty(5.0, 25.0, 4);
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 5.0);

  // Data confined to buckets [20,30) and [70,80): p=0 / p=1 bind to the
  // occupied support's edges, not to bucket-0 / last-bucket midpoints.
  Histogram h(0.0, 100.0, 10);
  h.add(25.0, 3);
  h.add(75.0, 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 80.0);
  // Interior quantiles keep the midpoint interpolation.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 75.0);
}

TEST(Histogram, QuantileSingleBucketOccupied) {
  Histogram h(0.0, 10.0, 5);
  h.add(4.5, 7);  // bucket [4,6) only
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1000.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(WearMetrics, UniformDistribution) {
  std::vector<u64> wear(100, 50);
  const auto m = compute_wear_metrics(wear);
  EXPECT_DOUBLE_EQ(m.mean, 50.0);
  EXPECT_DOUBLE_EQ(m.coefficient_of_variation, 0.0);
  EXPECT_NEAR(m.gini, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.max_over_mean, 1.0);
}

TEST(WearMetrics, ConcentratedDistribution) {
  std::vector<u64> wear(100, 0);
  wear[7] = 1000;
  const auto m = compute_wear_metrics(wear);
  EXPECT_NEAR(m.gini, 0.99, 0.02);
  EXPECT_NEAR(m.max_over_mean, 100.0, 1e-6);
}

TEST(NormalizedCumulative, UniformIsDiagonal) {
  std::vector<u64> wear(1000, 3);
  const auto curve = normalized_cumulative(wear, 10);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_NEAR(curve[i], static_cast<double>(i + 1) / 10.0, 0.01);
  }
  EXPECT_LT(cumulative_linearity_deviation(curve), 0.01);
}

TEST(NormalizedCumulative, ConcentratedIsStep) {
  std::vector<u64> wear(1000, 0);
  wear[0] = 100;
  const auto curve = normalized_cumulative(wear, 10);
  EXPECT_DOUBLE_EQ(curve.front(), 1.0);
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
  EXPECT_GT(cumulative_linearity_deviation(curve), 0.8);
}

TEST(NormalizedCumulative, EndsAtOne) {
  std::vector<u64> wear{1, 2, 3, 4, 5, 6, 7};
  const auto curve = normalized_cumulative(wear, 5);
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
}

}  // namespace
}  // namespace srbsg
