#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace srbsg {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(1.23456, 3), "1.23");
  EXPECT_EQ(fmt_double(1000000.0, 4), "1e+06");
}

TEST(FmtDurationNs, PicksSensibleUnits) {
  EXPECT_NE(fmt_duration_ns(5e9).find(" s"), std::string::npos);
  EXPECT_NE(fmt_duration_ns(3.6e12 * 3).find(" h"), std::string::npos);
  EXPECT_NE(fmt_duration_ns(86400e9 * 10).find("days"), std::string::npos);
  EXPECT_NE(fmt_duration_ns(86400e9 * 200).find("months"), std::string::npos);
}

}  // namespace
}  // namespace srbsg
