#include "mapping/table_mapper.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "mapping/quality.hpp"

namespace srbsg::mapping {
namespace {

TEST(TableMapper, IsBijective) {
  Rng rng(3);
  TableMapper m(12, rng);
  EXPECT_TRUE(verify_bijection(m));
}

TEST(TableMapper, RoundTrips) {
  Rng rng(5);
  TableMapper m(14, rng);
  for (u64 x = 0; x < m.domain_size(); x += 11) {
    EXPECT_EQ(m.unmap(m.map(x)), x);
  }
}

TEST(TableMapper, DifferentSeedsDiffer) {
  Rng r1(7), r2(8);
  TableMapper a(10, r1), b(10, r2);
  int diff = 0;
  for (u64 x = 0; x < 1024; ++x) {
    if (a.map(x) != b.map(x)) ++diff;
  }
  EXPECT_GT(diff, 1000);
}

TEST(TableMapper, NearIdealAvalanche) {
  // A uniform random permutation has ~0.5 avalanche — the property the
  // cubing Feistel lacks (its T-function round saturates around 0.3).
  Rng seeder(9);
  TableMapper m(14, seeder);
  Rng rng(10);
  const auto q = measure_quality(m, 4000, 16, rng);
  EXPECT_NEAR(q.avalanche, 0.5, 0.05);
}

TEST(TableMapper, RejectsHugeWidth) {
  Rng rng(11);
  EXPECT_THROW(TableMapper(40, rng), CheckFailure);
}

}  // namespace
}  // namespace srbsg::mapping
