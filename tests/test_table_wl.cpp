#include "wl/table_wl.hpp"

#include <gtest/gtest.h>

#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "wl/factory.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

TableWlConfig small_cfg() {
  TableWlConfig cfg;
  cfg.lines = 256;
  cfg.interval = 8;
  return cfg;
}

TEST(TableWl, IdentityAtBoot) {
  TableWearLeveling s(small_cfg());
  for (u64 la = 0; la < 256; ++la) {
    EXPECT_EQ(s.translate(La{la}).value(), la);
  }
}

TEST(TableWl, IntegrityChurn) {
  TableWearLeveling s(small_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 20'000, 2'500);
}

TEST(TableWl, BulkMatchesPerWriteExactly) {
  TableWearLeveling a(small_cfg()), b(small_cfg());
  pcm::PcmBank bank_a(pcm::PcmConfig::scaled(256, u64{1} << 40), 256);
  pcm::PcmBank bank_b(pcm::PcmConfig::scaled(256, u64{1} << 40), 256);
  Ns t_loop{0};
  for (int i = 0; i < 5000; ++i) {
    t_loop += a.write(La{9}, pcm::LineData::all_one(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{9}, pcm::LineData::all_one(), 5000, bank_b);
  EXPECT_EQ(bulk.total, t_loop);
  for (u64 la = 0; la < 256; ++la) {
    EXPECT_EQ(a.translate(La{la}), b.translate(La{la}));
  }
}

TEST(TableWl, HotLineSwappedWithColdest) {
  TableWearLeveling s(small_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), 256);
  // Hammer LA 5: at the interval boundary it must be the hot line and
  // move to the predicted cold slot.
  for (u64 i = 0; i < 7; ++i) s.write(La{5}, pcm::LineData::all_zero(), bank);
  const auto pred = s.predict_next_swap();
  EXPECT_EQ(pred.hot_pa, 5u);
  s.write(La{5}, pcm::LineData::all_zero(), bank);
  EXPECT_EQ(s.translate(La{5}).value(), pred.cold_pa);
}

TEST(TableWl, SwapsAreFullyPredictable) {
  // The §II.B criticism made concrete: the scheme has no key material,
  // so an attacker replaying its public algorithm predicts every single
  // remapping — here the "attacker" predicts 200 consecutive swaps with
  // 100% accuracy (compare with the Feistel/XOR schemes, whose remaps
  // depend on secret random keys).
  TableWearLeveling s(small_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), 256);
  Rng rng(13);
  for (u64 verified = 0; verified < 200; ++verified) {
    // Fill the interval minus one with traffic, then predict + trigger.
    for (u64 i = 0; i < small_cfg().interval - 1; ++i) {
      s.write(La{rng.next_below(256)}, pcm::LineData::all_zero(), bank);
    }
    const auto pred = s.predict_next_swap();
    // Who currently lives on the predicted slots?
    u64 hot_la = 256, cold_la = 256;
    for (u64 la = 0; la < 256; ++la) {
      if (s.translate(La{la}).value() == pred.hot_pa) hot_la = la;
      if (s.translate(La{la}).value() == pred.cold_pa) cold_la = la;
    }
    // Trigger with a write to the predicted-hot line itself so the
    // trigger write cannot change the argmax the prediction used.
    s.write(La{hot_la}, pcm::LineData::all_zero(), bank);
    if (pred.hot_pa != pred.cold_pa) {
      ASSERT_EQ(s.translate(La{hot_la}).value(), pred.cold_pa);
      ASSERT_EQ(s.translate(La{cold_la}).value(), pred.hot_pa);
    }
  }
}

TEST(TableWl, HandlesBenignSkewWell) {
  // The family's redeeming quality: for benign hot/cold imbalance the
  // explicit counters level very effectively.
  TableWearLeveling s(small_cfg());
  pcm::PcmBank bank(pcm::PcmConfig::scaled(256, u64{1} << 40), 256);
  Rng rng(7);
  for (u64 i = 0; i < 200'000; ++i) {
    // 80% of writes to a hot eighth of the space.
    const u64 la = rng.next_bool(0.8) ? rng.next_below(32) : 32 + rng.next_below(224);
    s.write(La{la}, pcm::LineData::all_zero(), bank);
  }
  const auto metrics = compute_wear_metrics(bank.wear_counts());
  EXPECT_LT(metrics.max_over_mean, 2.0);
}

TEST(TableWl, Validation) {
  TableWlConfig cfg;
  cfg.lines = 1;
  EXPECT_THROW(TableWearLeveling{cfg}, CheckFailure);
}

}  // namespace
}  // namespace srbsg::wl
