// Telemetry subsystem: counter registry semantics, ring behavior,
// collector determinism across worker counts, bit-identity of traced
// runs, the deprecated latency alias, snapshot cadence, and the
// attribution invariant the trace validator enforces.

#include "telemetry/collector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attack/harness.hpp"
#include "attack/raa.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "controller/memory_controller.hpp"
#include "sim/lifetime.hpp"
#include "sim/sweep.hpp"
#include "wl/factory.hpp"

namespace srbsg {
namespace {

using telemetry::CounterKind;
using telemetry::CounterRegistry;
using telemetry::Event;
using telemetry::EventRing;
using telemetry::EventType;
using telemetry::Recorder;
using telemetry::TelemetryConfig;

TEST(CounterRegistry, RegistrationIsIdempotent) {
  auto& reg = CounterRegistry::global();
  const u32 a = reg.register_slot("test.idempotent", CounterKind::kCounter);
  const u32 b = reg.register_slot("test.idempotent", CounterKind::kCounter);
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.name(a), "test.idempotent");
  EXPECT_EQ(reg.kind(a), CounterKind::kCounter);
}

TEST(CounterRegistry, KindMismatchThrows) {
  auto& reg = CounterRegistry::global();
  (void)reg.register_slot("test.kind_mismatch", CounterKind::kCounter);
  EXPECT_THROW((void)reg.register_slot("test.kind_mismatch", CounterKind::kGauge),
               CheckFailure);
}

TEST(CounterShard, MergeRespectsKind) {
  auto& reg = CounterRegistry::global();
  const u32 c = reg.register_slot("test.merge_sum", CounterKind::kCounter);
  const u32 g = reg.register_slot("test.merge_max", CounterKind::kGauge);
  telemetry::CounterShard a, b;
  a.add(c, 5);
  b.add(c, 7);
  a.gauge_max(g, 9);
  b.gauge_max(g, 4);
  a.merge(b);
  EXPECT_EQ(a.value(c), 12u);  // counters sum
  EXPECT_EQ(a.value(g), 9u);   // gauges take the max
}

TEST(EventRing, DropOldestWraparound) {
  EventRing ring(4);
  for (u64 i = 0; i < 6; ++i) {
    Event e;
    e.a = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.pushed(), 6u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).a, i + 2);  // oldest retained is event #2
  }
}

TEST(EventRing, CapacityZeroCountsEverythingAsDropped) {
  EventRing ring(0);
  for (int i = 0; i < 3; ++i) ring.push(Event{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 3u);
  EXPECT_EQ(ring.pushed(), 3u);
}

TEST(Recorder, EmitBumpsMatchingCoreCounter) {
  Recorder rec;
  const auto& core = telemetry::CoreCounters::get();
  const u16 id = rec.intern_scheme("test-scheme");
  rec.emit(EventType::kRemapTriggered, id, telemetry::kGlobalDomain, 0, 0);
  rec.emit(EventType::kGapMoved, id, telemetry::kGlobalDomain, 1, 2);
  rec.emit(EventType::kKeyRerandomized, id, telemetry::kGlobalDomain, 1, 0);
  EXPECT_EQ(rec.counter(core.remap_triggers), 1u);
  EXPECT_EQ(rec.counter(core.gap_moves), 1u);
  EXPECT_EQ(rec.counter(core.rekeys), 1u);
  EXPECT_EQ(rec.events().size(), 3u);
}

TEST(Recorder, SnapshotCadence) {
  TelemetryConfig cfg;
  cfg.snapshot_interval = 100;
  cfg.snapshot_buckets = 8;
  Recorder rec(cfg);
  EXPECT_FALSE(rec.snapshot_due(0));
  EXPECT_FALSE(rec.snapshot_due(99));
  EXPECT_TRUE(rec.snapshot_due(100));
  const std::vector<u64> wear = {1, 2, 3, 4, 5, 6, 7, 8};
  rec.take_snapshot(150, wear);
  EXPECT_FALSE(rec.snapshot_due(199));  // next boundary is 200
  EXPECT_TRUE(rec.snapshot_due(200));
  ASSERT_EQ(rec.snapshots().size(), 1u);
  EXPECT_EQ(rec.snapshots()[0].writes, 150u);
  EXPECT_DOUBLE_EQ(rec.snapshots()[0].wear.mean, 4.5);
}

wl::SchemeSpec small_spec(wl::SchemeKind kind, u64 seed) {
  wl::SchemeSpec spec;
  spec.kind = kind;
  spec.lines = 256;
  spec.regions = 8;
  spec.inner_interval = 16;
  spec.outer_interval = 32;
  spec.stages = 5;
  spec.seed = seed;
  return spec;
}

sim::LifetimeConfig small_config(wl::SchemeKind kind, u64 seed) {
  sim::LifetimeConfig cfg;
  cfg.scheme = small_spec(kind, seed);
  cfg.pcm = pcm::PcmConfig::scaled(cfg.scheme.lines, 512);
  cfg.attack = sim::AttackKind::kRaa;
  cfg.write_budget = u64{1} << 26;
  cfg.seed = seed;
  return cfg;
}

bool outcomes_equal(const sim::LifetimeOutcome& a, const sim::LifetimeOutcome& b) {
  return a.result.succeeded == b.result.succeeded && a.result.lifetime == b.result.lifetime &&
         a.result.writes == b.result.writes && a.result.elapsed == b.result.elapsed &&
         a.wear.mean == b.wear.mean && a.wear.gini == b.wear.gini &&
         a.wear.max == b.wear.max && a.wear.min == b.wear.min;
}

TEST(Telemetry, TracedLifetimeIsBitIdentical) {
  for (const wl::SchemeKind kind :
       {wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kSr2, wl::SchemeKind::kRbsg}) {
    const auto plain = sim::run_lifetime(small_config(kind, 3));
    telemetry::Collector col;
    auto traced_cfg = small_config(kind, 3);
    traced_cfg.telemetry = &col;
    const auto traced = sim::run_lifetime(traced_cfg);
    EXPECT_TRUE(outcomes_equal(plain, traced))
        << "telemetry perturbed outcome for " << wl::to_string(kind);
    EXPECT_EQ(col.runs(), 1u);
    EXPECT_GT(col.total_events(), 0u);
  }
}

TEST(Telemetry, CollectorJsonlIsDeterministicAcrossWorkerCounts) {
  std::vector<sim::LifetimeConfig> configs;
  for (const wl::SchemeKind kind : {wl::SchemeKind::kSecurityRbsg, wl::SchemeKind::kSr2}) {
    for (u64 seed = 1; seed <= 3; ++seed) configs.push_back(small_config(kind, seed));
  }
  auto trace_with = [&](std::size_t threads) {
    telemetry::Collector col;
    auto traced = configs;
    for (auto& c : traced) c.telemetry = &col;
    ThreadPool pool(threads);
    (void)sim::run_sweep(traced, pool);
    std::ostringstream os;
    col.write_jsonl(os);
    return os.str();
  };
  const std::string one = trace_with(1);
  const std::string four = trace_with(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four) << "JSONL output depends on worker count";
}

TEST(Telemetry, CollectLatencyAliasMatchesManualSink) {
  const auto spec = small_spec(wl::SchemeKind::kSecurityRbsg, 5);
  const auto pcm_cfg = pcm::PcmConfig::scaled(spec.lines, 512);
  const u64 budget = u64{1} << 22;

  ctl::MemoryController manual(pcm_cfg, wl::make_scheme(spec));
  ctl::LatencyStats sink;
  manual.set_latency_sink(&sink);
  attack::RepeatedAddressAttack atk_a(La{17});
  atk_a.run(manual, budget);
  manual.set_latency_sink(nullptr);

  ctl::MemoryController traced(pcm_cfg, wl::make_scheme(spec));
  attack::RepeatedAddressAttack atk_b(La{17});
  attack::HarnessOptions opts;
  opts.collect_latency = true;
  const auto res = attack::run_attack(traced, atk_b, budget, opts);

  ASSERT_TRUE(res.latency.has_value());
  EXPECT_EQ(res.latency->writes, sink.writes);
  EXPECT_EQ(res.latency->total, sink.total);
  EXPECT_EQ(res.latency->movements, sink.movements);
  EXPECT_EQ(res.latency->max_single, sink.max_single);
  EXPECT_GT(res.latency->writes, 0u);
}

TEST(Telemetry, MovesAndRekeysAttributeToSameInstantTrigger) {
  // The invariant srbsg-trace --validate enforces, checked in-memory on
  // a full (undropped) ring: per scheme, every GapMoved/KeyRerandomized
  // shares its timestamp with the latest RemapTriggered.
  const auto spec = small_spec(wl::SchemeKind::kSecurityRbsg, 7);
  const auto pcm_cfg = pcm::PcmConfig::scaled(spec.lines, 512);
  ctl::MemoryController mc(pcm_cfg, wl::make_scheme(spec));
  TelemetryConfig tcfg;
  tcfg.ring_capacity = std::size_t{1} << 20;
  Recorder rec(tcfg);
  attack::RepeatedAddressAttack atk(La{5});
  attack::HarnessOptions opts;
  opts.recorder = &rec;
  (void)attack::run_attack(mc, atk, u64{1} << 24, opts);

  const auto& ring = rec.events();
  ASSERT_EQ(ring.dropped(), 0u) << "ring too small for the run; test needs the full stream";
  ASSERT_GT(ring.size(), 0u);
  std::vector<u64> last_trigger(4, u64{0xffffffffffffffff});
  u64 moves = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Event& e = ring.at(i);
    ASSERT_LT(e.scheme, last_trigger.size());
    if (e.type == EventType::kRemapTriggered) {
      last_trigger[e.scheme] = e.time_ns;
    } else if (e.type == EventType::kGapMoved || e.type == EventType::kKeyRerandomized) {
      EXPECT_EQ(last_trigger[e.scheme], e.time_ns)
          << "event " << i << " not attributable to a same-instant RemapTriggered";
      ++moves;
    }
  }
  EXPECT_GT(moves, 0u);
}

TEST(Telemetry, JsonlHeaderAndCounterOrder) {
  telemetry::Collector col;
  auto rec = col.acquire();
  const u16 id = rec->intern_scheme("jsonl-test");
  rec->set_now(Ns{42});
  rec->emit(EventType::kRemapTriggered, id, 3, telemetry::kLevelInner, 0);
  rec->emit(EventType::kGapMoved, id, 3, 10, 11);
  telemetry::RunMeta meta;
  meta.entry = 0;
  meta.scheme = "jsonl-test";
  meta.attack = "unit";
  meta.seed = 1;
  col.absorb(meta, std::move(rec));

  std::ostringstream os;
  col.write_jsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"telemetry_schema\":2"), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"GapMoved\""), std::string::npos);
  EXPECT_NE(text.find("\"scheme\":\"jsonl-test\""), std::string::npos);
  // First line is the header.
  EXPECT_EQ(text.rfind("{\"type\":\"header\"", 0), 0u);
  // Merged counters are serialized sorted by name, so wl.gap_moves
  // precedes wl.remap_triggers inside the counters_merged record.
  const auto merged_at = text.find("counters_merged");
  ASSERT_NE(merged_at, std::string::npos);
  EXPECT_LT(text.find("wl.gap_moves", merged_at), text.find("wl.remap_triggers", merged_at));
  EXPECT_EQ(col.merged("wl.remap_triggers"), 1u);
  EXPECT_EQ(col.merged("wl.gap_moves"), 1u);
}

TEST(EventRing, SpanPairStraddlesDropPoint) {
  // A begin whose end lands after drop-oldest has evicted it: the ring
  // keeps the end (newest wins), so readers see an end with no begin —
  // the trace validator classifies exactly this as a truncated span.
  EventRing ring(4);
  Event begin;
  begin.type = EventType::kSpanBegin;
  begin.a = static_cast<u64>(telemetry::SpanKind::kRemapEpoch);
  ring.push(begin);
  for (u64 i = 0; i < 4; ++i) {
    Event filler;
    filler.type = EventType::kProbeClassified;
    filler.a = i;
    ring.push(filler);
  }
  Event end;
  end.type = EventType::kSpanEnd;
  end.a = static_cast<u64>(telemetry::SpanKind::kRemapEpoch);
  ring.push(end);

  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);  // the begin and the oldest filler
  bool saw_begin = false;
  bool saw_end = false;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    saw_begin = saw_begin || ring.at(i).type == EventType::kSpanBegin;
    saw_end = saw_end || ring.at(i).type == EventType::kSpanEnd;
  }
  EXPECT_FALSE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(Telemetry, TruncatedSpanSurvivesSerialization) {
  // End-to-end version of the straddle: a Recorder with a tiny ring
  // drops a span begin, and the collector must still serialize the
  // orphaned end (with its decoded span name) plus a nonzero dropped
  // count so the validator can downgrade the orphan to "truncated"
  // instead of rejecting the trace.
  TelemetryConfig cfg;
  cfg.ring_capacity = 4;
  telemetry::Collector col(cfg);
  auto rec = col.acquire();
  const u16 id = rec->intern_scheme("straddle");
  rec->span_begin(telemetry::SpanKind::kBatchChunk, id, telemetry::kGlobalDomain, 0, 7);
  for (u64 i = 0; i < 4; ++i) {
    rec->emit(EventType::kProbeClassified, id, telemetry::kGlobalDomain, i, 0);
  }
  rec->span_end(telemetry::SpanKind::kBatchChunk, id, telemetry::kGlobalDomain, 5, 7);

  telemetry::RunMeta meta;
  meta.entry = 0;
  meta.scheme = "straddle";
  meta.attack = "unit";
  meta.seed = 1;
  col.absorb(meta, std::move(rec));

  std::ostringstream os;
  col.write_jsonl(os);
  const std::string text = os.str();
  EXPECT_EQ(text.find("\"ev\":\"SpanBegin\""), std::string::npos);
  EXPECT_NE(text.find("\"ev\":\"SpanEnd\""), std::string::npos);
  EXPECT_NE(text.find("\"span\":\"BatchChunk\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":2"), std::string::npos);
}

TEST(Telemetry, DetachResetsControllerTelemetry) {
  const auto spec = small_spec(wl::SchemeKind::kRbsg, 9);
  const auto pcm_cfg = pcm::PcmConfig::scaled(spec.lines, 512);
  ctl::MemoryController mc(pcm_cfg, wl::make_scheme(spec));
  Recorder rec;
  mc.set_telemetry(&rec);
  EXPECT_EQ(mc.telemetry(), &rec);
  (void)mc.write(La{1}, pcm::LineData::all_one());
  EXPECT_GT(rec.counter(telemetry::CoreCounters::get().writes), 0u);
  mc.set_telemetry(nullptr);
  EXPECT_EQ(mc.telemetry(), nullptr);
  const u64 before = rec.counter(telemetry::CoreCounters::get().writes);
  (void)mc.write(La{2}, pcm::LineData::all_one());
  EXPECT_EQ(rec.counter(telemetry::CoreCounters::get().writes), before);
}

}  // namespace
}  // namespace srbsg
