#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace srbsg {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace srbsg
