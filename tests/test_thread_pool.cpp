#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace srbsg {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ParallelFor, EveryGrainCoversEachItemExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{64},
                            std::size_t{1000}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(
        pool, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " grain=" << grain;
    }
  }
}

TEST(ParallelFor, ExceptionFromArbitraryItemPropagates) {
  ThreadPool pool(4);
  for (std::size_t bad : {std::size_t{0}, std::size_t{499}, std::size_t{999}}) {
    EXPECT_THROW(parallel_for(pool, 1000,
                              [bad](std::size_t i) {
                                if (i == bad) throw std::runtime_error("x");
                              }),
                 std::runtime_error) << "bad=" << bad;
  }
}

TEST(ParallelFor, ExceptionWithLargeGrainPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   pool, 10,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("x");
                   },
                   256),
               std::runtime_error);
}

TEST(ParallelFor, WorksWithSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  parallel_for(
      pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; }, 9);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelFor, ChunkingDoesNotChangeResults) {
  // f(i) deterministic; outputs must be identical regardless of grain and
  // pool size — chunking is a scheduling detail, not a semantic one.
  auto compute = [](std::size_t threads, std::size_t grain) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(512, 0);
    parallel_for(
        pool, out.size(), [&out](std::size_t i) { out[i] = i * i + 17; }, grain);
    return out;
  };
  const auto reference = compute(1, 1);
  EXPECT_EQ(compute(4, 1), reference);
  EXPECT_EQ(compute(4, 13), reference);
  EXPECT_EQ(compute(2, 512), reference);
}

}  // namespace
}  // namespace srbsg
