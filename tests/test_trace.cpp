#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace srbsg::trace {
namespace {

GeneratorOptions small_opt() {
  GeneratorOptions o;
  o.lines = 1024;
  o.accesses = 5000;
  o.write_ratio = 0.4;
  o.mean_instruction_gap = 20;
  o.seed = 3;
  return o;
}

TEST(Generators, UniformCoversSpace) {
  const auto t = make_uniform(small_opt());
  EXPECT_EQ(t.size(), 5000u);
  const auto s = t.stats();
  EXPECT_GT(s.distinct_lines, 900u);
  EXPECT_NEAR(static_cast<double>(s.writes) / static_cast<double>(s.records), 0.4, 0.05);
}

TEST(Generators, SequentialWraps) {
  auto opt = small_opt();
  opt.accesses = 2048;
  const auto t = make_sequential(opt);
  EXPECT_EQ(t[0].addr, 0u);
  EXPECT_EQ(t[1024].addr, 0u);
  EXPECT_EQ(t[1025].addr, 1u);
}

TEST(Generators, StridedPattern) {
  const auto t = make_strided(small_opt(), 7);
  EXPECT_EQ(t[0].addr, 0u);
  EXPECT_EQ(t[1].addr, 7u);
  EXPECT_EQ(t[2].addr, 14u);
}

TEST(Generators, ZipfIsSkewed) {
  const auto t = make_zipf(small_opt(), 1.2);
  std::unordered_map<u64, u64> counts;
  for (const auto& r : t) ++counts[r.addr];
  u64 max_count = 0;
  for (const auto& [addr, c] : counts) max_count = std::max(max_count, c);
  // The hottest line should dominate a uniform share.
  EXPECT_GT(max_count, t.size() / 100);
}

TEST(Generators, HotspotConcentratesTraffic) {
  const auto t = make_hotspot(small_opt(), 0.1, 0.9);
  u64 hot = 0;
  for (const auto& r : t) {
    if (r.addr < 102) ++hot;  // 10% of 1024
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(t.size()), 0.9, 0.05);
}

TEST(Generators, SingleAddressIsAllWrites) {
  const auto t = make_single_address(small_opt(), 42);
  for (const auto& r : t) {
    EXPECT_TRUE(r.is_write);
    EXPECT_EQ(r.addr, 42u);
  }
}

TEST(TraceIo, TextRoundTrip) {
  const auto t = make_uniform(small_opt());
  std::stringstream ss;
  t.save_text(ss);
  const auto t2 = Trace::load_text(ss, "reloaded");
  ASSERT_EQ(t2.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].addr, t2[i].addr);
    EXPECT_EQ(t[i].is_write, t2[i].is_write);
    EXPECT_EQ(t[i].instruction_gap, t2[i].instruction_gap);
    EXPECT_EQ(t[i].data, t2[i].data);
  }
}

TEST(TraceIo, BinaryRoundTrip) {
  const auto t = make_zipf(small_opt(), 0.8);
  std::stringstream ss;
  t.save_binary(ss);
  const auto t2 = Trace::load_binary(ss);
  ASSERT_EQ(t2.size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 97) {
    EXPECT_EQ(t[i].addr, t2[i].addr);
    EXPECT_EQ(t[i].is_write, t2[i].is_write);
  }
}

TEST(TraceIo, BinaryRejectsGarbage) {
  std::stringstream ss;
  ss << "not a trace file at all";
  EXPECT_THROW((void)Trace::load_binary(ss), CheckFailure);
}

TEST(TraceStats, MpkiComputed) {
  GeneratorOptions o = small_opt();
  o.mean_instruction_gap = 100;
  const auto t = make_uniform(o);
  const auto s = t.stats();
  EXPECT_GT(s.instructions, 0u);
  EXPECT_NEAR(s.write_mpki + s.read_mpki,
              1000.0 * static_cast<double>(s.records) / static_cast<double>(s.instructions),
              1e-6);
}

}  // namespace
}  // namespace srbsg::trace
