#include "perf/trace_filter.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"

namespace srbsg::perf {
namespace {

HierarchyConfig tiny_hierarchy() {
  HierarchyConfig cfg;
  cfg.l1 = {16 * 256, 256, 2};
  cfg.l2 = {64 * 256, 256, 4};
  cfg.l3 = {256 * 256, 256, 8};
  return cfg;
}

TEST(TraceFilter, CacheFriendlyTrafficMostlyFiltered) {
  trace::GeneratorOptions opt;
  opt.lines = 16;  // fits in L1
  opt.accesses = 50'000;
  opt.write_ratio = 0.5;
  opt.seed = 3;
  const auto cpu = trace::make_uniform(opt);
  const auto res = filter_through_hierarchy(cpu, tiny_hierarchy());
  // Cold fills only; steady state produces nothing.
  EXPECT_LT(res.pcm_trace.size(), 200u);
  EXPECT_GT(res.l1.hits, res.l1.misses);
}

TEST(TraceFilter, StreamingTrafficPassesThrough) {
  trace::GeneratorOptions opt;
  opt.lines = 64 * 1024;  // 256x the L3
  opt.accesses = 100'000;
  opt.write_ratio = 1.0;
  opt.seed = 5;
  const auto cpu = trace::make_sequential(opt);
  const auto res = filter_through_hierarchy(cpu, tiny_hierarchy());
  // Every line is touched once: all fills miss, writebacks stream out.
  EXPECT_GT(res.pcm_trace.size(), 50'000u);
  const auto stats = res.pcm_trace.stats();
  EXPECT_GT(stats.writes, 20'000u);
}

TEST(TraceFilter, InstructionCountPreserved) {
  trace::GeneratorOptions opt;
  opt.lines = 1024;
  opt.accesses = 10'000;
  opt.mean_instruction_gap = 37;
  opt.seed = 7;
  const auto cpu = trace::make_zipf(opt, 1.0);
  const auto res = filter_through_hierarchy(cpu, tiny_hierarchy());
  // Gaps are redistributed, never dropped, as long as traffic survives:
  // total instructions in the filtered trace can only fall short by the
  // trailing gap after the last surviving access.
  const u64 cpu_instr = cpu.stats().instructions;
  const u64 pcm_instr = res.pcm_trace.stats().instructions;
  EXPECT_LE(pcm_instr, cpu_instr);
  EXPECT_GT(pcm_instr, cpu_instr / 2);
}

TEST(TraceFilter, WritebacksOnlyFromWrites) {
  trace::GeneratorOptions opt;
  opt.lines = 64 * 1024;
  opt.accesses = 50'000;
  opt.write_ratio = 0.0;  // read-only stream
  opt.seed = 9;
  const auto cpu = trace::make_sequential(opt);
  const auto res = filter_through_hierarchy(cpu, tiny_hierarchy());
  EXPECT_EQ(res.pcm_trace.stats().writes, 0u);
  EXPECT_GT(res.pcm_trace.stats().reads, 10'000u);
  EXPECT_DOUBLE_EQ(res.pcm_write_mpki, 0.0);
}

}  // namespace
}  // namespace srbsg::perf
