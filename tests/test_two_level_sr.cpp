#include "wl/two_level_sr.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "wl_test_util.hpp"

namespace srbsg::wl {
namespace {

TwoLevelSrConfig small_cfg() {
  TwoLevelSrConfig cfg;
  cfg.lines = 256;
  cfg.sub_regions = 8;
  cfg.inner_interval = 4;
  cfg.outer_interval = 8;
  cfg.seed = 11;
  return cfg;
}

pcm::PcmConfig pcm_for(const TwoLevelSrConfig& cfg) {
  return pcm::PcmConfig::scaled(cfg.lines, u64{1} << 40);
}

TEST(Sr2, NoSpareLines) {
  TwoLevelSecurityRefresh s(small_cfg());
  EXPECT_EQ(s.physical_lines(), 256u);
}

TEST(Sr2, InitiallyBijective) {
  TwoLevelSecurityRefresh s(small_cfg());
  testutil::expect_translation_bijective(s);
}

TEST(Sr2, IaStaysInsideItsSubRegion) {
  // The inner level never moves data across sub-region boundaries: the
  // physical address must always share the sub-region of the IA.
  const auto cfg = small_cfg();
  TwoLevelSecurityRefresh s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  for (int i = 0; i < 2000; ++i) {
    s.write(La{static_cast<u64>(i) % cfg.lines}, pcm::LineData::all_zero(), bank);
  }
  const u64 m = cfg.region_lines();
  for (u64 la = 0; la < cfg.lines; ++la) {
    EXPECT_EQ(s.to_ia(la) / m, s.translate(La{la}).value() / m) << "la " << la;
  }
}

TEST(Sr2, IntegrityChurn) {
  const auto cfg = small_cfg();
  TwoLevelSecurityRefresh s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 30'000, 3'000);
}

TEST(Sr2, BulkMatchesPerWriteExactly) {
  const auto cfg = small_cfg();
  TwoLevelSecurityRefresh a(cfg), b(cfg);
  pcm::PcmBank bank_a(pcm_for(cfg), a.physical_lines());
  pcm::PcmBank bank_b(pcm_for(cfg), b.physical_lines());
  Ns t_loop{0};
  for (int i = 0; i < 8000; ++i) {
    t_loop += a.write(La{42}, pcm::LineData::all_one(), bank_a).total;
  }
  const auto bulk = b.write_repeated(La{42}, pcm::LineData::all_one(), 8000, bank_b);
  EXPECT_EQ(bulk.total, t_loop);
  for (u64 la = 0; la < cfg.lines; ++la) {
    EXPECT_EQ(a.translate(La{la}), b.translate(La{la})) << la;
  }
  for (std::size_t i = 0; i < bank_a.wear_counts().size(); ++i) {
    EXPECT_EQ(bank_a.wear_counts()[i], bank_b.wear_counts()[i]) << "pa " << i;
  }
}

TEST(Sr2, BothLevelsEventuallyRemapEverything) {
  const auto cfg = small_cfg();
  TwoLevelSecurityRefresh s(cfg);
  pcm::PcmBank bank(pcm_for(cfg), s.physical_lines());
  std::vector<u64> initial(cfg.lines);
  for (u64 la = 0; la < cfg.lines; ++la) initial[la] = s.translate(La{la}).value();
  // Spread writes so both inner and outer rounds complete several times.
  for (u64 i = 0; i < 200'000; ++i) {
    s.write(La{i % cfg.lines}, pcm::LineData::all_zero(), bank);
  }
  u64 moved = 0;
  for (u64 la = 0; la < cfg.lines; ++la) {
    if (s.translate(La{la}).value() != initial[la]) ++moved;
  }
  EXPECT_GT(moved, cfg.lines / 2);  // almost surely nearly all moved
}

TEST(Sr2, ConfigValidation) {
  auto cfg = small_cfg();
  cfg.sub_regions = 256;  // == lines
  EXPECT_THROW(TwoLevelSecurityRefresh{cfg}, CheckFailure);
  cfg = small_cfg();
  cfg.sub_regions = 3;
  EXPECT_THROW(TwoLevelSecurityRefresh{cfg}, CheckFailure);
}

class Sr2Shapes : public ::testing::TestWithParam<std::tuple<u64, u64, u64>> {};

TEST_P(Sr2Shapes, IntegrityAcrossShapes) {
  TwoLevelSrConfig cfg;
  cfg.lines = 128;
  cfg.sub_regions = std::get<0>(GetParam());
  cfg.inner_interval = std::get<1>(GetParam());
  cfg.outer_interval = std::get<2>(GetParam());
  cfg.seed = 17;
  TwoLevelSecurityRefresh s(cfg);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(128, u64{1} << 40), s.physical_lines());
  testutil::run_integrity_churn(s, bank, 10'000);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Sr2Shapes,
                         ::testing::Values(std::make_tuple(2u, 2u, 4u),
                                           std::make_tuple(4u, 4u, 4u),
                                           std::make_tuple(16u, 8u, 2u),
                                           std::make_tuple(32u, 1u, 1u)));

}  // namespace
}  // namespace srbsg::wl
