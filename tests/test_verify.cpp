// Unit tests for the srbsg-verify bounded model checker library:
// minimizer behavior, cell grid shape, exhaustive passes at shrunk
// bounds, and — the core selftest property — that each seeded mutation
// is caught by its check family with a minimized, replayable witness.

#include "verify/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "verify/checks.hpp"
#include "verify/minimize.hpp"
#include "verify/report.hpp"

namespace srbsg::verify {
namespace {

Bounds tiny_bounds() {
  Bounds b;
  b.min_width = 4;
  b.max_width = 5;
  b.max_stages = 4;
  b.key_budget_bits = 8;
  b.bank_lines = {16};
  b.seeds = 2;
  b.rotation_rounds = 2;
  b.max_pattern_len = 2;
  return b;
}

const Cell& find_cell(const std::vector<Cell>& cells, const std::string& prefix) {
  for (const Cell& c : cells) {
    if (c.id.rfind(prefix, 0) == 0) return c;
  }
  throw CheckFailure("no cell with prefix " + prefix);
}

TEST(Ddmin, ShrinksToTheTwoCulprits) {
  // Fails iff the trace contains both a 3 and a 7.
  const auto fails = [](const std::vector<u64>& t) {
    return std::count(t.begin(), t.end(), 3) > 0 && std::count(t.begin(), t.end(), 7) > 0;
  };
  std::vector<u64> trace;
  for (u64 i = 0; i < 64; ++i) trace.push_back(i % 10);
  ASSERT_TRUE(fails(trace));
  const MinimizeResult min = ddmin(trace, fails);
  EXPECT_TRUE(min.minimal);
  ASSERT_EQ(min.trace.size(), 2u);
  EXPECT_TRUE(fails(min.trace));
}

TEST(Ddmin, MonotonePredicateReachesExactThreshold) {
  const auto fails = [](const std::vector<u64>& t) { return t.size() >= 5; };
  std::vector<u64> trace(40, 1);
  const MinimizeResult min = ddmin(trace, fails);
  EXPECT_TRUE(min.minimal);
  EXPECT_EQ(min.trace.size(), 5u);
}

TEST(Ddmin, BudgetExhaustionStillFails) {
  const auto fails = [](const std::vector<u64>& t) { return t.size() >= 3; };
  std::vector<u64> trace(64, 1);
  const MinimizeResult min = ddmin(trace, fails, /*max_tests=*/3);
  EXPECT_FALSE(min.minimal);
  EXPECT_TRUE(fails(min.trace));
}

TEST(CellGrid, CoversEveryFamilyAndScheme) {
  const Bounds b = tiny_bounds();
  const std::vector<Cell> cells = list_cells(b);
  // 2 feistel widths + 8 schemes x 1 size x 2 stepping families + 8 batch
  // + 8 epoch.
  EXPECT_EQ(cells.size(), 2u + 16u + 8u + 8u);
  u64 feistel = 0;
  u64 roundtrip = 0;
  u64 preserve = 0;
  u64 batch = 0;
  u64 epoch = 0;
  for (const Cell& c : cells) {
    feistel += c.check == detail::kFeistelFamily;
    roundtrip += c.check == detail::kRoundtripFamily;
    preserve += c.check == detail::kPreserveFamily;
    batch += c.check == detail::kBatchFamily;
    epoch += c.check == detail::kEpochFamily;
    EXPECT_FALSE(check_source_file(c.check).empty());
  }
  EXPECT_EQ(feistel, 2u);
  EXPECT_EQ(roundtrip, 8u);
  EXPECT_EQ(preserve, 8u);
  EXPECT_EQ(batch, 8u);
  EXPECT_EQ(epoch, 8u);
}

TEST(Exhaustive, AllCellsPassAtTinyBounds) {
  const Bounds b = tiny_bounds();
  ThreadPool pool(2);
  const std::vector<CellResult> results = run_cells(list_cells(b), b, pool);
  for (const CellResult& r : results) {
    EXPECT_TRUE(r.pass) << r.cell.id << ": " << (r.cex ? r.cex->message : "");
    EXPECT_GT(r.states, 0u) << r.cell.id;
  }
}

TEST(Exhaustive, FeistelCellEnumeratesAllKeyTuples) {
  Bounds b = tiny_bounds();
  b.min_width = 4;
  b.max_width = 4;
  b.max_stages = 3;
  b.key_budget_bits = 6;
  ThreadPool pool(2);
  const Cell cell = find_cell(list_cells(b), "feistel/w4");
  const CellResult r = run_cell(cell, b, pool);
  EXPECT_TRUE(r.pass);
  // width 4 -> 2 key bits/stage; stages 1..3 fit the 6-bit budget:
  // (4 + 16 + 64) tuples x 16 inputs.
  EXPECT_EQ(r.states, (4u + 16u + 64u) * 16u);
}

struct MutationCase {
  MutationKind kind;
  const char* cell_prefix;
  u64 max_witness;
};

class VerifyMutations : public ::testing::TestWithParam<MutationCase> {};

TEST_P(VerifyMutations, FamilyCatchesItsBugClassAndMinimizes) {
  const MutationCase& mc = GetParam();
  Bounds b = tiny_bounds();
  b.seeds = 1;
  b.max_pattern_len = 4;  // batch-skip needs >= 3 positions
  ThreadPool pool(2);
  const Cell cell = find_cell(list_cells(b), mc.cell_prefix);

  const CellResult clean = run_cell(cell, b, pool);
  ASSERT_TRUE(clean.pass) << (clean.cex ? clean.cex->message : "");

  const CellResult hurt = run_cell(cell, b, pool, MutationSpec{mc.kind, 0});
  ASSERT_FALSE(hurt.pass) << cell.id << " missed mutation " << to_string(mc.kind);
  const Counterexample& cex = *hurt.cex;
  EXPECT_LE(cex.size, mc.max_witness) << cex.message;
  EXPECT_LE(cex.size, cex.original_size);
  EXPECT_TRUE(cex.minimized);

  // The replay string reproduces the violation; with the fault removed
  // the same input passes.
  EXPECT_TRUE(detail::replay_counterexample(cex.replay, b).has_value()) << cex.replay;
  std::string fixed = cex.replay;
  const std::string tag = std::string("mutate=") + std::string(to_string(mc.kind));
  const std::size_t at = fixed.find(tag);
  ASSERT_NE(at, std::string::npos);
  fixed.replace(at, tag.size(), "mutate=none");
  EXPECT_FALSE(detail::replay_counterexample(fixed, b).has_value()) << fixed;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, VerifyMutations,
    ::testing::Values(MutationCase{MutationKind::kTranslateCollision, "roundtrip/security-rbsg/",
                                   2},
                      MutationCase{MutationKind::kLostCopy, "preserve/sr2/", 16},
                      MutationCase{MutationKind::kPhantomWrite, "preserve/rbsg/", 16},
                      MutationCase{MutationKind::kBatchSkip, "batch/start-gap/", 3},
                      MutationCase{MutationKind::kEpochSkip, "epoch/security-rbsg/", 1}),
    [](const auto& param_info) {
      std::string name(to_string(param_info.param.kind));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(MutationParsing, RoundTripsAndRejects) {
  for (MutationKind k : {MutationKind::kNone, MutationKind::kTranslateCollision,
                         MutationKind::kLostCopy, MutationKind::kPhantomWrite,
                         MutationKind::kBatchSkip, MutationKind::kEpochSkip}) {
    EXPECT_EQ(parse_mutation(to_string(k)), k);
  }
  EXPECT_THROW((void)parse_mutation("bogus"), CheckFailure);
}

TEST(Report, JsonCarriesCellsAndCounterexamples) {
  Bounds b = tiny_bounds();
  b.seeds = 1;
  ThreadPool pool(2);
  const Cell cell = find_cell(list_cells(b), "roundtrip/start-gap/");
  std::vector<CellResult> results;
  results.push_back(run_cell(cell, b, pool));
  results.push_back(run_cell(cell, b, pool, MutationSpec{MutationKind::kTranslateCollision, 0}));
  const std::string doc = report_json(results, b, MutationSpec{});
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"id\":\"roundtrip/start-gap/n16\""), std::string::npos);
  EXPECT_NE(doc.find("\"counterexample\""), std::string::npos);
  EXPECT_NE(doc.find("\"replay\""), std::string::npos);
}

TEST(Report, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Replay, MalformedStringsThrow) {
  const Bounds b = tiny_bounds();
  EXPECT_THROW((void)detail::replay_counterexample("check=unknown-family;trace=1", b),
               CheckFailure);
  EXPECT_THROW((void)detail::replay_counterexample("no-keys-here", b), CheckFailure);
}

}  // namespace
}  // namespace srbsg::verify
