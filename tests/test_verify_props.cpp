// Seeded randomized property tests at PRODUCTION widths — the sampling
// complement to srbsg-verify's exhaustive small-width proofs (DESIGN.md
// §14). The exhaustive cells prove the invariants over every state at
// 4-12 bits / 16-64 lines; these tests pin the same properties at the
// paper's bank sizes (2^16-2^22 lines) with fixed seeds, so a width- or
// size-dependent regression cannot hide above the exhaustive bounds.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "mapping/feistel.hpp"
#include "pcm/bank.hpp"
#include "wl/factory.hpp"
#include "wl_test_util.hpp"

namespace srbsg {
namespace {

// Paper scale: a 1 GB bank is 2^22 lines (config.hpp).
constexpr u32 kProductionWidth = 22;
constexpr u64 kPropertySeeds = 3;

TEST(VerifyProps, FeistelRoundTripAtProductionWidth) {
  const u64 domain = u64{1} << kProductionWidth;
  for (u64 seed = 1; seed <= kPropertySeeds; ++seed) {
    Rng rng(0xFE157E1u * seed);
    const auto keys = mapping::FeistelNetwork::random_keys(kProductionWidth, 7, rng);
    const mapping::FeistelNetwork net(kProductionWidth, keys);
    // Dense band at the bottom, dense band at the top, random middle.
    for (u64 x = 0; x < 4096; ++x) {
      const u64 y = net.map(x);
      ASSERT_LT(y, domain);
      ASSERT_EQ(net.unmap(y), x) << "seed=" << seed << " x=" << x;
    }
    for (u64 x = domain - 4096; x < domain; ++x) {
      const u64 y = net.map(x);
      ASSERT_LT(y, domain);
      ASSERT_EQ(net.unmap(y), x) << "seed=" << seed << " x=" << x;
    }
    for (u64 i = 0; i < 100'000; ++i) {
      const u64 x = rng.next_below(domain);
      const u64 y = net.map(x);
      ASSERT_LT(y, domain);
      ASSERT_EQ(net.unmap(y), x) << "seed=" << seed << " x=" << x;
    }
  }
}

TEST(VerifyProps, FeistelExhaustiveBijectionAtSixteenBits) {
  // Full bijection proof at a mid production width: every input, random
  // keys per seed. 2^16 inputs keeps this in milliseconds.
  constexpr u32 kWidth = 16;
  const u64 domain = u64{1} << kWidth;
  for (u64 seed = 1; seed <= kPropertySeeds; ++seed) {
    Rng rng(0xB17EC7u + seed);
    const auto keys = mapping::FeistelNetwork::random_keys(kWidth, 7, rng);
    const mapping::FeistelNetwork net(kWidth, keys);
    std::vector<bool> hit(domain, false);
    for (u64 x = 0; x < domain; ++x) {
      const u64 y = net.map(x);
      ASSERT_LT(y, domain);
      ASSERT_FALSE(hit[y]) << "collision at x=" << x << " seed=" << seed;
      hit[y] = true;
      ASSERT_EQ(net.unmap(y), x);
    }
  }
}

class VerifyPropsSchemes : public ::testing::TestWithParam<wl::SchemeKind> {};

TEST_P(VerifyPropsSchemes, RoundTripAtProductionBankSize) {
  // 2^16 lines with the factory's default region/interval shape — the
  // scaled-down production configuration the sweeps use. Tag every
  // line, churn through a seeded random write stream, then require the
  // translation to still be a bijection and every token to survive.
  constexpr u64 kLines = u64{1} << 16;
  wl::SchemeSpec spec;
  spec.kind = GetParam();
  spec.lines = kLines;
  spec.regions = 512;
  spec.inner_interval = 64;
  spec.outer_interval = 128;
  spec.stages = 7;
  spec.seed = 0xC0FFEE;
  const auto scheme = wl::make_scheme(spec);
  pcm::PcmBank bank(pcm::PcmConfig::scaled(kLines, u64{1} << 40), scheme->physical_lines());

  wl::testutil::tag_all_lines(*scheme, bank);
  wl::testutil::expect_translation_bijective(*scheme);

  Rng rng(0x5EEDED + static_cast<u64>(GetParam()));
  for (u64 i = 0; i < 30'000; ++i) {
    const u64 la = rng.next_below(kLines);
    scheme->write(La{la}, pcm::LineData::mixed(0xD00D0000 + la), bank);
  }
  wl::testutil::expect_translation_bijective(*scheme);
  wl::testutil::expect_tokens_intact(*scheme, bank);
  scheme->validate_state();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, VerifyPropsSchemes,
                         ::testing::Values(wl::SchemeKind::kNone, wl::SchemeKind::kStartGap,
                                           wl::SchemeKind::kRbsg, wl::SchemeKind::kSr1,
                                           wl::SchemeKind::kSr2, wl::SchemeKind::kMultiWaySr,
                                           wl::SchemeKind::kSecurityRbsg,
                                           wl::SchemeKind::kTable));

}  // namespace
}  // namespace srbsg
