// Equivalence tests for the batched access-stream API (write_batch /
// write_cycle): every scheme must be *bit-identical* to the per-write
// reference loop
//
//   for (la : list) { if (bank.has_failure()) break; write(la, data, bank); }
//
// in wear counts, movement counts, total simulated time, translation
// state and failure bookkeeping — including a bank failure in the middle
// of a batch (the failing write completes, nothing after it runs).

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "controller/memory_controller.hpp"
#include "pcm/bank.hpp"
#include "wl/factory.hpp"

namespace srbsg::wl {
namespace {

constexpr SchemeKind kAllKinds[] = {
    SchemeKind::kNone,       SchemeKind::kStartGap, SchemeKind::kRbsg,
    SchemeKind::kSr1,        SchemeKind::kSr2,      SchemeKind::kMultiWaySr,
    SchemeKind::kSecurityRbsg, SchemeKind::kTable,
};

SchemeSpec spec_for(SchemeKind kind, u64 lines) {
  SchemeSpec s;
  s.kind = kind;
  s.lines = lines;
  s.regions = 8;
  s.inner_interval = 16;
  s.outer_interval = 32;
  s.stages = 3;
  s.seed = 42;
  return s;
}

/// The contract's reference stream: per-write loop with early stop.
BulkOutcome reference_batch(WearLeveler& s, std::span<const La> las,
                            const pcm::LineData& data, pcm::PcmBank& bank) {
  BulkOutcome out;
  for (const La la : las) {
    if (bank.has_failure()) break;
    const WriteOutcome w = s.write(la, data, bank);
    out.total += w.total;
    ++out.writes_applied;
    out.movements += w.movements;
  }
  return out;
}

BulkOutcome reference_cycle(WearLeveler& s, std::span<const La> pattern, u64 count,
                            const pcm::LineData& data, pcm::PcmBank& bank) {
  BulkOutcome out;
  for (u64 i = 0; i < count; ++i) {
    if (bank.has_failure()) break;
    const WriteOutcome w = s.write(pattern[i % pattern.size()], data, bank);
    out.total += w.total;
    ++out.writes_applied;
    out.movements += w.movements;
  }
  return out;
}

void expect_identical(const WearLeveler& ref, const pcm::PcmBank& bref,
                      const BulkOutcome& oref, const WearLeveler& fast,
                      const pcm::PcmBank& bfast, const BulkOutcome& ofast) {
  EXPECT_EQ(oref.writes_applied, ofast.writes_applied);
  EXPECT_EQ(oref.movements, ofast.movements);
  EXPECT_EQ(oref.total, ofast.total);
  EXPECT_EQ(bref.total_writes(), bfast.total_writes());
  ASSERT_EQ(bref.has_failure(), bfast.has_failure());
  if (bref.has_failure()) {
    EXPECT_EQ(bref.first_failed_line(), bfast.first_failed_line());
    EXPECT_EQ(bref.failure_overshoot(), bfast.failure_overshoot());
  }
  const auto wref = bref.wear_counts();
  const auto wfast = bfast.wear_counts();
  ASSERT_EQ(wref.size(), wfast.size());
  for (u64 pa = 0; pa < wref.size(); ++pa) {
    ASSERT_EQ(wref[pa], wfast[pa]) << "wear diverged at pa=" << pa;
  }
  for (u64 la = 0; la < ref.logical_lines(); ++la) {
    ASSERT_EQ(ref.translate(La{la}), fast.translate(La{la}))
        << "translation diverged at la=" << la;
  }
}

class BatchEquivalence : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(BatchEquivalence, CycleSingleAddressHammer) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  auto ref = make_scheme(spec);
  auto fast = make_scheme(spec);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  pcm::PcmBank bref(cfg, ref->physical_lines());
  pcm::PcmBank bfast(cfg, fast->physical_lines());
  const auto data = pcm::LineData::mixed(0xAA);
  const std::vector<La> pattern = {La{5}};
  const u64 count = 10'000;
  const auto oref = reference_cycle(*ref, pattern, count, data, bref);
  const auto ofast = fast->write_cycle(pattern, data, count, bfast);
  expect_identical(*ref, bref, oref, *fast, bfast, ofast);
}

TEST_P(BatchEquivalence, CycleMultiAddressPattern) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  auto ref = make_scheme(spec);
  auto fast = make_scheme(spec);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  pcm::PcmBank bref(cfg, ref->physical_lines());
  pcm::PcmBank bfast(cfg, fast->physical_lines());
  const auto data = pcm::LineData::mixed(0x51);
  // Spread across regions; includes a duplicate inside the period.
  const std::vector<La> pattern = {La{0}, La{17}, La{63}, La{200}, La{511}, La{17}};
  const u64 count = 25'000;
  const auto oref = reference_cycle(*ref, pattern, count, data, bref);
  const auto ofast = fast->write_cycle(pattern, data, count, bfast);
  expect_identical(*ref, bref, oref, *fast, bfast, ofast);
}

TEST_P(BatchEquivalence, CycleStopsExactlyAtFailure) {
  const u64 lines = 256;
  const auto spec = spec_for(GetParam(), lines);
  auto ref = make_scheme(spec);
  auto fast = make_scheme(spec);
  const auto cfg = pcm::PcmConfig::scaled(lines, 2'000);
  pcm::PcmBank bref(cfg, ref->physical_lines());
  pcm::PcmBank bfast(cfg, fast->physical_lines());
  const auto data = pcm::LineData::mixed(0xF0);
  const std::vector<La> pattern = {La{3}, La{7}};
  const u64 count = 50'000'000;  // far past first failure
  const auto oref = reference_cycle(*ref, pattern, count, data, bref);
  const auto ofast = fast->write_cycle(pattern, data, count, bfast);
  ASSERT_TRUE(bref.has_failure());
  EXPECT_LT(ofast.writes_applied, count);
  expect_identical(*ref, bref, oref, *fast, bfast, ofast);
}

TEST_P(BatchEquivalence, CycleLongPatternFallback) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  auto ref = make_scheme(spec);
  auto fast = make_scheme(spec);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  pcm::PcmBank bref(cfg, ref->physical_lines());
  pcm::PcmBank bfast(cfg, fast->physical_lines());
  const auto data = pcm::LineData::mixed(0x1234);
  // Period far beyond kPatternFallbackFactor * interval: exercises the
  // generic per-write fallback, which must obey the same contract.
  std::vector<La> pattern;
  for (u64 i = 0; i < 300; ++i) pattern.push_back(La{(i * 37) % lines});
  const u64 count = 5'000;
  const auto oref = reference_cycle(*ref, pattern, count, data, bref);
  const auto ofast = fast->write_cycle(pattern, data, count, bfast);
  expect_identical(*ref, bref, oref, *fast, bfast, ofast);
}

std::vector<La> random_stream_with_runs(u64 lines, u64 seed, u64 target) {
  Rng rng(seed);
  std::vector<La> las;
  las.reserve(target + 256);
  while (las.size() < target) {
    const u64 la = rng.next_below(lines);
    if (rng.next_below(8) == 0) {  // occasional long hammer run
      const u64 run = 20 + rng.next_below(200);
      for (u64 k = 0; k < run; ++k) las.push_back(La{la});
    } else {
      las.push_back(La{la});
    }
  }
  return las;
}

TEST_P(BatchEquivalence, BatchMixedStreamWithRuns) {
  const u64 lines = 512;
  const auto spec = spec_for(GetParam(), lines);
  auto ref = make_scheme(spec);
  auto fast = make_scheme(spec);
  const auto cfg = pcm::PcmConfig::scaled(lines, u64{1} << 40);
  pcm::PcmBank bref(cfg, ref->physical_lines());
  pcm::PcmBank bfast(cfg, fast->physical_lines());
  const auto data = pcm::LineData::mixed(0xBEEF);
  const auto las = random_stream_with_runs(lines, 99, 40'000);
  const auto oref = reference_batch(*ref, las, data, bref);
  const auto ofast = fast->write_batch(las, data, bfast);
  EXPECT_EQ(ofast.writes_applied, las.size());
  expect_identical(*ref, bref, oref, *fast, bfast, ofast);
}

TEST_P(BatchEquivalence, BatchStopsExactlyAtFailure) {
  const u64 lines = 256;
  const auto spec = spec_for(GetParam(), lines);
  auto ref = make_scheme(spec);
  auto fast = make_scheme(spec);
  const auto cfg = pcm::PcmConfig::scaled(lines, 800);
  pcm::PcmBank bref(cfg, ref->physical_lines());
  pcm::PcmBank bfast(cfg, fast->physical_lines());
  const auto data = pcm::LineData::mixed(0xC0DE);
  const auto las = random_stream_with_runs(lines, 7, 400'000);
  const auto oref = reference_batch(*ref, las, data, bref);
  const auto ofast = fast->write_batch(las, data, bfast);
  ASSERT_TRUE(bref.has_failure());
  EXPECT_LT(ofast.writes_applied, las.size());
  expect_identical(*ref, bref, oref, *fast, bfast, ofast);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, BatchEquivalence, ::testing::ValuesIn(kAllKinds),
                         [](const auto& param_info) {
                           std::string n{to_string(param_info.param)};
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace srbsg::wl
