#pragma once
// Shared invariant checkers for wear-leveling scheme tests.

#include <gtest/gtest.h>

#include <unordered_set>

#include "pcm/bank.hpp"
#include "wl/wear_leveler.hpp"

namespace srbsg::wl::testutil {

/// Asserts that the current translation is injective and within bounds.
inline void expect_translation_bijective(const WearLeveler& scheme) {
  std::unordered_set<u64> seen;
  for (u64 la = 0; la < scheme.logical_lines(); ++la) {
    const Pa pa = scheme.translate(La{la});
    ASSERT_LT(pa.value(), scheme.physical_lines()) << "la=" << la;
    ASSERT_TRUE(seen.insert(pa.value()).second)
        << "collision at la=" << la << " pa=" << pa.value();
  }
}

/// Writes a unique token to every logical line.
inline void tag_all_lines(WearLeveler& scheme, pcm::PcmBank& bank) {
  for (u64 la = 0; la < scheme.logical_lines(); ++la) {
    scheme.write(La{la}, pcm::LineData::mixed(0xD00D0000 + la), bank);
  }
}

/// Asserts every logical line still reads back its unique token.
inline void expect_tokens_intact(const WearLeveler& scheme, const pcm::PcmBank& bank) {
  for (u64 la = 0; la < scheme.logical_lines(); ++la) {
    const auto [data, lat] = scheme.read(La{la}, bank);
    ASSERT_EQ(data.token, 0xD00D0000 + la) << "la=" << la;
  }
}

/// Full integrity churn: tag all lines, push `writes` extra writes through
/// one address to force many remap movements, then re-verify mapping and
/// data. This is the core safety property of every scheme.
inline void run_integrity_churn(WearLeveler& scheme, pcm::PcmBank& bank, u64 writes,
                                u64 check_every = 0) {
  tag_all_lines(scheme, bank);
  expect_translation_bijective(scheme);
  for (u64 i = 0; i < writes; ++i) {
    const u64 la = i % scheme.logical_lines();
    scheme.write(La{la}, pcm::LineData::mixed(0xD00D0000 + la), bank);
    if (check_every != 0 && i % check_every == 0) {
      expect_translation_bijective(scheme);
    }
  }
  expect_translation_bijective(scheme);
  expect_tokens_intact(scheme, bank);
}

}  // namespace srbsg::wl::testutil
