#!/usr/bin/env python3
"""srbsg-analyze: AST-accurate domain static analysis for the simulator.

The third leg of the correctness stack (lint -> runtime audit -> static
analysis).  Drives plain `clang -Xclang -ast-dump=json` over the
CMake-exported compile database, runs per-TU checks, then merges the
per-TU summaries into a whole-program symbol graph (graph.py) for the
interprocedural checks:

  a1-width          64-bit address/wear values narrowed below 64 bits
  a2-determinism    randomness / wall clock / pointer hashing /
                    unordered-container iteration (includes the regex
                    pre-pass folded in from tools/lint.py R1)
  a3-race           unsynchronized shared-state writes in pool lambdas
  a4-state          mutable static state inside wear-leveling schemes
  a5-unchecked      WearLeveler entry points with unvalidated parameters
                    (cross-TU: callees checking on the caller's behalf
                    are resolved through the call graph)
  a6-batch          per-write loops in bench//src/attack that should use
                    the batched write path (write_batch / write_cycle)
  a7-telemetry      telemetry emitted outside the Recorder/counter API
  a8-taint          nondeterministic values (rand, wall clock, pointer
                    hashes) flowing -- through returns, out-params and
                    stored fields, across TUs -- into serialization
                    sinks (telemetry JSONL, bench JSON writers)
  a9-lock           fields written, via any call chain entered from a
                    parallel_for / pool-submitted lambda, without a lock
                    or atomic (interprocedural a3)
  a10-lifetime      std::span / Recorder* parameters escaping into
                    members that outlive the call (direct stores and
                    forwards through callees)

Whole-program summaries round-trip through the incremental cache
(cache.py): warm runs skip clang for unchanged TUs but still re-solve
every cross-TU fixed point, so an edit in one TU updates findings
everywhere.

Usage:
  python3 tools/analyze                         # src/ + bench/ vs baseline
  python3 tools/analyze --paths src/wl          # restrict to a subtree
  python3 tools/analyze --cache                 # incremental (build/ cache)
  python3 tools/analyze --sarif out.sarif       # also emit SARIF 2.1.0
  python3 tools/analyze --sources f.cpp -- -I.  # standalone sources
  python3 tools/analyze --ast-json dump.json    # pre-dumped AST (testing)
  python3 tools/analyze --write-baseline        # accept current findings
  python3 tools/analyze --prune-baseline        # drop stale baseline rows

Exit status: 0 clean (or AST layer skipped: no clang), 1 new findings,
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import baseline as baseline_mod
import cache as cache_mod
import driver
import prepass
import report
import sarif
from checks import ALL_CHECKS, CHECKS_BY_ID

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline.json")
_CACHE_DEFAULT = "<default>"


def parse_args(argv: list[str]) -> argparse.Namespace:
    extra_args: list[str] = []
    if "--" in argv:
        split = argv.index("--")
        extra_args = argv[split + 1:]
        argv = argv[:split]
    parser = argparse.ArgumentParser(prog="srbsg-analyze",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--compile-db", default=None,
                        help="compile_commands.json (default: repo root "
                             "symlink, then build/)")
    parser.add_argument("--paths", nargs="*", default=None,
                        help="restrict analysis to these repo-relative paths")
    parser.add_argument("--sources", nargs="*", default=None,
                        help="analyze standalone sources (flags after --)")
    parser.add_argument("--ast-json", action="append", default=None,
                        help="analyze a pre-dumped clang JSON AST (testing); "
                             "a {\"tus\": [...]} wrapper analyzes several "
                             "TUs as one program")
    parser.add_argument("--checks", default=None,
                        help="comma-separated check ids (default: all)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current new findings into the baseline")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries whose file or context "
                             "no longer exists, printing what was pruned")
    parser.add_argument("--clang", default=None, help="clang driver to use")
    parser.add_argument("--no-pre-pass", action="store_true",
                        help="skip the regex R1 pre-pass")
    parser.add_argument("--cache", nargs="?", const=_CACHE_DEFAULT,
                        default=None, metavar="PATH",
                        help="reuse analysis results for unchanged TUs "
                             "(bare --cache stores the cache at "
                             "build/srbsg-analyze-cache.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore any --cache flag (force cold analysis)")
    parser.add_argument("--sarif", default=None, metavar="PATH",
                        help="also write a SARIF 2.1.0 report to PATH")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel clang workers for the per-TU phase "
                             "(default: one per core); output is "
                             "byte-identical at any worker count")
    parser.add_argument("--json", action="store_true", dest="json_output")
    parser.add_argument("--repo-root", default=REPO_ROOT,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    args.extra_args = extra_args
    return args


def resolve_checks(spec: str | None) -> list[str]:
    if not spec:
        return [c.id for c in ALL_CHECKS]
    ids = [part.strip() for part in spec.split(",") if part.strip()]
    for check_id in ids:
        if check_id not in CHECKS_BY_ID:
            raise SystemExit(f"srbsg-analyze: unknown check '{check_id}' "
                             f"(known: {', '.join(CHECKS_BY_ID)})")
    return ids


def find_compile_db(args: argparse.Namespace) -> str | None:
    candidates = [args.compile_db] if args.compile_db else [
        os.path.join(args.repo_root, "compile_commands.json"),
        os.path.join(args.repo_root, "build", "compile_commands.json"),
    ]
    for candidate in candidates:
        if candidate and os.path.isfile(candidate):
            return candidate
    return None


def _ast_json_roots(path: str) -> list[dict]:
    """The TU roots in one --ast-json file: either a plain clang dump or
    a {"tus": [dump, ...]} wrapper (multi-TU interprocedural fixture)."""
    with open(path, encoding="utf-8") as fh:
        root = json.load(fh)
    if isinstance(root, dict) and isinstance(root.get("tus"), list):
        return root["tus"]
    return [root]


def main(argv: list[str]) -> int:
    args = parse_args(argv)
    if args.list_checks:
        for cls in ALL_CHECKS:
            scope = ", ".join(cls.scope_dirs) if cls.scope_dirs else "src/"
            print(f"{cls.id:16} [{scope}] {cls.description}")
        return 0

    if args.prune_baseline:
        # No analysis needed: staleness is decided against the tree.
        repo_root = os.path.abspath(args.repo_root)
        pruned = baseline_mod.prune_stale(args.baseline, repo_root)
        for entry in pruned:
            reason = "file gone" if not os.path.isfile(
                os.path.join(repo_root, entry.get("file", ""))) \
                else f"context '{entry.get('context', '')}' gone"
            print(f"pruned: {entry.get('file', '')}: "
                  f"{entry.get('check', '')}: {entry.get('message', '')} "
                  f"[{reason}]")
        print(f"srbsg-analyze: {len(pruned)} stale baseline entrie(s) "
              f"pruned from {args.baseline}")
        return 0

    check_ids = resolve_checks(args.checks)
    check_classes = [CHECKS_BY_ID[c] for c in check_ids]
    repo_root = os.path.abspath(args.repo_root)
    src_root = os.path.join(repo_root, "src")
    findings: list[dict] = []
    errors: list[str] = []
    tu_summaries: list[tuple] = []
    skipped_notice = ""
    tus: list[dict] = []

    if args.ast_json:
        # Testing mode: run the checks over pre-dumped ASTs, no clang.
        for path in args.ast_json:
            try:
                roots = _ast_json_roots(path)
            except (OSError, json.JSONDecodeError) as err:
                print(f"srbsg-analyze: cannot load {path}: {err}",
                      file=sys.stderr)
                return 2
            for index, root in enumerate(roots):
                ctx, summaries = driver.analyze_ast(root, repo_root, src_root,
                                                    check_classes)
                findings.extend(ctx.findings)
                tu_summaries.append((f"{path}#{index}", summaries))
    else:
        clang = driver.find_clang(args.clang)
        if args.sources:
            tus = [{"file": os.path.abspath(s),
                    "rel": os.path.relpath(os.path.abspath(s), repo_root),
                    "flags": list(args.extra_args)} for s in args.sources]
        else:
            db_path = find_compile_db(args)
            if db_path is None:
                print("srbsg-analyze: no compile_commands.json found — "
                      "configure the build first (cmake -B build -S .)",
                      file=sys.stderr)
                return 2
            tus = driver.select_tus(driver.load_compile_db(db_path),
                                    repo_root, args.paths)
        if clang is None:
            skipped_notice = ("srbsg-analyze: clang not found — AST checks "
                              "skipped (regex pre-pass only); install clang "
                              "to run the full analysis")
        else:
            analysis_cache = None
            if args.cache and not args.no_cache:
                cache_path = args.cache if args.cache != _CACHE_DEFAULT else \
                    os.path.join(repo_root, "build",
                                 "srbsg-analyze-cache.json")
                analysis_cache = cache_mod.AnalysisCache(
                    cache_path, driver.clang_version(clang), check_ids)
            findings, tu_summaries, errors, stats = \
                driver.run_tus(clang, tus, repo_root, src_root, check_ids,
                               args.jobs, analysis_cache)
            if analysis_cache is not None:
                if not args.paths and not args.sources:
                    # Full-tree run: drop entries for deleted/renamed TUs.
                    analysis_cache.prune([tu["rel"] for tu in tus])
                analysis_cache.save()
                print(f"srbsg-analyze: cache: {stats['hits']} TU(s) reused, "
                      f"{stats['analyzed']} analyzed", file=sys.stderr)

    # Whole-program phase: merge per-TU summaries, solve the cross-TU
    # fixed points (a5 check closure, a8 taint, a9 writes, a10 escapes).
    for cls in check_classes:
        per_tu = [(rel, summaries[cls.id]) for rel, summaries in tu_summaries
                  if cls.id in summaries]
        if per_tu:
            findings.extend(cls.finalize_program(per_tu))

    if not args.no_pre_pass and "a2-determinism" in check_ids \
            and not args.ast_json:
        scan = prepass.prepass_files(
            repo_root, tus,
            [os.path.relpath(os.path.abspath(s), repo_root)
             for s in (args.sources or [])],
            args.paths)
        findings = prepass.merge_prepass(
            findings, prepass.run_prepass(repo_root, scan))

    base = {} if (args.no_baseline or args.write_baseline) else \
        baseline_mod.load_baseline(args.baseline)
    suppressions = baseline_mod.SuppressionIndex(repo_root)
    new, baselined, suppressed = baseline_mod.filter_findings(
        findings, base, suppressions)

    if args.write_baseline:
        previous = baseline_mod.load_baseline(args.baseline)
        baseline_mod.write_baseline(args.baseline, new, previous)
        print(f"srbsg-analyze: baseline written to {args.baseline} "
              f"({len(new)} entrie(s))")
        return 0

    if args.sarif:
        doc = sarif.build(new, baselined, suppressed, check_classes,
                          repo_root)
        problems = sarif.validate(doc)
        if problems:
            print("srbsg-analyze: internal error: emitted SARIF is invalid:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2
        sarif.write(args.sarif, doc)
        print(f"srbsg-analyze: SARIF report written to {args.sarif}",
              file=sys.stderr)

    if args.json_output:
        report.print_json(new, baselined, suppressed, errors,
                          bool(skipped_notice))
        if skipped_notice:
            print(skipped_notice, file=sys.stderr)
    else:
        report.print_text(new, baselined, suppressed, errors, skipped_notice)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
